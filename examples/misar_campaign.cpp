/**
 * @file
 * misar_campaign: parallel, fault-tolerant experiment orchestration.
 *
 * Expands a JSON campaign spec (presets x apps x cores x seeds x
 * reps) into a job list, runs each job as an isolated misar_sim
 * process under a worker pool with wall-clock timeouts and bounded
 * retries, journals every terminal job to an append-only manifest
 * (so --resume completes an interrupted campaign), and aggregates
 * the per-job run reports into one campaign report:
 *
 *   <out-dir>/report.json   machine-readable cells + failures
 *   <out-dir>/report.csv    one row per (cell, metric)
 *   <out-dir>/report.txt    human-readable table
 *   <out-dir>/spec.json     the spec as executed (provenance)
 *   <out-dir>/manifest.jsonl  the journal (timing, attempts)
 *   <out-dir>/jobs/         per-job run reports + logs
 *
 * The three report files depend only on the spec and the simulation
 * results — never on worker count, retries, or resume boundaries —
 * so a campaign resumed after a kill reproduces the uninterrupted
 * report byte for byte.
 *
 * Exit codes: 0 all jobs finished; 2 campaign complete but some
 * jobs failed (deadlock/tick-limit/crash/...); 75 campaign
 * incomplete (--stop-after or setup abort) — rerun with --resume.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "orch/aggregate.hh"
#include "orch/campaign_spec.hh"
#include "orch/engine.hh"
#include "orch/exit_codes.hh"
#include "sim/logging.hh"

using namespace misar;
using namespace misar::orch;

namespace {

void
usage()
{
    std::printf(
        "usage: misar_campaign --spec FILE [options]\n"
        "options:\n"
        "  --out-dir DIR    output directory (default campaign-out)\n"
        "  --workers N      parallel jobs (default: hw concurrency)\n"
        "  --resume         skip jobs already in DIR's manifest\n"
        "  --sim PATH       misar_sim binary (default: next to this\n"
        "                   binary, else $PATH)\n"
        "  --dry-run        print the expanded job list and exit\n"
        "  --bench-out FILE write host-side throughput metrics JSON\n"
        "  --quiet          suppress per-job progress lines\n"
        "  --progress       live one-line stderr ticker (done/running/\n"
        "                   failed, EWMA job rate, ETA); the same data\n"
        "                   is always in <out-dir>/status.json, which\n"
        "                   is atomically rewritten as jobs spawn and\n"
        "                   finish (watch with: watch cat status.json)\n"
        "failure injection (CI/testing):\n"
        "  --chaos-kill-job N  SIGKILL job N's first attempt\n"
        "  --stop-after N      stop dispatching after N completions\n"
        "exit codes: 0 ok, 2 jobs failed, 75 incomplete (resume)\n");
}

/** Locate misar_sim next to our own binary; fall back to $PATH. */
std::string
findSim()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        std::string self(buf);
        std::size_t slash = self.rfind('/');
        if (slash != std::string::npos) {
            std::string cand = self.substr(0, slash + 1) + "misar_sim";
            if (::access(cand.c_str(), X_OK) == 0)
                return cand;
        }
    }
    return "misar_sim";
}

bool
writeFile(const std::string &path, const std::string &body)
{
    std::ofstream f(path);
    if (!f) {
        warn("cannot open %s", path.c_str());
        return false;
    }
    f << body;
    return f.good();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string spec_path;
    EngineOptions opts;
    bool dry_run = false;
    std::string bench_out;
    opts.simPath.clear();

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", a.c_str());
            return argv[++i];
        };
        if (a == "--spec") {
            spec_path = next();
        } else if (a == "--out-dir") {
            opts.outDir = next();
        } else if (a == "--workers") {
            opts.workers = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--resume") {
            opts.resume = true;
        } else if (a == "--sim") {
            opts.simPath = next();
        } else if (a == "--dry-run") {
            dry_run = true;
        } else if (a == "--bench-out") {
            bench_out = next();
        } else if (a == "--quiet") {
            opts.verbose = false;
        } else if (a == "--progress") {
            opts.progress = true;
            opts.verbose = false; // ticker and per-job lines clash
        } else if (a == "--chaos-kill-job") {
            opts.chaosKillJob = std::atoi(next());
        } else if (a == "--stop-after") {
            opts.stopAfter = std::atoi(next());
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option %s", a.c_str());
        }
    }
    if (spec_path.empty()) {
        usage();
        return exitFatal;
    }
    if (opts.simPath.empty())
        opts.simPath = findSim();

    std::ifstream sf(spec_path);
    if (!sf)
        fatal("cannot open spec %s", spec_path.c_str());
    std::stringstream ss;
    ss << sf.rdbuf();
    const std::string spec_text = ss.str();

    CampaignSpec spec;
    std::string err;
    if (!CampaignSpec::parse(spec_text, spec, err))
        fatal("%s: %s", spec_path.c_str(), err.c_str());
    err = spec.validate();
    if (!err.empty())
        fatal("%s: %s", spec_path.c_str(), err.c_str());

    const std::vector<JobSpec> jobs = spec.expand();
    if (dry_run) {
        std::printf("campaign %s: %zu jobs\n", spec.name.c_str(),
                    jobs.size());
        for (const JobSpec &j : jobs)
            std::printf("%6u  %s\n", j.id, j.key().c_str());
        return 0;
    }

    inform("campaign %s: %zu jobs, sim %s", spec.name.c_str(),
           jobs.size(), opts.simPath.c_str());

    std::vector<JobRecord> records;
    CampaignRunStats stats;
    if (!runCampaign(spec, opts, records, stats, err))
        fatal("%s", err.c_str());

    // Provenance: the spec as executed lives beside its results.
    writeFile(opts.outDir + "/spec.json", spec_text);

    CampaignReport report(spec, records);
    {
        std::ofstream f(opts.outDir + "/report.json");
        report.writeJson(f);
    }
    {
        std::ofstream f(opts.outDir + "/report.csv");
        report.writeCsv(f);
    }
    {
        std::ofstream f(opts.outDir + "/report.txt");
        report.writeTable(f);
        std::ostringstream table;
        report.writeTable(table);
        std::fputs(table.str().c_str(), stdout);
    }

    if (!bench_out.empty()) {
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "{\"schemaVersion\":1,\"campaign\":\"%s\","
            "\"workers\":%u,\"jobsTotal\":%u,\"jobsRun\":%u,"
            "\"jobsSkipped\":%u,\"attempts\":%u,"
            "\"wallSec\":%.3f,\"busySec\":%.3f,"
            "\"jobsPerSec\":%.3f,\"workerUtilization\":%.3f}\n",
            spec.name.c_str(), stats.workers, stats.jobsTotal,
            stats.jobsRun, stats.jobsSkipped, stats.attempts,
            stats.wallSec, stats.busySec,
            stats.wallSec > 0.0 ? stats.jobsRun / stats.wallSec : 0.0,
            stats.workerUtilization());
        writeFile(bench_out, buf);
    }

    const unsigned finished = report.outcomeCount(JobOutcome::Finished);
    const unsigned missing = report.outcomeCount(JobOutcome::Missing);
    inform("campaign %s: %u/%zu finished, %u failed, %u not run "
           "(%.1fs wall, %u workers, %.0f%% utilization)",
           spec.name.c_str(), finished, jobs.size(),
           static_cast<unsigned>(jobs.size()) - finished - missing,
           missing, stats.wallSec, stats.workers,
           100.0 * stats.workerUtilization());
    inform("report: %s/report.{json,csv,txt}", opts.outDir.c_str());

    if (!stats.complete) {
        warn("campaign incomplete; rerun with --resume to finish");
        return exitCampaignIncomplete;
    }
    if (finished != jobs.size())
        return exitCampaignJobsFailed;
    return 0;
}
