/**
 * @file
 * Read-mostly shared cache protected by the reader-writer lock
 * extension: many threads look entries up concurrently, occasional
 * updaters take the write side. Compares a plain mutex against the
 * RW lock, in software and on the MSA.
 *
 *   ./build/examples/rwlock_cache [cores=16] [writePct=5]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/rng.hh"
#include "sync/sync_lib.hh"
#include "system/system.hh"

using namespace misar;
using cpu::ThreadApi;
using cpu::ThreadTask;

namespace {

constexpr Addr guard = 0x1000;
constexpr Addr tableBase = 0x100000;
constexpr unsigned tableSlots = 64;

ThreadTask
client(ThreadApi t, sync::SyncLib *lib, bool use_rw, unsigned write_pct,
       int ops, std::uint64_t *hits)
{
    Rng rng(0xc0ffee + t.id());
    for (int i = 0; i < ops; ++i) {
        const unsigned slot = static_cast<unsigned>(rng.range(tableSlots));
        const Addr entry = tableBase + slot * blockBytes;
        const bool update = rng.range(100) < write_pct;

        if (use_rw) {
            if (update)
                co_await lib->rwWrLock(t, guard);
            else
                co_await lib->rwRdLock(t, guard);
        } else {
            co_await lib->mutexLock(t, guard);
        }

        if (update) {
            co_await t.write(entry, i + 1);
        } else {
            std::uint64_t v = co_await t.read(entry);
            if (v != 0)
                ++*hits;
            co_await t.compute(30); // use the value
        }

        if (use_rw)
            co_await lib->rwUnlock(t, guard);
        else
            co_await lib->mutexUnlock(t, guard);
        co_await t.compute(80 + rng.range(80));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned cores = argc > 1 ? std::atoi(argv[1]) : 16;
    unsigned write_pct = argc > 2 ? std::atoi(argv[2]) : 5;

    std::printf("shared lookup table, %u cores, %u%% updates\n", cores,
                write_pct);
    struct Row
    {
        const char *name;
        AccelMode mode;
        sync::SyncLib::Flavor flavor;
        bool rw;
    };
    const Row rows[] = {
        {"sw mutex", AccelMode::None, sync::SyncLib::Flavor::PthreadSw,
         false},
        {"sw rwlock", AccelMode::None, sync::SyncLib::Flavor::PthreadSw,
         true},
        {"MSA mutex", AccelMode::MsaOmu, sync::SyncLib::Flavor::Hw,
         false},
        {"MSA rwlock", AccelMode::MsaOmu, sync::SyncLib::Flavor::Hw,
         true},
    };
    for (const Row &row : rows) {
        sys::System s(makeConfig(cores, row.mode, 2));
        sync::SyncLib lib(row.flavor, cores);
        std::uint64_t hits = 0;
        for (CoreId c = 0; c < cores; ++c)
            s.start(c, client(s.api(c), &lib, row.rw, write_pct, 40,
                              &hits));
        if (!s.run(2000000000ULL)) {
            std::fprintf(stderr, "%s did not finish\n", row.name);
            return 1;
        }
        std::printf("  %-11s %9llu cycles  (%llu lookup hits)\n",
                    row.name,
                    static_cast<unsigned long long>(s.makespan()),
                    static_cast<unsigned long long>(hits));
    }
    return 0;
}
