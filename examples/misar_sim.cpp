/**
 * @file
 * misar_sim: command-line simulator driver.
 *
 * Runs any catalog application (or lists them) on a chosen core
 * count and accelerator configuration, and prints a run report.
 *
 *   misar_sim --list
 *   misar_sim --app streamcluster --cores 64 --config msa-omu \
 *             --entries 2 [--no-hwsync] [--no-omu] [--seed N] [--stats]
 *
 * Configs: baseline | msa0 | mcs-tour | spinlock | msa-omu | msa-inf |
 *          ideal | msa-omu-faults (the resilience campaign preset:
 *          message drops/dups/delays plus tile 0 decommissioned)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "sim/logging.hh"
#include "sync/sync_lib.hh"
#include "system/presets.hh"
#include "system/system.hh"
#include "workload/app_catalog.hh"
#include "workload/synthetic_app.hh"

using namespace misar;
using namespace misar::workload;

namespace {

void
usage()
{
    std::printf(
        "usage: misar_sim --app NAME [options]\n"
        "       misar_sim --list\n"
        "options:\n"
        "  --cores N       core count, perfect square (default 16)\n"
        "  --config C      baseline|msa0|mcs-tour|spinlock|msa-omu|\n"
        "                  msa-inf|ideal|msa-omu-faults (default msa-omu)\n"
        "  --entries N     MSA entries per tile (default 2)\n"
        "  --smt N         hardware threads per core (default 1)\n"
        "  --no-hwsync     disable the HWSync-bit optimization\n"
        "  --no-omu        disable the OMU (entries never freed)\n"
        "  --seed N        workload seed (default 1)\n"
        "  --stats         dump the full statistics registry\n"
        "  --trace FILE    write a Chrome trace-event JSON timeline\n");
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name, config = "msa-omu";
    unsigned cores = 16, entries = 2, smt = 1;
    bool hwsync = true, omu = true, dump_stats = false;
    std::uint64_t seed = 1;
    std::string trace_path;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", a.c_str());
            return argv[++i];
        };
        if (a == "--list") {
            for (const AppSpec &s : appCatalog())
                std::printf("%s\n", s.name.c_str());
            return 0;
        } else if (a == "--app") {
            app_name = next();
        } else if (a == "--cores") {
            cores = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--config") {
            config = next();
        } else if (a == "--entries") {
            entries = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--smt") {
            smt = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--no-hwsync") {
            hwsync = false;
        } else if (a == "--no-omu") {
            omu = false;
        } else if (a == "--seed") {
            seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (a == "--stats") {
            dump_stats = true;
        } else if (a == "--trace") {
            trace_path = next();
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option %s", a.c_str());
        }
    }
    if (app_name.empty()) {
        usage();
        return 1;
    }

    AccelMode mode = AccelMode::MsaOmu;
    sync::SyncLib::Flavor flavor = sync::SyncLib::Flavor::Hw;
    bool faults = false;
    if (config == "msa-omu-faults") {
        faults = true;
    } else if (config == "baseline") {
        mode = AccelMode::None;
        flavor = sync::SyncLib::Flavor::PthreadSw;
    } else if (config == "msa0") {
        mode = AccelMode::None;
        flavor = sync::SyncLib::Flavor::Hw;
    } else if (config == "mcs-tour") {
        mode = AccelMode::None;
        flavor = sync::SyncLib::Flavor::McsTourSw;
    } else if (config == "spinlock") {
        mode = AccelMode::None;
        flavor = sync::SyncLib::Flavor::SpinSw;
    } else if (config == "msa-omu") {
        mode = AccelMode::MsaOmu;
        flavor = sync::SyncLib::Flavor::Hw;
    } else if (config == "msa-inf") {
        mode = AccelMode::MsaInfinite;
        flavor = sync::SyncLib::Flavor::Hw;
    } else if (config == "ideal") {
        mode = AccelMode::Ideal;
        flavor = sync::SyncLib::Flavor::Hw;
    } else {
        fatal("unknown config '%s'", config.c_str());
    }

    const AppSpec &spec = appByName(app_name);
    SystemConfig cfg;
    if (faults) {
        cfg = sys::configFor(sys::PaperConfig::MsaOmu2Faults, cores);
        cfg.msa.msaEntries = entries;
    } else {
        cfg = makeConfig(cores, mode, entries);
    }
    cfg.smtWays = smt;
    cfg.validate();
    cfg.msa.hwSyncBitOpt = hwsync;
    cfg.msa.omuEnabled = omu;
    cfg.seed = seed;
    if (faults && !omu)
        fatal("--no-omu is incompatible with msa-omu-faults (the "
              "offline slice sheds waiters to software)");

    sys::System s(cfg);
    if (!trace_path.empty())
        s.enableTracing();
    const unsigned threads = cfg.numThreads();
    sync::SyncLib lib(flavor, threads);
    AppLayout layout;
    for (CoreId t = 0; t < threads; ++t)
        s.start(t, appThread(s.api(t), spec, layout, &lib, threads,
                             seed));

    switch (s.runDetailed(5000000000ULL)) {
      case sys::RunOutcome::Finished:
        break;
      case sys::RunOutcome::Deadlock:
        fatal("simulation deadlocked (see stall report above)");
      case sys::RunOutcome::LimitReached:
        fatal("simulation hit the tick budget (livelock or runaway)");
    }

    std::printf("app            : %s\n", spec.name.c_str());
    std::printf("cores          : %u (%ux%u mesh, %u threads)\n",
                cores, cfg.meshDim(), cfg.meshDim(), threads);
    std::printf("config         : %s + %s library\n",
                cfg.accelName().c_str(),
                sync::SyncLib::flavorName(flavor));
    std::printf("makespan       : %llu cycles\n",
                static_cast<unsigned long long>(s.makespan()));
    std::printf("sync ops       : %llu hardware / %llu software "
                "(%.1f%% coverage)\n",
                static_cast<unsigned long long>(
                    s.stats().counter("sync.hwOps").value()),
                static_cast<unsigned long long>(
                    s.stats().counter("sync.swOps").value()),
                100.0 * s.hwCoverage());
    std::printf("silent locks   : %llu\n",
                static_cast<unsigned long long>(
                    s.stats().counter("sync.silentLocks").value()));
    if (cfg.resil.messageFaultsEnabled() || cfg.resil.offlineTile >= 0)
        std::printf("resilience     : %llu drops / %llu timeouts / "
                    "%llu retries / %llu abandoned\n",
                    static_cast<unsigned long long>(
                        s.stats().counter("resil.injectedDrops").value()),
                    static_cast<unsigned long long>(
                        s.stats().counter("resil.timeouts").value()),
                    static_cast<unsigned long long>(
                        s.stats().counter("resil.retries").value()),
                    static_cast<unsigned long long>(
                        s.stats().counter("resil.abandonedOps").value()));
    std::printf("noc packets    : %llu (avg latency %.1f cycles)\n",
                static_cast<unsigned long long>(
                    s.stats().counter("noc.packetsSent").value()),
                s.stats().average("noc.packetLatency").mean());
    if (!trace_path.empty()) {
        std::ofstream tf(trace_path);
        if (!tf)
            fatal("cannot open trace file %s", trace_path.c_str());
        s.writeTrace(tf);
        std::printf("trace          : %s\n", trace_path.c_str());
    }
    if (dump_stats) {
        std::printf("\n--- full statistics ---\n");
        s.stats().dump(std::cout);
    }
    return 0;
}
