/**
 * @file
 * misar_sim: command-line simulator driver.
 *
 * Runs any catalog application (or lists them) on a chosen core
 * count and accelerator configuration, and prints a run report.
 *
 *   misar_sim --list-apps | --list-presets
 *   misar_sim --app streamcluster --cores 64 --config msa-omu \
 *             --entries 2 [--no-hwsync] [--no-omu] [--seed N] [--stats]
 *
 * Configs: baseline | msa0 | mcs-tour | spinlock | msa-omu | msa-inf |
 *          ideal | msa-omu-faults (the resilience campaign preset:
 *          message drops/dups/delays plus tile 0 decommissioned) |
 *          msa-omu2-nocfaults (NoC fault campaign: flit corruption,
 *          one link killed mid-run, reliable delivery + rerouting) |
 *          msa-omu2-corefaults (participant fault campaign: one core
 *          halted dead mid-run, lease-based lock recovery, barrier
 *          membership reconfiguration)
 *
 * Exit codes (consumed by the campaign engine, see
 * orch/exit_codes.hh): 0 finished, 40 deadlock, 41 tick-limit,
 * 1 fatal error.
 */

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "obs/run_report.hh"
#include "orch/exit_codes.hh"
#include "sim/logging.hh"
#include "srv/server_app.hh"
#include "sync/sync_lib.hh"
#include "system/presets.hh"
#include "system/system.hh"
#include "workload/app_catalog.hh"
#include "workload/synthetic_app.hh"

using namespace misar;
using namespace misar::workload;

namespace {

void
usage()
{
    std::printf(
        "usage: misar_sim --app NAME [options]\n"
        "       misar_sim --list-apps | --list-presets\n"
        "options:\n"
        "  --cores N       core count, perfect square (default 16)\n"
        "  --config C      baseline|msa0|mcs-tour|spinlock|msa-omu|\n"
        "                  msa-inf|ideal|msa-omu-faults|\n"
        "                  msa-omu2-nocfaults|msa-omu2-corefaults\n"
        "                  (default msa-omu)\n"
        "  --entries N     MSA entries per tile (default 2)\n"
        "  --smt N         hardware threads per core (default 1)\n"
        "  --threads N     host worker threads for the simulation\n"
        "                  kernel (default 1 = serial; N > 1 runs the\n"
        "                  conservative PDES scheme — any N yields the\n"
        "                  same trajectory and statistics, and N = 1 is\n"
        "                  bit-identical to the serial kernel)\n"
        "  --no-hwsync     disable the HWSync-bit optimization\n"
        "  --no-omu        disable the OMU (entries never freed)\n"
        "  --seed N        workload seed (default 1)\n"
        "  --tick-limit N  simulated-tick budget (default 5e9)\n"
        "  --stats         dump the full statistics registry\n"
        "  --kill-link SRC:DST@TICK\n"
        "                  kill the mesh link between adjacent routers\n"
        "                  SRC and DST at TICK (repeatable; implies\n"
        "                  NI end-to-end reliable delivery)\n"
        "  --kill-router R@TICK\n"
        "                  kill router R (its whole tile drops off the\n"
        "                  mesh) at TICK (repeatable; implies reliable\n"
        "                  delivery)\n"
        "  --kill-core C@TICK\n"
        "                  halt core C dead at TICK, wherever it is —\n"
        "                  possibly holding a lock or mid-barrier\n"
        "                  (repeatable; arms lease-based lock recovery\n"
        "                  if the preset has not already)\n"
        "server workloads (server-* / taskqueue apps only):\n"
        "  --arrival-rate R   offered load in requests per kilotick\n"
        "                     (positive, open-loop server apps only)\n"
        "  --service-dist D   request service-time distribution:\n"
        "                     fixed | exp | pareto\n"
        "  --queue-cap N      dispatch-queue capacity (admission\n"
        "                     control bound; overflow is shed)\n"
        "  --slo N            per-request latency SLO in ticks; arms\n"
        "                     SLO-aware admission (shed when predicted\n"
        "                     wait would bust it) and goodput\n"
        "                     accounting (open-loop server apps only)\n"
        "  --retry-policy P   what shed requests do next:\n"
        "                     none | naive | budgeted (default none)\n"
        "  --retry-budget R   budgeted policy: retry tokens added per\n"
        "                     success (default 0.1)\n"
        "  --tenants HI:LO    serve two priority tenants at these\n"
        "                     rates (requests per kilotick; must sum\n"
        "                     to --arrival-rate when both are given).\n"
        "                     'hi' is steady Poisson, 'lo' follows the\n"
        "                     app's arrival mode; under SLO pressure\n"
        "                     brownout sheds 'lo' first\n"
        "exit codes: 0 finished, 40 deadlock, 41 tick-limit, 1 error\n"
        "observability:\n"
        "  --trace-out FILE   write a multi-component Chrome trace\n"
        "                     (cores + MSA slices + NoC, sync-op flow\n"
        "                     events; open in ui.perfetto.dev).\n"
        "                     --trace is accepted as an alias\n"
        "  --stats-json FILE  write a machine-readable JSON run report\n"
        "                     (config, seed, outcome, full stats,\n"
        "                     resilience summary, sync-var profile)\n"
        "  --profile-sync     per-sync-variable contention profiler;\n"
        "                     prints the top-N table and feeds the\n"
        "                     run report's syncVars section\n"
        "  --top N            sync variables in the report (default 16)\n"
        "  --sample-interval K  snapshot key stats every K ticks\n"
        "  --sample-out FILE  write the sampled time series as CSV\n"
        "  --heatmap-out FILE write per-resource utilization timelines\n"
        "                     (MSA occupancy/free entries, OMU counters\n"
        "                     + episodes, NoC link flits, NI queues) as\n"
        "                     heatmap.json; samples on the\n"
        "                     --sample-interval cadence (default 10000)\n");
}

/**
 * Strict "A:B@C"-style kill-spec parser: @p n plain decimal fields
 * separated by exactly the characters of @p seps, nothing else.
 * sscanf alone is too lax here — it accepts trailing garbage
 * ("1:2@3junk") and negated values ("-1" wraps to a huge unsigned).
 */
bool
parseKillFields(const char *v, const char *seps, std::uint64_t *out,
                unsigned n)
{
    const char *p = v;
    for (unsigned f = 0; f < n; ++f) {
        if (f > 0) {
            if (*p != seps[f - 1])
                return false;
            ++p;
        }
        if (!std::isdigit(static_cast<unsigned char>(*p)))
            return false;
        std::uint64_t val = 0;
        while (std::isdigit(static_cast<unsigned char>(*p))) {
            const unsigned d = static_cast<unsigned>(*p - '0');
            if (val > (UINT64_MAX - d) / 10)
                return false; // overflow
            val = val * 10 + d;
            ++p;
        }
        out[f] = val;
    }
    return *p == '\0';
}

/**
 * Strict positive-decimal option value. atoi-style parsing silently
 * turns "10x" into 10 and "-5" into a huge unsigned; numeric
 * observability knobs fail loudly instead, like the kill specs.
 */
std::uint64_t
parsePositiveArg(const char *opt, const char *v)
{
    std::uint64_t val = 0;
    if (!parseKillFields(v, "", &val, 1) || val == 0)
        fatal("%s expects a positive decimal number, got '%s'", opt, v);
    return val;
}

/** Strict positive-real option value (arrival rates). */
double
parsePositiveRealArg(const char *opt, const char *v)
{
    char *end = nullptr;
    const double val = std::strtod(v, &end);
    if (end == v || *end != '\0' || !std::isfinite(val) || val <= 0)
        fatal("%s expects a positive number, got '%s'", opt, v);
    return val;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name, config = "msa-omu";
    unsigned cores = 16, entries = 2, smt = 1, sim_threads = 1;
    bool hwsync = true, omu = true, dump_stats = false;
    bool profile_sync = false;
    unsigned top_n = 16;
    std::uint64_t seed = 1, sample_interval = 0;
    std::uint64_t tick_limit = 5000000000ULL;
    std::string trace_path, stats_json_path, sample_csv_path;
    std::string heatmap_path;
    double arrival_rate = 0; // 0 = app default
    std::string service_dist;
    std::uint64_t queue_cap = 0; // 0 = app default
    std::uint64_t slo_ticks = 0; // 0 = no SLO
    std::string retry_policy;
    double retry_budget = 0; // 0 = spec default
    std::string tenants;
    std::vector<LinkKill> link_kills;
    std::vector<RouterKill> router_kills;
    std::vector<CoreKill> core_kills;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for %s", a.c_str());
            return argv[++i];
        };
        if (a == "--list" || a == "--list-apps") {
            for (const AppSpec &s : appCatalog())
                std::printf("%s\n", s.name.c_str());
            for (const AppSpec &s : serverCatalog())
                std::printf("%s\n", s.name.c_str());
            return 0;
        } else if (a == "--list-presets") {
            for (const std::string &p : sys::cliPresetNames())
                std::printf("%s\n", p.c_str());
            return 0;
        } else if (a == "--app") {
            app_name = next();
        } else if (a == "--cores") {
            cores = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--config") {
            config = next();
        } else if (a == "--entries") {
            entries = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--smt") {
            smt = static_cast<unsigned>(std::atoi(next()));
        } else if (a == "--threads") {
            sim_threads = static_cast<unsigned>(
                parsePositiveArg("--threads", next()));
        } else if (a == "--no-hwsync") {
            hwsync = false;
        } else if (a == "--no-omu") {
            omu = false;
        } else if (a == "--seed") {
            seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (a == "--tick-limit") {
            tick_limit = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (a == "--kill-link") {
            const char *v = next();
            std::uint64_t f[3];
            if (!parseKillFields(v, ":@", f, 3))
                fatal("--kill-link expects SRC:DST@TICK (plain decimal "
                      "fields), got '%s'", v);
            link_kills.push_back({static_cast<unsigned>(f[0]),
                                  static_cast<unsigned>(f[1]),
                                  static_cast<Tick>(f[2])});
        } else if (a == "--kill-router") {
            const char *v = next();
            std::uint64_t f[2];
            if (!parseKillFields(v, "@", f, 2))
                fatal("--kill-router expects R@TICK (plain decimal "
                      "fields), got '%s'", v);
            router_kills.push_back({static_cast<unsigned>(f[0]),
                                    static_cast<Tick>(f[1])});
        } else if (a == "--kill-core") {
            const char *v = next();
            std::uint64_t f[2];
            if (!parseKillFields(v, "@", f, 2))
                fatal("--kill-core expects C@TICK (plain decimal "
                      "fields), got '%s'", v);
            core_kills.push_back({static_cast<unsigned>(f[0]),
                                  static_cast<Tick>(f[1])});
        } else if (a == "--stats") {
            dump_stats = true;
        } else if (a == "--trace" || a == "--trace-out") {
            trace_path = next();
        } else if (a == "--stats-json") {
            stats_json_path = next();
        } else if (a == "--profile-sync") {
            profile_sync = true;
        } else if (a == "--top") {
            top_n = static_cast<unsigned>(parsePositiveArg("--top", next()));
        } else if (a == "--sample-interval") {
            sample_interval = parsePositiveArg("--sample-interval", next());
        } else if (a == "--arrival-rate") {
            arrival_rate = parsePositiveRealArg("--arrival-rate", next());
        } else if (a == "--service-dist") {
            service_dist = next();
        } else if (a == "--queue-cap") {
            queue_cap = parsePositiveArg("--queue-cap", next());
        } else if (a == "--slo") {
            slo_ticks = parsePositiveArg("--slo", next());
        } else if (a == "--retry-policy") {
            retry_policy = next();
        } else if (a == "--retry-budget") {
            retry_budget = parsePositiveRealArg("--retry-budget", next());
        } else if (a == "--tenants") {
            tenants = next();
        } else if (a == "--sample-out") {
            sample_csv_path = next();
        } else if (a == "--heatmap-out") {
            heatmap_path = next();
        } else if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else {
            usage();
            fatal("unknown option %s", a.c_str());
        }
    }
    if (app_name.empty()) {
        usage();
        return 1;
    }

    AppSpec spec = appByName(app_name); // copy: server knobs may edit
    const bool overload_knobs = slo_ticks > 0 || !retry_policy.empty() ||
                                retry_budget > 0 || !tenants.empty();
    const bool server_knobs = arrival_rate > 0 ||
                              !service_dist.empty() || queue_cap > 0 ||
                              overload_knobs;
    if (server_knobs && !spec.server.enabled)
        fatal("--arrival-rate/--service-dist/--queue-cap/--slo/"
              "--retry-policy/--retry-budget/--tenants only apply to "
              "server workloads, and '%s' is not one", app_name.c_str());
    if (arrival_rate > 0 &&
        spec.server.mode == srv::ArrivalMode::Closed)
        fatal("--arrival-rate does not apply to the closed-loop "
              "'%s' app", app_name.c_str());
    if (overload_knobs && spec.server.mode == srv::ArrivalMode::Closed)
        fatal("--slo/--retry-policy/--retry-budget/--tenants do not "
              "apply to the closed-loop '%s' app", app_name.c_str());
    if (arrival_rate > 0)
        spec.server.arrivalRate = arrival_rate;
    if (!service_dist.empty() &&
        !srv::parseServiceDist(service_dist, spec.server.serviceDist))
        fatal("unknown --service-dist '%s' (expected one of: %s)",
              service_dist.c_str(), srv::serviceDistNames().c_str());
    if (queue_cap > 0)
        spec.server.queueCap = queue_cap;
    if (slo_ticks > 0)
        spec.server.sloTicks = slo_ticks;
    if (!retry_policy.empty() &&
        !srv::parseRetryPolicy(retry_policy, spec.server.retryPolicy))
        fatal("unknown --retry-policy '%s' (expected one of: %s)",
              retry_policy.c_str(), srv::retryPolicyNames().c_str());
    if (retry_budget > 0) {
        if (spec.server.retryPolicy != srv::RetryPolicy::Budgeted)
            fatal("--retry-budget only applies with "
                  "--retry-policy budgeted");
        spec.server.retryBudgetRatio = retry_budget;
    }
    if (!tenants.empty()) {
        double hi = 0, lo = 0;
        if (!srv::parseTenantMix(tenants, hi, lo))
            fatal("--tenants expects HI:LO (two positive rates in "
                  "requests per kilotick), got '%s'", tenants.c_str());
        if (arrival_rate > 0 &&
            std::fabs(hi + lo - arrival_rate) > 1e-9 * (hi + lo))
            fatal("--tenants %s sums to %g, not the --arrival-rate %g",
                  tenants.c_str(), hi + lo, arrival_rate);
        spec.server.tenantHiRate = hi;
        spec.server.tenantLoRate = lo;
        spec.server.arrivalRate = hi + lo;
    }

    SystemConfig cfg;
    sync::SyncLib::Flavor flavor;
    if (!sys::cliPresetFor(config, cores, entries, cfg, flavor))
        fatal("unknown config '%s'", config.c_str());
    cores = cfg.numCores; // scale presets (msa256/msa1024) pin this
    cfg.smtWays = smt;
    cfg.simThreads = sim_threads;
    cfg.validate();
    cfg.msa.hwSyncBitOpt = hwsync;
    cfg.msa.omuEnabled = omu;
    cfg.seed = seed;
    if (config == "msa-omu-faults" && !omu)
        fatal("--no-omu is incompatible with msa-omu-faults (the "
              "offline slice sheds waiters to software)");
    // Validate kill targets against the actual topology up front:
    // a typo'd tile id should die here with a usable message, not
    // deep inside system construction.
    for (const LinkKill &lk : link_kills)
        if (lk.a >= cores || lk.b >= cores)
            fatal("--kill-link %u:%u out of range for %u tiles",
                  lk.a, lk.b, cores);
    for (const RouterKill &rk : router_kills)
        if (rk.router >= cores)
            fatal("--kill-router %u out of range for %u tiles",
                  rk.router, cores);
    for (const CoreKill &ck : core_kills)
        if (ck.core >= cores)
            fatal("--kill-core %u out of range for %u cores",
                  ck.core, cores);
    if (!link_kills.empty() || !router_kills.empty()) {
        // CLI kills stack on top of whatever the preset armed.
        // Losing unprotected coherence or memory traffic wedges the
        // chip, so the kills imply end-to-end reliable delivery.
        for (const LinkKill &lk : link_kills)
            cfg.resil.linkKills.push_back(lk);
        for (const RouterKill &rk : router_kills)
            cfg.resil.routerKills.push_back(rk);
        cfg.noc.reliable = true;
    }
    if (!core_kills.empty()) {
        for (const CoreKill &ck : core_kills)
            cfg.resil.coreKills.push_back(ck);
        // A corpse's hardware locks are recovered by lease expiry;
        // without leases they would be orphaned forever, so CLI core
        // kills arm the corefaults preset's lease parameters unless
        // the preset already chose its own.
        if (cfg.resil.leaseTicks == 0 &&
            cfg.msa.mode != AccelMode::None) {
            cfg.resil.leaseTicks = 4000;
            cfg.resil.leaseProbeTimeout = 1500;
        }
        if (cfg.resil.timeoutTicks == 0)
            cfg.resil.timeoutTicks = 1000;
    }

    // Observability is configured before the system is built so the
    // constructor can wire tracer/profiler/sampler into every layer.
    if ((!sample_csv_path.empty() || !heatmap_path.empty()) &&
        sample_interval == 0)
        sample_interval = 10000; // sampled outputs imply a default rate
    cfg.obs.traceEnabled = !trace_path.empty();
    cfg.obs.traceOutPath = trace_path;
    // --stats-json implies the profiler so the report carries the
    // syncVars section — but the profiler is serial-only, so threaded
    // runs only get it on explicit request (and then fail validation
    // with the real reason instead of silently dropping it).
    cfg.obs.profileSync =
        profile_sync || (!stats_json_path.empty() && sim_threads == 1);
    cfg.obs.profileTopN = top_n;
    cfg.obs.sampleInterval = sample_interval;
    cfg.obs.sampleCsvPath = sample_csv_path;
    cfg.obs.statsJsonPath = stats_json_path;
    cfg.obs.heatmapEnabled = !heatmap_path.empty();
    cfg.obs.heatmapJsonPath = heatmap_path;

    sys::System s(cfg);
    const unsigned threads = cfg.numThreads();
    sync::SyncLib lib(flavor, threads);
    if (cfg.resil.coreFaultsEnabled())
        lib.setDeadQuery(
            [&s](CoreId c) { return s.isDeclaredDead(c); });
    AppLayout layout;
    std::unique_ptr<srv::ServerHarness> harness;
    if (spec.server.enabled)
        harness = std::make_unique<srv::ServerHarness>(spec.server,
                                                       threads, seed);
    for (CoreId t = 0; t < threads; ++t)
        s.start(t, harness
                       ? harness->thread(s.api(t), &lib)
                       : appThread(s.api(t), spec, layout, &lib,
                                   threads, seed));

    obs::RunMeta meta;
    meta.app = spec.name;
    meta.preset = config;
    meta.accel = cfg.accelName();
    meta.flavor = sync::SyncLib::flavorName(flavor);
    meta.cores = cfg.numCores;
    meta.smtWays = cfg.smtWays;
    meta.msaEntries = cfg.msa.msaEntries;
    meta.omuCounters = cfg.msa.omuCounters;
    meta.omuEnabled = cfg.msa.omuEnabled;
    meta.hwSyncBitOpt = cfg.msa.hwSyncBitOpt;
    meta.seed = seed;

    // If the run dies in panic()/fatal(), still flush a durable
    // report whose outcome says so: an orchestrated job must always
    // leave an ingestible artifact behind.
    std::unique_ptr<obs::CrashReportGuard> guard;
    if (!stats_json_path.empty())
        guard = std::make_unique<obs::CrashReportGuard>(
            stats_json_path, s, meta, top_n);

    const sys::RunOutcome outcome = s.runDetailed(tick_limit);

    srv::ServerStats server_stats;
    if (harness)
        server_stats = harness->finalize(s.makespan());

    // Write the requested observability artifacts before any fatal()
    // below, so a deadlocked or runaway run still leaves a trace and
    // a report whose "outcome" field says what happened.
    if (s.sampler())
        s.sampler()->sampleNow();
    if (s.monitor())
        s.monitor()->finalize(s.eventQueue().now());
    if (!heatmap_path.empty() && s.monitor()) {
        std::ofstream hf(heatmap_path);
        if (!hf)
            fatal("cannot open heatmap file %s", heatmap_path.c_str());
        s.monitor()->writeJson(hf);
    }
    if (!trace_path.empty()) {
        std::ofstream tf(trace_path);
        if (!tf)
            fatal("cannot open trace file %s", trace_path.c_str());
        s.writeTrace(tf);
    }
    if (!sample_csv_path.empty() && s.sampler()) {
        std::ofstream cf(sample_csv_path);
        if (!cf)
            fatal("cannot open sample file %s", sample_csv_path.c_str());
        s.sampler()->writeCsv(cf);
    }
    if (!stats_json_path.empty()) {
        meta.outcome = sys::runOutcomeName(outcome);
        meta.makespan = s.makespan();
        meta.hwCoverage = s.hwCoverage();
        // Durable (fsync'd): an orchestrator may SIGKILL this process
        // the instant it exits, and the report must survive that.
        if (!obs::writeRunReportDurable(stats_json_path, meta, s.stats(),
                                        s.syncProfiler(), top_n,
                                        s.sampler(), &s.eventQueue(),
                                        s.monitor(),
                                        harness ? &server_stats
                                                : nullptr))
            fatal("cannot write stats file %s", stats_json_path.c_str());
    }
    if (guard)
        guard->disarm();

    switch (outcome) {
      case sys::RunOutcome::Finished:
        break;
      case sys::RunOutcome::Deadlock:
        warn("simulation deadlocked (see stall report above)");
        return misar::orch::exitDeadlock;
      case sys::RunOutcome::LimitReached:
        warn("simulation hit the tick budget (livelock or runaway)");
        return misar::orch::exitTickLimit;
    }

    std::printf("app            : %s\n", spec.name.c_str());
    std::printf("cores          : %u (%ux%u mesh, %u threads)\n",
                cores, cfg.meshDim(), cfg.meshDim(), threads);
    std::printf("config         : %s + %s library\n",
                cfg.accelName().c_str(),
                sync::SyncLib::flavorName(flavor));
    std::printf("makespan       : %llu cycles\n",
                static_cast<unsigned long long>(s.makespan()));
    std::printf("sync ops       : %llu hardware / %llu software "
                "(%.1f%% coverage)\n",
                static_cast<unsigned long long>(
                    s.stats().counter("sync.hwOps").value()),
                static_cast<unsigned long long>(
                    s.stats().counter("sync.swOps").value()),
                100.0 * s.hwCoverage());
    std::printf("silent locks   : %llu\n",
                static_cast<unsigned long long>(
                    s.stats().counter("sync.silentLocks").value()));
    if (cfg.resil.messageFaultsEnabled() || cfg.resil.offlineTile >= 0)
        std::printf("resilience     : %llu drops / %llu timeouts / "
                    "%llu retries / %llu abandoned\n",
                    static_cast<unsigned long long>(
                        s.stats().counter("resil.injectedDrops").value()),
                    static_cast<unsigned long long>(
                        s.stats().counter("resil.timeouts").value()),
                    static_cast<unsigned long long>(
                        s.stats().counter("resil.retries").value()),
                    static_cast<unsigned long long>(
                        s.stats().counter("resil.abandonedOps").value()));
    if (cfg.resil.nocFaultsEnabled())
        std::printf("noc resilience : %llu retransmits / %llu dedups / "
                    "%llu detour hops / %llu dead links / "
                    "%llu dead routers\n",
                    static_cast<unsigned long long>(
                        s.stats().counter("noc.rel.retransmits").value()),
                    static_cast<unsigned long long>(
                        s.stats().counter("noc.rel.dedups").value()),
                    static_cast<unsigned long long>(
                        s.stats().counter("noc.detourHops").value()),
                    static_cast<unsigned long long>(
                        s.stats().counter("noc.deadLinks").value()),
                    static_cast<unsigned long long>(
                        s.stats().counter("noc.deadRouters").value()));
    if (cfg.resil.coreFaultsEnabled())
        std::printf("core faults    : %llu kills / %llu revocations / "
                    "%llu reconfigs / %llu fenced releases\n",
                    static_cast<unsigned long long>(
                        s.stats().counterValue("resil.coreKills")),
                    static_cast<unsigned long long>(
                        s.stats().sumCountersSuffix(
                            ".msa.lockRevocations")),
                    static_cast<unsigned long long>(
                        s.stats().sumCountersSuffix(
                            ".msa.barrierReconfigs")),
                    static_cast<unsigned long long>(
                        s.stats().sumCountersSuffix(
                            ".msa.fencedReleases")));
    if (harness) {
        std::printf("server         : offered %.2f/ktick, achieved "
                    "%.2f/ktick, knee=%s\n",
                    server_stats.offeredRate, server_stats.throughput,
                    server_stats.knee ? "yes" : "no");
        std::printf("requests       : %llu generated / %llu completed / "
                    "%llu rejected / %llu stranded / %llu steals\n",
                    static_cast<unsigned long long>(server_stats.generated),
                    static_cast<unsigned long long>(server_stats.completed),
                    static_cast<unsigned long long>(server_stats.rejected),
                    static_cast<unsigned long long>(server_stats.stranded),
                    static_cast<unsigned long long>(server_stats.steals));
        if (!server_stats.latency.empty())
            std::printf("req latency    : p50 %llu / p99 %llu / "
                        "p999 %llu cycles\n",
                        static_cast<unsigned long long>(
                            server_stats.latency.p50()),
                        static_cast<unsigned long long>(
                            server_stats.latency.p99()),
                        static_cast<unsigned long long>(
                            server_stats.latency.p999()));
        if (server_stats.sloTicks > 0)
            std::printf("slo            : %llu ticks, met %llu/%llu, "
                        "goodput %.2f/ktick, sloRejected %llu\n",
                        static_cast<unsigned long long>(
                            server_stats.sloTicks),
                        static_cast<unsigned long long>(
                            server_stats.sloMet),
                        static_cast<unsigned long long>(
                            server_stats.completed),
                        server_stats.goodput,
                        static_cast<unsigned long long>(
                            server_stats.rejectedSlo));
        if (server_stats.retryPolicy != srv::RetryPolicy::None)
            std::printf("retries        : policy %s, %llu attempts, "
                        "%llu budget-denied\n",
                        srv::retryPolicyName(server_stats.retryPolicy),
                        static_cast<unsigned long long>(
                            server_stats.retries),
                        static_cast<unsigned long long>(
                            server_stats.retryBudgetDenied));
        for (const srv::TenantStats &ts : server_stats.tenants)
            std::printf("tenant %-8s: offered %.2f/ktick, %llu done / "
                        "%llu shed, goodput %.2f/ktick, p99 %llu\n",
                        ts.name.c_str(), ts.offeredRate,
                        static_cast<unsigned long long>(ts.completed),
                        static_cast<unsigned long long>(
                            ts.rejected + ts.rejectedSlo),
                        ts.goodput,
                        static_cast<unsigned long long>(
                            ts.latency.empty() ? 0 : ts.latency.p99()));
    }
    std::printf("noc packets    : %llu (avg latency %.1f cycles)\n",
                static_cast<unsigned long long>(
                    s.stats().counter("noc.packetsSent").value()),
                s.stats().average("noc.packetLatency").mean());
    if (!trace_path.empty())
        std::printf("trace          : %s\n", trace_path.c_str());
    if (!stats_json_path.empty())
        std::printf("stats json     : %s\n", stats_json_path.c_str());
    if (!sample_csv_path.empty())
        std::printf("sample csv     : %s\n", sample_csv_path.c_str());
    if (!heatmap_path.empty())
        std::printf("heatmap json   : %s\n", heatmap_path.c_str());
    if (profile_sync && s.syncProfiler()) {
        std::printf("\n");
        s.syncProfiler()->writeReport(std::cout, top_n);
    }
    if (dump_stats) {
        std::printf("\n--- full statistics ---\n");
        s.stats().dump(std::cout);
    }
    return 0;
}
