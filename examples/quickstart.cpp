/**
 * @file
 * Quickstart: build a 16-core MiSAR system, run a handful of threads
 * that contend on a lock and meet at a barrier, and print what the
 * accelerator did.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "sync/sync_lib.hh"
#include "system/system.hh"

using namespace misar;
using cpu::ThreadApi;
using cpu::ThreadTask;

namespace {

constexpr Addr theLock = 0x1000;
constexpr Addr theCounter = 0x2000;
constexpr Addr theBarrier = 0x3000;

/**
 * A worker thread: increment a shared counter under a shared lock,
 * hammer a private lock (which the HWSync bit makes nearly free),
 * then wait for everyone at a barrier.
 */
ThreadTask
worker(ThreadApi t, sync::SyncLib *lib, unsigned num_threads)
{
    const Addr my_lock = 0x90000 + t.id() * 0x1000;
    for (int i = 0; i < 5; ++i) {
        co_await t.compute(100); // "useful work"
        co_await lib->mutexLock(t, theLock);
        std::uint64_t v = co_await t.read(theCounter);
        co_await t.write(theCounter, v + 1);
        co_await lib->mutexUnlock(t, theLock);

        // A thread-private lock: after the first acquire, the block
        // stays in our L1 and re-acquires take the silent fast path.
        co_await lib->mutexLock(t, my_lock);
        co_await t.compute(20);
        co_await lib->mutexUnlock(t, my_lock);
    }
    co_await lib->barrierWait(t, theBarrier, num_threads);
    if (t.id() == 0)
        std::printf("[cycle %8llu] all threads passed the barrier\n",
                    static_cast<unsigned long long>(t.now()));
}

} // namespace

int
main()
{
    // A 16-core tiled CMP with a 2-entry MSA + OMU in every tile.
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    sys::System system(cfg);

    // The hybrid runtime: MiSAR instructions first, pthread fallback.
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, cfg.numCores);

    const unsigned threads = 8;
    for (CoreId c = 0; c < threads; ++c)
        system.start(c, worker(system.api(c), &lib, threads));

    if (!system.run(10000000)) {
        std::fprintf(stderr, "simulation did not finish\n");
        return 1;
    }

    std::printf("finished at cycle %llu\n",
                static_cast<unsigned long long>(system.makespan()));
    std::printf("final counter value: %llu (expected %u)\n",
                static_cast<unsigned long long>(
                    system.mem().fmem().read(theCounter)),
                threads * 5);
    std::printf("sync ops handled in hardware: %.1f%%\n",
                100.0 * system.hwCoverage());
    std::printf("silent (HWSync-bit) lock re-acquires: %llu\n",
                static_cast<unsigned long long>(
                    system.stats().counter("sync.silentLocks").value()));
    return 0;
}
