/**
 * @file
 * Work-stealing task-queue application (the radiosity/cholesky
 * pattern the paper's introduction motivates): each thread owns a
 * lock-protected task deque, pops work locally, and steals from
 * victims when empty. Run on both the pthread baseline and MSA/OMU-2
 * and compare.
 *
 *   ./build/examples/taskqueue_app [cores=16] [tasksPerThread=64]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/rng.hh"
#include "sync/sync_lib.hh"
#include "system/presets.hh"
#include "system/system.hh"

using namespace misar;
using cpu::SubTask;
using cpu::ThreadApi;
using cpu::ThreadTask;

namespace {

// Per-queue layout: lock in its own block; count word next block.
constexpr Addr queueBase = 0x10000000;
constexpr Addr queueStride = 4 * blockBytes;

Addr
queueLock(unsigned q)
{
    return queueBase + q * queueStride;
}

Addr
queueCount(unsigned q)
{
    return queueBase + q * queueStride + blockBytes;
}

/** Pop one task from queue @p q; returns false if it was empty. */
SubTask<bool>
tryPop(ThreadApi t, sync::SyncLib *lib, unsigned q)
{
    co_await lib->mutexLock(t, queueLock(q));
    std::uint64_t n = co_await t.read(queueCount(q));
    bool ok = n > 0;
    if (ok)
        co_await t.write(queueCount(q), n - 1);
    co_await lib->mutexUnlock(t, queueLock(q));
    co_return ok;
}

ThreadTask
workerThread(ThreadApi t, sync::SyncLib *lib, unsigned num_threads,
             unsigned *tasks_done)
{
    Rng rng(0xabcdef12345ULL + t.id());
    const unsigned me = t.id();
    // Seed the local queue.
    co_await t.write(queueCount(me), 64);

    unsigned idle_probes = 0;
    while (idle_probes < 2 * num_threads) {
        // Prefer local work; steal on miss.
        unsigned victim = me;
        if (idle_probes > 0)
            victim = static_cast<unsigned>(rng.range(num_threads));
        bool got = co_await tryPop(t, lib, victim);
        if (got) {
            idle_probes = 0;
            ++*tasks_done;
            co_await t.compute(150 + rng.range(200)); // run the task
        } else {
            ++idle_probes;
            co_await t.compute(50);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned cores = argc > 1 ? std::atoi(argv[1]) : 16;

    std::printf("work-stealing task queues on %u cores\n", cores);
    for (sys::PaperConfig pc :
         {sys::PaperConfig::Baseline, sys::PaperConfig::MsaOmu2}) {
        sys::System system(sys::configFor(pc, cores));
        sync::SyncLib lib(sys::flavorFor(pc), cores);
        unsigned done = 0;
        for (CoreId c = 0; c < cores; ++c)
            system.start(c,
                         workerThread(system.api(c), &lib, cores, &done));
        if (!system.run(200000000ULL)) {
            std::fprintf(stderr, "%s: did not finish\n",
                         sys::paperConfigName(pc));
            return 1;
        }
        std::printf("  %-18s  %8llu cycles, %u tasks, %5.1f%% of sync "
                    "ops in hardware\n",
                    sys::paperConfigName(pc),
                    static_cast<unsigned long long>(system.makespan()),
                    done, 100.0 * system.hwCoverage());
    }
    return 0;
}
