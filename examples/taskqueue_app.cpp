/**
 * @file
 * Work-stealing task-queue application (the radiosity/cholesky
 * pattern the paper's introduction motivates): each core owns a
 * lock-protected task deque, pops work locally, and steals from
 * victims when empty. Built on the srv/ queue primitives — the same
 * deques the open-loop server workloads dispatch into — and run on
 * both the pthread baseline and MSA/OMU-2 for comparison. The same
 * workload is registered in the app catalog as "taskqueue", so it
 * also runs under misar_sim / misar_campaign.
 *
 *   ./build/examples/taskqueue_app [cores=16] [tasksPerWorker=64]
 */

#include <cstdio>
#include <cstdlib>

#include "srv/server_app.hh"
#include "sync/sync_lib.hh"
#include "system/presets.hh"
#include "system/system.hh"
#include "workload/app_catalog.hh"

using namespace misar;

int
main(int argc, char **argv)
{
    unsigned cores = argc > 1 ? std::atoi(argv[1]) : 16;
    unsigned tasks = argc > 2 ? std::atoi(argv[2]) : 0;

    workload::AppSpec spec = workload::appByName("taskqueue");
    if (tasks)
        spec.server.tasksPerWorker = tasks;

    std::printf("work-stealing task queues on %u cores, %llu tasks/core\n",
                cores,
                static_cast<unsigned long long>(spec.server.tasksPerWorker));
    for (sys::PaperConfig pc :
         {sys::PaperConfig::Baseline, sys::PaperConfig::MsaOmu2}) {
        sys::System system(sys::configFor(pc, cores));
        sync::SyncLib lib(sys::flavorFor(pc), cores);
        srv::ServerHarness harness(spec.server, cores, /*seed=*/1);
        for (CoreId c = 0; c < cores; ++c)
            system.start(c, harness.thread(system.api(c), &lib));
        if (!system.run(200000000ULL)) {
            std::fprintf(stderr, "%s: did not finish\n",
                         sys::paperConfigName(pc));
            return 1;
        }
        srv::ServerStats st = harness.finalize(system.makespan());
        std::printf("  %-18s  %8llu cycles, %llu tasks, %llu steals, "
                    "%5.1f%% of sync ops in hardware\n",
                    sys::paperConfigName(pc),
                    static_cast<unsigned long long>(system.makespan()),
                    static_cast<unsigned long long>(st.completed),
                    static_cast<unsigned long long>(st.steals),
                    100.0 * system.hwCoverage());
    }
    return 0;
}
