/**
 * @file
 * Condition-variable pipeline (the dedup/ferret pattern): a chain of
 * stages connected by bounded single-slot mailboxes, each guarded by
 * a mutex and two condition variables. Exercises COND_WAIT /
 * COND_SIGNAL in hardware, including the UNLOCK&PIN / LOCK&UNPIN
 * entry-pinning protocol between the cond var's and lock's homes.
 *
 *   ./build/examples/pipeline_condvar [stages=6] [items=40]
 */

#include <cstdio>
#include <cstdlib>

#include "sync/sync_lib.hh"
#include "system/presets.hh"
#include "system/system.hh"

using namespace misar;
using cpu::ThreadApi;
using cpu::ThreadTask;

namespace {

constexpr Addr base = 0x20000000;

struct Mailbox
{
    Addr mutex, notFull, notEmpty, slot;

    explicit Mailbox(unsigned i)
        : mutex(base + i * 4 * blockBytes),
          notFull(mutex + blockBytes),
          notEmpty(mutex + 2 * blockBytes),
          slot(mutex + 3 * blockBytes)
    {}
};

/** Stage s: pull from mailbox s-1 (unless source), work, push to s. */
ThreadTask
stageThread(ThreadApi t, sync::SyncLib *lib, unsigned stage,
            unsigned stages, unsigned items, unsigned *sink_count)
{
    for (unsigned i = 1; i <= items; ++i) {
        std::uint64_t item = i;
        if (stage > 0) {
            // Pull from the upstream mailbox.
            Mailbox in(stage - 1);
            co_await lib->mutexLock(t, in.mutex);
            for (;;) {
                item = co_await t.read(in.slot);
                if (item != 0)
                    break;
                co_await lib->condWait(t, in.notEmpty, in.mutex);
            }
            co_await t.write(in.slot, 0);
            co_await lib->condSignal(t, in.notFull);
            co_await lib->mutexUnlock(t, in.mutex);
        }

        co_await t.compute(200 + 37 * stage); // stage work

        if (stage + 1 < stages) {
            // Push downstream.
            Mailbox out(stage);
            co_await lib->mutexLock(t, out.mutex);
            for (;;) {
                std::uint64_t v = co_await t.read(out.slot);
                if (v == 0)
                    break;
                co_await lib->condWait(t, out.notFull, out.mutex);
            }
            co_await t.write(out.slot, item);
            co_await lib->condSignal(t, out.notEmpty);
            co_await lib->mutexUnlock(t, out.mutex);
        } else {
            ++*sink_count;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned stages = argc > 1 ? std::atoi(argv[1]) : 6;
    unsigned items = argc > 2 ? std::atoi(argv[2]) : 40;
    unsigned cores = 16;
    if (stages > cores)
        stages = cores;

    std::printf("%u-stage cond-var pipeline, %u items\n", stages, items);
    for (sys::PaperConfig pc :
         {sys::PaperConfig::Baseline, sys::PaperConfig::MsaOmu2}) {
        sys::System system(sys::configFor(pc, cores));
        sync::SyncLib lib(sys::flavorFor(pc), cores);
        unsigned sink = 0;
        for (unsigned s = 0; s < stages; ++s)
            system.start(s, stageThread(system.api(s), &lib, s, stages,
                                        items, &sink));
        if (!system.run(200000000ULL)) {
            std::fprintf(stderr, "%s: did not finish\n",
                         sys::paperConfigName(pc));
            return 1;
        }
        std::printf("  %-18s %8llu cycles, %u items delivered, "
                    "%5.1f%% sync ops in hardware\n",
                    sys::paperConfigName(pc),
                    static_cast<unsigned long long>(system.makespan()),
                    sink, 100.0 * system.hwCoverage());
    }
    return 0;
}
