/**
 * @file
 * Barrier-phased stencil computation (the ocean/streamcluster
 * pattern): every thread updates its partition of a shared grid,
 * then all threads meet at a barrier before the next sweep. Shows
 * where the MSA's barrier latency matters as phases shrink.
 *
 *   ./build/examples/stencil_barrier [cores=16] [sweeps=40]
 */

#include <cstdio>
#include <cstdlib>

#include "sync/sync_lib.hh"
#include "system/presets.hh"
#include "system/system.hh"

using namespace misar;
using cpu::ThreadApi;
using cpu::ThreadTask;

namespace {

constexpr Addr gridBase = 0x30000000;
constexpr Addr theBarrier = 0x40000000;

ThreadTask
stencilThread(ThreadApi t, sync::SyncLib *lib, unsigned cores,
              unsigned sweeps, unsigned cols_per_thread)
{
    const unsigned me = t.id();
    for (unsigned sweep = 0; sweep < sweeps; ++sweep) {
        // Update our partition: read a neighbour cell, write ours.
        for (unsigned c = 0; c < cols_per_thread; ++c) {
            Addr mine =
                gridBase + (me * cols_per_thread + c) * blockBytes;
            Addr left = (me == 0 && c == 0)
                            ? mine
                            : mine - blockBytes;
            std::uint64_t v = co_await t.read(left);
            co_await t.write(mine, v + 1);
            co_await t.compute(40);
        }
        co_await lib->barrierWait(t, theBarrier, cores);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned cores = argc > 1 ? std::atoi(argv[1]) : 16;
    unsigned sweeps = argc > 2 ? std::atoi(argv[2]) : 40;
    const unsigned cols = 8;

    std::printf("stencil: %u cores, %u sweeps, %u columns/thread\n",
                cores, sweeps, cols);
    Tick base_cycles = 0;
    for (sys::PaperConfig pc :
         {sys::PaperConfig::Baseline, sys::PaperConfig::McsTour,
          sys::PaperConfig::MsaOmu2, sys::PaperConfig::Ideal}) {
        sys::System system(sys::configFor(pc, cores));
        sync::SyncLib lib(sys::flavorFor(pc), cores);
        for (CoreId c = 0; c < cores; ++c)
            system.start(c, stencilThread(system.api(c), &lib, cores,
                                          sweeps, cols));
        if (!system.run(500000000ULL)) {
            std::fprintf(stderr, "%s: did not finish\n",
                         sys::paperConfigName(pc));
            return 1;
        }
        if (pc == sys::PaperConfig::Baseline)
            base_cycles = system.makespan();
        std::printf("  %-18s %9llu cycles  (%.2fx)\n",
                    sys::paperConfigName(pc),
                    static_cast<unsigned long long>(system.makespan()),
                    static_cast<double>(base_cycles) / system.makespan());
    }
    return 0;
}
