/**
 * @file
 * Tests for hardware multithreading (paper §3's "1-bit per hardware
 * thread" note): SMT threads share a tile's L1 and network interface
 * but synchronize as independent HWQueue participants.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sync/sync_lib.hh"
#include "system/system.hh"

namespace misar {
namespace sys {
namespace {

using cpu::SyncResult;
using cpu::ThreadApi;
using cpu::ThreadTask;
using cpu::toSyncResult;

SystemConfig
smtCfg(unsigned cores, unsigned ways)
{
    SystemConfig cfg = makeConfig(cores, AccelMode::MsaOmu, 2);
    cfg.smtWays = ways;
    cfg.validate();
    return cfg;
}

TEST(Smt, ConfigThreadMapping)
{
    SystemConfig cfg = smtCfg(16, 2);
    EXPECT_EQ(cfg.numThreads(), 32u);
    EXPECT_EQ(cfg.tileOf(0), 0u);
    EXPECT_EQ(cfg.tileOf(1), 0u);
    EXPECT_EQ(cfg.tileOf(2), 1u);
    EXPECT_EQ(cfg.tileOf(31), 15u);
}

struct Shared
{
    int inCs = 0;
    int maxInCs = 0;
    std::uint64_t counter = 0;
    std::vector<unsigned> epoch;
};

ThreadTask
worker(ThreadApi t, sync::SyncLib *lib, Shared *sh, unsigned threads,
       int iters)
{
    for (int i = 0; i < iters; ++i) {
        co_await lib->mutexLock(t, 0x1000);
        sh->inCs++;
        sh->maxInCs = std::max(sh->maxInCs, sh->inCs);
        co_await t.compute(25);
        sh->counter++;
        sh->inCs--;
        co_await lib->mutexUnlock(t, 0x1000);
        co_await t.compute(40);
        if (i % 3 == 2) {
            co_await lib->barrierWait(t, 0x2000, threads);
            sh->epoch[t.id()]++;
        }
    }
}

TEST(Smt, MutualExclusionAndBarrierAcross32Threads)
{
    SystemConfig cfg = smtCfg(16, 2);
    System s(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, cfg.numThreads());
    Shared sh;
    sh.epoch.assign(32, 0);
    const int iters = 6;
    for (CoreId t = 0; t < 32; ++t)
        s.start(t, worker(s.api(t), &lib, &sh, 32, iters));
    ASSERT_TRUE(s.run(100000000));
    EXPECT_EQ(sh.maxInCs, 1);
    EXPECT_EQ(sh.counter, 32u * iters);
    for (unsigned e : sh.epoch)
        EXPECT_EQ(e, 2u);
}

TEST(Smt, SiblingsContendOnOneLock)
{
    // Two threads on the SAME tile fight over one lock: the shared
    // L1 must arbitrate without corrupting either MSHR.
    SystemConfig cfg = smtCfg(4, 2);
    System s(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, cfg.numThreads());
    Shared sh;
    sh.epoch.assign(8, 0);
    for (CoreId t = 0; t < 2; ++t) // threads 0 and 1 share tile 0
        s.start(t, worker(s.api(t), &lib, &sh, 2, 9));
    ASSERT_TRUE(s.run(100000000));
    EXPECT_EQ(sh.maxInCs, 1);
    EXPECT_EQ(sh.counter, 18u);
}

TEST(Smt, SilentPrivilegeIsPerThread)
{
    // Thread 0 acquires a lock (gets the HWSync block in the shared
    // L1); its SMT sibling must NOT silently acquire the same lock —
    // the privilege record is per hardware thread.
    SystemConfig cfg = smtCfg(4, 2);
    System s(cfg);
    std::vector<SyncResult> res0, res1;
    Tick t1_latency = 0;
    auto first = [](ThreadApi t, Addr l,
                    std::vector<SyncResult> *res) -> ThreadTask {
        res->push_back(toSyncResult(co_await t.lockInstr(l)));
        co_await t.unlockInstr(l);
    };
    auto sibling = [](ThreadApi t, Addr l, std::vector<SyncResult> *res,
                      Tick *lat) -> ThreadTask {
        co_await t.compute(2000);
        Tick t0 = t.now();
        res->push_back(toSyncResult(co_await t.lockInstr(l)));
        *lat = t.now() - t0;
        co_await t.unlockInstr(l);
    };
    s.start(0, first(s.api(0), 0x4000, &res0));
    s.start(1, sibling(s.api(1), 0x4000, &res1, &t1_latency));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(res0[0], SyncResult::Success);
    EXPECT_EQ(res1[0], SyncResult::Success);
    // The sibling went through the home (not the 2-cycle silent
    // path), even though the block sits in their shared L1.
    EXPECT_GT(t1_latency, 10u);
    EXPECT_EQ(s.stats().counter("sync.silentLocks").value(), 0u);
}

TEST(Smt, SilentPathDisabledUnderSmt)
{
    // The HWSync silent path needs per-thread block ownership; with
    // SMT siblings sharing the L1 it is disabled (see MsaClientHub).
    // Re-acquires still succeed, just through the home.
    SystemConfig cfg = smtCfg(4, 2);
    System s(cfg);
    std::vector<SyncResult> res;
    auto relock = [](ThreadApi t, Addr l,
                     std::vector<SyncResult> *res) -> ThreadTask {
        for (int i = 0; i < 3; ++i) {
            res->push_back(toSyncResult(co_await t.lockInstr(l)));
            co_await t.compute(10);
            co_await t.unlockInstr(l);
            co_await t.compute(10);
        }
    };
    s.start(3, relock(s.api(3), 0x4000, &res)); // thread 3 = tile 1
    ASSERT_TRUE(s.run(1000000));
    for (auto r : res)
        EXPECT_EQ(r, SyncResult::Success);
    EXPECT_EQ(s.stats().counter("sync.silentLocks").value(), 0u);
}

TEST(Smt, SixtyFourCoresTwoWay)
{
    // The paper's sizing example: 64 cores x 2 threads = 128 bits
    // per HWQueue. A full-chip barrier over all 128 threads.
    SystemConfig cfg = smtCfg(64, 2);
    System s(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, cfg.numThreads());
    Shared sh;
    sh.epoch.assign(128, 0);
    auto body = [](ThreadApi t, sync::SyncLib *lib,
                   Shared *sh) -> ThreadTask {
        co_await t.compute(10 + (t.id() * 13) % 97);
        co_await lib->barrierWait(t, 0x2000, 128);
        sh->epoch[t.id()]++;
    };
    for (CoreId t = 0; t < 128; ++t)
        s.start(t, body(s.api(t), &lib, &sh));
    ASSERT_TRUE(s.run(100000000));
    for (unsigned e : sh.epoch)
        EXPECT_EQ(e, 1u);
}

TEST(Smt, Deterministic)
{
    Tick first = 0;
    for (int run = 0; run < 2; ++run) {
        SystemConfig cfg = smtCfg(16, 2);
        System s(cfg);
        sync::SyncLib lib(sync::SyncLib::Flavor::Hw, cfg.numThreads());
        Shared sh;
        sh.epoch.assign(32, 0);
        for (CoreId t = 0; t < 32; ++t)
            s.start(t, worker(s.api(t), &lib, &sh, 32, 4));
        ASSERT_TRUE(s.run(100000000));
        if (run == 0)
            first = s.makespan();
        else
            EXPECT_EQ(s.makespan(), first);
    }
}

} // namespace
} // namespace sys
} // namespace misar
