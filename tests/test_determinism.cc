/**
 * @file
 * Determinism harness: the whole simulator re-run under the same
 * configuration and seed must reproduce bit-identical results.
 *
 * This is the regression gate for the event-kernel rework (calendar
 * queue + pooled events): any drift in (tick, insertion-order)
 * execution semantics shows up here as a stats-registry or profiler
 * mismatch long before anyone reads a paper figure. Faulted runs are
 * included on purpose — fault injection stresses retry/timeout paths
 * whose schedules are the easiest to perturb.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "obs/sync_profiler.hh"
#include "srv/server_app.hh"
#include "sync/sync_lib.hh"
#include "system/presets.hh"
#include "system/system.hh"
#include "workload/app_catalog.hh"
#include "workload/synthetic_app.hh"

namespace misar {
namespace {

struct RunSnapshot
{
    std::string statsDump; ///< full StatRegistry text dump
    std::string profJson;  ///< sync-profiler top-N JSON
    Tick makespan = 0;
    std::uint64_t executed = 0;
};

/**
 * One full run of @p app on preset @p pc; returns its fingerprint.
 * @p threads is the simulation kernel's host thread count; @p profile
 * arms the sync profiler (serial-only — the threaded kernel rejects
 * it, and cross-thread-count comparisons must configure both sides
 * identically).
 */
RunSnapshot
runOnceSpec(sys::PaperConfig pc, unsigned cores,
            const workload::AppSpec &spec, std::uint64_t seed,
            unsigned threads = 1, bool profile = true)
{
    SystemConfig cfg = sys::configFor(pc, cores);
    cfg.seed = seed;
    cfg.simThreads = threads;
    cfg.obs.profileSync = profile;
    sys::System s(cfg);
    sync::SyncLib lib(sys::flavorFor(pc), cores);
    if (cfg.resil.coreFaultsEnabled())
        lib.setDeadQuery(
            [&s](CoreId c) { return s.isDeclaredDead(c); });
    workload::AppLayout layout;
    std::unique_ptr<srv::ServerHarness> harness;
    if (spec.server.enabled)
        harness = std::make_unique<srv::ServerHarness>(spec.server,
                                                       cores, seed);
    for (CoreId t = 0; t < cores; ++t)
        s.start(t, harness
                       ? harness->thread(s.api(t), &lib)
                       : workload::appThread(s.api(t), spec, layout,
                                             &lib, cores, seed));
    EXPECT_EQ(s.runDetailed(2000000000ULL), sys::RunOutcome::Finished);

    RunSnapshot snap;
    std::ostringstream stats_os;
    s.stats().dump(stats_os);
    snap.statsDump = stats_os.str();
    if (const obs::SyncProfiler *p = s.syncProfiler()) {
        std::ostringstream prof_os;
        p->writeJson(prof_os, 32);
        snap.profJson = prof_os.str();
    }
    snap.makespan = s.eventQueue().now();
    snap.executed = s.eventQueue().executedEvents();
    return snap;
}

RunSnapshot
runOnce(sys::PaperConfig pc, unsigned cores, const char *app,
        std::uint64_t seed, unsigned threads = 1, bool profile = true)
{
    return runOnceSpec(pc, cores, workload::appByName(app), seed,
                       threads, profile);
}

/** server-poisson past the knee with SLO admission + budgeted
 *  retries armed: the overload layer's own RNG streams (backoff
 *  jitter) and host-side retry heaps join the fingerprint. */
workload::AppSpec
retryingServerSpec()
{
    workload::AppSpec spec = workload::appByName("server-poisson");
    spec.server.arrivalRate = 6.0;
    spec.server.queueCap = 256;
    spec.server.sloTicks = 20000;
    spec.server.retryPolicy = srv::RetryPolicy::Budgeted;
    return spec;
}

void
expectIdenticalRuns(sys::PaperConfig pc, unsigned cores, const char *app)
{
    RunSnapshot a = runOnce(pc, cores, app, 7);
    RunSnapshot b = runOnce(pc, cores, app, 7);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.statsDump, b.statsDump);
    EXPECT_FALSE(a.statsDump.empty());
    EXPECT_EQ(a.profJson, b.profJson);
    EXPECT_FALSE(a.profJson.empty());
}

TEST(Determinism, Msa16TwoRunsBitIdentical)
{
    expectIdenticalRuns(sys::PaperConfig::MsaOmu2, 16, "radiosity");
}

TEST(Determinism, MsaOmu2FaultsTwoRunsBitIdentical)
{
    expectIdenticalRuns(sys::PaperConfig::MsaOmu2Faults, 16, "radiosity");
}

TEST(Determinism, MsaOmu2NocFaultsTwoRunsBitIdentical)
{
    // NoC faults exercise corruption rolls, retransmission timers,
    // and the mid-run routing reconfiguration — all of which must
    // replay bit-identically under the same seed.
    expectIdenticalRuns(sys::PaperConfig::MsaOmu2NocFaults, 16,
                        "radiosity");
}

TEST(Determinism, MsaOmu2CoreFaultsTwoRunsBitIdentical)
{
    // A dead participant exercises lease probes, lock revocation,
    // epoch fencing, and barrier reconfiguration; the whole recovery
    // cascade must land on the same ticks in both runs.
    expectIdenticalRuns(sys::PaperConfig::MsaOmu2CoreFaults, 16,
                        "radiosity");
}

TEST(Determinism, ServerPoissonTwoRunsBitIdentical)
{
    // The open-loop server: arrival schedule, MPSC dispatch, work
    // stealing and per-request latency recording must all replay
    // bit-identically (stats dump includes the core*.srv.* counters).
    expectIdenticalRuns(sys::PaperConfig::MsaOmu2, 16, "server-poisson");
}

TEST(Determinism, ServerCoreFaultsTwoRunsBitIdentical)
{
    // A dead worker mid-run: the stranded-request accounting and the
    // recovery cascade must land on the same ticks in both runs.
    expectIdenticalRuns(sys::PaperConfig::MsaOmu2CoreFaults, 16,
                        "server-poisson");
}

/**
 * `--threads 1` runs the serial kernel itself — same code path, no
 * engine — so its stats dump is bit-identical to a run that never
 * mentioned threads. This pins the CLI contract on the existing
 * preset x app matrix.
 */
void
expectThreadsOneIsSerial(sys::PaperConfig pc, unsigned cores,
                         const char *app)
{
    RunSnapshot serial = runOnce(pc, cores, app, 7);
    RunSnapshot t1 = runOnce(pc, cores, app, 7, /*threads=*/1);
    EXPECT_EQ(serial.makespan, t1.makespan);
    EXPECT_EQ(serial.executed, t1.executed);
    EXPECT_EQ(serial.statsDump, t1.statsDump);
    EXPECT_EQ(serial.profJson, t1.profJson);
}

TEST(Determinism, ThreadsOneBitIdenticalToSerialKernel)
{
    expectThreadsOneIsSerial(sys::PaperConfig::MsaOmu2, 16, "radiosity");
    expectThreadsOneIsSerial(sys::PaperConfig::MsaOmu2Faults, 16,
                             "radiosity");
    expectThreadsOneIsSerial(sys::PaperConfig::MsaOmu2NocFaults, 16,
                             "radiosity");
    expectThreadsOneIsSerial(sys::PaperConfig::MsaOmu2CoreFaults, 16,
                             "radiosity");
}

/**
 * The PDES contract: for any N, the threaded kernel executes the
 * same trajectory, so the merged statistics registry and the final
 * clock must match `--threads 1` exactly. (The profiler stays off on
 * both sides: it is serial-only.)
 */
void
expectStatsIdenticalAcrossThreads(sys::PaperConfig pc, unsigned cores,
                                  const char *app)
{
    RunSnapshot t1 = runOnce(pc, cores, app, 7, 1, /*profile=*/false);
    EXPECT_FALSE(t1.statsDump.empty());
    for (unsigned n : {2u, 4u}) {
        RunSnapshot tn = runOnce(pc, cores, app, 7, n, false);
        EXPECT_EQ(t1.makespan, tn.makespan) << "threads=" << n;
        EXPECT_EQ(t1.statsDump, tn.statsDump) << "threads=" << n;
    }
}

TEST(Determinism, Msa16StatsIdenticalAcrossThreadCounts)
{
    expectStatsIdenticalAcrossThreads(sys::PaperConfig::MsaOmu2, 16,
                                      "radiosity");
}

TEST(Determinism, Msa64StatsIdenticalAcrossThreadCounts)
{
    expectStatsIdenticalAcrossThreads(sys::PaperConfig::MsaOmu2, 64,
                                      "radiosity");
}

TEST(Determinism, FaultedStatsIdenticalAcrossThreadCounts)
{
    // Message faults + a mid-run slice decommission: the injector
    // runs on the master lane and reaches into tiles; retry/timeout
    // schedules are the easiest to perturb, so this is the sharpest
    // cross-thread-count probe.
    expectStatsIdenticalAcrossThreads(sys::PaperConfig::MsaOmu2Faults,
                                      16, "radiosity");
}

TEST(Determinism, ServerStatsIdenticalAcrossThreadCounts)
{
    // Host-side server recording is per-core slots merged in core
    // order, so the threaded kernel must reproduce the serial stats
    // dump exactly — any cross-core mutable host state would show
    // up here as a diverging srv counter.
    expectStatsIdenticalAcrossThreads(sys::PaperConfig::MsaOmu2, 16,
                                      "server-poisson");
}

TEST(Determinism, McsTourStatsIdenticalAcrossThreadCounts)
{
    // Regression test for the sync-library aux allocator hazard: the
    // MCS/tournament software algorithms lean on per-object auxiliary
    // memory, whose addresses are now a pure function of the object
    // (a first-use bump allocator raced across partitions and handed
    // out interleaving-dependent addresses). The CI TSan job runs
    // this under -fsanitize=thread.
    expectStatsIdenticalAcrossThreads(sys::PaperConfig::McsTour, 16,
                                      "radiosity");
}

TEST(Determinism, ServerRetryTwoRunsBitIdentical)
{
    // SLO shedding + budgeted retries: backoff jitter and the retry
    // heap are seed-derived, so two runs must still be bit-identical.
    workload::AppSpec spec = retryingServerSpec();
    RunSnapshot a =
        runOnceSpec(sys::PaperConfig::MsaOmu2, 16, spec, 7);
    RunSnapshot b =
        runOnceSpec(sys::PaperConfig::MsaOmu2, 16, spec, 7);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.executed, b.executed);
    EXPECT_EQ(a.statsDump, b.statsDump);
    EXPECT_FALSE(a.statsDump.empty());
    EXPECT_EQ(a.profJson, b.profJson);
}

TEST(Determinism, ServerRetryStatsIdenticalAcrossThreadCounts)
{
    // Retry state (heaps, token bucket, EWMA words) must not leak
    // host scheduling into the run: `--threads 2` merges to the same
    // stats dump as the serial kernel.
    workload::AppSpec spec = retryingServerSpec();
    RunSnapshot t1 = runOnceSpec(sys::PaperConfig::MsaOmu2, 16, spec,
                                 7, 1, /*profile=*/false);
    EXPECT_FALSE(t1.statsDump.empty());
    RunSnapshot t2 = runOnceSpec(sys::PaperConfig::MsaOmu2, 16, spec,
                                 7, 2, false);
    EXPECT_EQ(t1.makespan, t2.makespan);
    EXPECT_EQ(t1.statsDump, t2.statsDump);
}

TEST(Determinism, ThreadedRunsAreRunToRunDeterministic)
{
    // Fixed N must also be repeatable against itself (mailbox drain
    // order, not host scheduling, decides the merge).
    RunSnapshot a = runOnce(sys::PaperConfig::MsaOmu2, 16, "radiosity",
                            7, 4, false);
    RunSnapshot b = runOnce(sys::PaperConfig::MsaOmu2, 16, "radiosity",
                            7, 4, false);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.statsDump, b.statsDump);
    EXPECT_FALSE(a.statsDump.empty());
}

TEST(Determinism, DifferentSeedsActuallyDiffer)
{
    // Sanity check that the fingerprint is sensitive at all: a
    // different seed must not produce the same stats dump (otherwise
    // the identity assertions above would be vacuous).
    RunSnapshot a = runOnce(sys::PaperConfig::MsaOmu2Faults, 16,
                            "radiosity", 7);
    RunSnapshot b = runOnce(sys::PaperConfig::MsaOmu2Faults, 16,
                            "radiosity", 8);
    EXPECT_NE(a.statsDump, b.statsDump);
}

} // namespace
} // namespace misar
