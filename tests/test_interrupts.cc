/**
 * @file
 * Failure-injection tests: random OS timer interrupts delivered
 * while applications run. Every suspension path (lock requeue,
 * barrier force-to-software, cond-var abort with spurious wakeup)
 * must preserve correctness: mutual exclusion, barrier epoch
 * alignment, no lost wakeups, and OMU balance at quiescence.
 */

#include <gtest/gtest.h>

#include "sync/sync_lib.hh"
#include "system/interrupt_driver.hh"
#include "system/system.hh"
#include "workload/app_catalog.hh"
#include "workload/synthetic_app.hh"

namespace misar {
namespace sys {
namespace {

using cpu::ThreadApi;
using cpu::ThreadTask;

struct Shared
{
    int inCs = 0;
    int maxInCs = 0;
    std::uint64_t counter = 0;
    std::vector<unsigned> epoch;
};

ThreadTask
mixedWorker(ThreadApi t, sync::SyncLib *lib, Shared *sh, unsigned threads,
            int iters)
{
    for (int i = 0; i < iters; ++i) {
        co_await lib->mutexLock(t, 0x1000);
        sh->inCs++;
        sh->maxInCs = std::max(sh->maxInCs, sh->inCs);
        co_await t.compute(40);
        sh->counter++;
        sh->inCs--;
        co_await lib->mutexUnlock(t, 0x1000);
        co_await t.compute(60);
        if (i % 3 == 2) {
            co_await lib->barrierWait(t, 0x2000, threads);
            sh->epoch[t.id()]++;
        }
    }
}

class InterruptStressTest : public ::testing::TestWithParam<Tick>
{};

TEST_P(InterruptStressTest, InvariantsHoldUnderRandomInterrupts)
{
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    System s(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, 16);
    Shared sh;
    sh.epoch.assign(16, 0);
    const int iters = 9;
    for (CoreId c = 0; c < 16; ++c)
        s.start(c, mixedWorker(s.api(c), &lib, &sh, 16, iters));
    InterruptDriver irq(s, GetParam(), 99);
    ASSERT_TRUE(s.run(100000000));
    EXPECT_EQ(sh.maxInCs, 1) << "mutual exclusion violated";
    EXPECT_EQ(sh.counter, 16u * iters);
    for (unsigned e : sh.epoch)
        EXPECT_EQ(e, 3u);
    // Interrupt pressure actually exercised the suspend paths.
    if (GetParam() <= 500) {
        EXPECT_GT(s.stats().counter("sync.suspends").value(), 0u);
    }
    // OMU balance at quiescence.
    EXPECT_EQ(s.msaSlice(mem::homeTile(0x1000, 16)).omu().count(0x1000),
              0u);
    EXPECT_EQ(s.msaSlice(mem::homeTile(0x2000, 16)).omu().count(0x2000),
              0u);
}

INSTANTIATE_TEST_SUITE_P(Periods, InterruptStressTest,
                         ::testing::Values<Tick>(200, 500, 2000, 10000));

TEST(InterruptApps, SyntheticAppsSurviveInterrupts)
{
    for (const char *name : {"radiosity", "streamcluster", "dedup"}) {
        const workload::AppSpec &spec = workload::appByName(name);
        SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
        System s(cfg);
        sync::SyncLib lib(sync::SyncLib::Flavor::Hw, 16);
        workload::AppLayout lay;
        for (CoreId c = 0; c < 16; ++c)
            s.start(c, workload::appThread(s.api(c), spec, lay, &lib, 16,
                                           3));
        InterruptDriver irq(s, 1500, 42);
        EXPECT_TRUE(s.run(2000000000ULL)) << name;
    }
}

TEST(InterruptApps, DeterministicWithSameSeed)
{
    Tick first = 0;
    for (int run = 0; run < 2; ++run) {
        SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
        System s(cfg);
        sync::SyncLib lib(sync::SyncLib::Flavor::Hw, 16);
        Shared sh;
        sh.epoch.assign(16, 0);
        for (CoreId c = 0; c < 16; ++c)
            s.start(c, mixedWorker(s.api(c), &lib, &sh, 16, 6));
        InterruptDriver irq(s, 700, 1234);
        ASSERT_TRUE(s.run(100000000));
        if (run == 0)
            first = s.makespan();
        else
            EXPECT_EQ(s.makespan(), first);
    }
}

TEST(Multiprogram, TwoAppsCoRunCorrectly)
{
    const workload::AppSpec &a = workload::appByName("water-sp");
    const workload::AppSpec &b = workload::appByName("cholesky");
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    System s(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, 16);
    workload::AppLayout la;
    workload::AppLayout lb;
    lb.relocate(1);
    lb.firstCore = 8;
    for (CoreId c = 0; c < 8; ++c)
        s.start(c, workload::appThread(s.api(c), a, la, &lib, 8, 1));
    for (CoreId c = 8; c < 16; ++c)
        s.start(c, workload::appThread(s.api(c), b, lb, &lib, 8, 2));
    EXPECT_TRUE(s.run(2000000000ULL));
}

} // namespace
} // namespace sys
} // namespace misar
