/**
 * @file
 * Tests for the TRYLOCK ISA extension: hardware success/busy paths,
 * the silent fast path, software fallback with OMU balancing, and
 * mixed trylock/lock contention across flavors.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sync/sync_lib.hh"
#include "system/system.hh"

namespace misar {
namespace sync {
namespace {

using cpu::SyncResult;
using cpu::ThreadApi;
using cpu::ThreadTask;
using cpu::toSyncResult;

TEST(TryLock, FreeLockAcquiredInHardware)
{
    sys::System s(makeConfig(16, AccelMode::MsaOmu, 2));
    std::vector<SyncResult> res;
    auto body = [](ThreadApi t, Addr l,
                   std::vector<SyncResult> *res) -> ThreadTask {
        res->push_back(toSyncResult(co_await t.tryLockInstr(l)));
        co_await t.unlockInstr(l);
    };
    s.start(0, body(s.api(0), 0x1000, &res));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(res[0], SyncResult::Success);
}

TEST(TryLock, HeldLockReportsBusyWithoutEnqueue)
{
    sys::System s(makeConfig(16, AccelMode::MsaOmu, 2));
    std::vector<SyncResult> res;
    auto holder = [](ThreadApi t, Addr l) -> ThreadTask {
        co_await t.lockInstr(l);
        co_await t.compute(5000);
        co_await t.unlockInstr(l);
    };
    auto trier = [](ThreadApi t, Addr l,
                    std::vector<SyncResult> *res) -> ThreadTask {
        co_await t.compute(1000);
        Tick t0 = t.now();
        res->push_back(toSyncResult(co_await t.tryLockInstr(l)));
        // Busy must return promptly, not wait for the release.
        EXPECT_LT(t.now() - t0, 500u);
    };
    s.start(0, holder(s.api(0), 0x1000));
    s.start(1, trier(s.api(1), 0x1000, &res));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(res[0], SyncResult::Busy);
}

TEST(TryLock, SilentFastPath)
{
    sys::System s(makeConfig(16, AccelMode::MsaOmu, 2));
    std::vector<SyncResult> res;
    auto body = [](ThreadApi t, Addr l,
                   std::vector<SyncResult> *res) -> ThreadTask {
        co_await t.lockInstr(l);
        co_await t.unlockInstr(l);
        co_await t.compute(50);
        res->push_back(toSyncResult(co_await t.tryLockInstr(l))); // silent
        co_await t.unlockInstr(l);
    };
    s.start(3, body(s.api(3), 0x2000, &res));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(res[0], SyncResult::Success);
    EXPECT_EQ(s.stats().counter("sync.silentLocks").value(), 1u);
}

TEST(TryLock, LibraryFallbackBalancesOmu)
{
    // Overflow the single entry, so trylocks hit the software path;
    // all OMU counters must drain to zero afterwards.
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 1);
    cfg.msa.hwSyncBitOpt = false;
    sys::System s(cfg);
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    unsigned acquired = 0, busy = 0;
    auto blocker = [](ThreadApi t, Addr l) -> ThreadTask {
        co_await t.lockInstr(l); // hogs the home's only entry
        co_await t.compute(30000);
        co_await t.unlockInstr(l);
    };
    auto trier = [](ThreadApi t, SyncLib *lib, Addr l, unsigned *acq,
                    unsigned *busy) -> ThreadTask {
        co_await t.compute(200);
        for (int i = 0; i < 10; ++i) {
            bool got = co_await lib->mutexTryLock(t, l);
            if (got) {
                ++*acq;
                co_await t.compute(50);
                co_await lib->mutexUnlock(t, l);
            } else {
                ++*busy;
                co_await t.compute(100);
            }
        }
    };
    const Addr hog = 0x0, tried = 16 * 64; // both homed on tile 0
    s.start(15, blocker(s.api(15), hog));
    for (CoreId c = 0; c < 4; ++c)
        s.start(c, trier(s.api(c), &lib, tried, &acquired, &busy));
    ASSERT_TRUE(s.run(50000000));
    EXPECT_EQ(acquired + busy, 40u);
    EXPECT_GT(acquired, 0u);
    EXPECT_EQ(s.msaSlice(0).omu().count(tried), 0u);
}

class TryLockFlavorTest
    : public ::testing::TestWithParam<SyncLib::Flavor>
{};

TEST_P(TryLockFlavorTest, MutualExclusionUnderMixedUse)
{
    SystemConfig cfg = makeConfig(16, GetParam() == SyncLib::Flavor::Hw
                                          ? AccelMode::MsaOmu
                                          : AccelMode::None,
                                  2);
    sys::System s(cfg);
    SyncLib lib(GetParam(), 16);
    int in_cs = 0, max_in_cs = 0;
    std::uint64_t done = 0;
    auto body = [](ThreadApi t, SyncLib *lib, Addr l, int *in_cs,
                   int *max_in_cs, std::uint64_t *done) -> ThreadTask {
        for (int i = 0; i < 8; ++i) {
            bool got;
            if ((t.id() + i) % 2 == 0) {
                got = co_await lib->mutexTryLock(t, l);
            } else {
                co_await lib->mutexLock(t, l);
                got = true;
            }
            if (got) {
                (*in_cs)++;
                *max_in_cs = std::max(*max_in_cs, *in_cs);
                co_await t.compute(30);
                (*in_cs)--;
                ++*done;
                co_await lib->mutexUnlock(t, l);
            }
            co_await t.compute(40);
        }
    };
    for (CoreId c = 0; c < 12; ++c)
        s.start(c,
                body(s.api(c), &lib, 0x3000, &in_cs, &max_in_cs, &done));
    ASSERT_TRUE(s.run(50000000));
    EXPECT_EQ(max_in_cs, 1);
    EXPECT_GT(done, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Flavors, TryLockFlavorTest,
    ::testing::Values(SyncLib::Flavor::PthreadSw, SyncLib::Flavor::Hw),
    [](const ::testing::TestParamInfo<SyncLib::Flavor> &info) {
        return info.param == SyncLib::Flavor::Hw ? "hw" : "pthread";
    });

} // namespace
} // namespace sync
} // namespace misar
