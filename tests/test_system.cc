/**
 * @file
 * System-level tests: cross-configuration determinism, paper-shape
 * regression guards (cheap versions of the headline results), NoC
 * backpressure under system load, and end-to-end pipeline apps on
 * every accelerator mode.
 */

#include <gtest/gtest.h>

#include "sync/sync_lib.hh"
#include "system/system.hh"
#include "workload/app_catalog.hh"
#include "workload/microbench.hh"
#include "workload/runner.hh"

namespace misar {
namespace sys {
namespace {

using workload::appByName;
using workload::RunResult;
using workload::runApp;

// Every paper configuration is deterministic: same seed, same cycle.
class DeterminismTest : public ::testing::TestWithParam<PaperConfig>
{};

TEST_P(DeterminismTest, SameSeedSameMakespan)
{
    const workload::AppSpec &spec = appByName("water-sp");
    RunResult a = runApp(spec, 16, GetParam(), 99);
    RunResult b = runApp(spec, 16, GetParam(), 99);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.hwOps, b.hwOps);
    EXPECT_EQ(a.swOps, b.swOps);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DeterminismTest,
    ::testing::Values(PaperConfig::Baseline, PaperConfig::Msa0,
                      PaperConfig::McsTour, PaperConfig::MsaOmu1,
                      PaperConfig::MsaOmu2, PaperConfig::MsaInf,
                      PaperConfig::Ideal, PaperConfig::Spinlock),
    [](const ::testing::TestParamInfo<PaperConfig> &info) {
        std::string n = paperConfigName(info.param);
        std::string out;
        for (char c : n)
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        return out;
    });

// --- Cheap paper-shape guards (regression alarms) -------------------------

TEST(PaperShape, StreamclusterSpeedupAt16Cores)
{
    const workload::AppSpec &spec = appByName("streamcluster");
    RunResult base = runApp(spec, 16, PaperConfig::Baseline);
    RunResult msa = runApp(spec, 16, PaperConfig::MsaOmu2);
    double sp = static_cast<double>(base.makespan) / msa.makespan;
    EXPECT_GT(sp, 2.0) << "barrier acceleration regressed";
}

TEST(PaperShape, Msa0WithinFewPercentOfBaseline)
{
    const workload::AppSpec &spec = appByName("ocean");
    RunResult base = runApp(spec, 16, PaperConfig::Baseline);
    RunResult msa0 = runApp(spec, 16, PaperConfig::Msa0);
    double ratio = static_cast<double>(msa0.makespan) / base.makespan;
    EXPECT_GT(ratio, 0.90);
    EXPECT_LT(ratio, 1.10);
}

TEST(PaperShape, Omu2TracksInfinity)
{
    for (const char *name : {"streamcluster", "fluidanimate"}) {
        const workload::AppSpec &spec = appByName(name);
        RunResult omu2 = runApp(spec, 16, PaperConfig::MsaOmu2);
        RunResult inf = runApp(spec, 16, PaperConfig::MsaInf);
        double ratio =
            static_cast<double>(omu2.makespan) / inf.makespan;
        EXPECT_LT(ratio, 1.10) << name << ": OMU-2 far from MSA-inf";
    }
}

TEST(PaperShape, IdealIsAlwaysFastestHardware)
{
    const workload::AppSpec &spec = appByName("water-sp");
    RunResult omu2 = runApp(spec, 16, PaperConfig::MsaOmu2);
    RunResult ideal = runApp(spec, 16, PaperConfig::Ideal);
    EXPECT_LE(ideal.makespan, omu2.makespan);
}

TEST(PaperShape, MsaLockHandoffOrderOfMagnitudeUnderPthread)
{
    workload::RawLatencies base =
        workload::measureRawLatency(16, PaperConfig::Baseline);
    workload::RawLatencies msa =
        workload::measureRawLatency(16, PaperConfig::MsaOmu2);
    EXPECT_LT(msa.lockHandoff * 4, base.lockHandoff);
    EXPECT_LT(msa.barrierHandoff * 4, base.barrierHandoff);
}

// --- Pipeline (cond-var) apps across every mode ---------------------------

class PipelineModeTest : public ::testing::TestWithParam<PaperConfig>
{};

TEST_P(PipelineModeTest, DedupFinishes)
{
    const workload::AppSpec &spec = appByName("dedup");
    RunResult r = runApp(spec, 16, GetParam());
    EXPECT_TRUE(r.finished);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PipelineModeTest,
    ::testing::Values(PaperConfig::Baseline, PaperConfig::Msa0,
                      PaperConfig::MsaOmu1, PaperConfig::MsaOmu2,
                      PaperConfig::MsaInf, PaperConfig::Ideal),
    [](const ::testing::TestParamInfo<PaperConfig> &info) {
        std::string n = paperConfigName(info.param);
        std::string out;
        for (char c : n)
            if (std::isalnum(static_cast<unsigned char>(c)))
                out += c;
        return out;
    });

// --- Misc system behaviours -------------------------------------------------

TEST(SystemMisc, RunDetectsDeadlock)
{
    // A thread that waits on a barrier nobody else joins: run() must
    // report failure, not hang (the event queue drains).
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    System s(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, 16);
    auto body = [](cpu::ThreadApi t, sync::SyncLib *lib) -> cpu::ThreadTask {
        co_await lib->barrierWait(t, 0x2000, 2); // partner never comes
    };
    s.start(0, body(s.api(0), &lib));
    EXPECT_FALSE(s.run(200000));
}

TEST(SystemMisc, TraceCapturesSystemRun)
{
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    System s(cfg);
    s.enableTracing();
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, 16);
    auto body = [](cpu::ThreadApi t, sync::SyncLib *lib) -> cpu::ThreadTask {
        co_await lib->mutexLock(t, 0x1000);
        co_await t.compute(10);
        co_await lib->mutexUnlock(t, 0x1000);
    };
    s.start(0, body(s.api(0), &lib));
    ASSERT_TRUE(s.run(100000));
    std::ostringstream os;
    s.writeTrace(os);
    EXPECT_NE(os.str().find("LOCK"), std::string::npos);
    EXPECT_NE(os.str().find("compute"), std::string::npos);
}

TEST(SystemMisc, SixtyFourCoreSmoke)
{
    const workload::AppSpec &spec = appByName("barnes");
    RunResult r = runApp(spec, 64, PaperConfig::MsaOmu2);
    EXPECT_TRUE(r.finished);
    EXPECT_GT(r.hwCoverage, 0.5);
}

} // namespace
} // namespace sys
} // namespace misar
