/**
 * @file
 * Tests for the synchronization runtime: mutual exclusion, barrier
 * epoch alignment, and condition-variable semantics, across every
 * library flavor and accelerator configuration (including hardware
 * overflow and the MSA-0 always-FAIL mode).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sync/sync_lib.hh"
#include "system/system.hh"

namespace misar {
namespace sync {
namespace {

using cpu::ThreadApi;
using cpu::ThreadTask;

struct Combo
{
    SyncLib::Flavor flavor;
    AccelMode mode;
    unsigned entries;
    const char *name;
};

std::ostream &
operator<<(std::ostream &os, const Combo &c)
{
    return os << c.name;
}

const Combo combos[] = {
    {SyncLib::Flavor::PthreadSw, AccelMode::None, 0, "pthread"},
    {SyncLib::Flavor::SpinSw, AccelMode::None, 0, "spinlock"},
    {SyncLib::Flavor::McsTourSw, AccelMode::None, 0, "mcstour"},
    {SyncLib::Flavor::TicketDissemSw, AccelMode::None, 0, "ticketdissem"},
    {SyncLib::Flavor::Hw, AccelMode::None, 0, "msa0"},
    {SyncLib::Flavor::Hw, AccelMode::MsaOmu, 1, "msaomu1"},
    {SyncLib::Flavor::Hw, AccelMode::MsaOmu, 2, "msaomu2"},
    {SyncLib::Flavor::Hw, AccelMode::MsaInfinite, 0, "msainf"},
    {SyncLib::Flavor::Hw, AccelMode::Ideal, 0, "ideal"},
};

struct Shared
{
    int inCs = 0;
    int maxInCs = 0;
    std::uint64_t counter = 0;
    std::vector<unsigned> epoch;
    bool epochViolation = false;
    std::vector<int> log;
};

ThreadTask
csWorker(ThreadApi t, SyncLib *lib, Addr lock, int iters, Shared *sh)
{
    for (int i = 0; i < iters; ++i) {
        co_await lib->mutexLock(t, lock);
        sh->inCs++;
        sh->maxInCs = std::max(sh->maxInCs, sh->inCs);
        co_await t.compute(20);
        sh->counter++;
        sh->inCs--;
        co_await lib->mutexUnlock(t, lock);
        co_await t.compute(10);
    }
}

class SyncComboTest : public ::testing::TestWithParam<Combo>
{
  protected:
    std::unique_ptr<sys::System> makeSystem(unsigned cores = 16)
    {
        const Combo &c = GetParam();
        SystemConfig cfg = makeConfig(cores, c.mode,
                                      c.entries ? c.entries : 2);
        return std::make_unique<sys::System>(cfg);
    }

    std::unique_ptr<SyncLib> makeLib(unsigned cores = 16)
    {
        return std::make_unique<SyncLib>(GetParam().flavor, cores);
    }
};

TEST_P(SyncComboTest, MutualExclusionOneLock)
{
    auto s = makeSystem();
    auto lib = makeLib();
    Shared sh;
    const int iters = 5;
    for (CoreId c = 0; c < 16; ++c)
        s->start(c, csWorker(s->api(c), lib.get(), 0x1000, iters, &sh));
    ASSERT_TRUE(s->run(50000000));
    EXPECT_EQ(sh.maxInCs, 1) << "mutual exclusion violated";
    EXPECT_EQ(sh.counter, 16u * iters);
}

TEST_P(SyncComboTest, MutualExclusionManyLocks)
{
    auto s = makeSystem();
    auto lib = makeLib();
    Shared sh;
    // 8 locks; each pair of cores shares one. Exceeds MSA capacity
    // on some tiles in the 1-entry configuration.
    auto worker = [](ThreadApi t, SyncLib *lib, Addr lock, int iters,
                     Shared *sh) -> ThreadTask {
        for (int i = 0; i < iters; ++i) {
            co_await lib->mutexLock(t, lock);
            sh->inCs++;
            sh->maxInCs = std::max(sh->maxInCs, sh->inCs);
            co_await t.compute(15);
            sh->counter++;
            sh->inCs--;
            co_await lib->mutexUnlock(t, lock);
        }
    };
    // All 8 locks homed on tile 3 to force overflow.
    for (CoreId c = 0; c < 16; ++c) {
        Addr lock = 3 * 64 + (c / 2) * 16 * 64;
        s->start(c, worker(s->api(c), lib.get(), lock, 5, &sh));
    }
    ASSERT_TRUE(s->run(50000000));
    EXPECT_EQ(sh.counter, 80u);
}

ThreadTask
barrierWorker(ThreadApi t, SyncLib *lib, Addr bar, std::uint32_t goal,
              int epochs, Shared *sh)
{
    for (int e = 0; e < epochs; ++e) {
        co_await t.compute(10 + (t.id() * 7 + e * 13) % 50);
        // Before entering barrier e, no thread can already be past
        // barrier e (that would need our own arrival).
        for (unsigned other : sh->epoch)
            if (other > static_cast<unsigned>(e) + 1)
                sh->epochViolation = true;
        co_await lib->barrierWait(t, bar, goal);
        sh->epoch[t.id()]++;
    }
}

TEST_P(SyncComboTest, BarrierKeepsEpochsAligned)
{
    auto s = makeSystem();
    auto lib = makeLib();
    Shared sh;
    sh.epoch.assign(16, 0);
    const int epochs = 6;
    for (CoreId c = 0; c < 16; ++c)
        s->start(c, barrierWorker(s->api(c), lib.get(), 0x2000, 16, epochs,
                                  &sh));
    ASSERT_TRUE(s->run(50000000));
    EXPECT_FALSE(sh.epochViolation);
    for (unsigned e : sh.epoch)
        EXPECT_EQ(e, static_cast<unsigned>(epochs));
}

TEST_P(SyncComboTest, BarrierNonPowerOfTwo)
{
    auto s = makeSystem();
    auto lib = makeLib();
    Shared sh;
    sh.epoch.assign(16, 0);
    for (CoreId c = 0; c < 6; ++c)
        s->start(c, barrierWorker(s->api(c), lib.get(), 0x2000, 6, 4, &sh));
    ASSERT_TRUE(s->run(50000000));
    for (CoreId c = 0; c < 6; ++c)
        EXPECT_EQ(sh.epoch[c], 4u);
}

ThreadTask
producer(ThreadApi t, SyncLib *lib, Addr m, Addr cv, Addr flag, int n,
         bool bcast)
{
    for (int i = 1; i <= n; ++i) {
        co_await t.compute(500);
        co_await lib->mutexLock(t, m);
        co_await t.write(flag, i);
        if (bcast)
            co_await lib->condBroadcast(t, cv);
        else
            co_await lib->condSignal(t, cv);
        co_await lib->mutexUnlock(t, m);
    }
}

ThreadTask
consumer(ThreadApi t, SyncLib *lib, Addr m, Addr cv, Addr flag, int upto,
         Shared *sh)
{
    co_await lib->mutexLock(t, m);
    for (;;) {
        std::uint64_t v = co_await t.read(flag);
        if (static_cast<int>(v) >= upto)
            break;
        co_await lib->condWait(t, cv, m);
    }
    sh->log.push_back(static_cast<int>(t.id()));
    co_await lib->mutexUnlock(t, m);
}

TEST_P(SyncComboTest, CondVarSignalChain)
{
    auto s = makeSystem();
    auto lib = makeLib();
    Shared sh;
    s->start(1, consumer(s->api(1), lib.get(), 0x3000, 0x3040, 0x3080, 3,
                         &sh));
    s->start(2, producer(s->api(2), lib.get(), 0x3000, 0x3040, 0x3080, 3,
                         false));
    ASSERT_TRUE(s->run(50000000));
    EXPECT_EQ(sh.log.size(), 1u);
}

TEST_P(SyncComboTest, CondVarBroadcastManyWaiters)
{
    auto s = makeSystem();
    auto lib = makeLib();
    Shared sh;
    for (CoreId c = 1; c <= 6; ++c)
        s->start(c, consumer(s->api(c), lib.get(), 0x3000, 0x3040, 0x3080,
                             1, &sh));
    s->start(10, producer(s->api(10), lib.get(), 0x3000, 0x3040, 0x3080, 1,
                          true));
    ASSERT_TRUE(s->run(50000000));
    EXPECT_EQ(sh.log.size(), 6u);
}

INSTANTIATE_TEST_SUITE_P(
    Flavors, SyncComboTest, ::testing::ValuesIn(combos),
    [](const ::testing::TestParamInfo<Combo> &info) {
        return info.param.name;
    });

// --- Flavor-specific behaviours -------------------------------------------

TEST(SyncLibUnit, TicketLockHandoffOrderIsFifo)
{
    SystemConfig cfg = makeConfig(16, AccelMode::None);
    sys::System s(cfg);
    SyncLib lib(SyncLib::Flavor::TicketDissemSw, 16);
    std::vector<int> order;
    auto worker = [](ThreadApi t, SyncLib *lib, Addr lock, Tick delay,
                     std::vector<int> *order) -> ThreadTask {
        co_await t.compute(delay);
        co_await lib->mutexLock(t, lock);
        order->push_back(static_cast<int>(t.id()));
        co_await t.compute(400);
        co_await lib->mutexUnlock(t, lock);
    };
    for (CoreId c = 0; c < 6; ++c)
        s.start(c, worker(s.api(c), &lib, 0x1000, c * 120, &order));
    ASSERT_TRUE(s.run(10000000));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(SyncLibUnit, DisseminationBarrierNonPowerOfTwoStress)
{
    SystemConfig cfg = makeConfig(64, AccelMode::None);
    sys::System s(cfg);
    SyncLib lib(SyncLib::Flavor::TicketDissemSw, 64);
    Shared sh;
    const unsigned parts = 33; // awkward participant count
    sh.epoch.assign(64, 0);
    for (CoreId c = 0; c < parts; ++c)
        s.start(c, barrierWorker(s.api(c), &lib, 0x2000, parts, 5, &sh));
    ASSERT_TRUE(s.run(50000000));
    EXPECT_FALSE(sh.epochViolation);
    for (CoreId c = 0; c < parts; ++c)
        EXPECT_EQ(sh.epoch[c], 5u);
}

TEST(SyncLibUnit, McsLockHandoffOrderIsFifo)
{
    SystemConfig cfg = makeConfig(16, AccelMode::None);
    sys::System s(cfg);
    SyncLib lib(SyncLib::Flavor::McsTourSw, 16);
    std::vector<int> order;
    auto worker = [](ThreadApi t, SyncLib *lib, Addr lock, Tick delay,
                     std::vector<int> *order) -> ThreadTask {
        co_await t.compute(delay);
        co_await lib->mutexLock(t, lock);
        order->push_back(static_cast<int>(t.id()));
        co_await t.compute(500);
        co_await lib->mutexUnlock(t, lock);
    };
    // Stagger arrivals so queue order is deterministic.
    for (CoreId c = 0; c < 6; ++c)
        s.start(c, worker(s.api(c), &lib, 0x1000, c * 100, &order));
    ASSERT_TRUE(s.run(10000000));
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(SyncLibUnit, HybridUsesHardwareWhenAvailable)
{
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    sys::System s(cfg);
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    Shared sh;
    for (CoreId c = 0; c < 8; ++c)
        s.start(c, csWorker(s.api(c), &lib, 0x1000, 3, &sh));
    ASSERT_TRUE(s.run(10000000));
    EXPECT_EQ(sh.counter, 24u);
    EXPECT_GT(s.hwCoverage(), 0.9);
}

TEST(SyncLibUnit, Msa0FallbackMatchesPthreadResults)
{
    // The hybrid library on MSA-0 must behave exactly like pthread
    // (all instructions FAIL), just with small instruction overhead.
    Tick pthread_time = 0, msa0_time = 0;
    for (int run = 0; run < 2; ++run) {
        SystemConfig cfg = makeConfig(16, AccelMode::None);
        sys::System s(cfg);
        SyncLib lib(run == 0 ? SyncLib::Flavor::PthreadSw
                             : SyncLib::Flavor::Hw,
                    16);
        Shared sh;
        for (CoreId c = 0; c < 16; ++c)
            s.start(c, csWorker(s.api(c), &lib, 0x1000, 4, &sh));
        ASSERT_TRUE(s.run(50000000));
        EXPECT_EQ(sh.counter, 64u);
        (run == 0 ? pthread_time : msa0_time) = s.makespan();
    }
    // MSA-0 adds only instruction-fail overhead (paper: within ~1%,
    // here we allow slack since contention paths may reorder).
    EXPECT_LT(msa0_time, pthread_time * 2);
}

TEST(SyncLibUnit, TournamentBarrierStress)
{
    SystemConfig cfg = makeConfig(64, AccelMode::None);
    sys::System s(cfg);
    SyncLib lib(SyncLib::Flavor::McsTourSw, 64);
    Shared sh;
    sh.epoch.assign(64, 0);
    for (CoreId c = 0; c < 64; ++c)
        s.start(c, barrierWorker(s.api(c), &lib, 0x2000, 64, 3, &sh));
    ASSERT_TRUE(s.run(50000000));
    EXPECT_FALSE(sh.epochViolation);
    for (unsigned e : sh.epoch)
        EXPECT_EQ(e, 3u);
}

TEST(SyncLibUnit, HybridCondWithLockInHardware)
{
    // Cond falls back to software while its lock stays in hardware:
    // sw_cond_wait must release/re-acquire through the hybrid lock.
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 1);
    cfg.msa.support.condVars = false; // force cond to software
    sys::System s(cfg);
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    Shared sh;
    s.start(1, consumer(s.api(1), &lib, 0x3000, 0x3040, 0x3080, 2, &sh));
    s.start(2, producer(s.api(2), &lib, 0x3000, 0x3040, 0x3080, 2, false));
    ASSERT_TRUE(s.run(50000000));
    EXPECT_EQ(sh.log.size(), 1u);
}

} // namespace
} // namespace sync
} // namespace misar
