/**
 * @file
 * Edge-case and adversarial tests for the MSA/OMU protocol: silent-
 * hold snoop deferral vs hardware grants and software test-and-set,
 * fire-and-forget unlock ordering, migrated unlocks, cond-var
 * suspension, OMU aliasing, tombstones, and randomized mixed stress
 * with mutual-exclusion checking.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/subtask.hh"
#include "cpu/thread_api.hh"
#include "sim/rng.hh"
#include "sync/sync_lib.hh"
#include "system/system.hh"

namespace misar {
namespace msa {
namespace {

using cpu::SyncResult;
using cpu::ThreadApi;
using cpu::ThreadTask;
using cpu::toSyncResult;

SystemConfig
cfgOf(unsigned cores, unsigned entries, bool hwsync = true)
{
    SystemConfig cfg = makeConfig(cores, AccelMode::MsaOmu, entries);
    cfg.msa.hwSyncBitOpt = hwsync;
    return cfg;
}

struct CsCheck
{
    int inCs = 0;
    int maxInCs = 0;
    std::uint64_t entries = 0;
};

/** Acquire via raw instructions with software fallback, check CS. */
cpu::SubTask<>
checkedCs(ThreadApi t, sync::SyncLib *lib, Addr lock, CsCheck *cs,
          Tick hold)
{
    co_await lib->mutexLock(t, lock);
    cs->inCs++;
    cs->maxInCs = std::max(cs->maxInCs, cs->inCs);
    cs->entries++;
    co_await t.compute(hold);
    cs->inCs--;
    co_await lib->mutexUnlock(t, lock);
}

// --- Silent-hold deferral ---------------------------------------------------

TEST(MsaDeferral, SilentHoldBlocksHardwareGrant)
{
    // Core 0 silently holds; core 1's hardware grant must not
    // complete until core 0 releases.
    sys::System s(cfgOf(16, 2));
    std::vector<Tick> events;
    auto holder = [](ThreadApi t, Addr l,
                     std::vector<Tick> *ev) -> ThreadTask {
        co_await t.lockInstr(l);
        co_await t.unlockInstr(l);
        co_await t.compute(20);
        co_await t.lockInstr(l); // silent
        co_await t.compute(4000);
        ev->push_back(t.now()); // release time
        co_await t.unlockInstr(l);
    };
    auto contender = [](ThreadApi t, Addr l,
                        std::vector<Tick> *ev) -> ThreadTask {
        co_await t.compute(500);
        co_await t.lockInstr(l);
        ev->push_back(t.now()); // grant time
        co_await t.unlockInstr(l);
    };
    std::vector<Tick> rel, grant;
    s.start(0, holder(s.api(0), 0x4000, &rel));
    s.start(1, contender(s.api(1), 0x4000, &grant));
    ASSERT_TRUE(s.run(1000000));
    ASSERT_EQ(rel.size(), 1u);
    ASSERT_EQ(grant.size(), 1u);
    EXPECT_GT(grant[0], rel[0]) << "grant completed during silent hold";
}

TEST(MsaDeferral, SilentHoldBlocksSoftwareTas)
{
    // Core 1's raw atomic on the lock word must serialize after core
    // 0's silent critical section (the L1 defers the invalidation).
    sys::System s(cfgOf(16, 2));
    std::vector<Tick> rel, tas;
    auto holder = [](ThreadApi t, Addr l,
                     std::vector<Tick> *ev) -> ThreadTask {
        co_await t.lockInstr(l);
        co_await t.unlockInstr(l);
        co_await t.compute(20);
        co_await t.lockInstr(l); // silent
        co_await t.compute(3000);
        ev->push_back(t.now());
        co_await t.unlockInstr(l);
    };
    auto sw = [](ThreadApi t, Addr l, std::vector<Tick> *ev) -> ThreadTask {
        co_await t.compute(500);
        co_await t.testAndSet(l); // software-style access to the word
        ev->push_back(t.now());
    };
    s.start(0, holder(s.api(0), 0x4000, &rel));
    s.start(1, sw(s.api(1), 0x4000, &tas));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_GT(tas[0], rel[0]) << "TAS completed during silent hold";
}

TEST(MsaDeferral, SilentLockLineNeverEvicted)
{
    // Pressure the set containing a silently-held lock: the line
    // must be pinned and the hold preserved.
    sys::System s(cfgOf(16, 2));
    const Addr lock = 0x4000;
    auto body = [](ThreadApi t, Addr lock) -> ThreadTask {
        co_await t.lockInstr(lock);
        co_await t.unlockInstr(lock);
        co_await t.lockInstr(lock); // silent
        // Touch >l1Ways conflicting blocks (stride = sets*64).
        for (int i = 1; i <= 6; ++i)
            co_await t.write(lock + static_cast<Addr>(i) * 128 * 64, i);
        co_await t.unlockInstr(lock);
    };
    s.start(0, body(s.api(0), lock));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(s.stats().counter("sync.silentLocks").value(), 1u);
}

// --- Unlock ordering --------------------------------------------------------

TEST(MsaUnlock, FireAndForgetKeepsProgramOrder)
{
    // Unlock then immediately re-lock the same lock: FIFO ordering
    // to the home must keep the pair consistent, every time.
    sys::System s(cfgOf(16, 2, false)); // no silent path: all remote
    std::vector<SyncResult> res;
    auto body = [](ThreadApi t, Addr l,
                   std::vector<SyncResult> *res) -> ThreadTask {
        for (int i = 0; i < 20; ++i) {
            res->push_back(toSyncResult(co_await t.lockInstr(l)));
            co_await t.unlockInstr(l);
        }
    };
    s.start(3, body(s.api(3), 0x7000, &res));
    ASSERT_TRUE(s.run(1000000));
    for (auto r : res)
        EXPECT_EQ(r, SyncResult::Success);
}

TEST(MsaUnlock, MigratedUnlockAbortsWaiters)
{
    // An UNLOCK from a core that never acquired (simulating thread
    // migration) frees the lock, aborts waiters to software, and the
    // OMU rebalances once they drain.
    SystemConfig cfg = cfgOf(16, 2, false);
    sys::System s(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, 16);
    CsCheck cs;
    std::vector<SyncResult> unlock_res;

    auto owner = [](ThreadApi t, Addr l) -> ThreadTask {
        co_await t.lockInstr(l);
        co_await t.compute(3000);
        // The "thread" migrates: core 5 will release instead.
    };
    auto migrant = [](ThreadApi t, Addr l,
                      std::vector<SyncResult> *res) -> ThreadTask {
        co_await t.compute(3000);
        res->push_back(toSyncResult(co_await t.unlockInstr(l)));
    };
    auto waiter = [](ThreadApi t, sync::SyncLib *lib, Addr l,
                     CsCheck *cs) -> ThreadTask {
        co_await t.compute(500);
        co_await checkedCs(t, lib, l, cs, 100);
    };
    s.start(0, owner(s.api(0), 0x8000));
    s.start(5, migrant(s.api(5), 0x8000, &unlock_res));
    for (CoreId c = 1; c <= 3; ++c)
        s.start(c, waiter(s.api(c), &lib, 0x8000, &cs));
    ASSERT_TRUE(s.run(10000000));
    ASSERT_EQ(unlock_res.size(), 1u);
    EXPECT_EQ(unlock_res[0], SyncResult::Success); // paper §4.1.2
    EXPECT_EQ(cs.entries, 3u);
    EXPECT_EQ(cs.maxInCs, 1);
    std::uint64_t aborts = 0;
    for (CoreId t = 0; t < 16; ++t)
        aborts += s.stats()
                      .counter("tile" + std::to_string(t) +
                               ".msa.lockAborts")
                      .value();
    EXPECT_GT(aborts, 0u);
}

// --- Suspension edge cases ---------------------------------------------------

TEST(MsaSuspend, CondWaiterAborted)
{
    SystemConfig cfg = cfgOf(16, 4);
    sys::System s(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, 16);
    std::vector<int> woke;
    auto waiter = [](ThreadApi t, sync::SyncLib *lib, Addr c, Addr m,
                     std::vector<int> *woke) -> ThreadTask {
        co_await lib->mutexLock(t, m);
        co_await lib->condWait(t, c, m); // may wake spuriously (abort)
        woke->push_back(static_cast<int>(t.id()));
        co_await lib->mutexUnlock(t, m);
    };
    s.start(1, waiter(s.api(1), &lib, 0x5000, 0x6000, &woke));
    // Interrupt the waiter while it blocks on the cond var.
    s.eventQueue().schedule(3000, [&] { s.core(1).interrupt(); });
    ASSERT_TRUE(s.run(1000000));
    // Spurious wakeup: the thread re-acquired the lock and returned.
    EXPECT_EQ(woke, (std::vector<int>{1}));
    EXPECT_EQ(s.msaSlice(mem::homeTile(0x5000, 16)).omu().count(0x5000),
              0u);
}

TEST(MsaSuspend, InterruptAfterGrantIsHarmless)
{
    sys::System s(cfgOf(16, 2));
    std::vector<CoreId> order;
    auto body = [](ThreadApi t, Addr l,
                   std::vector<CoreId> *order) -> ThreadTask {
        co_await t.lockInstr(l);
        order->push_back(t.id());
        co_await t.compute(2000);
        co_await t.unlockInstr(l);
    };
    s.start(0, body(s.api(0), 0x7000, &order));
    // Interrupt while core 0 *owns* the lock (no pending sync op).
    s.eventQueue().schedule(1000, [&] { s.core(0).interrupt(); });
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(order, (std::vector<CoreId>{0}));
}

// --- OMU properties -----------------------------------------------------------

TEST(MsaOmuEdge, AliasingIsSafe)
{
    // One OMU counter: every address aliases. Correctness must hold;
    // only coverage may suffer.
    SystemConfig cfg = cfgOf(16, 1, false);
    cfg.msa.omuCounters = 1;
    sys::System s(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, 16);
    CsCheck cs[4];
    auto body = [](ThreadApi t, sync::SyncLib *lib, Addr l,
                   CsCheck *cs) -> ThreadTask {
        for (int i = 0; i < 6; ++i)
            co_await checkedCs(t, lib, l, cs, 30);
    };
    for (CoreId c = 0; c < 16; ++c)
        s.start(c,
                body(s.api(c), &lib, 0x100 + (c % 4) * 16 * 64,
                     &cs[c % 4]));
    ASSERT_TRUE(s.run(50000000));
    std::uint64_t total = 0;
    for (auto &check : cs) {
        EXPECT_EQ(check.maxInCs, 1);
        total += check.entries;
    }
    EXPECT_EQ(total, 96u);
}

TEST(MsaOmuEdge, CountersBalancedAfterQuiescence)
{
    SystemConfig cfg = cfgOf(16, 1, false);
    sys::System s(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, 16);
    CsCheck cs;
    auto body = [](ThreadApi t, sync::SyncLib *lib, Addr l,
                   CsCheck *cs) -> ThreadTask {
        for (int i = 0; i < 4; ++i)
            co_await checkedCs(t, lib, l, cs, 25);
    };
    // Many locks all homed on tile 0 to force constant overflow.
    for (CoreId c = 0; c < 16; ++c)
        s.start(c, body(s.api(c), &lib, (c / 2) * 16 * 64, &cs));
    ASSERT_TRUE(s.run(50000000));
    // After the system quiesces, every OMU counter must be zero.
    for (Addr a = 0; a < 8; ++a)
        EXPECT_EQ(s.msaSlice(0).omu().count(a * 16 * 64), 0u)
            << "lock " << a;
}

// --- No-OMU (Fig 7) behaviour --------------------------------------------------

TEST(MsaNoOmu, EntriesNeverFreed)
{
    SystemConfig cfg = cfgOf(16, 2, false);
    cfg.msa.omuEnabled = false;
    sys::System s(cfg);
    std::vector<SyncResult> res;
    auto body = [](ThreadApi t, Addr l,
                   std::vector<SyncResult> *res) -> ThreadTask {
        res->push_back(toSyncResult(co_await t.lockInstr(l)));
        co_await t.unlockInstr(l);
    };
    s.start(0, body(s.api(0), 0x9000, &res));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(res[0], SyncResult::Success);
    // Entry still present after release.
    EXPECT_EQ(s.msaSlice(mem::homeTile(0x9000, 16)).validEntries(), 1u);
}

TEST(MsaNoOmu, AddressStaysSoftwareForever)
{
    SystemConfig cfg = cfgOf(16, 1, false);
    cfg.msa.omuEnabled = false;
    sys::System s(cfg);
    std::vector<SyncResult> res;
    auto body = [](ThreadApi t, Addr a, Addr b,
                   std::vector<SyncResult> *res) -> ThreadTask {
        // Lock a claims the single entry forever.
        res->push_back(toSyncResult(co_await t.lockInstr(a)));
        co_await t.unlockInstr(a);
        // Lock b (same home) can never be accelerated...
        res->push_back(toSyncResult(co_await t.lockInstr(b)));
        co_await t.unlockInstr(b);
        res->push_back(toSyncResult(co_await t.lockInstr(b)));
        co_await t.unlockInstr(b);
        // ...while lock a stays in hardware.
        res->push_back(toSyncResult(co_await t.lockInstr(a)));
        co_await t.unlockInstr(a);
    };
    s.start(2, body(s.api(2), 0x0, 16 * 64, &res));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(res[0], SyncResult::Success);
    EXPECT_EQ(res[1], SyncResult::Fail);
    EXPECT_EQ(res[2], SyncResult::Fail);
    EXPECT_EQ(res[3], SyncResult::Success);
}

// --- Randomized mixed stress ---------------------------------------------------

class MsaStressTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MsaStressTest, MixedPrimitivesKeepInvariants)
{
    SystemConfig cfg = cfgOf(16, GetParam() % 2 ? 1 : 2);
    sys::System s(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, 16);
    CsCheck cs[4];
    std::vector<unsigned> epochs(16, 0);

    auto body = [](ThreadApi t, sync::SyncLib *lib, std::uint64_t seed,
                   CsCheck *cs, std::vector<unsigned> *epochs)
        -> ThreadTask {
        Rng rng(seed + t.id() * 977);
        for (int i = 0; i < 12; ++i) {
            unsigned which = static_cast<unsigned>(rng.range(4));
            Addr lock = 0x100 + which * 16 * 64;
            co_await checkedCs(t, lib, lock, &cs[which],
                               10 + rng.range(40));
            co_await t.compute(rng.range(100));
            if (i % 4 == 3) {
                co_await lib->barrierWait(t, 0xb000, 16);
                (*epochs)[t.id()]++;
            }
        }
    };
    for (CoreId c = 0; c < 16; ++c)
        s.start(c, body(s.api(c), &lib, GetParam(), cs, &epochs));
    ASSERT_TRUE(s.run(100000000));
    for (int w = 0; w < 4; ++w)
        EXPECT_EQ(cs[w].maxInCs, 1) << "lock " << w;
    std::uint64_t total = 0;
    for (int w = 0; w < 4; ++w)
        total += cs[w].entries;
    EXPECT_EQ(total, 16u * 12u);
    for (unsigned e : epochs)
        EXPECT_EQ(e, 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MsaStressTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

} // namespace
} // namespace msa
} // namespace misar
