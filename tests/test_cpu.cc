/**
 * @file
 * Tests for the coroutine thread-program machinery and core timing:
 * compute timing, memory ops through the coroutine path, nested
 * SubTask call chains, sync-instruction dispatch, and determinism.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "cpu/subtask.hh"
#include "cpu/thread_api.hh"
#include "mem/mem_system.hh"
#include "sim/config.hh"

namespace misar {
namespace cpu {
namespace {

/** Sync unit stub: records calls, returns a canned result. */
class StubSyncUnit : public SyncUnit
{
  public:
    void
    execute(CoreId core, const Op &op, Cb cb) override
    {
        calls.push_back({core, op.instr, op.addr});
        cb(result);
    }

    struct Call
    {
        CoreId core;
        SyncInstr instr;
        Addr addr;
    };
    std::vector<Call> calls;
    SyncResult result = SyncResult::Fail;
};

struct CpuFixture
{
    EventQueue eq;
    SystemConfig cfg;
    StatRegistry stats;
    std::unique_ptr<mem::MemSystem> ms;
    std::vector<std::unique_ptr<Core>> cores;
    StubSyncUnit stub;

    explicit CpuFixture(unsigned n = 16)
    {
        cfg = makeConfig(n, AccelMode::MsaOmu, 2);
        ms = std::make_unique<mem::MemSystem>(eq, cfg, stats);
        for (CoreId c = 0; c < n; ++c) {
            cores.push_back(std::make_unique<Core>(eq, cfg.core, c,
                                                   ms->l1(c), stats));
            cores.back()->setSyncUnit(&stub);
        }
    }

    ThreadApi api(CoreId c) { return ThreadApi(*cores[c]); }
};

ThreadTask
computeBody(ThreadApi t, Tick cycles)
{
    co_await t.compute(cycles);
}

TEST(Cpu, ComputeTakesExactCycles)
{
    CpuFixture f;
    f.cores[0]->start(computeBody(f.api(0), 123));
    f.eq.run();
    EXPECT_TRUE(f.cores[0]->finished());
    EXPECT_EQ(f.cores[0]->finishTick(), 123u);
}

ThreadTask
rmwBody(ThreadApi t, Addr a, std::uint64_t *out)
{
    std::uint64_t v = co_await t.read(a);
    co_await t.write(a, v + 5);
    *out = co_await t.read(a);
}

TEST(Cpu, MemoryOpsThroughCoroutine)
{
    CpuFixture f;
    std::uint64_t out = 0;
    f.ms->fmem().write(0x1000, 37);
    f.cores[2]->start(rmwBody(f.api(2), 0x1000, &out));
    f.eq.run();
    EXPECT_EQ(out, 42u);
}

ThreadTask
atomicBody(ThreadApi t, Addr a, int n)
{
    for (int i = 0; i < n; ++i)
        co_await t.fetchAdd(a, 1);
}

TEST(Cpu, ConcurrentThreadsAtomicSum)
{
    CpuFixture f;
    for (CoreId c = 0; c < 16; ++c)
        f.cores[c]->start(atomicBody(f.api(c), 0x2000, 10));
    ASSERT_TRUE(f.eq.run(10000000));
    for (CoreId c = 0; c < 16; ++c)
        EXPECT_TRUE(f.cores[c]->finished());
    EXPECT_EQ(f.ms->fmem().read(0x2000), 160u);
}

SubTask<std::uint64_t>
addSub(ThreadApi t, Addr a, std::uint64_t v)
{
    std::uint64_t old = co_await t.fetchAdd(a, v);
    co_return old + v;
}

SubTask<std::uint64_t>
doubleAdd(ThreadApi t, Addr a, std::uint64_t v)
{
    // Nested subtask calls.
    co_await addSub(t, a, v);
    std::uint64_t r = co_await addSub(t, a, v);
    co_return r;
}

ThreadTask
nestedBody(ThreadApi t, Addr a, std::uint64_t *out)
{
    *out = co_await doubleAdd(t, a, 3);
}

TEST(Cpu, NestedSubTasks)
{
    CpuFixture f;
    std::uint64_t out = 0;
    f.cores[1]->start(nestedBody(f.api(1), 0x3000, &out));
    f.eq.run();
    EXPECT_EQ(out, 6u);
    EXPECT_EQ(f.ms->fmem().read(0x3000), 6u);
}

SubTask<int>
recurse(ThreadApi t, int depth)
{
    if (depth == 0) {
        co_await t.compute(1);
        co_return 0;
    }
    int below = co_await recurse(t, depth - 1);
    co_return below + 1;
}

ThreadTask
deepBody(ThreadApi t, int *out)
{
    *out = co_await recurse(t, 500);
}

TEST(Cpu, DeepRecursionViaSymmetricTransfer)
{
    CpuFixture f;
    int out = -1;
    f.cores[0]->start(deepBody(f.api(0), &out));
    f.eq.run();
    EXPECT_EQ(out, 500);
}

ThreadTask
syncBody(ThreadApi t, Addr a, SyncResult *out)
{
    std::uint64_t r = co_await t.lockInstr(a);
    *out = toSyncResult(r);
}

TEST(Cpu, SyncInstrReachesUnitAndReturnsResult)
{
    CpuFixture f;
    SyncResult out = SyncResult::Success;
    f.stub.result = SyncResult::Fail;
    f.cores[3]->start(syncBody(f.api(3), 0xabc0, &out));
    f.eq.run();
    EXPECT_EQ(out, SyncResult::Fail);
    ASSERT_EQ(f.stub.calls.size(), 1u);
    EXPECT_EQ(f.stub.calls[0].core, 3u);
    EXPECT_EQ(f.stub.calls[0].instr, SyncInstr::Lock);
    EXPECT_EQ(f.stub.calls[0].addr, 0xabc0u);
}

TEST(Cpu, SyncInstrChargesFenceLatency)
{
    CpuFixture f;
    SyncResult out = SyncResult::Success;
    f.cores[0]->start(syncBody(f.api(0), 0x10, &out));
    f.eq.run();
    EXPECT_GE(f.cores[0]->finishTick(), f.cfg.core.syncFenceLatency);
}

ThreadTask
allInstrBody(ThreadApi t)
{
    co_await t.lockInstr(0x100);
    co_await t.unlockInstr(0x100);
    co_await t.barrierInstr(0x200, 16);
    co_await t.condWaitInstr(0x300, 0x100);
    co_await t.condSignalInstr(0x300);
    co_await t.condBcastInstr(0x300);
    co_await t.finishInstr(0x300);
}

TEST(Cpu, AllSevenSyncInstructionsDispatch)
{
    CpuFixture f;
    f.cores[0]->start(allInstrBody(f.api(0)));
    f.eq.run();
    ASSERT_EQ(f.stub.calls.size(), 7u);
    EXPECT_EQ(f.stub.calls[0].instr, SyncInstr::Lock);
    EXPECT_EQ(f.stub.calls[1].instr, SyncInstr::Unlock);
    EXPECT_EQ(f.stub.calls[2].instr, SyncInstr::Barrier);
    EXPECT_EQ(f.stub.calls[3].instr, SyncInstr::CondWait);
    EXPECT_EQ(f.stub.calls[4].instr, SyncInstr::CondSignal);
    EXPECT_EQ(f.stub.calls[5].instr, SyncInstr::CondBcast);
    EXPECT_EQ(f.stub.calls[6].instr, SyncInstr::Finish);
}

TEST(Cpu, DeterministicAcrossRuns)
{
    Tick first = 0;
    for (int run = 0; run < 2; ++run) {
        CpuFixture f;
        for (CoreId c = 0; c < 16; ++c)
            f.cores[c]->start(atomicBody(f.api(c), 0x9000, 20));
        f.eq.run();
        if (run == 0)
            first = f.eq.now();
        else
            EXPECT_EQ(f.eq.now(), first);
    }
}

TEST(Cpu, StatsCountOps)
{
    CpuFixture f;
    std::uint64_t out;
    f.cores[0]->start(rmwBody(f.api(0), 0x100, &out));
    f.eq.run();
    EXPECT_EQ(f.stats.counter("core0.loads").value(), 2u);
    EXPECT_EQ(f.stats.counter("core0.stores").value(), 1u);
}

} // namespace
} // namespace cpu
} // namespace misar
