/**
 * @file
 * Unit and property tests for the coherent memory hierarchy:
 * read/write/atomic correctness, MESI state transitions, ping-pong
 * timing, eviction behaviour, InstallE push, and randomized
 * coherence stress with a sequential reference model.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "mem/mem_system.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace misar {
namespace mem {
namespace {

struct MemFixture
{
    EventQueue eq;
    SystemConfig cfg;
    StatRegistry stats;
    std::unique_ptr<MemSystem> ms;

    explicit MemFixture(unsigned cores = 16)
    {
        cfg = makeConfig(cores, AccelMode::MsaOmu, 2);
        ms = std::make_unique<MemSystem>(eq, cfg, stats);
    }

    /** Blocking-style read: run the sim until the access completes. */
    std::uint64_t
    read(CoreId c, Addr a)
    {
        std::uint64_t v = 0;
        bool done = false;
        ms->l1(c).read(a, [&](std::uint64_t r) {
            v = r;
            done = true;
        });
        eq.run();
        EXPECT_TRUE(done);
        return v;
    }

    std::uint64_t
    write(CoreId c, Addr a, std::uint64_t v)
    {
        std::uint64_t old = 0;
        bool done = false;
        ms->l1(c).write(a, v, [&](std::uint64_t r) {
            old = r;
            done = true;
        });
        eq.run();
        EXPECT_TRUE(done);
        return old;
    }

    std::uint64_t
    atomic(CoreId c, Addr a, AtomicOp op, std::uint64_t o1,
           std::uint64_t o2 = 0)
    {
        std::uint64_t old = 0;
        bool done = false;
        ms->l1(c).atomic(a, op, o1, o2, [&](std::uint64_t r) {
            old = r;
            done = true;
        });
        eq.run();
        EXPECT_TRUE(done);
        return old;
    }
};

TEST(Mem, ReadReturnsZeroInitially)
{
    MemFixture f;
    EXPECT_EQ(f.read(0, 0x1000), 0u);
}

TEST(Mem, WriteThenReadSameCore)
{
    MemFixture f;
    f.write(3, 0x1000, 77);
    EXPECT_EQ(f.read(3, 0x1000), 77u);
}

TEST(Mem, WriteThenReadOtherCore)
{
    MemFixture f;
    f.write(0, 0x2000, 123);
    EXPECT_EQ(f.read(15, 0x2000), 123u);
}

TEST(Mem, FirstReadGetsExclusive)
{
    MemFixture f;
    f.read(2, 0x3000);
    EXPECT_EQ(f.ms->l1(2).state(0x3000), L1State::Exclusive);
    EXPECT_TRUE(f.ms->homeOf(blockAlign(0x3000)).isOwner(blockAlign(0x3000),
                                                         2));
}

TEST(Mem, SecondReaderDowngradesToShared)
{
    MemFixture f;
    f.read(2, 0x3000);
    f.read(5, 0x3000);
    EXPECT_EQ(f.ms->l1(2).state(0x3000), L1State::Shared);
    EXPECT_EQ(f.ms->l1(5).state(0x3000), L1State::Shared);
}

TEST(Mem, WriterInvalidatesSharers)
{
    MemFixture f;
    f.read(1, 0x4000);
    f.read(2, 0x4000);
    f.read(3, 0x4000);
    f.write(4, 0x4000, 9);
    EXPECT_EQ(f.ms->l1(1).state(0x4000), L1State::Invalid);
    EXPECT_EQ(f.ms->l1(2).state(0x4000), L1State::Invalid);
    EXPECT_EQ(f.ms->l1(3).state(0x4000), L1State::Invalid);
    EXPECT_EQ(f.ms->l1(4).state(0x4000), L1State::Modified);
    EXPECT_EQ(f.read(1, 0x4000), 9u);
}

TEST(Mem, SilentEUpgrade)
{
    MemFixture f;
    f.read(6, 0x5000); // E
    std::uint64_t hits_before =
        f.stats.counter("tile6.l1.hits").value();
    f.write(6, 0x5000, 1); // silent E->M, must be a hit
    EXPECT_EQ(f.stats.counter("tile6.l1.hits").value(), hits_before + 1);
    EXPECT_EQ(f.ms->l1(6).state(0x5000), L1State::Modified);
}

TEST(Mem, UpgradeFromShared)
{
    MemFixture f;
    f.read(1, 0x6000);
    f.read(2, 0x6000); // both S
    f.write(1, 0x6000, 5); // upgrade, invalidates 2
    EXPECT_EQ(f.ms->l1(1).state(0x6000), L1State::Modified);
    EXPECT_EQ(f.ms->l1(2).state(0x6000), L1State::Invalid);
    EXPECT_EQ(f.read(2, 0x6000), 5u);
}

TEST(Mem, AtomicTestAndSet)
{
    MemFixture f;
    EXPECT_EQ(f.atomic(0, 0x7000, AtomicOp::TestAndSet, 0), 0u);
    EXPECT_EQ(f.atomic(1, 0x7000, AtomicOp::TestAndSet, 0), 1u);
    EXPECT_EQ(f.read(2, 0x7000), 1u);
}

TEST(Mem, AtomicFetchAdd)
{
    MemFixture f;
    for (CoreId c = 0; c < 16; ++c)
        f.atomic(c, 0x8000, AtomicOp::FetchAdd, 1);
    EXPECT_EQ(f.read(0, 0x8000), 16u);
}

TEST(Mem, AtomicCompareSwap)
{
    MemFixture f;
    EXPECT_EQ(f.atomic(0, 0x9000, AtomicOp::CompareSwap, 0, 42), 0u);
    EXPECT_EQ(f.read(1, 0x9000), 42u);
    // Failing CAS leaves the value alone.
    EXPECT_EQ(f.atomic(2, 0x9000, AtomicOp::CompareSwap, 0, 99), 42u);
    EXPECT_EQ(f.read(3, 0x9000), 42u);
}

TEST(Mem, AtomicSwap)
{
    MemFixture f;
    f.write(0, 0xa000, 7);
    EXPECT_EQ(f.atomic(1, 0xa000, AtomicOp::Swap, 13), 7u);
    EXPECT_EQ(f.read(2, 0xa000), 13u);
}

TEST(Mem, RemoteAccessSlowerThanLocalHit)
{
    MemFixture f;
    f.write(0, 0xb000, 1); // core 0 now has M
    Tick t0 = f.eq.now();
    f.read(0, 0xb000); // local L1 hit
    Tick local = f.eq.now() - t0;
    t0 = f.eq.now();
    f.read(9, 0xb000); // remote: home + fwd + transfer
    Tick remote = f.eq.now() - t0;
    EXPECT_GT(remote, local * 4);
}

TEST(Mem, PingPongCostStaysBounded)
{
    // Alternating writers: every write is a full coherence round trip.
    MemFixture f;
    Tick t0 = f.eq.now();
    for (int i = 0; i < 10; ++i) {
        f.write(0, 0xc000, i);
        f.write(15, 0xc000, i);
    }
    Tick total = f.eq.now() - t0;
    EXPECT_GT(total, 20u * 20u);   // each hop chain costs real cycles
    EXPECT_LT(total, 20u * 2000u); // but must not blow up
}

TEST(Mem, EvictionWritebackPreservesData)
{
    MemFixture f;
    // Fill one L1 set beyond capacity with dirty lines. Set index is
    // (block/64) & 127, so stride 64*128 = 8192 keeps one set.
    const unsigned ways = f.cfg.mem.l1Ways;
    for (unsigned i = 0; i <= ways; ++i)
        f.write(0, 0x10000 + static_cast<Addr>(i) * 64 * 128, 100 + i);
    EXPECT_GT(f.stats.counter("tile0.l1.evictions").value(), 0u);
    for (unsigned i = 0; i <= ways; ++i)
        EXPECT_EQ(f.read(1, 0x10000 + static_cast<Addr>(i) * 64 * 128),
                  100u + i);
}

TEST(Mem, ReacquireAfterEvictionStaleRegrant)
{
    // Evict an M line, then immediately re-read it from the same
    // core: the home may see the Get before the Put (different
    // vnets) and must re-grant without corrupting state.
    MemFixture f;
    const unsigned ways = f.cfg.mem.l1Ways;
    f.write(0, 0x20000, 55);
    for (unsigned i = 1; i <= ways; ++i)
        f.write(0, 0x20000 + static_cast<Addr>(i) * 64 * 128, i);
    EXPECT_EQ(f.ms->l1(0).state(0x20000), L1State::Invalid);
    EXPECT_EQ(f.read(0, 0x20000), 55u);
    // Another core must still be able to take the line.
    EXPECT_EQ(f.read(5, 0x20000), 55u);
    f.write(5, 0x20000, 56);
    EXPECT_EQ(f.read(0, 0x20000), 56u);
}

TEST(Mem, InstallEPushSetsHwSync)
{
    MemFixture f;
    const Addr block = blockAlign(0xd000);
    bool done = false;
    f.ms->homeOf(block).grantExclusive(block, 7, true, [&] { done = true; });
    f.eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(f.ms->l1(7).state(block), L1State::Exclusive);
    EXPECT_TRUE(f.ms->l1(7).hasWritableHwSync(block));
}

TEST(Mem, InstallEInvalidatesOthers)
{
    MemFixture f;
    const Addr block = blockAlign(0xd000);
    f.read(1, block);
    f.read(2, block);
    f.ms->homeOf(block).grantExclusive(block, 3, true, [] {});
    f.eq.run();
    EXPECT_EQ(f.ms->l1(1).state(block), L1State::Invalid);
    EXPECT_EQ(f.ms->l1(2).state(block), L1State::Invalid);
    EXPECT_TRUE(f.ms->l1(3).hasWritableHwSync(block));
}

TEST(Mem, HwSyncClearedOnInvalidation)
{
    MemFixture f;
    const Addr block = blockAlign(0xe000);
    f.ms->homeOf(block).grantExclusive(block, 4, true, [] {});
    f.eq.run();
    EXPECT_TRUE(f.ms->l1(4).hasWritableHwSync(block));
    f.write(5, block, 1); // invalidates core 4's copy
    EXPECT_FALSE(f.ms->l1(4).hasWritableHwSync(block));
}

TEST(Mem, HwSyncClearedOnDowngrade)
{
    MemFixture f;
    const Addr block = blockAlign(0xf000);
    f.ms->homeOf(block).grantExclusive(block, 4, true, [] {});
    f.eq.run();
    f.read(5, block); // downgrades core 4 to S
    EXPECT_FALSE(f.ms->l1(4).hasWritableHwSync(block));
    EXPECT_EQ(f.ms->l1(4).state(block), L1State::Shared);
}

TEST(Mem, NormalReadDoesNotSetHwSync)
{
    MemFixture f;
    f.write(4, 0x11000, 1);
    EXPECT_FALSE(f.ms->l1(4).hasWritableHwSync(0x11000));
}

TEST(Mem, ConcurrentAtomicsSerialize)
{
    // Fire all cores' fetch-adds simultaneously; the blocking
    // directory must serialize them so none is lost.
    MemFixture f;
    unsigned done = 0;
    for (CoreId c = 0; c < 16; ++c)
        f.ms->l1(c).atomic(0x12000, AtomicOp::FetchAdd, 1, 0,
                           [&](std::uint64_t) { ++done; });
    ASSERT_TRUE(f.eq.run(1000000));
    EXPECT_EQ(done, 16u);
    EXPECT_EQ(f.read(0, 0x12000), 16u);
}

TEST(Mem, ConcurrentTestAndSetExactlyOneWinner)
{
    MemFixture f;
    unsigned winners = 0, done = 0;
    for (CoreId c = 0; c < 16; ++c)
        f.ms->l1(c).atomic(0x13000, AtomicOp::TestAndSet, 0, 0,
                           [&](std::uint64_t old) {
            if (old == 0)
                ++winners;
            ++done;
        });
    ASSERT_TRUE(f.eq.run(1000000));
    EXPECT_EQ(done, 16u);
    EXPECT_EQ(winners, 1u);
}

TEST(Mem, LlcSetEvictionAndRefetch)
{
    // Overflow one LLC set with read-shared blocks: the LRU victim is
    // back-invalidated from sharers and refetching it pays DRAM again.
    MemFixture f;
    f.cfg.mem.llcSliceSets = 4; // tiny LLC: 4 sets x 8 ways per slice
    f.ms = std::make_unique<MemSystem>(f.eq, f.cfg, f.stats);
    // Blocks homed on tile 0 mapping to set 0 of its slice:
    // line = k * 16 * 4 (16 tiles, 4 sets).
    auto blk = [](unsigned k) { return static_cast<Addr>(k) * 16 * 4 * 64; };
    for (unsigned k = 0; k < 12; ++k) {
        f.write(1, blk(k), 100 + k);
        f.read(2, blk(k)); // downgrade to Shared so it is evictable
    }
    EXPECT_GT(f.stats.counter("tile0.llc.llcEvictions").value(), 0u);
    // Values survive eviction (memory is the backing store).
    for (unsigned k = 0; k < 12; ++k)
        EXPECT_EQ(f.read(3, blk(k)), 100u + k);
    EXPECT_GT(f.stats.sumCounters("tile"), 0u);
}

TEST(Mem, LlcNeverEvictsOwnedLines)
{
    MemFixture f;
    f.cfg.mem.llcSliceSets = 4;
    f.ms = std::make_unique<MemSystem>(f.eq, f.cfg, f.stats);
    auto blk = [](unsigned k) { return static_cast<Addr>(k) * 16 * 4 * 64; };
    // 12 owned (Modified) lines in a 8-way set: must overflow, not
    // evict, and all values must remain exact.
    for (unsigned k = 0; k < 12; ++k)
        f.write(static_cast<CoreId>(k % 8), blk(k), 200 + k);
    EXPECT_GT(f.stats.counter("tile0.llc.setOverflows").value(), 0u);
    for (unsigned k = 0; k < 12; ++k)
        EXPECT_EQ(f.read(15, blk(k)), 200u + k);
}

// Property test: random single-word operations from random cores,
// executed one at a time, must match a sequential reference model.
class MemRandomTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MemRandomTest, MatchesSequentialReference)
{
    MemFixture f;
    Rng rng(GetParam());
    std::map<Addr, std::uint64_t> ref;
    const std::vector<Addr> addrs = {0x1000, 0x1008, 0x2000, 0x40000,
                                     0x40040, 0x80000};
    for (int i = 0; i < 400; ++i) {
        CoreId c = static_cast<CoreId>(rng.range(16));
        Addr a = addrs[rng.range(addrs.size())];
        switch (rng.range(4)) {
          case 0:
            EXPECT_EQ(f.read(c, a), ref[a]);
            break;
          case 1: {
            std::uint64_t v = rng.next() & 0xffff;
            f.write(c, a, v);
            ref[a] = v;
            break;
          }
          case 2: {
            EXPECT_EQ(f.atomic(c, a, AtomicOp::FetchAdd, 3), ref[a]);
            ref[a] += 3;
            break;
          }
          case 3: {
            std::uint64_t expect = rng.range(2) ? ref[a] : ref[a] + 1;
            EXPECT_EQ(f.atomic(c, a, AtomicOp::CompareSwap, expect, 7),
                      ref[a]);
            if (ref[a] == expect)
                ref[a] = 7;
            break;
          }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemRandomTest,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

// Property test: concurrent random traffic; only atomics, whose sum
// is checked at the end (linearizability of fetch-add).
class MemConcurrentTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(MemConcurrentTest, FetchAddNeverLosesUpdates)
{
    MemFixture f(16);
    Rng rng(GetParam());
    const std::vector<Addr> addrs = {0x1000, 0x2000, 0x3000};
    std::map<Addr, std::uint64_t> expect;
    unsigned done = 0, issued = 0;

    // Each core issues a chain of 30 random fetch-adds.
    std::function<void(CoreId, int)> issue = [&](CoreId c, int left) {
        if (left == 0)
            return;
        Addr a = addrs[rng.range(addrs.size())];
        ++expect[a];
        ++issued;
        f.ms->l1(c).atomic(a, AtomicOp::FetchAdd, 1, 0,
                           [&, c, left](std::uint64_t) {
            ++done;
            issue(c, left - 1);
        });
    };
    for (CoreId c = 0; c < 16; ++c)
        issue(c, 30);
    ASSERT_TRUE(f.eq.run(10000000));
    EXPECT_EQ(done, issued);
    for (auto &[a, cnt] : expect)
        EXPECT_EQ(f.read(0, a), cnt) << "addr " << std::hex << a;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemConcurrentTest,
                         ::testing::Values(7u, 99u, 555u));

} // namespace
} // namespace mem
} // namespace misar
