/**
 * @file
 * Server subsystem tests: arrival-schedule generation, service
 * distributions, end-to-end request accounting, determinism across
 * runs and kernel thread counts, fault-run accounting, admission
 * control, the closed-loop taskqueue port, campaign "server" sweep
 * validation, and the misar_sim CLI guards for the server flags.
 */

#include <sys/wait.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "orch/campaign_spec.hh"
#include "srv/arrival.hh"
#include "srv/server_app.hh"
#include "system/presets.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;
using srv::ArrivalMode;
using srv::ServiceDist;

namespace {

/** Full-field equality of two runs' server blocks. */
void
expectServerEq(const srv::ServerStats &a, const srv::ServerStats &b)
{
    EXPECT_DOUBLE_EQ(a.offeredRate, b.offeredRate);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.stranded, b.stranded);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.knee, b.knee);
    EXPECT_TRUE(a.latency == b.latency);
    EXPECT_EQ(a.rejectedSlo, b.rejectedSlo);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.retryBudgetDenied, b.retryBudgetDenied);
    EXPECT_EQ(a.sloMet, b.sloMet);
    EXPECT_EQ(a.sloTicks, b.sloTicks);
    EXPECT_EQ(a.retryPolicy, b.retryPolicy);
    EXPECT_DOUBLE_EQ(a.goodput, b.goodput);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t i = 0; i < a.tenants.size(); ++i) {
        const srv::TenantStats &ta = a.tenants[i], &tb = b.tenants[i];
        EXPECT_EQ(ta.name, tb.name);
        EXPECT_DOUBLE_EQ(ta.offeredRate, tb.offeredRate);
        EXPECT_EQ(ta.generated, tb.generated);
        EXPECT_EQ(ta.completed, tb.completed);
        EXPECT_EQ(ta.rejected, tb.rejected);
        EXPECT_EQ(ta.rejectedSlo, tb.rejectedSlo);
        EXPECT_EQ(ta.stranded, tb.stranded);
        EXPECT_EQ(ta.sloMet, tb.sloMet);
        EXPECT_DOUBLE_EQ(ta.goodput, tb.goodput);
        EXPECT_TRUE(ta.latency == tb.latency);
    }
}

/** The final-disposition conservation invariant. */
void
expectConserved(const srv::ServerStats &s)
{
    EXPECT_EQ(s.generated,
              s.completed + s.rejected + s.rejectedSlo + s.stranded);
}

} // namespace

// --- Arrival schedules ----------------------------------------------------

TEST(Arrival, ScheduleIsDeterministicAndMonotone)
{
    for (ArrivalMode m : {ArrivalMode::Poisson, ArrivalMode::Burst}) {
        srv::RequestSchedule a = srv::makeSchedule(
            m, 2.0, ServiceDist::Exp, 300, 500, 20000, 7);
        srv::RequestSchedule b = srv::makeSchedule(
            m, 2.0, ServiceDist::Exp, 300, 500, 20000, 7);
        EXPECT_EQ(a.arrival, b.arrival);
        EXPECT_EQ(a.service, b.service);

        ASSERT_EQ(a.arrival.size(), 500u);
        for (std::size_t i = 1; i < a.arrival.size(); ++i)
            ASSERT_GE(a.arrival[i], a.arrival[i - 1]) << i;
        for (Tick s : a.service)
            ASSERT_GE(s, 1u);

        srv::RequestSchedule c = srv::makeSchedule(
            m, 2.0, ServiceDist::Exp, 300, 500, 20000, 8);
        EXPECT_NE(a.arrival, c.arrival);
    }

    // Closed mode has no arrival instants.
    srv::RequestSchedule cl = srv::makeSchedule(
        ArrivalMode::Closed, 0.0, ServiceDist::Exp, 300, 64, 20000, 7);
    for (Tick t : cl.arrival)
        EXPECT_EQ(t, 0u);
}

TEST(Arrival, MeanRateRoughlyMatchesOffered)
{
    // 2 req/ktick over 2000 requests: last arrival ~1e6 ticks.
    for (ArrivalMode m : {ArrivalMode::Poisson, ArrivalMode::Burst}) {
        srv::RequestSchedule s = srv::makeSchedule(
            m, 2.0, ServiceDist::Fixed, 300, 2000, 20000, 1);
        const double span = static_cast<double>(s.arrival.back());
        EXPECT_GT(span, 0.7e6) << static_cast<int>(m);
        EXPECT_LT(span, 1.4e6) << static_cast<int>(m);
    }
}

TEST(Arrival, ParseServiceDistNames)
{
    ServiceDist d;
    EXPECT_TRUE(srv::parseServiceDist("fixed", d));
    EXPECT_EQ(d, ServiceDist::Fixed);
    EXPECT_TRUE(srv::parseServiceDist("exp", d));
    EXPECT_EQ(d, ServiceDist::Exp);
    EXPECT_TRUE(srv::parseServiceDist("pareto", d));
    EXPECT_EQ(d, ServiceDist::Pareto);
    EXPECT_FALSE(srv::parseServiceDist("zipf", d));
    EXPECT_FALSE(srv::parseServiceDist("", d));
    // Every advertised name parses back.
    EXPECT_EQ(srv::serviceDistNames(), "fixed, exp, pareto");
}

TEST(Arrival, ServiceDistributionShapes)
{
    srv::RequestSchedule fx = srv::makeSchedule(
        ArrivalMode::Poisson, 2.0, ServiceDist::Fixed, 300, 1000,
        20000, 3);
    for (Tick s : fx.service)
        ASSERT_EQ(s, 300u);

    srv::RequestSchedule ex = srv::makeSchedule(
        ArrivalMode::Poisson, 2.0, ServiceDist::Exp, 300, 4000, 20000,
        3);
    double sum = 0;
    for (Tick s : ex.service)
        sum += static_cast<double>(s);
    const double mean = sum / 4000.0;
    EXPECT_GT(mean, 0.85 * 300);
    EXPECT_LT(mean, 1.15 * 300);

    // Pareto: xm = mean/2, clamped at 50x the mean.
    srv::RequestSchedule pa = srv::makeSchedule(
        ArrivalMode::Poisson, 2.0, ServiceDist::Pareto, 300, 4000,
        20000, 3);
    Tick mx = 0;
    for (Tick s : pa.service) {
        ASSERT_GE(s, 150u);
        ASSERT_LE(s, 300u * 50);
        mx = std::max(mx, s);
    }
    EXPECT_GT(mx, 1000u) << "heavy tail never materialized";
}

TEST(Arrival, ParseRetryPolicyNames)
{
    srv::RetryPolicy p;
    EXPECT_TRUE(srv::parseRetryPolicy("none", p));
    EXPECT_EQ(p, srv::RetryPolicy::None);
    EXPECT_TRUE(srv::parseRetryPolicy("naive", p));
    EXPECT_EQ(p, srv::RetryPolicy::Naive);
    EXPECT_TRUE(srv::parseRetryPolicy("budgeted", p));
    EXPECT_EQ(p, srv::RetryPolicy::Budgeted);
    EXPECT_FALSE(srv::parseRetryPolicy("always", p));
    EXPECT_FALSE(srv::parseRetryPolicy("", p));
    // Every advertised name parses back.
    EXPECT_EQ(srv::retryPolicyNames(), "none, naive, budgeted");
}

TEST(Arrival, ParseTenantMixStrict)
{
    double hi = 0, lo = 0;
    EXPECT_TRUE(srv::parseTenantMix("1:3", hi, lo));
    EXPECT_DOUBLE_EQ(hi, 1.0);
    EXPECT_DOUBLE_EQ(lo, 3.0);
    EXPECT_TRUE(srv::parseTenantMix("0.5:1.5", hi, lo));
    EXPECT_DOUBLE_EQ(hi, 0.5);
    EXPECT_DOUBLE_EQ(lo, 1.5);
    for (const char *bad :
         {"", "1", "1:", ":3", "1:3:5", "0:3", "1:0", "-1:3", "1:-3",
          "x:3", "1:y", "1x:3", "inf:3", "nan:3", "1 :3"})
        EXPECT_FALSE(srv::parseTenantMix(bad, hi, lo)) << bad;
}

TEST(Arrival, TenantScheduleSplitsAndMerges)
{
    srv::RequestSchedule a = srv::makeTenantSchedule(
        ArrivalMode::Burst, 1.0, 3.0, ServiceDist::Exp, 300, 1000,
        20000, 7);
    srv::RequestSchedule b = srv::makeTenantSchedule(
        ArrivalMode::Burst, 1.0, 3.0, ServiceDist::Exp, 300, 1000,
        20000, 7);
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.service, b.service);
    EXPECT_EQ(a.tenant, b.tenant);

    ASSERT_EQ(a.arrival.size(), 1000u);
    ASSERT_EQ(a.tenant.size(), 1000u);
    for (std::size_t i = 1; i < a.arrival.size(); ++i)
        ASSERT_GE(a.arrival[i], a.arrival[i - 1]) << i;

    // Counts split proportionally to the rates (1:3 of 1000).
    unsigned hi = 0;
    for (std::uint8_t t : a.tenant) {
        ASSERT_LE(t, 1u);
        hi += t == 0;
    }
    EXPECT_EQ(hi, 250u);

    // Both tenants present and a different seed moves the arrivals.
    srv::RequestSchedule c = srv::makeTenantSchedule(
        ArrivalMode::Burst, 1.0, 3.0, ServiceDist::Exp, 300, 1000,
        20000, 8);
    EXPECT_NE(a.arrival, c.arrival);

    // Single-tenant schedules keep the tenant table empty (inert).
    srv::RequestSchedule s = srv::makeSchedule(
        ArrivalMode::Poisson, 2.0, ServiceDist::Exp, 300, 500, 20000,
        7);
    EXPECT_TRUE(s.tenant.empty());
}

// --- End-to-end runs ------------------------------------------------------

TEST(ServerRun, AccountingInvariantHolds)
{
    const workload::AppSpec &spec = workload::appByName("server-poisson");
    workload::RunResult r =
        workload::runApp(spec, 16, sys::PaperConfig::MsaOmu2, 7);
    ASSERT_TRUE(r.finished);
    ASSERT_TRUE(r.hasServer);
    const srv::ServerStats &s = r.server;
    EXPECT_EQ(s.generated, spec.server.requests);
    expectConserved(s);
    EXPECT_EQ(s.stranded, 0u) << "requests lost without any fault";
    EXPECT_EQ(s.latency.count(), s.completed);
    EXPECT_GT(s.throughput, 0.0);
}

TEST(ServerRun, OverloadShedsAtTheAdmissionBound)
{
    workload::AppSpec spec = workload::appByName("server-poisson");
    spec.server.arrivalRate = 20.0; // far past the knee
    spec.server.queueCap = 4;
    spec.server.requests = 600;
    workload::RunResult r =
        workload::runApp(spec, 16, sys::PaperConfig::MsaOmu2, 7);
    ASSERT_TRUE(r.finished);
    const srv::ServerStats &s = r.server;
    EXPECT_GT(s.rejected, 0u);
    EXPECT_TRUE(s.knee);
    expectConserved(s);
}

TEST(ServerRun, TwoRunsAtFixedSeedAreBitIdentical)
{
    const workload::AppSpec &spec = workload::appByName("server-burst");
    workload::RunResult a =
        workload::runApp(spec, 16, sys::PaperConfig::MsaOmu2, 5);
    workload::RunResult b =
        workload::runApp(spec, 16, sys::PaperConfig::MsaOmu2, 5);
    ASSERT_TRUE(a.finished && b.finished);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.hwOps, b.hwOps);
    EXPECT_EQ(a.swOps, b.swOps);
    expectServerEq(a.server, b.server);
}

TEST(ServerRun, StatsIdenticalAcrossKernelThreadCounts)
{
    const workload::AppSpec &spec = workload::appByName("server-poisson");
    sync::SyncLib::Flavor fl = sys::flavorFor(sys::PaperConfig::MsaOmu2);
    workload::RunResult runs[2];
    for (unsigned i = 0; i < 2; ++i) {
        SystemConfig cfg = sys::configFor(sys::PaperConfig::MsaOmu2, 16);
        cfg.simThreads = i + 1;
        workload::RunResult r =
            workload::runAppWithConfig(spec, cfg, fl, 7);
        ASSERT_TRUE(r.finished) << "threads=" << i + 1;
        runs[i] = std::move(r);
    }
    EXPECT_EQ(runs[0].makespan, runs[1].makespan);
    EXPECT_EQ(runs[0].hwOps, runs[1].hwOps);
    EXPECT_EQ(runs[0].swOps, runs[1].swOps);
    expectServerEq(runs[0].server, runs[1].server);
}

TEST(ServerRun, CoreFaultsNeverLoseRequests)
{
    // A core dies mid-run: its in-flight request may be stranded, but
    // every generated request is still accounted for — completed,
    // rejected, or stranded, never silently lost.
    const workload::AppSpec &spec = workload::appByName("server-poisson");
    workload::RunResult r = workload::runApp(
        spec, 16, sys::PaperConfig::MsaOmu2CoreFaults, 7);
    ASSERT_TRUE(r.finished);
    EXPECT_GT(r.coreKills, 0u) << "fault preset did not kill a core";
    const srv::ServerStats &s = r.server;
    EXPECT_EQ(s.generated, spec.server.requests);
    expectConserved(s);
}

TEST(ServerRun, CoreFaultRunsAreDeterministicToo)
{
    const workload::AppSpec &spec = workload::appByName("server-poisson");
    workload::RunResult a = workload::runApp(
        spec, 16, sys::PaperConfig::MsaOmu2CoreFaults, 9);
    workload::RunResult b = workload::runApp(
        spec, 16, sys::PaperConfig::MsaOmu2CoreFaults, 9);
    ASSERT_TRUE(a.finished && b.finished);
    EXPECT_EQ(a.makespan, b.makespan);
    expectServerEq(a.server, b.server);
}

TEST(ServerRun, ClosedLoopTaskqueueCompletesEverything)
{
    const workload::AppSpec &spec = workload::appByName("taskqueue");
    workload::RunResult r =
        workload::runApp(spec, 16, sys::PaperConfig::MsaOmu2, 1);
    ASSERT_TRUE(r.finished);
    ASSERT_TRUE(r.hasServer);
    const srv::ServerStats &s = r.server;
    EXPECT_EQ(s.completed, 16u * spec.server.tasksPerWorker);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.stranded, 0u);
    EXPECT_TRUE(s.latency.empty()) << "closed loop has no arrivals";
    EXPECT_FALSE(s.knee);
}

TEST(ServerRun, ObservabilityIsInert)
{
    // Profiling/sampling must not perturb the simulation: identical
    // makespan and server accounting with obs fully on and fully off.
    const workload::AppSpec &spec = workload::appByName("server-poisson");
    sync::SyncLib::Flavor fl = sys::flavorFor(sys::PaperConfig::MsaOmu2);
    SystemConfig on = sys::configFor(sys::PaperConfig::MsaOmu2, 16);
    on.obs.profileSync = true;
    on.obs.sampleInterval = 5000;
    on.obs.heatmapEnabled = true;
    SystemConfig off = sys::configFor(sys::PaperConfig::MsaOmu2, 16);
    workload::RunResult a = workload::runAppWithConfig(spec, on, fl, 3);
    workload::RunResult b = workload::runAppWithConfig(spec, off, fl, 3);
    ASSERT_TRUE(a.finished && b.finished);
    EXPECT_EQ(a.makespan, b.makespan);
    expectServerEq(a.server, b.server);
}

// --- Campaign "server" sweep validation -----------------------------------

namespace {

std::string
specJson(const std::string &apps, const std::string &server)
{
    return R"({"name":"t","presets":["msa-omu"],"apps":)" + apps +
           R"(,"cores":[16],"seeds":[1])" +
           (server.empty() ? "" : ",\"server\":" + server) + "}";
}

} // namespace

TEST(ServerSweep, UnknownServerKeyIsRejected)
{
    orch::CampaignSpec s;
    std::string err;
    EXPECT_FALSE(orch::CampaignSpec::parse(
        specJson(R"(["server-poisson"])", R"({"arrivalRate":[2]})"), s,
        err));
    EXPECT_NE(err.find("unknown \"server\" key 'arrivalRate'"),
              std::string::npos)
        << err;
}

TEST(ServerSweep, NonServerAppInSweepIsRejected)
{
    orch::CampaignSpec s;
    std::string err;
    ASSERT_TRUE(orch::CampaignSpec::parse(
        specJson(R"(["fft"])", R"({"arrivalRates":[2]})"), s, err))
        << err;
    EXPECT_NE(s.validate().find("non-server app"), std::string::npos);
}

TEST(ServerSweep, RatesOnClosedLoopAppAreRejected)
{
    orch::CampaignSpec s;
    std::string err;
    ASSERT_TRUE(orch::CampaignSpec::parse(
        specJson(R"(["taskqueue"])", R"({"arrivalRates":[2]})"), s,
        err))
        << err;
    EXPECT_NE(s.validate().find("closed-loop"), std::string::npos);
}

TEST(ServerSweep, BadServiceDistIsRejected)
{
    orch::CampaignSpec s;
    std::string err;
    ASSERT_TRUE(orch::CampaignSpec::parse(
        specJson(R"(["server-poisson"])",
                 R"({"arrivalRates":[2],"serviceDist":"zipf"})"),
        s, err))
        << err;
    EXPECT_NE(s.validate().find("unknown server.serviceDist"),
              std::string::npos);
}

TEST(ServerSweep, RateAxisExpandsBetweenCoresAndSeeds)
{
    orch::CampaignSpec s;
    std::string err;
    ASSERT_TRUE(orch::CampaignSpec::parse(
        specJson(R"(["server-poisson"])", R"({"arrivalRates":[2,4]})"),
        s, err))
        << err;
    ASSERT_EQ(s.validate(), "");
    std::vector<orch::JobSpec> jobs = s.expand();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].key(), "msa-omu|server-poisson|c16|s1|r0|a2");
    EXPECT_EQ(jobs[1].key(), "msa-omu|server-poisson|c16|s1|r0|a4");
    // Without a sweep the historical key shape is untouched.
    orch::CampaignSpec plain;
    ASSERT_TRUE(orch::CampaignSpec::parse(
        specJson(R"(["server-poisson"])", ""), plain, err));
    ASSERT_EQ(plain.validate(), "");
    EXPECT_EQ(plain.expand()[0].key(),
              "msa-omu|server-poisson|c16|s1|r0");
}

TEST(ServerSweep, OverloadKnobsAreValidated)
{
    struct Case
    {
        const char *server;
        const char *needle;
    };
    const Case cases[] = {
        {R"({"arrivalRates":[2],"slo":0})",
         "\"server.slo\" must be a positive tick count"},
        {R"({"arrivalRates":[2],"retryPolicies":["always"]})",
         "unknown server.retryPolicies entry 'always'"},
        {R"({"arrivalRates":[2],"retryPolicies":[]})",
         "\"server.retryPolicies\" must be a non-empty"},
        {R"({"arrivalRates":[2],"retryBudget":0.1})",
         "server.retryBudget needs \"budgeted\""},
        {R"({"arrivalRates":[2],"retryPolicies":["naive"],)"
         R"("retryBudget":0.1})",
         "server.retryBudget needs \"budgeted\""},
        {R"({"arrivalRates":[2],"retryBudget":-0.1})",
         "\"server.retryBudget\" must be a positive"},
        {R"({"tenantMixes":["1:3:5"]})",
         "bad server.tenantMixes entry '1:3:5'"},
        {R"({"tenantMixes":["1:3"],"arrivalRates":[2]})",
         "mutually exclusive"},
        {R"({"slo":20000,"budget":0.1})",
         "unknown \"server\" key 'budget'"},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.server);
        orch::CampaignSpec s;
        std::string err;
        EXPECT_FALSE(orch::CampaignSpec::parse(
            specJson(R"(["server-poisson"])", c.server), s, err));
        EXPECT_NE(err.find(c.needle), std::string::npos) << err;
    }
}

TEST(ServerSweep, OverloadAxesOnClosedLoopAppAreRejected)
{
    for (const char *server :
         {R"({"slo":20000})", R"({"retryPolicies":["naive"]})",
          R"({"tenantMixes":["1:3"]})"}) {
        SCOPED_TRACE(server);
        orch::CampaignSpec s;
        std::string err;
        ASSERT_TRUE(orch::CampaignSpec::parse(
            specJson(R"(["taskqueue"])", server), s, err))
            << err;
        EXPECT_NE(s.validate().find("closed-loop"), std::string::npos);
    }
}

TEST(ServerSweep, PolicyAndMixAxesExpandIntoJobKeys)
{
    orch::CampaignSpec s;
    std::string err;
    ASSERT_TRUE(orch::CampaignSpec::parse(
        specJson(R"(["server-poisson"])",
                 R"({"arrivalRates":[2],"slo":20000,)"
                 R"("retryPolicies":["none","budgeted"],)"
                 R"("retryBudget":0.1})"),
        s, err))
        << err;
    ASSERT_EQ(s.validate(), "");
    std::vector<orch::JobSpec> jobs = s.expand();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].key(),
              "msa-omu|server-poisson|c16|s1|r0|a2|pnone");
    EXPECT_EQ(jobs[1].key(),
              "msa-omu|server-poisson|c16|s1|r0|a2|pbudgeted");

    orch::CampaignSpec m;
    ASSERT_TRUE(orch::CampaignSpec::parse(
        specJson(R"(["server-burst"])",
                 R"({"slo":30000,"tenantMixes":["1:3"]})"),
        m, err))
        << err;
    ASSERT_EQ(m.validate(), "");
    std::vector<orch::JobSpec> mjobs = m.expand();
    ASSERT_EQ(mjobs.size(), 1u);
    EXPECT_EQ(mjobs[0].key(), "msa-omu|server-burst|c16|s1|r0|t1:3");
}

// --- misar_sim CLI guards -------------------------------------------------

namespace {

/** Run the real simulator binary; return its exit code + output. */
int
runSim(const std::string &args, std::string &output)
{
    const std::string cmd =
        std::string(MISAR_SIM_PATH) + " " + args + " 2>&1";
    FILE *p = ::popen(cmd.c_str(), "r");
    EXPECT_NE(p, nullptr);
    if (!p)
        return -1;
    char buf[512];
    output.clear();
    while (std::fgets(buf, sizeof(buf), p))
        output += buf;
    int st = ::pclose(p);
    return WIFEXITED(st) ? WEXITSTATUS(st) : -1;
}

} // namespace

TEST(ServerCli, BadServerFlagsAreRejected)
{
    struct Case
    {
        const char *args;
        const char *needle;
    };
    const Case cases[] = {
        {"--app server-poisson --arrival-rate 0",
         "--arrival-rate expects a positive number"},
        {"--app server-poisson --arrival-rate -2",
         "--arrival-rate expects a positive number"},
        {"--app server-poisson --arrival-rate junk",
         "--arrival-rate expects a positive number"},
        {"--app server-poisson --arrival-rate 2x",
         "--arrival-rate expects a positive number"},
        {"--app server-poisson --arrival-rate inf",
         "--arrival-rate expects a positive number"},
        {"--app server-poisson --service-dist zipf",
         "unknown --service-dist 'zipf'"},
        {"--app fft --arrival-rate 2",
         "only apply to server workloads"},
        {"--app fft --queue-cap 8", "only apply to server workloads"},
        {"--app taskqueue --arrival-rate 2",
         "does not apply to the closed-loop"},
        {"--app server-poisson --slo 0",
         "--slo expects a positive"},
        {"--app server-poisson --slo -5",
         "--slo expects a positive"},
        {"--app server-poisson --retry-policy always",
         "unknown --retry-policy 'always'"},
        {"--app server-poisson --retry-budget 0.1",
         "--retry-budget only applies with --retry-policy budgeted"},
        {"--app server-poisson --retry-policy naive "
         "--retry-budget 0.1",
         "--retry-budget only applies with --retry-policy budgeted"},
        {"--app server-poisson --retry-budget 0",
         "--retry-budget expects a positive"},
        {"--app server-poisson --tenants 1:3:5",
         "--tenants expects HI:LO"},
        {"--app server-poisson --tenants 0:3",
         "--tenants expects HI:LO"},
        {"--app server-poisson --arrival-rate 2 --tenants 1:3",
         "sums to 4, not the --arrival-rate 2"},
        {"--app fft --slo 20000", "only apply to server workloads"},
        {"--app taskqueue --slo 20000",
         "do not apply to the closed-loop"},
        {"--app taskqueue --retry-policy naive",
         "do not apply to the closed-loop"},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.args);
        std::string out;
        EXPECT_EQ(runSim(c.args, out), 1) << out;
        EXPECT_NE(out.find(c.needle), std::string::npos) << out;
    }
}

TEST(ServerCli, ServerRunPrintsRequestAccounting)
{
    std::string out;
    const int rc = runSim(
        "--app server-poisson --cores 16 --config msa-omu "
        "--arrival-rate 4 --service-dist fixed --queue-cap 16",
        out);
    EXPECT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("requests"), std::string::npos) << out;
    EXPECT_NE(out.find("req latency"), std::string::npos) << out;
}
