/**
 * @file
 * Server subsystem tests: arrival-schedule generation, service
 * distributions, end-to-end request accounting, determinism across
 * runs and kernel thread counts, fault-run accounting, admission
 * control, the closed-loop taskqueue port, campaign "server" sweep
 * validation, and the misar_sim CLI guards for the server flags.
 */

#include <sys/wait.h>

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "orch/campaign_spec.hh"
#include "srv/arrival.hh"
#include "srv/server_app.hh"
#include "system/presets.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;
using srv::ArrivalMode;
using srv::ServiceDist;

namespace {

/** Full-field equality of two runs' server blocks. */
void
expectServerEq(const srv::ServerStats &a, const srv::ServerStats &b)
{
    EXPECT_DOUBLE_EQ(a.offeredRate, b.offeredRate);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.rejected, b.rejected);
    EXPECT_EQ(a.stranded, b.stranded);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.knee, b.knee);
    EXPECT_TRUE(a.latency == b.latency);
}

} // namespace

// --- Arrival schedules ----------------------------------------------------

TEST(Arrival, ScheduleIsDeterministicAndMonotone)
{
    for (ArrivalMode m : {ArrivalMode::Poisson, ArrivalMode::Burst}) {
        srv::RequestSchedule a = srv::makeSchedule(
            m, 2.0, ServiceDist::Exp, 300, 500, 20000, 7);
        srv::RequestSchedule b = srv::makeSchedule(
            m, 2.0, ServiceDist::Exp, 300, 500, 20000, 7);
        EXPECT_EQ(a.arrival, b.arrival);
        EXPECT_EQ(a.service, b.service);

        ASSERT_EQ(a.arrival.size(), 500u);
        for (std::size_t i = 1; i < a.arrival.size(); ++i)
            ASSERT_GE(a.arrival[i], a.arrival[i - 1]) << i;
        for (Tick s : a.service)
            ASSERT_GE(s, 1u);

        srv::RequestSchedule c = srv::makeSchedule(
            m, 2.0, ServiceDist::Exp, 300, 500, 20000, 8);
        EXPECT_NE(a.arrival, c.arrival);
    }

    // Closed mode has no arrival instants.
    srv::RequestSchedule cl = srv::makeSchedule(
        ArrivalMode::Closed, 0.0, ServiceDist::Exp, 300, 64, 20000, 7);
    for (Tick t : cl.arrival)
        EXPECT_EQ(t, 0u);
}

TEST(Arrival, MeanRateRoughlyMatchesOffered)
{
    // 2 req/ktick over 2000 requests: last arrival ~1e6 ticks.
    for (ArrivalMode m : {ArrivalMode::Poisson, ArrivalMode::Burst}) {
        srv::RequestSchedule s = srv::makeSchedule(
            m, 2.0, ServiceDist::Fixed, 300, 2000, 20000, 1);
        const double span = static_cast<double>(s.arrival.back());
        EXPECT_GT(span, 0.7e6) << static_cast<int>(m);
        EXPECT_LT(span, 1.4e6) << static_cast<int>(m);
    }
}

TEST(Arrival, ParseServiceDistNames)
{
    ServiceDist d;
    EXPECT_TRUE(srv::parseServiceDist("fixed", d));
    EXPECT_EQ(d, ServiceDist::Fixed);
    EXPECT_TRUE(srv::parseServiceDist("exp", d));
    EXPECT_EQ(d, ServiceDist::Exp);
    EXPECT_TRUE(srv::parseServiceDist("pareto", d));
    EXPECT_EQ(d, ServiceDist::Pareto);
    EXPECT_FALSE(srv::parseServiceDist("zipf", d));
    EXPECT_FALSE(srv::parseServiceDist("", d));
    // Every advertised name parses back.
    EXPECT_EQ(srv::serviceDistNames(), "fixed, exp, pareto");
}

TEST(Arrival, ServiceDistributionShapes)
{
    srv::RequestSchedule fx = srv::makeSchedule(
        ArrivalMode::Poisson, 2.0, ServiceDist::Fixed, 300, 1000,
        20000, 3);
    for (Tick s : fx.service)
        ASSERT_EQ(s, 300u);

    srv::RequestSchedule ex = srv::makeSchedule(
        ArrivalMode::Poisson, 2.0, ServiceDist::Exp, 300, 4000, 20000,
        3);
    double sum = 0;
    for (Tick s : ex.service)
        sum += static_cast<double>(s);
    const double mean = sum / 4000.0;
    EXPECT_GT(mean, 0.85 * 300);
    EXPECT_LT(mean, 1.15 * 300);

    // Pareto: xm = mean/2, clamped at 50x the mean.
    srv::RequestSchedule pa = srv::makeSchedule(
        ArrivalMode::Poisson, 2.0, ServiceDist::Pareto, 300, 4000,
        20000, 3);
    Tick mx = 0;
    for (Tick s : pa.service) {
        ASSERT_GE(s, 150u);
        ASSERT_LE(s, 300u * 50);
        mx = std::max(mx, s);
    }
    EXPECT_GT(mx, 1000u) << "heavy tail never materialized";
}

// --- End-to-end runs ------------------------------------------------------

TEST(ServerRun, AccountingInvariantHolds)
{
    const workload::AppSpec &spec = workload::appByName("server-poisson");
    workload::RunResult r =
        workload::runApp(spec, 16, sys::PaperConfig::MsaOmu2, 7);
    ASSERT_TRUE(r.finished);
    ASSERT_TRUE(r.hasServer);
    const srv::ServerStats &s = r.server;
    EXPECT_EQ(s.generated, spec.server.requests);
    EXPECT_EQ(s.generated, s.completed + s.rejected + s.stranded);
    EXPECT_EQ(s.stranded, 0u) << "requests lost without any fault";
    EXPECT_EQ(s.latency.count(), s.completed);
    EXPECT_GT(s.throughput, 0.0);
}

TEST(ServerRun, OverloadShedsAtTheAdmissionBound)
{
    workload::AppSpec spec = workload::appByName("server-poisson");
    spec.server.arrivalRate = 20.0; // far past the knee
    spec.server.queueCap = 4;
    spec.server.requests = 600;
    workload::RunResult r =
        workload::runApp(spec, 16, sys::PaperConfig::MsaOmu2, 7);
    ASSERT_TRUE(r.finished);
    const srv::ServerStats &s = r.server;
    EXPECT_GT(s.rejected, 0u);
    EXPECT_TRUE(s.knee);
    EXPECT_EQ(s.generated, s.completed + s.rejected + s.stranded);
}

TEST(ServerRun, TwoRunsAtFixedSeedAreBitIdentical)
{
    const workload::AppSpec &spec = workload::appByName("server-burst");
    workload::RunResult a =
        workload::runApp(spec, 16, sys::PaperConfig::MsaOmu2, 5);
    workload::RunResult b =
        workload::runApp(spec, 16, sys::PaperConfig::MsaOmu2, 5);
    ASSERT_TRUE(a.finished && b.finished);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.hwOps, b.hwOps);
    EXPECT_EQ(a.swOps, b.swOps);
    expectServerEq(a.server, b.server);
}

TEST(ServerRun, StatsIdenticalAcrossKernelThreadCounts)
{
    const workload::AppSpec &spec = workload::appByName("server-poisson");
    sync::SyncLib::Flavor fl = sys::flavorFor(sys::PaperConfig::MsaOmu2);
    workload::RunResult runs[2];
    for (unsigned i = 0; i < 2; ++i) {
        SystemConfig cfg = sys::configFor(sys::PaperConfig::MsaOmu2, 16);
        cfg.simThreads = i + 1;
        workload::RunResult r =
            workload::runAppWithConfig(spec, cfg, fl, 7);
        ASSERT_TRUE(r.finished) << "threads=" << i + 1;
        runs[i] = std::move(r);
    }
    EXPECT_EQ(runs[0].makespan, runs[1].makespan);
    EXPECT_EQ(runs[0].hwOps, runs[1].hwOps);
    EXPECT_EQ(runs[0].swOps, runs[1].swOps);
    expectServerEq(runs[0].server, runs[1].server);
}

TEST(ServerRun, CoreFaultsNeverLoseRequests)
{
    // A core dies mid-run: its in-flight request may be stranded, but
    // every generated request is still accounted for — completed,
    // rejected, or stranded, never silently lost.
    const workload::AppSpec &spec = workload::appByName("server-poisson");
    workload::RunResult r = workload::runApp(
        spec, 16, sys::PaperConfig::MsaOmu2CoreFaults, 7);
    ASSERT_TRUE(r.finished);
    EXPECT_GT(r.coreKills, 0u) << "fault preset did not kill a core";
    const srv::ServerStats &s = r.server;
    EXPECT_EQ(s.generated, spec.server.requests);
    EXPECT_EQ(s.generated, s.completed + s.rejected + s.stranded);
}

TEST(ServerRun, CoreFaultRunsAreDeterministicToo)
{
    const workload::AppSpec &spec = workload::appByName("server-poisson");
    workload::RunResult a = workload::runApp(
        spec, 16, sys::PaperConfig::MsaOmu2CoreFaults, 9);
    workload::RunResult b = workload::runApp(
        spec, 16, sys::PaperConfig::MsaOmu2CoreFaults, 9);
    ASSERT_TRUE(a.finished && b.finished);
    EXPECT_EQ(a.makespan, b.makespan);
    expectServerEq(a.server, b.server);
}

TEST(ServerRun, ClosedLoopTaskqueueCompletesEverything)
{
    const workload::AppSpec &spec = workload::appByName("taskqueue");
    workload::RunResult r =
        workload::runApp(spec, 16, sys::PaperConfig::MsaOmu2, 1);
    ASSERT_TRUE(r.finished);
    ASSERT_TRUE(r.hasServer);
    const srv::ServerStats &s = r.server;
    EXPECT_EQ(s.completed, 16u * spec.server.tasksPerWorker);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.stranded, 0u);
    EXPECT_TRUE(s.latency.empty()) << "closed loop has no arrivals";
    EXPECT_FALSE(s.knee);
}

TEST(ServerRun, ObservabilityIsInert)
{
    // Profiling/sampling must not perturb the simulation: identical
    // makespan and server accounting with obs fully on and fully off.
    const workload::AppSpec &spec = workload::appByName("server-poisson");
    sync::SyncLib::Flavor fl = sys::flavorFor(sys::PaperConfig::MsaOmu2);
    SystemConfig on = sys::configFor(sys::PaperConfig::MsaOmu2, 16);
    on.obs.profileSync = true;
    on.obs.sampleInterval = 5000;
    on.obs.heatmapEnabled = true;
    SystemConfig off = sys::configFor(sys::PaperConfig::MsaOmu2, 16);
    workload::RunResult a = workload::runAppWithConfig(spec, on, fl, 3);
    workload::RunResult b = workload::runAppWithConfig(spec, off, fl, 3);
    ASSERT_TRUE(a.finished && b.finished);
    EXPECT_EQ(a.makespan, b.makespan);
    expectServerEq(a.server, b.server);
}

// --- Campaign "server" sweep validation -----------------------------------

namespace {

std::string
specJson(const std::string &apps, const std::string &server)
{
    return R"({"name":"t","presets":["msa-omu"],"apps":)" + apps +
           R"(,"cores":[16],"seeds":[1])" +
           (server.empty() ? "" : ",\"server\":" + server) + "}";
}

} // namespace

TEST(ServerSweep, UnknownServerKeyIsRejected)
{
    orch::CampaignSpec s;
    std::string err;
    EXPECT_FALSE(orch::CampaignSpec::parse(
        specJson(R"(["server-poisson"])", R"({"arrivalRate":[2]})"), s,
        err));
    EXPECT_NE(err.find("unknown \"server\" key 'arrivalRate'"),
              std::string::npos)
        << err;
}

TEST(ServerSweep, NonServerAppInSweepIsRejected)
{
    orch::CampaignSpec s;
    std::string err;
    ASSERT_TRUE(orch::CampaignSpec::parse(
        specJson(R"(["fft"])", R"({"arrivalRates":[2]})"), s, err))
        << err;
    EXPECT_NE(s.validate().find("non-server app"), std::string::npos);
}

TEST(ServerSweep, RatesOnClosedLoopAppAreRejected)
{
    orch::CampaignSpec s;
    std::string err;
    ASSERT_TRUE(orch::CampaignSpec::parse(
        specJson(R"(["taskqueue"])", R"({"arrivalRates":[2]})"), s,
        err))
        << err;
    EXPECT_NE(s.validate().find("closed-loop"), std::string::npos);
}

TEST(ServerSweep, BadServiceDistIsRejected)
{
    orch::CampaignSpec s;
    std::string err;
    ASSERT_TRUE(orch::CampaignSpec::parse(
        specJson(R"(["server-poisson"])",
                 R"({"arrivalRates":[2],"serviceDist":"zipf"})"),
        s, err))
        << err;
    EXPECT_NE(s.validate().find("unknown server.serviceDist"),
              std::string::npos);
}

TEST(ServerSweep, RateAxisExpandsBetweenCoresAndSeeds)
{
    orch::CampaignSpec s;
    std::string err;
    ASSERT_TRUE(orch::CampaignSpec::parse(
        specJson(R"(["server-poisson"])", R"({"arrivalRates":[2,4]})"),
        s, err))
        << err;
    ASSERT_EQ(s.validate(), "");
    std::vector<orch::JobSpec> jobs = s.expand();
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].key(), "msa-omu|server-poisson|c16|s1|r0|a2");
    EXPECT_EQ(jobs[1].key(), "msa-omu|server-poisson|c16|s1|r0|a4");
    // Without a sweep the historical key shape is untouched.
    orch::CampaignSpec plain;
    ASSERT_TRUE(orch::CampaignSpec::parse(
        specJson(R"(["server-poisson"])", ""), plain, err));
    ASSERT_EQ(plain.validate(), "");
    EXPECT_EQ(plain.expand()[0].key(),
              "msa-omu|server-poisson|c16|s1|r0");
}

// --- misar_sim CLI guards -------------------------------------------------

namespace {

/** Run the real simulator binary; return its exit code + output. */
int
runSim(const std::string &args, std::string &output)
{
    const std::string cmd =
        std::string(MISAR_SIM_PATH) + " " + args + " 2>&1";
    FILE *p = ::popen(cmd.c_str(), "r");
    EXPECT_NE(p, nullptr);
    if (!p)
        return -1;
    char buf[512];
    output.clear();
    while (std::fgets(buf, sizeof(buf), p))
        output += buf;
    int st = ::pclose(p);
    return WIFEXITED(st) ? WEXITSTATUS(st) : -1;
}

} // namespace

TEST(ServerCli, BadServerFlagsAreRejected)
{
    struct Case
    {
        const char *args;
        const char *needle;
    };
    const Case cases[] = {
        {"--app server-poisson --arrival-rate 0",
         "--arrival-rate expects a positive number"},
        {"--app server-poisson --arrival-rate -2",
         "--arrival-rate expects a positive number"},
        {"--app server-poisson --arrival-rate junk",
         "--arrival-rate expects a positive number"},
        {"--app server-poisson --arrival-rate 2x",
         "--arrival-rate expects a positive number"},
        {"--app server-poisson --arrival-rate inf",
         "--arrival-rate expects a positive number"},
        {"--app server-poisson --service-dist zipf",
         "unknown --service-dist 'zipf'"},
        {"--app fft --arrival-rate 2",
         "only apply to server workloads"},
        {"--app fft --queue-cap 8", "only apply to server workloads"},
        {"--app taskqueue --arrival-rate 2",
         "does not apply to the closed-loop"},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.args);
        std::string out;
        EXPECT_EQ(runSim(c.args, out), 1) << out;
        EXPECT_NE(out.find(c.needle), std::string::npos) << out;
    }
}

TEST(ServerCli, ServerRunPrintsRequestAccounting)
{
    std::string out;
    const int rc = runSim(
        "--app server-poisson --cores 16 --config msa-omu "
        "--arrival-rate 4 --service-dist fixed --queue-cap 16",
        out);
    EXPECT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("requests"), std::string::npos) << out;
    EXPECT_NE(out.find("req latency"), std::string::npos) << out;
}
