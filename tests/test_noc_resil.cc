/**
 * @file
 * NoC resilience tests: up-down routing-table correctness under
 * arbitrary link/router kills, end-to-end reliable delivery
 * (sequencing, dedup, reorder, retransmission), mid-run mesh
 * reconfiguration, partition detection with MSA slice shedding, and
 * stall-report attribution.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <vector>

#include "noc/mesh.hh"
#include "noc/routing.hh"
#include "resil/noc_fault_injector.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sync/sync_lib.hh"
#include "system/presets.hh"
#include "system/system.hh"

namespace misar {
namespace noc {
namespace {

// ---------------------------------------------------------------------
// Up-down routing tables (pure functions, no simulation)
// ---------------------------------------------------------------------

/**
 * Follow the tables from @p src to @p dst, modelling the in-port the
 * way a real flit experiences it. Returns the hop count, or a
 * negative code: -1 no route, -2 misdelivered, -3 routed onto dead
 * hardware, -4 loop (step bound exceeded).
 */
int
walkRoute(const RouteTables &tbl, const Topology &topo, unsigned src,
          unsigned dst, int max_steps = 64)
{
    unsigned r = src;
    Port in = portLocal;
    for (int steps = 0; steps < max_steps; ++steps) {
        std::uint8_t out = tbl.lookup(r, in, dst);
        if (out == routeInvalid)
            return -1;
        if (out == portLocal)
            return r == dst ? steps : -2;
        int nxt = topo.neighbor(r, static_cast<Port>(out));
        if (nxt < 0 || !topo.linkUsable(r, static_cast<Port>(out)))
            return -3;
        in = oppositePort(static_cast<Port>(out));
        r = static_cast<unsigned>(nxt);
    }
    return -4;
}

/** Kill the a->b and b->a directions of one link in @p topo. */
void
cutLink(Topology &topo, unsigned a, Port p)
{
    int b = topo.neighbor(a, p);
    ASSERT_GE(b, 0);
    topo.deadOut[a][p] = true;
    topo.deadOut[b][oppositePort(p)] = true;
}

TEST(UpDownRouting, HealthyMeshFullReachability)
{
    Topology topo(4);
    RouteTables tbl = computeUpDownTables(topo);
    for (unsigned s = 0; s < 16; ++s)
        for (unsigned d = 0; d < 16; ++d)
            EXPECT_GE(walkRoute(tbl, topo, s, d), 0)
                << s << " -> " << d;
}

TEST(UpDownRouting, SurvivesEverySingleLinkKill)
{
    // Any single dead link leaves a 4x4 mesh connected; the tables
    // must route every pair, without loops, over live hardware only.
    for (unsigned r = 0; r < 16; ++r) {
        for (Port p : {portEast, portSouth}) {
            Topology topo(4);
            if (topo.neighbor(r, p) < 0)
                continue;
            cutLink(topo, r, p);
            RouteTables tbl = computeUpDownTables(topo);
            for (unsigned s = 0; s < 16; ++s)
                for (unsigned d = 0; d < 16; ++d)
                    EXPECT_GE(walkRoute(tbl, topo, s, d), 0)
                        << s << " -> " << d << " with link " << r
                        << " port " << p << " dead";
        }
    }
}

TEST(UpDownRouting, EdgeColumnLinkKillStaysRoutable)
{
    // The counterexample that rules out odd-even turn routing: a
    // dead vertical link in column 0 must still leave its endpoints
    // mutually reachable (around via column 1).
    Topology topo(4);
    cutLink(topo, 0, portSouth); // link between tiles 0 and 4
    RouteTables tbl = computeUpDownTables(topo);
    EXPECT_GE(walkRoute(tbl, topo, 0, 4), 2);
    EXPECT_GE(walkRoute(tbl, topo, 4, 0), 2);
}

TEST(UpDownRouting, DeadRouterPartitionsOnlyItself)
{
    Topology topo(3);
    topo.deadRouter[4] = true; // centre of the 3x3
    std::vector<int> comp = components(topo);
    EXPECT_EQ(comp[4], -1);
    for (unsigned r = 0; r < 9; ++r) {
        if (r != 4)
            EXPECT_EQ(comp[r], 0) << "tile " << r;
    }

    RouteTables tbl = computeUpDownTables(topo);
    for (unsigned s = 0; s < 9; ++s) {
        if (s == 4)
            continue;
        for (unsigned d = 0; d < 9; ++d) {
            if (d == 4) {
                EXPECT_EQ(walkRoute(tbl, topo, s, d), -1);
            } else {
                EXPECT_GE(walkRoute(tbl, topo, s, d), 0)
                    << s << " -> " << d;
            }
        }
    }
}

TEST(UpDownRouting, ColumnCutSplitsComponents)
{
    // Cut every horizontal link out of column 0 of a 3x3: tiles
    // {0, 3, 6} become their own component and cross-partition
    // routes must be invalid, not looping.
    Topology topo(3);
    cutLink(topo, 0, portEast);
    cutLink(topo, 3, portEast);
    cutLink(topo, 6, portEast);
    std::vector<int> comp = components(topo);
    for (unsigned r : {0u, 3u, 6u})
        EXPECT_EQ(comp[r], 0);
    for (unsigned r : {1u, 2u, 4u, 5u, 7u, 8u})
        EXPECT_EQ(comp[r], 1);

    RouteTables tbl = computeUpDownTables(topo);
    EXPECT_EQ(walkRoute(tbl, topo, 0, 1), -1);
    EXPECT_EQ(walkRoute(tbl, topo, 5, 6), -1);
    EXPECT_GE(walkRoute(tbl, topo, 0, 6), 0);
    EXPECT_GE(walkRoute(tbl, topo, 1, 8), 0);
}

// ---------------------------------------------------------------------
// End-to-end reliable delivery on a live mesh
// ---------------------------------------------------------------------

/** Test payload carrying an identifying tag. */
class TestPacket : public Packet
{
  public:
    TestPacket(CoreId src, CoreId dst, unsigned size, int tag)
        : Packet(src, dst, size), tag(tag)
    {}
    int tag;
};

/** Mesh fixture with the NI reliable-delivery layer enabled. */
struct RelFixture
{
    EventQueue eq;
    NocConfig cfg;
    StatRegistry stats;
    std::unique_ptr<Mesh> mesh;
    std::vector<std::vector<int>> received; // per-tile tags, in order

    explicit RelFixture(unsigned dim)
    {
        cfg.reliable = true;
        mesh = std::make_unique<Mesh>(eq, cfg, dim, stats);
        received.resize(dim * dim);
        for (CoreId t = 0; t < dim * dim; ++t) {
            mesh->setSink(t, [this, t](std::shared_ptr<Packet> p) {
                received[t].push_back(
                    static_cast<TestPacket *>(p.get())->tag);
            });
        }
    }

    void
    send(CoreId s, CoreId d, int tag, unsigned size = ctrlBytes,
         unsigned vnet = 0, std::uint64_t rel_seq = 0)
    {
        auto p = std::make_shared<TestPacket>(s, d, size, tag);
        p->vnet = vnet;
        p->relSeq = rel_seq;
        mesh->send(std::move(p));
    }
};

TEST(NocResil, ReliableDeliveryDrainsPendingOnAck)
{
    RelFixture f(4);
    for (int i = 0; i < 10; ++i)
        f.send(0, 15, i);
    ASSERT_TRUE(f.eq.run(2000000));
    ASSERT_EQ(f.received[15].size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(f.received[15][i], i);
    // Acks released every retransmission buffer; nothing retried.
    EXPECT_EQ(f.mesh->ni(0).pendingRetx(), 0u);
    EXPECT_GT(f.stats.counterValue("noc.rel.acksSent"), 0u);
    EXPECT_GT(f.stats.counterValue("noc.rel.acksRecv"), 0u);
    EXPECT_EQ(f.stats.counterValue("noc.rel.retransmits"), 0u);
    EXPECT_EQ(f.stats.counterValue("noc.rel.dedups"), 0u);
}

TEST(NocResil, DuplicateWirePacketsAreDeduped)
{
    // Two wire copies of sequence 1 (a retransmission racing its
    // ack): the receiver must sink exactly one.
    RelFixture f(4);
    f.send(0, 15, 7, ctrlBytes, 0, 1);
    f.send(0, 15, 7, ctrlBytes, 0, 1);
    ASSERT_TRUE(f.eq.run(2000000));
    ASSERT_EQ(f.received[15].size(), 1u);
    EXPECT_EQ(f.received[15][0], 7);
    EXPECT_EQ(f.stats.counterValue("noc.rel.dedups"), 1u);
}

TEST(NocResil, ReorderedSequencesDeliverInOrder)
{
    // Sequence 2 hits the wire before sequence 1 (as after a
    // selective loss): the receiver parks it and delivers 1 then 2.
    RelFixture f(4);
    f.send(0, 15, 2, ctrlBytes, 0, 2);
    f.send(0, 15, 1, ctrlBytes, 0, 1);
    ASSERT_TRUE(f.eq.run(2000000));
    ASSERT_EQ(f.received[15].size(), 2u);
    EXPECT_EQ(f.received[15][0], 1);
    EXPECT_EQ(f.received[15][1], 2);
    EXPECT_EQ(f.stats.counterValue("noc.rel.reorders"), 1u);
}

TEST(NocResil, LinkKillMidStreamRecoversEverything)
{
    // A stream crossing the 5-6 link while it dies: packets caught
    // in the detection window are lost on the dead hardware and must
    // come back via retransmission over the detour route.
    RelFixture f(4);
    ResilConfig rc;
    rc.linkKills.push_back({5, 6, 500});
    rc.nocDetectDelay = 64;
    resil::NocFaultInjector inj(f.eq, rc, *f.mesh, f.stats);
    inj.start();

    const int n = 100;
    for (int i = 0; i < n; ++i) {
        f.eq.schedule(static_cast<Tick>(10 * i), [&f, i] {
            f.send(4, 7, i, dataBytes, 1);
        });
    }
    ASSERT_TRUE(f.eq.run(20000000));
    ASSERT_EQ(f.received[7].size(), static_cast<std::size_t>(n));
    std::vector<int> want(n);
    for (int i = 0; i < n; ++i)
        want[i] = i;
    EXPECT_EQ(f.received[7], want);
    EXPECT_EQ(f.mesh->ni(4).pendingRetx(), 0u);
    EXPECT_EQ(f.stats.counterValue("noc.deadLinks"), 1u);
    EXPECT_GT(f.stats.counterValue("noc.rel.retransmits"), 0u);
    EXPECT_GT(f.stats.counterValue("noc.detourHops"), 0u);
    EXPECT_EQ(f.stats.counterValue("noc.rel.abandoned"), 0u);
}

TEST(NocResil, CorruptionIsRetransmittedNotLost)
{
    RelFixture f(4);
    ResilConfig rc;
    rc.flitCorruptProb = 0.02;
    rc.faultSeed = 12345;
    resil::NocFaultInjector inj(f.eq, rc, *f.mesh, f.stats);
    inj.start();

    const int n = 300;
    for (int i = 0; i < n; ++i)
        f.send(static_cast<CoreId>(i % 16),
               static_cast<CoreId>((i * 7 + 3) % 16), i, dataBytes, 1);
    ASSERT_TRUE(f.eq.run(50000000));
    std::size_t total = 0;
    for (const auto &v : f.received)
        total += v.size();
    EXPECT_EQ(total, static_cast<std::size_t>(n));
    EXPECT_GT(f.stats.counterValue("noc.pktsCorrupted"), 0u);
    EXPECT_GT(f.stats.counterValue("noc.rel.retransmits"), 0u);
}

TEST(NocResil, RouterKillStrandsTileAndAbandonsItsTraffic)
{
    RelFixture f(4);
    f.cfg.retransmitTimeout = 200;
    f.cfg.retransmitCap = 400;
    f.cfg.retransmitLimit = 3;
    ResilConfig rc;
    rc.routerKills.push_back({5, 500});
    rc.nocDetectDelay = 64;
    resil::NocFaultInjector inj(f.eq, rc, *f.mesh, f.stats);
    std::vector<unsigned> stranded;
    inj.setPartitionFn([&stranded](unsigned t) { stranded.push_back(t); });
    inj.start();

    // Cross traffic that used to route through router 5, plus doomed
    // traffic addressed to the dead tile itself.
    for (int i = 0; i < 20; ++i) {
        f.eq.schedule(static_cast<Tick>(40 * i), [&f, i] {
            f.send(1, 9, i);       // column through (1,1) under XY
            f.send(0, 5, 100 + i); // to the dead tile
        });
    }
    ASSERT_TRUE(f.eq.run(20000000));
    EXPECT_EQ(stranded, std::vector<unsigned>{5});
    ASSERT_EQ(f.received[9].size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(f.received[9][i], i);
    // Packets for the stranded tile are finite-retried then dropped.
    EXPECT_GT(f.stats.counterValue("noc.rel.abandoned"), 0u);
    EXPECT_EQ(f.mesh->ni(0).pendingRetx(), 0u);
    EXPECT_EQ(f.stats.counterValue("noc.deadRouters"), 1u);
    EXPECT_TRUE(f.mesh->routerDead(5));
}

} // namespace
} // namespace noc

// ---------------------------------------------------------------------
// Full-system behaviour under NoC faults
// ---------------------------------------------------------------------

namespace {

using cpu::ThreadApi;
using cpu::ThreadTask;
using sync::SyncLib;

TEST(NocResilSystem, RouterKillOfNonHomeTileSurvives)
{
    // The victim thread finishes its work before its router dies and
    // every sync variable is homed off the victim tile; the other 15
    // threads must run to completion across the degraded mesh.
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    cfg.resil.routerKills.push_back({5, 60000});
    sys::System s(cfg);
    SyncLib lib(SyncLib::Flavor::Hw, 16);

    // Lock addresses homed at tiles 0-3 (block / 64 mod 16).
    const std::vector<Addr> locks = {0x0, 0x40, 0x80, 0xc0};
    auto body = [&](ThreadApi t) -> ThreadTask {
        if (t.id() == 5) {
            // Victim: brief early work only.
            co_await lib.mutexLock(t, locks[0]);
            co_await t.compute(50);
            co_await lib.mutexUnlock(t, locks[0]);
            co_return;
        }
        for (int i = 0; i < 10; ++i) {
            const Addr l = locks[(t.id() + i) % locks.size()];
            co_await lib.mutexLock(t, l);
            co_await t.compute(40);
            co_await lib.mutexUnlock(t, l);
            co_await t.compute(9000); // stretch past the kill tick
        }
        co_await lib.barrierWait(t, 0x200, 15);
    };
    for (CoreId c = 0; c < 16; ++c)
        s.start(c, body(s.api(c)));

    ASSERT_EQ(s.runDetailed(500000000ULL), sys::RunOutcome::Finished);
    EXPECT_EQ(s.stats().counterValue("noc.deadRouters"), 1u);
    EXPECT_EQ(s.stats().counterValue("resil.partitionSheds"), 1u);
    EXPECT_TRUE(s.msaSlice(5).isOffline());
    // The system must have forced reliable delivery on.
    EXPECT_TRUE(s.config().noc.reliable);
}

TEST(NocResilSystem, OpsHomedAtStrandedTileFastFail)
{
    // After the partition, a new op homed at the dead tile must FAIL
    // immediately (software fallback) instead of burning the whole
    // timeout ladder against unreachable hardware.
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    cfg.resil.routerKills.push_back({5, 50000});
    sys::System s(cfg);

    auto idle = [](ThreadApi t) -> ThreadTask {
        co_await t.compute(120000);
    };
    s.start(0, idle(s.api(0)));

    cpu::SyncResult result = cpu::SyncResult::Success;
    bool called = false;
    s.eventQueue().schedule(80000, [&] {
        cpu::Op op;
        op.type = cpu::OpType::Sync;
        op.instr = cpu::SyncInstr::Lock;
        op.addr = 0x140; // block 5 -> homed at tile 5
        s.clientHub()->execute(0, op, [&](cpu::SyncResult r) {
            result = r;
            called = true;
        });
    });

    ASSERT_EQ(s.runDetailed(500000000ULL), sys::RunOutcome::Finished);
    EXPECT_TRUE(called);
    EXPECT_EQ(result, cpu::SyncResult::Fail);
    EXPECT_EQ(s.stats().counterValue("resil.unreachableFastFails"), 1u);
}

TEST(NocResilSystem, StallReportAttributesPartitionNotDeadlock)
{
    // All 16 threads meet at a barrier homed at tile 0, but tile 5's
    // router dies before its thread arrives: the run stalls, and the
    // report must carry the NoC census and the partition attribution
    // (detoured-but-alive traffic is not a protocol deadlock).
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    cfg.resil.routerKills.push_back({5, 30000});
    sys::System s(cfg);
    SyncLib lib(SyncLib::Flavor::Hw, 16);

    auto body = [&](ThreadApi t) -> ThreadTask {
        co_await t.compute(t.id() == 5 ? 60000 : 100);
        co_await lib.barrierWait(t, 0x0, 16);
    };
    for (CoreId c = 0; c < 16; ++c)
        s.start(c, body(s.api(c)));

    EXPECT_NE(s.runDetailed(50000000ULL), sys::RunOutcome::Finished);
    const std::string report = s.buildStallReport();
    EXPECT_NE(report.find("NoC in-flight census"), std::string::npos);
    EXPECT_NE(report.find("DEAD"), std::string::npos);
    EXPECT_NE(report.find("PARTITION"), std::string::npos)
        << report;
}

} // namespace
} // namespace misar
