/**
 * @file
 * Resilience subsystem tests: timeout/retry under message faults,
 * bounded-op abandonment with OMU reconciliation, graceful slice
 * decommission (locks, barriers, condition variables), liveness
 * watchdog stall detection with waits-for reporting, invariant
 * checker corruption detection, and deterministic fault replay.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mem/msg.hh"
#include "sim/rng.hh"
#include "sync/sync_lib.hh"
#include "system/presets.hh"
#include "system/system.hh"

namespace misar {
namespace resil {
namespace {

using cpu::ThreadApi;
using cpu::ThreadTask;
using sync::SyncLib;

/** Collect invariant violations into @p out instead of dying. */
void
armCollector(sys::System &s, std::vector<std::string> &out)
{
    if (auto *c = s.invariantChecker())
        c->setViolationHandler([&out](const std::vector<std::string> &v) {
            out.insert(out.end(), v.begin(), v.end());
        });
}

struct LockShared
{
    std::vector<int> inCs;
    std::vector<int> maxInCs;
    std::vector<std::uint64_t> csCount;
    unsigned done = 0;
};

ThreadTask
lockLoop(ThreadApi t, SyncLib *lib, LockShared *sh,
         const std::vector<Addr> *locks, unsigned threads, int iters,
         std::uint64_t seed, bool end_barrier)
{
    Rng rng(seed * 6151 + t.id() * 389 + 7);
    for (int i = 0; i < iters; ++i) {
        unsigned w = static_cast<unsigned>(rng.range(locks->size()));
        co_await lib->mutexLock(t, (*locks)[w]);
        sh->inCs[w]++;
        sh->maxInCs[w] = std::max(sh->maxInCs[w], sh->inCs[w]);
        sh->csCount[w]++;
        co_await t.compute(rng.range(100));
        sh->inCs[w]--;
        co_await lib->mutexUnlock(t, (*locks)[w]);
        co_await t.compute(rng.range(80));
    }
    if (end_barrier)
        co_await lib->barrierWait(t, 0xbeef00, threads);
    sh->done++;
}

TEST(Resil, TimeoutRetryRecoversFromDropsAndDups)
{
    SystemConfig cfg = makeConfig(4, AccelMode::MsaOmu, 2);
    cfg.resil.dropProb = 0.2;
    cfg.resil.dupProb = 0.05;
    cfg.resil.delayProb = 0.1;
    cfg.resil.delayTicks = 200;
    cfg.resil.timeoutTicks = 1500;
    cfg.resil.maxRetries = 8;
    cfg.resil.faultSeed = 99;
    cfg.resil.invariantChecks = true;
    cfg.resil.invariantInterval = 5000;
    cfg.resil.watchdogInterval = 2000000;
    sys::System s(cfg);
    std::vector<std::string> violations;
    armCollector(s, violations);
    SyncLib lib(SyncLib::Flavor::Hw, 4);

    const std::vector<Addr> locks = {0x1000, 0x1800};
    LockShared sh;
    sh.inCs.assign(locks.size(), 0);
    sh.maxInCs.assign(locks.size(), 0);
    sh.csCount.assign(locks.size(), 0);
    for (CoreId c = 0; c < 4; ++c)
        s.start(c, lockLoop(s.api(c), &lib, &sh, &locks, 4, 25, 11,
                            true));

    ASSERT_TRUE(s.run(500000000ULL)) << "hung under message faults";
    EXPECT_EQ(sh.done, 4u);
    std::uint64_t total = 0;
    for (unsigned w = 0; w < locks.size(); ++w) {
        EXPECT_EQ(sh.inCs[w], 0);
        EXPECT_LE(sh.maxInCs[w], 1) << "mutual exclusion broken";
        total += sh.csCount[w];
    }
    EXPECT_EQ(total, 4u * 25u);

    // The campaign must actually have exercised the machinery.
    EXPECT_GT(s.stats().counter("resil.injectedDrops").value(), 0u);
    EXPECT_GT(s.stats().counter("resil.timeouts").value(), 0u);
    EXPECT_GT(s.stats().counter("resil.retries").value(), 0u);

    for (CoreId t = 0; t < 4; ++t)
        for (Addr l : locks)
            EXPECT_EQ(s.msaSlice(t).omu().count(l), 0u);
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
}

TEST(Resil, BoundedOpAbandonmentReconcilesOmu)
{
    // Locks unsupported in hardware: every acquire FAILs to software
    // (bumping the OMU), and the later transactional UNLOCK is the
    // message that carries the decrement. Dropping every tracked
    // message from tick 20000 forces those unlocks to exhaust their
    // bounded retries; the client then resolves FAIL locally and the
    // fire-and-forget FailNotice (never faulted) reconciles the OMU.
    SystemConfig cfg = makeConfig(4, AccelMode::MsaOmu, 2);
    cfg.msa.support.locks = false;
    cfg.resil.dropProb = 1.0;
    cfg.resil.faultsFromTick = 20000;
    cfg.resil.timeoutTicks = 500;
    cfg.resil.maxRetries = 2;
    cfg.resil.invariantChecks = true;
    cfg.resil.invariantInterval = 5000;
    sys::System s(cfg);
    std::vector<std::string> violations;
    armCollector(s, violations);
    SyncLib lib(SyncLib::Flavor::Hw, 4);

    auto body = [](ThreadApi t, SyncLib *lib) -> ThreadTask {
        const Addr lock = 0x1000 + t.id() * 2048;
        co_await lib->mutexLock(t, lock);   // software-held
        co_await t.compute(30000);          // ...past faultsFromTick
        co_await lib->mutexUnlock(t, lock); // abandoned, FAILs local
    };
    for (CoreId c = 0; c < 4; ++c)
        s.start(c, body(s.api(c), &lib));

    ASSERT_TRUE(s.run(500000000ULL))
        << "an abandoned unlock must resolve FAIL, not hang";
    EXPECT_EQ(s.stats().counter("resil.abandonedOps").value(), 4u);
    // Each abandonment pays maxRetries retransmissions first.
    EXPECT_GE(s.stats().counter("resil.timeouts").value(),
              4u * (cfg.resil.maxRetries + 1));
    for (CoreId t = 0; t < 4; ++t)
        for (CoreId c = 0; c < 4; ++c)
            EXPECT_EQ(s.msaSlice(t).omu().count(0x1000 + c * 2048), 0u)
                << "FailNotice failed to reconcile the OMU";
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
}

TEST(Resil, SliceOfflineLockHeavy)
{
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    // All three locks are homed on tile 0 (line interleaving).
    const std::vector<Addr> locks = {0x1000, 0x1400, 0x1800};
    for (Addr l : locks)
        ASSERT_EQ(mem::homeTile(blockAlign(l), 16), 0u);
    cfg.resil.offlineTile = 0;
    cfg.resil.offlineAtTick = 30000;
    cfg.resil.invariantChecks = true;
    cfg.resil.invariantInterval = 10000;
    cfg.resil.watchdogInterval = 2000000;
    sys::System s(cfg);
    std::vector<std::string> violations;
    armCollector(s, violations);
    SyncLib lib(SyncLib::Flavor::Hw, 16);

    LockShared sh;
    sh.inCs.assign(locks.size(), 0);
    sh.maxInCs.assign(locks.size(), 0);
    sh.csCount.assign(locks.size(), 0);
    const int iters = 150;
    for (CoreId c = 0; c < 16; ++c)
        s.start(c, lockLoop(s.api(c), &lib, &sh, &locks, 16, iters, 5,
                            true));

    ASSERT_TRUE(s.run(500000000ULL)) << "hung across the decommission";
    EXPECT_GT(s.makespan(), 30000u) << "offline hit after the run";
    EXPECT_TRUE(s.msaSlice(0).isOffline());
    EXPECT_EQ(s.stats().counter("tile0.msa.offlineEvents").value(), 1u);

    std::uint64_t total = 0;
    for (unsigned w = 0; w < locks.size(); ++w) {
        EXPECT_EQ(sh.inCs[w], 0);
        EXPECT_LE(sh.maxInCs[w], 1)
            << "mutual exclusion broken across HW->SW handover";
        total += sh.csCount[w];
    }
    EXPECT_EQ(total, 16u * iters);
    EXPECT_EQ(sh.done, 16u);

    // The decommissioned slice must end empty, with its software
    // episodes fully settled.
    EXPECT_EQ(s.msaSlice(0).validEntries(), 0u);
    for (CoreId t = 0; t < 16; ++t)
        for (Addr l : locks)
            EXPECT_EQ(s.msaSlice(t).omu().count(l), 0u);
    // Waiters were moved to software (shed at release) or rejected
    // at allocation — with 16 contenders, at least one of each path.
    std::uint64_t aborted =
        s.stats().counter("tile0.msa.offlineLockAborts").value();
    std::uint64_t denied =
        s.stats().counter("tile0.msa.offlineDenied").value();
    EXPECT_GT(aborted + denied, 0u);
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
}

TEST(Resil, OfflineBarrierRoundsStayAligned)
{
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    const Addr barrier = 0x1000; // homed on tile 0
    cfg.resil.offlineTile = 0;
    cfg.resil.offlineAtTick = 2000;
    cfg.resil.invariantChecks = true;
    cfg.resil.invariantInterval = 5000;
    sys::System s(cfg);
    std::vector<std::string> violations;
    armCollector(s, violations);
    SyncLib lib(SyncLib::Flavor::Hw, 16);

    constexpr int rounds = 10;
    struct Sh
    {
        std::vector<int> arrivals;
        unsigned misaligned = 0;
        unsigned done = 0;
    } sh;
    sh.arrivals.assign(rounds, 0);

    auto body = [](ThreadApi t, SyncLib *lib, Sh *sh,
                   Addr b) -> ThreadTask {
        Rng rng(t.id() * 271 + 13);
        for (int r = 0; r < rounds; ++r) {
            co_await t.compute(rng.range(400));
            sh->arrivals[r]++;
            co_await lib->barrierWait(t, b, 16);
            // After the barrier every arrival of this round (and no
            // later round) must be visible.
            if (sh->arrivals[r] != 16)
                sh->misaligned++;
            if (r + 1 < rounds && sh->arrivals[r + 1] > 16)
                sh->misaligned++;
        }
        sh->done++;
    };
    for (CoreId c = 0; c < 16; ++c)
        s.start(c, body(s.api(c), &lib, &sh, barrier));

    ASSERT_TRUE(s.run(500000000ULL));
    EXPECT_EQ(sh.done, 16u);
    EXPECT_EQ(sh.misaligned, 0u)
        << "barrier semantics broken across the HW->SW demotion";
    EXPECT_TRUE(s.msaSlice(0).isOffline());
    for (CoreId t = 0; t < 16; ++t)
        EXPECT_EQ(s.msaSlice(t).omu().count(barrier), 0u);
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
}

TEST(Resil, OfflineCondVarsFallBackToSoftware)
{
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 4);
    const Addr cond = 0x1000;  // homed on tile 0 (goes offline)
    const Addr mutex = 0x1040; // homed on tile 1 (stays online)
    ASSERT_EQ(mem::homeTile(blockAlign(cond), 16), 0u);
    ASSERT_EQ(mem::homeTile(blockAlign(mutex), 16), 1u);
    cfg.resil.offlineTile = 0;
    cfg.resil.offlineAtTick = 5000;
    cfg.resil.invariantChecks = true;
    cfg.resil.invariantInterval = 5000;
    sys::System s(cfg);
    std::vector<std::string> violations;
    armCollector(s, violations);
    SyncLib lib(SyncLib::Flavor::Hw, 16);

    struct Sh
    {
        int ready = 0;
        unsigned woken = 0;
    } sh;

    auto waiter = [](ThreadApi t, SyncLib *lib, Sh *sh, Addr c,
                     Addr m) -> ThreadTask {
        co_await lib->mutexLock(t, m);
        while (!sh->ready)
            co_await lib->condWait(t, c, m);
        sh->woken++;
        co_await lib->mutexUnlock(t, m);
    };
    auto signaller = [](ThreadApi t, SyncLib *lib, Sh *sh, Addr c,
                        Addr m) -> ThreadTask {
        co_await t.compute(20000); // well past the decommission
        co_await lib->mutexLock(t, m);
        sh->ready = 1;
        co_await lib->mutexUnlock(t, m);
        co_await lib->condBroadcast(t, c);
    };
    for (CoreId c = 1; c < 4; ++c)
        s.start(c, waiter(s.api(c), &lib, &sh, cond, mutex));
    s.start(0, signaller(s.api(0), &lib, &sh, cond, mutex));

    ASSERT_TRUE(s.run(500000000ULL))
        << "a waiter parked on the decommissioned slice was stranded";
    EXPECT_EQ(sh.woken, 3u);
    // The shed moved the parked waiters to the software condvar.
    EXPECT_GE(s.stats()
                  .counter("tile0.msa.offlineCondAborts")
                  .value(),
              1u);
    for (CoreId t = 0; t < 16; ++t) {
        EXPECT_EQ(s.msaSlice(t).omu().count(cond), 0u);
        EXPECT_EQ(s.msaSlice(t).omu().count(mutex), 0u);
    }
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
}

TEST(Resil, FailoverTransfersOmuCountsExactlyOnce)
{
    // OMU saturation x slice failover: a software episode's overflow
    // count lives at its home slice; when that slice fails over, the
    // count must reach the buddy exactly once. A lost count would let
    // the buddy grant a conflicting hardware episode while software
    // holders still exist; a doubled one would leave a phantom
    // episode pinned at quiesce.
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 1);
    cfg.msa.hwSyncBitOpt = false; // keep the HW entry resident
    const Addr hw_lock = 0x1000;  // fills tile 0's single entry
    const Addr sw1 = 0x1400;      // -> software, OMU-counted
    const Addr sw2 = 0x1800;      // -> software, OMU-counted
    for (Addr l : {hw_lock, sw1, sw2})
        ASSERT_EQ(mem::homeTile(blockAlign(l), 16), 0u);
    cfg.resil.offlineTile = 0;
    cfg.resil.offlineAtTick = 30000;
    cfg.resil.failoverBuddy = 1;
    cfg.resil.invariantChecks = true;
    cfg.resil.invariantInterval = 10000;
    cfg.validate();
    sys::System s(cfg);
    std::vector<std::string> violations;
    armCollector(s, violations);
    SyncLib lib(SyncLib::Flavor::Hw, 16);

    // All three holds span the failover tick, so the counts are
    // frozen across both sampling points below.
    auto hw_holder = [](ThreadApi t, SyncLib *lib,
                        Addr l) -> ThreadTask {
        co_await lib->mutexLock(t, l);
        co_await t.compute(60000);
        co_await lib->mutexUnlock(t, l);
    };
    auto sw_holder = [](ThreadApi t, SyncLib *lib,
                        Addr l) -> ThreadTask {
        co_await t.compute(2000); // let hw_lock claim the one entry
        co_await lib->mutexLock(t, l);
        co_await t.compute(60000);
        co_await lib->mutexUnlock(t, l);
    };
    s.start(0, hw_holder(s.api(0), &lib, hw_lock));
    s.start(1, sw_holder(s.api(1), &lib, sw1));
    s.start(2, sw_holder(s.api(2), &lib, sw2));

    std::uint32_t before1 = 0, before2 = 0;
    std::uint32_t buddy_before1 = 0, buddy_before2 = 0;
    s.eventQueue().scheduleAt(29999, [&] {
        before1 = s.msaSlice(0).omu().count(sw1);
        before2 = s.msaSlice(0).omu().count(sw2);
        buddy_before1 = s.msaSlice(1).omu().count(sw1);
        buddy_before2 = s.msaSlice(1).omu().count(sw2);
    });
    std::uint32_t after1 = 0, after2 = 0;
    std::uint32_t buddy_after1 = 0, buddy_after2 = 0;
    std::uint64_t handoffs = 0;
    s.eventQueue().scheduleAt(40000, [&] {
        after1 = s.msaSlice(0).omu().count(sw1);
        after2 = s.msaSlice(0).omu().count(sw2);
        buddy_after1 = s.msaSlice(1).omu().count(sw1);
        buddy_after2 = s.msaSlice(1).omu().count(sw2);
        handoffs =
            s.stats().counterValue("tile1.msa.handoffsApplied");
    });

    ASSERT_TRUE(s.run(500000000ULL));
    EXPECT_GE(before1, 1u) << "sw1 never overflowed to software";
    EXPECT_GE(before2, 1u) << "sw2 never overflowed to software";
    EXPECT_EQ(handoffs, 1u) << "handoff not applied before sampling";
    // Cleared at the source, landed at the buddy, exactly once.
    EXPECT_EQ(after1, 0u);
    EXPECT_EQ(after2, 0u);
    EXPECT_EQ(buddy_after1, buddy_before1 + before1);
    EXPECT_EQ(buddy_after2, buddy_before2 + before2);
    // The migrated software releases then drain the buddy to zero.
    for (CoreId t = 0; t < 16; ++t)
        for (Addr l : {hw_lock, sw1, sw2})
            EXPECT_EQ(s.msaSlice(t).omu().count(l), 0u)
                << "leaked or doubled count on tile " << t;
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
}

TEST(Resil, WatchdogReportsAbbaDeadlock)
{
    SystemConfig cfg = makeConfig(4, AccelMode::MsaOmu, 2);
    cfg.msa.hwSyncBitOpt = false; // keep both entries resident
    cfg.resil.watchdogInterval = 2000;
    sys::System s(cfg);
    std::string report;
    ASSERT_NE(s.watchdog(), nullptr);
    s.watchdog()->setStallHandler(
        [&report](const std::string &r) { report = r; });
    SyncLib lib(SyncLib::Flavor::Hw, 4);

    const Addr a = 0x1000, b = 0x2000;
    auto body = [](ThreadApi t, SyncLib *lib, Addr first,
                   Addr second) -> ThreadTask {
        co_await lib->mutexLock(t, first);
        co_await t.compute(500);
        co_await lib->mutexLock(t, second); // AB-BA: blocks forever
    };
    s.start(0, body(s.api(0), &lib, a, b));
    s.start(1, body(s.api(1), &lib, b, a));

    EXPECT_EQ(s.runDetailed(10000000ULL), sys::RunOutcome::Deadlock);
    EXPECT_TRUE(s.watchdog()->stalled());
    EXPECT_EQ(s.stats().counter("resil.watchdogStalls").value(), 1u);
    ASSERT_FALSE(report.empty());
    EXPECT_NE(report.find("waits-for"), std::string::npos) << report;
    EXPECT_NE(report.find("CYCLE"), std::string::npos) << report;
}

TEST(Resil, CleanTerminationIsNotReportedAsDeadlock)
{
    SystemConfig cfg = makeConfig(4, AccelMode::MsaOmu, 2);
    cfg.resil.watchdogInterval = 2000;
    sys::System s(cfg);
    bool stalled = false;
    s.watchdog()->setStallHandler(
        [&stalled](const std::string &) { stalled = true; });
    SyncLib lib(SyncLib::Flavor::Hw, 4);
    auto body = [](ThreadApi t, SyncLib *lib) -> ThreadTask {
        co_await lib->mutexLock(t, 0x1000);
        co_await t.compute(100);
        co_await lib->mutexUnlock(t, 0x1000);
    };
    for (CoreId c = 0; c < 4; ++c)
        s.start(c, body(s.api(c), &lib));
    EXPECT_EQ(s.runDetailed(10000000ULL), sys::RunOutcome::Finished);
    EXPECT_FALSE(stalled);
    EXPECT_FALSE(s.watchdog()->stalled());
}

TEST(Resil, InvariantCheckerDetectsCorruption)
{
    SystemConfig cfg = makeConfig(4, AccelMode::MsaOmu, 2);
    cfg.msa.hwSyncBitOpt = false; // entry stays resident while held
    cfg.resil.invariantChecks = true;
    cfg.resil.invariantInterval = 1000;
    sys::System s(cfg);
    std::vector<std::string> violations;
    armCollector(s, violations);
    SyncLib lib(SyncLib::Flavor::Hw, 4);

    const Addr lock = 0x1000;
    auto body = [](ThreadApi t, SyncLib *lib, Addr l) -> ThreadTask {
        co_await lib->mutexLock(t, l);
        co_await t.compute(20000);
        co_await lib->mutexUnlock(t, l);
    };
    s.start(0, body(s.api(0), &lib, lock));

    // Corrupt the entry mid-hold (drop the owner's HWQueue bit), then
    // repair it before the unlock so the run still terminates.
    const CoreId home = mem::homeTile(blockAlign(lock), 4);
    s.eventQueue().scheduleAt(5000, [&s, home, lock] {
        msa::MsaEntry *e = s.msaSlice(home).mutableEntry(lock);
        ASSERT_NE(e, nullptr);
        e->hwQueue.reset(e->owner);
    });
    s.eventQueue().scheduleAt(8000, [&s, home, lock] {
        msa::MsaEntry *e = s.msaSlice(home).mutableEntry(lock);
        if (e && e->owner != invalidCore)
            e->hwQueue.set(e->owner);
    });

    ASSERT_TRUE(s.run(10000000ULL));
    ASSERT_FALSE(violations.empty())
        << "checker missed a corrupted entry";
    EXPECT_NE(violations.front().find("missing from HWQueue"),
              std::string::npos)
        << violations.front();
    EXPECT_GE(s.stats().counter("resil.invariantViolations").value(),
              1u);
}

TEST(Resil, FaultedRunsReplayDeterministically)
{
    auto once = [](std::uint64_t workload_seed) {
        SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
        cfg.resil.dropProb = 0.05;
        cfg.resil.dupProb = 0.02;
        cfg.resil.delayProb = 0.1;
        cfg.resil.delayTicks = 300;
        cfg.resil.timeoutTicks = 2500;
        cfg.resil.faultSeed = 0xfeed;
        cfg.resil.offlineTile = 0;
        cfg.resil.offlineAtTick = 20000;
        sys::System s(cfg);
        SyncLib lib(SyncLib::Flavor::Hw, 16);
        const std::vector<Addr> locks = {0x1000, 0x1400, 0x1800};
        LockShared sh;
        sh.inCs.assign(locks.size(), 0);
        sh.maxInCs.assign(locks.size(), 0);
        sh.csCount.assign(locks.size(), 0);
        for (CoreId c = 0; c < 16; ++c)
            s.start(c, lockLoop(s.api(c), &lib, &sh, &locks, 16, 40,
                                workload_seed, true));
        EXPECT_TRUE(s.run(500000000ULL));
        struct
        {
            Tick makespan;
            std::uint64_t drops, timeouts, retries;
        } r{s.makespan(),
            s.stats().counter("resil.injectedDrops").value(),
            s.stats().counter("resil.timeouts").value(),
            s.stats().counter("resil.retries").value()};
        return std::make_tuple(r.makespan, r.drops, r.timeouts,
                               r.retries);
    };
    // Identical (workload seed, fault seed, fault config) must replay
    // cycle-exactly; a different workload seed must not.
    EXPECT_EQ(once(3), once(3));
    EXPECT_NE(std::get<0>(once(3)), std::get<0>(once(4)));
}

TEST(Resil, FaultPresetRunsToCompletion)
{
    // The MSA/OMU-2+faults preset (used by bench/resil_degradation)
    // must validate and carry a lock-heavy run across the fault
    // campaign with its checkers armed.
    SystemConfig cfg = sys::configFor(sys::PaperConfig::MsaOmu2Faults,
                                      16);
    sys::System s(cfg);
    std::vector<std::string> violations;
    armCollector(s, violations);
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    const std::vector<Addr> locks = {0x1000, 0x2040, 0x3080};
    LockShared sh;
    sh.inCs.assign(locks.size(), 0);
    sh.maxInCs.assign(locks.size(), 0);
    sh.csCount.assign(locks.size(), 0);
    const int iters = 80;
    for (CoreId c = 0; c < 16; ++c)
        s.start(c, lockLoop(s.api(c), &lib, &sh, &locks, 16, iters, 11,
                            true));
    ASSERT_TRUE(s.run(500000000ULL));
    std::uint64_t total = 0;
    for (unsigned w = 0; w < locks.size(); ++w) {
        EXPECT_EQ(sh.inCs[w], 0);
        EXPECT_LE(sh.maxInCs[w], 1);
        total += sh.csCount[w];
    }
    EXPECT_EQ(total, 16u * iters);
    EXPECT_TRUE(s.msaSlice(0).isOffline());
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
}

} // namespace
} // namespace resil
} // namespace misar
