/**
 * @file
 * Core-fault tests: a participant halts dead mid-run and the system
 * must finish anyway. Covers lease-based lock revocation (a corpse
 * holding a hardware lock inside a barrier episode), lease renewal
 * keeping live holders safe, barrier membership reconfiguration on
 * dead-core declaration (hardware and all software flavors), MSA
 * slice failover to a buddy, corefaults-preset end-to-end behavior,
 * and the simulator CLI's kill-spec validation (negative paths).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <string>
#include <vector>

#include "mem/msg.hh"
#include "sim/rng.hh"
#include "sync/sync_lib.hh"
#include "system/presets.hh"
#include "system/system.hh"

namespace misar {
namespace resil {
namespace {

using cpu::ThreadApi;
using cpu::ThreadTask;
using sync::SyncLib;

/** Collect invariant violations into @p out instead of dying. */
void
armCollector(sys::System &s, std::vector<std::string> &out)
{
    if (auto *c = s.invariantChecker())
        c->setViolationHandler([&out](const std::vector<std::string> &v) {
            out.insert(out.end(), v.begin(), v.end());
        });
}

/** Wire the software sync layer to the system's dead-core roster. */
void
wireDeadQuery(sys::System &s, SyncLib &lib)
{
    lib.setDeadQuery([&s](CoreId c) { return s.isDeclaredDead(c); });
}

struct LockShared
{
    std::vector<int> inCs;
    std::vector<int> maxInCs;
    std::vector<std::uint64_t> csCount;
    unsigned done = 0;
};

ThreadTask
lockLoop(ThreadApi t, SyncLib *lib, LockShared *sh,
         const std::vector<Addr> *locks, unsigned threads, int iters,
         std::uint64_t seed, bool end_barrier)
{
    Rng rng(seed * 6151 + t.id() * 389 + 7);
    for (int i = 0; i < iters; ++i) {
        unsigned w = static_cast<unsigned>(rng.range(locks->size()));
        co_await lib->mutexLock(t, (*locks)[w]);
        sh->inCs[w]++;
        sh->maxInCs[w] = std::max(sh->maxInCs[w], sh->inCs[w]);
        sh->csCount[w]++;
        co_await t.compute(rng.range(100));
        sh->inCs[w]--;
        co_await lib->mutexUnlock(t, (*locks)[w]);
        co_await t.compute(rng.range(80));
    }
    if (end_barrier)
        co_await lib->barrierWait(t, 0xbeef00, threads);
    sh->done++;
}

/** Corefaults base config: 16 cores, MSA/OMU-2, leases armed. */
SystemConfig
coreFaultConfig(unsigned victim, Tick kill_at)
{
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    cfg.resil.coreKills.push_back({victim, kill_at});
    cfg.resil.leaseTicks = 3000;
    cfg.resil.leaseProbeTimeout = 1000;
    cfg.resil.coreDetectDelay = 5000;
    cfg.resil.timeoutTicks = 1000;
    cfg.resil.maxRetries = 8;
    cfg.resil.watchdogInterval = 2000000;
    cfg.resil.invariantChecks = true;
    cfg.resil.invariantInterval = 10000;
    cfg.validate();
    return cfg;
}

// The acceptance scenario: the victim takes a hardware lock and dies
// holding it while every peer is either queued on that lock or parked
// in the end barrier. Lease expiry must revoke the orphaned lock and
// grant the next waiter; the dead-core declaration must strike the
// corpse from the barrier so the survivors' episode closes. The run
// must FINISH — a wedge here is exactly the deadlock this PR exists
// to prevent.
TEST(CoreFaults, KillHolderInsideBarrierFinishes)
{
    const unsigned victim = 5;
    SystemConfig cfg = coreFaultConfig(victim, 10000);
    sys::System s(cfg);
    std::vector<std::string> violations;
    armCollector(s, violations);
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    wireDeadQuery(s, lib);

    const Addr lock = 0x1000;
    struct Sh
    {
        int inCs = 0;
        int maxInCs = 0;
        std::uint64_t csCount = 0;
        unsigned done = 0;
    } sh;

    // The victim grabs the lock immediately and "computes" far past
    // its own death; everyone else waits out the grab window first so
    // the victim's ownership is deterministic. The victim stays out
    // of the inCs accounting: its critical section is the one being
    // revoked, and the guarantee under test is mutual exclusion among
    // the LIVE threads after recovery.
    auto victim_body = [](ThreadApi t, SyncLib *lib, Sh *sh,
                          Addr l) -> ThreadTask {
        co_await lib->mutexLock(t, l);
        co_await t.compute(40000); // killed at 10000, mid-hold
        co_await lib->mutexUnlock(t, l);
        co_await lib->barrierWait(t, 0xbeef00, 16);
        sh->done++;
    };
    auto peer_body = [](ThreadApi t, SyncLib *lib, Sh *sh,
                        Addr l) -> ThreadTask {
        co_await t.compute(2000);
        co_await lib->mutexLock(t, l);
        sh->inCs++;
        sh->maxInCs = std::max(sh->maxInCs, sh->inCs);
        sh->csCount++;
        co_await t.compute(200);
        sh->inCs--;
        co_await lib->mutexUnlock(t, l);
        co_await lib->barrierWait(t, 0xbeef00, 16);
        sh->done++;
    };
    for (CoreId c = 0; c < 16; ++c) {
        if (c == victim)
            s.start(c, victim_body(s.api(c), &lib, &sh, lock));
        else
            s.start(c, peer_body(s.api(c), &lib, &sh, lock));
    }

    EXPECT_EQ(s.runDetailed(500000000ULL), sys::RunOutcome::Finished)
        << "a corpse holding a lock inside a barrier wedged the run";
    EXPECT_EQ(sh.done, 15u) << "a live peer never got past the barrier";
    EXPECT_EQ(sh.csCount, 15u);
    EXPECT_LE(sh.maxInCs, 1)
        << "revocation granted the lock while the corpse 'held' it";
    EXPECT_EQ(s.stats().counterValue("resil.coreKills"), 1u);
    EXPECT_EQ(s.stats().counterValue("resil.deadDeclarations"), 1u);
    EXPECT_GE(s.stats().sumCountersSuffix(".msa.lockRevocations"), 1u)
        << "the orphaned hardware lock was never revoked";
    EXPECT_GE(s.stats().sumCountersSuffix(".msa.barrierReconfigs"), 1u)
        << "the corpse was never struck from barrier membership";
    // The dead owner never sends its release, so nothing gets fenced.
    EXPECT_EQ(s.stats().sumCountersSuffix(".msa.fencedReleases"), 0u);
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
}

// Leases must be harmless to the living: a long critical section is
// kept alive by heartbeat renewals, never revoked.
TEST(CoreFaults, LeaseRenewalKeepsLiveHolder)
{
    SystemConfig cfg = makeConfig(4, AccelMode::MsaOmu, 2);
    cfg.resil.leaseTicks = 2000;
    cfg.resil.leaseProbeTimeout = 800;
    cfg.resil.invariantChecks = true;
    cfg.resil.invariantInterval = 5000;
    cfg.validate();
    sys::System s(cfg);
    std::vector<std::string> violations;
    armCollector(s, violations);
    SyncLib lib(SyncLib::Flavor::Hw, 4);

    const Addr lock = 0x1000;
    struct Sh
    {
        int inCs = 0;
        int maxInCs = 0;
        unsigned done = 0;
    } sh;
    auto holder = [](ThreadApi t, SyncLib *lib, Sh *sh,
                     Addr l) -> ThreadTask {
        co_await lib->mutexLock(t, l);
        sh->inCs++;
        sh->maxInCs = std::max(sh->maxInCs, sh->inCs);
        co_await t.compute(15000); // many lease periods
        sh->inCs--;
        co_await lib->mutexUnlock(t, l);
        sh->done++;
    };
    auto peer = [](ThreadApi t, SyncLib *lib, Sh *sh,
                   Addr l) -> ThreadTask {
        co_await t.compute(500);
        co_await lib->mutexLock(t, l);
        sh->inCs++;
        sh->maxInCs = std::max(sh->maxInCs, sh->inCs);
        sh->inCs--;
        co_await lib->mutexUnlock(t, l);
        sh->done++;
    };
    s.start(0, holder(s.api(0), &lib, &sh, lock));
    for (CoreId c = 1; c < 4; ++c)
        s.start(c, peer(s.api(c), &lib, &sh, lock));

    EXPECT_EQ(s.runDetailed(500000000ULL), sys::RunOutcome::Finished);
    EXPECT_EQ(sh.done, 4u);
    EXPECT_LE(sh.maxInCs, 1);
    EXPECT_GE(s.stats().sumCountersSuffix(".msa.leaseProbes"), 1u)
        << "a multi-lease hold was never probed";
    EXPECT_GE(s.stats().sumCountersSuffix(".msa.leaseRenewals"), 1u)
        << "a live holder failed to renew";
    EXPECT_EQ(s.stats().sumCountersSuffix(".msa.lockRevocations"), 0u)
        << "a live holder was revoked";
    EXPECT_EQ(s.stats().sumCountersSuffix(".msa.fencedReleases"), 0u);
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
}

// A corpse that dies BEFORE arriving at a barrier: the declaration
// must strike it from the arrival mask and release the live waiters.
TEST(CoreFaults, DeadBarrierWaiterReleasedOnDeclaration)
{
    const unsigned victim = 3;
    SystemConfig cfg = coreFaultConfig(victim, 5000);
    sys::System s(cfg);
    std::vector<std::string> violations;
    armCollector(s, violations);
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    wireDeadQuery(s, lib);

    const Addr barrier = 0x1000;
    struct Sh
    {
        unsigned done = 0;
    } sh;
    auto victim_body = [](ThreadApi t, SyncLib *lib, Sh *sh,
                          Addr b) -> ThreadTask {
        co_await t.compute(30000); // killed at 5000, never arrives
        co_await lib->barrierWait(t, b, 16);
        sh->done++;
    };
    auto peer_body = [](ThreadApi t, SyncLib *lib, Sh *sh,
                        Addr b) -> ThreadTask {
        co_await t.compute(100);
        co_await lib->barrierWait(t, b, 16);
        sh->done++;
    };
    for (CoreId c = 0; c < 16; ++c) {
        if (c == victim)
            s.start(c, victim_body(s.api(c), &lib, &sh, barrier));
        else
            s.start(c, peer_body(s.api(c), &lib, &sh, barrier));
    }

    EXPECT_EQ(s.runDetailed(500000000ULL), sys::RunOutcome::Finished)
        << "15 live waiters were stranded behind a corpse";
    EXPECT_EQ(sh.done, 15u);
    // Release happens at the declaration (kill + detect delay), not
    // before: the survivors genuinely waited for the verdict.
    EXPECT_GE(s.makespan(), 5000u + cfg.resil.coreDetectDelay);
    EXPECT_GE(s.stats().sumCountersSuffix(".msa.barrierReconfigs"), 1u);
    EXPECT_GE(s.stats().sumCountersSuffix(".msa.barrierReleases"), 1u)
        << "reconfiguration never closed the episode";
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
}

// Every software barrier flavor must survive a dead participant once
// the dead query is wired: central (pthread-like), tournament, and
// dissemination all have distinct dead-peer paths. Two rounds, so the
// episode/generation machinery advances past the corpse correctly.
TEST(CoreFaults, SoftwareBarriersSurviveDeadCore)
{
    const SyncLib::Flavor flavors[] = {
        SyncLib::Flavor::PthreadSw,
        SyncLib::Flavor::McsTourSw,
        SyncLib::Flavor::TicketDissemSw,
    };
    for (SyncLib::Flavor fl : flavors) {
        SCOPED_TRACE(SyncLib::flavorName(fl));
        SystemConfig cfg = makeConfig(4, AccelMode::None);
        cfg.resil.coreKills.push_back({2, 5000});
        cfg.resil.coreDetectDelay = 5000;
        cfg.resil.watchdogInterval = 2000000;
        cfg.validate();
        sys::System s(cfg);
        SyncLib lib(fl, 4);
        wireDeadQuery(s, lib);

        struct Sh
        {
            unsigned done = 0;
        } sh;
        auto victim_body = [](ThreadApi t, SyncLib *lib,
                              Sh *sh) -> ThreadTask {
            co_await t.compute(30000); // killed mid-compute
            co_await lib->barrierWait(t, 0x9000, 4);
            co_await lib->barrierWait(t, 0x9000, 4);
            sh->done++;
        };
        auto peer_body = [](ThreadApi t, SyncLib *lib,
                            Sh *sh) -> ThreadTask {
            co_await t.compute(100 + t.id() * 37);
            co_await lib->barrierWait(t, 0x9000, 4);
            co_await t.compute(50);
            co_await lib->barrierWait(t, 0x9000, 4);
            sh->done++;
        };
        for (CoreId c = 0; c < 4; ++c) {
            if (c == 2)
                s.start(c, victim_body(s.api(c), &lib, &sh));
            else
                s.start(c, peer_body(s.api(c), &lib, &sh));
        }
        EXPECT_EQ(s.runDetailed(500000000ULL),
                  sys::RunOutcome::Finished)
            << "software barrier wedged on a corpse";
        EXPECT_EQ(sh.done, 3u);
    }
}

// Slice failover: the dying slice's live entries re-home to a buddy
// via the state handoff instead of being shed, and the lock workload
// keeps its mutual-exclusion guarantee across the move.
TEST(CoreFaults, SliceFailoverRehomesVariables)
{
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    // Two locks on a two-entry slice, HWSync-bit off: no eviction
    // pressure, so both entries are resident (and contended) at the
    // failover tick — the re-home path is what this test is about.
    cfg.msa.hwSyncBitOpt = false;
    const std::vector<Addr> locks = {0x1000, 0x1400};
    for (Addr l : locks)
        ASSERT_EQ(mem::homeTile(blockAlign(l), 16), 0u);
    cfg.resil.offlineTile = 0;
    cfg.resil.offlineAtTick = 30000;
    cfg.resil.failoverBuddy = 1;
    cfg.resil.invariantChecks = true;
    cfg.resil.invariantInterval = 10000;
    cfg.resil.watchdogInterval = 2000000;
    cfg.validate();
    sys::System s(cfg);
    std::vector<std::string> violations;
    armCollector(s, violations);
    SyncLib lib(SyncLib::Flavor::Hw, 16);

    LockShared sh;
    sh.inCs.assign(locks.size(), 0);
    sh.maxInCs.assign(locks.size(), 0);
    sh.csCount.assign(locks.size(), 0);
    const int iters = 150;
    for (CoreId c = 0; c < 16; ++c)
        s.start(c, lockLoop(s.api(c), &lib, &sh, &locks, 16, iters, 5,
                            true));

    EXPECT_EQ(s.runDetailed(500000000ULL), sys::RunOutcome::Finished)
        << "hung across the slice failover";
    EXPECT_GT(s.makespan(), 30000u) << "failover hit after the run";
    EXPECT_TRUE(s.msaSlice(0).isOffline());

    std::uint64_t total = 0;
    for (unsigned w = 0; w < locks.size(); ++w) {
        EXPECT_EQ(sh.inCs[w], 0);
        EXPECT_LE(sh.maxInCs[w], 1)
            << "mutual exclusion broken across the handoff";
        total += sh.csCount[w];
    }
    EXPECT_EQ(total, 16u * iters);
    EXPECT_EQ(sh.done, 16u);

    EXPECT_EQ(s.stats().counterValue("tile0.msa.failovers"), 1u);
    EXPECT_EQ(s.stats().counterValue("tile1.msa.handoffsApplied"), 1u)
        << "the buddy never applied the handoff";
    // With 16 contenders on three tile-0 locks, the dying slice held
    // live entries at the failover tick — they must have moved, not
    // been shed to software.
    EXPECT_GE(s.stats().sumCountersSuffix(".msa.rehomedVars"), 1u);
    EXPECT_EQ(s.stats().counterValue("tile0.msa.offlineLockAborts"),
              0u)
        << "failover shed waiters it should have re-homed";
    EXPECT_EQ(s.msaSlice(0).validEntries(), 0u);
    for (CoreId t = 0; t < 16; ++t)
        for (Addr l : locks)
            EXPECT_EQ(s.msaSlice(t).omu().count(l), 0u);
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
}

// The shipped corefaults preset must carry a real benchmark across a
// kill end-to-end with its checkers armed (this is the bench row's
// configuration; the bench asserts the same outcome from the CLI).
TEST(CoreFaults, CoreFaultPresetRunsToCompletion)
{
    SystemConfig cfg =
        sys::configFor(sys::PaperConfig::MsaOmu2CoreFaults, 16);
    sys::System s(cfg);
    std::vector<std::string> violations;
    armCollector(s, violations);
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    wireDeadQuery(s, lib);
    const std::vector<Addr> locks = {0x1000, 0x2040, 0x3080};
    LockShared sh;
    sh.inCs.assign(locks.size(), 0);
    sh.maxInCs.assign(locks.size(), 0);
    sh.csCount.assign(locks.size(), 0);
    for (CoreId c = 0; c < 16; ++c)
        s.start(c, lockLoop(s.api(c), &lib, &sh, &locks, 16, 120, 11,
                            false));

    EXPECT_EQ(s.runDetailed(500000000ULL), sys::RunOutcome::Finished);
    EXPECT_EQ(s.stats().counterValue("resil.coreKills"), 1u);
    EXPECT_EQ(s.stats().counterValue("resil.deadDeclarations"), 1u);
    for (unsigned w = 0; w < locks.size(); ++w)
        EXPECT_LE(sh.maxInCs[w], 1);
    // The corpse dies inside the lock loop, so its iterations are
    // lost but everyone else's complete.
    EXPECT_EQ(sh.done, 15u);
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
}

// ------------------------------------------------------- CLI guards

/** Run the real simulator binary; return its exit code + output. */
int
runSim(const std::string &args, std::string &output)
{
    const std::string cmd =
        std::string(MISAR_SIM_PATH) + " " + args + " 2>&1";
    FILE *p = ::popen(cmd.c_str(), "r");
    EXPECT_NE(p, nullptr);
    if (!p)
        return -1;
    char buf[512];
    output.clear();
    while (std::fgets(buf, sizeof(buf), p))
        output += buf;
    int st = ::pclose(p);
    return WIFEXITED(st) ? WEXITSTATUS(st) : -1;
}

TEST(CoreFaultsCli, MalformedKillSpecsAreRejected)
{
    struct Case
    {
        const char *args;
        const char *needle;
    };
    const Case cases[] = {
        // Truncated, non-numeric, trailing-garbage, and negated
        // specs must all die in the parser with a usable message.
        {"--app fft --kill-core 5@", "--kill-core expects C@TICK"},
        {"--app fft --kill-core five@100", "--kill-core expects"},
        {"--app fft --kill-core -1@100", "--kill-core expects"},
        {"--app fft --kill-link 1:2@3junk", "--kill-link expects"},
        {"--app fft --kill-link 1:2", "--kill-link expects"},
        {"--app fft --kill-router @5", "--kill-router expects"},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.args);
        std::string out;
        EXPECT_EQ(runSim(c.args, out), 1) << out;
        EXPECT_NE(out.find(c.needle), std::string::npos) << out;
    }
}

TEST(CoreFaultsCli, OutOfRangeKillTargetsAreRejected)
{
    struct Case
    {
        const char *args;
        const char *needle;
    };
    const Case cases[] = {
        {"--app fft --cores 16 --kill-core 99@1000",
         "--kill-core 99 out of range for 16 cores"},
        {"--app fft --cores 16 --kill-router 16@1000",
         "--kill-router 16 out of range"},
        {"--app fft --cores 16 --kill-link 0:16@1000",
         "--kill-link 0:16 out of range"},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.args);
        std::string out;
        EXPECT_EQ(runSim(c.args, out), 1) << out;
        EXPECT_NE(out.find(c.needle), std::string::npos) << out;
    }
}

TEST(CoreFaultsCli, KillCoreRunFinishesWithRecoveryCounters)
{
    // The acceptance scenario from the CLI: a verified combination
    // where the victim holds a hardware lock when it dies. The run
    // must exit 0 (Finished — 40 would be deadlock) and report its
    // recovery work in the summary.
    std::string out;
    const int rc = runSim(
        "--app radiosity --config msa-omu2-corefaults --cores 16 "
        "--seed 1",
        out);
    EXPECT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("core faults"), std::string::npos) << out;
}

} // namespace
} // namespace resil
} // namespace misar
