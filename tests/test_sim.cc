/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering,
 * statistics, RNG determinism, and configuration validation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include <algorithm>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace misar {
namespace {

TEST(EventQueue, StartsAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, RunsEventsInTickOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        eq.schedule(1, [&] {
            eq.schedule(1, [&] { ++fired; });
            ++fired;
        });
        ++fired;
    });
    eq.run();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 3u);
}

TEST(EventQueue, ZeroDelayRunsSameTick)
{
    EventQueue eq;
    Tick seen = maxTick;
    eq.schedule(7, [&] { eq.schedule(0, [&] { seen = eq.now(); }); });
    eq.run();
    EXPECT_EQ(seen, 7u);
}

TEST(EventQueue, RunLimitStops)
{
    EventQueue eq;
    bool late = false;
    eq.schedule(100, [&] { late = true; });
    EXPECT_FALSE(eq.run(50));
    EXPECT_FALSE(late);
    EXPECT_TRUE(eq.run());
    EXPECT_TRUE(late);
}

TEST(EventQueue, RunUntilAdvancesClock)
{
    EventQueue eq;
    eq.runUntil(42);
    EXPECT_EQ(eq.now(), 42u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.executedEvents(), 5u);
}

TEST(Stats, CounterBasics)
{
    StatCounter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.dec(2);
    EXPECT_EQ(c.value(), 3u);
}

TEST(Stats, AverageTracksMoments)
{
    StatAverage a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Stats, RegistryPrefixSum)
{
    StatRegistry r;
    r.counter("tile0.l1.miss").inc(3);
    r.counter("tile1.l1.miss").inc(4);
    r.counter("tile1.l1.hit").inc(100);
    r.counter("other").inc(7);
    EXPECT_EQ(r.sumCounters("tile"), 107u);
    EXPECT_EQ(r.sumCounters("tile0"), 3u);
    EXPECT_EQ(r.sumCounters("nope"), 0u);
}

TEST(Stats, PooledMeanWeightsBySamples)
{
    StatRegistry r;
    r.average("x.a").sample(1.0);
    r.average("x.a").sample(1.0);
    r.average("x.b").sample(4.0);
    EXPECT_DOUBLE_EQ(r.pooledMean("x."), 2.0);
}

TEST(Stats, DumpContainsNames)
{
    StatRegistry r;
    r.counter("alpha").inc(1);
    r.average("beta").sample(2.5);
    std::ostringstream os;
    r.dump(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("beta"), std::string::npos);
}

TEST(Stats, HistogramBucketsPowersOfTwo)
{
    StatHistogram h(8);
    h.sample(1);
    h.sample(2);
    h.sample(3);
    h.sample(1024);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.data()[0], 1u);
    EXPECT_EQ(h.data()[1], 2u); // 2 and 3 both land in bucket 1
    EXPECT_EQ(h.data()[7], 1u); // 1024 clamps to the last bucket
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, RangeInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.range(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Config, MeshDimSquare)
{
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    EXPECT_EQ(cfg.meshDim(), 4u);
    cfg = makeConfig(64, AccelMode::MsaInfinite);
    EXPECT_EQ(cfg.meshDim(), 8u);
}

TEST(Config, AccelNames)
{
    EXPECT_EQ(makeConfig(16, AccelMode::None).accelName(), "MSA-0");
    EXPECT_EQ(makeConfig(16, AccelMode::MsaOmu, 1).accelName(), "MSA/OMU-1");
    EXPECT_EQ(makeConfig(16, AccelMode::MsaOmu, 2).accelName(), "MSA/OMU-2");
    EXPECT_EQ(makeConfig(16, AccelMode::MsaInfinite).accelName(), "MSA-inf");
    EXPECT_EQ(makeConfig(16, AccelMode::Ideal).accelName(), "Ideal");
}

TEST(Config, BlockHelpers)
{
    EXPECT_EQ(blockAlign(0x1234), 0x1200u);
    EXPECT_EQ(blockOffset(0x1234), 0x34u);
    EXPECT_EQ(blockAlign(blockAlign(0xdeadbeef)), blockAlign(0xdeadbeef));
}

TEST(Trace, DisabledRecordsNothing)
{
    TraceBuffer tb;
    tb.record(0, 10, "x");
    EXPECT_TRUE(tb.data().empty());
}

TEST(Trace, RecordsWhenEnabled)
{
    TraceBuffer tb;
    tb.setEnabled(true);
    tb.record(5, 10, "compute");
    tb.record(10, 30, "LOCK", 0x1000);
    ASSERT_EQ(tb.data().size(), 2u);
    EXPECT_EQ(tb.data()[1].addr, 0x1000u);
}

TEST(Trace, ChromeJsonWellFormed)
{
    TraceBuffer a, b;
    a.setEnabled(true);
    b.setEnabled(true);
    a.record(0, 4, "compute");
    b.record(2, 9, "read", 0x40);
    std::ostringstream os;
    writeChromeTrace(os, {&a, &b});
    const std::string j = os.str();
    EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(j.find("\"name\":\"compute\""), std::string::npos);
    EXPECT_NE(j.find("\"tid\":1"), std::string::npos);
    EXPECT_NE(j.find("0x40"), std::string::npos);
    // Balanced braces/brackets as a cheap well-formedness check.
    EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
              std::count(j.begin(), j.end(), '}'));
    EXPECT_EQ(std::count(j.begin(), j.end(), '['),
              std::count(j.begin(), j.end(), ']'));
}

} // namespace
} // namespace misar
