/**
 * @file
 * Campaign-engine tests: JSON parser, spec expansion, manifest
 * journal, process pool, outcome propagation through run reports,
 * crash-report durability, and the subprocess end-to-end path
 * (spawn, exit-code classification, chaos kill + retry, resume).
 */

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/run_report.hh"
#include "orch/aggregate.hh"
#include "orch/campaign_spec.hh"
#include "orch/engine.hh"
#include "orch/exit_codes.hh"
#include "orch/json.hh"
#include "orch/manifest.hh"
#include "orch/process_pool.hh"
#include "sim/logging.hh"
#include "system/presets.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;
using namespace misar::orch;

namespace {

std::string
tmpDir()
{
    char tmpl[] = "/tmp/misar_orch_XXXXXX";
    const char *d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    return d;
}

std::string
slurp(const std::string &path)
{
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/** A tiny 2x2x2 spec used by the engine tests (fast apps). */
CampaignSpec
smokeSpec()
{
    CampaignSpec spec;
    std::string err;
    const std::string text = R"({
        "name": "t",
        "presets": [
            {"name": "Base", "config": "baseline"},
            {"name": "MSA", "config": "msa-omu", "entries": 2}
        ],
        "apps": ["fft"],
        "cores": [16],
        "seeds": [1, 2],
        "baseline": "Base",
        "stats": ["sync.hwOps"],
        "timeoutSec": 120
    })";
    EXPECT_TRUE(CampaignSpec::parse(text, spec, err)) << err;
    EXPECT_EQ(spec.validate(), "");
    return spec;
}

} // namespace

// ---------------------------------------------------------------- JSON

TEST(OrchJson, ParsesScalarsArraysObjects)
{
    std::string err;
    Json j = parseJson(
        R"({"a": 1.5, "b": [true, null, "x\n\"y\""], "n": -3})", &err);
    ASSERT_TRUE(j.isObj()) << err;
    EXPECT_DOUBLE_EQ(j.at("a").numberOr(0), 1.5);
    EXPECT_EQ(j.at("n").numberOr(0), -3);
    ASSERT_TRUE(j.at("b").isArr());
    EXPECT_TRUE(j.at("b").arr[0].boolOr(false));
    EXPECT_TRUE(j.at("b").arr[1].isNull());
    EXPECT_EQ(j.at("b").arr[2].stringOr(""), "x\n\"y\"");
    EXPECT_FALSE(j.has("missing"));
    EXPECT_TRUE(j.at("missing").isNull());
}

TEST(OrchJson, DecodesUnicodeEscapes)
{
    Json j = parseJson(R"({"s": "Aé"})");
    EXPECT_EQ(j.at("s").stringOr(""), "A\xc3\xa9");
}

TEST(OrchJson, ReportsErrorsWithOffset)
{
    std::string err;
    Json j = parseJson("{\"a\": }", &err);
    EXPECT_TRUE(j.isNull());
    EXPECT_NE(err.find("offset"), std::string::npos);

    err.clear();
    parseJson("{\"a\": 1} trailing", &err);
    EXPECT_FALSE(err.empty());
}

TEST(OrchJson, UintOrRejectsNegativesAndNonNumbers)
{
    Json j = parseJson(R"({"neg": -5, "s": "x"})");
    EXPECT_EQ(j.at("neg").uintOr(7), 7u);
    EXPECT_EQ(j.at("s").uintOr(7), 7u);
    EXPECT_EQ(j.at("absent").uintOr(9), 9u);
}

// ---------------------------------------------------------------- spec

TEST(OrchSpec, ExpandsGridDeterministically)
{
    CampaignSpec spec = smokeSpec();
    std::vector<JobSpec> jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 4u); // 2 presets x 1 app x 1 cores x 2 seeds
    for (unsigned i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(jobs[i].id, i);
    EXPECT_EQ(jobs[0].key(), "Base|fft|c16|s1|r0");
    EXPECT_EQ(jobs[3].key(), "MSA|fft|c16|s2|r0");
    EXPECT_EQ(spec.gridHash(), smokeSpec().gridHash());

    CampaignSpec other = smokeSpec();
    other.tickLimit += 1;
    EXPECT_NE(spec.gridHash(), other.gridHash());
}

TEST(OrchSpec, PresetSeedOverrideAndShorthandApps)
{
    CampaignSpec spec;
    std::string err;
    ASSERT_TRUE(CampaignSpec::parse(
        R"({"presets": [{"name": "F", "config": "msa-omu-faults",
                         "seeds": [1, 2, 3]}],
            "apps": "headline"})",
        spec, err))
        << err;
    EXPECT_EQ(spec.validate(), "");
    EXPECT_EQ(spec.apps, workload::headlineApps());
    EXPECT_EQ(spec.expand().size(), 3 * spec.apps.size());
}

TEST(OrchSpec, ValidateCatchesBadInput)
{
    CampaignSpec spec = smokeSpec();
    spec.apps.push_back("no-such-app");
    EXPECT_NE(spec.validate().find("unknown app"), std::string::npos);

    spec = smokeSpec();
    spec.presets[0].config = "no-such-preset";
    EXPECT_NE(spec.validate().find("unknown preset"), std::string::npos);

    spec = smokeSpec();
    spec.cores = {15};
    EXPECT_NE(spec.validate().find("perfect square"), std::string::npos);

    spec = smokeSpec();
    spec.presets[1].name = spec.presets[0].name;
    EXPECT_NE(spec.validate().find("duplicate"), std::string::npos);

    spec = smokeSpec();
    spec.baseline = "nope";
    EXPECT_NE(spec.validate().find("baseline"), std::string::npos);
}

TEST(OrchSpec, OutcomeNamesRoundTrip)
{
    const JobOutcome all[] = {
        JobOutcome::Finished,   JobOutcome::Deadlock,
        JobOutcome::TickLimit,  JobOutcome::Error,
        JobOutcome::Crash,      JobOutcome::Timeout,
        JobOutcome::SpawnError, JobOutcome::Missing,
    };
    for (JobOutcome o : all)
        EXPECT_EQ(jobOutcomeFromName(jobOutcomeName(o)), o);
    EXPECT_TRUE(jobOutcomeRetryable(JobOutcome::Crash));
    EXPECT_TRUE(jobOutcomeRetryable(JobOutcome::Timeout));
    EXPECT_FALSE(jobOutcomeRetryable(JobOutcome::Deadlock));
    EXPECT_FALSE(jobOutcomeRetryable(JobOutcome::Error));
}

// ------------------------------------------------------------ manifest

TEST(OrchManifest, RoundTripsEntries)
{
    const std::string dir = tmpDir();
    const std::string path = dir + "/m.jsonl";

    Manifest m;
    ASSERT_TRUE(m.open(path, "camp", 3, 0xabcdULL, true));
    ManifestEntry e;
    e.job = 2;
    e.key = "K|fft|c16|s1|r0";
    e.outcome = "finished";
    e.exitCode = 0;
    e.attempts = 2;
    e.wallSec = 1.25;
    e.report = "jobs/job_000002.json";
    ASSERT_TRUE(m.append(e));
    m.close();

    std::vector<ManifestEntry> got;
    std::string err;
    ASSERT_TRUE(Manifest::load(path, "camp", 0xabcdULL, got, err)) << err;
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].job, 2u);
    EXPECT_EQ(got[0].key, e.key);
    EXPECT_EQ(got[0].outcome, "finished");
    EXPECT_EQ(got[0].attempts, 2u);
    EXPECT_EQ(got[0].report, e.report);
}

TEST(OrchManifest, ToleratesTornTrailingLine)
{
    const std::string dir = tmpDir();
    const std::string path = dir + "/m.jsonl";
    Manifest m;
    ASSERT_TRUE(m.open(path, "camp", 2, 1, true));
    ManifestEntry e;
    e.job = 0;
    e.key = "a";
    e.outcome = "finished";
    ASSERT_TRUE(m.append(e));
    m.close();
    {
        std::ofstream f(path, std::ios::app);
        f << "{\"job\":1,\"key\":\"b\",\"outc"; // torn mid-write
    }
    std::vector<ManifestEntry> got;
    std::string err;
    ASSERT_TRUE(Manifest::load(path, "camp", 1, got, err)) << err;
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].key, "a");
}

TEST(OrchManifest, RejectsMismatchedGrid)
{
    const std::string dir = tmpDir();
    const std::string path = dir + "/m.jsonl";
    Manifest m;
    ASSERT_TRUE(m.open(path, "camp", 2, 1, true));
    m.close();

    std::vector<ManifestEntry> got;
    std::string err;
    EXPECT_FALSE(Manifest::load(path, "camp", 2, got, err));
    EXPECT_FALSE(err.empty());
    err.clear();
    EXPECT_FALSE(Manifest::load(path, "other", 1, got, err));
    err.clear();
    EXPECT_FALSE(Manifest::load(dir + "/absent.jsonl", "camp", 1, got,
                                err));
}

// ---------------------------------------------------------------- pool

TEST(OrchPool, ReportsExitCodesAndExecFailures)
{
    const std::string dir = tmpDir();
    ProcessPool pool(2);
    std::map<unsigned, PoolOutcome> got;
    auto push = [&](unsigned id, std::vector<std::string> argv) {
        PoolTask t;
        t.id = id;
        t.argv = std::move(argv);
        t.logPath = dir + "/" + std::to_string(id) + ".log";
        pool.push(t);
    };
    push(0, {"/bin/sh", "-c", "echo out; exit 0"});
    push(1, {"/bin/sh", "-c", "exit 41"});
    push(2, {"/nonexistent/binary"});
    pool.run([&](const PoolTask &t, const PoolOutcome &o) {
        got[t.id] = o;
    });

    ASSERT_EQ(got.size(), 3u);
    EXPECT_TRUE(got[0].exited);
    EXPECT_EQ(got[0].exitCode, 0);
    EXPECT_EQ(got[1].exitCode, 41);
    EXPECT_EQ(got[2].exitCode, 127); // exec failure convention
    EXPECT_NE(slurp(dir + "/0.log").find("out"), std::string::npos);
}

TEST(OrchPool, KillsTasksPastTheirDeadline)
{
    const std::string dir = tmpDir();
    ProcessPool pool(1);
    PoolTask t;
    t.id = 0;
    t.argv = {"/bin/sh", "-c", "sleep 30"};
    t.logPath = dir + "/t.log";
    t.timeoutSec = 0.2;
    pool.push(t);
    PoolOutcome got;
    pool.run([&](const PoolTask &, const PoolOutcome &o) { got = o; });
    EXPECT_TRUE(got.timedOut);
    EXPECT_FALSE(got.exited);
    EXPECT_LT(got.wallSec, 10.0);
}

TEST(OrchPool, OnDoneMayPushRetries)
{
    const std::string dir = tmpDir();
    ProcessPool pool(2);
    PoolTask t;
    t.id = 7;
    t.argv = {"/bin/sh", "-c", "exit 3"};
    t.logPath = dir + "/t.log";
    pool.push(t);
    unsigned attempts = 0;
    pool.run([&](const PoolTask &task, const PoolOutcome &) {
        if (++attempts < 3)
            pool.push(task);
    });
    EXPECT_EQ(attempts, 3u);
    EXPECT_GT(pool.busySec(), 0.0);
}

// ------------------------------------------------------------- catalog

TEST(OrchCatalog, EveryAppResolvesAndUnknownIsNull)
{
    for (const workload::AppSpec &s : workload::appCatalog()) {
        const workload::AppSpec *f = workload::findApp(s.name);
        ASSERT_NE(f, nullptr) << s.name;
        EXPECT_EQ(f->name, s.name);
        EXPECT_EQ(&workload::appByName(s.name), f);
    }
    EXPECT_EQ(workload::findApp("no-such-app"), nullptr);
}

TEST(OrchCatalogDeathTest, AppByNameFailsCleanly)
{
    EXPECT_EXIT(workload::appByName("no-such-app"),
                ::testing::ExitedWithCode(1), "unknown application");
}

TEST(OrchCatalog, EveryCliPresetResolves)
{
    SystemConfig cfg;
    sync::SyncLib::Flavor fl;
    for (const std::string &name : sys::cliPresetNames()) {
        ASSERT_TRUE(sys::cliPresetFor(name, 16, 2, cfg, fl)) << name;
        cfg.validate();
        // The scale-study meshes pin their own core count; every
        // other preset takes the caller's.
        if (name == "msa256")
            EXPECT_EQ(cfg.numCores, 256u);
        else if (name == "msa1024")
            EXPECT_EQ(cfg.numCores, 1024u);
        else
            EXPECT_EQ(cfg.numCores, 16u) << name;
    }
    EXPECT_FALSE(sys::cliPresetFor("bogus", 16, 2, cfg, fl));
}

// ------------------------------------------- run-report round-trip

TEST(OrchRunReport, ResultRoundTripsThroughJson)
{
    const std::string dir = tmpDir();
    const std::string path = dir + "/report.json";

    // The faulted preset produces nonzero resilience counters, so
    // the round-trip checks more than zeros.
    SystemConfig cfg;
    sync::SyncLib::Flavor fl;
    ASSERT_TRUE(sys::cliPresetFor("msa-omu-faults", 16, 2, cfg, fl));
    cfg.obs.statsJsonPath = path;
    cfg.validate();

    workload::RunOptions opts;
    std::vector<std::string> capture = {"sync.hwOps", "noc.packetsSent"};
    opts.captureCounters = &capture;
    workload::RunResult r = workload::runAppWithConfig(
        workload::appByName("fft"), cfg, fl, 1, "msa-omu-faults", opts);
    ASSERT_TRUE(r.finished);

    std::string err;
    Json doc = parseJsonFile(path, &err);
    ASSERT_TRUE(doc.isObj()) << err;
    const Json &meta = doc.at("meta");
    EXPECT_EQ(meta.at("outcome").stringOr(""),
              sys::runOutcomeName(r.outcome));
    EXPECT_EQ(meta.at("makespan").uintOr(0), r.makespan);
    EXPECT_EQ(meta.at("preset").stringOr(""), "msa-omu-faults");
    EXPECT_EQ(meta.at("seed").uintOr(0), 1u);
    EXPECT_NEAR(meta.at("hwCoverage").numberOr(-1), r.hwCoverage, 1e-6);

    const Json &resil = doc.at("resilience");
    EXPECT_EQ(resil.at("timeouts").uintOr(99), r.timeouts);
    EXPECT_EQ(resil.at("retries").uintOr(99), r.retries);
    EXPECT_EQ(resil.at("abortedOps").uintOr(99), r.abortedOps);
    EXPECT_EQ(resil.at("offlineSheds").uintOr(99), r.offlineSheds);
    EXPECT_EQ(resil.at("crossedSnoops").uintOr(99), r.crossedSnoops);
    // Fault injection ran: at least one counter must be nonzero.
    EXPECT_GT(r.timeouts + r.retries + r.abortedOps + r.offlineSheds,
              0u);

    const Json &counters = doc.at("stats").at("counters");
    EXPECT_EQ(counters.at("sync.hwOps").uintOr(0), r.hwOps);
    EXPECT_EQ(r.captured.at("sync.hwOps"), r.hwOps);
    EXPECT_EQ(counters.at("noc.packetsSent").uintOr(0),
              r.captured.at("noc.packetsSent"));
}

TEST(OrchRunReportDeathTest, FatalStillWritesDurableReport)
{
    const std::string dir = tmpDir();
    const std::string path = dir + "/crash.json";
    EXPECT_EXIT(
        {
            SystemConfig cfg;
            sync::SyncLib::Flavor fl;
            sys::cliPresetFor("msa-omu", 16, 2, cfg, fl);
            cfg.obs.statsJsonPath = path;
            cfg.validate();
            sys::System s(cfg);
            obs::RunMeta meta;
            meta.app = "t";
            obs::CrashReportGuard guard(path, s, meta, 4);
            fatal("boom");
        },
        ::testing::ExitedWithCode(1), "boom");
    std::string err;
    Json doc = parseJsonFile(path, &err);
    ASSERT_TRUE(doc.isObj()) << err;
    EXPECT_EQ(doc.at("meta").at("outcome").stringOr(""), "fatal");
}

TEST(OrchRunReportDeathTest, PanicStillWritesDurableReport)
{
    const std::string dir = tmpDir();
    const std::string path = dir + "/crash.json";
    EXPECT_EXIT(
        {
            SystemConfig cfg;
            sync::SyncLib::Flavor fl;
            sys::cliPresetFor("msa-omu", 16, 2, cfg, fl);
            cfg.obs.statsJsonPath = path;
            cfg.validate();
            sys::System s(cfg);
            obs::RunMeta meta;
            meta.app = "t";
            obs::CrashReportGuard guard(path, s, meta, 4);
            panic("invariant");
        },
        ::testing::KilledBySignal(SIGABRT), "invariant");
    Json doc = parseJsonFile(path);
    ASSERT_TRUE(doc.isObj());
    EXPECT_EQ(doc.at("meta").at("outcome").stringOr(""), "panic");
}

// -------------------------------------------------------------- engine

TEST(OrchEngine, InProcessRunsAreDeterministic)
{
    CampaignSpec spec = smokeSpec();
    std::vector<JobRecord> a = runCampaignInProcess(spec);
    std::vector<JobRecord> b = runCampaignInProcess(spec);
    ASSERT_EQ(a.size(), 4u);
    for (const JobRecord &r : a)
        EXPECT_EQ(r.outcome, JobOutcome::Finished) << r.job.key();

    std::ostringstream ja, jb;
    CampaignReport(spec, a).writeJson(ja);
    CampaignReport(spec, b).writeJson(jb);
    EXPECT_EQ(ja.str(), jb.str());

    // MSA beats the pthread baseline on fft: a sane speedup cell.
    CampaignReport rep(spec, a);
    std::vector<double> sp = rep.speedups("MSA", "fft", 16);
    ASSERT_EQ(sp.size(), 2u);
    for (double s : sp)
        EXPECT_GT(s, 0.5);
    // Captured counters flowed into the cell aggregation.
    const Cell *cell = rep.cell("MSA", "fft", 16);
    ASSERT_NE(cell, nullptr);
    EXPECT_GT(cell->counters.at("sync.hwOps").mean(), 0.0);
}

TEST(OrchEngine, SubprocessMatchesInProcessAndResumes)
{
    CampaignSpec spec = smokeSpec();

    const std::string dir = tmpDir();
    EngineOptions opts;
    opts.outDir = dir + "/fresh";
    opts.workers = 2;
    opts.simPath = MISAR_SIM_PATH;
    opts.verbose = false;

    std::vector<JobRecord> sub;
    CampaignRunStats stats;
    std::string err;
    ASSERT_TRUE(runCampaign(spec, opts, sub, stats, err)) << err;
    EXPECT_TRUE(stats.complete);
    EXPECT_EQ(stats.jobsRun, 4u);

    // Subprocess and in-process execution agree on the simulation
    // results (and therefore on the aggregated report bytes).
    std::vector<JobRecord> inproc = runCampaignInProcess(spec);
    ASSERT_EQ(sub.size(), inproc.size());
    for (std::size_t i = 0; i < sub.size(); ++i) {
        EXPECT_EQ(sub[i].outcome, JobOutcome::Finished);
        EXPECT_EQ(sub[i].makespan, inproc[i].makespan) << i;
        EXPECT_EQ(sub[i].hwOps, inproc[i].hwOps) << i;
        EXPECT_EQ(sub[i].counters, inproc[i].counters) << i;
    }
    std::ostringstream jsub, jin;
    CampaignReport(spec, sub).writeJson(jsub);
    CampaignReport(spec, inproc).writeJson(jin);
    EXPECT_EQ(jsub.str(), jin.str());

    // Chaos: kill job 1's first attempt (retry covers it), stop
    // early, then resume; the resumed campaign's report must equal
    // the uninterrupted one byte for byte.
    EngineOptions chaos = opts;
    chaos.outDir = dir + "/chaos";
    chaos.chaosKillJob = 1;
    chaos.stopAfter = 1;
    std::vector<JobRecord> part;
    ASSERT_TRUE(runCampaign(spec, chaos, part, stats, err)) << err;
    EXPECT_FALSE(stats.complete);
    EXPECT_GT(stats.attempts, stats.jobsRun); // the chaos retry

    EngineOptions resume = chaos;
    resume.chaosKillJob = -1;
    resume.stopAfter = -1;
    resume.resume = true;
    std::vector<JobRecord> full;
    ASSERT_TRUE(runCampaign(spec, resume, full, stats, err)) << err;
    EXPECT_TRUE(stats.complete);
    EXPECT_GT(stats.jobsSkipped, 0u);

    std::ostringstream jfull;
    CampaignReport(spec, full).writeJson(jfull);
    EXPECT_EQ(jfull.str(), jsub.str());
}

TEST(OrchEngine, ResumeRejectsChangedGrid)
{
    CampaignSpec spec = smokeSpec();
    const std::string dir = tmpDir();
    EngineOptions opts;
    opts.outDir = dir;
    opts.workers = 2;
    opts.simPath = MISAR_SIM_PATH;
    opts.verbose = false;

    std::vector<JobRecord> recs;
    CampaignRunStats stats;
    std::string err;
    ASSERT_TRUE(runCampaign(spec, opts, recs, stats, err)) << err;

    CampaignSpec changed = spec;
    changed.seeds = {1, 3};
    EngineOptions resume = opts;
    resume.resume = true;
    EXPECT_FALSE(runCampaign(changed, resume, recs, stats, err));
    EXPECT_FALSE(err.empty());
}

TEST(OrchEngine, ClassifiesTickLimitFromExitCode)
{
    // A 10k-tick budget is far too small for fft: misar_sim exits
    // with the tick-limit code, and the engine must classify it,
    // journal it as non-retryable, and aggregate it as failed.
    CampaignSpec spec;
    std::string err;
    ASSERT_TRUE(CampaignSpec::parse(
        R"({"name": "tl",
            "presets": [{"name": "MSA", "config": "msa-omu"}],
            "apps": ["fft"], "cores": [16],
            "tickLimit": 10000, "timeoutSec": 120})",
        spec, err))
        << err;
    ASSERT_EQ(spec.validate(), "");

    const std::string dir = tmpDir();
    EngineOptions opts;
    opts.outDir = dir;
    opts.workers = 1;
    opts.simPath = MISAR_SIM_PATH;
    opts.verbose = false;

    std::vector<JobRecord> recs;
    CampaignRunStats stats;
    ASSERT_TRUE(runCampaign(spec, opts, recs, stats, err)) << err;
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].outcome, JobOutcome::TickLimit);
    EXPECT_EQ(stats.attempts, 1u); // deterministic: no retry
    EXPECT_FALSE(recs[0].note.empty()); // log tail captured

    CampaignReport rep(spec, recs);
    EXPECT_EQ(rep.outcomeCount(JobOutcome::TickLimit), 1u);
    ASSERT_EQ(rep.failures().size(), 1u);

    // The simulator still flushed a report before the nonzero exit;
    // its outcome field carries the truncation through.
    Json doc = parseJsonFile(dir + "/" + jobReportRelPath(0), &err);
    ASSERT_TRUE(doc.isObj()) << err;
    EXPECT_EQ(doc.at("meta").at("outcome").stringOr(""),
              "limit-reached");
}
