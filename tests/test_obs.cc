/**
 * @file
 * Observability-layer tests: statistics edge cases, trace-buffer
 * bounding, the periodic sampler, JSON well-formedness of the Chrome
 * trace and the machine-readable run report (validated with a small
 * in-test JSON parser), end-to-end sync-flow linkage across the
 * core / MSA-slice / NoC tracks, and the inertness guarantee (the
 * whole layer off or on must not move a single simulated cycle).
 */

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/run_report.hh"
#include "obs/sampler.hh"
#include "obs/sync_profiler.hh"
#include "obs/tracer.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sync/sync_lib.hh"
#include "system/system.hh"
#include "workload/app_catalog.hh"
#include "workload/synthetic_app.hh"

namespace misar {
namespace {

// --- A minimal JSON parser (enough to round-trip our own output) ----------

struct Json
{
    enum Kind { Null, Bool, Num, Str, Arr, Obj } kind = Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    const Json &
    at(const std::string &k) const
    {
        static const Json none;
        auto it = obj.find(k);
        return it == obj.end() ? none : it->second;
    }
    bool has(const std::string &k) const { return obj.count(k) != 0; }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : s(text) {}

    Json
    parse()
    {
        Json v = value();
        ws();
        if (pos != s.size())
            fail("trailing garbage");
        return v;
    }

    bool ok() const { return error.empty(); }
    const std::string &err() const { return error; }

  private:
    void
    fail(const char *why)
    {
        if (error.empty())
            error = std::string(why) + " at offset " + std::to_string(pos);
        // Skip to the end so parsing terminates.
        pos = s.size();
    }

    void
    ws()
    {
        while (pos < s.size() &&
               std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    char
    peek()
    {
        return pos < s.size() ? s[pos] : '\0';
    }

    bool
    eat(char c)
    {
        ws();
        if (peek() != c)
            return false;
        ++pos;
        return true;
    }

    Json
    value()
    {
        ws();
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': case 'f': return boolean();
          case 'n': literal("null"); return Json{};
          default: return number();
        }
    }

    void
    literal(const char *lit)
    {
        for (const char *p = lit; *p; ++p)
            if (pos >= s.size() || s[pos++] != *p)
                return fail("bad literal");
    }

    Json
    boolean()
    {
        Json v;
        v.kind = Json::Bool;
        if (peek() == 't') {
            literal("true");
            v.b = true;
        } else {
            literal("false");
        }
        return v;
    }

    Json
    number()
    {
        std::size_t start = pos;
        while (pos < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '-' || s[pos] == '+' || s[pos] == '.' ||
                s[pos] == 'e' || s[pos] == 'E'))
            ++pos;
        if (pos == start) {
            fail("bad number");
            return Json{};
        }
        Json v;
        v.kind = Json::Num;
        v.num = std::stod(s.substr(start, pos - start));
        return v;
    }

    Json
    string()
    {
        Json v;
        v.kind = Json::Str;
        if (!eat('"')) {
            fail("expected string");
            return v;
        }
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c == '\\') {
                if (pos >= s.size()) {
                    fail("bad escape");
                    return v;
                }
                char e = s[pos++];
                switch (e) {
                  case '"': v.str += '"'; break;
                  case '\\': v.str += '\\'; break;
                  case '/': v.str += '/'; break;
                  case 'b': v.str += '\b'; break;
                  case 'f': v.str += '\f'; break;
                  case 'n': v.str += '\n'; break;
                  case 'r': v.str += '\r'; break;
                  case 't': v.str += '\t'; break;
                  case 'u':
                    if (pos + 4 > s.size()) {
                        fail("bad \\u escape");
                        return v;
                    }
                    // Low codepoints only — all our escaper emits.
                    v.str += static_cast<char>(
                        std::stoi(s.substr(pos, 4), nullptr, 16));
                    pos += 4;
                    break;
                  default: fail("bad escape"); return v;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("raw control character in string");
                return v;
            } else {
                v.str += c;
            }
        }
        if (!eat('"'))
            fail("unterminated string");
        return v;
    }

    Json
    array()
    {
        Json v;
        v.kind = Json::Arr;
        eat('[');
        ws();
        if (eat(']'))
            return v;
        do {
            v.arr.push_back(value());
        } while (eat(','));
        if (!eat(']'))
            fail("expected ]");
        return v;
    }

    Json
    object()
    {
        Json v;
        v.kind = Json::Obj;
        eat('{');
        ws();
        if (eat('}'))
            return v;
        do {
            ws();
            Json key = string();
            if (!eat(':')) {
                fail("expected :");
                return v;
            }
            v.obj[key.str] = value();
        } while (eat(','));
        if (!eat('}'))
            fail("expected }");
        return v;
    }

    const std::string &s;
    std::size_t pos = 0;
    std::string error;
};

Json
parseJson(const std::string &text, bool *ok = nullptr)
{
    JsonParser p(text);
    Json v = p.parse();
    if (ok)
        *ok = p.ok();
    EXPECT_TRUE(p.ok()) << p.err();
    return v;
}

// --- Statistics edge cases ------------------------------------------------

TEST(StatAverage, EmptyIsAllZero)
{
    StatAverage a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(StatAverage, SingleSample)
{
    StatAverage a;
    a.sample(-7.5);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_DOUBLE_EQ(a.mean(), -7.5);
    EXPECT_DOUBLE_EQ(a.min(), -7.5);
    EXPECT_DOUBLE_EQ(a.max(), -7.5);
}

TEST(StatAverage, ResetRestoresEmptyState)
{
    StatAverage a;
    a.sample(3.0);
    a.sample(9.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    // min tracking restarts cleanly: first post-reset sample wins.
    a.sample(100.0);
    EXPECT_DOUBLE_EQ(a.min(), 100.0);
    EXPECT_DOUBLE_EQ(a.max(), 100.0);
}

TEST(StatHistogram, EmptyAndSingle)
{
    StatHistogram h(8);
    EXPECT_EQ(h.total(), 0u);
    h.sample(5); // log2 bucket: [4, 8)
    EXPECT_EQ(h.total(), 1u);
    std::uint64_t in_buckets = 0;
    for (std::uint64_t b : h.data())
        in_buckets += b;
    EXPECT_EQ(in_buckets, 1u);
    EXPECT_EQ(StatHistogram::bucketLow(0), 0u);
    EXPECT_EQ(StatHistogram::bucketLow(1), 2u);
    EXPECT_EQ(StatHistogram::bucketLow(3), 8u);
}

TEST(StatHistogram, ResetClearsBucketsAndTotal)
{
    StatHistogram h(4);
    for (std::uint64_t v : {0u, 1u, 100u, 100000u})
        h.sample(v);
    EXPECT_EQ(h.total(), 4u);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    for (std::uint64_t b : h.data())
        EXPECT_EQ(b, 0u);
}

TEST(StatRegistry, CounterValueOfUntouchedCounterIsZeroAndNonCreating)
{
    StatRegistry r;
    const StatRegistry &cr = r;
    EXPECT_EQ(cr.counterValue("never.touched"), 0u);
    r.counter("a.hits").inc(3);
    EXPECT_EQ(cr.counterValue("a.hits"), 3u);
    // The const lookup must not have materialized the missing name.
    bool saw_phantom = false;
    cr.forEachCounter([&](const std::string &n, const StatCounter &) {
        saw_phantom |= (n == "never.touched");
    });
    EXPECT_FALSE(saw_phantom);
}

// --- TraceBuffer bounding -------------------------------------------------

TEST(TraceBuffer, CapDropsAndCounts)
{
    TraceBuffer b;
    b.setEnabled(true);
    b.setCap(2);
    b.record(0, 1, "a");
    b.record(1, 2, "b");
    b.record(2, 3, "c");
    b.record(3, 4, "d");
    EXPECT_EQ(b.data().size(), 2u);
    EXPECT_EQ(b.dropped(), 2u);
}

TEST(TraceBuffer, DisabledRecordsNothing)
{
    TraceBuffer b;
    b.record(0, 1, "a");
    EXPECT_TRUE(b.data().empty());
    EXPECT_EQ(b.dropped(), 0u);
}

TEST(JsonEscapeFn, EscapesQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ChromeTrace, OutputParsesAndCarriesMetadata)
{
    TraceBuffer b;
    b.setEnabled(true);
    b.record(10, 20, "LOCK", 0x1000);
    b.record(20, 30, "compute \"x\\y\""); // hostile label
    std::ostringstream os;
    writeChromeTrace(os, {&b});
    Json t = parseJson(os.str());
    ASSERT_EQ(t.kind, Json::Obj);
    const Json &ev = t.at("traceEvents");
    ASSERT_EQ(ev.kind, Json::Arr);
    bool saw_thread_name = false, saw_hostile = false;
    for (const Json &e : ev.arr) {
        if (e.at("ph").str == "M" && e.at("name").str == "thread_name")
            saw_thread_name = true;
        if (e.at("ph").str == "X" &&
            e.at("name").str == "compute \"x\\y\"")
            saw_hostile = true;
    }
    EXPECT_TRUE(saw_thread_name);
    EXPECT_TRUE(saw_hostile) << "hostile label did not round-trip";
}

// --- Tracer ---------------------------------------------------------------

TEST(Tracer, PerTrackCapFeedsDroppedCounter)
{
    StatRegistry stats;
    obs::Tracer tr(stats, 2);
    obs::TrackId t = tr.addTrack(obs::pidMsa, 0, "slice 0");
    tr.complete(t, 0, 1, "A");
    tr.complete(t, 1, 2, "B");
    tr.complete(t, 2, 3, "C");
    tr.instant(t, 3, "D");
    EXPECT_EQ(tr.dropped(), 2u);
    EXPECT_EQ(stats.counterValue("trace.droppedEvents"), 2u);
}

TEST(Tracer, FlowIdsAreNeverZero)
{
    StatRegistry stats;
    obs::Tracer tr(stats, 16);
    EXPECT_NE(tr.newFlowId(), 0u);
    EXPECT_NE(tr.newFlowId(), tr.newFlowId());
}

// --- Sampler --------------------------------------------------------------

TEST(Sampler, RowCapDropsAndCounts)
{
    EventQueue eq;
    obs::StatSampler s(eq, 100);
    double v = 1.0;
    s.addProbe("probe", [&] { return v; });
    s.setMaxRows(2);
    s.sampleNow();
    v = 2.0;
    s.sampleNow();
    v = 3.0;
    s.sampleNow(); // over the cap: dropped
    EXPECT_EQ(s.rows().size(), 2u);
    EXPECT_EQ(s.droppedRows(), 1u);
    EXPECT_DOUBLE_EQ(s.rows()[1].values[0], 2.0);
}

TEST(Sampler, PeriodicSamplingFollowsTheClock)
{
    EventQueue eq;
    obs::StatSampler s(eq, 10);
    s.addProbe("now", [&] { return static_cast<double>(eq.now()); });
    bool done = false;
    s.setDoneFn([&] { return done; });
    // Keep the queue alive for 35 ticks of simulated work.
    for (Tick t = 1; t <= 35; ++t)
        eq.schedule(t, [&, t] { done = (t == 35); });
    s.start(); // t=0 row + periodic rows at 10, 20, 30
    EXPECT_EQ(s.pendingMaintenance(), 1u);
    eq.run();
    ASSERT_EQ(s.rows().size(), 4u);
    EXPECT_EQ(s.rows()[0].tick, 0u);
    EXPECT_EQ(s.rows()[3].tick, 30u);
    EXPECT_DOUBLE_EQ(s.rows()[2].values[0], 20.0);
    EXPECT_EQ(s.pendingMaintenance(), 0u);
}

TEST(Sampler, CsvRoundTrip)
{
    EventQueue eq;
    obs::StatSampler s(eq, 5);
    s.addProbe("alpha", [] { return 1.5; });
    s.addProbe("weird,\"label", [] { return 2.0; });
    s.sampleNow();
    std::ostringstream os;
    s.writeCsv(os);
    std::istringstream is(os.str());
    std::string header, row;
    std::getline(is, header);
    std::getline(is, row);
    EXPECT_EQ(header, "tick,alpha,\"weird,\"\"label\"");
    EXPECT_EQ(row, "0,1.5,2");
}

TEST(Sampler, EmptySamplerStillWritesHeader)
{
    EventQueue eq;
    obs::StatSampler s(eq, 5);
    std::ostringstream os;
    s.writeCsv(os);
    EXPECT_EQ(os.str(), "tick\n");
}

// --- Run report -----------------------------------------------------------

TEST(RunReport, RoundTripsThroughJson)
{
    StatRegistry stats;
    stats.counter("sync.hwOps").inc(42);
    stats.counter("tile0.msa.allocations").inc(7);
    stats.counter("weird\"name\\with\njunk").inc(1);
    stats.average("noc.packetLatency").sample(10.0);
    stats.average("noc.packetLatency").sample(20.0);
    stats.histogram("sync.waitTicks").sample(100);

    obs::RunMeta meta;
    meta.app = "unit \"test\"";
    meta.preset = "msa-omu";
    meta.accel = "MSA/OMU-2";
    meta.flavor = "hw-hybrid";
    meta.cores = 16;
    meta.seed = 99;
    meta.outcome = "finished";
    meta.makespan = 12345;
    meta.hwCoverage = 0.75;

    std::ostringstream os;
    obs::writeRunReport(os, meta, stats);
    Json r = parseJson(os.str());
    EXPECT_DOUBLE_EQ(r.at("schemaVersion").num,
                     double(obs::runReportSchemaVersion));
    EXPECT_EQ(r.at("meta").at("app").str, "unit \"test\"");
    EXPECT_DOUBLE_EQ(r.at("meta").at("seed").num, 99.0);
    EXPECT_EQ(r.at("meta").at("outcome").str, "finished");
    const Json &counters = r.at("stats").at("counters");
    EXPECT_DOUBLE_EQ(counters.at("sync.hwOps").num, 42.0);
    EXPECT_DOUBLE_EQ(counters.at("weird\"name\\with\njunk").num, 1.0);
    const Json &lat = r.at("stats").at("averages").at("noc.packetLatency");
    EXPECT_DOUBLE_EQ(lat.at("mean").num, 15.0);
    EXPECT_DOUBLE_EQ(lat.at("count").num, 2.0);
    const Json &hist = r.at("stats").at("histograms").at("sync.waitTicks");
    EXPECT_DOUBLE_EQ(hist.at("total").num, 1.0);
    // Resilience block is always present, zeros on clean runs.
    EXPECT_DOUBLE_EQ(r.at("resilience").at("timeouts").num, 0.0);
    // No profiler/sampler attached: optional sections absent.
    EXPECT_FALSE(r.has("syncVars"));
    EXPECT_FALSE(r.has("samples"));
}

// --- End-to-end: flows, profiler, and inertness ---------------------------

namespace e2e {

/** Run @p app on a 16-core MSA/OMU-2 system with @p obs applied. */
std::unique_ptr<sys::System>
run(const char *app, const ObsConfig &o, std::uint64_t seed = 1)
{
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 2);
    cfg.obs = o;
    cfg.seed = seed;
    auto s = std::make_unique<sys::System>(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, 16);
    workload::AppLayout layout;
    const workload::AppSpec &spec = workload::appByName(app);
    for (CoreId t = 0; t < 16; ++t)
        s->start(t, workload::appThread(s->api(t), spec, layout, &lib,
                                        16, seed));
    EXPECT_TRUE(s->run(200000000ULL));
    return s;
}

} // namespace e2e

TEST(EndToEnd, LockFlowLinksCoreToSliceToCore)
{
    ObsConfig o;
    o.traceEnabled = true;
    auto s = e2e::run("radix", o);
    std::ostringstream os;
    s->writeTrace(os);
    Json t = parseJson(os.str());
    const Json &ev = t.at("traceEvents");
    ASSERT_EQ(ev.kind, Json::Arr);
    ASSERT_FALSE(ev.arr.empty());

    // Index flow phases by id, and slice "X" events by (tid, ts).
    struct FlowSpots
    {
        bool s_on_core = false, t_on_slice = false, f_on_core = false;
        double slice_tid = -1, slice_ts = -1;
    };
    std::map<double, FlowSpots> flows;
    std::map<std::pair<double, double>, std::string> slice_x;
    for (const Json &e : ev.arr) {
        const std::string &ph = e.at("ph").str;
        double pid = e.at("pid").num;
        if (ph == "X" && pid == obs::pidMsa)
            slice_x[{e.at("tid").num, e.at("ts").num}] = e.at("name").str;
        if (ph != "s" && ph != "t" && ph != "f")
            continue;
        FlowSpots &f = flows[e.at("id").num];
        if (ph == "s" && pid == obs::pidCores)
            f.s_on_core = true;
        if (ph == "t" && pid == obs::pidMsa) {
            f.t_on_slice = true;
            f.slice_tid = e.at("tid").num;
            f.slice_ts = e.at("ts").num;
        }
        if (ph == "f" && pid == obs::pidCores)
            f.f_on_core = true;
    }
    unsigned lock_links = 0;
    for (const auto &kv : flows) {
        const FlowSpots &f = kv.second;
        if (f.s_on_core && f.t_on_slice && f.f_on_core &&
            slice_x[{f.slice_tid, f.slice_ts}] == "LOCK")
            ++lock_links;
    }
    EXPECT_GT(lock_links, 0u)
        << "no LOCK flow is linked core -> slice -> core";
}

TEST(EndToEnd, ProfilerSeesContentionAndReportsHottest)
{
    ObsConfig o;
    o.profileSync = true;
    auto s = e2e::run("radix", o);
    const obs::SyncProfiler *p = s->syncProfiler();
    ASSERT_NE(p, nullptr);
    EXPECT_GT(p->numVars(), 0u);
    auto hot = p->hottest(4);
    ASSERT_FALSE(hot.empty());
    // Hottest-first ordering by total wait.
    for (std::size_t i = 1; i < hot.size(); ++i)
        EXPECT_GE(hot[i - 1]->contention(), hot[i]->contention());
    std::uint64_t ops = 0;
    for (const auto *v : hot)
        ops += v->ops;
    EXPECT_GT(ops, 0u);
    std::ostringstream js;
    p->writeJson(js, 4);
    Json arr = parseJson(js.str());
    EXPECT_EQ(arr.kind, Json::Arr);
    EXPECT_EQ(arr.arr.size(), hot.size());
}

TEST(EndToEnd, ObservabilityIsInert)
{
    ObsConfig off; // defaults: everything disabled
    ObsConfig on;
    on.traceEnabled = true;
    on.profileSync = true;
    on.sampleInterval = 1000;
    auto a = e2e::run("water-sp", off, 7);
    auto b = e2e::run("water-sp", on, 7);
    EXPECT_EQ(a->makespan(), b->makespan())
        << "observability perturbed the schedule";
    EXPECT_EQ(a->stats().counterValue("sync.hwOps"),
              b->stats().counterValue("sync.hwOps"));
    EXPECT_EQ(a->stats().counterValue("noc.packetsSent"),
              b->stats().counterValue("noc.packetsSent"));
    EXPECT_GT(b->sampler()->rows().size(), 1u);
}

} // namespace
} // namespace misar
