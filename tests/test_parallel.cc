/**
 * @file
 * Unit tests for the conservative PDES kernel (sim/parallel.hh): the
 * sense-reversing barrier, the foreign-event merge order of the
 * event queue, and the parallel engine's trajectory equivalence with
 * serial execution on a synthetic cross-partition workload.
 *
 * These are the tests the CI TSan job runs: every cross-thread
 * interaction of the engine (mailboxes, barriers, clock alignment)
 * is exercised here with real spawned threads.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/parallel.hh"

namespace misar {
namespace {

TEST(SpinBarrier, RendezvousAcrossRounds)
{
    constexpr unsigned N = 4, rounds = 2000;
    SpinBarrier bar(N);
    // Padded slots so the check is about ordering, not false sharing.
    std::vector<std::uint64_t> slot(N * 16, 0);
    std::atomic<bool> mismatch{false};
    auto body = [&](unsigned me) {
        for (unsigned r = 0; r < rounds; ++r) {
            slot[me * 16] = r + 1;
            bar.arriveAndWait();
            // Everyone published r+1 before anyone passed the barrier.
            for (unsigned o = 0; o < N; ++o)
                if (slot[o * 16] != r + 1)
                    mismatch = true;
            bar.arriveAndWait();
        }
    };
    std::vector<std::thread> ts;
    for (unsigned i = 1; i < N; ++i)
        ts.emplace_back(body, i);
    body(0);
    for (auto &t : ts)
        t.join();
    EXPECT_FALSE(mismatch.load());
}

TEST(ForeignMerge, SenderKeyOrdersSameTickCell)
{
    // A (tick, lane) cell that received cross-partition deliveries
    // must execute in (sendTick, senderLane) order regardless of
    // host-side insertion order — this is what makes the threaded
    // trajectory independent of which thread filled the mailbox
    // first.
    EventQueue eq;
    eq.setNumLanes(4);
    std::vector<int> order;
    eq.scheduleAtL(2, 5, [&] { order.push_back(1); }); // key (0, 0)
    eq.insertForeign(2, 5, 3, 1, [&] { order.push_back(2); }); // (3, 1)
    eq.insertForeign(2, 5, 0, 1, [&] { order.push_back(3); }); // (0, 1)
    eq.runUntil(5);
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(ForeignMerge, SameTickDeliveryAfterClockAlignmentIsLegal)
{
    // The engine aligns every clock to the window tick T and then
    // drains mailboxes, so a delivery with when == now() must insert
    // (it has not run yet: runTick comes after the drain).
    EventQueue eq;
    eq.setNumLanes(3);
    eq.advanceTo(7);
    bool ran = false;
    eq.insertForeign(1, 7, 6, 2, [&] { ran = true; });
    eq.runTick(7);
    EXPECT_TRUE(ran);
}

/**
 * Synthetic two-tile mesh: lane 0 = global, lane 1 + t = tile t.
 * The same workload is driven through a single serial queue or a
 * global + two partition queues; the per-lane logs must agree.
 *
 * Per-lane logs are data-race free under the engine by construction:
 * a lane is only ever executed by its owning partition's thread, and
 * the global lane only by the master with the workers parked.
 */
struct Mesh
{
    EventQueue *q[3];
    struct Entry
    {
        Tick tick;
        int tag;
        bool operator==(const Entry &o) const
        {
            return tick == o.tick && tag == o.tag;
        }
    };
    std::vector<Entry> log[3];

    void
    seed()
    {
        for (unsigned lane = 1; lane <= 2; ++lane)
            q[lane]->scheduleAtL(lane, 1,
                                 [this, lane] { tile(lane, 0); });
    }

    void
    tile(unsigned lane, int depth)
    {
        log[lane].push_back({q[lane]->now(), depth});
        if (depth >= 9)
            return;
        // Local follow-up on the same lane.
        q[lane]->scheduleL(lane, 1 + depth % 3,
                           [this, lane, depth] { tile(lane, depth + 1); });
        // Cross-tile send: >= 1 tick of latency (the lookahead), so
        // in the threaded run it rides a mailbox.
        const unsigned peer = lane == 1 ? 2u : 1u;
        q[lane]->scheduleCross(peer, 3, [this, peer, depth] {
            tile(peer, depth + 1);
        });
        // Occasionally notify the global lane (watchdog-style).
        if (depth % 4 == 0)
            q[lane]->scheduleCross(0, 2,
                                   [this, depth] { master(depth); });
    }

    void
    master(int depth)
    {
        log[0].push_back({q[0]->now(), depth});
        // Master-lane code may poke any tile directly (the workers
        // are parked and the clocks are aligned), exactly like the
        // fault injectors and samplers do through the TileRuntime.
        q[1]->scheduleL(1, 4, [this] { tile(1, 9); });
    }
};

TEST(Parallel, MatchesSerialTrajectory)
{
    // Serial reference: one queue spanning all three lanes.
    Mesh serial;
    EventQueue seq;
    seq.setNumLanes(3);
    serial.q[0] = serial.q[1] = serial.q[2] = &seq;
    serial.seed();
    seq.run();

    // Threaded: one partition per tile plus the master's global queue.
    Mesh par;
    EventQueue global, q1, q2;
    global.setNumLanes(3);
    q1.setNumLanes(3);
    q2.setNumLanes(3);
    par.q[0] = &global;
    par.q[1] = &q1;
    par.q[2] = &q2;
    par.seed();
    {
        ParallelEngine eng(global, {&q1, &q2}, {2, 0, 1});
        eng.drainAll();
        EXPECT_EQ(eng.pending(), 0u);
        EXPECT_GT(eng.crossEvents(), 0u);
        EXPECT_GT(eng.rounds(), 0u);
    }

    ASSERT_FALSE(serial.log[1].empty());
    for (unsigned lane = 0; lane < 3; ++lane)
        EXPECT_EQ(par.log[lane], serial.log[lane]) << "lane " << lane;
}

TEST(Parallel, ThreadedRunsAreRepeatable)
{
    // Two threaded runs of the same workload must produce identical
    // per-lane logs (run-to-run determinism for fixed N).
    auto runIt = [] {
        Mesh m;
        EventQueue global, q1, q2;
        global.setNumLanes(3);
        q1.setNumLanes(3);
        q2.setNumLanes(3);
        m.q[0] = &global;
        m.q[1] = &q1;
        m.q[2] = &q2;
        m.seed();
        ParallelEngine eng(global, {&q1, &q2}, {2, 0, 1});
        eng.drainAll();
        std::vector<std::vector<Mesh::Entry>> out;
        for (auto &l : m.log)
            out.push_back(std::move(l));
        return out;
    };
    EXPECT_EQ(runIt(), runIt());
}

TEST(Parallel, RunUntilStopsAtWindowBoundary)
{
    Mesh m;
    EventQueue global, q1, q2;
    global.setNumLanes(3);
    q1.setNumLanes(3);
    q2.setNumLanes(3);
    m.q[0] = &global;
    m.q[1] = &q1;
    m.q[2] = &q2;
    m.seed();
    ParallelEngine eng(global, {&q1, &q2}, {2, 0, 1});
    eng.runUntil(5);
    EXPECT_EQ(global.now(), 5u);
    EXPECT_EQ(q1.now(), 5u);
    EXPECT_EQ(q2.now(), 5u);
    for (unsigned lane = 0; lane < 3; ++lane)
        for (const Mesh::Entry &e : m.log[lane])
            EXPECT_LE(e.tick, 5u);
    eng.drainAll();
    EXPECT_EQ(eng.pending(), 0u);
    EXPECT_EQ(eng.minNextTick(), maxTick);
}

} // namespace
} // namespace misar
