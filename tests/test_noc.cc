/**
 * @file
 * Unit tests for the 2D-mesh NoC: delivery, ordering, latency
 * scaling, contention, multi-flit packets, and stress traffic.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace misar {
namespace noc {
namespace {

/** Test payload carrying an identifying tag. */
class TestPacket : public Packet
{
  public:
    TestPacket(CoreId src, CoreId dst, unsigned size, int tag)
        : Packet(src, dst, size), tag(tag)
    {}
    int tag;
};

struct MeshFixture
{
    EventQueue eq;
    NocConfig cfg;
    StatRegistry stats;
    std::unique_ptr<Mesh> mesh;
    std::vector<std::vector<int>> received; // per-tile tags, in order
    std::vector<Tick> recvTick;

    explicit MeshFixture(unsigned dim)
    {
        mesh = std::make_unique<Mesh>(eq, cfg, dim, stats);
        received.resize(dim * dim);
        for (CoreId t = 0; t < dim * dim; ++t) {
            mesh->setSink(t, [this, t](std::shared_ptr<Packet> p) {
                auto *tp = static_cast<TestPacket *>(p.get());
                received[t].push_back(tp->tag);
                recvTick.push_back(eq.now());
            });
        }
    }

    void
    send(CoreId s, CoreId d, int tag, unsigned size = ctrlBytes,
         unsigned vnet = 0)
    {
        auto p = std::make_shared<TestPacket>(s, d, size, tag);
        p->vnet = vnet;
        mesh->send(std::move(p));
    }
};

TEST(Mesh, DeliversSingleControlPacket)
{
    MeshFixture f(4);
    f.send(0, 15, 42);
    EXPECT_TRUE(f.eq.run());
    ASSERT_EQ(f.received[15].size(), 1u);
    EXPECT_EQ(f.received[15][0], 42);
}

TEST(Mesh, LocalLoopbackDelivers)
{
    MeshFixture f(4);
    f.send(5, 5, 7);
    f.eq.run();
    ASSERT_EQ(f.received[5].size(), 1u);
    EXPECT_EQ(f.received[5][0], 7);
    // Loopback should be fast (no mesh traversal).
    EXPECT_LE(f.eq.now(), 4u);
}

TEST(Mesh, LatencyScalesWithHops)
{
    // One-hop and six-hop deliveries on an otherwise idle mesh.
    Tick one_hop, six_hop;
    {
        MeshFixture f(4);
        f.send(0, 1, 1);
        f.eq.run();
        one_hop = f.eq.now();
    }
    {
        MeshFixture f(4);
        f.send(0, 15, 1);
        f.eq.run();
        six_hop = f.eq.now();
    }
    EXPECT_GT(six_hop, one_hop);
    // Each extra hop costs routerLatency + linkLatency + 1 arb cycle.
    EXPECT_GE(six_hop - one_hop, 5u * 3u);
}

TEST(Mesh, HopDistance)
{
    MeshFixture f(4);
    EXPECT_EQ(f.mesh->hopDistance(0, 0), 0u);
    EXPECT_EQ(f.mesh->hopDistance(0, 3), 3u);
    EXPECT_EQ(f.mesh->hopDistance(0, 15), 6u);
    EXPECT_EQ(f.mesh->hopDistance(5, 6), 1u);
    EXPECT_EQ(f.mesh->hopDistance(12, 3), 6u);
}

TEST(Mesh, PointToPointOrderPreserved)
{
    // Same src, dst, vnet: packets must arrive in injection order.
    MeshFixture f(4);
    for (int i = 0; i < 20; ++i)
        f.send(0, 15, i);
    f.eq.run();
    ASSERT_EQ(f.received[15].size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(f.received[15][i], i);
}

TEST(Mesh, MultiFlitDataPacketDelivered)
{
    MeshFixture f(4);
    f.send(2, 13, 9, dataBytes, 1);
    f.eq.run();
    ASSERT_EQ(f.received[13].size(), 1u);
    EXPECT_EQ(f.received[13][0], 9);
}

TEST(Mesh, DataPacketSlowerThanControl)
{
    Tick ctrl, data;
    {
        MeshFixture f(4);
        f.send(0, 15, 1, ctrlBytes);
        f.eq.run();
        ctrl = f.eq.now();
    }
    {
        MeshFixture f(4);
        f.send(0, 15, 1, dataBytes);
        f.eq.run();
        data = f.eq.now();
    }
    // 72B at 16B/flit = 5 flits vs 1: serialization must show.
    EXPECT_GE(data, ctrl + 3);
}

TEST(Mesh, ManyToOneAllDelivered)
{
    MeshFixture f(4);
    for (CoreId s = 0; s < 16; ++s)
        if (s != 5)
            f.send(s, 5, static_cast<int>(s));
    f.eq.run();
    EXPECT_EQ(f.received[5].size(), 15u);
}

TEST(Mesh, BothVnetsDeliver)
{
    MeshFixture f(4);
    f.send(0, 15, 1, ctrlBytes, 0);
    f.send(0, 15, 2, dataBytes, 1);
    f.eq.run();
    EXPECT_EQ(f.received[15].size(), 2u);
}

TEST(Mesh, StressRandomTrafficAllDelivered)
{
    MeshFixture f(8);
    Rng rng(123);
    std::map<CoreId, unsigned> expect;
    const int n = 2000;
    for (int i = 0; i < n; ++i) {
        CoreId s = static_cast<CoreId>(rng.range(64));
        CoreId d = static_cast<CoreId>(rng.range(64));
        unsigned size = rng.range(2) ? ctrlBytes : dataBytes;
        unsigned vnet = static_cast<unsigned>(rng.range(2));
        f.send(s, d, i, size, vnet);
        ++expect[d];
    }
    ASSERT_TRUE(f.eq.run(2000000));
    for (auto &[d, cnt] : expect)
        EXPECT_EQ(f.received[d].size(), cnt) << "tile " << d;
    EXPECT_EQ(f.stats.counter("noc.packetsSent").value(),
              static_cast<std::uint64_t>(n));
}

TEST(Mesh, HotspotContentionIncreasesLatency)
{
    // Average latency under hotspot load must exceed the idle
    // latency of the same route.
    Tick idle;
    {
        MeshFixture f(4);
        f.send(0, 15, 0, dataBytes);
        f.eq.run();
        idle = f.eq.now();
    }
    MeshFixture f(4);
    for (int i = 0; i < 50; ++i)
        f.send(0, 15, i, dataBytes);
    f.eq.run();
    EXPECT_GT(f.eq.now(), idle + 100);
    double avg = f.stats.average("noc.packetLatency").mean();
    EXPECT_GT(avg, static_cast<double>(idle));
}

TEST(Mesh, PacketLatencyStatRecorded)
{
    MeshFixture f(4);
    f.send(0, 15, 1);
    f.eq.run();
    EXPECT_EQ(f.stats.average("noc.packetLatency").count(), 1u);
    EXPECT_GT(f.stats.average("noc.packetLatency").mean(), 0.0);
}

TEST(Mesh, SingleTileMeshLoopbackOnly)
{
    MeshFixture f(1);
    f.send(0, 0, 3);
    f.eq.run();
    ASSERT_EQ(f.received[0].size(), 1u);
}

TEST(Mesh, BackpressureDoesNotDropPackets)
{
    // Tiny buffers + a hotspot: credit flow control must throttle
    // without losing or reordering anything.
    EventQueue eq;
    NocConfig cfg;
    cfg.bufferDepth = 2;
    StatRegistry stats;
    Mesh mesh(eq, cfg, 4, stats);
    std::vector<int> got;
    for (CoreId t = 0; t < 16; ++t) {
        mesh.setSink(t, [&got, t](std::shared_ptr<Packet> p) {
            if (t == 15)
                got.push_back(static_cast<TestPacket *>(p.get())->tag);
        });
    }
    for (int i = 0; i < 60; ++i) {
        auto p = std::make_shared<TestPacket>(0, 15, dataBytes, i);
        p->vnet = 1;
        mesh.send(std::move(p));
    }
    ASSERT_TRUE(eq.run(2000000));
    ASSERT_EQ(got.size(), 60u);
    for (int i = 0; i < 60; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(Mesh, WormholeInterleavesDistinctSources)
{
    // Two sources streaming data packets through a shared column:
    // both streams must make progress (no starvation) and arrive
    // in per-source order.
    EventQueue eq;
    NocConfig cfg;
    StatRegistry stats;
    Mesh mesh(eq, cfg, 4, stats);
    std::vector<int> from0, from4;
    for (CoreId t = 0; t < 16; ++t) {
        mesh.setSink(t, [&, t](std::shared_ptr<Packet> p) {
            auto *tp = static_cast<TestPacket *>(p.get());
            if (t == 12) {
                (tp->tag < 100 ? from0 : from4).push_back(tp->tag);
            }
        });
    }
    for (int i = 0; i < 10; ++i) {
        mesh.send(std::make_shared<TestPacket>(0, 12, dataBytes, i));
        mesh.send(std::make_shared<TestPacket>(4, 12, dataBytes,
                                               100 + i));
    }
    ASSERT_TRUE(eq.run(2000000));
    ASSERT_EQ(from0.size(), 10u);
    ASSERT_EQ(from4.size(), 10u);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(from0[i], i);
        EXPECT_EQ(from4[i], 100 + i);
    }
}

TEST(Mesh, VnetsDoNotBlockEachOther)
{
    // Saturate vnet 0 towards a hotspot; a vnet-1 packet through the
    // same column must still get through promptly.
    EventQueue eq;
    NocConfig cfg;
    cfg.bufferDepth = 2;
    StatRegistry stats;
    Mesh mesh(eq, cfg, 4, stats);
    Tick vnet1_arrival = 0;
    unsigned delivered0 = 0;
    for (CoreId t = 0; t < 16; ++t) {
        mesh.setSink(t, [&, t](std::shared_ptr<Packet> p) {
            auto *tp = static_cast<TestPacket *>(p.get());
            if (tp->tag == 999)
                vnet1_arrival = eq.now();
            else
                ++delivered0;
        });
    }
    for (int i = 0; i < 40; ++i)
        mesh.send(std::make_shared<TestPacket>(0, 15, dataBytes, i));
    auto p = std::make_shared<TestPacket>(0, 15, ctrlBytes, 999);
    p->vnet = 1;
    mesh.send(std::move(p));
    ASSERT_TRUE(eq.run(2000000));
    EXPECT_EQ(delivered0, 40u);
    EXPECT_GT(vnet1_arrival, 0u);
    // The reply-class packet must not wait for the whole vnet-0 queue.
    EXPECT_LT(vnet1_arrival, eq.now() / 2);
}

// Property: on an idle mesh, delivery latency is monotonically
// non-decreasing in hop distance.
class HopLatencyTest : public ::testing::TestWithParam<CoreId>
{};

TEST_P(HopLatencyTest, LatencyMatchesDistanceFormula)
{
    CoreId dst = GetParam();
    MeshFixture f(8);
    f.send(0, dst, 1);
    f.eq.run();
    unsigned hops = f.mesh->hopDistance(0, dst);
    double lat = f.stats.average("noc.packetLatency").mean();
    // Idle-mesh latency: ~(router+link+arb) per hop plus endpoint
    // overheads; just check it's ordered and bounded.
    EXPECT_GE(lat, 3.0 * hops);
    EXPECT_LE(lat, 3.0 + 6.0 * hops + 10.0);
}

INSTANTIATE_TEST_SUITE_P(Distances, HopLatencyTest,
                         ::testing::Values<CoreId>(1, 2, 7, 8, 36, 63));

} // namespace
} // namespace noc
} // namespace misar
