/**
 * @file
 * Targeted tests for the calendar-queue event kernel and the flat
 * hash map backing the hot-path containers.
 *
 * test_sim.cc covers the EventQueue's externally visible ordering
 * contract; the cases here aim at the calendar-queue internals
 * (4096-tick bucket ring, far-future overflow heap, event-record
 * pool) by crossing their boundaries on purpose.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/flat_map.hh"

namespace misar {
namespace {

/** The kernel's near-future ring covers this many ticks. */
constexpr Tick ringWindow = 4096;

TEST(EventQueueCalendar, BucketWrapAround)
{
    // Events more than one window apart land in the same ring bucket
    // (tick mod 4096); they must still run in tick order.
    EventQueue eq;
    std::vector<Tick> fired;
    auto at = [&](Tick t) { eq.scheduleAt(t, [&fired, &eq] {
        fired.push_back(eq.now());
    }); };
    at(5);
    at(5 + ringWindow);     // same bucket as 5, next lap
    at(5 + 2 * ringWindow); // same bucket, two laps out
    at(ringWindow - 1);
    at(ringWindow);         // bucket 0, second lap
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(fired, (std::vector<Tick>{5, ringWindow - 1, ringWindow,
                                        5 + ringWindow,
                                        5 + 2 * ringWindow}));
}

TEST(EventQueueCalendar, WrapAroundWhileRunning)
{
    // Chain of events each rescheduling itself one window ahead: the
    // ring index wraps many times while the queue is live.
    EventQueue eq;
    int hops = 0;
    std::function<void()> hop = [&] {
        if (++hops < 20)
            eq.schedule(ringWindow - 1, hop);
    };
    eq.schedule(1, hop);
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(hops, 20);
    EXPECT_EQ(eq.now(), 1 + 19 * (ringWindow - 1));
}

TEST(EventQueueCalendar, OverflowPromotion)
{
    // Far-future events start in the overflow heap and must fire at
    // their exact tick after promotion into the ring.
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleAt(10 * ringWindow, [&] { order.push_back(2); });
    eq.scheduleAt(3, [&] { order.push_back(1); });
    eq.scheduleAt(100 * ringWindow + 7, [&] { order.push_back(3); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100 * ringWindow + 7);
}

TEST(EventQueueCalendar, PromotedEventPrecedesLaterSameTickInsertion)
{
    // Event A sits in the overflow heap for tick T. After the clock
    // advances far enough that T is inside the ring window, event B
    // is scheduled for the same tick T directly into the ring. A was
    // scheduled first, so A must run first.
    EventQueue eq;
    const Tick target = 3 * ringWindow;
    std::vector<char> order;
    eq.scheduleAt(target, [&] { order.push_back('A'); });
    eq.scheduleAt(target - 10, [&] {
        eq.scheduleAt(target, [&] { order.push_back('B'); });
    });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<char>{'A', 'B'}));
}

TEST(EventQueueCalendar, InterleavedAbsoluteAndRelative)
{
    // Mix scheduleAt/schedule across both levels and compare against
    // a reference executed order sorted by (tick, insertion order).
    EventQueue eq;
    std::multimap<Tick, int> expect;
    std::vector<int> fired;
    int id = 0;
    auto add = [&](Tick when, bool absolute) {
        int me = id++;
        expect.emplace(when, me);
        if (absolute)
            eq.scheduleAt(when, [&fired, me] { fired.push_back(me); });
        else
            eq.schedule(when - eq.now(), [&fired, me] { fired.push_back(me); });
    };
    // Deterministic pseudo-random tick pattern spanning both levels.
    std::uint64_t x = 12345;
    for (int i = 0; i < 500; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        Tick when = (x >> 33) % (8 * ringWindow);
        add(when, i % 2 == 0);
    }
    EXPECT_TRUE(eq.run());
    std::vector<int> want;
    for (const auto &[when, me] : expect)
        want.push_back(me);
    EXPECT_EQ(fired, want);
}

TEST(EventQueueCalendar, PendingAndEmptyInvariants)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    eq.schedule(1, [] {});
    eq.scheduleAt(5 * ringWindow, [] {}); // overflow level
    EXPECT_FALSE(eq.empty());
    EXPECT_EQ(eq.pending(), 2u);
    EXPECT_FALSE(eq.run(2)); // first event ran, far one still pending
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_FALSE(eq.empty());
    EXPECT_TRUE(eq.run());
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
    EXPECT_EQ(eq.executedEvents(), 2u);
}

TEST(EventQueueCalendar, SameTickInsertionDuringDrainRunsInOrder)
{
    // Regression for the drain loop: events scheduled *for the
    // current tick* from inside a callback must run this tick, after
    // everything already queued at this tick, in insertion order.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(1);
        eq.schedule(0, [&] {
            order.push_back(3);
            eq.schedule(0, [&] { order.push_back(4); });
        });
    });
    eq.schedule(10, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueueCalendarDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.run();
    ASSERT_EQ(eq.now(), 100u);
    EXPECT_DEATH(eq.scheduleAt(99, [] {}), "scheduled in the past");
}

TEST(EventQueueCalendar, PoolRecyclesRecordsUnderChurn)
{
    // After a warmup wave, steady-state schedule/run churn must not
    // allocate new pool chunks: records are recycled via the free
    // list and small callbacks live in the inline buffer.
    EventQueue eq;
    for (int wave = 0; wave < 50; ++wave) {
        for (int i = 0; i < 200; ++i)
            eq.schedule(i % 7, [] {});
        eq.run();
    }
    const auto warmed = eq.poolStats();
    EXPECT_GT(warmed.chunkAllocs, 0u);
    EXPECT_EQ(warmed.heapCallbacks, 0u);
    for (int wave = 0; wave < 200; ++wave) {
        for (int i = 0; i < 200; ++i)
            eq.schedule(i % 7, [] {});
        eq.run();
    }
    const auto after = eq.poolStats();
    EXPECT_EQ(after.chunkAllocs, warmed.chunkAllocs);
    EXPECT_EQ(after.recordCapacity, warmed.recordCapacity);
    EXPECT_EQ(after.heapCallbacks, 0u);
    EXPECT_EQ(after.scheduled, warmed.scheduled + 200u * 200u);
}

TEST(EventQueueCalendar, OversizedCallbackFallsBackToHeap)
{
    // Captures too fat for the inline buffer are boxed (counted, not
    // broken): the callback still runs and still destructs cleanly.
    EventQueue eq;
    std::array<std::uint64_t, 32> fat{}; // 256 bytes > inline buffer
    fat[0] = 42;
    std::uint64_t seen = 0;
    eq.schedule(1, [fat, &seen] { seen = fat[0]; });
    EXPECT_EQ(eq.poolStats().heapCallbacks, 1u);
    eq.run();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueueCalendar, DestructorDropsPendingWithoutRunning)
{
    // Pending callbacks (inline and boxed) are destroyed, not run,
    // when the queue dies; ASan/LSan guards the boxed deallocation.
    bool ran = false;
    std::array<std::uint64_t, 32> fat{};
    {
        EventQueue eq;
        eq.schedule(5, [&ran] { ran = true; });
        eq.scheduleAt(20 * ringWindow, [fat, &ran] {
            ran = fat[0] != 0;
        });
    }
    EXPECT_FALSE(ran);
}

TEST(EventQueueCalendar, MaxPendingHighWaterMark)
{
    EventQueue eq;
    for (int i = 0; i < 100; ++i)
        eq.schedule(1, [] {});
    EXPECT_EQ(eq.poolStats().maxPending, 100u);
    eq.run();
    EXPECT_EQ(eq.poolStats().maxPending, 100u);
}

// ---------------------------------------------------------------------
// FlatMap
// ---------------------------------------------------------------------

TEST(FlatMap, BasicInsertFindErase)
{
    FlatMap<std::uint64_t, int> m;
    EXPECT_TRUE(m.empty());
    EXPECT_FALSE(m.contains(7));
    m.insert(7, 70);
    m.insert(8, 80);
    EXPECT_EQ(m.size(), 2u);
    ASSERT_NE(m.find(7), nullptr);
    EXPECT_EQ(*m.find(7), 70);
    EXPECT_EQ(m.find(9), nullptr);
    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.erase(7));
    EXPECT_EQ(m.size(), 1u);
    EXPECT_FALSE(m.contains(7));
    EXPECT_TRUE(m.contains(8));
}

TEST(FlatMap, OperatorIndexDefaultConstructs)
{
    FlatMap<std::uint64_t, unsigned> m;
    EXPECT_EQ(m[5], 0u);
    m[5] += 3;
    EXPECT_EQ(m[5], 3u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, TakeRemovesAndReturns)
{
    FlatMap<std::uint64_t, std::shared_ptr<int>> m;
    m.insert(1, std::make_shared<int>(11));
    auto p = m.take(1);
    ASSERT_TRUE(p);
    EXPECT_EQ(*p, 11);
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.take(1), nullptr); // absent -> default V
}

TEST(FlatMap, GrowsPastInitialCapacityAndKeepsEntries)
{
    FlatMap<std::uint64_t, std::uint64_t> m(8);
    for (std::uint64_t k = 0; k < 1000; ++k)
        m.insert(k * 64, k); // block-aligned keys share low zero bits
    EXPECT_EQ(m.size(), 1000u);
    for (std::uint64_t k = 0; k < 1000; ++k) {
        ASSERT_NE(m.find(k * 64), nullptr) << k;
        EXPECT_EQ(*m.find(k * 64), k);
    }
}

TEST(FlatMap, ChurnMatchesReferenceMap)
{
    // Randomized insert/erase/take churn cross-checked against
    // std::map; exercises backward-shift deletion under collisions.
    FlatMap<std::uint64_t, int> m;
    std::map<std::uint64_t, int> ref;
    std::uint64_t x = 99;
    for (int i = 0; i < 20000; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        std::uint64_t key = (x >> 40) & 0xff; // small space -> churn
        int op = (x >> 20) % 3;
        if (op == 0) {
            m.insert(key, i);
            ref[key] = i;
        } else if (op == 1) {
            EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
        } else {
            auto it = ref.find(key);
            int want = it == ref.end() ? 0 : it->second;
            if (it != ref.end())
                ref.erase(it);
            EXPECT_EQ(m.take(key), want);
        }
        EXPECT_EQ(m.size(), ref.size());
    }
    for (const auto &[k, v] : ref) {
        ASSERT_NE(m.find(k), nullptr);
        EXPECT_EQ(*m.find(k), v);
    }
}

TEST(FlatMap, ClearEmptiesEverything)
{
    FlatMap<std::uint64_t, int> m;
    for (std::uint64_t k = 0; k < 100; ++k)
        m.insert(k, 1);
    m.clear();
    EXPECT_TRUE(m.empty());
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_FALSE(m.contains(k));
    m.insert(3, 4);
    EXPECT_EQ(m.size(), 1u);
}

} // namespace
} // namespace misar
