/**
 * @file
 * Tests for the workload layer: every catalog app must run to
 * completion on every configuration, speedups must be sane, and the
 * microbenchmarks must produce ordered, positive latencies.
 */

#include <gtest/gtest.h>

#include "workload/app_catalog.hh"
#include "workload/microbench.hh"
#include "workload/runner.hh"

namespace misar {
namespace workload {
namespace {

using sys::PaperConfig;

TEST(Catalog, Has26Apps)
{
    EXPECT_EQ(appCatalog().size(), 26u);
}

TEST(Catalog, HeadlineAppsExist)
{
    for (const auto &name : headlineApps())
        EXPECT_EQ(appByName(name).name, name);
}

// Every app finishes on every config (16 cores to keep it fast).
class AppRunTest : public ::testing::TestWithParam<const char *>
{};

TEST_P(AppRunTest, FinishesOnAllConfigs)
{
    const AppSpec &spec = appByName(GetParam());
    for (PaperConfig pc : {PaperConfig::Baseline, PaperConfig::Msa0,
                           PaperConfig::McsTour, PaperConfig::MsaOmu2,
                           PaperConfig::MsaInf, PaperConfig::Ideal}) {
        RunResult r = runApp(spec, 16, pc);
        EXPECT_TRUE(r.finished)
            << spec.name << " on " << sys::paperConfigName(pc);
        EXPECT_GT(r.makespan, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Headline, AppRunTest,
    ::testing::Values("radiosity", "raytrace", "water-sp", "ocean",
                      "ocean-nc", "cholesky", "fluidanimate",
                      "streamcluster", "dedup", "barnes", "swaptions"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string n = info.param;
        for (auto &ch : n)
            if (ch == '-')
                ch = '_';
        return n;
    });

TEST(AppRun, DeterministicAcrossRuns)
{
    const AppSpec &spec = appByName("radiosity");
    RunResult a = runApp(spec, 16, PaperConfig::MsaOmu2, 42);
    RunResult b = runApp(spec, 16, PaperConfig::MsaOmu2, 42);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.hwOps, b.hwOps);
}

TEST(AppRun, IdealAtLeastAsFastAsBaseline)
{
    for (const char *name : {"streamcluster", "radiosity", "ocean"}) {
        const AppSpec &spec = appByName(name);
        RunResult base = runApp(spec, 16, PaperConfig::Baseline);
        RunResult ideal = runApp(spec, 16, PaperConfig::Ideal);
        EXPECT_LT(ideal.makespan, base.makespan) << name;
    }
}

TEST(AppRun, MsaOmuBeatsBaselineOnSyncHeavyApps)
{
    for (const char *name : {"streamcluster", "fluidanimate"}) {
        const AppSpec &spec = appByName(name);
        RunResult base = runApp(spec, 16, PaperConfig::Baseline);
        RunResult msa = runApp(spec, 16, PaperConfig::MsaOmu2);
        EXPECT_LT(msa.makespan, base.makespan) << name;
    }
}

TEST(AppRun, CoverageHighWithTwoEntries)
{
    // Paper: MSA/OMU-2 covers most operations even with tiny MSAs.
    const AppSpec &spec = appByName("radiosity");
    RunResult r = runApp(spec, 16, PaperConfig::MsaOmu2);
    EXPECT_GT(r.hwCoverage, 0.5);
}

TEST(AppRun, FluidanimateUsesSilentLocks)
{
    const AppSpec &spec = appByName("fluidanimate");
    RunResult r = runApp(spec, 16, PaperConfig::MsaOmu2);
    EXPECT_GT(r.silentLocks, 0u);
}

TEST(AppRun, NoOmuCoverageLower)
{
    const AppSpec &spec = appByName("radiosity");
    SystemConfig with = sys::configFor(PaperConfig::MsaOmu2, 16);
    SystemConfig without = with;
    without.msa.omuEnabled = false;
    RunResult rw = runAppWithConfig(spec, with,
                                    sync::SyncLib::Flavor::Hw);
    RunResult ro = runAppWithConfig(spec, without,
                                    sync::SyncLib::Flavor::Hw);
    EXPECT_TRUE(rw.finished);
    EXPECT_TRUE(ro.finished);
    EXPECT_GT(rw.hwCoverage, ro.hwCoverage);
}

TEST(Microbench, LatenciesPositiveAndOrdered)
{
    RawLatencies base = measureRawLatency(16, PaperConfig::Baseline);
    RawLatencies msa = measureRawLatency(16, PaperConfig::MsaOmu2);
    EXPECT_GT(base.lockAcquire, 0.0);
    EXPECT_GT(base.lockHandoff, 0.0);
    EXPECT_GT(base.barrierHandoff, 0.0);
    EXPECT_GT(base.condSignal, 0.0);
    EXPECT_GT(base.condBroadcast, 0.0);
    // The accelerator's handoffs beat the pthread baseline.
    EXPECT_LT(msa.lockHandoff, base.lockHandoff);
    EXPECT_LT(msa.barrierHandoff, base.barrierHandoff);
    EXPECT_LT(msa.condSignal, base.condSignal);
}

} // namespace
} // namespace workload
} // namespace misar
