/**
 * @file
 * Overload-control tests: SLO-aware admission accounting, retry
 * policies (naive storms vs. budgeted), the retry-budget bound,
 * two-tenant accounting and brownout, conservation under core faults
 * with retries in flight, inertness of every overload path at the
 * defaults, and the conditional v4 run-report blocks.
 */

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/run_report.hh"
#include "sim/stats.hh"
#include "srv/server_stats.hh"
#include "system/presets.hh"
#include "util/json.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;

namespace {

/** server-poisson pushed past the knee with SLO admission armed. */
workload::AppSpec
overloadSpec(srv::RetryPolicy policy)
{
    workload::AppSpec spec = workload::appByName("server-poisson");
    spec.server.arrivalRate = 6.0;
    spec.server.queueCap = 256;
    spec.server.sloTicks = 20000;
    spec.server.retryPolicy = policy;
    return spec;
}

srv::ServerStats
run(const workload::AppSpec &spec,
    sys::PaperConfig cfg = sys::PaperConfig::MsaOmu2,
    std::uint64_t seed = 7)
{
    workload::RunResult r = workload::runApp(spec, 16, cfg, seed);
    EXPECT_TRUE(r.finished);
    EXPECT_TRUE(r.hasServer);
    return r.server;
}

/** generated == completed + rejected + rejectedSlo + stranded. */
void
expectConserved(const srv::ServerStats &s)
{
    EXPECT_EQ(s.generated,
              s.completed + s.rejected + s.rejectedSlo + s.stranded);
}

util::Json
parsed(const std::string &text)
{
    std::string err;
    util::Json j = util::parseJson(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    return j;
}

} // namespace

TEST(Overload, SloAdmissionShedsBeforeTheRingFills)
{
    workload::AppSpec spec = overloadSpec(srv::RetryPolicy::None);
    srv::ServerStats s = run(spec);
    // The 256-deep ring never fills: SLO admission sheds first.
    EXPECT_GT(s.rejectedSlo, 0u);
    EXPECT_EQ(s.rejected, 0u);
    EXPECT_EQ(s.retries, 0u);
    expectConserved(s);
    EXPECT_EQ(s.generated, spec.server.requests);
    EXPECT_EQ(s.sloTicks, spec.server.sloTicks);
    EXPECT_LE(s.sloMet, s.completed);
    EXPECT_LE(s.goodput, s.throughput);
    EXPECT_GT(s.goodput, 0.0);
    EXPECT_EQ(s.latency.count(), s.completed);
    EXPECT_TRUE(s.knee) << "rate 6 should be past the knee";
}

TEST(Overload, NaiveRetriesAmplifyButNeverDoubleCount)
{
    srv::ServerStats s = run(overloadSpec(srv::RetryPolicy::Naive));
    EXPECT_GT(s.retries, 0u);
    EXPECT_EQ(s.retryBudgetDenied, 0u);
    // Final-disposition accounting: a request that retried N times is
    // still generated exactly once and reaches one disposition.
    EXPECT_EQ(s.generated, 1500u);
    expectConserved(s);
}

TEST(Overload, BudgetedRetriesRespectTheTokenBound)
{
    workload::AppSpec spec = overloadSpec(srv::RetryPolicy::Budgeted);
    srv::ServerStats s = run(spec);
    expectConserved(s);
    // Spent retries never exceed the burst allowance plus the
    // success-refilled fraction (successes <= completed).
    const double bound =
        static_cast<double>(spec.server.retryBurst) +
        spec.server.retryBudgetRatio * static_cast<double>(s.completed);
    EXPECT_LE(static_cast<double>(s.retries), bound + 1.0)
        << s.retries << " retries vs budget bound " << bound;
    // Past the knee the budget must actually be binding.
    EXPECT_GT(s.retryBudgetDenied, 0u);
    srv::ServerStats naive = run(overloadSpec(srv::RetryPolicy::Naive));
    EXPECT_LT(s.retries, naive.retries);
}

TEST(Overload, TenantAccountingSumsToRunTotals)
{
    workload::AppSpec spec = workload::appByName("server-burst");
    spec.server.queueCap = 256;
    spec.server.sloTicks = 30000;
    spec.server.tenantHiRate = 1.0;
    spec.server.tenantLoRate = 3.0;
    spec.server.arrivalRate = 4.0;
    srv::ServerStats s = run(spec);
    expectConserved(s);
    ASSERT_EQ(s.tenants.size(), 2u);
    EXPECT_EQ(s.tenants[0].name, "hi");
    EXPECT_EQ(s.tenants[1].name, "lo");
    EXPECT_DOUBLE_EQ(s.tenants[0].offeredRate, 1.0);
    EXPECT_DOUBLE_EQ(s.tenants[1].offeredRate, 3.0);

    std::uint64_t gen = 0, done = 0, rej = 0, rej_slo = 0, str = 0,
                  met = 0, lat = 0;
    for (const srv::TenantStats &t : s.tenants) {
        gen += t.generated;
        done += t.completed;
        rej += t.rejected;
        rej_slo += t.rejectedSlo;
        str += t.stranded;
        met += t.sloMet;
        lat += t.latency.count();
        EXPECT_EQ(t.generated,
                  t.completed + t.rejected + t.rejectedSlo + t.stranded)
            << t.name;
        EXPECT_EQ(t.latency.count(), t.completed) << t.name;
    }
    EXPECT_EQ(gen, s.generated);
    EXPECT_EQ(done, s.completed);
    EXPECT_EQ(rej, s.rejected);
    EXPECT_EQ(rej_slo, s.rejectedSlo);
    EXPECT_EQ(str, s.stranded);
    EXPECT_EQ(met, s.sloMet);
    EXPECT_EQ(lat, s.latency.count());
}

TEST(Overload, BrownoutShedsLowPriorityFirst)
{
    workload::AppSpec spec = workload::appByName("server-burst");
    spec.server.queueCap = 256;
    spec.server.sloTicks = 30000;
    spec.server.tenantHiRate = 1.0;
    spec.server.tenantLoRate = 3.0;
    spec.server.arrivalRate = 4.0;
    spec.server.brownoutRatio = 0.5;
    srv::ServerStats s = run(spec, sys::PaperConfig::MsaOmu2, 1);
    ASSERT_EQ(s.tenants.size(), 2u);
    const srv::TenantStats &hi = s.tenants[0], &lo = s.tenants[1];
    // The lo burst is shed at half the SLO's predicted wait; hi rides
    // through untouched and inside its SLO.
    EXPECT_GT(lo.rejectedSlo, 0u);
    EXPECT_EQ(hi.rejectedSlo + hi.rejected, 0u);
    EXPECT_LE(hi.latency.p99(), spec.server.sloTicks);
    EXPECT_GT(hi.goodput, 0.0);
}

TEST(Overload, CoreFaultsWithBudgetedRetriesNeverLoseRequests)
{
    // Retry + SLO shedding + slice failover + dead cores at once:
    // every request still reaches exactly one final disposition.
    workload::AppSpec spec = overloadSpec(srv::RetryPolicy::Budgeted);
    workload::RunResult r = workload::runApp(
        spec, 16, sys::PaperConfig::MsaOmu2CoreFaults, 7);
    ASSERT_TRUE(r.finished);
    EXPECT_GT(r.coreKills, 0u) << "fault preset did not kill a core";
    const srv::ServerStats &s = r.server;
    EXPECT_EQ(s.generated, spec.server.requests);
    expectConserved(s);
    EXPECT_EQ(s.latency.count(), s.completed);
}

TEST(Overload, PathsAreInertByDefault)
{
    // A PR 9-era run (no SLO, no retries, no tenants) must see none
    // of the overload machinery in its stats.
    srv::ServerStats s =
        run(workload::appByName("server-poisson"));
    EXPECT_EQ(s.sloTicks, 0u);
    EXPECT_EQ(s.retryPolicy, srv::RetryPolicy::None);
    EXPECT_EQ(s.rejectedSlo, 0u);
    EXPECT_EQ(s.retries, 0u);
    EXPECT_EQ(s.retryBudgetDenied, 0u);
    EXPECT_EQ(s.sloMet, s.completed);
    EXPECT_DOUBLE_EQ(s.goodput, s.throughput);
    EXPECT_TRUE(s.tenants.empty());
}

TEST(Overload, RunReportV4BlocksAreConditional)
{
    StatRegistry stats;
    obs::RunMeta meta;
    meta.app = "server-poisson";
    meta.outcome = "finished";
    meta.makespan = 1000;

    srv::ServerStats plain;
    plain.offeredRate = 2.0;
    plain.generated = 10;
    plain.completed = 10;
    plain.sloMet = 10;
    plain.throughput = 1.0;
    plain.goodput = 1.0;
    std::ostringstream p;
    obs::writeRunReport(p, meta, stats, nullptr, 16, nullptr, nullptr,
                        nullptr, &plain);
    const util::Json pj = parsed(p.str());
    const util::Json &psrv = pj.at("server");
    // v4 additions present even when the features are off...
    EXPECT_EQ(psrv.at("rejectedSlo").uintOr(99), 0u);
    EXPECT_TRUE(psrv.at("goodput").isNum());
    // ...but the conditional blocks only appear when armed.
    EXPECT_FALSE(psrv.has("slo"));
    EXPECT_FALSE(psrv.has("retries"));
    EXPECT_FALSE(psrv.has("tenants"));
    // And every v3 field is still in place.
    for (const char *k : {"generated", "completed", "rejected",
                          "stranded", "throughput", "knee"})
        EXPECT_TRUE(psrv.has(k)) << k;

    srv::ServerStats armed = plain;
    armed.sloTicks = 20000;
    armed.sloMet = 8;
    armed.rejectedSlo = 2;
    armed.retryPolicy = srv::RetryPolicy::Budgeted;
    armed.retries = 3;
    armed.retryBudgetDenied = 1;
    armed.tenants.resize(2);
    armed.tenants[0].name = "hi";
    armed.tenants[1].name = "lo";
    std::ostringstream a;
    obs::writeRunReport(a, meta, stats, nullptr, 16, nullptr, nullptr,
                        nullptr, &armed);
    const util::Json aj = parsed(a.str());
    const util::Json &asrv = aj.at("server");
    EXPECT_EQ(asrv.at("slo").at("ticks").uintOr(0), 20000u);
    EXPECT_EQ(asrv.at("slo").at("met").uintOr(0), 8u);
    EXPECT_EQ(asrv.at("retries").at("policy").stringOr(""), "budgeted");
    EXPECT_EQ(asrv.at("retries").at("attempts").uintOr(0), 3u);
    EXPECT_EQ(asrv.at("retries").at("budgetDenied").uintOr(0), 1u);
    ASSERT_TRUE(asrv.at("tenants").isArr());
    ASSERT_EQ(asrv.at("tenants").arr.size(), 2u);
    EXPECT_EQ(asrv.at("tenants").arr[0].at("name").stringOr(""), "hi");
    EXPECT_EQ(asrv.at("tenants").arr[1].at("name").stringOr(""), "lo");
}
