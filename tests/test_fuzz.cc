/**
 * @file
 * Configuration-matrix fuzz: randomized mixed synchronization
 * workloads swept across core counts, MSA sizes, OMU sizes, and the
 * HWSync toggle. Every run must terminate, preserve mutual
 * exclusion and barrier alignment, and drain the OMU counters.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/rng.hh"
#include "sync/sync_lib.hh"
#include "system/system.hh"

namespace misar {
namespace sync {
namespace {

using cpu::ThreadApi;
using cpu::ThreadTask;

struct FuzzParam
{
    unsigned cores;
    unsigned entries;
    unsigned omuCounters;
    bool hwsync;
    std::uint64_t seed;
    /** Run under the fault injector + offline slice + checkers. */
    bool faults = false;
};

std::string
paramName(const ::testing::TestParamInfo<FuzzParam> &info)
{
    const FuzzParam &p = info.param;
    return "c" + std::to_string(p.cores) + "_e" +
           std::to_string(p.entries) + "_o" +
           std::to_string(p.omuCounters) + (p.hwsync ? "_hws" : "_plain") +
           "_s" + std::to_string(p.seed) + (p.faults ? "_flt" : "");
}

struct FuzzShared
{
    std::vector<int> inCs;
    std::vector<int> maxInCs;
    std::vector<std::uint64_t> csCount;
    std::vector<unsigned> epoch;
};

constexpr unsigned fuzzLocks = 6;

ThreadTask
fuzzThread(ThreadApi t, SyncLib *lib, FuzzShared *sh, unsigned threads,
           std::uint64_t seed, int iters)
{
    Rng rng(seed * 7919 + t.id() * 131 + 3);
    for (int i = 0; i < iters; ++i) {
        co_await t.compute(rng.range(120));
        switch (rng.range(4)) {
          case 0:
          case 1: { // lock / trylock a random lock
            unsigned w = static_cast<unsigned>(rng.range(fuzzLocks));
            Addr lock = 0x1000 + w * 2048;
            bool got = true;
            if (rng.range(3) == 0)
                got = co_await lib->mutexTryLock(t, lock);
            else
                co_await lib->mutexLock(t, lock);
            if (got) {
                sh->inCs[w]++;
                sh->maxInCs[w] = std::max(sh->maxInCs[w], sh->inCs[w]);
                sh->csCount[w]++;
                co_await t.compute(rng.range(60));
                sh->inCs[w]--;
                co_await lib->mutexUnlock(t, lock);
            }
            break;
          }
          case 2: { // shared memory traffic
            Addr a = 0x100000 + rng.range(64) * blockBytes;
            if (rng.range(2))
                co_await t.read(a);
            else
                co_await t.write(a, i);
            break;
          }
          case 3: // pure compute
            co_await t.compute(rng.range(200));
            break;
        }
    }
    // All threads meet at the end (also validates barrier under the
    // preceding chaos).
    co_await lib->barrierWait(t, 0xbeef00, threads);
    sh->epoch[t.id()]++;
}

class FuzzTest : public ::testing::TestWithParam<FuzzParam>
{};

TEST_P(FuzzTest, TerminatesWithInvariantsIntact)
{
    const FuzzParam &p = GetParam();
    SystemConfig cfg = makeConfig(p.cores, AccelMode::MsaOmu, p.entries);
    cfg.msa.omuCounters = p.omuCounters;
    cfg.msa.hwSyncBitOpt = p.hwsync;
    if (p.faults) {
        cfg.resil.dropProb = 0.03;
        cfg.resil.dupProb = 0.02;
        cfg.resil.delayProb = 0.05;
        cfg.resil.delayTicks = 250;
        cfg.resil.timeoutTicks = 3000;
        cfg.resil.maxRetries = 8;
        cfg.resil.faultSeed = p.seed * 977 + 5;
        cfg.resil.offlineTile = 0;
        cfg.resil.offlineAtTick = 20000;
        cfg.resil.watchdogInterval = 5000000;
        cfg.resil.invariantChecks = true;
        cfg.resil.invariantInterval = 50000;
    }
    sys::System s(cfg);
    std::vector<std::string> violations;
    if (auto *ic = s.invariantChecker())
        ic->setViolationHandler(
            [&violations](const std::vector<std::string> &v) {
                violations.insert(violations.end(), v.begin(), v.end());
            });
    SyncLib lib(SyncLib::Flavor::Hw, p.cores);
    FuzzShared sh;
    sh.inCs.assign(fuzzLocks, 0);
    sh.maxInCs.assign(fuzzLocks, 0);
    sh.csCount.assign(fuzzLocks, 0);
    sh.epoch.assign(p.cores, 0);

    const int iters = p.cores >= 64 ? 8 : 15;
    for (CoreId c = 0; c < p.cores; ++c)
        s.start(c, fuzzThread(s.api(c), &lib, &sh, p.cores, p.seed,
                              iters));
    ASSERT_TRUE(s.run(500000000ULL)) << "deadlock or runaway";

    for (unsigned w = 0; w < fuzzLocks; ++w) {
        EXPECT_EQ(sh.inCs[w], 0);
        EXPECT_LE(sh.maxInCs[w], 1) << "lock " << w;
    }
    for (unsigned e : sh.epoch)
        EXPECT_EQ(e, 1u);
    // Quiesced: every OMU counter on every tile must be zero.
    for (CoreId tile = 0; tile < p.cores; ++tile) {
        const auto &omu = s.msaSlice(tile).omu();
        for (unsigned k = 0; k < 64; ++k)
            ASSERT_EQ(omu.count(k * 8), 0u)
                << "tile " << tile << " counter probe " << k;
    }
    EXPECT_TRUE(violations.empty())
        << "first violation: " << violations.front();
    if (p.faults) {
        EXPECT_TRUE(s.msaSlice(0).isOffline());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, FuzzTest,
    ::testing::Values(FuzzParam{4, 1, 1, true, 1},
                      FuzzParam{4, 2, 4, false, 2},
                      FuzzParam{16, 1, 1, false, 3},
                      FuzzParam{16, 1, 4, true, 4},
                      FuzzParam{16, 2, 2, true, 5},
                      FuzzParam{16, 4, 4, false, 6},
                      FuzzParam{64, 1, 2, true, 7},
                      FuzzParam{64, 2, 4, true, 8},
                      FuzzParam{64, 2, 1, false, 9},
                      FuzzParam{16, 2, 4, true, 10},
                      FuzzParam{16, 2, 4, true, 11},
                      FuzzParam{16, 2, 4, true, 12},
                      // Same chaos under the fault campaign: message
                      // drops/dups/delays plus tile 0 decommissioned
                      // mid-run, with watchdog + invariant checker.
                      FuzzParam{4, 2, 4, true, 21, true},
                      FuzzParam{16, 1, 4, false, 22, true},
                      FuzzParam{16, 2, 2, true, 23, true},
                      FuzzParam{64, 2, 4, true, 24, true}),
    paramName);

} // namespace
} // namespace sync
} // namespace misar
