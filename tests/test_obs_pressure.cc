/**
 * @file
 * Resource-pressure observability tests: the log-bucketed latency
 * histogram (exactness below 128, the 1% relative-error bound on
 * percentiles, merge == histogram-of-concatenated-stream, JSON
 * round-trip), the ResourceMonitor's episode/high-water/overflow
 * bookkeeping and row-cap alignment, system-level heatmap timelines
 * under forced OMU overflow and under the faulted presets (gap-free,
 * sampler-aligned, episode spans cross-checked against the sampled
 * per-tile OMU gauges), run-report schema v2 (strict superset of
 * v1), and strict CLI validation of --top / --sample-interval in the
 * real misar_sim binary.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/heatmap.hh"
#include "obs/histogram.hh"
#include "obs/run_report.hh"
#include "obs/sampler.hh"
#include "obs/sync_profiler.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sync/sync_lib.hh"
#include "system/presets.hh"
#include "system/system.hh"
#include "util/json.hh"
#include "workload/app_catalog.hh"
#include "workload/synthetic_app.hh"

namespace misar {
namespace {

using obs::LogHistogram;
using obs::ResourceMonitor;

/** Deterministic 64-bit LCG (no platform-dependent distributions). */
struct Lcg
{
    std::uint64_t s;
    explicit Lcg(std::uint64_t seed) : s(seed) {}

    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s;
    }

    /** Uniform-ish value in [0, bound). */
    std::uint64_t next(std::uint64_t bound) { return next() % bound; }
};

util::Json
parsed(const std::string &text)
{
    std::string err;
    util::Json j = util::parseJson(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    return j;
}

// --- LogHistogram ---------------------------------------------------------

TEST(LogHistogram, EmptyIsZero)
{
    LogHistogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(LogHistogram, ValuesBelowLimitAreExact)
{
    LogHistogram h;
    for (std::uint64_t v = 0; v < LogHistogram::exactLimit; ++v) {
        EXPECT_EQ(LogHistogram::bucketIndex(v), v);
        EXPECT_EQ(LogHistogram::bucketValue(static_cast<unsigned>(v)), v);
        h.record(v);
    }
    EXPECT_EQ(h.count(), LogHistogram::exactLimit);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), LogHistogram::exactLimit - 1);
    // The k-th smallest of 0..127 is k-1; percentile() reports it
    // exactly because every value has its own bucket.
    EXPECT_EQ(h.percentile(0.5), 63u);
    EXPECT_EQ(h.percentile(1.0), 127u);
}

TEST(LogHistogram, ReconstructionErrorIsBounded)
{
    // Any recorded value comes back (as its bucket midpoint) within
    // 1/128 relative error, across the whole 64-bit range.
    Lcg rng(17);
    std::vector<std::uint64_t> vals;
    for (unsigned mag = 7; mag < 63; ++mag)
        for (unsigned i = 0; i < 32; ++i)
            vals.push_back((1ULL << mag) + rng.next(1ULL << mag));
    for (std::uint64_t v : vals) {
        const unsigned idx = LogHistogram::bucketIndex(v);
        const std::uint64_t mid = LogHistogram::bucketValue(idx);
        EXPECT_LE(LogHistogram::bucketLow(idx), v);
        const double err =
            v > mid ? double(v - mid) / double(v) : double(mid - v) / double(v);
        EXPECT_LE(err, 1.0 / 128.0) << "value " << v;
    }
}

TEST(LogHistogram, PercentilesWithinOnePercentOfExact)
{
    // A mixed stream spanning the exact range and several decades of
    // bucketed range; exact percentiles computed from the sorted
    // stream by the same rank rule percentile() documents.
    Lcg rng(99);
    std::vector<std::uint64_t> vals;
    for (unsigned i = 0; i < 4000; ++i)
        vals.push_back(rng.next(100));
    for (unsigned i = 0; i < 4000; ++i)
        vals.push_back(100 + rng.next(10000));
    for (unsigned i = 0; i < 2000; ++i)
        vals.push_back(10000 + rng.next(10000000));
    LogHistogram h;
    for (std::uint64_t v : vals)
        h.record(v);
    std::vector<std::uint64_t> sorted = vals;
    std::sort(sorted.begin(), sorted.end());
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
        const std::size_t rank = static_cast<std::size_t>(
            std::max<double>(1.0, std::ceil(q * double(sorted.size()))));
        const std::uint64_t exact = sorted[rank - 1];
        const std::uint64_t got = h.percentile(q);
        const double err = got > exact ? double(got - exact)
                                       : double(exact - got);
        EXPECT_LE(err, 0.01 * double(exact) + 0.5)
            << "q=" << q << " exact=" << exact << " got=" << got;
    }
}

TEST(LogHistogram, MergeMatchesConcatenatedStream)
{
    Lcg rng(7);
    LogHistogram a, b, all;
    for (unsigned i = 0; i < 5000; ++i) {
        const std::uint64_t v = rng.next(1u << 20);
        (i % 3 ? a : b).record(v);
        all.record(v);
    }
    LogHistogram merged = a;
    merged.merge(b);
    EXPECT_TRUE(merged == all);
    EXPECT_EQ(merged.count(), all.count());
    EXPECT_EQ(merged.sum(), all.sum());
    EXPECT_EQ(merged.min(), all.min());
    EXPECT_EQ(merged.max(), all.max());
    for (double q : {0.5, 0.9, 0.99, 0.999})
        EXPECT_EQ(merged.percentile(q), all.percentile(q)) << "q=" << q;
}

TEST(LogHistogram, JsonRoundTrip)
{
    Lcg rng(3);
    LogHistogram h;
    for (unsigned i = 0; i < 1000; ++i)
        h.record(rng.next(1u << 24));
    std::ostringstream os;
    {
        util::JsonWriter w(os);
        h.writeJson(w);
    }
    const util::Json doc = parsed(os.str());
    LogHistogram back;
    ASSERT_TRUE(LogHistogram::fromJson(doc, back));
    EXPECT_TRUE(back == h);

    // A count that disagrees with the bucket totals is rejected.
    std::string tampered = os.str();
    const std::string needle = "\"count\":1000";
    const std::size_t at = tampered.find(needle);
    ASSERT_NE(at, std::string::npos);
    tampered.replace(at, needle.size(), "\"count\":1001");
    LogHistogram bad;
    EXPECT_FALSE(LogHistogram::fromJson(parsed(tampered), bad));
}

// --- ResourceMonitor ------------------------------------------------------

TEST(ResourceMonitor, EpisodesOpenAndCloseOnActivityEdges)
{
    ResourceMonitor m(100);
    // Tile 2: 0 -> 1 live counters opens, back to 0 closes.
    m.omuUpdate(2, 1, 5, 1000);
    m.omuUpdate(2, 2, 3, 1200); // still active: no new episode
    m.omuUpdate(2, 0, 0, 1500);
    // Tile 0: separate episode, interleaved in time.
    m.omuUpdate(0, 1, 9, 1100);
    m.omuUpdate(0, 0, 0, 1300);
    ASSERT_EQ(m.omuEpisodes().size(), 2u);
    const ResourceMonitor::Episode &e0 = m.omuEpisodes()[0];
    EXPECT_EQ(e0.tile, 2u);
    EXPECT_EQ(e0.begin, 1000u);
    EXPECT_EQ(e0.end, 1500u);
    EXPECT_TRUE(e0.closed);
    const ResourceMonitor::Episode &e1 = m.omuEpisodes()[1];
    EXPECT_EQ(e1.tile, 0u);
    EXPECT_EQ(e1.begin, 1100u);
    EXPECT_EQ(e1.end, 1300u);
    EXPECT_TRUE(e1.closed);
    EXPECT_EQ(m.omuEpisodeTicks(), 500u + 200u);
    EXPECT_EQ(m.omuHighWater(), 9u);
}

TEST(ResourceMonitor, FinalizeClosesOpenEpisodesIdempotently)
{
    ResourceMonitor m(100);
    m.omuUpdate(1, 1, 2, 400);
    m.finalize(900);
    ASSERT_EQ(m.omuEpisodes().size(), 1u);
    EXPECT_EQ(m.omuEpisodes()[0].end, 900u);
    // Still marked unclosed: the span was cut by end-of-run, not by
    // the activity draining.
    EXPECT_FALSE(m.omuEpisodes()[0].closed);
    EXPECT_EQ(m.omuEpisodeTicks(), 500u);
    m.finalize(2000); // idempotent: the earlier cut stands
    EXPECT_EQ(m.omuEpisodes()[0].end, 900u);
}

TEST(ResourceMonitor, OverflowEventsCount)
{
    ResourceMonitor m(100);
    EXPECT_EQ(m.overflowEvents(), 0u);
    m.onOverflow(3, 50);
    m.onOverflow(3, 60);
    m.onOverflow(1, 70);
    EXPECT_EQ(m.overflowEvents(), 3u);
}

TEST(ResourceMonitor, RowCapDropsWholeRowsAndStaysAligned)
{
    ResourceMonitor m(10);
    double va = 1.0, vb = 10.0;
    m.addGauge("a", "kindA", 0, 0, [&] { return va; });
    m.addGauge("b", "kindB", 0, 1, [&] { return vb; });
    m.setMaxRows(2);
    m.sample(0);
    va = 2.0;
    vb = 20.0;
    m.sample(10);
    va = 3.0;
    m.sample(20); // over the cap: the whole row is dropped
    EXPECT_EQ(m.numSamples(), 2u);
    EXPECT_EQ(m.droppedRows(), 1u);
    ASSERT_EQ(m.gaugeValues(0).size(), 2u);
    ASSERT_EQ(m.gaugeValues(1).size(), 2u);
    EXPECT_DOUBLE_EQ(m.gaugeValues(0)[1], 2.0);
    EXPECT_DOUBLE_EQ(m.maxOfKind("kindA"), 2.0);
    EXPECT_DOUBLE_EQ(m.maxOfKind("kindB"), 20.0);
    EXPECT_DOUBLE_EQ(m.maxOfKind("absent"), 0.0);
}

// --- System-level timelines -----------------------------------------------

/** Run catalog app @p app on @p cfg; the system is returned for
 *  inspection (sampler, monitor, profiler all still attached). */
std::unique_ptr<sys::System>
runSystem(SystemConfig cfg, sync::SyncLib::Flavor flavor, const char *app,
          std::uint64_t seed = 1)
{
    cfg.seed = seed;
    auto s = std::make_unique<sys::System>(cfg);
    sync::SyncLib lib(flavor, cfg.numThreads());
    workload::AppLayout layout;
    const workload::AppSpec &spec = workload::appByName(app);
    for (CoreId t = 0; t < cfg.numThreads(); ++t)
        s->start(t, workload::appThread(s->api(t), spec, layout, &lib,
                                        cfg.numThreads(), seed));
    EXPECT_TRUE(s->run(500000000ULL));
    return s;
}

/** Quiesce-sample, finalize the monitor, and check the timeline is
 *  sampler-aligned and gap-free (consecutive periodic rows exactly
 *  one interval apart; the quiesce row may land anywhere after). */
void
checkTimeline(sys::System &s, Tick interval)
{
    ASSERT_NE(s.sampler(), nullptr);
    ASSERT_NE(s.monitor(), nullptr);
    s.sampler()->sampleNow(); // the quiesce row the runner takes
    s.monitor()->finalize(s.eventQueue().now());

    const ResourceMonitor &m = *s.monitor();
    const auto &rows = s.sampler()->rows();
    ASSERT_GE(rows.size(), 3u) << "run too short to exercise sampling";
    // Monitor rows ride the sampler's schedule one-for-one.
    ASSERT_EQ(m.numSamples(), rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(m.sampleTicks()[i], rows[i].tick) << "row " << i;
    for (std::size_t g = 0; g < m.numGauges(); ++g)
        ASSERT_EQ(m.gaugeValues(g).size(), m.numSamples())
            << "gauge " << m.gaugeName(g) << " misaligned";
    // Gap-free: t=0 row, then exactly one interval per periodic row.
    EXPECT_EQ(m.sampleTicks().front(), 0u);
    for (std::size_t i = 1; i + 1 < m.sampleTicks().size(); ++i)
        EXPECT_EQ(m.sampleTicks()[i] - m.sampleTicks()[i - 1], interval)
            << "gap before row " << i;
    EXPECT_GE(m.sampleTicks().back(),
              m.sampleTicks()[m.sampleTicks().size() - 2]);
    EXPECT_EQ(m.droppedRows(), 0u);
}

TEST(PressureE2E, ForcedOverflowEpisodesSpanSampledOmuActivity)
{
    // One MSA entry per tile forces entry-allocation overflow, which
    // drives addresses through the OMU: overflow events and OMU
    // activity episodes must both appear.
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 1);
    cfg.obs.heatmapEnabled = true;
    cfg.obs.sampleInterval = 1000;
    // water-sp on a 1-entry MSA spends most of the run with live OMU
    // counters (hundreds of overflows), so the 1000-tick cadence is
    // guaranteed to catch live samples for the cross-check.
    auto s = runSystem(cfg, sync::SyncLib::Flavor::Hw, "water-sp");
    checkTimeline(*s, 1000);

    const ResourceMonitor &m = *s->monitor();
    EXPECT_GT(m.overflowEvents(), 0u);
    ASSERT_FALSE(m.omuEpisodes().empty());
    EXPECT_GT(m.omuEpisodeTicks(), 0u);
    EXPECT_GT(m.omuHighWater(), 0u);

    // Cross-check the event-driven episode spans against the sampled
    // per-tile OMU gauges: a sample that sees a live counter must lie
    // inside an episode of that tile, and a sample that sees none
    // must not lie strictly inside one. Boundary-equal ticks are
    // excluded from the zero check (same-tick event order between the
    // sampler maintenance event and the OMU update is unspecified).
    std::size_t activeSamples = 0;
    for (std::size_t g = 0; g < m.numGauges(); ++g) {
        if (m.gaugeKind(g) != "omu")
            continue;
        const std::string &name = m.gaugeName(g); // "slice<T>.omu<I>"
        const unsigned tile =
            static_cast<unsigned>(std::atoi(name.c_str() + 5));
        const std::vector<double> &vals = m.gaugeValues(g);
        for (std::size_t i = 0; i < vals.size(); ++i) {
            const Tick t = m.sampleTicks()[i];
            bool inside = false, interior = false;
            for (const ResourceMonitor::Episode &e : m.omuEpisodes()) {
                if (e.tile != tile)
                    continue;
                inside |= e.begin <= t && t <= e.end;
                interior |= e.begin < t && t < e.end;
            }
            if (vals[i] > 0) {
                ++activeSamples;
                EXPECT_TRUE(inside)
                    << name << " live at tick " << t
                    << " outside every episode of tile " << tile;
            } else {
                // All gauges of the tile must be zero for the tick to
                // be provably episode-free; a single zero counter
                // proves nothing, so only check single-counter spans
                // via the aggregate below.
            }
        }
    }
    EXPECT_GT(activeSamples, 0u)
        << "sampling never caught a live OMU counter; interval too "
           "coarse for the cross-check to mean anything";

    // Aggregate per-tile activity: all counters zero at a sampled
    // tick => that tick is not strictly inside any episode.
    for (unsigned tile = 0; tile < cfg.numCores; ++tile) {
        std::vector<std::size_t> tileGauges;
        for (std::size_t g = 0; g < m.numGauges(); ++g)
            if (m.gaugeKind(g) == "omu" &&
                m.gaugeName(g).compare(0, 5, "slice") == 0 &&
                static_cast<unsigned>(
                    std::atoi(m.gaugeName(g).c_str() + 5)) == tile)
                tileGauges.push_back(g);
        ASSERT_FALSE(tileGauges.empty());
        for (std::size_t i = 0; i < m.numSamples(); ++i) {
            double any = 0.0;
            for (std::size_t g : tileGauges)
                any += m.gaugeValues(g)[i];
            if (any > 0)
                continue;
            const Tick t = m.sampleTicks()[i];
            for (const ResourceMonitor::Episode &e : m.omuEpisodes()) {
                if (e.tile != tile)
                    continue;
                EXPECT_FALSE(e.begin < t && t < e.end)
                    << "tile " << tile << " idle at sampled tick "
                    << t << " inside episode [" << e.begin << ","
                    << e.end << "]";
            }
        }
    }

    // The heatmap document carries the same data.
    std::ostringstream os;
    m.writeJson(os);
    const util::Json doc = parsed(os.str());
    EXPECT_EQ(doc.at("schemaVersion").uintOr(0), 1u);
    EXPECT_EQ(doc.at("interval").uintOr(0), 1000u);
    EXPECT_EQ(doc.at("ticks").arr.size(), m.numSamples());
    EXPECT_EQ(doc.at("resources").arr.size(), m.numGauges());
    EXPECT_EQ(doc.at("overflowEvents").uintOr(0), m.overflowEvents());
    const util::Json &eps = doc.at("omuEpisodes");
    ASSERT_EQ(eps.arr.size(), m.omuEpisodes().size());
    for (std::size_t i = 0; i < eps.arr.size(); ++i) {
        const ResourceMonitor::Episode &e = m.omuEpisodes()[i];
        EXPECT_EQ(eps.arr[i].at("tile").uintOr(~0u), e.tile);
        EXPECT_EQ(eps.arr[i].at("begin").uintOr(~0u), e.begin);
        EXPECT_EQ(eps.arr[i].at("end").uintOr(~0u), e.end);
        EXPECT_EQ(eps.arr[i].at("closed").boolOr(!e.closed), e.closed);
    }
}

TEST(PressureE2E, TimelinesGapFreeUnderCoreFaults)
{
    SystemConfig cfg = sys::configFor(sys::PaperConfig::MsaOmu2CoreFaults,
                                      16);
    cfg.obs.heatmapEnabled = true;
    cfg.obs.sampleInterval = 5000;
    auto s = runSystem(cfg, sys::flavorFor(sys::PaperConfig::MsaOmu2CoreFaults),
                       "radix");
    checkTimeline(*s, 5000);
    EXPECT_GT(s->stats().counterValue("resil.coreKills"), 0u)
        << "preset did not actually kill a core";
}

TEST(PressureE2E, TimelinesGapFreeUnderSliceFailover)
{
    SystemConfig cfg = sys::configFor(sys::PaperConfig::MsaOmu2Faults, 16);
    cfg.resil.failoverBuddy = 1; // re-home tile 0's variables
    cfg.obs.heatmapEnabled = true;
    cfg.obs.sampleInterval = 5000;
    auto s = runSystem(cfg, sys::flavorFor(sys::PaperConfig::MsaOmu2Faults),
                       "fft");
    checkTimeline(*s, 5000);
    EXPECT_GT(s->stats().sumCountersSuffix(".msa.offlineEvents"), 0u)
        << "preset did not actually decommission a slice";
}

TEST(PressureE2E, DisabledMonitorIsInertAndAbsent)
{
    SystemConfig off = makeConfig(16, AccelMode::MsaOmu, 2);
    auto a = runSystem(off, sync::SyncLib::Flavor::Hw, "water-sp", 7);
    EXPECT_EQ(a->monitor(), nullptr);
    EXPECT_EQ(a->sampler(), nullptr);

    // Identical obs-off runs dump byte-identical reports.
    auto a2 = runSystem(off, sync::SyncLib::Flavor::Hw, "water-sp", 7);
    obs::RunMeta meta;
    meta.app = "water-sp";
    meta.outcome = "finished";
    std::ostringstream ra, ra2;
    obs::writeRunReport(ra, meta, a->stats());
    obs::writeRunReport(ra2, meta, a2->stats());
    EXPECT_EQ(ra.str(), ra2.str());

    // The full pressure stack on the same seed must not move the
    // schedule or any registry counter.
    SystemConfig on = off;
    on.obs.heatmapEnabled = true;
    on.obs.sampleInterval = 2000;
    auto b = runSystem(on, sync::SyncLib::Flavor::Hw, "water-sp", 7);
    EXPECT_EQ(a->makespan(), b->makespan())
        << "the pressure monitor perturbed the schedule";
    EXPECT_EQ(a->stats().counterValue("sync.hwOps"),
              b->stats().counterValue("sync.hwOps"));
    EXPECT_EQ(a->stats().counterValue("noc.packetsSent"),
              b->stats().counterValue("noc.packetsSent"));
    std::ostringstream rb;
    obs::writeRunReport(rb, meta, b->stats());
    EXPECT_EQ(ra.str(), rb.str())
        << "pressure monitoring leaked into the stats registry";
}

// --- Run report v2 --------------------------------------------------------

TEST(RunReportV2, StrictSupersetOfV1WithLatencyAndHeatmap)
{
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 1);
    cfg.obs.profileSync = true;
    cfg.obs.heatmapEnabled = true;
    cfg.obs.sampleInterval = 2000;
    auto s = runSystem(cfg, sync::SyncLib::Flavor::Hw, "radix");
    s->sampler()->sampleNow();
    s->monitor()->finalize(s->eventQueue().now());

    obs::RunMeta meta;
    meta.app = "radix";
    meta.preset = "msa-omu";
    meta.accel = s->config().accelName();
    meta.flavor = "hw-hybrid";
    meta.cores = 16;
    meta.seed = 1;
    meta.outcome = "finished";
    meta.makespan = s->makespan();
    meta.hwCoverage = 0.5;
    std::ostringstream os;
    obs::writeRunReport(os, meta, s->stats(), s->syncProfiler(), 8,
                        s->sampler(), &s->eventQueue(), s->monitor());
    const util::Json r = parsed(os.str());

    EXPECT_EQ(r.at("schemaVersion").uintOr(0), 4u);
    // Every v1 required field, same type and place.
    for (const char *k : {"app", "preset", "accel", "flavor", "outcome"})
        EXPECT_TRUE(r.at("meta").at(k).isStr()) << "meta." << k;
    for (const char *k : {"cores", "seed", "makespan", "hwCoverage"})
        EXPECT_TRUE(r.at("meta").at(k).isNum()) << "meta." << k;
    EXPECT_TRUE(r.at("resilience").at("timeouts").isNum());
    EXPECT_TRUE(r.at("stats").at("counters").isObj());
    EXPECT_TRUE(r.at("stats").at("averages").isObj());
    EXPECT_TRUE(r.at("stats").at("histograms").isObj());
    EXPECT_TRUE(r.at("syncVars").isArr());
    EXPECT_TRUE(r.at("samples").isObj());
    EXPECT_TRUE(r.at("eventQueue").isObj());

    // v2 additions: the run-level wait histogram round-trips to the
    // profiler's own aggregate, and the heatmap summary matches the
    // monitor.
    ASSERT_TRUE(r.at("latency").at("syncWait").isObj());
    LogHistogram wait;
    ASSERT_TRUE(
        LogHistogram::fromJson(r.at("latency").at("syncWait"), wait));
    EXPECT_TRUE(wait == s->syncProfiler()->overallWait());
    EXPECT_GT(wait.count(), 0u);
    const util::Json &hm = r.at("heatmap");
    ASSERT_TRUE(hm.isObj());
    EXPECT_EQ(hm.at("resources").uintOr(0), s->monitor()->numGauges());
    EXPECT_EQ(hm.at("samples").uintOr(0), s->monitor()->numSamples());
    EXPECT_EQ(hm.at("overflowEvents").uintOr(0),
              s->monitor()->overflowEvents());
    EXPECT_EQ(hm.at("omuEpisodes").uintOr(0),
              s->monitor()->omuEpisodes().size());

    // Without profiler and monitor the v2 blocks are absent (v1
    // consumers see a v1-shaped document).
    std::ostringstream plain;
    obs::writeRunReport(plain, meta, s->stats());
    const util::Json p = parsed(plain.str());
    EXPECT_FALSE(p.has("latency"));
    EXPECT_FALSE(p.has("heatmap"));
    EXPECT_FALSE(p.has("syncVars"));
}

// --- misar_sim CLI validation ---------------------------------------------

/** Run the real simulator binary; return its exit code + output. */
int
runSim(const std::string &args, std::string &output)
{
    const std::string cmd =
        std::string(MISAR_SIM_PATH) + " " + args + " 2>&1";
    FILE *p = ::popen(cmd.c_str(), "r");
    EXPECT_NE(p, nullptr);
    if (!p)
        return -1;
    char buf[512];
    output.clear();
    while (std::fgets(buf, sizeof(buf), p))
        output += buf;
    int st = ::pclose(p);
    return WIFEXITED(st) ? WEXITSTATUS(st) : -1;
}

TEST(ObsCli, BadTopAndSampleIntervalAreRejected)
{
    struct Case
    {
        const char *args;
        const char *needle;
    };
    const Case cases[] = {
        // Zero, negative, non-numeric, and trailing-garbage values
        // must all die in the parser with a usable message, not be
        // silently atoi'd into nonsense.
        {"--app fft --top 0", "--top expects a positive"},
        {"--app fft --top -3", "--top expects a positive"},
        {"--app fft --top junk", "--top expects a positive"},
        {"--app fft --top 4x", "--top expects a positive"},
        {"--app fft --sample-interval 0",
         "--sample-interval expects a positive"},
        {"--app fft --sample-interval -5",
         "--sample-interval expects a positive"},
        {"--app fft --sample-interval abc",
         "--sample-interval expects a positive"},
        {"--app fft --sample-interval 10k",
         "--sample-interval expects a positive"},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.args);
        std::string out;
        EXPECT_EQ(runSim(c.args, out), 1) << out;
        EXPECT_NE(out.find(c.needle), std::string::npos) << out;
    }
}

TEST(ObsCli, HeatmapOutWritesParseableDocument)
{
    const std::string path = "test_obs_pressure_heatmap_" +
                             std::to_string(::getpid()) + ".json";
    std::string out;
    const int rc =
        runSim("--app fft --cores 4 --config msa-omu --entries 1 "
               "--heatmap-out " + path, out);
    EXPECT_EQ(rc, 0) << out;
    std::string err;
    const util::Json doc = util::parseJsonFile(path, &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(doc.at("schemaVersion").uintOr(0), 1u);
    // --heatmap-out without --sample-interval defaults the cadence.
    EXPECT_EQ(doc.at("interval").uintOr(0), 10000u);
    EXPECT_GT(doc.at("ticks").arr.size(), 1u);
    EXPECT_FALSE(doc.at("resources").arr.empty());
    EXPECT_TRUE(doc.has("omuEpisodes"));
    EXPECT_TRUE(doc.has("overflowEvents"));
    std::remove(path.c_str());
}

} // namespace
} // namespace misar
