/**
 * @file
 * Focused unit tests for the OMU counters and NBTC fairness that
 * don't need a full system: hash distribution, aliasing, underflow
 * detection (via death test), and rotation order over many rounds.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "msa/omu.hh"
#include "sim/stats.hh"
#include "sync/sync_lib.hh"
#include "system/system.hh"

namespace misar {
namespace msa {
namespace {

TEST(OmuUnit, IncrementDecrementRoundTrip)
{
    StatRegistry stats;
    Omu omu(4, stats, "t.");
    EXPECT_FALSE(omu.active(0x100));
    omu.increment(0x100);
    EXPECT_TRUE(omu.active(0x100));
    EXPECT_EQ(omu.count(0x100), 1u);
    omu.increment(0x100, 3);
    EXPECT_EQ(omu.count(0x100), 4u);
    omu.decrement(0x100, 4);
    EXPECT_FALSE(omu.active(0x100));
}

TEST(OmuUnit, AliasesShareACounter)
{
    StatRegistry stats;
    Omu omu(1, stats, "t.");
    omu.increment(0x100);
    // With a single counter every address aliases: a different
    // address must observe the activity (conservative steering).
    EXPECT_TRUE(omu.active(0x98765432));
}

TEST(OmuUnit, HashSpreadsAddresses)
{
    StatRegistry stats;
    Omu omu(4, stats, "t.");
    // Consecutive sync words must not all land in one counter.
    std::set<unsigned> hit;
    for (Addr a = 0; a < 64; ++a) {
        Omu probe(4, stats, "p.");
        probe.increment(0x1000 + a * 8);
        for (unsigned k = 0; k < 4; ++k) {
            // Find which counter the address landed in by testing a
            // witness address per counter... simpler: count actives.
        }
        unsigned actives = 0;
        for (Addr w = 0; w < 4096; w += 8)
            actives += probe.active(w);
        // At least a quarter of probes alias with this address.
        EXPECT_GT(actives, 0u);
        hit.insert(actives);
    }
    // Different addresses see different alias sets -> hash varies.
    EXPECT_GT(hit.size(), 1u);
}

TEST(OmuUnitDeathTest, UnderflowPanics)
{
    StatRegistry stats;
    Omu omu(4, stats, "t.");
    EXPECT_DEATH(omu.decrement(0x100), "underflow");
}

TEST(OmuUnit, SaturationIsSticky)
{
    StatRegistry stats;
    Omu omu(4, stats, "t.");
    // Drive a counter to the ceiling in two large steps; the second
    // would overflow, so it must pin at the ceiling instead.
    omu.increment(0x100, 0x80000000u);
    omu.increment(0x100, 0x80000000u);
    EXPECT_EQ(omu.count(0x100), Omu::saturatedValue);
    EXPECT_EQ(stats.counter("t.omuSaturations").value(), 1u);

    // A saturated counter no longer tracks population: decrements
    // must not revive hardware eligibility for its addresses.
    omu.decrement(0x100);
    omu.decrement(0x100, 1000);
    EXPECT_EQ(omu.count(0x100), Omu::saturatedValue);
    EXPECT_TRUE(omu.active(0x100));

    // Further increments keep it pinned (no wraparound to small
    // values, which would re-enable hardware for a busy address).
    omu.increment(0x100, 0xffffffffu);
    EXPECT_EQ(omu.count(0x100), Omu::saturatedValue);
    // Saturation is counted once per counter, not per event.
    EXPECT_EQ(stats.counter("t.omuSaturations").value(), 1u);
}

TEST(OmuUnit, SaturationIsPerCounter)
{
    StatRegistry stats;
    Omu omu(64, stats, "t.");
    omu.increment(0x100, Omu::saturatedValue);
    // Find an address in a different counter: it must be unaffected.
    Addr other = 0;
    for (Addr a = 0x2000; a < 0x4000; a += 8) {
        if (!omu.active(a)) {
            other = a;
            break;
        }
    }
    ASSERT_NE(other, 0u) << "all 64 counters aliased one address?";
    omu.increment(other);
    omu.decrement(other);
    EXPECT_FALSE(omu.active(other));
    EXPECT_TRUE(omu.active(0x100));
}

TEST(NbtcUnit, RotationIsFairOverManyRounds)
{
    // Full-system check: with persistent contention, consecutive
    // grant orders rotate rather than repeatedly favouring the same
    // low-numbered cores.
    sys::System s(makeConfig(16, AccelMode::MsaOmu, 2));
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, 16);
    std::vector<CoreId> order;
    auto body = [](cpu::ThreadApi t, sync::SyncLib *lib,
                   std::vector<CoreId> *order) -> cpu::ThreadTask {
        for (int i = 0; i < 6; ++i) {
            co_await lib->mutexLock(t, 0x1000);
            order->push_back(t.id());
            co_await t.compute(60);
            co_await lib->mutexUnlock(t, 0x1000);
            co_await t.compute(5); // rejoin the queue quickly
        }
    };
    for (CoreId c = 0; c < 8; ++c)
        s.start(c, body(s.api(c), &lib, &order));
    ASSERT_TRUE(s.run(50000000));
    ASSERT_EQ(order.size(), 48u);
    // Fairness: between two grants to the same core, every other
    // persistent contender must have been granted at least once
    // (round-robin property of the NBTC scan).
    std::vector<int> grants(8, 0);
    for (std::size_t i = 0; i + 8 < order.size(); ++i) {
        std::set<CoreId> window(order.begin() + i,
                                order.begin() + i + 8);
        // In any window of 8 consecutive grants with 8 contenders,
        // at least 6 distinct cores must appear (allowing boundary
        // effects as threads finish).
        EXPECT_GE(window.size(), 6u) << "starvation at index " << i;
    }
    for (CoreId c : order)
        grants[c]++;
    for (int g : grants)
        EXPECT_EQ(g, 6);
}

} // namespace
} // namespace msa
} // namespace misar
