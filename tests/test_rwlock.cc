/**
 * @file
 * Tests for the reader-writer lock extension: reader concurrency,
 * writer exclusion, writer preference, hardware/software fallback
 * with OMU balance, suspension of RW waiters, and randomized stress
 * with an invariant checker.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/rng.hh"
#include "sync/sync_lib.hh"
#include "system/system.hh"

namespace misar {
namespace sync {
namespace {

using cpu::SyncResult;
using cpu::ThreadApi;
using cpu::ThreadTask;
using cpu::toSyncResult;

struct RwShared
{
    int readers = 0;
    int writers = 0;
    int maxReaders = 0;
    bool violation = false;
    std::uint64_t sections = 0;

    void
    enter(bool writer)
    {
        if (writer) {
            if (writers || readers)
                violation = true;
            writers++;
        } else {
            if (writers)
                violation = true;
            readers++;
            maxReaders = std::max(maxReaders, readers);
        }
        sections++;
    }

    void
    leave(bool writer)
    {
        (writer ? writers : readers)--;
    }
};

ThreadTask
rwWorker(ThreadApi t, SyncLib *lib, Addr l, RwShared *sh, int iters,
         unsigned writer_every, std::uint64_t seed)
{
    Rng rng(seed + t.id() * 31);
    for (int i = 0; i < iters; ++i) {
        bool writer = writer_every && (rng.range(writer_every) == 0);
        if (writer)
            co_await lib->rwWrLock(t, l);
        else
            co_await lib->rwRdLock(t, l);
        sh->enter(writer);
        co_await t.compute(20 + rng.range(40));
        sh->leave(writer);
        co_await lib->rwUnlock(t, l);
        co_await t.compute(rng.range(80));
    }
}

TEST(RwLock, ReadersShareHardware)
{
    sys::System s(makeConfig(16, AccelMode::MsaOmu, 2));
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    RwShared sh;
    // Readers only: all 8 must be able to overlap.
    auto reader = [](ThreadApi t, SyncLib *lib, Addr l,
                     RwShared *sh) -> ThreadTask {
        co_await lib->rwRdLock(t, l);
        sh->enter(false);
        co_await t.compute(3000); // long overlap window
        sh->leave(false);
        co_await lib->rwUnlock(t, l);
    };
    for (CoreId c = 0; c < 8; ++c)
        s.start(c, reader(s.api(c), &lib, 0x1000, &sh));
    ASSERT_TRUE(s.run(10000000));
    EXPECT_FALSE(sh.violation);
    EXPECT_GE(sh.maxReaders, 6) << "readers failed to share";
    EXPECT_DOUBLE_EQ(s.hwCoverage(), 1.0);
}

TEST(RwLock, WriterExcludesEveryone)
{
    sys::System s(makeConfig(16, AccelMode::MsaOmu, 2));
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    RwShared sh;
    for (CoreId c = 0; c < 12; ++c)
        s.start(c, rwWorker(s.api(c), &lib, 0x1000, &sh, 8, 3, 5));
    ASSERT_TRUE(s.run(50000000));
    EXPECT_FALSE(sh.violation);
    EXPECT_EQ(sh.sections, 12u * 8u);
}

TEST(RwLock, WriterPreferenceAvoidsStarvation)
{
    // A writer arriving amid a reader stream must get the lock before
    // later readers pile in.
    sys::System s(makeConfig(16, AccelMode::MsaOmu, 2));
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    std::vector<int> order;
    auto early_reader = [](ThreadApi t, SyncLib *lib, Addr l,
                           std::vector<int> *order) -> ThreadTask {
        co_await lib->rwRdLock(t, l);
        co_await t.compute(2000);
        co_await lib->rwUnlock(t, l);
        order->push_back(0);
    };
    auto writer = [](ThreadApi t, SyncLib *lib, Addr l,
                     std::vector<int> *order) -> ThreadTask {
        co_await t.compute(500);
        co_await lib->rwWrLock(t, l);
        order->push_back(1);
        co_await t.compute(100);
        co_await lib->rwUnlock(t, l);
    };
    auto late_reader = [](ThreadApi t, SyncLib *lib, Addr l,
                          std::vector<int> *order) -> ThreadTask {
        co_await t.compute(1000); // after the writer queued
        co_await lib->rwRdLock(t, l);
        order->push_back(2);
        co_await lib->rwUnlock(t, l);
    };
    s.start(0, early_reader(s.api(0), &lib, 0x1000, &order));
    s.start(1, writer(s.api(1), &lib, 0x1000, &order));
    s.start(2, late_reader(s.api(2), &lib, 0x1000, &order));
    ASSERT_TRUE(s.run(10000000));
    ASSERT_EQ(order.size(), 3u);
    // Early reader finishes, then the queued writer, then the late
    // reader (who arrived after the writer and must wait behind it).
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 2);
}

TEST(RwLock, OverflowFallsBackAndBalancesOmu)
{
    // Exhaust the home tile's single entry so RW ops go software.
    SystemConfig cfg = makeConfig(16, AccelMode::MsaOmu, 1);
    cfg.msa.hwSyncBitOpt = false;
    sys::System s(cfg);
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    RwShared sh;
    const Addr blockers = 0x0, rw = 16 * 64; // both homed on tile 0
    auto hog = [](ThreadApi t, Addr l) -> ThreadTask {
        co_await t.lockInstr(l);
        co_await t.compute(40000);
        co_await t.unlockInstr(l);
    };
    s.start(15, hog(s.api(15), blockers));
    for (CoreId c = 0; c < 6; ++c)
        s.start(c, rwWorker(s.api(c), &lib, rw, &sh, 6, 3, 7));
    ASSERT_TRUE(s.run(50000000));
    EXPECT_FALSE(sh.violation);
    EXPECT_EQ(sh.sections, 36u);
    EXPECT_GT(s.stats().counter("sync.swOps").value(), 0u);
    EXPECT_EQ(s.msaSlice(0).omu().count(rw), 0u);
}

TEST(RwLock, SuspendedWaiterRequeues)
{
    sys::System s(makeConfig(16, AccelMode::MsaOmu, 2));
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    RwShared sh;
    auto writer_hold = [](ThreadApi t, SyncLib *lib, Addr l,
                          RwShared *sh) -> ThreadTask {
        co_await lib->rwWrLock(t, l);
        sh->enter(true);
        co_await t.compute(4000);
        sh->leave(true);
        co_await lib->rwUnlock(t, l);
    };
    auto reader_wait = [](ThreadApi t, SyncLib *lib, Addr l,
                          RwShared *sh) -> ThreadTask {
        co_await t.compute(300);
        co_await lib->rwRdLock(t, l);
        sh->enter(false);
        co_await t.compute(50);
        sh->leave(false);
        co_await lib->rwUnlock(t, l);
    };
    s.start(0, writer_hold(s.api(0), &lib, 0x2000, &sh));
    s.start(1, reader_wait(s.api(1), &lib, 0x2000, &sh));
    s.eventQueue().schedule(1000, [&] { s.core(1).interrupt(); });
    ASSERT_TRUE(s.run(10000000));
    EXPECT_FALSE(sh.violation);
    EXPECT_EQ(sh.sections, 2u);
}

TEST(RwLock, IdealSemantics)
{
    sys::System s(makeConfig(16, AccelMode::Ideal));
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    RwShared sh;
    for (CoreId c = 0; c < 10; ++c)
        s.start(c, rwWorker(s.api(c), &lib, 0x1000, &sh, 6, 4, 11));
    ASSERT_TRUE(s.run(50000000));
    EXPECT_FALSE(sh.violation);
    EXPECT_EQ(sh.sections, 60u);
}

TEST(RwLock, PureSoftwareFlavor)
{
    sys::System s(makeConfig(16, AccelMode::None));
    SyncLib lib(SyncLib::Flavor::PthreadSw, 16);
    RwShared sh;
    for (CoreId c = 0; c < 10; ++c)
        s.start(c, rwWorker(s.api(c), &lib, 0x1000, &sh, 6, 4, 13));
    ASSERT_TRUE(s.run(50000000));
    EXPECT_FALSE(sh.violation);
    EXPECT_EQ(sh.sections, 60u);
}

class RwStressTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(RwStressTest, MixedRwAndMutexStress)
{
    sys::System s(makeConfig(16, AccelMode::MsaOmu,
                             GetParam() % 2 ? 1 : 2));
    SyncLib lib(SyncLib::Flavor::Hw, 16);
    RwShared sh;
    int mutex_cs = 0, mutex_max = 0;
    auto body = [](ThreadApi t, SyncLib *lib, RwShared *sh, int *cs,
                   int *mx, std::uint64_t seed) -> ThreadTask {
        Rng rng(seed * 131 + t.id());
        for (int i = 0; i < 10; ++i) {
            if (rng.range(2)) {
                bool w = rng.range(4) == 0;
                if (w)
                    co_await lib->rwWrLock(t, 0x1000);
                else
                    co_await lib->rwRdLock(t, 0x1000);
                sh->enter(w);
                co_await t.compute(rng.range(50));
                sh->leave(w);
                co_await lib->rwUnlock(t, 0x1000);
            } else {
                co_await lib->mutexLock(t, 0x5000);
                (*cs)++;
                *mx = std::max(*mx, *cs);
                co_await t.compute(rng.range(30));
                (*cs)--;
                co_await lib->mutexUnlock(t, 0x5000);
            }
        }
    };
    for (CoreId c = 0; c < 16; ++c)
        s.start(c, body(s.api(c), &lib, &sh, &mutex_cs, &mutex_max,
                        GetParam()));
    ASSERT_TRUE(s.run(100000000));
    EXPECT_FALSE(sh.violation);
    EXPECT_LE(mutex_max, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RwStressTest,
                         ::testing::Values(3u, 14u, 15u, 92u, 65u));

} // namespace
} // namespace sync
} // namespace misar
