/**
 * @file
 * Tests for the MSA/OMU accelerator: lock grant/handoff/fairness,
 * entry allocation and eviction, OMU steering and balance, barrier
 * and condition-variable protocols, pinning, the entry-less HWSync
 * silent re-acquire path, suspension, and the MSA-0 and Ideal
 * configurations.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/subtask.hh"
#include "cpu/thread_api.hh"
#include "system/system.hh"

namespace misar {
namespace msa {
namespace {

using cpu::SyncResult;
using cpu::ThreadApi;
using cpu::ThreadTask;
using cpu::toSyncResult;

SystemConfig
msaCfg(unsigned cores, unsigned entries, bool hwsync = true)
{
    SystemConfig cfg = makeConfig(cores, AccelMode::MsaOmu, entries);
    cfg.msa.hwSyncBitOpt = hwsync;
    return cfg;
}

/** Body: lock, record order, compute, unlock; all in hardware. */
ThreadTask
lockWorker(ThreadApi t, Addr lock, std::vector<CoreId> *order,
           std::vector<SyncResult> *results)
{
    SyncResult r = toSyncResult(co_await t.lockInstr(lock));
    if (results)
        results->push_back(r);
    if (r == SyncResult::Success) {
        order->push_back(t.id());
        co_await t.compute(50);
        co_await t.unlockInstr(lock);
    } else {
        order->push_back(t.id() + 1000); // mark software fallback
    }
}

TEST(MsaLock, SingleAcquireRelease)
{
    sys::System s(msaCfg(16, 2));
    std::vector<CoreId> order;
    std::vector<SyncResult> res;
    s.start(0, lockWorker(s.api(0), 0x1000, &order, &res));
    ASSERT_TRUE(s.run(1000000));
    ASSERT_EQ(res.size(), 1u);
    EXPECT_EQ(res[0], SyncResult::Success);
    EXPECT_EQ(order, (std::vector<CoreId>{0}));
}

TEST(MsaLock, MutualExclusionAndHandoff)
{
    sys::System s(msaCfg(16, 2));
    std::vector<CoreId> order;
    for (CoreId c = 0; c < 8; ++c)
        s.start(c, lockWorker(s.api(c), 0x1000, &order, nullptr));
    ASSERT_TRUE(s.run(10000000));
    EXPECT_EQ(order.size(), 8u);
    for (CoreId c : order)
        EXPECT_LT(c, 1000u) << "a lock request fell back to software";
}

TEST(MsaLock, EntryEvictedAfterRelease)
{
    // Without the HWSync optimization the entry frees when the
    // queue empties.
    sys::System s(msaCfg(16, 2, false));
    std::vector<CoreId> order;
    s.start(0, lockWorker(s.api(0), 0x1000, &order, nullptr));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(s.msaSlice(mem::homeTile(0x1000, 16)).validEntries(), 0u);
}

TEST(MsaLock, EntryEvictedButPrivilegeRetained)
{
    // With the HWSync optimization the entry is still evicted when
    // the queue empties; the silent privilege lives in the L1.
    sys::System s(msaCfg(16, 2, true));
    std::vector<CoreId> order;
    s.start(0, lockWorker(s.api(0), 0x1000, &order, nullptr));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(s.msaSlice(mem::homeTile(0x1000, 16)).validEntries(), 0u);
    EXPECT_TRUE(s.mem().l1(0).hasWritableHwSync(0x1000));
}

ThreadTask
nLocksWorker(ThreadApi t, std::vector<Addr> locks,
             std::vector<SyncResult> *results)
{
    for (Addr a : locks) {
        SyncResult r = toSyncResult(co_await t.lockInstr(a));
        results->push_back(r);
        if (r == SyncResult::Success)
            co_await t.unlockInstr(a);
        else
            co_await t.unlockInstr(a); // software pair: UNLOCK also FAILs
    }
}

TEST(MsaLock, OverflowFailsGracefully)
{
    // 1 entry per tile, 3 distinct locks homed on the same tile and
    // held concurrently: at most one can be in hardware.
    sys::System s(msaCfg(16, 1, false));
    const Addr l0 = 0x0, l1 = 16 * 64, l2 = 2 * 16 * 64; // same home (0)
    std::vector<SyncResult> r0, r1, r2;

    // Three different cores each take a different lock and hold it.
    auto holder = [](ThreadApi t, Addr a,
                     std::vector<SyncResult> *res) -> ThreadTask {
        SyncResult r = toSyncResult(co_await t.lockInstr(a));
        res->push_back(r);
        co_await t.compute(2000);
        co_await t.unlockInstr(a);
    };
    s.start(1, holder(s.api(1), l0, &r0));
    s.start(2, holder(s.api(2), l1, &r1));
    s.start(3, holder(s.api(3), l2, &r2));
    ASSERT_TRUE(s.run(1000000));
    unsigned hw = (r0[0] == SyncResult::Success) +
                  (r1[0] == SyncResult::Success) +
                  (r2[0] == SyncResult::Success);
    EXPECT_EQ(hw, 1u);
}

TEST(MsaOmu, FailIncrementsAndUnlockFailDecrements)
{
    sys::System s(msaCfg(16, 1, false));
    // Force overflow: core 1 holds lock A (hardware, home tile 0);
    // core 2 then locks B (same home) -> FAIL -> OMU count 1.
    const Addr a = 0x0, b = 16 * 64;
    std::vector<SyncResult> ra, rb;
    auto seq = [](ThreadApi t, Addr l, std::vector<SyncResult> *res,
                  Tick hold) -> ThreadTask {
        res->push_back(toSyncResult(co_await t.lockInstr(l)));
        co_await t.compute(hold);
        res->push_back(toSyncResult(co_await t.unlockInstr(l)));
    };
    s.start(1, seq(s.api(1), a, &ra, 3000));
    s.start(2, seq(s.api(2), b, &rb, 1000));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(ra[0], SyncResult::Success);
    EXPECT_EQ(rb[0], SyncResult::Fail);
    EXPECT_EQ(rb[1], SyncResult::Fail); // release defaults to software
    // Balanced in the end:
    EXPECT_EQ(s.msaSlice(0).omu().count(b), 0u);
}

TEST(MsaOmu, SoftwareActivityBlocksAllocation)
{
    // While a lock is software-active (counter > 0), a new request
    // for it must not get an MSA entry even if one is free.
    sys::System s(msaCfg(16, 1, false));
    const Addr a = 0x0, b = 16 * 64;
    std::vector<SyncResult> ra, rb, rc;
    auto hold_long = [](ThreadApi t, Addr l,
                        std::vector<SyncResult> *res) -> ThreadTask {
        res->push_back(toSyncResult(co_await t.lockInstr(l)));
        co_await t.compute(5000);
        res->push_back(toSyncResult(co_await t.unlockInstr(l)));
    };
    // Core 1: takes the only entry (lock a), holds 5000 cycles.
    s.start(1, hold_long(s.api(1), a, &ra));
    // Core 2: lock b -> FAIL (entry taken); holds "in software" by
    // simply not unlocking for a long time.
    auto sw_holder = [](ThreadApi t, Addr l,
                        std::vector<SyncResult> *res) -> ThreadTask {
        co_await t.compute(200); // let core 1 win the entry
        res->push_back(toSyncResult(co_await t.lockInstr(l)));
        co_await t.compute(20000);
        res->push_back(toSyncResult(co_await t.unlockInstr(l)));
    };
    s.start(2, sw_holder(s.api(2), b, &rb));
    // Core 3: after core 1 released (entry free), tries lock b. The
    // OMU must steer it to software even though an entry is free.
    auto late = [](ThreadApi t, Addr l,
                   std::vector<SyncResult> *res) -> ThreadTask {
        co_await t.compute(10000);
        res->push_back(toSyncResult(co_await t.lockInstr(l)));
        res->push_back(toSyncResult(co_await t.unlockInstr(l)));
    };
    s.start(3, late(s.api(3), b, &rc));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(rb[0], SyncResult::Fail);
    EXPECT_EQ(rc[0], SyncResult::Fail) << "OMU failed to steer to software";
}

TEST(MsaLock, NbtcFairnessRoundRobin)
{
    // All cores contend; with NBTC the grant order must cycle
    // round-robin rather than favour low-numbered cores.
    sys::System s(msaCfg(16, 2));
    std::vector<CoreId> order;
    for (CoreId c = 0; c < 16; ++c)
        s.start(c, lockWorker(s.api(c), 0x2000, &order, nullptr));
    ASSERT_TRUE(s.run(10000000));
    ASSERT_EQ(order.size(), 16u);
    // Each core appears exactly once.
    std::vector<bool> seen(16, false);
    for (CoreId c : order) {
        ASSERT_LT(c, 16u);
        EXPECT_FALSE(seen[c]);
        seen[c] = true;
    }
}

ThreadTask
barrierWorker(ThreadApi t, Addr bar, std::uint32_t goal, Tick skew,
              std::vector<SyncResult> *results, std::vector<Tick> *exits)
{
    co_await t.compute(skew);
    SyncResult r = toSyncResult(co_await t.barrierInstr(bar, goal));
    results->push_back(r);
    if (exits)
        exits->push_back(t.now());
}

TEST(MsaBarrier, ReleasesAllAtGoal)
{
    sys::System s(msaCfg(16, 2));
    std::vector<SyncResult> res;
    std::vector<Tick> exits;
    for (CoreId c = 0; c < 16; ++c)
        s.start(c, barrierWorker(s.api(c), 0x3000, 16, c * 37, &res,
                                 &exits));
    ASSERT_TRUE(s.run(10000000));
    ASSERT_EQ(res.size(), 16u);
    for (auto r : res)
        EXPECT_EQ(r, SyncResult::Success);
    // All exits happen after the last arrival (c=15, skew 555).
    for (Tick e : exits)
        EXPECT_GE(e, 15u * 37u);
    // Entry is gone after release.
    EXPECT_EQ(s.msaSlice(mem::homeTile(0x3000, 16)).validEntries(), 0u);
}

TEST(MsaBarrier, SubsetGoal)
{
    sys::System s(msaCfg(16, 2));
    std::vector<SyncResult> res;
    for (CoreId c = 0; c < 4; ++c)
        s.start(c, barrierWorker(s.api(c), 0x3000, 4, c, &res, nullptr));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(res.size(), 4u);
}

TEST(MsaBarrier, OverflowFailsAndFinishBalances)
{
    // Fill both entries of the barrier's home tile with held locks,
    // then run a barrier homed there: it must FAIL for every core.
    sys::System s(msaCfg(16, 1, false));
    const Addr lockA = 0x0;           // home 0
    const Addr bar = 16 * 64;         // home 0
    auto holder = [](ThreadApi t, Addr l) -> ThreadTask {
        co_await t.lockInstr(l);
        co_await t.compute(30000);
        co_await t.unlockInstr(l);
    };
    s.start(15, holder(s.api(15), lockA));

    std::vector<SyncResult> res;
    // Software-barrier emulation: on FAIL, each participant counts
    // arrival with an atomic and spins; then FINISHes.
    auto sw_barrier = [](ThreadApi t, Addr bar, Addr cnt,
                         std::uint32_t goal,
                         std::vector<SyncResult> *res) -> ThreadTask {
        co_await t.compute(100);
        SyncResult r = toSyncResult(co_await t.barrierInstr(bar, goal));
        res->push_back(r);
        if (r != SyncResult::Success) {
            co_await t.fetchAdd(cnt, 1);
            for (;;) {
                std::uint64_t v = co_await t.read(cnt);
                if (v >= goal)
                    break;
                co_await t.compute(20);
            }
            co_await t.finishInstr(bar);
        }
    };
    for (CoreId c = 0; c < 4; ++c)
        s.start(c, sw_barrier(s.api(c), bar, 0x9000, 4, &res));
    ASSERT_TRUE(s.run(10000000));
    ASSERT_EQ(res.size(), 4u);
    for (auto r : res)
        EXPECT_EQ(r, SyncResult::Fail);
    // FINISHes balanced the OMU.
    EXPECT_EQ(s.msaSlice(0).omu().count(bar), 0u);
}

TEST(MsaHwSync, SilentReacquire)
{
    sys::System s(msaCfg(16, 2, true));
    std::vector<SyncResult> res;
    auto relock = [](ThreadApi t, Addr l, int n,
                     std::vector<SyncResult> *res) -> ThreadTask {
        for (int i = 0; i < n; ++i) {
            res->push_back(toSyncResult(co_await t.lockInstr(l)));
            co_await t.compute(10);
            co_await t.unlockInstr(l);
            co_await t.compute(10);
        }
    };
    s.start(5, relock(s.api(5), 0x4000, 5, &res));
    ASSERT_TRUE(s.run(1000000));
    for (auto r : res)
        EXPECT_EQ(r, SyncResult::Success);
    // Re-acquires 2..5 must use the silent path.
    EXPECT_EQ(s.stats().counter("sync.silentLocks").value(), 4u);
}

TEST(MsaHwSync, SilentPathFasterThanRemote)
{
    // Measure one lock+unlock by the same core twice: the second
    // acquire (silent) must be much faster than the first.
    auto run_pair = [](bool hwsync) {
        sys::System s(msaCfg(16, 2, hwsync));
        std::vector<Tick> lat;
        auto body = [](ThreadApi t, Addr l,
                       std::vector<Tick> *lat) -> ThreadTask {
            for (int i = 0; i < 2; ++i) {
                Tick t0 = t.now();
                co_await t.lockInstr(l);
                lat->push_back(t.now() - t0);
                co_await t.unlockInstr(l);
                co_await t.compute(5);
            }
        };
        // Lock homed far from core 0 (tile 15).
        s.start(0, body(s.api(0), 15 * 64, &lat));
        s.run(1000000);
        return lat;
    };
    auto with = run_pair(true);
    auto without = run_pair(false);
    ASSERT_EQ(with.size(), 2u);
    EXPECT_LT(with[1] * 3, with[0]);        // silent ~local
    EXPECT_GT(without[1] * 3, without[0]);  // non-silent stays remote
}

TEST(MsaHwSync, GrantToOtherCoreStripsPrivilege)
{
    sys::System s(msaCfg(16, 2, true));
    std::vector<CoreId> order;
    auto first = [](ThreadApi t, Addr l,
                    std::vector<CoreId> *order) -> ThreadTask {
        co_await t.lockInstr(l);
        order->push_back(t.id());
        co_await t.compute(10);
        co_await t.unlockInstr(l);
        // Keep the block cached: the silent privilege exists now.
        co_await t.compute(5000);
    };
    auto second = [](ThreadApi t, Addr l,
                     std::vector<CoreId> *order) -> ThreadTask {
        co_await t.compute(1000); // after core 0 released
        SyncResult r = toSyncResult(co_await t.lockInstr(l));
        EXPECT_EQ(r, SyncResult::Success);
        order->push_back(t.id());
        co_await t.unlockInstr(l);
    };
    s.start(0, first(s.api(0), 0x4000, &order));
    s.start(1, second(s.api(1), 0x4000, &order));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(order, (std::vector<CoreId>{0, 1}));
    // Core 1's grant invalidated core 0's block: no silent re-acquire.
    EXPECT_FALSE(s.mem().l1(0).hasWritableHwSync(0x4000));
}

TEST(MsaHwSync, SilentThenContention)
{
    // Core 0 silently re-acquires and holds; core 1 requests: the
    // revoke must find the lock held and queue core 1 behind it.
    sys::System s(msaCfg(16, 2, true));
    std::vector<CoreId> order;
    auto holder = [](ThreadApi t, Addr l,
                     std::vector<CoreId> *order) -> ThreadTask {
        co_await t.lockInstr(l);
        co_await t.compute(10);
        co_await t.unlockInstr(l);
        co_await t.compute(10);
        co_await t.lockInstr(l); // silent
        order->push_back(t.id());
        co_await t.compute(3000);
        co_await t.unlockInstr(l);
    };
    auto contender = [](ThreadApi t, Addr l,
                        std::vector<CoreId> *order) -> ThreadTask {
        co_await t.compute(500); // while core 0 silently holds
        co_await t.lockInstr(l);
        order->push_back(t.id());
        co_await t.unlockInstr(l);
    };
    s.start(0, holder(s.api(0), 0x4000, &order));
    s.start(1, contender(s.api(1), 0x4000, &order));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(order, (std::vector<CoreId>{0, 1}));
}

TEST(MsaHwSync, EntryFreedForNewAddressWhilePrivilegeLives)
{
    // One entry; lock A frees its entry on unlock (privilege stays in
    // the L1), so lock B (same home) can use the entry in hardware,
    // and A can still be silently re-acquired afterwards.
    sys::System s(msaCfg(16, 1, true));
    const Addr a = 0x0, b = 16 * 64;
    std::vector<SyncResult> res;
    auto seq = [](ThreadApi t, Addr a, Addr b,
                  std::vector<SyncResult> *res) -> ThreadTask {
        res->push_back(toSyncResult(co_await t.lockInstr(a)));
        co_await t.unlockInstr(a);
        co_await t.compute(100);
        res->push_back(toSyncResult(co_await t.lockInstr(b)));
        co_await t.unlockInstr(b);
        res->push_back(toSyncResult(co_await t.lockInstr(a))); // silent
        co_await t.unlockInstr(a);
    };
    s.start(3, seq(s.api(3), a, b, &res));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(res[0], SyncResult::Success);
    EXPECT_EQ(res[1], SyncResult::Success);
    EXPECT_EQ(res[2], SyncResult::Success);
    EXPECT_GT(s.stats().counter("sync.silentLocks").value(), 0u);
}

// --- Condition variables -------------------------------------------------

ThreadTask
condWaiter(ThreadApi t, Addr cond, Addr lock, std::vector<int> *log,
           std::vector<SyncResult> *res)
{
    SyncResult r = toSyncResult(co_await t.lockInstr(lock));
    EXPECT_EQ(r, SyncResult::Success);
    r = toSyncResult(co_await t.condWaitInstr(cond, lock));
    res->push_back(r);
    if (r == SyncResult::Success) {
        log->push_back(100 + static_cast<int>(t.id()));
        co_await t.unlockInstr(lock);
    }
}

ThreadTask
condSignaler(ThreadApi t, Addr cond, Tick delay, bool bcast,
             std::vector<SyncResult> *res)
{
    co_await t.compute(delay);
    // Note: co_await inside a conditional expression miscompiles on
    // GCC 12 (both branches issue); keep the branches separate.
    SyncResult r;
    if (bcast)
        r = toSyncResult(co_await t.condBcastInstr(cond));
    else
        r = toSyncResult(co_await t.condSignalInstr(cond));
    res->push_back(r);
}

TEST(MsaCond, WaitAndSignal)
{
    sys::System s(msaCfg(16, 2));
    std::vector<int> log;
    std::vector<SyncResult> wres, sres;
    s.start(1, condWaiter(s.api(1), 0x5000, 0x6000, &log, &wres));
    s.start(2, condSignaler(s.api(2), 0x5000, 2000, false, &sres));
    ASSERT_TRUE(s.run(1000000));
    ASSERT_EQ(wres.size(), 1u);
    EXPECT_EQ(wres[0], SyncResult::Success);
    EXPECT_EQ(sres[0], SyncResult::Success);
    EXPECT_EQ(log, (std::vector<int>{101}));
}

TEST(MsaCond, BroadcastWakesAll)
{
    sys::System s(msaCfg(16, 4));
    std::vector<int> log;
    std::vector<SyncResult> wres, sres;
    for (CoreId c = 1; c <= 5; ++c)
        s.start(c, condWaiter(s.api(c), 0x5000, 0x6000, &log, &wres));
    s.start(10, condSignaler(s.api(10), 0x5000, 5000, true, &sres));
    ASSERT_TRUE(s.run(10000000));
    ASSERT_EQ(wres.size(), 5u);
    for (auto r : wres)
        EXPECT_EQ(r, SyncResult::Success);
    EXPECT_EQ(log.size(), 5u);
}

TEST(MsaCond, SignalWithNoWaitersFails)
{
    sys::System s(msaCfg(16, 2));
    std::vector<SyncResult> sres;
    s.start(0, condSignaler(s.api(0), 0x5000, 10, false, &sres));
    ASSERT_TRUE(s.run(100000));
    EXPECT_EQ(sres[0], SyncResult::Fail);
}

TEST(MsaCond, LockEntryPinnedWhileWaiting)
{
    sys::System s(msaCfg(16, 4));
    std::vector<int> log;
    std::vector<SyncResult> wres, sres;
    s.start(1, condWaiter(s.api(1), 0x5000, 0x6000, &log, &wres));
    // While the waiter sits on the cond var, the lock entry must
    // stay allocated (pinned) even though its queue is empty.
    s.start(2, condSignaler(s.api(2), 0x5000, 8000, false, &sres));
    s.eventQueue().runUntil(4000);
    const MsaSlice &lock_home = s.msaSlice(mem::homeTile(0x6000, 16));
    const MsaEntry *e = lock_home.findEntry(0x6000);
    ASSERT_NE(e, nullptr);
    EXPECT_GT(e->pinCount, 0u);
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(wres[0], SyncResult::Success);
}

TEST(MsaCond, CondFailsWhenLockInSoftware)
{
    // Lock held in software (entry miss + OMU active): COND_WAIT
    // must FAIL (cond handled in hardware only if lock is).
    sys::System s(msaCfg(16, 1, false));
    const Addr lockA = 0x0, lockB = 16 * 64, cond = 0x5000;
    std::vector<SyncResult> res;
    auto blocker = [](ThreadApi t, Addr l) -> ThreadTask {
        co_await t.lockInstr(l); // takes the only entry at home 0
        co_await t.compute(30000);
        co_await t.unlockInstr(l);
    };
    auto sw_then_wait = [](ThreadApi t, Addr l, Addr cond,
                           std::vector<SyncResult> *res) -> ThreadTask {
        co_await t.compute(200);
        SyncResult r = toSyncResult(co_await t.lockInstr(l));
        res->push_back(r); // FAIL: lock in software
        r = toSyncResult(co_await t.condWaitInstr(cond, l));
        res->push_back(r); // must FAIL: its lock is software-held
        // Software-side cleanup: release the "software" lock.
        co_await t.finishInstr(cond);
        co_await t.unlockInstr(l);
    };
    s.start(1, blocker(s.api(1), lockA));
    s.start(2, sw_then_wait(s.api(2), lockB, cond, &res));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(res[0], SyncResult::Fail);
    EXPECT_EQ(res[1], SyncResult::Fail);
}

// --- Suspension ----------------------------------------------------------

TEST(MsaSuspend, LockWaiterRequeues)
{
    sys::System s(msaCfg(16, 2));
    std::vector<CoreId> order;
    auto holder = [](ThreadApi t, Addr l,
                     std::vector<CoreId> *order) -> ThreadTask {
        co_await t.lockInstr(l);
        order->push_back(t.id());
        co_await t.compute(4000);
        co_await t.unlockInstr(l);
    };
    s.start(0, holder(s.api(0), 0x7000, &order));
    s.start(1, lockWorker(s.api(1), 0x7000, &order, nullptr));
    // Interrupt core 1 while it waits for the lock.
    s.eventQueue().schedule(1000, [&] { s.core(1).interrupt(); });
    ASSERT_TRUE(s.run(1000000));
    // Core 1 still eventually gets the lock in hardware (re-executed).
    EXPECT_EQ(order, (std::vector<CoreId>{0, 1}));
    EXPECT_EQ(s.stats().counter("sync.suspends").value(), 1u);
}

TEST(MsaSuspend, BarrierForcedToSoftware)
{
    sys::System s(msaCfg(16, 2));
    std::vector<SyncResult> res;
    const Addr bar = 0x8000, cnt = 0x8100;
    auto sw_barrier = [](ThreadApi t, Addr bar, Addr cnt,
                         std::uint32_t goal, Tick skew,
                         std::vector<SyncResult> *res) -> ThreadTask {
        co_await t.compute(skew);
        SyncResult r = toSyncResult(co_await t.barrierInstr(bar, goal));
        res->push_back(r);
        if (r != SyncResult::Success) {
            co_await t.fetchAdd(cnt, 1);
            for (;;) {
                std::uint64_t v = co_await t.read(cnt);
                if (v >= goal)
                    break;
                co_await t.compute(20);
            }
            co_await t.finishInstr(bar);
        }
    };
    for (CoreId c = 0; c < 4; ++c)
        s.start(c, sw_barrier(s.api(c), bar, cnt, 4, c * 10, &res));
    // Interrupt core 2 while it waits at the barrier (core 3 has not
    // arrived yet at tick 15).
    s.eventQueue().schedule(26, [&] { s.core(2).interrupt(); });
    ASSERT_TRUE(s.run(10000000));
    ASSERT_EQ(res.size(), 4u);
    unsigned aborts = 0;
    for (auto r : res)
        aborts += (r != SyncResult::Success);
    EXPECT_GT(aborts, 0u);
    EXPECT_EQ(s.msaSlice(mem::homeTile(bar, 16)).omu().count(bar), 0u);
}

// --- Alternative configurations ------------------------------------------

TEST(MsaModes, Msa0AlwaysFails)
{
    sys::System s(makeConfig(16, AccelMode::None));
    std::vector<SyncResult> res;
    s.start(0, nLocksWorker(s.api(0), {0x100, 0x200}, &res));
    ASSERT_TRUE(s.run(100000));
    for (auto r : res)
        EXPECT_EQ(r, SyncResult::Fail);
}

TEST(MsaModes, InfiniteNeverFails)
{
    sys::System s(makeConfig(16, AccelMode::MsaInfinite));
    std::vector<SyncResult> res;
    std::vector<Addr> locks;
    for (int i = 0; i < 40; ++i)
        locks.push_back(0x10000 + static_cast<Addr>(i) * 8);
    s.start(0, nLocksWorker(s.api(0), locks, &res));
    ASSERT_TRUE(s.run(10000000));
    for (auto r : res)
        EXPECT_EQ(r, SyncResult::Success);
}

TEST(MsaModes, IdealLockBarrierCond)
{
    sys::System s(makeConfig(16, AccelMode::Ideal));
    std::vector<CoreId> order;
    std::vector<SyncResult> bres;
    for (CoreId c = 0; c < 8; ++c)
        s.start(c, lockWorker(s.api(c), 0x1000, &order, nullptr));
    for (CoreId c = 8; c < 12; ++c)
        s.start(c, barrierWorker(s.api(c), 0x2000, 4, c, &bres, nullptr));
    ASSERT_TRUE(s.run(10000000));
    EXPECT_EQ(order.size(), 8u);
    EXPECT_EQ(bres.size(), 4u);
    for (auto r : bres)
        EXPECT_EQ(r, SyncResult::Success);
}

TEST(MsaModes, LockOnlySupportFailsBarriers)
{
    SystemConfig cfg = msaCfg(16, 2);
    cfg.msa.support.barriers = false;
    cfg.msa.support.condVars = false;
    sys::System s(cfg);
    std::vector<SyncResult> res;
    const Addr bar = 0x3000, cnt = 0x3100;
    auto sw_barrier = [](ThreadApi t, Addr bar, Addr cnt,
                         std::uint32_t goal,
                         std::vector<SyncResult> *res) -> ThreadTask {
        SyncResult r = toSyncResult(co_await t.barrierInstr(bar, goal));
        res->push_back(r);
        if (r != SyncResult::Success) {
            co_await t.fetchAdd(cnt, 1);
            for (;;) {
                std::uint64_t v = co_await t.read(cnt);
                if (v >= goal)
                    break;
                co_await t.compute(20);
            }
            co_await t.finishInstr(bar);
        }
    };
    for (CoreId c = 0; c < 4; ++c)
        s.start(c, sw_barrier(s.api(c), bar, cnt, 4, &res));
    ASSERT_TRUE(s.run(10000000));
    for (auto r : res)
        EXPECT_EQ(r, SyncResult::Fail);
    // Locks still work in hardware.
    std::vector<CoreId> order;
    s.start(5, lockWorker(s.api(5), 0x9000, &order, nullptr));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(order, (std::vector<CoreId>{5}));
}

TEST(MsaCoverage, CountersTrackHwAndSw)
{
    sys::System s(msaCfg(16, 2));
    std::vector<CoreId> order;
    s.start(0, lockWorker(s.api(0), 0x1000, &order, nullptr));
    ASSERT_TRUE(s.run(1000000));
    EXPECT_EQ(s.stats().counter("sync.hwOps").value(), 2u); // lock+unlock
    EXPECT_EQ(s.stats().counter("sync.swOps").value(), 0u);
    EXPECT_DOUBLE_EQ(s.hwCoverage(), 1.0);
}

} // namespace
} // namespace msa
} // namespace misar
