/**
 * @file
 * Figure 9 reproduction: 64-core speedup when the MSA supports only
 * locks or only barriers, versus the full MSA/OMU-2, for the
 * headline applications plus the suite GeoMean. Paper shape:
 * barrier-intensive apps (ocean, ocean-nc, streamcluster) lose their
 * speedup under MSA-LockOnly; lock-intensive apps (radiosity,
 * fluidanimate) lose it under MSA-BarrierOnly.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;
using namespace misar::workload;

namespace {

RunResult
runWithSupport(const AppSpec &spec, unsigned cores, bool locks,
               bool barriers, bool conds)
{
    SystemConfig cfg = makeConfig(cores, AccelMode::MsaOmu, 2);
    cfg.msa.support.locks = locks;
    cfg.msa.support.barriers = barriers;
    cfg.msa.support.condVars = conds;
    return runAppWithConfig(spec, cfg, sync::SyncLib::Flavor::Hw);
}

} // namespace

int
main()
{
    setVerbose(false);
    bench::banner("Figure 9",
                  "64-core speedup: lock-only vs barrier-only MSA");

    const unsigned cores = 64;
    std::printf("%-14s %12s %14s %16s\n", "App", "MSA/OMU-2",
                "MSA-LockOnly", "MSA-BarrierOnly");

    std::vector<double> sp_full, sp_lock, sp_barrier;
    const auto &headline = headlineApps();
    auto is_headline = [&](const std::string &n) {
        for (const auto &h : headline)
            if (h == n)
                return true;
        return false;
    };

    for (const AppSpec &spec : appCatalog()) {
        RunResult base = runApp(spec, cores, sys::PaperConfig::Baseline);
        RunResult full = runWithSupport(spec, cores, true, true, true);
        RunResult lock_only = runWithSupport(spec, cores, true, false,
                                             false);
        RunResult barrier_only = runWithSupport(spec, cores, false, true,
                                                false);
        double b = static_cast<double>(base.makespan);
        sp_full.push_back(b / full.makespan);
        sp_lock.push_back(b / lock_only.makespan);
        sp_barrier.push_back(b / barrier_only.makespan);
        if (is_headline(spec.name)) {
            std::printf("%-14s %11.2fx %13.2fx %15.2fx\n",
                        spec.name.c_str(), b / full.makespan,
                        b / lock_only.makespan, b / barrier_only.makespan);
        }
    }
    std::printf("%-14s %11.2fx %13.2fx %15.2fx\n", "GeoMean",
                bench::geoMean(sp_full), bench::geoMean(sp_lock),
                bench::geoMean(sp_barrier));

    std::printf("\nPaper shape check: streamcluster/ocean speedups "
                "vanish with MSA-LockOnly;\nradiosity/fluidanimate "
                "speedups vanish with MSA-BarrierOnly.\n");
    return 0;
}
