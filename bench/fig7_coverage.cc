/**
 * @file
 * Figure 7 reproduction: percentage of synchronization operations
 * handled by the MSA, with and without the OMU, for 1- and 2-entry
 * MSAs on 16- and 64-core systems, averaged across all 26 workloads.
 * Paper headline: 64-core MSA-2 coverage is 93% with the OMU vs 56%
 * without.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;
using namespace misar::workload;

namespace {

double
meanCoverage(unsigned cores, unsigned entries, bool omu)
{
    double sum = 0.0;
    unsigned n = 0;
    for (const AppSpec &spec : appCatalog()) {
        SystemConfig cfg = makeConfig(cores, AccelMode::MsaOmu, entries);
        cfg.msa.omuEnabled = omu;
        RunResult r = runAppWithConfig(spec, cfg,
                                       sync::SyncLib::Flavor::Hw);
        if (!r.finished)
            fatal("%s did not finish (entries=%u omu=%d)",
                  spec.name.c_str(), entries, omu);
        if (r.hwOps + r.swOps == 0)
            continue; // pure-compute workload: no sync ops to cover
        sum += r.hwCoverage;
        ++n;
    }
    return n ? 100.0 * sum / n : 0.0;
}

} // namespace

int
main()
{
    setVerbose(false);
    bench::banner("Figure 7",
                  "Coverage of synchronization operations (%)");

    std::printf("%-10s %-8s %12s %12s\n", "MSA size", "Cores",
                "Without OMU", "With OMU");
    for (unsigned entries : {1u, 2u}) {
        for (unsigned cores : {16u, 64u}) {
            double without = meanCoverage(cores, entries, false);
            double with = meanCoverage(cores, entries, true);
            std::printf("MSA-%-6u %-8u %11.1f%% %11.1f%%\n", entries,
                        cores, without, with);
        }
    }
    std::printf("\nPaper shape check: with-OMU coverage far above "
                "without-OMU (64-core MSA-2: 93%% vs 56%%).\n");
    return 0;
}
