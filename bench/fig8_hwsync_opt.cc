/**
 * @file
 * Figure 8 reproduction: effect of the HWSync-bit optimization on
 * fluidanimate (speedup vs the pthread baseline, with and without
 * the optimization, on 16 and 64 cores). Paper shape: without the
 * optimization the 64-core run is a slowdown; with it, a speedup
 * that grows with core count.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;
using namespace misar::workload;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 8",
                  "Effect of HWSync-bit optimization on fluidanimate");

    const AppSpec &spec = appByName("fluidanimate");
    const std::uint64_t seeds[] = {1, 7, 1234};
    std::printf("%-8s %18s %18s %18s\n", "Cores", "WithOptimization",
                "WithoutOptimization", "SilentLockRate");
    for (unsigned cores : {16u, 64u}) {
        double sp_with = 0, sp_without = 0, silent_rate = 0;
        for (std::uint64_t seed : seeds) {
            RunResult base =
                runApp(spec, cores, sys::PaperConfig::Baseline, seed);

            SystemConfig with_cfg = makeConfig(cores, AccelMode::MsaOmu,
                                               2);
            with_cfg.msa.hwSyncBitOpt = true;
            RunResult with = runAppWithConfig(
                spec, with_cfg, sync::SyncLib::Flavor::Hw, seed);

            SystemConfig wo_cfg = with_cfg;
            wo_cfg.msa.hwSyncBitOpt = false;
            RunResult without = runAppWithConfig(
                spec, wo_cfg, sync::SyncLib::Flavor::Hw, seed);

            sp_with += static_cast<double>(base.makespan) / with.makespan;
            sp_without +=
                static_cast<double>(base.makespan) / without.makespan;
            if (with.hwOps + with.swOps) {
                silent_rate +=
                    static_cast<double>(with.silentLocks) /
                    (static_cast<double>(with.hwOps + with.swOps) / 2.0);
            }
        }
        const double n = static_cast<double>(std::size(seeds));
        std::printf("%-8u %17.2fx %17.2fx %17.0f%%\n", cores,
                    sp_with / n, sp_without / n,
                    100.0 * silent_rate / n);
    }
    std::printf("\nPaper shape check: WithOptimization > 1 and rising "
                "with cores; WithoutOptimization\ndegrades toward (or "
                "below) 1 at 64 cores; ~90%% of lock acquires are "
                "silent.\n");
    return 0;
}
