/**
 * @file
 * Resilience degradation study: how much of the MSA/OMU-2 speedup
 * survives a hostile fault campaign (message drops, duplicates and
 * delays on every MSA message, plus tile 0's slice decommissioned
 * mid-run). The headline applications run under the pthread
 * baseline, MSA-0, clean MSA/OMU-2, and the faulted MSA/OMU-2
 * preset; the faulted column must retain a speedup at least as good
 * as MSA-0 (degraded, never worse than having no accelerator state
 * to lose).
 *
 * The sweep is described by bench/campaigns/resil.json and executed
 * through the campaign engine's in-process path (the same spec runs
 * in parallel under misar_campaign). The faulted runs are stochastic,
 * so the spec gives the faulted preset — and the baseline it is
 * ratioed against — three seeds each; the aggregator matches each
 * faulted run to the baseline run with the same seed.
 *
 * The faulted runs also feed the observability layer: their
 * resilience counters (timeouts, retries, aborted ops, offline
 * sheds, crossed snoops) are tabulated per app, and with
 * MISAR_RESIL_REPORT=DIR set in the environment each faulted run
 * writes its machine-readable JSON run report into DIR.
 *
 * A second section measures mesh degradation: each headline app runs
 * on a healthy mesh, with the NI reliable-delivery layer armed but
 * no faults (its fault-free cost), with one link killed mid-run
 * (rerouted, must still finish), and with one router killed mid-run.
 * The router row is reported honestly: killing a router strands its
 * tile's threads and home-directory data, so those runs end in a
 * partition outcome rather than "finished" — the gate is that the
 * outcome is detected and attributed, not hidden.
 *
 * A third section measures dead-participant degradation: each app
 * runs clean, with one core killed early (barrier reconfiguration),
 * with one core killed in steady state (lease-expiry lock
 * revocation), and with tile 0's MSA slice failed over to its buddy.
 * Every row must finish — losing a participant costs cycles, never
 * the run.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "orch/aggregate.hh"
#include "orch/campaign_spec.hh"
#include "orch/engine.hh"
#include "sim/logging.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;
using namespace misar::workload;
using namespace misar::orch;

namespace {

/** Degraded-mesh variants of the clean MSA/OMU-2 configuration. */
enum class MeshVariant
{
    Clean,     ///< healthy mesh, reliable delivery off
    Reliable,  ///< healthy mesh, NI end-to-end layer armed
    OneLink,   ///< link 0-1 killed mid-run (reroute + retransmit)
    OneRouter, ///< router 5 killed mid-run (tile stranded)
};

SystemConfig
meshVariantConfig(MeshVariant v, unsigned cores)
{
    SystemConfig cfg = makeConfig(cores, AccelMode::MsaOmu, 2);
    if (v != MeshVariant::Clean)
        cfg.noc.reliable = true;
    if (v == MeshVariant::OneLink)
        cfg.resil.linkKills.push_back({0, 1, 30000});
    if (v == MeshVariant::OneRouter)
        cfg.resil.routerKills.push_back({5, 30000});
    cfg.validate();
    return cfg;
}

/**
 * Degraded-mesh section. Returns false when a gating row misbehaves:
 * clean/reliable/1-link must finish, the reliable layer's fault-free
 * makespan overhead must stay within 2% in geomean (individual apps
 * are chaotic — a shifted ack can swing a lock race either way — so
 * per-app the bound is 5%), and the 1-router run must be
 * *classified* (finished or a detected partition, never a silent
 * tick-limit runaway with no shed).
 */
bool
degradedMeshSection(unsigned cores)
{
    std::printf("\nDegraded-mesh rows (MSA/OMU-2, %u cores; makespans "
                "in cycles):\n", cores);
    std::printf("%-14s %9s %9s %7s %9s %8s %9s %8s\n", "App", "Clean",
                "Reliable", "RelOvh", "1-Link", "Retx", "Detours",
                "1-Router");
    bool ok = true;
    std::vector<double> ovh_ratios;
    for (const std::string &app : headlineApps()) {
        const AppSpec &spec = appByName(app);
        RunOptions opts;
        opts.tickLimit = 100000000ULL;

        RunResult rr[3];
        const MeshVariant vs[3] = {MeshVariant::Clean,
                                   MeshVariant::Reliable,
                                   MeshVariant::OneLink};
        for (int i = 0; i < 3; ++i) {
            rr[i] = runAppWithConfig(spec, meshVariantConfig(vs[i], cores),
                                     sync::SyncLib::Flavor::Hw, 1, app,
                                     opts);
            if (!rr[i].finished)
                ok = false;
        }
        const double ratio =
            rr[0].makespan ? static_cast<double>(rr[1].makespan) /
                                 static_cast<double>(rr[0].makespan)
                           : 1.0;
        const double ovh = 100.0 * (ratio - 1.0);
        ovh_ratios.push_back(ratio);
        if (ovh > 5.0)
            ok = false; // per-app outlier: a real regression

        // The stranded-tile row: honest outcome, never a fatal.
        RunResult rt = runAppWithConfig(
            spec, meshVariantConfig(MeshVariant::OneRouter, cores),
            sync::SyncLib::Flavor::Hw, 1, app, opts);
        const char *router_outcome =
            rt.finished ? "finished"
                        : (rt.partitionSheds ? "partition" : "UNSHED");
        if (!rt.finished && !rt.partitionSheds)
            ok = false;

        std::printf("%-14s %9llu %9llu %6.2f%% %9llu %8llu %9llu %8s\n",
                    app.c_str(),
                    static_cast<unsigned long long>(rr[0].makespan),
                    static_cast<unsigned long long>(rr[1].makespan), ovh,
                    static_cast<unsigned long long>(rr[2].makespan),
                    static_cast<unsigned long long>(rr[2].nocRetransmits),
                    static_cast<unsigned long long>(rr[2].detourHops),
                    router_outcome);
    }
    const double geo_ovh = 100.0 * (bench::geoMean(ovh_ratios) - 1.0);
    std::printf("%-14s %9s %9s %6.2f%%\n", "GeoMean", "-", "-", geo_ovh);
    if (geo_ovh > 2.0)
        ok = false; // aggregate fault-free cost of the e2e layer
    std::printf("(Reliable = healthy mesh with the NI end-to-end layer "
                "on; RelOvh is its\nfault-free makespan cost — gated at "
                "2%% in geomean, 5%% per app. 1-Link\nkills link 0-1 at "
                "tick 30000 and must still finish. 1-Router kills "
                "router 5:\nits tile is stranded, so \"partition\" — "
                "detected, slice shed, attributed —\nis the expected "
                "outcome.)\n");
    return ok;
}

/** Dead-participant variants of the clean MSA/OMU-2 configuration. */
enum class CoreVariant
{
    Clean,           ///< every participant lives
    OneCore,         ///< core 5 killed early (tick 5000), likely
                     ///< computing: barrier reconfiguration path
    CoreHoldingLock, ///< core 5 killed in steady state (tick 25000),
                     ///< often mid-lock/mid-barrier: lease revocation
    SliceFailover,   ///< tile 0's slice re-homes to tile 1 mid-run
};

SystemConfig
coreVariantConfig(CoreVariant v, unsigned cores)
{
    SystemConfig cfg = makeConfig(cores, AccelMode::MsaOmu, 2);
    if (v == CoreVariant::OneCore || v == CoreVariant::CoreHoldingLock) {
        cfg.resil.coreKills.push_back(
            {5, v == CoreVariant::OneCore ? Tick(5000) : Tick(25000)});
        cfg.resil.leaseTicks = 4000;
        cfg.resil.leaseProbeTimeout = 1500;
        cfg.resil.coreDetectDelay = 6000;
        cfg.resil.timeoutTicks = 1000;
        cfg.resil.maxRetries = 8;
    }
    if (v == CoreVariant::SliceFailover) {
        cfg.resil.offlineTile = 0;
        cfg.resil.offlineAtTick = 30000;
        cfg.resil.failoverBuddy = 1;
    }
    cfg.validate();
    return cfg;
}

/**
 * Dead-participant section. Gating rules: every row must FINISH —
 * a corpse must cost latency, never the run. Both kill rows must
 * show barrier reconfiguration work (the declaration always strikes
 * the corpse from every slice's membership), and the failover row
 * must actually fail over (one handoff applied at the buddy).
 * Revocations are reported, not gated per app: whether the victim
 * holds a hardware lock at the kill tick is workload-dependent.
 */
bool
deadCoreSection(unsigned cores)
{
    std::printf("\nDead-participant rows (MSA/OMU-2, %u cores; "
                "makespans in cycles):\n", cores);
    std::printf("%-14s %9s %9s %10s %6s %7s %9s %8s\n", "App", "Clean",
                "1-Core", "Core+Lock", "Revoc", "Reconf", "Failover",
                "Rehomed");
    bool ok = true;
    bool any_revocation = false;
    const std::vector<std::string> capture = {
        "tile0.msa.failovers", "tile1.msa.handoffsApplied"};
    for (const std::string &app : headlineApps()) {
        const AppSpec &spec = appByName(app);
        RunOptions opts;
        opts.tickLimit = 100000000ULL;
        opts.captureCounters = &capture;

        RunResult rr[4];
        const CoreVariant vs[4] = {CoreVariant::Clean,
                                   CoreVariant::OneCore,
                                   CoreVariant::CoreHoldingLock,
                                   CoreVariant::SliceFailover};
        for (int i = 0; i < 4; ++i) {
            rr[i] = runAppWithConfig(spec,
                                     coreVariantConfig(vs[i], cores),
                                     sync::SyncLib::Flavor::Hw, 1, app,
                                     opts);
            if (!rr[i].finished)
                ok = false;
        }
        // Both kill rows: exactly one corpse, struck from membership.
        for (int i = 1; i <= 2; ++i)
            if (rr[i].coreKills != 1 || rr[i].barrierReconfigs == 0)
                ok = false;
        any_revocation |= rr[2].lockRevocations > 0;
        // The failover row: the slice moved, nothing was shed.
        if (rr[3].captured.at("tile0.msa.failovers") != 1 ||
            rr[3].captured.at("tile1.msa.handoffsApplied") != 1)
            ok = false;

        std::printf("%-14s %9llu %9llu %10llu %6llu %7llu %9llu "
                    "%8llu\n",
                    app.c_str(),
                    static_cast<unsigned long long>(rr[0].makespan),
                    static_cast<unsigned long long>(rr[1].makespan),
                    static_cast<unsigned long long>(rr[2].makespan),
                    static_cast<unsigned long long>(
                        rr[2].lockRevocations),
                    static_cast<unsigned long long>(
                        rr[2].barrierReconfigs),
                    static_cast<unsigned long long>(rr[3].makespan),
                    static_cast<unsigned long long>(rr[3].rehomedVars));
    }
    // Steady-state kills must orphan a hardware lock somewhere in the
    // suite — otherwise the revocation column proves nothing.
    if (!any_revocation)
        ok = false;
    std::printf("(1-Core kills core 5 at tick 5000, Core+Lock at "
                "25000 — both must finish\nwith the corpse struck "
                "from barrier membership; Revoc counts lease-expiry\n"
                "lock revocations in the Core+Lock run. Failover "
                "re-homes tile 0's slice\nstate to tile 1 at 30000; "
                "Rehomed counts transferred live entries.)\n");
    return ok;
}

} // namespace

int
main()
{
    setVerbose(false);
    bench::banner("Resilience degradation",
                  "MSA/OMU-2 speedup retained under the fault campaign");

    const char *dir = std::getenv("MISAR_CAMPAIGN_SPEC_DIR");
    const std::string spec_path =
        std::string(dir ? dir : MISAR_CAMPAIGN_SPEC_DIR) + "/resil.json";
    CampaignSpec spec;
    std::string err;
    if (!CampaignSpec::parseFile(spec_path, spec, err))
        fatal("%s: %s", spec_path.c_str(), err.c_str());
    err = spec.validate();
    if (!err.empty())
        fatal("%s: %s", spec_path.c_str(), err.c_str());

    const char *faulted = "MSA/OMU-2+faults";
    const char *columns[3] = {"MSA-0", "MSA/OMU-2", faulted};

    // With MISAR_RESIL_REPORT=DIR each faulted run leaves its JSON
    // run report in DIR (exercises the obs::writeRunReport path).
    const char *report_dir = std::getenv("MISAR_RESIL_REPORT");
    InProcessHooks hooks;
    if (report_dir)
        hooks.tweak = [&](const JobSpec &j, SystemConfig &cfg) {
            if (j.preset.config == "msa-omu-faults" && j.seed == 1)
                cfg.obs.statsJsonPath = std::string(report_dir) + "/" +
                                        j.app + "_" +
                                        std::to_string(j.cores) +
                                        ".json";
        };

    const std::vector<JobRecord> records =
        runCampaignInProcess(spec, hooks);
    const CampaignReport report(spec, records);

    std::printf("%-14s %-6s %9s %10s %10s %10s %9s\n", "App", "Cores",
                "BaseCyc", "MSA-0", "MSA/OMU-2", "+faults", "Retained");

    // speedups[config][cores] for the GeoMean rows.
    std::vector<double> speedups[3][2];
    bool all_retained = true;

    // Per-app resilience totals accumulated over the faulted runs,
    // straight from the job records' observability fields.
    struct ResilRow
    {
        std::string app;
        unsigned cores = 0;
        std::uint64_t timeouts = 0, retries = 0, aborted = 0;
        std::uint64_t sheds = 0, snoops = 0;
    };
    std::vector<ResilRow> resil_rows;

    const auto &headline = headlineApps();
    for (const AppSpec &aspec : appCatalog()) {
        bool is_headline = false;
        for (const auto &h : headline)
            is_headline |= (h == aspec.name);
        if (!is_headline)
            continue;
        for (std::size_t ni = 0; ni < spec.cores.size(); ++ni) {
            const unsigned cores = spec.cores[ni];
            const Cell *base = report.cell(spec.baseline, aspec.name,
                                           cores);
            if (!base || base->recs.empty() ||
                base->recs[0]->outcome != JobOutcome::Finished)
                fatal("baseline run of %s did not finish",
                      aspec.name.c_str());
            std::printf("%-14s %-6u %9llu", aspec.name.c_str(), cores,
                        static_cast<unsigned long long>(
                            base->recs[0]->makespan));
            double sp[3] = {0, 0, 0};
            for (unsigned ci = 0; ci < 3; ++ci) {
                const Cell *cell = report.cell(columns[ci], aspec.name,
                                               cores);
                if (cell)
                    for (const JobRecord *r : cell->recs)
                        if (r->outcome != JobOutcome::Finished)
                            fatal("%s on %s (seed %llu) did not finish",
                                  aspec.name.c_str(), columns[ci],
                                  static_cast<unsigned long long>(
                                      r->job.seed));
                const std::vector<double> per_seed = report.speedups(
                    columns[ci], aspec.name, cores);
                if (per_seed.empty())
                    fatal("%s on %s did not finish", aspec.name.c_str(),
                          columns[ci]);
                sp[ci] = bench::geoMean(per_seed);
                speedups[ci][ni].push_back(sp[ci]);
                std::printf(" %10.2f", sp[ci]);
            }
            const Cell *fcell = report.cell(faulted, aspec.name, cores);
            ResilRow row;
            row.app = aspec.name;
            row.cores = cores;
            for (const JobRecord *r : fcell->recs) {
                row.timeouts += r->timeouts;
                row.retries += r->retries;
                row.aborted += r->abortedOps;
                row.sheds += r->offlineSheds;
                row.snoops += r->crossedSnoops;
            }
            resil_rows.push_back(row);
            // Fraction of the clean MSA/OMU-2 speedup the faulted
            // configuration keeps.
            std::printf(" %8.0f%%", 100.0 * sp[2] / sp[1]);
            if (sp[2] < sp[0]) {
                std::printf("  [below MSA-0]");
                all_retained = false;
            }
            std::printf("\n");
        }
    }

    for (std::size_t ni = 0; ni < spec.cores.size(); ++ni) {
        double g[3];
        for (unsigned ci = 0; ci < 3; ++ci)
            g[ci] = bench::geoMean(speedups[ci][ni]);
        std::printf("%-14s %-6u %9s %10.2f %10.2f %10.2f %8.0f%%\n",
                    "GeoMean", spec.cores[ni], "-", g[0], g[1], g[2],
                    100.0 * g[2] / g[1]);
    }

    std::printf("\nFault-campaign resilience counters (summed over the "
                "3 fault seeds):\n");
    std::printf("%-14s %-6s %9s %9s %9s %9s %9s\n", "App", "Cores",
                "Timeouts", "Retries", "Aborted", "Sheds", "XSnoops");
    for (const auto &row : resil_rows)
        std::printf("%-14s %-6u %9llu %9llu %9llu %9llu %9llu\n",
                    row.app.c_str(), row.cores,
                    static_cast<unsigned long long>(row.timeouts),
                    static_cast<unsigned long long>(row.retries),
                    static_cast<unsigned long long>(row.aborted),
                    static_cast<unsigned long long>(row.sheds),
                    static_cast<unsigned long long>(row.snoops));
    if (report_dir)
        std::printf("(JSON run reports written to %s)\n", report_dir);

    std::printf("\nExpectation: the faulted config pays for retries, "
                "timeouts and the software\nfallback after tile 0 goes "
                "offline, but every run completes and its speedup\n"
                "stays at or above MSA-0 (pure software handling).\n");
    std::printf(all_retained
                    ? "RESULT: faulted speedup >= MSA-0 on every row.\n"
                    : "RESULT: REGRESSION - a faulted row fell below "
                      "MSA-0.\n");

    const bool mesh_ok = degradedMeshSection(16);
    std::printf(mesh_ok
                    ? "RESULT: degraded-mesh rows within bounds "
                      "(reliable overhead <= 2%%, 1-link finishes, "
                      "1-router classified).\n"
                    : "RESULT: REGRESSION - a degraded-mesh row "
                      "misbehaved.\n");
    const bool core_ok = deadCoreSection(16);
    std::printf(core_ok
                    ? "RESULT: dead-participant rows all finish "
                      "(reconfigs on every kill, revocations "
                      "somewhere, failovers applied).\n"
                    : "RESULT: REGRESSION - a dead-participant row "
                      "misbehaved.\n");
    return all_retained && mesh_ok && core_ok ? 0 : 1;
}
