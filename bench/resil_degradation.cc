/**
 * @file
 * Resilience degradation study: how much of the MSA/OMU-2 speedup
 * survives a hostile fault campaign (message drops, duplicates and
 * delays on every MSA message, plus tile 0's slice decommissioned
 * mid-run). The headline applications run under the pthread
 * baseline, MSA-0, clean MSA/OMU-2, and the faulted MSA/OMU-2
 * preset; the faulted column must retain a speedup at least as good
 * as MSA-0 (degraded, never worse than having no accelerator state
 * to lose).
 *
 * The sweep is described by bench/campaigns/resil.json and executed
 * through the campaign engine's in-process path (the same spec runs
 * in parallel under misar_campaign). The faulted runs are stochastic,
 * so the spec gives the faulted preset — and the baseline it is
 * ratioed against — three seeds each; the aggregator matches each
 * faulted run to the baseline run with the same seed.
 *
 * The faulted runs also feed the observability layer: their
 * resilience counters (timeouts, retries, aborted ops, offline
 * sheds, crossed snoops) are tabulated per app, and with
 * MISAR_RESIL_REPORT=DIR set in the environment each faulted run
 * writes its machine-readable JSON run report into DIR.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "orch/aggregate.hh"
#include "orch/campaign_spec.hh"
#include "orch/engine.hh"
#include "sim/logging.hh"
#include "workload/app_catalog.hh"

using namespace misar;
using namespace misar::workload;
using namespace misar::orch;

int
main()
{
    setVerbose(false);
    bench::banner("Resilience degradation",
                  "MSA/OMU-2 speedup retained under the fault campaign");

    const char *dir = std::getenv("MISAR_CAMPAIGN_SPEC_DIR");
    const std::string spec_path =
        std::string(dir ? dir : MISAR_CAMPAIGN_SPEC_DIR) + "/resil.json";
    CampaignSpec spec;
    std::string err;
    if (!CampaignSpec::parseFile(spec_path, spec, err))
        fatal("%s: %s", spec_path.c_str(), err.c_str());
    err = spec.validate();
    if (!err.empty())
        fatal("%s: %s", spec_path.c_str(), err.c_str());

    const char *faulted = "MSA/OMU-2+faults";
    const char *columns[3] = {"MSA-0", "MSA/OMU-2", faulted};

    // With MISAR_RESIL_REPORT=DIR each faulted run leaves its JSON
    // run report in DIR (exercises the obs::writeRunReport path).
    const char *report_dir = std::getenv("MISAR_RESIL_REPORT");
    InProcessHooks hooks;
    if (report_dir)
        hooks.tweak = [&](const JobSpec &j, SystemConfig &cfg) {
            if (j.preset.config == "msa-omu-faults" && j.seed == 1)
                cfg.obs.statsJsonPath = std::string(report_dir) + "/" +
                                        j.app + "_" +
                                        std::to_string(j.cores) +
                                        ".json";
        };

    const std::vector<JobRecord> records =
        runCampaignInProcess(spec, hooks);
    const CampaignReport report(spec, records);

    std::printf("%-14s %-6s %9s %10s %10s %10s %9s\n", "App", "Cores",
                "BaseCyc", "MSA-0", "MSA/OMU-2", "+faults", "Retained");

    // speedups[config][cores] for the GeoMean rows.
    std::vector<double> speedups[3][2];
    bool all_retained = true;

    // Per-app resilience totals accumulated over the faulted runs,
    // straight from the job records' observability fields.
    struct ResilRow
    {
        std::string app;
        unsigned cores = 0;
        std::uint64_t timeouts = 0, retries = 0, aborted = 0;
        std::uint64_t sheds = 0, snoops = 0;
    };
    std::vector<ResilRow> resil_rows;

    const auto &headline = headlineApps();
    for (const AppSpec &aspec : appCatalog()) {
        bool is_headline = false;
        for (const auto &h : headline)
            is_headline |= (h == aspec.name);
        if (!is_headline)
            continue;
        for (std::size_t ni = 0; ni < spec.cores.size(); ++ni) {
            const unsigned cores = spec.cores[ni];
            const Cell *base = report.cell(spec.baseline, aspec.name,
                                           cores);
            if (!base || base->recs.empty() ||
                base->recs[0]->outcome != JobOutcome::Finished)
                fatal("baseline run of %s did not finish",
                      aspec.name.c_str());
            std::printf("%-14s %-6u %9llu", aspec.name.c_str(), cores,
                        static_cast<unsigned long long>(
                            base->recs[0]->makespan));
            double sp[3] = {0, 0, 0};
            for (unsigned ci = 0; ci < 3; ++ci) {
                const Cell *cell = report.cell(columns[ci], aspec.name,
                                               cores);
                if (cell)
                    for (const JobRecord *r : cell->recs)
                        if (r->outcome != JobOutcome::Finished)
                            fatal("%s on %s (seed %llu) did not finish",
                                  aspec.name.c_str(), columns[ci],
                                  static_cast<unsigned long long>(
                                      r->job.seed));
                const std::vector<double> per_seed = report.speedups(
                    columns[ci], aspec.name, cores);
                if (per_seed.empty())
                    fatal("%s on %s did not finish", aspec.name.c_str(),
                          columns[ci]);
                sp[ci] = bench::geoMean(per_seed);
                speedups[ci][ni].push_back(sp[ci]);
                std::printf(" %10.2f", sp[ci]);
            }
            const Cell *fcell = report.cell(faulted, aspec.name, cores);
            ResilRow row;
            row.app = aspec.name;
            row.cores = cores;
            for (const JobRecord *r : fcell->recs) {
                row.timeouts += r->timeouts;
                row.retries += r->retries;
                row.aborted += r->abortedOps;
                row.sheds += r->offlineSheds;
                row.snoops += r->crossedSnoops;
            }
            resil_rows.push_back(row);
            // Fraction of the clean MSA/OMU-2 speedup the faulted
            // configuration keeps.
            std::printf(" %8.0f%%", 100.0 * sp[2] / sp[1]);
            if (sp[2] < sp[0]) {
                std::printf("  [below MSA-0]");
                all_retained = false;
            }
            std::printf("\n");
        }
    }

    for (std::size_t ni = 0; ni < spec.cores.size(); ++ni) {
        double g[3];
        for (unsigned ci = 0; ci < 3; ++ci)
            g[ci] = bench::geoMean(speedups[ci][ni]);
        std::printf("%-14s %-6u %9s %10.2f %10.2f %10.2f %8.0f%%\n",
                    "GeoMean", spec.cores[ni], "-", g[0], g[1], g[2],
                    100.0 * g[2] / g[1]);
    }

    std::printf("\nFault-campaign resilience counters (summed over the "
                "3 fault seeds):\n");
    std::printf("%-14s %-6s %9s %9s %9s %9s %9s\n", "App", "Cores",
                "Timeouts", "Retries", "Aborted", "Sheds", "XSnoops");
    for (const auto &row : resil_rows)
        std::printf("%-14s %-6u %9llu %9llu %9llu %9llu %9llu\n",
                    row.app.c_str(), row.cores,
                    static_cast<unsigned long long>(row.timeouts),
                    static_cast<unsigned long long>(row.retries),
                    static_cast<unsigned long long>(row.aborted),
                    static_cast<unsigned long long>(row.sheds),
                    static_cast<unsigned long long>(row.snoops));
    if (report_dir)
        std::printf("(JSON run reports written to %s)\n", report_dir);

    std::printf("\nExpectation: the faulted config pays for retries, "
                "timeouts and the software\nfallback after tile 0 goes "
                "offline, but every run completes and its speedup\n"
                "stays at or above MSA-0 (pure software handling).\n");
    std::printf(all_retained
                    ? "RESULT: faulted speedup >= MSA-0 on every row.\n"
                    : "RESULT: REGRESSION - a faulted row fell below "
                      "MSA-0.\n");
    return all_retained ? 0 : 1;
}
