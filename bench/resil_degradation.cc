/**
 * @file
 * Resilience degradation study: how much of the MSA/OMU-2 speedup
 * survives a hostile fault campaign (message drops, duplicates and
 * delays on every MSA message, plus tile 0's slice decommissioned
 * mid-run). The headline applications run under the pthread
 * baseline, MSA-0, clean MSA/OMU-2, and the faulted MSA/OMU-2
 * preset; the faulted column must retain a speedup at least as good
 * as MSA-0 (degraded, never worse than having no accelerator state
 * to lose).
 *
 * The faulted runs also feed the observability layer: their
 * resilience counters (timeouts, retries, aborted ops, offline
 * sheds, crossed snoops) are tabulated per app, and with
 * MISAR_RESIL_REPORT=DIR set in the environment each faulted run
 * writes its machine-readable JSON run report into DIR.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;
using namespace misar::workload;
using sys::PaperConfig;

int
main()
{
    setVerbose(false);
    bench::banner("Resilience degradation",
                  "MSA/OMU-2 speedup retained under the fault campaign");

    const PaperConfig configs[] = {
        PaperConfig::Msa0,
        PaperConfig::MsaOmu2,
        PaperConfig::MsaOmu2Faults,
    };
    const unsigned core_counts[] = {16, 64};

    std::printf("%-14s %-6s %9s %10s %10s %10s %9s\n", "App", "Cores",
                "BaseCyc", "MSA-0", "MSA/OMU-2", "+faults", "Retained");

    // speedups[config][cores] for the GeoMean rows.
    std::vector<double> speedups[3][2];
    bool all_retained = true;

    // Per-app resilience totals accumulated over the faulted runs,
    // straight from RunResult's observability fields.
    struct ResilRow
    {
        std::string app;
        unsigned cores = 0;
        std::uint64_t timeouts = 0, retries = 0, aborted = 0;
        std::uint64_t sheds = 0, snoops = 0;
    };
    std::vector<ResilRow> resil_rows;

    // With MISAR_RESIL_REPORT=DIR each faulted run leaves its JSON
    // run report in DIR (exercises the obs::writeRunReport path).
    const char *report_dir = std::getenv("MISAR_RESIL_REPORT");

    const auto &headline = headlineApps();
    for (const AppSpec &spec : appCatalog()) {
        bool is_headline = false;
        for (const auto &h : headline)
            is_headline |= (h == spec.name);
        if (!is_headline)
            continue;
        for (unsigned ni = 0; ni < 2; ++ni) {
            const unsigned cores = core_counts[ni];
            RunResult base = runApp(spec, cores, PaperConfig::Baseline);
            if (!base.finished)
                fatal("baseline run of %s did not finish",
                      spec.name.c_str());
            std::printf("%-14s %-6u %9llu", spec.name.c_str(), cores,
                        static_cast<unsigned long long>(base.makespan));
            double sp[3] = {0, 0, 0};
            for (unsigned ci = 0; ci < 3; ++ci) {
                if (configs[ci] == PaperConfig::MsaOmu2Faults) {
                    // The faulted runs are stochastic: average over
                    // several fault seeds, each against the matching
                    // baseline run, so one unlucky drop on a critical
                    // handoff doesn't decide the row.
                    std::vector<double> per_seed;
                    ResilRow row;
                    row.app = spec.name;
                    row.cores = cores;
                    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                        RunResult b = seed == 1
                            ? base
                            : runApp(spec, cores, PaperConfig::Baseline,
                                     seed);
                        SystemConfig fc =
                            sys::configFor(configs[ci], cores);
                        if (report_dir && seed == 1)
                            fc.obs.statsJsonPath =
                                std::string(report_dir) + "/" +
                                spec.name + "_" +
                                std::to_string(cores) + ".json";
                        RunResult r = runAppWithConfig(
                            spec, fc, sys::flavorFor(configs[ci]), seed,
                            sys::paperConfigName(configs[ci]));
                        if (!r.finished)
                            fatal("%s on %s (seed %llu) did not finish",
                                  spec.name.c_str(),
                                  sys::paperConfigName(configs[ci]),
                                  static_cast<unsigned long long>(seed));
                        per_seed.push_back(
                            static_cast<double>(b.makespan) /
                            static_cast<double>(r.makespan));
                        row.timeouts += r.timeouts;
                        row.retries += r.retries;
                        row.aborted += r.abortedOps;
                        row.sheds += r.offlineSheds;
                        row.snoops += r.crossedSnoops;
                    }
                    resil_rows.push_back(row);
                    sp[ci] = bench::geoMean(per_seed);
                } else {
                    RunResult r = runApp(spec, cores, configs[ci]);
                    if (!r.finished)
                        fatal("%s on %s did not finish",
                              spec.name.c_str(),
                              sys::paperConfigName(configs[ci]));
                    sp[ci] = static_cast<double>(base.makespan) /
                             static_cast<double>(r.makespan);
                }
                speedups[ci][ni].push_back(sp[ci]);
                std::printf(" %10.2f", sp[ci]);
            }
            // Fraction of the clean MSA/OMU-2 speedup the faulted
            // configuration keeps.
            std::printf(" %8.0f%%", 100.0 * sp[2] / sp[1]);
            if (sp[2] < sp[0]) {
                std::printf("  [below MSA-0]");
                all_retained = false;
            }
            std::printf("\n");
        }
    }

    for (unsigned ni = 0; ni < 2; ++ni) {
        double g[3];
        for (unsigned ci = 0; ci < 3; ++ci)
            g[ci] = bench::geoMean(speedups[ci][ni]);
        std::printf("%-14s %-6u %9s %10.2f %10.2f %10.2f %8.0f%%\n",
                    "GeoMean", core_counts[ni], "-", g[0], g[1], g[2],
                    100.0 * g[2] / g[1]);
    }

    std::printf("\nFault-campaign resilience counters (summed over the "
                "3 fault seeds):\n");
    std::printf("%-14s %-6s %9s %9s %9s %9s %9s\n", "App", "Cores",
                "Timeouts", "Retries", "Aborted", "Sheds", "XSnoops");
    for (const auto &row : resil_rows)
        std::printf("%-14s %-6u %9llu %9llu %9llu %9llu %9llu\n",
                    row.app.c_str(), row.cores,
                    static_cast<unsigned long long>(row.timeouts),
                    static_cast<unsigned long long>(row.retries),
                    static_cast<unsigned long long>(row.aborted),
                    static_cast<unsigned long long>(row.sheds),
                    static_cast<unsigned long long>(row.snoops));
    if (report_dir)
        std::printf("(JSON run reports written to %s)\n", report_dir);

    std::printf("\nExpectation: the faulted config pays for retries, "
                "timeouts and the software\nfallback after tile 0 goes "
                "offline, but every run completes and its speedup\n"
                "stays at or above MSA-0 (pure software handling).\n");
    std::printf(all_retained
                    ? "RESULT: faulted speedup >= MSA-0 on every row.\n"
                    : "RESULT: REGRESSION - a faulted row fell below "
                      "MSA-0.\n");
    return all_retained ? 0 : 1;
}
