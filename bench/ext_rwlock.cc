/**
 * @file
 * Extension study: reader-writer locks (the LCU [23] comparison
 * point from the paper's related work). A read-mostly shared
 * structure is protected either by a plain mutex or by a reader-
 * writer lock, in software and on the MSA. Reader concurrency is
 * where an RW-aware accelerator pays off.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sync/sync_lib.hh"
#include "system/system.hh"

using namespace misar;
using cpu::ThreadApi;
using cpu::ThreadTask;

namespace {

constexpr Addr theLock = 0x1000;

enum class Prot
{
    Mutex,
    RwLock,
};

ThreadTask
worker(ThreadApi t, sync::SyncLib *lib, Prot prot, unsigned write_pct,
       int iters, std::uint64_t *reads, std::uint64_t *writes)
{
    Rng rng(0x1234 + t.id());
    for (int i = 0; i < iters; ++i) {
        const bool writer = rng.range(100) < write_pct;
        if (prot == Prot::Mutex)
            co_await lib->mutexLock(t, theLock);
        else if (writer)
            co_await lib->rwWrLock(t, theLock);
        else
            co_await lib->rwRdLock(t, theLock);

        co_await t.compute(writer ? 120 : 80); // section work
        if (writer)
            ++*writes;
        else
            ++*reads;

        if (prot == Prot::Mutex)
            co_await lib->mutexUnlock(t, theLock);
        else
            co_await lib->rwUnlock(t, theLock);
        co_await t.compute(100 + rng.range(100));
    }
}

Tick
run(unsigned cores, sync::SyncLib::Flavor flavor, AccelMode mode,
    Prot prot, unsigned write_pct)
{
    sys::System s(makeConfig(cores, mode, 2));
    sync::SyncLib lib(flavor, cores);
    std::uint64_t reads = 0, writes = 0;
    for (CoreId c = 0; c < cores; ++c)
        s.start(c, worker(s.api(c), &lib, prot, write_pct, 30, &reads,
                          &writes));
    if (!s.run(2000000000ULL))
        fatal("rwlock bench did not finish");
    return s.makespan();
}

} // namespace

int
main()
{
    setVerbose(false);
    bench::banner("Extension",
                  "reader-writer locks, read-mostly workload (64 cores)");

    using F = sync::SyncLib::Flavor;
    std::printf("%-10s %14s %14s %14s %14s\n", "Write %", "sw mutex",
                "sw rwlock", "MSA mutex", "MSA rwlock");
    for (unsigned wp : {0u, 5u, 20u, 50u}) {
        Tick sw_mutex = run(64, F::PthreadSw, AccelMode::None,
                            Prot::Mutex, wp);
        Tick sw_rw = run(64, F::PthreadSw, AccelMode::None, Prot::RwLock,
                         wp);
        Tick hw_mutex = run(64, F::Hw, AccelMode::MsaOmu, Prot::Mutex,
                            wp);
        Tick hw_rw = run(64, F::Hw, AccelMode::MsaOmu, Prot::RwLock, wp);
        std::printf("%-10u %14llu %14llu %14llu %14llu\n", wp,
                    static_cast<unsigned long long>(sw_mutex),
                    static_cast<unsigned long long>(sw_rw),
                    static_cast<unsigned long long>(hw_mutex),
                    static_cast<unsigned long long>(hw_rw));
    }
    std::printf("\nExpected: rwlocks beat mutexes as the read share "
                "grows; the MSA's batched reader\ngrants keep it ahead "
                "of the software rwlock, echoing the LCU motivation.\n");
    return 0;
}
