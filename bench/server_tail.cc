/**
 * @file
 * Tail-latency study of the open-loop server workload: offered-load
 * sweep on MSA/OMU-2 with 16 and 64 MSA entries per tile versus the
 * software fallback (msa0), emitting achieved throughput, latency
 * percentiles, shed counts and the saturation knee per point.
 *
 * The point of the experiment: request dispatch and work stealing
 * funnel every hand-off through a handful of hot locks/condvars, so
 * sync-op latency lands directly on the request path. The MSA
 * configurations should carry a given offered load with a lower p99
 * and hit their saturation knee at a higher rate than the software
 * fallback.
 *
 *   ./build/bench/server_tail [--smoke]
 *
 * Runs are strictly sequential (single-core CI hosts); --smoke trims
 * the sweep for the CI job.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "system/presets.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;

namespace {

struct PresetRow
{
    const char *label;  ///< report column
    const char *config; ///< sys::cliPresetFor name
    unsigned entries;   ///< MSA entries per tile
};

constexpr PresetRow presets[] = {
    {"msa16", "msa-omu", 16},
    {"msa64", "msa-omu", 64},
    {"sw-fallback", "msa0", 2},
};

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const bool smoke = argc > 1 && !std::strcmp(argv[1], "--smoke");
    bench::banner("Server tail latency",
                  "open-loop dispatch + stealing under offered load");

    const unsigned cores = 16;
    const std::vector<double> rates =
        smoke ? std::vector<double>{2, 6}
              : std::vector<double>{1, 2, 4, 8};

    workload::AppSpec app = workload::appByName("server-poisson");
    if (smoke)
        app.server.requests = 400;

    std::printf("%-12s %7s %9s %8s %8s %8s %7s %5s\n", "Preset",
                "Offered", "Achieved", "p50", "p99", "p999", "Rej",
                "Knee");

    // knee rate per preset: lowest swept rate past the knee.
    std::vector<double> knee_rate(std::size(presets), 0.0);
    // p99 per (preset, rate) for the cross-preset comparison.
    std::vector<std::vector<std::uint64_t>> p99s(std::size(presets));

    for (std::size_t pi = 0; pi < std::size(presets); ++pi) {
        const PresetRow &p = presets[pi];
        for (double rate : rates) {
            SystemConfig cfg;
            sync::SyncLib::Flavor flavor;
            if (!sys::cliPresetFor(p.config, cores, p.entries, cfg,
                                   flavor))
                fatal("unknown preset config '%s'", p.config);
            cfg.validate();

            workload::AppSpec spec = app;
            spec.server.arrivalRate = rate;
            workload::RunResult r = workload::runAppWithConfig(
                spec, cfg, flavor, /*seed=*/1, p.label);
            if (!r.finished)
                fatal("%s at rate %g did not finish", p.label, rate);
            const srv::ServerStats &s = r.server;
            std::printf("%-12s %7g %9.4f %8llu %8llu %8llu %7llu %5s\n",
                        p.label, rate, s.throughput,
                        static_cast<unsigned long long>(s.latency.p50()),
                        static_cast<unsigned long long>(s.latency.p99()),
                        static_cast<unsigned long long>(s.latency.p999()),
                        static_cast<unsigned long long>(s.rejected),
                        s.knee ? "yes" : "no");
            if (s.knee && knee_rate[pi] == 0.0)
                knee_rate[pi] = rate;
            p99s[pi].push_back(s.latency.p99());
        }
    }

    std::printf("\nsaturation knee (lowest swept rate shedding > 1%%):\n");
    for (std::size_t pi = 0; pi < std::size(presets); ++pi) {
        if (knee_rate[pi] > 0.0)
            std::printf("  %-12s at rate %g\n", presets[pi].label,
                        knee_rate[pi]);
        else
            std::printf("  %-12s beyond rate %g\n", presets[pi].label,
                        rates.back());
    }

    // The claim under test: at every offered load the MSA presets
    // either carry a lower p99 than the software fallback or have
    // not yet knee'd where it has.
    const std::size_t sw = std::size(presets) - 1;
    bool msa_wins = true;
    for (std::size_t pi = 0; pi + 1 < std::size(presets); ++pi) {
        bool later_knee =
            knee_rate[sw] > 0.0 &&
            (knee_rate[pi] == 0.0 || knee_rate[pi] > knee_rate[sw]);
        bool lower_p99 = true;
        for (std::size_t ri = 0; ri < rates.size(); ++ri)
            lower_p99 &= p99s[pi][ri] <= p99s[sw][ri];
        if (!(later_knee || lower_p99)) {
            msa_wins = false;
            std::printf("\n%s: neither a later knee nor uniformly "
                        "lower p99 than sw-fallback\n",
                        presets[pi].label);
        }
    }
    std::printf("\nMSA vs sw-fallback (later knee or lower p99): %s\n",
                msa_wins ? "PASS" : "FAIL");
    return msa_wins ? 0 : 1;
}
