/**
 * @file
 * Overload robustness study of the open-loop task server: what
 * happens past the saturation knee under three client retry policies,
 * and whether strict-priority brownout keeps a high-priority tenant
 * inside its SLO while a low-priority burst overruns the system.
 *
 * Part 1 — retry storms. An offered-load sweep on MSA/OMU with
 * SLO-aware admission, one column per --retry-policy. The claims
 * under test are the classic metastability results:
 *
 *   - naive retries (unbounded, exponential backoff only) amplify
 *     offered load past the knee, so goodput COLLAPSES below the
 *     no-retry baseline exactly where retries were supposed to help;
 *   - budgeted retries (token bucket refilled by a fraction of
 *     successes) keep goodput within 10% of the no-retry baseline at
 *     every rate, because the budget caps the amplification.
 *
 * Part 2 — multi-tenant brownout. A bursty low-priority stream plus a
 * steady high-priority stream over the same queues. With brownout
 * (lo tenant admitted only up to half the SLO's predicted wait) the
 * hi tenant's p99 must hold its SLO through the lo burst; the
 * brownout=1.0 contrast column shows what the hi tenant suffers when
 * admission stops prioritizing.
 *
 *   ./build/bench/server_overload [--smoke]
 *
 * Runs are strictly sequential (single-core CI hosts); --smoke trims
 * the sweep for the CI job.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "system/presets.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;

namespace {

constexpr unsigned cores = 16;

SystemConfig
msaConfig(sync::SyncLib::Flavor &flavor)
{
    SystemConfig cfg;
    if (!sys::cliPresetFor("msa-omu", cores, 16, cfg, flavor))
        fatal("unknown preset config 'msa-omu'");
    cfg.validate();
    return cfg;
}

srv::ServerStats
runServer(const workload::AppSpec &spec, const char *label)
{
    sync::SyncLib::Flavor flavor;
    SystemConfig cfg = msaConfig(flavor);
    workload::RunResult r =
        workload::runAppWithConfig(spec, cfg, flavor, /*seed=*/1, label);
    if (!r.finished)
        fatal("%s did not finish", label);
    return r.server;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const bool smoke = argc > 1 && !std::strcmp(argv[1], "--smoke");
    bench::banner("Server overload robustness",
                  "retry storms vs. budgets + multi-tenant brownout");

    bool pass = true;

    // ---- Part 1: retry storms past the knee ------------------------

    // 6 req/ktick is ~2.4x the saturated service rate — deep
    // overload, yet shy of the regime where the budget's burst
    // tokens themselves displace SLO-meeting work.
    const std::vector<double> rates =
        smoke ? std::vector<double>{2, 6}
              : std::vector<double>{2, 4, 6};
    constexpr srv::RetryPolicy policies[] = {
        srv::RetryPolicy::None,
        srv::RetryPolicy::Naive,
        srv::RetryPolicy::Budgeted,
    };

    workload::AppSpec base = workload::appByName("server-poisson");
    base.server.requests = smoke ? 400 : 1500;
    base.server.queueCap = 256;
    base.server.sloTicks = 20000;

    std::printf("retry policies at SLO %llu ticks, queueCap %llu:\n\n",
                static_cast<unsigned long long>(base.server.sloTicks),
                static_cast<unsigned long long>(base.server.queueCap));
    std::printf("%-10s %7s %9s %9s %8s %8s %8s %8s\n", "Policy",
                "Offered", "Achieved", "Goodput", "p99", "SloRej",
                "Retries", "Knee");

    // goodput[policy][rate]; knee flags from the no-retry baseline.
    std::vector<std::vector<double>> goodput(std::size(policies));
    std::vector<bool> none_knee;

    for (std::size_t pi = 0; pi < std::size(policies); ++pi) {
        for (double rate : rates) {
            workload::AppSpec spec = base;
            spec.server.arrivalRate = rate;
            spec.server.retryPolicy = policies[pi];
            std::string label = std::string("overload-") +
                                srv::retryPolicyName(policies[pi]);
            srv::ServerStats s = runServer(spec, label.c_str());
            std::printf(
                "%-10s %7g %9.4f %9.4f %8llu %8llu %8llu %8s\n",
                srv::retryPolicyName(policies[pi]), rate, s.throughput,
                s.goodput,
                static_cast<unsigned long long>(s.latency.p99()),
                static_cast<unsigned long long>(s.rejectedSlo),
                static_cast<unsigned long long>(s.retries),
                s.knee ? "yes" : "no");
            goodput[pi].push_back(s.goodput);
            if (pi == 0)
                none_knee.push_back(s.knee);
        }
        std::printf("\n");
    }

    // Gate 1: past the knee, naive retries make goodput WORSE than
    // not retrying at all (the retry storm).
    bool storm_seen = false;
    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
        if (!none_knee[ri])
            continue;
        storm_seen = true;
        if (goodput[1][ri] >= goodput[0][ri]) {
            pass = false;
            std::printf("FAIL: naive goodput %.4f >= none %.4f at "
                        "post-knee rate %g\n",
                        goodput[1][ri], goodput[0][ri], rates[ri]);
        }
    }
    if (!storm_seen) {
        pass = false;
        std::printf("FAIL: no swept rate crossed the knee; sweep "
                    "cannot exhibit a retry storm\n");
    }

    // Gate 2: budgeted retries stay within 10% of the no-retry
    // baseline at EVERY rate (graceful degradation, no storm).
    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
        if (goodput[2][ri] < 0.9 * goodput[0][ri]) {
            pass = false;
            std::printf("FAIL: budgeted goodput %.4f < 90%% of none "
                        "%.4f at rate %g\n",
                        goodput[2][ri], goodput[0][ri], rates[ri]);
        }
    }

    // ---- Part 2: multi-tenant brownout through a lo burst ----------

    workload::AppSpec burst = workload::appByName("server-burst");
    burst.server.requests = smoke ? 400 : 1500;
    burst.server.queueCap = 256;
    burst.server.sloTicks = 30000;
    burst.server.tenantHiRate = 1.0; // steady Poisson
    burst.server.tenantLoRate = 3.0; // bursty (MMPP), 3x the hi rate
    burst.server.arrivalRate =
        burst.server.tenantHiRate + burst.server.tenantLoRate;

    std::printf("tenants hi %.1f + lo %.1f req/ktick, SLO %llu:\n\n",
                burst.server.tenantHiRate, burst.server.tenantLoRate,
                static_cast<unsigned long long>(burst.server.sloTicks));
    std::printf("%-9s %-7s %9s %8s %8s %8s\n", "Brownout", "Tenant",
                "Goodput", "p99", "Done", "Shed");

    std::uint64_t hi_p99_brownout = 0;
    for (double ratio : {0.5, 1.0}) {
        workload::AppSpec spec = burst;
        spec.server.brownoutRatio = ratio;
        srv::ServerStats s = runServer(spec, "overload-tenants");
        if (s.tenants.size() != 2)
            fatal("expected 2 tenant rows, got %zu", s.tenants.size());
        for (const srv::TenantStats &t : s.tenants) {
            std::printf(
                "%-9g %-7s %9.4f %8llu %8llu %8llu\n", ratio,
                t.name.c_str(), t.goodput,
                static_cast<unsigned long long>(t.latency.p99()),
                static_cast<unsigned long long>(t.completed),
                static_cast<unsigned long long>(t.rejected +
                                                t.rejectedSlo));
        }
        if (ratio == 0.5)
            hi_p99_brownout = s.tenants[0].latency.p99();
        std::printf("\n");
    }

    // Gate 3: with brownout, the hi tenant's p99 holds its SLO even
    // while the lo burst is being shed.
    if (hi_p99_brownout > burst.server.sloTicks) {
        pass = false;
        std::printf("FAIL: hi-tenant p99 %llu > SLO %llu under "
                    "brownout\n",
                    static_cast<unsigned long long>(hi_p99_brownout),
                    static_cast<unsigned long long>(
                        burst.server.sloTicks));
    }

    std::printf("overload robustness (storm + budget + brownout): %s\n",
                pass ? "PASS" : "FAIL");
    return pass ? 0 : 1;
}
