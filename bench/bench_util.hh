/**
 * @file
 * Shared helpers for the figure-reproduction benchmark binaries.
 */

#ifndef MISAR_BENCH_BENCH_UTIL_HH
#define MISAR_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace misar {
namespace bench {

/** Geometric mean of a vector of ratios. */
inline double
geoMean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += std::log(x);
    return std::exp(s / static_cast<double>(v.size()));
}

/** Print a header banner for a figure. */
inline void
banner(const char *fig, const char *title)
{
    std::printf("\n");
    std::printf("==============================================================="
                "=================\n");
    std::printf("%s: %s\n", fig, title);
    std::printf("==============================================================="
                "=================\n");
}

} // namespace bench
} // namespace misar

#endif // MISAR_BENCH_BENCH_UTIL_HH
