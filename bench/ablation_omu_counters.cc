/**
 * @file
 * Ablation: OMU counter count (aliasing sensitivity). Fewer untagged
 * counters mean more aliasing, which can only steer operations to
 * software unnecessarily (coverage loss), never break correctness —
 * measured here as coverage and speedup on the lock-heavy apps.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;
using namespace misar::workload;

int
main()
{
    setVerbose(false);
    bench::banner("Ablation", "OMU counters per tile (64 cores)");

    const unsigned cores = 64;
    const char *apps[] = {"radiosity", "fluidanimate", "cholesky",
                          "canneal"};

    std::printf("%-10s", "Counters");
    for (const char *a : apps)
        std::printf(" %13s", a);
    std::printf("\n");

    for (unsigned counters : {1u, 2u, 4u, 8u, 16u}) {
        std::printf("%-10u", counters);
        for (const char *name : apps) {
            const AppSpec &spec = appByName(name);
            SystemConfig cfg = makeConfig(cores, AccelMode::MsaOmu, 2);
            cfg.msa.omuCounters = counters;
            RunResult r = runAppWithConfig(spec, cfg,
                                           sync::SyncLib::Flavor::Hw);
            if (!r.finished)
                fatal("%s did not finish with %u counters", name,
                      counters);
            std::printf("   %5.1f%% cov", 100.0 * r.hwCoverage);
        }
        std::printf("\n");
    }
    std::printf("\nExpected: coverage grows (or holds) with counter "
                "count; correctness never depends on it.\n");
    return 0;
}
