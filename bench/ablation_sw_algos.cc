/**
 * @file
 * Ablation: software synchronization algorithm comparison. Extends
 * Figure 5's baseline set with ticket locks and the dissemination
 * barrier, isolating how much of MiSAR's win could be had in
 * software alone — and how much only direct notification delivers.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "sync/sync_lib.hh"
#include "system/system.hh"
#include "workload/microbench.hh"

using namespace misar;
using workload::RawLatencies;

namespace {

/** Like measureRawLatency but with an explicit library flavor. */
RawLatencies
measureFlavor(unsigned cores, sync::SyncLib::Flavor flavor)
{
    // Reuse the paper-config machinery: only the library differs.
    switch (flavor) {
      case sync::SyncLib::Flavor::PthreadSw:
        return workload::measureRawLatency(cores,
                                           sys::PaperConfig::Baseline);
      case sync::SyncLib::Flavor::SpinSw:
        return workload::measureRawLatency(cores,
                                           sys::PaperConfig::Spinlock);
      case sync::SyncLib::Flavor::McsTourSw:
        return workload::measureRawLatency(cores,
                                           sys::PaperConfig::McsTour);
      default:
        return workload::measureRawLatency(cores,
                                           sys::PaperConfig::MsaOmu2);
    }
}

} // namespace

int
main()
{
    setVerbose(false);
    bench::banner("Ablation",
                  "software algorithms vs the MSA (64 cores)");

    // Ticket/dissemination need a direct run (no PaperConfig alias).
    using F = sync::SyncLib::Flavor;
    struct Row
    {
        const char *name;
        F flavor;
    };
    const Row rows[] = {
        {"pthread", F::PthreadSw},       {"spinlock", F::SpinSw},
        {"MCS-Tour", F::McsTourSw},      {"Ticket-Dissem",
                                          F::TicketDissemSw},
        {"MSA/OMU-2", F::Hw},
    };

    std::printf("%-14s %12s %12s %14s\n", "Library", "LockHandoff",
                "BarrierHand.", "LockAcquire");
    for (const Row &row : rows) {
        RawLatencies lat;
        if (row.flavor == F::TicketDissemSw) {
            // Run the microbenchmarks manually with this flavor by
            // building on the runner-level entry points.
            lat = workload::measureRawLatencyFlavor(
                64, row.flavor, AccelMode::None);
        } else {
            lat = measureFlavor(64, row.flavor);
        }
        std::printf("%-14s %12.0f %12.0f %14.0f\n", row.name,
                    lat.lockHandoff, lat.barrierHandoff,
                    lat.lockAcquire);
    }
    std::printf("\nExpected: scalable software (MCS, ticket, "
                "dissemination) narrows the gap to the\nMSA but direct "
                "notification keeps an order-of-magnitude handoff "
                "advantage.\n");
    return 0;
}
