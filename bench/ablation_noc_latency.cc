/**
 * @file
 * Ablation: NoC router latency sensitivity. The MSA's benefit is a
 * round-trip-latency trade (one message pair vs a coherence storm);
 * this sweep shows how the speedup of a lock-heavy and a
 * barrier-heavy app responds as the mesh gets slower.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;
using namespace misar::workload;

int
main()
{
    setVerbose(false);
    bench::banner("Ablation", "Router pipeline latency (64 cores)");

    const unsigned cores = 64;
    std::printf("%-14s %14s %16s\n", "RouterCycles", "radiosity",
                "streamcluster");

    for (unsigned rl : {1u, 2u, 4u, 8u}) {
        std::printf("%-14u", rl);
        for (const char *name : {"radiosity", "streamcluster"}) {
            const AppSpec &spec = appByName(name);
            SystemConfig base_cfg = makeConfig(cores, AccelMode::None);
            base_cfg.noc.routerLatency = rl;
            SystemConfig msa_cfg = makeConfig(cores, AccelMode::MsaOmu, 2);
            msa_cfg.noc.routerLatency = rl;
            RunResult base = runAppWithConfig(
                spec, base_cfg, sync::SyncLib::Flavor::PthreadSw);
            RunResult msa = runAppWithConfig(spec, msa_cfg,
                                             sync::SyncLib::Flavor::Hw);
            std::printf("         %5.2fx",
                        static_cast<double>(base.makespan) /
                            msa.makespan);
        }
        std::printf("\n");
    }
    std::printf("\nExpected: barrier-heavy speedup persists as the mesh "
                "slows (both sides pay);\nlock-heavy speedup erodes "
                "(the MSA round trip is the whole cost).\n");
    return 0;
}
