/**
 * @file
 * Ablation: MSA entries per tile swept from 1 to unbounded, 64-core
 * GeoMean speedup and coverage over the headline applications. Shows
 * the paper's core claim from a different angle: with the OMU, the
 * curve saturates almost immediately (2 entries ~ infinite).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;
using namespace misar::workload;

int
main()
{
    setVerbose(false);
    bench::banner("Ablation", "MSA entries per tile (64 cores)");

    std::printf("%-10s %12s %12s\n", "Entries", "GeoMeanSpdup",
                "MeanCoverage");

    const unsigned cores = 64;
    std::vector<std::pair<const char *, SystemConfig>> sweeps;
    for (unsigned e : {1u, 2u, 4u, 8u})
        sweeps.emplace_back(nullptr, makeConfig(cores, AccelMode::MsaOmu,
                                                e));
    sweeps.emplace_back("inf", makeConfig(cores, AccelMode::MsaInfinite));

    for (auto &[label, cfg] : sweeps) {
        std::vector<double> sp;
        double cov = 0;
        unsigned n = 0;
        for (const auto &name : headlineApps()) {
            const AppSpec &spec = appByName(name);
            RunResult base = runApp(spec, cores,
                                    sys::PaperConfig::Baseline);
            RunResult r = runAppWithConfig(spec, cfg,
                                           sync::SyncLib::Flavor::Hw);
            sp.push_back(static_cast<double>(base.makespan) /
                         r.makespan);
            cov += r.hwCoverage;
            ++n;
        }
        if (label)
            std::printf("%-10s", label);
        else
            std::printf("%-10u", cfg.msa.msaEntries);
        std::printf(" %11.2fx %11.1f%%\n", bench::geoMean(sp),
                    100.0 * cov / n);
    }
    std::printf("\nExpected: saturation by 2 entries (the paper's "
                "minimalism claim).\n");
    return 0;
}
