/**
 * @file
 * Host-throughput benchmark for the simulation kernel.
 *
 * Unlike the fig*_ benches (which reproduce paper results in
 * simulated time), this harness measures how fast the simulator
 * itself runs on the host: simulated ticks/second and events/second
 * over the standard presets. It is the regression gate for the event
 * kernel (calendar queue + pooled events) and the flat hot-path
 * containers; see docs/PERFORMANCE.md.
 *
 * Modes:
 *   simperf                    full run (scale 20, 3 reps per preset)
 *   simperf --smoke            quick run (scale 2, 1 rep) for CI
 *   simperf --out FILE         write the JSON result (default
 *                              BENCH_simperf.json in the CWD)
 *   simperf --check FILE       after measuring, compare ticksPerSec
 *                              per preset against the matching mode
 *                              section of FILE; exit 1 if any preset
 *                              regressed more than --tolerance
 *   simperf --tolerance X      allowed fractional regression (0.15)
 *   simperf --obs-overhead     fault-free observability overhead
 *                              gate: msa16 with the stat sampler +
 *                              resource monitor armed vs plain, best
 *                              wall time of the reps on each side;
 *                              exit 1 when the overhead exceeds
 *                              --tolerance (default 3% in this mode)
 *
 * The checked-in BENCH_simperf.json holds "full" and "smoke"
 * sections measured on the reference machine plus a "before" section
 * with the pre-calendar-queue kernel numbers; CI runs
 * `simperf --smoke --check BENCH_simperf.json`.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sync/sync_lib.hh"
#include "system/presets.hh"
#include "system/system.hh"
#include "workload/app_catalog.hh"
#include "workload/synthetic_app.hh"

using namespace misar;
using namespace misar::workload;

namespace {

struct Preset
{
    const char *name;
    sys::PaperConfig pc;
    unsigned cores;
};

/** The standard preset matrix (mirrors the determinism harness). */
const Preset presets[] = {
    {"msa16", sys::PaperConfig::MsaOmu2, 16},
    {"msa64", sys::PaperConfig::MsaOmu2, 64},
    {"msa-omu2-faults", sys::PaperConfig::MsaOmu2Faults, 16},
    {"sw-fallback", sys::PaperConfig::Msa0, 16},
};

struct Result
{
    std::string name;
    unsigned cores = 0;
    std::uint64_t ticks = 0;
    std::uint64_t events = 0;
    double wallSec = 0.0;
    EventQueue::PoolStats pool;
    long rssKb = 0;
};

constexpr Tick tickLimit = 2000000000ULL;

Result
runPreset(const Preset &p, unsigned scale, unsigned reps)
{
    // Warm up caches/branch predictors with one small untimed run.
    {
        AppSpec w = appByName("radiosity");
        sys::System s(sys::configFor(p.pc, p.cores));
        sync::SyncLib lib(sys::flavorFor(p.pc), p.cores);
        AppLayout layout;
        for (CoreId c = 0; c < p.cores; ++c)
            s.start(c, appThread(s.api(c), w, layout, &lib, p.cores, 1));
        s.runDetailed(tickLimit);
    }

    AppSpec spec = appByName("radiosity");
    spec.iters *= scale;

    Result res;
    res.name = p.name;
    res.cores = p.cores;
    for (unsigned r = 0; r < reps; ++r) {
        sys::System s(sys::configFor(p.pc, p.cores));
        sync::SyncLib lib(sys::flavorFor(p.pc), p.cores);
        AppLayout layout;
        for (CoreId c = 0; c < p.cores; ++c)
            s.start(c, appThread(s.api(c), spec, layout, &lib, p.cores, 1));
        auto t0 = std::chrono::steady_clock::now();
        auto out = s.runDetailed(tickLimit);
        auto t1 = std::chrono::steady_clock::now();
        if (out != sys::RunOutcome::Finished)
            fatal("simperf: %s rep %u did not finish", p.name, r);
        res.wallSec += std::chrono::duration<double>(t1 - t0).count();
        res.ticks += s.eventQueue().now();
        res.events += s.eventQueue().executedEvents();
        res.pool = s.eventQueue().poolStats(); // last rep's counters
    }
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    res.rssKb = ru.ru_maxrss; // cumulative process high-water mark
    return res;
}

void
writeJson(std::ostream &os, const char *mode, unsigned scale, unsigned reps,
          const std::vector<Result> &results)
{
    os << "{\"schemaVersion\":1,\"generator\":\"bench/simperf\","
       << "\"kernel\":\"calendar-queue\",\"mode\":\"" << mode << "\","
       << "\"" << mode << "\":{\"scale\":" << scale << ",\"reps\":" << reps
       << ",\"workload\":\"radiosity\",\"presets\":[";
    bool first = true;
    for (const Result &r : results) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"name\":\"" << r.name << "\",\"cores\":" << r.cores
           << ",\"ticks\":" << r.ticks << ",\"events\":" << r.events
           << ",\"wallSec\":" << r.wallSec
           << ",\"ticksPerSec\":" << std::uint64_t(r.ticks / r.wallSec)
           << ",\"eventsPerSec\":" << std::uint64_t(r.events / r.wallSec)
           << ",\"eventsPerTick\":" << double(r.events) / double(r.ticks)
           << ",\"maxRssKb\":" << r.rssKb
           << ",\"pool\":{\"recordCapacity\":" << r.pool.recordCapacity
           << ",\"chunkAllocs\":" << r.pool.chunkAllocs
           << ",\"heapCallbacks\":" << r.pool.heapCallbacks
           << ",\"scheduled\":" << r.pool.scheduled
           << ",\"maxPending\":" << r.pool.maxPending << "}}";
    }
    os << "\n]}}\n";
}

/**
 * Best (smallest) wall time over @p reps timed runs of the msa16
 * preset, with or without the sampler + resource monitor armed.
 * Best-of damps host noise far better than the mean, which matters
 * when gating a few-percent overhead budget.
 */
double
bestWallSec(const Preset &p, const AppSpec &spec, unsigned reps, bool obs)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        SystemConfig cfg = sys::configFor(p.pc, p.cores);
        if (obs) {
            cfg.obs.sampleInterval = 10000;
            cfg.obs.heatmapEnabled = true;
        }
        sys::System s(cfg);
        sync::SyncLib lib(sys::flavorFor(p.pc), p.cores);
        AppLayout layout;
        for (CoreId c = 0; c < p.cores; ++c)
            s.start(c, appThread(s.api(c), spec, layout, &lib, p.cores, 1));
        auto t0 = std::chrono::steady_clock::now();
        auto out = s.runDetailed(tickLimit);
        auto t1 = std::chrono::steady_clock::now();
        if (out != sys::RunOutcome::Finished)
            fatal("simperf: obs-overhead rep %u did not finish", r);
        double w = std::chrono::duration<double>(t1 - t0).count();
        if (r == 0 || w < best)
            best = w;
    }
    return best;
}

/**
 * The fault-free observability overhead gate. Returns the process
 * exit code: 0 within budget, 1 over budget.
 */
int
runObsOverhead(bool smoke, double tolerance)
{
    const Preset &p = presets[0]; // msa16
    const unsigned scale = smoke ? 2 : 8;
    const unsigned reps = smoke ? 3 : 5;
    AppSpec spec = appByName("radiosity");
    spec.iters *= scale;

    bestWallSec(p, spec, 1, false); // warm-up, untimed semantics

    const double plain = bestWallSec(p, spec, reps, false);
    const double obs = bestWallSec(p, spec, reps, true);
    const double overhead = plain > 0.0 ? obs / plain - 1.0 : 0.0;
    const bool ok = overhead <= tolerance;
    std::printf("obs-overhead %-8s plain=%.3fs obs=%.3fs overhead=%+.2f%% "
                "budget=%.0f%%  %s\n",
                p.name, plain, obs, overhead * 100.0, tolerance * 100.0,
                ok ? "ok" : "OVER BUDGET");
    if (!ok)
        std::fprintf(stderr,
                     "simperf: sampler+heatmap overhead %.2f%% exceeds "
                     "%.0f%% budget\n",
                     overhead * 100.0, tolerance * 100.0);
    return ok ? 0 : 1;
}

/**
 * Minimal lookup into a prior simperf JSON: the ticksPerSec of
 * @p preset inside the @p mode section. Relies on the schema placing
 * each mode's presets after its `"<mode>":` key and the "before"
 * section last. Returns -1 when absent (not an error: a baseline may
 * predate a preset).
 */
double
baselineTicksPerSec(const std::string &json, const std::string &mode,
                    const std::string &preset)
{
    std::size_t sec = json.find("\"" + mode + "\":");
    if (sec == std::string::npos)
        return -1.0;
    std::size_t at = json.find("\"name\":\"" + preset + "\"", sec);
    if (at == std::string::npos)
        return -1.0;
    const std::string key = "\"ticksPerSec\":";
    std::size_t k = json.find(key, at);
    if (k == std::string::npos)
        return -1.0;
    return std::atof(json.c_str() + k + key.size());
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bool smoke = false;
    bool obs_overhead = false;
    std::string out_path = "BENCH_simperf.json";
    std::string check_path;
    double tolerance = 0.15;
    bool tolerance_set = false;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--smoke") {
            smoke = true;
        } else if (a == "--obs-overhead") {
            obs_overhead = true;
        } else if (a == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (a == "--check" && i + 1 < argc) {
            check_path = argv[++i];
        } else if (a == "--tolerance" && i + 1 < argc) {
            tolerance = std::atof(argv[++i]);
            tolerance_set = true;
        } else {
            std::fprintf(stderr,
                         "usage: simperf [--smoke] [--obs-overhead] "
                         "[--out FILE] [--check FILE] [--tolerance X]\n");
            return 2;
        }
    }
    if (obs_overhead)
        return runObsOverhead(smoke, tolerance_set ? tolerance : 0.03);
    const char *mode = smoke ? "smoke" : "full";
    const unsigned scale = smoke ? 2 : 20;
    const unsigned reps = smoke ? 1 : 3;

    std::vector<Result> results;
    for (const Preset &p : presets) {
        Result r = runPreset(p, scale, reps);
        std::printf("%-16s ticks/s=%-8llu events/s=%-9llu ev/tick=%.2f "
                    "chunkAllocs=%llu heapCallbacks=%llu rss=%ldKB\n",
                    r.name.c_str(),
                    (unsigned long long)(r.ticks / r.wallSec),
                    (unsigned long long)(r.events / r.wallSec),
                    double(r.events) / double(r.ticks),
                    (unsigned long long)r.pool.chunkAllocs,
                    (unsigned long long)r.pool.heapCallbacks, r.rssKb);
        results.push_back(std::move(r));
    }

    if (!out_path.empty()) {
        std::ofstream f(out_path);
        if (!f)
            fatal("simperf: cannot open %s", out_path.c_str());
        writeJson(f, mode, scale, reps, results);
        std::printf("wrote %s\n", out_path.c_str());
    }

    if (check_path.empty())
        return 0;

    std::ifstream bf(check_path);
    if (!bf)
        fatal("simperf: cannot open baseline %s", check_path.c_str());
    std::stringstream ss;
    ss << bf.rdbuf();
    const std::string baseline = ss.str();

    int failures = 0;
    for (const Result &r : results) {
        double base = baselineTicksPerSec(baseline, mode, r.name);
        if (base <= 0) {
            std::printf("check %-16s no %s baseline, skipped\n",
                        r.name.c_str(), mode);
            continue;
        }
        double now = r.ticks / r.wallSec;
        double ratio = now / base;
        bool ok = ratio >= 1.0 - tolerance;
        std::printf("check %-16s %8.0f vs baseline %8.0f  (%+.1f%%)  %s\n",
                    r.name.c_str(), now, base, (ratio - 1.0) * 100.0,
                    ok ? "ok" : "REGRESSED");
        if (!ok)
            ++failures;
    }
    if (failures) {
        std::fprintf(stderr,
                     "simperf: %d preset(s) regressed more than %.0f%%\n",
                     failures, tolerance * 100.0);
        return 1;
    }
    return 0;
}
