/**
 * @file
 * Host-throughput benchmark for the simulation kernel.
 *
 * Unlike the fig*_ benches (which reproduce paper results in
 * simulated time), this harness measures how fast the simulator
 * itself runs on the host: simulated ticks/second and events/second
 * over the standard presets. It is the regression gate for the event
 * kernel (calendar queue + pooled events) and the flat hot-path
 * containers; see docs/PERFORMANCE.md.
 *
 * Modes:
 *   simperf                    full run (scale 20, 3 reps per preset)
 *   simperf --smoke            quick run (scale 2, 1 rep) for CI
 *   simperf --out FILE         write the JSON result (default
 *                              BENCH_simperf.json in the CWD)
 *   simperf --check FILE       after measuring, compare ticksPerSec
 *                              per preset against the matching mode
 *                              section of FILE; exit 1 if any preset
 *                              regressed more than --tolerance
 *   simperf --tolerance X      allowed fractional regression (0.15)
 *   simperf --obs-overhead     fault-free observability overhead
 *                              gate: msa16 with the stat sampler +
 *                              resource monitor armed vs plain, best
 *                              wall time of the reps on each side;
 *                              exit 1 when the overhead exceeds
 *                              --tolerance (default 3% in this mode)
 *   simperf --threads-gate X   minimum msa64 speedup at 4 host
 *                              threads vs --threads 1 (default 1.8;
 *                              0 disables). Skipped automatically on
 *                              hosts with fewer than 4 hardware
 *                              threads, where the target is
 *                              unreachable by construction.
 *
 * Besides the serial preset matrix, every full/smoke run sweeps the
 * PDES kernel (`--threads` 1/2/4) over msa64 and the scale-study
 * msa256 preset and records a "threaded" section with per-row
 * speedups vs the threads-1 row. The serial rows stay the CI
 * regression gate (--check ignores the threaded section: host-thread
 * availability varies across machines, so cross-run speedup
 * comparisons are not apples-to-apples).
 *
 * The checked-in BENCH_simperf.json holds "full" and "smoke"
 * sections measured on the reference machine plus a "before" section
 * with the pre-calendar-queue kernel numbers; CI runs
 * `simperf --smoke --check BENCH_simperf.json`.
 */

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/logging.hh"
#include "sync/sync_lib.hh"
#include "system/presets.hh"
#include "system/system.hh"
#include "workload/app_catalog.hh"
#include "workload/synthetic_app.hh"

using namespace misar;
using namespace misar::workload;

namespace {

struct Preset
{
    const char *name;
    sys::PaperConfig pc;
    unsigned cores;
};

/** The standard preset matrix (mirrors the determinism harness). */
const Preset presets[] = {
    {"msa16", sys::PaperConfig::MsaOmu2, 16},
    {"msa64", sys::PaperConfig::MsaOmu2, 64},
    {"msa-omu2-faults", sys::PaperConfig::MsaOmu2Faults, 16},
    {"sw-fallback", sys::PaperConfig::Msa0, 16},
};

struct Result
{
    std::string name;
    unsigned cores = 0;
    std::uint64_t ticks = 0;
    std::uint64_t events = 0;
    double wallSec = 0.0;
    EventQueue::PoolStats pool;
    long rssKb = 0;
};

constexpr Tick tickLimit = 2000000000ULL;

Result
runPreset(const Preset &p, unsigned scale, unsigned reps)
{
    // Warm up caches/branch predictors with one small untimed run.
    {
        AppSpec w = appByName("radiosity");
        sys::System s(sys::configFor(p.pc, p.cores));
        sync::SyncLib lib(sys::flavorFor(p.pc), p.cores);
        AppLayout layout;
        for (CoreId c = 0; c < p.cores; ++c)
            s.start(c, appThread(s.api(c), w, layout, &lib, p.cores, 1));
        s.runDetailed(tickLimit);
    }

    AppSpec spec = appByName("radiosity");
    spec.iters *= scale;

    Result res;
    res.name = p.name;
    res.cores = p.cores;
    for (unsigned r = 0; r < reps; ++r) {
        sys::System s(sys::configFor(p.pc, p.cores));
        sync::SyncLib lib(sys::flavorFor(p.pc), p.cores);
        AppLayout layout;
        for (CoreId c = 0; c < p.cores; ++c)
            s.start(c, appThread(s.api(c), spec, layout, &lib, p.cores, 1));
        auto t0 = std::chrono::steady_clock::now();
        auto out = s.runDetailed(tickLimit);
        auto t1 = std::chrono::steady_clock::now();
        if (out != sys::RunOutcome::Finished)
            fatal("simperf: %s rep %u did not finish", p.name, r);
        res.wallSec += std::chrono::duration<double>(t1 - t0).count();
        res.ticks += s.eventQueue().now();
        res.events += s.eventQueue().executedEvents();
        res.pool = s.eventQueue().poolStats(); // last rep's counters
    }
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    res.rssKb = ru.ru_maxrss; // cumulative process high-water mark
    return res;
}

/** One (preset, --threads N) row of the PDES sweep. */
struct ThreadedResult
{
    std::string name;
    unsigned cores = 0;
    unsigned threads = 0;
    unsigned scale = 0;
    std::uint64_t ticks = 0;   ///< simulated ticks of the best rep
    std::uint64_t events = 0;  ///< executed events of the best rep
    double wallSec = 0.0;      ///< best (smallest) rep wall time
    double speedup = 0.0;      ///< threads-1 row wallSec / this wallSec
};

/**
 * Configuration for one sweep target. msa64 is the serial matrix's
 * MSA/OMU-2 @ 64; msa256 is the scale-study CLI preset (it pins its
 * own core count and NoC sizing).
 */
bool
sweepConfig(const std::string &name, SystemConfig &cfg,
            sync::SyncLib::Flavor &flavor)
{
    if (name == "msa64") {
        cfg = sys::configFor(sys::PaperConfig::MsaOmu2, 64);
        flavor = sys::flavorFor(sys::PaperConfig::MsaOmu2);
        return true;
    }
    return sys::cliPresetFor(name, 0, 2, cfg, flavor);
}

ThreadedResult
runThreaded(const char *name, unsigned threads, unsigned scale,
            unsigned reps)
{
    SystemConfig base;
    sync::SyncLib::Flavor flavor = sync::SyncLib::Flavor::Hw;
    if (!sweepConfig(name, base, flavor))
        fatal("simperf: unknown sweep preset %s", name);
    base.simThreads = threads;

    AppSpec spec = appByName("radiosity");
    spec.iters *= scale;

    ThreadedResult res;
    res.name = name;
    res.cores = base.numCores;
    res.threads = threads;
    res.scale = scale;
    for (unsigned r = 0; r < reps; ++r) {
        SystemConfig cfg = base;
        sys::System s(cfg);
        sync::SyncLib lib(flavor, cfg.numCores);
        AppLayout layout;
        for (CoreId c = 0; c < cfg.numCores; ++c)
            s.start(c, appThread(s.api(c), spec, layout, &lib,
                                 cfg.numCores, 1));
        auto t0 = std::chrono::steady_clock::now();
        auto out = s.runDetailed(tickLimit);
        auto t1 = std::chrono::steady_clock::now();
        if (out != sys::RunOutcome::Finished)
            fatal("simperf: %s --threads %u rep %u did not finish", name,
                  threads, r);
        double w = std::chrono::duration<double>(t1 - t0).count();
        if (r == 0 || w < res.wallSec) {
            res.wallSec = w;
            res.ticks = s.eventQueue().now();
            res.events = s.eventQueue().executedEvents();
        }
    }
    return res;
}

/**
 * The `--threads` 1/2/4 sweep over msa64 and msa256. Best-of-reps
 * wall times (host noise would otherwise dominate the speedup
 * ratios); msa256 runs at half scale to bound the bench's wall time
 * — speedups are ratios within a row group, so the scales need not
 * match across presets.
 */
std::vector<ThreadedResult>
runThreadsSweep(unsigned scale, unsigned reps)
{
    const char *targets[] = {"msa64", "msa256"};
    const unsigned counts[] = {1, 2, 4};
    std::vector<ThreadedResult> rows;
    for (const char *t : targets) {
        const unsigned s =
            std::strcmp(t, "msa256") == 0 ? std::max(1u, scale / 2) : scale;
        double base_wall = 0.0;
        for (unsigned n : counts) {
            ThreadedResult r = runThreaded(t, n, s, reps);
            if (n == 1)
                base_wall = r.wallSec;
            r.speedup = r.wallSec > 0.0 ? base_wall / r.wallSec : 0.0;
            std::printf("%-8s --threads %u  ticks/s=%-9llu wall=%.3fs "
                        "speedup=%.2fx\n",
                        r.name.c_str(), r.threads,
                        (unsigned long long)(r.ticks / r.wallSec), r.wallSec,
                        r.speedup);
            rows.push_back(std::move(r));
        }
    }
    return rows;
}

void
writeJson(std::ostream &os, const char *mode, unsigned scale, unsigned reps,
          const std::vector<Result> &results,
          const std::vector<ThreadedResult> &threaded)
{
    os << "{\"schemaVersion\":1,\"generator\":\"bench/simperf\","
       << "\"kernel\":\"calendar-queue\",\"mode\":\"" << mode << "\","
       << "\"" << mode << "\":{\"scale\":" << scale << ",\"reps\":" << reps
       << ",\"workload\":\"radiosity\",\"presets\":[";
    bool first = true;
    for (const Result &r : results) {
        if (!first)
            os << ",";
        first = false;
        os << "\n  {\"name\":\"" << r.name << "\",\"cores\":" << r.cores
           << ",\"ticks\":" << r.ticks << ",\"events\":" << r.events
           << ",\"wallSec\":" << r.wallSec
           << ",\"ticksPerSec\":" << std::uint64_t(r.ticks / r.wallSec)
           << ",\"eventsPerSec\":" << std::uint64_t(r.events / r.wallSec)
           << ",\"eventsPerTick\":" << double(r.events) / double(r.ticks)
           << ",\"maxRssKb\":" << r.rssKb
           << ",\"pool\":{\"recordCapacity\":" << r.pool.recordCapacity
           << ",\"chunkAllocs\":" << r.pool.chunkAllocs
           << ",\"heapCallbacks\":" << r.pool.heapCallbacks
           << ",\"scheduled\":" << r.pool.scheduled
           << ",\"maxPending\":" << r.pool.maxPending << "}}";
    }
    os << "\n]";
    if (!threaded.empty()) {
        os << ",\"threaded\":{\"workload\":\"radiosity\",\"hostThreads\":"
           << std::thread::hardware_concurrency() << ",\"rows\":[";
        first = true;
        for (const ThreadedResult &r : threaded) {
            if (!first)
                os << ",";
            first = false;
            os << "\n  {\"name\":\"" << r.name << "\",\"cores\":" << r.cores
               << ",\"threads\":" << r.threads << ",\"scale\":" << r.scale
               << ",\"ticks\":" << r.ticks << ",\"events\":" << r.events
               << ",\"wallSec\":" << r.wallSec
               << ",\"ticksPerSec\":" << std::uint64_t(r.ticks / r.wallSec)
               << ",\"speedup\":" << r.speedup << "}";
        }
        os << "\n]}";
    }
    os << "}}\n";
}

/**
 * Best (smallest) wall time over @p reps timed runs of the msa16
 * preset, with or without the sampler + resource monitor armed.
 * Best-of damps host noise far better than the mean, which matters
 * when gating a few-percent overhead budget.
 */
double
bestWallSec(const Preset &p, const AppSpec &spec, unsigned reps, bool obs)
{
    double best = 0.0;
    for (unsigned r = 0; r < reps; ++r) {
        SystemConfig cfg = sys::configFor(p.pc, p.cores);
        if (obs) {
            cfg.obs.sampleInterval = 10000;
            cfg.obs.heatmapEnabled = true;
        }
        sys::System s(cfg);
        sync::SyncLib lib(sys::flavorFor(p.pc), p.cores);
        AppLayout layout;
        for (CoreId c = 0; c < p.cores; ++c)
            s.start(c, appThread(s.api(c), spec, layout, &lib, p.cores, 1));
        auto t0 = std::chrono::steady_clock::now();
        auto out = s.runDetailed(tickLimit);
        auto t1 = std::chrono::steady_clock::now();
        if (out != sys::RunOutcome::Finished)
            fatal("simperf: obs-overhead rep %u did not finish", r);
        double w = std::chrono::duration<double>(t1 - t0).count();
        if (r == 0 || w < best)
            best = w;
    }
    return best;
}

/**
 * The fault-free observability overhead gate. Returns the process
 * exit code: 0 within budget, 1 over budget.
 */
int
runObsOverhead(bool smoke, double tolerance)
{
    const Preset &p = presets[0]; // msa16
    const unsigned scale = smoke ? 2 : 8;
    const unsigned reps = smoke ? 3 : 5;
    AppSpec spec = appByName("radiosity");
    spec.iters *= scale;

    bestWallSec(p, spec, 1, false); // warm-up, untimed semantics

    const double plain = bestWallSec(p, spec, reps, false);
    const double obs = bestWallSec(p, spec, reps, true);
    const double overhead = plain > 0.0 ? obs / plain - 1.0 : 0.0;
    const bool ok = overhead <= tolerance;
    std::printf("obs-overhead %-8s plain=%.3fs obs=%.3fs overhead=%+.2f%% "
                "budget=%.0f%%  %s\n",
                p.name, plain, obs, overhead * 100.0, tolerance * 100.0,
                ok ? "ok" : "OVER BUDGET");
    if (!ok)
        std::fprintf(stderr,
                     "simperf: sampler+heatmap overhead %.2f%% exceeds "
                     "%.0f%% budget\n",
                     overhead * 100.0, tolerance * 100.0);
    return ok ? 0 : 1;
}

/**
 * Minimal lookup into a prior simperf JSON: the ticksPerSec of
 * @p preset inside the @p mode section. Relies on the schema placing
 * each mode's presets after its `"<mode>":` key and the "before"
 * section last. Returns -1 when absent (not an error: a baseline may
 * predate a preset).
 */
double
baselineTicksPerSec(const std::string &json, const std::string &mode,
                    const std::string &preset)
{
    std::size_t sec = json.find("\"" + mode + "\":");
    if (sec == std::string::npos)
        return -1.0;
    std::size_t at = json.find("\"name\":\"" + preset + "\"", sec);
    if (at == std::string::npos)
        return -1.0;
    const std::string key = "\"ticksPerSec\":";
    std::size_t k = json.find(key, at);
    if (k == std::string::npos)
        return -1.0;
    return std::atof(json.c_str() + k + key.size());
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    bool smoke = false;
    bool obs_overhead = false;
    std::string out_path = "BENCH_simperf.json";
    std::string check_path;
    double tolerance = 0.15;
    bool tolerance_set = false;
    double threads_gate = 1.8;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--smoke") {
            smoke = true;
        } else if (a == "--obs-overhead") {
            obs_overhead = true;
        } else if (a == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (a == "--check" && i + 1 < argc) {
            check_path = argv[++i];
        } else if (a == "--tolerance" && i + 1 < argc) {
            tolerance = std::atof(argv[++i]);
            tolerance_set = true;
        } else if (a == "--threads-gate" && i + 1 < argc) {
            threads_gate = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr,
                         "usage: simperf [--smoke] [--obs-overhead] "
                         "[--out FILE] [--check FILE] [--tolerance X] "
                         "[--threads-gate X]\n");
            return 2;
        }
    }
    if (obs_overhead)
        return runObsOverhead(smoke, tolerance_set ? tolerance : 0.03);
    const char *mode = smoke ? "smoke" : "full";
    const unsigned scale = smoke ? 2 : 20;
    const unsigned reps = smoke ? 1 : 3;

    std::vector<Result> results;
    for (const Preset &p : presets) {
        Result r = runPreset(p, scale, reps);
        std::printf("%-16s ticks/s=%-8llu events/s=%-9llu ev/tick=%.2f "
                    "chunkAllocs=%llu heapCallbacks=%llu rss=%ldKB\n",
                    r.name.c_str(),
                    (unsigned long long)(r.ticks / r.wallSec),
                    (unsigned long long)(r.events / r.wallSec),
                    double(r.events) / double(r.ticks),
                    (unsigned long long)r.pool.chunkAllocs,
                    (unsigned long long)r.pool.heapCallbacks, r.rssKb);
        results.push_back(std::move(r));
    }

    // PDES sweep: msa64 and msa256 at --threads 1/2/4. The msa256
    // threads-4 row doubles as the scale-study smoke gate — it must
    // complete at all.
    std::vector<ThreadedResult> threaded =
        runThreadsSweep(scale, smoke ? 1 : 2);

    if (!out_path.empty()) {
        std::ofstream f(out_path);
        if (!f)
            fatal("simperf: cannot open %s", out_path.c_str());
        writeJson(f, mode, scale, reps, results, threaded);
        std::printf("wrote %s\n", out_path.c_str());
    }

    // The speedup gate: msa64 at 4 threads must beat --threads 1 by
    // the configured factor. Only meaningful where 4 host threads can
    // actually run in parallel.
    const unsigned host_threads = std::thread::hardware_concurrency();
    if (threads_gate > 0.0 && host_threads >= 4) {
        for (const ThreadedResult &r : threaded) {
            if (r.name != "msa64" || r.threads != 4)
                continue;
            if (r.speedup < threads_gate) {
                std::fprintf(stderr,
                             "simperf: msa64 --threads 4 speedup %.2fx "
                             "below the %.2fx gate\n",
                             r.speedup, threads_gate);
                return 1;
            }
            std::printf("threads-gate msa64 %.2fx >= %.2fx  ok\n",
                        r.speedup, threads_gate);
        }
    } else if (threads_gate > 0.0) {
        std::printf("threads-gate skipped: host has %u hardware "
                    "thread(s), need 4\n",
                    host_threads);
    }

    if (check_path.empty())
        return 0;

    std::ifstream bf(check_path);
    if (!bf)
        fatal("simperf: cannot open baseline %s", check_path.c_str());
    std::stringstream ss;
    ss << bf.rdbuf();
    const std::string baseline = ss.str();

    int failures = 0;
    for (const Result &r : results) {
        double base = baselineTicksPerSec(baseline, mode, r.name);
        if (base <= 0) {
            std::printf("check %-16s no %s baseline, skipped\n",
                        r.name.c_str(), mode);
            continue;
        }
        double now = r.ticks / r.wallSec;
        double ratio = now / base;
        bool ok = ratio >= 1.0 - tolerance;
        std::printf("check %-16s %8.0f vs baseline %8.0f  (%+.1f%%)  %s\n",
                    r.name.c_str(), now, base, (ratio - 1.0) * 100.0,
                    ok ? "ok" : "REGRESSED");
        if (!ok)
            ++failures;
    }
    if (failures) {
        std::fprintf(stderr,
                     "simperf: %d preset(s) regressed more than %.0f%%\n",
                     failures, tolerance * 100.0);
        return 1;
    }
    return 0;
}
