/**
 * @file
 * Figure 5 reproduction: raw synchronization latency (cycles) for
 * LockAcquire (no contention), LockHandoff (high contention),
 * BarrierHandoff, CondSignal, and CondBroadcast, on 16- and 64-core
 * systems, across Baseline (pthread), MSA-0, MSA/OMU-2, MCS-Tour,
 * and Spinlock. The paper plots these on a log scale; we print the
 * table the plot is drawn from.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "workload/microbench.hh"

using namespace misar;
using workload::RawLatencies;
using sys::PaperConfig;

int
main()
{
    setVerbose(false);
    bench::banner("Figure 5", "Raw Synchronization Latency (cycles)");

    const PaperConfig configs[] = {
        PaperConfig::Baseline, PaperConfig::Msa0, PaperConfig::MsaOmu2,
        PaperConfig::McsTour,  PaperConfig::Spinlock,
    };
    const unsigned core_counts[] = {16, 64};

    struct Row
    {
        const char *name;
        double RawLatencies::*field;
    };
    const Row rows[] = {
        {"LockAcquire", &RawLatencies::lockAcquire},
        {"LockHandoff", &RawLatencies::lockHandoff},
        {"BarrierHandoff", &RawLatencies::barrierHandoff},
        {"CondSignal", &RawLatencies::condSignal},
        {"CondBroadcast", &RawLatencies::condBroadcast},
    };

    // measure[config][cores]
    RawLatencies lat[5][2];
    for (unsigned ci = 0; ci < 5; ++ci)
        for (unsigned ni = 0; ni < 2; ++ni)
            lat[ci][ni] =
                workload::measureRawLatency(core_counts[ni], configs[ci]);

    std::printf("%-16s %-8s", "Operation", "Cores");
    for (PaperConfig pc : configs)
        std::printf(" %18s", sys::paperConfigName(pc));
    std::printf("\n");

    for (const Row &row : rows) {
        for (unsigned ni = 0; ni < 2; ++ni) {
            std::printf("%-16s %-8u", row.name, core_counts[ni]);
            for (unsigned ci = 0; ci < 5; ++ci)
                std::printf(" %18.0f", lat[ci][ni].*row.field);
            std::printf("\n");
        }
    }

    std::printf("\nPaper shape checks (§6.1):\n");
    auto &msa16 = lat[2][0];
    auto &msa64 = lat[2][1];
    auto &pth16 = lat[0][0];
    auto &pth64 = lat[0][1];
    auto &mcs64 = lat[3][1];
    std::printf("  MSA/OMU-2 no-contention acquire beats pthread: "
                "%s (%.0f vs %.0f)\n",
                msa16.lockAcquire < pth16.lockAcquire ? "YES" : "NO",
                msa16.lockAcquire, pth16.lockAcquire);
    std::printf("  MSA/OMU-2 lowest 64-core lock handoff:          "
                "%s (%.0f vs pthread %.0f, MCS %.0f)\n",
                (msa64.lockHandoff < pth64.lockHandoff &&
                 msa64.lockHandoff < mcs64.lockHandoff) ? "YES" : "NO",
                msa64.lockHandoff, pth64.lockHandoff, mcs64.lockHandoff);
    std::printf("  MSA barrier ~order-of-magnitude under tournament: "
                "%s (%.0f vs %.0f)\n",
                msa64.barrierHandoff * 4 < mcs64.barrierHandoff ? "YES"
                                                                 : "NO",
                msa64.barrierHandoff, mcs64.barrierHandoff);
    std::printf("  pthread handoff scales poorly 16->64:            "
                "%s (%.0f -> %.0f)\n",
                pth64.lockHandoff > pth16.lockHandoff ? "YES" : "NO",
                pth16.lockHandoff, pth64.lockHandoff);
    return 0;
}
