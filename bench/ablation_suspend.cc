/**
 * @file
 * Ablation: barrier suspension policy under OS interrupt pressure.
 * Compares the paper's chosen force-to-software behaviour (§4.2.2)
 * against the counter-based alternative the paper describes but
 * rejects for hardware complexity, on a barrier-heavy application
 * with varying timer-interrupt rates.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "sync/sync_lib.hh"
#include "system/interrupt_driver.hh"
#include "system/system.hh"
#include "workload/app_catalog.hh"
#include "workload/synthetic_app.hh"

using namespace misar;
using namespace misar::workload;

namespace {

Tick
run(const AppSpec &spec, unsigned cores, Tick irq_period, bool opt,
    std::uint64_t *aborts, std::uint64_t *deferred)
{
    SystemConfig cfg = makeConfig(cores, AccelMode::MsaOmu, 2);
    cfg.msa.barrierSuspendOpt = opt;
    sys::System s(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, cores);
    AppLayout lay;
    for (CoreId c = 0; c < cores; ++c)
        s.start(c, appThread(s.api(c), spec, lay, &lib, cores, 1));
    sys::InterruptDriver irq(s, irq_period, 77);
    if (!s.run(5000000000ULL))
        fatal("run did not finish");
    *aborts = 0;
    *deferred = 0;
    for (CoreId t = 0; t < cores; ++t) {
        const std::string p = "tile" + std::to_string(t) + ".msa.";
        *aborts += s.stats().counter(p + "barrierAborts").value();
        *deferred +=
            s.stats().counter(p + "barrierSuspendsDeferred").value();
    }
    return s.makespan();
}

} // namespace

int
main()
{
    setVerbose(false);
    bench::banner("Ablation",
                  "barrier suspension policy under interrupts "
                  "(streamcluster, 16 cores)");

    const AppSpec &spec = appByName("streamcluster");
    std::printf("%-14s %16s %18s %12s %12s\n", "IRQ period",
                "ForceToSW(cyc)", "SuspendOpt(cyc)", "swAborts",
                "deferred");
    for (Tick period : {500u, 2000u, 10000u, 50000u}) {
        std::uint64_t aborts = 0, dummy = 0, deferred = 0, dummy2 = 0;
        Tick base = run(spec, 16, period, false, &aborts, &dummy);
        Tick opt = run(spec, 16, period, true, &dummy2, &deferred);
        std::printf("%-14llu %16llu %18llu %12llu %12llu\n",
                    static_cast<unsigned long long>(period),
                    static_cast<unsigned long long>(base),
                    static_cast<unsigned long long>(opt),
                    static_cast<unsigned long long>(aborts),
                    static_cast<unsigned long long>(deferred));
    }
    std::printf("\nExpected: under frequent interrupts, force-to-"
                "software pays repeated software\nbarriers (aborts "
                "column), while the §4.2.2 alternative keeps the "
                "barrier in\nhardware at the cost the paper worried "
                "about only in verification effort.\n");
    return 0;
}
