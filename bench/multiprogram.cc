/**
 * @file
 * Multiprogramming study (paper §3.2's motivation for the OMU):
 * two applications co-run on disjoint halves of a 64-core chip,
 * sharing the per-tile MSA slices. With the OMU, entries recycle
 * across both programs; without it, whichever program initializes
 * first occupies entries forever and starves the other.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "sync/sync_lib.hh"
#include "system/system.hh"
#include "workload/app_catalog.hh"
#include "workload/synthetic_app.hh"

using namespace misar;
using namespace misar::workload;

namespace {

struct CoRunResult
{
    Tick makespanA, makespanB;
    double coverage;
};

CoRunResult
coRun(const AppSpec &a, const AppSpec &b, bool omu)
{
    const unsigned cores = 64, half = 32;
    SystemConfig cfg = makeConfig(cores, AccelMode::MsaOmu, 2);
    cfg.msa.omuEnabled = omu;
    sys::System s(cfg);
    sync::SyncLib lib(sync::SyncLib::Flavor::Hw, cores);

    AppLayout la;
    la.firstCore = 0;
    AppLayout lb;
    lb.relocate(1);
    lb.firstCore = half;

    for (CoreId c = 0; c < half; ++c)
        s.start(c, appThread(s.api(c), a, la, &lib, half, 1));
    for (CoreId c = half; c < cores; ++c)
        s.start(c, appThread(s.api(c), b, lb, &lib, half, 2));
    if (!s.run(2000000000ULL))
        fatal("co-run did not finish");

    CoRunResult r;
    r.makespanA = r.makespanB = 0;
    for (CoreId c = 0; c < half; ++c)
        r.makespanA = std::max(r.makespanA, s.core(c).finishTick());
    for (CoreId c = half; c < cores; ++c)
        r.makespanB = std::max(r.makespanB, s.core(c).finishTick());
    r.coverage = s.hwCoverage();
    return r;
}

} // namespace

int
main()
{
    setVerbose(false);
    bench::banner("Multiprogramming",
                  "two apps sharing one chip (32+32 of 64 cores)");

    struct Pair
    {
        const char *a, *b;
    };
    const Pair pairs[] = {
        {"fluidanimate", "streamcluster"},
        {"radiosity", "ocean"},
    };

    std::printf("%-30s %14s %14s %10s\n", "Per-app runtime",
                "WithOMU(cyc)", "NoOMU(cyc)", "OMU gain");
    for (const Pair &p : pairs) {
        const AppSpec &a = appByName(p.a);
        const AppSpec &b = appByName(p.b);
        CoRunResult with = coRun(a, b, true);
        CoRunResult without = coRun(a, b, false);
        std::printf("%-30s %14llu %14llu %9.2fx\n", p.a,
                    static_cast<unsigned long long>(with.makespanA),
                    static_cast<unsigned long long>(without.makespanA),
                    static_cast<double>(without.makespanA) /
                        with.makespanA);
        std::printf("%-30s %14llu %14llu %9.2fx\n", p.b,
                    static_cast<unsigned long long>(with.makespanB),
                    static_cast<unsigned long long>(without.makespanB),
                    static_cast<double>(without.makespanB) /
                        with.makespanB);
        std::printf("%-30s %13.1f%% %13.1f%%\n", "  chip sync coverage",
                    100.0 * with.coverage, 100.0 * without.coverage);
    }
    std::printf("\nExpected: the OMU lets both co-running programs "
                "share the tiny MSA; without it,\ncoverage collapses "
                "and the co-run slows down.\n");
    return 0;
}
