/**
 * @file
 * Figure 6 reproduction: overall application speedup relative to the
 * pthread baseline, for 16- and 64-core systems, across MSA-0,
 * MCS-Tour, MSA/OMU-1, MSA/OMU-2, MSA-inf, and Ideal. Individual
 * rows for the paper's headline applications plus the GeoMean over
 * all 26 Splash-2 + PARSEC workloads.
 *
 * The sweep is described by bench/campaigns/fig6.json (fig6_quick
 * .json with --quick) and executed through the campaign engine's
 * in-process path — the same spec run under `misar_campaign --spec
 * bench/campaigns/fig6.json --workers N` produces the same numbers
 * in parallel, with resume support.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.hh"
#include "orch/aggregate.hh"
#include "orch/campaign_spec.hh"
#include "orch/engine.hh"
#include "sim/logging.hh"
#include "workload/app_catalog.hh"

using namespace misar;
using namespace misar::workload;
using namespace misar::orch;

namespace {

/** The report columns: every non-baseline preset, in spec order. */
std::vector<const PresetSpec *>
columnPresets(const CampaignSpec &spec)
{
    std::vector<const PresetSpec *> cols;
    for (const PresetSpec &p : spec.presets)
        if (p.name != spec.baseline)
            cols.push_back(&p);
    return cols;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    bench::banner("Figure 6",
                  "Application speedup vs pthread baseline");

    const char *dir = std::getenv("MISAR_CAMPAIGN_SPEC_DIR");
    std::string spec_path =
        std::string(dir ? dir : MISAR_CAMPAIGN_SPEC_DIR) +
        (quick ? "/fig6_quick.json" : "/fig6.json");
    CampaignSpec spec;
    std::string err;
    if (!CampaignSpec::parseFile(spec_path, spec, err))
        fatal("%s: %s", spec_path.c_str(), err.c_str());
    err = spec.validate();
    if (!err.empty())
        fatal("%s: %s", spec_path.c_str(), err.c_str());

    const std::vector<JobRecord> records = runCampaignInProcess(spec);
    const CampaignReport report(spec, records);
    const std::vector<const PresetSpec *> cols = columnPresets(spec);

    std::printf("%-14s %-6s %9s", "App", "Cores", "BaseCyc");
    for (const PresetSpec *p : cols)
        std::printf(" %10s", p->name.c_str());
    std::printf("\n");

    // speedups[column][cores] across all apps, for the GeoMean.
    std::vector<std::vector<std::vector<double>>> speedups(
        cols.size(), std::vector<std::vector<double>>(spec.cores.size()));

    const auto &headline = headlineApps();
    auto is_headline = [&](const std::string &n) {
        for (const auto &h : headline)
            if (h == n)
                return true;
        return false;
    };

    // Catalog order (the spec's app list is a subset of it), so the
    // quick and full tables list rows identically to the pre-engine
    // bench.
    for (const AppSpec &aspec : appCatalog()) {
        bool in_spec = false;
        for (const std::string &a : spec.apps)
            in_spec |= a == aspec.name;
        if (!in_spec)
            continue;
        for (std::size_t ni = 0; ni < spec.cores.size(); ++ni) {
            const unsigned cores = spec.cores[ni];
            const Cell *base = report.cell(spec.baseline, aspec.name,
                                           cores);
            if (!base || base->recs.empty() ||
                base->recs[0]->outcome != JobOutcome::Finished)
                fatal("baseline run of %s did not finish",
                      aspec.name.c_str());
            const bool print = is_headline(aspec.name);
            if (print)
                std::printf("%-14s %-6u %9llu", aspec.name.c_str(),
                            cores,
                            static_cast<unsigned long long>(
                                base->recs[0]->makespan));
            for (std::size_t ci = 0; ci < cols.size(); ++ci) {
                std::vector<double> sp = report.speedups(
                    cols[ci]->name, aspec.name, cores);
                if (sp.empty())
                    fatal("%s on %s did not finish", aspec.name.c_str(),
                          cols[ci]->name.c_str());
                speedups[ci][ni].push_back(sp[0]);
                if (print)
                    std::printf(" %10.2f", sp[0]);
            }
            if (print)
                std::printf("\n");
        }
    }

    for (std::size_t ni = 0; ni < spec.cores.size(); ++ni) {
        std::printf("%-14s %-6u %9s", "GeoMean", spec.cores[ni], "-");
        for (std::size_t ci = 0; ci < cols.size(); ++ci)
            std::printf(" %10.2f", bench::geoMean(speedups[ci][ni]));
        std::printf("\n");
    }

    std::printf("\nPaper shape checks (§6.2): MSA/OMU-2 ~1.43X average, "
                "within a few %% of MSA-inf/Ideal;\nMSA-0 within ~1%% of "
                "baseline; MCS-Tour in between.\n");
    return 0;
}
