/**
 * @file
 * Figure 6 reproduction: overall application speedup relative to the
 * pthread baseline, for 16- and 64-core systems, across MSA-0,
 * MCS-Tour, MSA/OMU-1, MSA/OMU-2, MSA-inf, and Ideal. Individual
 * rows for the paper's headline applications plus the GeoMean over
 * all 26 Splash-2 + PARSEC workloads.
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"
#include "sim/logging.hh"
#include "workload/app_catalog.hh"
#include "workload/runner.hh"

using namespace misar;
using namespace misar::workload;
using sys::PaperConfig;

int
main(int argc, char **argv)
{
    setVerbose(false);
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    bench::banner("Figure 6",
                  "Application speedup vs pthread baseline");

    const PaperConfig configs[] = {
        PaperConfig::Msa0,    PaperConfig::McsTour, PaperConfig::MsaOmu1,
        PaperConfig::MsaOmu2, PaperConfig::MsaInf,  PaperConfig::Ideal,
    };
    const unsigned core_counts[] = {16, 64};

    std::printf("%-14s %-6s %9s", "App", "Cores", "BaseCyc");
    for (PaperConfig pc : configs)
        std::printf(" %10s", sys::paperConfigName(pc));
    std::printf("\n");

    // speedups[config][cores] across all apps, for the GeoMean.
    std::vector<double> speedups[6][2];

    const auto &headline = headlineApps();
    auto is_headline = [&](const std::string &n) {
        for (const auto &h : headline)
            if (h == n)
                return true;
        return false;
    };

    for (const AppSpec &spec : appCatalog()) {
        if (quick && !is_headline(spec.name))
            continue;
        for (unsigned ni = 0; ni < 2; ++ni) {
            unsigned cores = core_counts[ni];
            RunResult base = runApp(spec, cores, PaperConfig::Baseline);
            if (!base.finished)
                fatal("baseline run of %s did not finish",
                      spec.name.c_str());
            bool print = is_headline(spec.name);
            if (print)
                std::printf("%-14s %-6u %9llu", spec.name.c_str(), cores,
                            static_cast<unsigned long long>(base.makespan));
            for (unsigned ci = 0; ci < 6; ++ci) {
                RunResult r = runApp(spec, cores, configs[ci]);
                double sp = static_cast<double>(base.makespan) /
                            static_cast<double>(r.makespan);
                speedups[ci][ni].push_back(sp);
                if (print)
                    std::printf(" %10.2f", sp);
            }
            if (print)
                std::printf("\n");
        }
    }

    for (unsigned ni = 0; ni < 2; ++ni) {
        std::printf("%-14s %-6u %9s", "GeoMean", core_counts[ni], "-");
        for (unsigned ci = 0; ci < 6; ++ci)
            std::printf(" %10.2f", bench::geoMean(speedups[ci][ni]));
        std::printf("\n");
    }

    std::printf("\nPaper shape checks (§6.2): MSA/OMU-2 ~1.43X average, "
                "within a few %% of MSA-inf/Ideal;\nMSA-0 within ~1%% of "
                "baseline; MCS-Tour in between.\n");
    return 0;
}
