#include "msa/omu.hh"

#include "sim/logging.hh"

namespace misar {
namespace msa {

Omu::Omu(unsigned num_counters, StatRegistry &stats,
         const std::string &stat_prefix)
    : counters(num_counters, 0), stats(stats), statPrefix(stat_prefix)
{
    if (num_counters == 0)
        fatal("OMU requires at least one counter");
}

void
Omu::increment(Addr a, std::uint32_t n)
{
    std::uint32_t &c = counters[index(a)];
    if (c >= saturatedValue - n) {
        // Sticky saturation: the true software-active population can
        // no longer be tracked, so the bucket pins at the ceiling and
        // its addresses stay in software forever (safe: the OMU may
        // only ever steer operations *toward* software).
        if (c != saturatedValue)
            stats.counter(statPrefix + "omuSaturations").inc();
        c = saturatedValue;
    } else {
        c += n;
    }
    stats.counter(statPrefix + "omuIncrements").inc(n);
}

void
Omu::decrement(Addr a, std::uint32_t n)
{
    std::uint32_t &c = counters[index(a)];
    if (c == saturatedValue) {
        // The counter overflowed in the past; decrements cannot be
        // applied meaningfully, so the bucket stays saturated.
        stats.counter(statPrefix + "omuDecrements").inc(n);
        return;
    }
    if (c < n)
        panic("OMU counter underflow for addr %llx (have %u, dec %u)",
              static_cast<unsigned long long>(a), c, n);
    c -= n;
    stats.counter(statPrefix + "omuDecrements").inc(n);
}

} // namespace msa
} // namespace misar
