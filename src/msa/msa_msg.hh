/**
 * @file
 * MSA protocol messages between per-core clients and per-tile MSA
 * slices, and between MSA slices (condition-variable pinning).
 */

#ifndef MISAR_MSA_MSA_MSG_HH
#define MISAR_MSA_MSA_MSG_HH

#include <bitset>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "cpu/op.hh"
#include "mem/home_slice.hh"
#include "noc/packet.hh"
#include "sim/types.hh"

namespace misar {
namespace msa {

/** MSA message opcodes. */
enum class MsaOp : std::uint8_t
{
    // client -> home MSA (vnet 0)
    Lock,
    TryLock,
    Unlock,
    RdLock,
    WrLock,
    RwUnlock,
    Barrier,
    CondWait,
    CondSignal,
    CondBcast,
    Finish,
    /** Interrupt while blocked in a sync instruction (paper §4.x.2). */
    Suspend,
    /** HWSync-bit fast re-acquire notification (paper §5). */
    LockSilent,
    /** Release notification for a silently-held lock (paper §5). */
    UnlockSilent,
    /**
     * Timeout abandonment notice: the client gave up retrying txn
     * (a bounded-retry op) and resolved it to FAIL locally. The home
     * reconciles OMU accounting for whatever it did or did not see
     * of that transaction. Never fault-injected.
     */
    FailNotice,
    /**
     * Lease renewal from a holder's client hub (fire-and-forget,
     * answers a LeaseProbe). Sent by the hub hardware, so a live
     * holder renews even while its thread is blocked or descheduled;
     * only a dead core stays silent. Never fault-injected (txn 0).
     */
    LeaseRenew,

    // home MSA -> client (vnet 1)
    RespSuccess,
    RespFail,
    RespAbort,
    /** TRYLOCK handled in hardware but the lock is held. */
    RespBusy,
    /** Lock-waiter suspend acknowledged; client re-executes LOCK. */
    SuspendAck,
    /**
     * Completion notice for a fire-and-forget UNLOCK of a
     * hardware-held lock: carries the handoff flag for silent-
     * privilege cleanup but never completes an instruction.
     */
    UnlockDone,
    /**
     * Lease-expiry liveness probe for the recorded owner of a lock
     * entry. The owner's client hub answers with LeaseRenew if the
     * core is alive; no answer within leaseProbeTimeout convicts it.
     */
    LeaseProbe,

    // cond-var home -> lock home (vnet 0)
    /** UNLOCK&PIN: unlock on behalf of requester, pin lock entry. */
    UnlockPin,
    /** Plain unlock on behalf of requester (COND_WAIT on a hit). */
    UnlockOnBehalf,
    /** LOCK on behalf of requester (cond signal wake-up). */
    LockOnBehalf,
    /** LOCK&UNPIN: last cond waiter; also unpin the lock entry. */
    LockUnpin,
    /** Unpin only (cond entry died without a lock re-acquire). */
    Unpin,

    // lock home -> cond-var home (vnet 1)
    UnlockPinAck,
    UnlockPinNack,

    // dying slice -> buddy slice (vnet 0)
    /**
     * Slice-failover state transfer: the whole decommissioned
     * slice's live state (entries, OMU counters, per-client dedup
     * state, variable epochs) re-homes to the buddy in one modeled
     * transfer burst. Never fault-injected (txn 0).
     */
    SliceHandoff,
};

/** True for messages travelling on the reply virtual network. */
inline bool
isReplyOp(MsaOp op)
{
    switch (op) {
      case MsaOp::RespSuccess:
      case MsaOp::RespFail:
      case MsaOp::RespAbort:
      case MsaOp::RespBusy:
      case MsaOp::SuspendAck:
      case MsaOp::UnlockDone:
      case MsaOp::LeaseProbe:
      case MsaOp::UnlockPinAck:
      case MsaOp::UnlockPinNack:
        return true;
      default:
        return false;
    }
}

/** Short opcode mnemonic (trace/debug labels). */
inline const char *
msaOpName(MsaOp op)
{
    switch (op) {
      case MsaOp::Lock: return "LOCK";
      case MsaOp::TryLock: return "TRYLOCK";
      case MsaOp::Unlock: return "UNLOCK";
      case MsaOp::RdLock: return "RDLOCK";
      case MsaOp::WrLock: return "WRLOCK";
      case MsaOp::RwUnlock: return "RWUNLOCK";
      case MsaOp::Barrier: return "BARRIER";
      case MsaOp::CondWait: return "COND_WAIT";
      case MsaOp::CondSignal: return "COND_SIGNAL";
      case MsaOp::CondBcast: return "COND_BCAST";
      case MsaOp::Finish: return "FINISH";
      case MsaOp::Suspend: return "SUSPEND";
      case MsaOp::LockSilent: return "LOCK_SILENT";
      case MsaOp::UnlockSilent: return "UNLOCK_SILENT";
      case MsaOp::FailNotice: return "FAIL_NOTICE";
      case MsaOp::LeaseRenew: return "LEASE_RENEW";
      case MsaOp::RespSuccess: return "RESP_SUCCESS";
      case MsaOp::RespFail: return "RESP_FAIL";
      case MsaOp::RespAbort: return "RESP_ABORT";
      case MsaOp::RespBusy: return "RESP_BUSY";
      case MsaOp::SuspendAck: return "SUSPEND_ACK";
      case MsaOp::UnlockDone: return "UNLOCK_DONE";
      case MsaOp::LeaseProbe: return "LEASE_PROBE";
      case MsaOp::UnlockPin: return "UNLOCK_PIN";
      case MsaOp::UnlockOnBehalf: return "UNLOCK_ON_BEHALF";
      case MsaOp::LockOnBehalf: return "LOCK_ON_BEHALF";
      case MsaOp::LockUnpin: return "LOCK_UNPIN";
      case MsaOp::Unpin: return "UNPIN";
      case MsaOp::UnlockPinAck: return "UNLOCK_PIN_ACK";
      case MsaOp::UnlockPinNack: return "UNLOCK_PIN_NACK";
      case MsaOp::SliceHandoff: return "SLICE_HANDOFF";
    }
    return "?";
}

/**
 * Snapshot of a dying slice's live state, carried by a SliceHandoff
 * message to the buddy slice. One modeled transfer burst re-homes the
 * variables instead of shedding them (PR 1's decommission fallback).
 */
struct SliceHandoffState
{
    /** One MSA entry, flattened for transfer. */
    struct Entry
    {
        std::uint8_t type = 0;   //!< msa::EntryType as raw value
        Addr addr = invalidAddr;
        CoreId owner = invalidCore;
        CoreId pushedTo = invalidCore;
        std::uint32_t pinCount = 0;
        std::uint32_t goal = 0;
        Addr lockAddr = invalidAddr;
        bool busy = false;
        std::bitset<mem::maxCores> hwQueue;
        std::bitset<mem::maxCores> readersHeld;
        std::bitset<mem::maxCores> waitIsWriter;
    };

    /** Per-client at-most-once transaction state. */
    struct Txn
    {
        CoreId core = invalidCore;
        std::uint64_t seen = 0;
        std::uint64_t done = 0;
        std::uint8_t doneOp = 0;  //!< MsaOp of the cached response
        bool doneHandoff = false;
    };

    std::vector<Entry> entries;
    std::vector<Txn> txns;
    /** Per-slot OMU counter values (same hash across slices). */
    std::vector<std::uint32_t> omuCounts;
    /** Per-variable revocation epochs. */
    std::vector<std::pair<Addr, std::uint32_t>> epochs;
};

/** One MSA protocol message (always control-sized). */
class MsaMsg : public noc::Packet
{
  public:
    MsaMsg(CoreId src, CoreId dst, MsaOp op, Addr addr)
        : Packet(src, dst, noc::ctrlBytes), op(op), addr(addr)
    {
        vnet = isReplyOp(op) ? 1u : 0u;
    }

    MsaOp op;
    /** Primary synchronization address. */
    Addr addr;
    /** Associated lock address (COND_WAIT and cond->lock traffic). */
    Addr addr2 = invalidAddr;
    /** Barrier goal count. */
    std::uint32_t goal = 0;
    /**
     * Core the operation is performed for. For client requests this
     * equals src; for cond->lock traffic it is the waiting core.
     */
    CoreId requester = invalidCore;
    /** For Suspend: which instruction is being suspended. */
    cpu::SyncInstr suspendKind = cpu::SyncInstr::Lock;
    /** For COND_WAIT: the requester holds the lock via a silent
     *  acquire (no MSA entry); the cond var must go to software. */
    bool lockHeldSilently = false;
    /** For lock-grant RespSuccess: pinned lock, do not record the
     *  silent privilege. */
    bool noSilent = false;
    /**
     * For UNLOCK RespSuccess: the lock was handed to a waiter. The
     * releaser is still blocked in its UNLOCK when this arrives, so
     * its client can revoke the local silent privilege before the
     * core can issue another LOCK — closing the race between a
     * silent re-acquire and the in-flight handoff invalidation.
     */
    bool handoff = false;
    /** For UNLOCK: the sender already completed the instruction and
     *  expects an UnlockDone notice, not a RespSuccess. */
    bool noReply = false;
    /**
     * Transaction id for at-most-once delivery under retransmission
     * (0 = untracked). Clients stamp their per-core op sequence
     * number on transactional requests; slices echo it on the final
     * response so stale/duplicate responses can be discarded.
     * Fire-and-forget, silent, suspend and slice-to-slice traffic
     * stays untracked.
     */
    std::uint64_t txn = 0;
    /**
     * Observability flow id stitching one sync operation end-to-end
     * across the trace (core issue -> slice decision -> completion).
     * 0 = untraced; only stamped when the tracer is enabled, so it
     * never influences protocol behaviour.
     */
    std::uint64_t flowId = 0;
    /**
     * Wire epoch for lease-based revocation fencing. Grants carry
     * varEpoch + 1 for the granted variable; the client echoes the
     * recorded value on Unlock/RwUnlock. 0 means "no epoch info"
     * (pre-lease traffic, migrated unlocks) and is never fenced; a
     * nonzero value smaller than the variable's current wire epoch
     * identifies a stale release from a revoked (dead) owner.
     */
    std::uint32_t epoch = 0;
    /** SliceHandoff payload (shared so MsaMsg stays copyable). */
    std::shared_ptr<SliceHandoffState> handoffState;
};

} // namespace msa
} // namespace misar

#endif // MISAR_MSA_MSA_MSG_HH
