#include "msa/msa_slice.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace misar {
namespace msa {

MsaSlice::MsaSlice(EventQueue &eq, const SystemConfig &cfg, CoreId tile,
                   mem::HomeSlice &home, SendFn send, StatRegistry &stats)
    : eq(eq), cfg(cfg), tile(tile), home(home), send(std::move(send)),
      stats(stats), statPrefix("tile" + std::to_string(tile) + ".msa."),
      infinite(cfg.msa.mode == AccelMode::MsaInfinite),
      _omu(cfg.msa.omuCounters, stats, statPrefix),
      txns(cfg.numThreads())
{
    if (!infinite)
        entries.resize(cfg.msa.msaEntries);
}

void
MsaSlice::attachObservers(obs::Tracer *t, obs::SyncProfiler *p)
{
    tracer = t;
    profiler = p;
    if (tracer)
        track = tracer->addTrack(obs::pidMsa, tile,
                                 "slice " + std::to_string(tile));
}

void
MsaSlice::attachMonitor(obs::ResourceMonitor *m)
{
    monitor = m;
}

void
MsaSlice::traceInstant(const char *name, Addr a, std::uint64_t value,
                       bool has_value)
{
    if (tracer)
        tracer->instant(track, eq.now(), name, a, value, has_value);
}

void
MsaSlice::forEachEntry(const std::function<void(const MsaEntry &)> &fn) const
{
    for (const auto &e : entries)
        if (e.valid)
            fn(e);
}

unsigned
MsaSlice::validEntries() const
{
    unsigned n = 0;
    for (const auto &e : entries)
        n += e.valid;
    return n;
}

unsigned
MsaSlice::freeEntries() const
{
    return static_cast<unsigned>(entries.size()) - validEntries();
}

const MsaEntry *
MsaSlice::findEntry(Addr addr) const
{
    const std::uint32_t *slot = entryIndex.find(addr);
    if (!slot)
        return nullptr;
    const MsaEntry &e = entries[*slot];
    if (!e.valid || e.addr != addr)
        panic("MSA %u: entry index out of sync for %llx", tile,
              static_cast<unsigned long long>(addr));
    return &e;
}

MsaEntry *
MsaSlice::find(Addr addr)
{
    return const_cast<MsaEntry *>(
        static_cast<const MsaSlice *>(this)->findEntry(addr));
}

bool
MsaSlice::typeSupported(SyncType t) const
{
    switch (t) {
      case SyncType::Lock:
      case SyncType::RwLock: // rides the lock flag (Fig 9 study)
        return cfg.msa.support.locks;
      case SyncType::Barrier:
        return cfg.msa.support.barriers;
      case SyncType::Cond:
        return cfg.msa.support.condVars;
    }
    return false;
}

void
MsaSlice::omuInc(Addr a, std::uint32_t n)
{
    if (!cfg.msa.omuEnabled)
        return;
    _omu.increment(a, n);
    traceInstant("OMU_INC", a, _omu.count(a), true);
    if (monitor)
        monitor->omuUpdate(tile, _omu.activeCounters(), _omu.count(a),
                           eq.now());
}

void
MsaSlice::omuDec(Addr a, std::uint32_t n)
{
    if (!cfg.msa.omuEnabled)
        return;
    _omu.decrement(a, n);
    traceInstant("OMU_DEC", a, _omu.count(a), true);
    if (monitor)
        monitor->omuUpdate(tile, _omu.activeCounters(), _omu.count(a),
                           eq.now());
}

bool
MsaSlice::omuActive(Addr a) const
{
    return cfg.msa.omuEnabled && _omu.active(a);
}

void
MsaSlice::freeEntry(MsaEntry &e)
{
    entryIndex.erase(e.addr);
    e.reset();
}

void
MsaSlice::retireEntry(MsaEntry &e)
{
    if (cfg.msa.omuEnabled) {
        traceInstant("EVICT", e.addr);
        freeEntry(e);
        stats.counter(statPrefix + "evictions").inc();
        return;
    }
    // Without the OMU, deallocation is unsafe (paper §3.2): park the
    // entry; the address keeps it forever.
    e.hwQueue.reset();
    e.owner = invalidCore;
    e.busy = false;
}

std::shared_ptr<MsaMsg>
MsaSlice::makeClientResp(CoreId core, MsaOp op, Addr addr)
{
    auto m = std::make_shared<MsaMsg>(tile, cfg.tileOf(core), op, addr);
    m->requester = core;
    m->flowId = curFlowId;
    if (op == MsaOp::RespSuccess || op == MsaOp::RespFail ||
        op == MsaOp::RespAbort || op == MsaOp::RespBusy) {
        // Which transaction does this answer? The one being
        // dispatched right now if it is this core's own request;
        // otherwise the core's latest tracked request (held replies:
        // lock/barrier/RW grants delivered long after arrival).
        // On-behalf wake-ups (cond grants from the lock home) have
        // id <= done and stay untracked (txn 0), which the client
        // accepts unconditionally.
        ClientTxn &ct = txns[core];
        const std::uint64_t id = ct.cur ? ct.cur : ct.seen;
        if (id > ct.done) {
            ct.done = id;
            ct.doneOp = op;
            ct.doneHandoff = false;
            m->txn = id;
        }
    }
    return m;
}

void
MsaSlice::respond(CoreId core, MsaOp op, Addr addr)
{
    send(makeClientResp(core, op, addr));
}

void
MsaSlice::respondFinal(CoreId core, MsaOp op, Addr addr, bool handoff,
                       bool no_silent)
{
    auto m = makeClientResp(core, op, addr);
    m->handoff = handoff;
    m->noSilent = no_silent;
    if (m->txn != 0)
        txns[core].doneHandoff = handoff;
    send(std::move(m));
}

void
MsaSlice::defer(const std::shared_ptr<MsaMsg> &msg)
{
    deferred.push_back(msg);
    stats.counter(statPrefix + "deferred").inc();
}

void
MsaSlice::drainDeferred()
{
    std::deque<std::shared_ptr<MsaMsg>> drained;
    drained.swap(deferred);
    for (auto &m : drained) {
        // Re-enter below the dedup gate: a deferred original must
        // not be mistaken for a retransmission of itself.
        eq.scheduleL(_lane, cfg.msa.msaLatency,
                    [this, m = std::move(m)] { dispatch(m); });
    }
}

void
MsaSlice::handleMessage(std::shared_ptr<MsaMsg> msg)
{
    eq.scheduleL(_lane, cfg.msa.msaLatency,
                [this, m = std::move(msg)] { process(m); });
}

void
MsaSlice::process(const std::shared_ptr<MsaMsg> &msg)
{
    stats.counter(statPrefix + "requests").inc();
    if (buddy != invalidCore) {
        // Failed over: this slice is only a forwarding shell. Every
        // message — requests, retransmissions, even in-flight acks —
        // goes to the buddy, which holds the merged dedup state.
        forwardToBuddy(msg);
        return;
    }
    if (awaitingHandoff && msg->op != MsaOp::SliceHandoff) {
        // Buddy side of a failover: hold all traffic until the
        // handed-off state is merged, then re-enter it through this
        // same gate in arrival order.
        awaitingQueue.push_back(msg);
        return;
    }
    if (msg->txn != 0 && msg->op != MsaOp::FailNotice) {
        // Transaction-tracked client request: deduplicate against
        // retransmissions (at-most-once execution).
        ClientTxn &ct = txns[msg->requester];
        if (msg->txn == ct.done) {
            // Completed already — the final response was lost or
            // outrun; re-answer from the completion cache.
            stats.counter(statPrefix + "dupCompleted").inc();
            auto r = std::make_shared<MsaMsg>(
                tile, cfg.tileOf(msg->requester), ct.doneOp, msg->addr);
            r->requester = msg->requester;
            r->txn = ct.done;
            r->handoff = ct.doneHandoff;
            r->noSilent = true;
            r->flowId = msg->flowId;
            send(std::move(r));
            return;
        }
        if (msg->txn <= ct.seen) {
            // Duplicate of a transaction still in progress (queued,
            // deferred, or already superseded); drop it.
            stats.counter(statPrefix + "dupInProgress").inc();
            return;
        }
        ct.seen = msg->txn;
    }
    dispatch(msg);
}

void
MsaSlice::dispatch(const std::shared_ptr<MsaMsg> &msg)
{
    const bool tracked = msg->txn != 0 && msg->op != MsaOp::FailNotice &&
                         msg->requester != invalidCore;
    if (tracked)
        txns[msg->requester].cur = msg->txn;
    curFlowId = msg->flowId;
    if (tracer) {
        // A 1-tick slice on this row per dispatched request; the flow
        // step at the same tick binds inside it, linking the issuing
        // core's flow through this slice to the eventual response.
        tracer->complete(track, eq.now(), eq.now() + 1,
                         msaOpName(msg->op), msg->addr);
        if (curFlowId)
            tracer->flow(track, obs::FlowPhase::Step, curFlowId, eq.now(),
                         msg->addr);
    }
    switch (msg->op) {
      case MsaOp::Lock:
        doLock(msg);
        break;
      case MsaOp::TryLock:
        doTryLock(msg);
        break;
      case MsaOp::Unlock:
        doUnlock(msg);
        break;
      case MsaOp::RdLock:
        doRwLock(msg, false);
        break;
      case MsaOp::WrLock:
        doRwLock(msg, true);
        break;
      case MsaOp::RwUnlock:
        doRwUnlock(msg);
        break;
      case MsaOp::Barrier:
        doBarrier(msg);
        break;
      case MsaOp::CondWait:
        doCondWait(msg);
        break;
      case MsaOp::CondSignal:
        doCondSignal(msg, false);
        break;
      case MsaOp::CondBcast:
        doCondSignal(msg, true);
        break;
      case MsaOp::Finish:
        doFinish(msg);
        break;
      case MsaOp::Suspend:
        doSuspend(msg);
        break;
      case MsaOp::LockSilent:
        // Entry-less notification: the silent holder re-acquired.
        stats.counter(statPrefix + "silentLocks").inc();
        break;
      case MsaOp::UnlockSilent:
        stats.counter(statPrefix + "silentUnlocks").inc();
        break;
      case MsaOp::UnlockPin:
        doUnlockPin(msg);
        break;
      case MsaOp::UnlockOnBehalf:
        doUnlockOnBehalf(msg);
        break;
      case MsaOp::LockOnBehalf:
        doLockOnBehalf(msg, false);
        break;
      case MsaOp::LockUnpin:
        doLockOnBehalf(msg, true);
        break;
      case MsaOp::Unpin:
        doUnpin(msg);
        break;
      case MsaOp::UnlockPinAck:
        doUnlockPinResp(msg, true);
        break;
      case MsaOp::UnlockPinNack:
        doUnlockPinResp(msg, false);
        break;
      case MsaOp::FailNotice:
        doFailNotice(msg);
        break;
      case MsaOp::LeaseRenew:
        doLeaseRenew(msg);
        break;
      case MsaOp::SliceHandoff:
        doHandoff(msg);
        break;
      default:
        panic("MSA %u: unexpected message op %d", tile,
              static_cast<int>(msg->op));
    }
    if (tracked)
        txns[msg->requester].cur = 0;
    curFlowId = 0;
}

MsaEntry *
MsaSlice::allocate(Addr addr)
{
    if (offline) {
        // Decommissioned: every miss is denied, so the caller's
        // existing FAIL path (omuInc + RespFail) routes the address
        // to software.
        stats.counter(statPrefix + "offlineDenied").inc();
        traceInstant("OFFLINE_DENY", addr);
        return nullptr;
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
        MsaEntry &e = entries[i];
        if (!e.valid) {
            e.reset();
            e.valid = true;
            e.addr = addr;
            entryIndex.insert(addr, static_cast<std::uint32_t>(i));
            stats.counter(statPrefix + "allocations").inc();
            traceInstant("ALLOC", addr);
            return &e;
        }
    }
    if (infinite) {
        // Callers only hold the returned pointer transiently within
        // this event, so growing the vector here is safe.
        entries.emplace_back();
        MsaEntry &e = entries.back();
        e.valid = true;
        e.addr = addr;
        entryIndex.insert(addr,
                          static_cast<std::uint32_t>(entries.size() - 1));
        stats.counter(statPrefix + "allocations").inc();
        traceInstant("ALLOC", addr);
        return &e;
    }
    traceInstant("OVERFLOW", addr);
    if (monitor)
        monitor->onOverflow(tile, eq.now());
    return nullptr;
}

void
MsaSlice::release(MsaEntry &e)
{
    if (e.hwQueue.any())
        panic("MSA %u: releasing entry with a non-empty HWQueue", tile);
    e.owner = invalidCore;
    if (e.pinCount > 0)
        return; // pinned by condition variables; keep the entry
    retireEntry(e);
}

CoreId
MsaSlice::pickNext(MsaEntry &e)
{
    const unsigned n = cfg.numThreads();
    for (unsigned i = 0; i < n; ++i) {
        CoreId c = (nbtc + i) % n;
        if (e.hwQueue.test(c)) {
            nbtc = (c + 1) % n;
            return c;
        }
    }
    panic("MSA %u: pickNext on an empty HWQueue", tile);
}

void
MsaSlice::grantLock(MsaEntry &e, CoreId core)
{
    e.owner = core;
    const Addr addr = e.addr;
    stats.counter(statPrefix + "lockGrants").inc();
    if (profiler)
        profiler->onGrant(addr, core);

    // The HWSync privilege (paper §5) only pays off when the grantee
    // is likely the next acquirer, so do not push the block when
    // other waiters are queued, when the lock is pinned by condition
    // variables (a silent hold has no MSA entry, which would break
    // the cond-in-HW => lock-in-HW invariant), or when the
    // optimization is off.
    const bool contended = e.hwQueue.count() > 1;
    // An offline slice keeps serving pinned/live entries until they
    // drain, but must not mint new silent privileges: the entry will
    // be shed at release, and a dangling privilege would outlive it.
    const bool want_push =
        cfg.msa.hwSyncBitOpt && e.pinCount == 0 && !contended && !offline;
    // A copy pushed to some *other* core earlier may still carry the
    // silent privilege; it must be revoked (invalidated, ack-gated)
    // before this grant completes. Freshly allocated entries always
    // take the gated path (want_push) because a privilege from a
    // previous entry generation may be outstanding.
    const bool need_revoke =
        e.pushedTo != invalidCore && e.pushedTo != core;

    // The push/revoke paths respond from an asynchronous coherence
    // callback, outside the dispatch window of the request that
    // triggered this grant: carry its flow id across the gap so the
    // response still closes (or hands off) the right flow.
    auto respond_grant = [this, core, addr, fid = curFlowId](
                             bool no_silent) {
        const std::uint64_t saved = curFlowId;
        curFlowId = fid;
        auto m = makeClientResp(core, MsaOp::RespSuccess, addr);
        m->noSilent = no_silent;
        m->epoch = wireEpoch(addr);
        send(std::move(m));
        curFlowId = saved;
    };

    // Arm the lease on the fresh grant: if the owner dies without
    // releasing, the missed renewals let this slice revoke the
    // orphaned lock instead of deadlocking its waiters.
    if (leasesEnabled())
        scheduleLease(e);

    // A variable re-homed here by a slice failover keeps its cache
    // home on the original (still-alive) tile: push/revoke through
    // the directory that actually owns the block.
    mem::HomeSlice &dir =
        homeLookup ? homeLookup(blockAlign(addr)) : home;

    // The block lives in the thread's tile-level L1; pushedTo tracks
    // the thread (its tile's cache holds the privilege copy).
    if (want_push) {
        // Ship the block in E state with the HWSync bit set along
        // with the SUCCESS response (paper §5).
        e.pushedTo = core;
        dir.grantExclusive(blockAlign(addr), cfg.tileOf(core), true,
                           [respond_grant] { respond_grant(false); });
    } else if (need_revoke) {
        // Strip the stale copy; push without the bit.
        e.pushedTo = invalidCore;
        dir.grantExclusive(blockAlign(addr), cfg.tileOf(core), false,
                           [respond_grant] { respond_grant(true); });
    } else {
        respond_grant(true);
    }
}

bool
MsaSlice::unlockCommon(MsaEntry &e, CoreId core)
{
    if (e.owner != core || !e.hwQueue.test(core))
        return false;
    e.hwQueue.reset(core);
    e.owner = invalidCore;
    if (e.hwQueue.any()) {
        CoreId next = pickNext(e);
        grantLock(e, next);
    } else {
        release(e);
    }
    return true;
}

void
MsaSlice::doLock(const std::shared_ptr<MsaMsg> &msg)
{
    const Addr addr = msg->addr;
    const CoreId core = msg->requester;

    if (!typeSupported(SyncType::Lock)) {
        omuInc(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }

    MsaEntry *e = find(addr);
    if (e) {
        if (e->tombstone) {
            respond(core, MsaOp::RespFail, addr);
            return;
        }
        if (e->busy) {
            defer(msg);
            return;
        }
        if (e->type != SyncType::Lock)
            panic("MSA %u: LOCK on active non-lock addr %llx", tile,
                  static_cast<unsigned long long>(addr));
        if (e->hwQueue.test(core))
            panic("MSA %u: recursive LOCK by core %u on %llx", tile, core,
                  static_cast<unsigned long long>(addr));
        e->hwQueue.set(core);
        if (e->hwQueue.count() == 1)
            grantLock(*e, core);
        // else: hold the reply until the lock is handed to us.
        return;
    }

    // Miss: consult the OMU.
    if (omuActive(addr)) {
        omuInc(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }
    e = allocate(addr);
    if (!e) {
        omuInc(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }
    e->type = SyncType::Lock;
    e->hwQueue.set(core);
    grantLock(*e, core);
}

void
MsaSlice::doTryLock(const std::shared_ptr<MsaMsg> &msg)
{
    const Addr addr = msg->addr;
    const CoreId core = msg->requester;

    // Any FAIL below pre-increments the OMU: the requester's software
    // CAS must be ordered after the address becomes software-active,
    // or a concurrent LOCK could win an MSA entry against a software
    // holder. If the software attempt loses, the client cancels the
    // increment with a no-reply FINISH.
    if (!typeSupported(SyncType::Lock)) {
        omuInc(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }
    MsaEntry *e = find(addr);
    if (e) {
        if (e->tombstone) {
            omuInc(addr);
            respond(core, MsaOp::RespFail, addr);
            return;
        }
        if (e->busy) {
            defer(msg);
            return;
        }
        if (e->type != SyncType::Lock)
            panic("MSA %u: TRYLOCK on active non-lock addr %llx", tile,
                  static_cast<unsigned long long>(addr));
        if (e->hwQueue.any()) {
            // Held (or waited on): report busy without enqueueing.
            respond(core, MsaOp::RespBusy, addr);
            return;
        }
        e->hwQueue.set(core);
        grantLock(*e, core);
        return;
    }
    if (omuActive(addr)) {
        omuInc(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }
    e = allocate(addr);
    if (!e) {
        omuInc(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }
    e->type = SyncType::Lock;
    e->hwQueue.set(core);
    grantLock(*e, core);
}

void
MsaSlice::doUnlock(const std::shared_ptr<MsaMsg> &msg)
{
    const Addr addr = msg->addr;
    const CoreId core = msg->requester;

    if (!typeSupported(SyncType::Lock)) {
        omuDec(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }

    if (msg->epoch != 0 && msg->epoch < wireEpoch(addr)) {
        // Stale release from a revoked grant generation: the lease
        // machinery already reassigned (or freed) this lock after
        // declaring its owner dead. Fence the release — acting on it
        // would unlock the *new* owner's critical section. handoff
        // revokes any silent-privilege record at the (dead) client.
        stats.counter(statPrefix + "fencedReleases").inc();
        traceInstant("FENCED_RELEASE", addr, msg->epoch, true);
        respondFinal(core,
                     msg->noReply ? MsaOp::UnlockDone : MsaOp::RespSuccess,
                     addr, /*handoff=*/true);
        return;
    }

    MsaEntry *e = find(addr);
    if (!e) {
        if (msg->noReply)
            panic("MSA %u: fire-and-forget UNLOCK missed entry %llx",
                  tile, static_cast<unsigned long long>(addr));
        // Default-to-software: the matching LOCK failed too.
        omuDec(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }
    if (e->tombstone) {
        omuDec(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }
    if (e->busy) {
        defer(msg);
        return;
    }
    if (e->owner == core) {
        if (offline && cfg.msa.omuEnabled && e->pinCount == 0) {
            // Graceful decommission: instead of handing the lock to
            // the next hardware waiter, abort every waiter to
            // software and retire the entry. handoff=true revokes
            // the releaser's silent-privilege record — the word
            // belongs to software acquirers from here on.
            e->hwQueue.reset(core);
            e->owner = invalidCore;
            abortWaiters(*e, "offlineLockAborts");
            retireEntry(*e);
            respondFinal(core,
                         msg->noReply ? MsaOp::UnlockDone
                                      : MsaOp::RespSuccess,
                         addr, /*handoff=*/true);
            return;
        }
        const bool handoff = e->hwQueue.count() > 1;
        unlockCommon(*e, core);
        respondFinal(core,
                     msg->noReply ? MsaOp::UnlockDone : MsaOp::RespSuccess,
                     addr, handoff);
        return;
    }

    // UNLOCK from a core that is not the recorded owner: the owning
    // thread migrated (paper §4.1.2).
    stats.counter(statPrefix + "migratedUnlocks").inc();
    if (e->pinCount == 0 && cfg.msa.omuEnabled) {
        // Paper behaviour: reply SUCCESS, abort every waiter to
        // software, free the entry, bump the OMU by the abort count.
        respond(core, MsaOp::RespSuccess, addr);
        std::uint32_t aborted = 0;
        for (unsigned c = 0; c < cfg.numThreads(); ++c) {
            if (e->hwQueue.test(c)) {
                e->hwQueue.reset(c);
                respond(c, MsaOp::RespAbort, addr);
                ++aborted;
            }
        }
        if (aborted) {
            omuInc(addr, aborted);
            traceInstant("ABORT", addr, aborted, true);
        }
        stats.counter(statPrefix + "lockAborts").inc(aborted);
        freeEntry(*e);
        return;
    }
    // Pinned lock (freeing it would strand its condition variables)
    // or HWSync optimization enabled (abort-and-free would leave the
    // old owner's silent privilege dangling): use the tracked owner
    // for a precise handoff instead (see header comment).
    if (e->owner == invalidCore) {
        respond(core, MsaOp::RespFail, addr);
        return;
    }
    unlockCommon(*e, e->owner);
    respond(core, MsaOp::RespSuccess, addr);
}

void
MsaSlice::rwDrain(MsaEntry &e)
{
    // Offline: no new grants; doRwUnlock sheds the waiters once the
    // current holders fully release.
    if (offline && cfg.msa.omuEnabled)
        return;
    // Nothing to grant while a writer holds or waiters are absent.
    if (e.owner != invalidCore || !e.hwQueue.any())
        return;
    CoreId next = pickNext(e);
    if (e.waitIsWriter.test(next)) {
        // Writers need full exclusivity.
        if (e.readersHeld.any())
            return;
        e.hwQueue.reset(next);
        e.waitIsWriter.reset(next);
        e.owner = next;
        respondRwGrant(next, e.addr);
        return;
    }
    // Reader at the head: batch-grant every queued reader.
    for (unsigned c = 0; c < cfg.numThreads(); ++c) {
        if (e.hwQueue.test(c) && !e.waitIsWriter.test(c)) {
            e.hwQueue.reset(c);
            e.readersHeld.set(c);
            respondRwGrant(c, e.addr);
        }
    }
}

void
MsaSlice::respondRwGrant(CoreId core, Addr addr)
{
    auto m = makeClientResp(core, MsaOp::RespSuccess, addr);
    m->epoch = wireEpoch(addr);
    send(std::move(m));
}

void
MsaSlice::doRwLock(const std::shared_ptr<MsaMsg> &msg, bool writer)
{
    const Addr addr = msg->addr;
    const CoreId core = msg->requester;

    if (!typeSupported(SyncType::Lock)) {
        omuInc(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }
    MsaEntry *e = find(addr);
    if (e) {
        if (e->tombstone) {
            omuInc(addr);
            respond(core, MsaOp::RespFail, addr);
            return;
        }
        if (e->busy) {
            defer(msg);
            return;
        }
        if (e->type != SyncType::RwLock)
            panic("MSA %u: RW op on active non-RW addr %llx", tile,
                  static_cast<unsigned long long>(addr));
    } else {
        if (omuActive(addr)) {
            omuInc(addr);
            respond(core, MsaOp::RespFail, addr);
            return;
        }
        e = allocate(addr);
        if (!e) {
            omuInc(addr);
            respond(core, MsaOp::RespFail, addr);
            return;
        }
        e->type = SyncType::RwLock;
    }

    if (e->readersHeld.test(core) || e->owner == core ||
        e->hwQueue.test(core))
        panic("MSA %u: recursive RW acquire by core %u on %llx", tile,
              core, static_cast<unsigned long long>(addr));

    if (writer) {
        if (e->owner == invalidCore && !e->readersHeld.any() &&
            !e->hwQueue.any()) {
            e->owner = core;
            respondRwGrant(core, addr);
            return;
        }
    } else {
        // Readers may join unless a writer holds or waits (writer
        // preference prevents starvation).
        const bool writer_waiting = (e->hwQueue & e->waitIsWriter).any();
        if (e->owner == invalidCore && !writer_waiting) {
            e->readersHeld.set(core);
            respondRwGrant(core, addr);
            return;
        }
    }
    // Hold the reply: enqueue.
    e->hwQueue.set(core);
    if (writer)
        e->waitIsWriter.set(core);
    else
        e->waitIsWriter.reset(core);
}

void
MsaSlice::doRwUnlock(const std::shared_ptr<MsaMsg> &msg)
{
    const Addr addr = msg->addr;
    const CoreId core = msg->requester;

    if (!typeSupported(SyncType::Lock)) {
        omuDec(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }
    if (msg->epoch != 0 && msg->epoch < wireEpoch(addr)) {
        // Stale release from before a dead-writer revocation.
        stats.counter(statPrefix + "fencedReleases").inc();
        traceInstant("FENCED_RELEASE", addr, msg->epoch, true);
        if (!msg->noReply)
            respond(core, MsaOp::RespSuccess, addr);
        return;
    }
    MsaEntry *e = find(addr);
    if (!e) {
        if (msg->noReply)
            panic("MSA %u: fire-and-forget RW_UNLOCK missed entry %llx",
                  tile, static_cast<unsigned long long>(addr));
        omuDec(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }
    if (e->tombstone) {
        omuDec(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }
    if (e->busy) {
        defer(msg);
        return;
    }
    if (e->type != SyncType::RwLock)
        panic("MSA %u: RW_UNLOCK on non-RW addr %llx", tile,
              static_cast<unsigned long long>(addr));

    if (e->owner == core) {
        e->owner = invalidCore;
    } else if (e->readersHeld.test(core)) {
        e->readersHeld.reset(core);
    } else if (cfg.resil.coreFaultsEnabled() && msg->epoch != 0) {
        // A declared-dead reader was already dropped from readersHeld
        // (reader removal does not bump the epoch, so the top-of-
        // function fence cannot catch this): tolerate the stale
        // release instead of panicking.
        stats.counter(statPrefix + "fencedReleases").inc();
        if (!msg->noReply)
            respond(core, MsaOp::RespSuccess, addr);
        return;
    } else {
        panic("MSA %u: RW_UNLOCK by non-holder core %u on %llx", tile,
              core, static_cast<unsigned long long>(addr));
    }

    if (!msg->noReply)
        respond(core, MsaOp::RespSuccess, addr);
    if (offline && cfg.msa.omuEnabled) {
        // Shed only at full release: aborting waiters to software
        // while hardware holders remain would let a software writer
        // acquire the word concurrently with them.
        if (e->owner == invalidCore && !e->readersHeld.any()) {
            abortWaiters(*e, "offlineRwAborts");
            e->waitIsWriter.reset();
            retireEntry(*e);
        }
        return;
    }
    rwDrain(*e);
    if (e->owner == invalidCore && !e->readersHeld.any() &&
        !e->hwQueue.any())
        retireEntry(*e);
}

void
MsaSlice::doBarrier(const std::shared_ptr<MsaMsg> &msg)
{
    const Addr addr = msg->addr;
    const CoreId core = msg->requester;

    if (!typeSupported(SyncType::Barrier)) {
        omuInc(addr);
        respond(core, MsaOp::RespFail, addr);
        return;
    }

    MsaEntry *e = find(addr);
    if (!e) {
        if (omuActive(addr)) {
            omuInc(addr);
            respond(core, MsaOp::RespFail, addr);
            return;
        }
        e = allocate(addr);
        if (!e) {
            omuInc(addr);
            respond(core, MsaOp::RespFail, addr);
            return;
        }
        e->type = SyncType::Barrier;
        e->goal = msg->goal;
    } else {
        if (e->tombstone) {
            omuInc(addr);
            respond(core, MsaOp::RespFail, addr);
            return;
        }
        if (e->busy) {
            defer(msg);
            return;
        }
        if (e->type != SyncType::Barrier)
            panic("MSA %u: BARRIER on active non-barrier addr %llx", tile,
                  static_cast<unsigned long long>(addr));
        if (e->goal != msg->goal)
            panic("MSA %u: BARRIER goal mismatch on %llx (%u vs %u)", tile,
                  static_cast<unsigned long long>(addr), e->goal, msg->goal);
    }

    if (e->hwQueue.test(core))
        panic("MSA %u: duplicate BARRIER arrival of core %u", tile, core);
    e->hwQueue.set(core);
    if (profiler)
        profiler->onBarrierArrive(addr, eq.now());
    if (barrierQuorumMet(*e))
        releaseBarrier(*e);
}

bool
MsaSlice::barrierQuorumMet(const MsaEntry &e) const
{
    std::uint32_t arrived = static_cast<std::uint32_t>(e.hwQueue.count());
    // Membership reconfiguration (full-participation barriers only —
    // the per-entry goal carries no membership set, so a subset
    // barrier cannot know whether a dead core belongs to it): dead
    // members that have not arrived never will; count them toward
    // the quorum so the live waiters are released.
    if (cfg.resil.coreFaultsEnabled() && deadThreads.any() &&
        e.goal == cfg.numThreads())
        arrived +=
            static_cast<std::uint32_t>((deadThreads & ~e.hwQueue).count());
    return arrived >= e.goal;
}

void
MsaSlice::releaseBarrier(MsaEntry &e)
{
    for (unsigned c = 0; c < cfg.numThreads(); ++c)
        if (e.hwQueue.test(c))
            respond(c, MsaOp::RespSuccess, e.addr);
    stats.counter(statPrefix + "barrierReleases").inc();
    traceInstant("BARRIER_RELEASE", e.addr, e.goal, true);
    if (profiler)
        profiler->onBarrierRelease(e.addr, eq.now());
    retireEntry(e);
}

void
MsaSlice::doCondWait(const std::shared_ptr<MsaMsg> &msg)
{
    const Addr cond = msg->addr;
    const Addr lock = msg->addr2;
    const CoreId core = msg->requester;

    if (!typeSupported(SyncType::Cond)) {
        omuInc(cond);
        respond(core, MsaOp::RespFail, cond);
        return;
    }
    if (msg->lockHeldSilently) {
        // The waiter holds the lock via a silent acquire, so the lock
        // has no MSA entry; the cond var must go to software (whose
        // unlock path handles the silent hold correctly).
        omuInc(cond);
        respond(core, MsaOp::RespFail, cond);
        return;
    }
    if (offline && cfg.msa.omuEnabled) {
        // All cond entries were shed when the slice went offline (or
        // abort at UnlockPinResp settle), so no live entry can exist
        // here; sending the wait to software keeps every waiter of a
        // condvar in a single (software) domain.
        omuInc(cond);
        respond(core, MsaOp::RespFail, cond);
        return;
    }

    MsaEntry *e = find(cond);
    if (e) {
        if (e->tombstone) {
            omuInc(cond);
            respond(core, MsaOp::RespFail, cond);
            return;
        }
        if (e->busy) {
            defer(msg);
            return;
        }
        if (e->type != SyncType::Cond)
            panic("MSA %u: COND_WAIT on active non-cond addr %llx", tile,
                  static_cast<unsigned long long>(cond));
        if (e->lockAddr != lock)
            panic("MSA %u: COND_WAIT with mismatched lock on %llx", tile,
                  static_cast<unsigned long long>(cond));
        e->hwQueue.set(core);
        // Release the lock the waiter holds (paper §4.3): plain
        // unlock on the waiter's behalf; the pin already exists.
        auto u = std::make_shared<MsaMsg>(
            tile, mem::homeTile(blockAlign(lock), cfg.numCores),
            MsaOp::UnlockOnBehalf, lock);
        u->requester = core;
        send(std::move(u));
        return; // reply held until signal/broadcast
    }

    if (omuActive(cond)) {
        omuInc(cond);
        respond(core, MsaOp::RespFail, cond);
        return;
    }
    e = allocate(cond);
    if (!e) {
        omuInc(cond);
        respond(core, MsaOp::RespFail, cond);
        return;
    }
    // Reserve the entry and ask the lock's home to UNLOCK&PIN.
    e->type = SyncType::Cond;
    e->lockAddr = lock;
    e->busy = true;
    auto up = std::make_shared<MsaMsg>(
        tile, mem::homeTile(blockAlign(lock), cfg.numCores),
        MsaOp::UnlockPin, lock);
    up->addr2 = cond;
    up->requester = core;
    send(std::move(up));
}

void
MsaSlice::doUnlockPin(const std::shared_ptr<MsaMsg> &msg)
{
    const Addr lock = msg->addr;
    const Addr cond = msg->addr2;
    const CoreId waiter = msg->requester;
    // Recompute the cond var's home from its address rather than
    // trusting msg->src(): a request forwarded by a failed-over slice
    // carries the forwarder as source, and the reply must reach the
    // cond home (whose own forwarding shell re-routes it if that
    // slice failed over too).
    const CoreId cond_home = mem::homeTile(blockAlign(cond), cfg.numCores);

    auto nack = [&] {
        auto r = std::make_shared<MsaMsg>(tile, cond_home,
                                          MsaOp::UnlockPinNack, cond);
        r->addr2 = lock;
        r->requester = waiter;
        send(std::move(r));
    };

    MsaEntry *e = find(lock);
    if (!e || e->type != SyncType::Lock) {
        nack(); // lock is (or must stay) in software
        return;
    }
    if (e->busy) {
        defer(msg);
        return;
    }
    if (e->owner != waiter || !e->hwQueue.test(waiter)) {
        nack();
        return;
    }
    // Pin before unlocking so the entry cannot be evicted.
    ++e->pinCount;
    unlockCommon(*e, waiter);
    auto r = std::make_shared<MsaMsg>(tile, cond_home, MsaOp::UnlockPinAck,
                                      cond);
    r->addr2 = lock;
    r->requester = waiter;
    send(std::move(r));
}

void
MsaSlice::doUnlockPinResp(const std::shared_ptr<MsaMsg> &msg, bool ok)
{
    const Addr cond = msg->addr;
    const CoreId waiter = msg->requester;
    MsaEntry *e = find(cond);
    if (!e || !e->busy || e->type != SyncType::Cond)
        panic("MSA %u: stray UNLOCK&PIN response for %llx", tile,
              static_cast<unsigned long long>(cond));
    e->busy = false;
    if (ok) {
        if (offline && cfg.msa.omuEnabled) {
            // The slice went offline while this reserve was in
            // flight (busy entries are skipped by shedEntries):
            // abort the waiter to the software path now. The lock
            // was already unlocked-and-pinned on its behalf; drop
            // the pin again.
            stats.counter(statPrefix + "offlineCondAborts").inc();
            respond(waiter, MsaOp::RespAbort, cond);
            omuInc(cond);
            sendUnpin(e->lockAddr);
            freeEntry(*e);
            drainDeferred();
            return;
        }
        e->hwQueue.set(waiter);
    } else {
        if (cfg.msa.omuEnabled) {
            freeEntry(*e);
        } else {
            // Without the OMU the entry cannot be freed safely; park
            // it as a tombstone so the address stays software-handled.
            e->tombstone = true;
            e->hwQueue.reset();
        }
        omuInc(cond);
        respond(waiter, MsaOp::RespFail, cond);
    }
    drainDeferred();
}

void
MsaSlice::doUnlockOnBehalf(const std::shared_ptr<MsaMsg> &msg)
{
    const Addr lock = msg->addr;
    const CoreId waiter = msg->requester;
    MsaEntry *e = find(lock);
    if (!e || e->type != SyncType::Lock)
        panic("MSA %u: UnlockOnBehalf for unpinned lock %llx", tile,
              static_cast<unsigned long long>(lock));
    if (e->busy) {
        defer(msg);
        return;
    }
    if (!unlockCommon(*e, waiter))
        panic("MSA %u: COND_WAIT by core %u not holding lock %llx", tile,
              waiter, static_cast<unsigned long long>(lock));
}

void
MsaSlice::doCondSignal(const std::shared_ptr<MsaMsg> &msg, bool broadcast)
{
    const Addr cond = msg->addr;
    const CoreId signaler = msg->requester;

    if (!typeSupported(SyncType::Cond)) {
        respond(signaler, MsaOp::RespFail, cond);
        return;
    }
    MsaEntry *e = find(cond);
    if (!e || e->tombstone) {
        respond(signaler, MsaOp::RespFail, cond);
        return;
    }
    if (e->busy) {
        defer(msg);
        return;
    }
    if (e->type != SyncType::Cond)
        panic("MSA %u: COND_SIGNAL on active non-cond addr %llx", tile,
              static_cast<unsigned long long>(cond));
    if (!e->hwQueue.any()) {
        // Parked entry (OMU disabled) with no waiters: no-op signal.
        respond(signaler, MsaOp::RespFail, cond);
        return;
    }

    respond(signaler, MsaOp::RespSuccess, cond);
    stats.counter(statPrefix +
                  (broadcast ? "condBroadcasts" : "condSignals")).inc();

    const Addr lock = e->lockAddr;
    const CoreId lock_home = mem::homeTile(blockAlign(lock), cfg.numCores);
    // Without the OMU the cond entry is never freed, so its pin on
    // the lock entry must be kept across "releases" as well.
    const bool can_unpin = cfg.msa.omuEnabled;
    auto wake = [&](CoreId w, bool last) {
        auto m = std::make_shared<MsaMsg>(
            tile, lock_home,
            (last && can_unpin) ? MsaOp::LockUnpin : MsaOp::LockOnBehalf,
            lock);
        m->addr2 = cond;
        m->requester = w;
        send(std::move(m));
    };

    if (broadcast) {
        std::vector<CoreId> waiters;
        for (unsigned i = 0; i < cfg.numThreads(); ++i) {
            CoreId c = (nbtc + i) % cfg.numThreads();
            if (e->hwQueue.test(c))
                waiters.push_back(c);
        }
        for (std::size_t i = 0; i < waiters.size(); ++i) {
            e->hwQueue.reset(waiters[i]);
            wake(waiters[i], i + 1 == waiters.size());
        }
        retireEntry(*e);
    } else {
        CoreId w = pickNext(*e);
        e->hwQueue.reset(w);
        const bool last = !e->hwQueue.any();
        wake(w, last);
        if (last)
            retireEntry(*e);
    }
}

void
MsaSlice::doLockOnBehalf(const std::shared_ptr<MsaMsg> &msg, bool unpin)
{
    const Addr lock = msg->addr;
    const CoreId waiter = msg->requester;
    MsaEntry *e = find(lock);
    if (!e || e->type != SyncType::Lock)
        panic("MSA %u: LockOnBehalf for unpinned lock %llx", tile,
              static_cast<unsigned long long>(lock));
    if (e->busy) {
        defer(msg);
        return;
    }
    if (unpin) {
        if (e->pinCount == 0)
            panic("MSA %u: LOCK&UNPIN with zero pin count on %llx", tile,
                  static_cast<unsigned long long>(lock));
        --e->pinCount;
    }
    e->hwQueue.set(waiter);
    if (e->hwQueue.count() == 1)
        grantLock(*e, waiter);
}

void
MsaSlice::doUnpin(const std::shared_ptr<MsaMsg> &msg)
{
    const Addr lock = msg->addr;
    MsaEntry *e = find(lock);
    if (!e || e->type != SyncType::Lock)
        panic("MSA %u: Unpin for unknown lock %llx", tile,
              static_cast<unsigned long long>(lock));
    if (e->busy) {
        defer(msg);
        return;
    }
    if (e->pinCount == 0)
        panic("MSA %u: Unpin with zero pin count on %llx", tile,
              static_cast<unsigned long long>(lock));
    --e->pinCount;
    if (e->pinCount == 0 && !e->hwQueue.any() && e->owner == invalidCore)
        retireEntry(*e);
}

void
MsaSlice::doFinish(const std::shared_ptr<MsaMsg> &msg)
{
    omuDec(msg->addr);
    if (!msg->noReply)
        respond(msg->requester, MsaOp::RespFail, msg->addr);
}

void
MsaSlice::doSuspend(const std::shared_ptr<MsaMsg> &msg)
{
    const Addr addr = msg->addr;
    const CoreId core = msg->requester;
    MsaEntry *e = find(addr);

    switch (msg->suspendKind) {
      case cpu::SyncInstr::RdLock:
      case cpu::SyncInstr::WrLock:
        if (e && !e->busy && e->type == SyncType::RwLock &&
            e->hwQueue.test(core)) {
            e->hwQueue.reset(core);
            e->waitIsWriter.reset(core);
            // The dequeued transaction leaves the slice; the client
            // re-sends it (same txn) after the resume delay, and that
            // re-send must pass the dedup gate.
            txns[core].seen = txns[core].done;
            stats.counter(statPrefix + "lockSuspends").inc();
            rwDrain(*e); // a parked reader batch may now be eligible
        }
        respond(core, MsaOp::SuspendAck, addr);
        break;

      case cpu::SyncInstr::Lock:
        if (e && !e->busy && e->type == SyncType::Lock &&
            e->hwQueue.test(core) && e->owner != core) {
            // Dequeue the waiter (paper §4.1.2); let the post-resume
            // re-send (same txn) pass the dedup gate.
            e->hwQueue.reset(core);
            txns[core].seen = txns[core].done;
            stats.counter(statPrefix + "lockSuspends").inc();
        }
        // Ack in all cases; if a grant crossed in flight it reaches
        // the client first (FIFO) and the ack is ignored there.
        respond(core, MsaOp::SuspendAck, addr);
        break;

      case cpu::SyncInstr::Barrier:
        if (cfg.msa.barrierSuspendOpt) {
            // §4.2.2 alternative: the suspended thread's arrival
            // stays counted; its release notice is simply consumed
            // when the thread is scheduled back in (the client
            // delays delivery by the resume latency). No software
            // fallback, no OMU traffic.
            stats.counter(statPrefix + "barrierSuspendsDeferred").inc();
            break;
        }
        if (e && !e->busy && e->type == SyncType::Barrier &&
            e->hwQueue.test(core) && cfg.msa.omuEnabled) {
            // Force the whole barrier to software (paper §4.2.2).
            std::uint32_t n = 0;
            for (unsigned c = 0; c < cfg.numThreads(); ++c) {
                if (e->hwQueue.test(c)) {
                    respond(c, MsaOp::RespAbort, addr);
                    ++n;
                }
            }
            omuInc(addr, n);
            stats.counter(statPrefix + "barrierAborts").inc();
            traceInstant("ABORT", addr, n, true);
            freeEntry(*e);
        }
        break;

      case cpu::SyncInstr::CondWait:
        if (e && !e->busy && e->type == SyncType::Cond &&
            e->hwQueue.test(core) && cfg.msa.omuEnabled) {
            e->hwQueue.reset(core);
            respond(core, MsaOp::RespAbort, addr);
            omuInc(addr);
            stats.counter(statPrefix + "condAborts").inc();
            if (!e->hwQueue.any()) {
                // Last waiter left without re-acquiring: unpin.
                sendUnpin(e->lockAddr);
                freeEntry(*e);
            }
        }
        break;

      default:
        panic("MSA %u: SUSPEND of non-blocking instruction", tile);
    }
}

std::uint32_t
MsaSlice::abortWaiters(MsaEntry &e, const char *stat_name)
{
    std::uint32_t n = 0;
    for (unsigned c = 0; c < cfg.numThreads(); ++c) {
        if (e.hwQueue.test(c) && c != e.owner) {
            e.hwQueue.reset(c);
            respond(c, MsaOp::RespAbort, e.addr);
            ++n;
        }
    }
    if (n) {
        omuInc(e.addr, n);
        stats.counter(statPrefix + stat_name).inc(n);
        traceInstant("ABORT", e.addr, n, true);
    }
    return n;
}

void
MsaSlice::sendUnpin(Addr lock)
{
    auto u = std::make_shared<MsaMsg>(
        tile, mem::homeTile(blockAlign(lock), cfg.numCores), MsaOp::Unpin,
        lock);
    send(std::move(u));
}

void
MsaSlice::shedEntries()
{
    for (auto &e : entries) {
        if (!e.valid || e.tombstone || e.busy)
            continue;
        switch (e.type) {
          case SyncType::Barrier:
            abortWaiters(e, "offlineBarrierAborts");
            freeEntry(e);
            break;
          case SyncType::Cond:
            // Aborted waiters re-run the wait in software; the cond
            // entry's pin on its lock entry is no longer needed.
            abortWaiters(e, "offlineCondAborts");
            sendUnpin(e.lockAddr);
            freeEntry(e);
            break;
          default:
            // Locks and RW locks shed at their next full release
            // (doUnlock / doRwUnlock): aborting their waiters while a
            // hardware holder remains would race software acquirers
            // against it.
            break;
        }
    }
}

void
MsaSlice::goOffline()
{
    if (offline)
        return;
    offline = true;
    stats.counter(statPrefix + "offlineEvents").inc();
    traceInstant("OFFLINE", 0);
    if (cfg.msa.omuEnabled)
        shedEntries();
}

// ---------------------------------------------------------------------
// Lease-based lock recovery (docs/PROTOCOL.md "Participant failure
// semantics").

bool
MsaSlice::leasesEnabled() const
{
    return cfg.resil.leaseTicks > 0;
}

std::uint32_t
MsaSlice::epochOf(Addr addr) const
{
    auto it = varEpoch.find(addr);
    return it == varEpoch.end() ? 0 : it->second;
}

std::uint32_t
MsaSlice::wireEpoch(Addr addr) const
{
    // Offset by one so 0 stays the "no epoch info" wire sentinel
    // (migrated unlocks and pre-lease traffic must never be fenced).
    return epochOf(addr) + 1;
}

void
MsaSlice::bumpEpoch(Addr addr)
{
    ++varEpoch[addr];
}

void
MsaSlice::scheduleLease(MsaEntry &e)
{
    // A slice-global stamp, not a per-entry generation: a stale
    // lease event can never mistake a re-used entry (or a re-grant
    // of the same address) for the grant it was armed against.
    e.leaseStamp = ++leaseSeq;
    eq.scheduleL(_lane, cfg.resil.leaseTicks,
                [this, addr = e.addr, stamp = e.leaseStamp] {
                    onLeaseCheck(addr, stamp);
                });
}

void
MsaSlice::onLeaseCheck(Addr addr, std::uint64_t stamp)
{
    if (buddy != invalidCore)
        return; // failed over: the buddy re-armed its own leases
    MsaEntry *e = find(addr);
    if (!e || e->type != SyncType::Lock || e->leaseStamp != stamp ||
        e->owner == invalidCore)
        return; // released, revoked, or re-granted since armed
    // Probe the recorded owner's client hub. The hub answers for the
    // core (renewal is hardware heartbeat, not thread progress), so
    // only a genuinely dead core stays silent.
    stats.counter(statPrefix + "leaseProbes").inc();
    auto p = std::make_shared<MsaMsg>(tile, cfg.tileOf(e->owner),
                                      MsaOp::LeaseProbe, addr);
    p->requester = e->owner;
    send(std::move(p));
    eq.scheduleL(_lane, cfg.resil.leaseProbeTimeout,
                [this, addr, stamp] { onLeaseVerdict(addr, stamp); });
}

void
MsaSlice::onLeaseVerdict(Addr addr, std::uint64_t stamp)
{
    if (buddy != invalidCore)
        return;
    MsaEntry *e = find(addr);
    if (!e || e->type != SyncType::Lock || e->leaseStamp != stamp ||
        e->owner == invalidCore)
        return; // renewed (re-stamped), released, or re-granted
    if (e->busy) {
        // Mid-reserve: revoking under a multi-step operation would
        // corrupt it. Re-check once the entry settles.
        eq.scheduleL(_lane, cfg.resil.leaseProbeTimeout,
                    [this, addr, stamp] { onLeaseVerdict(addr, stamp); });
        return;
    }
    warn("MSA %u: lease expired on %llx (owner core %u unresponsive), "
         "revoking",
         tile, static_cast<unsigned long long>(addr), e->owner);
    revokeOwner(*e);
}

void
MsaSlice::doLeaseRenew(const std::shared_ptr<MsaMsg> &msg)
{
    MsaEntry *e = find(msg->addr);
    if (!e || e->type != SyncType::Lock || e->owner != msg->requester)
        return; // released or revoked while the renewal was in flight
    stats.counter(statPrefix + "leaseRenewals").inc();
    scheduleLease(*e); // re-stamp: the pending verdict dies with it
}

void
MsaSlice::revokeOwner(MsaEntry &e)
{
    const Addr addr = e.addr;
    // Fence the dead owner's release generation *before* the next
    // grant: any UNLOCK it still has in flight carries the old wire
    // epoch and bounces off doUnlock's fence instead of releasing
    // the new owner's critical section.
    bumpEpoch(addr);
    stats.counter(statPrefix + "lockRevocations").inc();
    traceInstant("LEASE_REVOKE", addr, e.owner, true);
    e.hwQueue.reset(e.owner);
    e.owner = invalidCore;
    // e.pushedTo may still name the corpse; the next grant strips
    // that stale privilege copy through the need_revoke path.
    if (e.hwQueue.any()) {
        CoreId next = pickNext(e);
        grantLock(e, next);
    } else {
        release(e);
    }
}

// ---------------------------------------------------------------------
// Dead-participant reconfiguration (failure-detector declarations).

void
MsaSlice::coreDeclaredDead(CoreId core)
{
    if (deadThreads.test(core))
        return;
    deadThreads.set(core);
    // One reconfiguration event per slice per declaration: barrier
    // membership masks now exclude the corpse for good.
    stats.counter(statPrefix + "barrierReconfigs").inc();
    traceInstant("DEAD_DECLARED", 0, core, true);
    if (buddy != invalidCore)
        return; // no local entries; the buddy reconfigures its copies
    reconfigureEntriesFor(core);
}

void
MsaSlice::reconfigureEntriesFor(CoreId core)
{
    // Reconfiguration can free entries (and, for MSA-inf, grow the
    // vector through a re-grant): walk by address, not by reference.
    std::vector<Addr> addrs;
    for (const auto &e : entries)
        if (e.valid && !e.tombstone)
            addrs.push_back(e.addr);

    for (Addr a : addrs) {
        MsaEntry *e = find(a);
        if (!e)
            continue;
        switch (e->type) {
          case SyncType::Lock:
            if (e->busy)
                break; // settles soon; the armed lease catches it
            if (e->owner == core) {
                revokeOwner(*e);
                break;
            }
            if (e->hwQueue.test(core)) {
                // A dead waiter never takes a grant: drop it now.
                e->hwQueue.reset(core);
                stats.counter(statPrefix + "deadWaiterDrops").inc();
                if (!e->hwQueue.any() && e->owner == invalidCore)
                    release(*e);
            }
            break;

          case SyncType::RwLock: {
            bool changed = false;
            if (e->owner == core) {
                // Dead writer: exclusive revocation, epoch-fenced
                // (no live holder exists, so the bump fences only
                // the corpse's stale release).
                bumpEpoch(a);
                e->owner = invalidCore;
                stats.counter(statPrefix + "lockRevocations").inc();
                traceInstant("LEASE_REVOKE", a, core, true);
                changed = true;
            }
            if (e->readersHeld.test(core)) {
                // Dead reader: drop the hold but do NOT bump the
                // epoch — live concurrent readers' releases carry
                // the same grant epoch and must not be fenced.
                e->readersHeld.reset(core);
                stats.counter(statPrefix + "lockRevocations").inc();
                changed = true;
            }
            if (e->hwQueue.test(core)) {
                e->hwQueue.reset(core);
                e->waitIsWriter.reset(core);
                stats.counter(statPrefix + "deadWaiterDrops").inc();
                changed = true;
            }
            if (changed) {
                rwDrain(*e);
                if (e->owner == invalidCore && !e->readersHeld.any() &&
                    !e->hwQueue.any())
                    retireEntry(*e);
            }
            break;
          }

          case SyncType::Barrier:
            // The dead member's arrival will never come; if the live
            // arrivals plus dead members now meet the goal, release.
            if (barrierQuorumMet(*e))
                releaseBarrier(*e);
            break;

          case SyncType::Cond:
            if (e->busy)
                break;
            if (e->hwQueue.test(core)) {
                e->hwQueue.reset(core);
                stats.counter(statPrefix + "deadWaiterDrops").inc();
                if (!e->hwQueue.any()) {
                    sendUnpin(e->lockAddr);
                    freeEntry(*e);
                }
            }
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Slice failover (decommission with state re-homing).

void
MsaSlice::failoverTo(CoreId b)
{
    if (offline || buddy != invalidCore)
        return;
    offline = true;
    buddy = b;
    stats.counter(statPrefix + "offlineEvents").inc();
    stats.counter(statPrefix + "failovers").inc();
    traceInstant("FAILOVER", 0, b, true);

    // Deferred originals are forwarded below as first deliveries, but
    // their txns were already marked seen here — and that mark rides
    // the handoff. Rewind to the completed watermark (the SUSPEND
    // dequeue trick) so the forwarded copies pass the buddy's gate.
    for (const auto &m : deferred)
        if (m->txn != 0 && m->requester != invalidCore)
            txns[m->requester].seen = txns[m->requester].done;

    auto st = std::make_shared<SliceHandoffState>();
    std::uint32_t moved = 0;
    for (auto &e : entries) {
        if (!e.valid || e.tombstone)
            continue;
        SliceHandoffState::Entry se;
        se.type = static_cast<std::uint8_t>(e.type);
        se.addr = e.addr;
        se.owner = e.owner;
        se.pushedTo = e.pushedTo;
        se.pinCount = e.pinCount;
        se.goal = e.goal;
        se.lockAddr = e.lockAddr;
        se.busy = e.busy;
        se.hwQueue = e.hwQueue;
        se.readersHeld = e.readersHeld;
        se.waitIsWriter = e.waitIsWriter;
        st->entries.push_back(se);
        ++moved;
        freeEntry(e);
    }
    for (unsigned c = 0; c < cfg.numThreads(); ++c) {
        const ClientTxn &ct = txns[c];
        if (ct.seen == 0 && ct.done == 0)
            continue;
        SliceHandoffState::Txn t;
        t.core = c;
        t.seen = ct.seen;
        t.done = ct.done;
        t.doneOp = static_cast<std::uint8_t>(ct.doneOp);
        t.doneHandoff = ct.doneHandoff;
        st->txns.push_back(t);
    }
    if (cfg.msa.omuEnabled) {
        // Both OMUs hash identically, so software-episode counts
        // transfer slot-for-slot — each exactly once (zeroed here,
        // added there).
        st->omuCounts.resize(_omu.numCounters());
        for (unsigned i = 0; i < _omu.numCounters(); ++i) {
            st->omuCounts[i] = _omu.countAt(i);
            _omu.clearAt(i);
        }
    }
    for (const auto &[a, ep] : varEpoch)
        st->epochs.emplace_back(a, ep);

    stats.counter(statPrefix + "rehomedVars").inc(moved);
    auto m = std::make_shared<MsaMsg>(tile, b, MsaOp::SliceHandoff, 0);
    m->handoffState = std::move(st);
    send(std::move(m));

    // Forward the deferred originals behind the handoff message.
    std::deque<std::shared_ptr<MsaMsg>> fwd;
    fwd.swap(deferred);
    for (auto &d : fwd)
        forwardToBuddy(d);
}

void
MsaSlice::expectHandoff(CoreId from)
{
    (void)from;
    awaitingHandoff = true;
    traceInstant("AWAIT_HANDOFF", 0);
}

void
MsaSlice::forwardToBuddy(const std::shared_ptr<MsaMsg> &msg)
{
    stats.counter(statPrefix + "forwardedToBuddy").inc();
    // Re-address to the buddy; src becomes this tile (the NoC's
    // reliable-delivery streams are per source NI). Replies that
    // depended on msg->src() recompute their destination from the
    // synchronization address instead (see doUnlockPin).
    auto f = std::make_shared<MsaMsg>(tile, buddy, msg->op, msg->addr);
    f->addr2 = msg->addr2;
    f->goal = msg->goal;
    f->requester = msg->requester;
    f->suspendKind = msg->suspendKind;
    f->lockHeldSilently = msg->lockHeldSilently;
    f->noSilent = msg->noSilent;
    f->handoff = msg->handoff;
    f->noReply = msg->noReply;
    f->txn = msg->txn;
    f->flowId = msg->flowId;
    f->epoch = msg->epoch;
    f->handoffState = msg->handoffState;
    send(std::move(f));
}

MsaEntry *
MsaSlice::adoptEntry(Addr addr)
{
    if (find(addr))
        panic("MSA %u: handoff entry %llx collides with a live entry",
              tile, static_cast<unsigned long long>(addr));
    for (std::size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].valid) {
            entries[i].reset();
            entries[i].valid = true;
            entries[i].addr = addr;
            entryIndex.insert(addr, static_cast<std::uint32_t>(i));
            return &entries[i];
        }
    }
    // Hosting two tiles' worth of variables after a failover may
    // exceed msaEntries; grow rather than drop live waiter state.
    // This is transient post-fault generosity, not steady-state
    // capacity: new allocations still respect the configured bound
    // via allocate().
    entries.emplace_back();
    MsaEntry &e = entries.back();
    e.valid = true;
    e.addr = addr;
    entryIndex.insert(addr, static_cast<std::uint32_t>(entries.size() - 1));
    return &e;
}

void
MsaSlice::doHandoff(const std::shared_ptr<MsaMsg> &msg)
{
    if (!msg->handoffState)
        panic("MSA %u: SliceHandoff without state payload", tile);
    const SliceHandoffState &st = *msg->handoffState;
    stats.counter(statPrefix + "handoffsApplied").inc();
    traceInstant("HANDOFF_APPLY", 0,
                 static_cast<std::uint64_t>(st.entries.size()), true);

    // Per-client dedup state: adopt the newer completion, keep the
    // higher seen watermark, so retransmissions of requests the
    // dying slice answered are re-answered, not re-executed.
    for (const auto &t : st.txns) {
        ClientTxn &ct = txns[t.core];
        if (t.done > ct.done) {
            ct.done = t.done;
            ct.doneOp = static_cast<MsaOp>(t.doneOp);
            ct.doneHandoff = t.doneHandoff;
        }
        if (t.seen > ct.seen)
            ct.seen = t.seen;
    }
    // Variable epochs only grow: max-merge.
    for (const auto &[a, ep] : st.epochs) {
        auto &mine = varEpoch[a];
        if (ep > mine)
            mine = ep;
    }
    if (cfg.msa.omuEnabled) {
        const unsigned n = std::min<unsigned>(
            static_cast<unsigned>(st.omuCounts.size()),
            _omu.numCounters());
        for (unsigned i = 0; i < n; ++i)
            if (st.omuCounts[i])
                _omu.addAt(i, st.omuCounts[i]);
    }
    for (const auto &se : st.entries) {
        MsaEntry *e = adoptEntry(se.addr);
        e->type = static_cast<SyncType>(se.type);
        e->owner = se.owner;
        e->pushedTo = se.pushedTo;
        e->pinCount = se.pinCount;
        e->goal = se.goal;
        e->lockAddr = se.lockAddr;
        e->busy = se.busy;
        e->hwQueue = se.hwQueue;
        e->readersHeld = se.readersHeld;
        e->waitIsWriter = se.waitIsWriter;
        // Owned locks get fresh leases here: the old slice's pending
        // lease events die with its buddy-forwarding shell.
        if (e->type == SyncType::Lock && e->owner != invalidCore &&
            leasesEnabled())
            scheduleLease(*e);
    }

    awaitingHandoff = false;
    // Declarations that raced the handoff: reconfigure the adopted
    // entries around every already-declared corpse (idempotent for
    // entries the dying slice reconfigured before snapshotting).
    for (unsigned c = 0; c < cfg.numThreads(); ++c)
        if (deadThreads.test(c))
            reconfigureEntriesFor(c);

    // Release the held-back traffic through the full dedup gate, in
    // arrival order.
    std::deque<std::shared_ptr<MsaMsg>> q;
    q.swap(awaitingQueue);
    for (auto &m : q)
        process(m);
}

void
MsaSlice::doFailNotice(const std::shared_ptr<MsaMsg> &msg)
{
    const CoreId core = msg->requester;
    ClientTxn &ct = txns[core];
    stats.counter(statPrefix + "failNotices").inc();

    if (msg->txn <= ct.done) {
        // The transaction executed here and completed (its response
        // was lost). For the bounded (release/notify) class both the
        // executed outcome and the client's local FAIL leave the
        // accounting consistent — nothing to undo.
        return;
    }
    if (msg->txn <= ct.seen) {
        // The request arrived but is still pending (deferred behind
        // a busy entry). Only CondSignal/CondBcast can be in this
        // state, and executing the signal later is benign (condvars
        // tolerate spurious signals); its completion will settle the
        // cache and the client drops the stale response.
        return;
    }

    // The request never arrived (every copy was lost): reconcile the
    // OMU for the op the client resolved FAIL locally.
    switch (msg->suspendKind) {
      case cpu::SyncInstr::Unlock:
      case cpu::SyncInstr::RwUnlock:
        // FAIL contract: "the matching acquire failed too" — the
        // software release ends an episode opened by the acquire's
        // FAIL-time increment.
        omuDec(msg->addr);
        break;
      case cpu::SyncInstr::Finish:
        omuDec(msg->addr);
        break;
      case cpu::SyncInstr::CondSignal:
      case cpu::SyncInstr::CondBcast:
        break; // no OMU side effects on the FAIL path
      default:
        panic("MSA %u: FailNotice for unbounded op kind %d", tile,
              static_cast<int>(msg->suspendKind));
    }
    // Poison the transaction in the dedup cache: a delayed duplicate
    // of the abandoned request must answer from the cache, never
    // execute.
    ct.seen = msg->txn;
    ct.done = msg->txn;
    ct.doneOp = MsaOp::RespFail;
    ct.doneHandoff = false;
}

} // namespace msa
} // namespace misar
