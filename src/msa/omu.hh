/**
 * @file
 * Overflow Management Unit (paper §3.2).
 *
 * A small set of per-tile counters, indexed (without tags) by the
 * synchronization address. A non-zero counter means the address has
 * software-active synchronization (waiting or lock-owning threads),
 * so the MSA must not allocate an entry for it. Aliasing between
 * addresses can only steer an operation to software unnecessarily —
 * never break correctness.
 */

#ifndef MISAR_MSA_OMU_HH
#define MISAR_MSA_OMU_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace misar {
namespace msa {

/** The per-tile overflow management unit. */
class Omu
{
  public:
    /**
     * Counter ceiling: a counter reaching this value saturates
     * stickily (its addresses are treated as software-active forever)
     * because the true population can no longer be reconstructed.
     * Safe by the OMU's one-sided contract: aliasing/saturation may
     * only steer operations toward software, never toward hardware.
     */
    static constexpr std::uint32_t saturatedValue = 0xffffffffu;

    Omu(unsigned num_counters, StatRegistry &stats,
        const std::string &stat_prefix);

    /** True if the address has active software synchronization. */
    bool
    active(Addr a) const
    {
        return counters[index(a)] > 0;
    }

    /** A synchronization operation on @p a fell back to software. */
    void increment(Addr a, std::uint32_t n = 1);

    /** A software synchronization operation on @p a completed. */
    void decrement(Addr a, std::uint32_t n = 1);

    std::uint32_t
    count(Addr a) const
    {
        return counters[index(a)];
    }

    unsigned numCounters() const
    {
        return static_cast<unsigned>(counters.size());
    }

    /** Raw counter value by index (invariant checker / tests). */
    std::uint32_t countAt(unsigned i) const { return counters[i]; }

    /** Number of non-zero counters (resource-monitor episodes). */
    unsigned
    activeCounters() const
    {
        unsigned n = 0;
        for (std::uint32_t c : counters)
            n += c > 0;
        return n;
    }

    /**
     * Slice failover: merge @p n software episodes into slot @p i of
     * the buddy's OMU (slot-level, since both slices hash addresses
     * identically). Saturates stickily like increment().
     */
    void
    addAt(unsigned i, std::uint32_t n)
    {
        std::uint32_t &c = counters[i];
        if (c >= saturatedValue - n)
            c = saturatedValue;
        else
            c += n;
    }

    /** Slice failover: zero slot @p i after its transfer. */
    void clearAt(unsigned i) { counters[i] = 0; }

  private:
    unsigned
    index(Addr a) const
    {
        // Untagged index by sync-address hash (word granularity).
        std::uint64_t h = a >> 3;
        h ^= h >> 17;
        h *= 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        return static_cast<unsigned>(h % counters.size());
    }

    std::vector<std::uint32_t> counters;
    StatRegistry &stats;
    std::string statPrefix;
};

} // namespace msa
} // namespace misar

#endif // MISAR_MSA_OMU_HH
