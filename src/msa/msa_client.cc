#include "msa/msa_client.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace misar {
namespace msa {

MsaClientHub::MsaClientHub(EventQueue &eq, const SystemConfig &cfg,
                           mem::MemSystem &ms, StatRegistry &stats,
                           const TileRuntime *rt)
    : eq(eq), cfg(cfg), ms(ms), stats(stats), rt(rt),
      cores(cfg.numThreads()), homeUnreachable(cfg.numCores, false)
{
    // Let every L1 ask "is this block a silently-held lock?" so it
    // can pin the line and defer snoops while the lock is held. The
    // cache is per tile: check every hardware thread living there.
    for (CoreId t = 0; t < cfg.numCores; ++t) {
        ms.l1(t).setHoldQuery([this, t, ways = cfg.smtWays](Addr block) {
            for (unsigned w = 0; w < ways; ++w) {
                for (Addr a : cores[t * ways + w].silentHeld)
                    if (blockAlign(a) == block)
                        return true;
            }
            return false;
        });
    }
}

CoreId
MsaClientHub::homeOf(Addr a) const
{
    return mem::homeTile(blockAlign(a), cfg.numCores);
}

void
MsaClientHub::markHomeUnreachable(CoreId home)
{
    if (home >= homeUnreachable.size() || homeUnreachable[home])
        return;
    homeUnreachable[home] = true;
    anyUnreachable = true;
}

void
MsaClientHub::attachObservers(obs::Tracer *t, obs::SyncProfiler *p)
{
    tracer = t;
    profiler = p;
    if (tracer) {
        coreTrack.reserve(cores.size());
        for (std::size_t c = 0; c < cores.size(); ++c)
            coreTrack.push_back(
                tracer->addTrack(obs::pidCores, static_cast<unsigned>(c),
                                 "core " + std::to_string(c)));
    }
}

void
MsaClientHub::countOp(CoreId core, const cpu::Op &op, bool hw)
{
    if (op.instr == cpu::SyncInstr::Finish)
        return; // bookkeeping, not a synchronization operation
    StatRegistry &st = statsOf(core);
    st.counter(hw ? "sync.hwOps" : "sync.swOps").inc();
    std::string name = cpu::syncInstrName(op.instr);
    st.counter("sync." + name + (hw ? ".hw" : ".sw")).inc();
}

void
MsaClientHub::sendRequest(CoreId core, const cpu::Op &op)
{
    MsaOp mop;
    switch (op.instr) {
      case cpu::SyncInstr::Lock:
        mop = MsaOp::Lock;
        break;
      case cpu::SyncInstr::TryLock:
        mop = MsaOp::TryLock;
        break;
      case cpu::SyncInstr::Unlock:
        mop = MsaOp::Unlock;
        break;
      case cpu::SyncInstr::RdLock:
        mop = MsaOp::RdLock;
        break;
      case cpu::SyncInstr::WrLock:
        mop = MsaOp::WrLock;
        break;
      case cpu::SyncInstr::RwUnlock:
        mop = MsaOp::RwUnlock;
        break;
      case cpu::SyncInstr::Barrier:
        mop = MsaOp::Barrier;
        break;
      case cpu::SyncInstr::CondWait:
        mop = MsaOp::CondWait;
        break;
      case cpu::SyncInstr::CondSignal:
        mop = MsaOp::CondSignal;
        break;
      case cpu::SyncInstr::CondBcast:
        mop = MsaOp::CondBcast;
        break;
      case cpu::SyncInstr::Finish:
        mop = MsaOp::Finish;
        break;
      default:
        panic("client %u: bad sync instruction", core);
    }
    auto m = std::make_shared<MsaMsg>(cfg.tileOf(core),
                                      homeOf(op.addr), mop, op.addr);
    m->addr2 = op.addr2;
    m->goal = op.goal;
    m->requester = core;
    // Transaction id: lets the slice deduplicate retransmissions and
    // lets us discard stale responses. opSeq is never 0 here (it is
    // pre-incremented before the first send).
    m->txn = cores[core].opSeq;
    m->flowId = cores[core].flowId;
    if (mop == MsaOp::Unlock || mop == MsaOp::RwUnlock) {
        // Echo the grant's wire epoch so a release overtaken by a
        // lease revocation is fenced at the home (missing entry =>
        // epoch 0 => never fenced: the lock was not granted to us).
        auto it = cores[core].heldEpoch.find(op.addr);
        if (it != cores[core].heldEpoch.end())
            m->epoch = it->second;
    }
    if (op.instr == cpu::SyncInstr::CondWait) {
        PerCore &pc = cores[core];
        if (pc.silentHeld.count(op.addr2))
            m->lockHeldSilently = true;
        // COND_WAIT releases the lock on our behalf, and marks the
        // lock cond-associated so it skips the silent path from now
        // on (see PerCore::condAssociated).
        pc.hwHeld.erase(op.addr2);
        pc.condAssociated.insert(op.addr2);
        pc.silentAddrOfBlock.erase(blockAlign(op.addr2));
    }
    ms.send(std::move(m));
}

void
MsaClientHub::execute(CoreId core, const cpu::Op &op, Cb cb)
{
    PerCore &pc = cores[core];
    if (pc.active)
        panic("client %u: second outstanding sync instruction", core);

    auto silent_eligible = [&](Addr a) {
        // The silent fast path relies on exclusive per-thread block
        // ownership; SMT siblings share the L1 line, so a sibling's
        // access could not be deferred. A real design would tag the
        // HWSync bit with the hardware-thread id; we disable the
        // optimization under SMT instead.
        if (cfg.smtWays > 1)
            return false;
        if (!cfg.msa.hwSyncBitOpt ||
            !ms.l1(cfg.tileOf(core)).hasWritableHwSync(a))
            return false;
        auto it = pc.silentAddrOfBlock.find(blockAlign(a));
        return it != pc.silentAddrOfBlock.end() && it->second == a;
    };

    if ((op.instr == cpu::SyncInstr::Lock ||
         op.instr == cpu::SyncInstr::TryLock) &&
        silent_eligible(op.addr)) {
        // §5 fast path: re-acquire locally; notify the home without
        // waiting. The L1 defers snoops on this block from now on.
        pc.silentHeld.insert(op.addr);
        auto m = std::make_shared<MsaMsg>(cfg.tileOf(core),
                                          homeOf(op.addr),
                                          MsaOp::LockSilent, op.addr);
        m->requester = core;
        ms.send(std::move(m));
        statsOf(core).counter("sync.silentLocks").inc();
        countOp(core, op, true);
        if (profiler)
            profiler->onSilentAcquire(core, op.addr, eq.now());
        if (tracer)
            tracer->instant(coreTrack[core], eq.now(), "LOCK_SILENT",
                            op.addr);
        cb(cpu::SyncResult::Success);
        return;
    }

    if (op.instr == cpu::SyncInstr::RwUnlock &&
        pc.hwHeld.count(op.addr)) {
        // Hardware-held RW locks release like regular ones: the
        // entry cannot vanish while held, so complete locally.
        pc.hwHeld.erase(op.addr);
        auto m = std::make_shared<MsaMsg>(cfg.tileOf(core),
                                          homeOf(op.addr),
                                          MsaOp::RwUnlock, op.addr);
        m->requester = core;
        m->noReply = true;
        if (auto it = pc.heldEpoch.find(op.addr);
            it != pc.heldEpoch.end()) {
            m->epoch = it->second;
            pc.heldEpoch.erase(it);
        }
        ms.send(std::move(m));
        pc.releaseSent[op.addr] = eqOf(core).now();
        countOp(core, op, true);
        if (profiler)
            profiler->onHwRelease(core, op.addr, eq.now());
        cb(cpu::SyncResult::Success);
        return;
    }

    if (op.instr == cpu::SyncInstr::Unlock && pc.hwHeld.count(op.addr)) {
        // The lock is hardware-held: its entry cannot vanish while
        // owned, so UNLOCK is guaranteed to succeed. Complete the
        // instruction now (release semantics) and let the home hand
        // the lock off asynchronously.
        pc.hwHeld.erase(op.addr);
        auto m = std::make_shared<MsaMsg>(cfg.tileOf(core),
                                          homeOf(op.addr),
                                          MsaOp::Unlock, op.addr);
        m->requester = core;
        m->noReply = true;
        if (auto it = pc.heldEpoch.find(op.addr);
            it != pc.heldEpoch.end()) {
            m->epoch = it->second;
            pc.heldEpoch.erase(it);
        }
        ms.send(std::move(m));
        pc.releaseSent[op.addr] = eqOf(core).now();
        countOp(core, op, true);
        if (profiler)
            profiler->onHwRelease(core, op.addr, eq.now());
        cb(cpu::SyncResult::Success);
        return;
    }

    if (op.instr == cpu::SyncInstr::Unlock &&
        pc.silentHeld.count(op.addr)) {
        // Silent release: drop the hold, let any stalled snoop
        // proceed, and notify the home without waiting.
        pc.silentHeld.erase(op.addr);
        ms.l1(cfg.tileOf(core)).flushDeferred(op.addr);
        auto m = std::make_shared<MsaMsg>(cfg.tileOf(core),
                                          homeOf(op.addr),
                                          MsaOp::UnlockSilent, op.addr);
        m->requester = core;
        ms.send(std::move(m));
        pc.releaseSent[op.addr] = eqOf(core).now();
        countOp(core, op, true);
        if (profiler)
            profiler->onHwRelease(core, op.addr, eq.now());
        if (tracer)
            tracer->instant(coreTrack[core], eq.now(), "UNLOCK_SILENT",
                            op.addr);
        cb(cpu::SyncResult::Success);
        return;
    }

    if (anyUnreachable && homeUnreachable[homeOf(op.addr)]) {
        // The home tile is partitioned off: the request could only
        // time out and abandon. Fail fast so Algorithms 1-3 route
        // the op straight to software.
        statsOf(core).counter("resil.unreachableFastFails").inc();
        countOp(core, op, false);
        cb(cpu::SyncResult::Fail);
        return;
    }

    pc.active = true;
    pc.op = op;
    pc.cb = std::move(cb);
    pc.interrupted = false;
    ++pc.opSeq;
    pc.retries = 0;
    pc.issuedAt = eqOf(core).now();
    pc.flowId = tracer ? tracer->newFlowId() : 0;
    pc.respFlowId = 0;
    if (tracer)
        tracer->flow(coreTrack[core], obs::FlowPhase::Start, pc.flowId,
                     eq.now(), op.addr);
    sendRequest(core, op);
    armTimeout(core);
}

bool
MsaClientHub::boundedRetry(cpu::SyncInstr k)
{
    switch (k) {
      case cpu::SyncInstr::Unlock:
      case cpu::SyncInstr::RwUnlock:
      case cpu::SyncInstr::CondSignal:
      case cpu::SyncInstr::CondBcast:
      case cpu::SyncInstr::Finish:
        return true;
      default:
        // Blocking acquires (LOCK/RDLOCK/WRLOCK/BARRIER/COND_WAIT)
        // and TRYLOCK retry indefinitely: a locally-invented FAIL
        // would race the software fallback against live hardware
        // ownership (mutual-exclusion loss) or strand barrier peers.
        return false;
    }
}

void
MsaClientHub::armTimeout(CoreId core)
{
    const Tick base = cfg.resil.timeoutTicks;
    if (base == 0)
        return;
    PerCore &pc = cores[core];
    const unsigned shift = std::min(pc.retries, 16u);
    Tick d = base << shift;
    if ((d >> shift) != base || d > cfg.resil.timeoutCap)
        d = cfg.resil.timeoutCap;
    eqOf(core).scheduleL(laneOf(core), d,
                         [this, core, seq = pc.opSeq] { onTimeout(core, seq); });
}

void
MsaClientHub::onTimeout(CoreId core, std::uint64_t seq)
{
    PerCore &pc = cores[core];
    if (!pc.active || pc.opSeq != seq)
        return; // the op completed; this deadline is stale
    statsOf(core).counter("resil.timeouts").inc();
    if (boundedRetry(pc.op.instr) && pc.retries >= cfg.resil.maxRetries) {
        // Give up: ask the home to reconcile OMU accounting for
        // whatever it saw of this transaction, and resolve FAIL so
        // Algorithms 1-3 route the op to software.
        auto m = std::make_shared<MsaMsg>(cfg.tileOf(core),
                                          homeOf(pc.op.addr),
                                          MsaOp::FailNotice, pc.op.addr);
        m->requester = core;
        m->txn = seq;
        m->suspendKind = pc.op.instr;
        ms.send(std::move(m));
        statsOf(core).counter("resil.abandonedOps").inc();
        complete(core, cpu::SyncResult::Fail);
        return;
    }
    ++pc.retries;
    statsOf(core).counter("resil.retries").inc();
    // While suspended (interrupted/resendPending) the op is
    // deliberately not enqueued at the home; keep the deadline chain
    // alive but do not retransmit until the thread resumes.
    if (!pc.interrupted && !pc.resendPending)
        sendRequest(core, pc.op);
    armTimeout(core);
}

void
MsaClientHub::complete(CoreId core, cpu::SyncResult result, bool no_silent)
{
    PerCore &pc = cores[core];
    if (!pc.active)
        return; // stale response (op already completed)
    pc.active = false;
    if (profiler)
        profiler->onComplete(core, pc.op, result, pc.issuedAt, eq.now());
    if (tracer) {
        // End the flow with the id the completing response carried
        // when it has one: a held grant arrives on the *releaser's*
        // flow, which stitches the lock handoff chain end-to-end.
        const std::uint64_t fid = pc.respFlowId ? pc.respFlowId
                                                : pc.flowId;
        if (fid)
            tracer->flow(coreTrack[core], obs::FlowPhase::End, fid,
                         eq.now(), pc.op.addr);
    }
    pc.flowId = 0;
    pc.respFlowId = 0;
    // BUSY is a hardware-performed outcome (TRYLOCK observed a held
    // lock at the MSA); only FAIL/ABORT mean the software path ran.
    countOp(core, pc.op, result == cpu::SyncResult::Success ||
                       result == cpu::SyncResult::Busy);
    if (pc.op.instr == cpu::SyncInstr::Unlock ||
        pc.op.instr == cpu::SyncInstr::RwUnlock)
        pc.heldEpoch.erase(pc.op.addr); // the grant's epoch is spent
    if (result == cpu::SyncResult::Success) {
        // Track hardware-held locks (their unlocks complete locally).
        if (pc.op.instr == cpu::SyncInstr::Lock ||
            pc.op.instr == cpu::SyncInstr::TryLock ||
            pc.op.instr == cpu::SyncInstr::RdLock ||
            pc.op.instr == cpu::SyncInstr::WrLock)
            pc.hwHeld.insert(pc.op.addr);
        else if (pc.op.instr == cpu::SyncInstr::CondWait)
            pc.hwHeld.insert(pc.op.addr2);
        const bool is_lock = pc.op.instr == cpu::SyncInstr::Lock ||
                             pc.op.instr == cpu::SyncInstr::TryLock;
        if (cfg.msa.hwSyncBitOpt && !no_silent &&
            !pc.condAssociated.count(is_lock ? pc.op.addr
                                             : pc.op.addr2)) {
            // A lock grant ships the block with the HWSync bit (paper
            // §5): record which address the bit vouches for. A
            // COND_WAIT success re-acquired the lock the same way.
            if (is_lock)
                pc.silentAddrOfBlock[blockAlign(pc.op.addr)] = pc.op.addr;
            else if (pc.op.instr == cpu::SyncInstr::CondWait)
                pc.silentAddrOfBlock[blockAlign(pc.op.addr2)] =
                    pc.op.addr2;
        }
    }
    if (result == cpu::SyncResult::Abort) {
        // Degraded-mode observability: an ABORT sends the op to the
        // software path with re-acquire semantics (migrated unlocks,
        // suspend-forced demotions, offline-slice shedding).
        statsOf(core).counter("sync.abortedOps").inc();
        if (pc.op.instr == cpu::SyncInstr::Barrier)
            statsOf(core).counter("sync.barrierDemotions").inc();
    }
    Cb cb = std::move(pc.cb);
    if (pc.interrupted) {
        // The thread was descheduled; it observes the result only
        // after it is scheduled back in.
        pc.interrupted = false;
        eqOf(core).scheduleL(laneOf(core), cfg.core.suspendResumeDelay,
                             [cb = std::move(cb), result] { cb(result); });
    } else {
        cb(result);
    }
}

void
MsaClientHub::interrupt(CoreId core)
{
    PerCore &pc = cores[core];
    if (!pc.active || pc.interrupted || pc.resendPending)
        return; // idle, already suspending, or already descheduled
    const cpu::SyncInstr k = pc.op.instr;
    if (k != cpu::SyncInstr::Lock && k != cpu::SyncInstr::Barrier &&
        k != cpu::SyncInstr::CondWait && k != cpu::SyncInstr::RdLock &&
        k != cpu::SyncInstr::WrLock) {
        return; // non-blocking instructions need no SUSPEND
    }
    pc.interrupted = true;
    statsOf(core).counter("sync.suspends").inc();
    auto m = std::make_shared<MsaMsg>(cfg.tileOf(core),
                                      homeOf(pc.op.addr), MsaOp::Suspend,
                                      pc.op.addr);
    m->requester = core;
    m->suspendKind = k;
    ms.send(std::move(m));
}

void
MsaClientHub::handleMessage(CoreId core, const std::shared_ptr<MsaMsg> &msg)
{
    PerCore &pc = cores[core];
    if (pc.dead) {
        // A corpse answers nothing — not even a lease probe. The
        // silence is what lets the home's lease expire and revoke.
        statsOf(core).counter("resil.deadClientDrops").inc();
        return;
    }
    if (msg->op == MsaOp::LeaseProbe) {
        // Liveness heartbeat answered by the hub hardware on the
        // core's behalf: a live owner renews even while its thread
        // is blocked or descheduled.
        statsOf(core).counter("resil.leaseRenewals").inc();
        auto r = std::make_shared<MsaMsg>(cfg.tileOf(core), msg->src(),
                                          MsaOp::LeaseRenew, msg->addr);
        r->requester = core;
        ms.send(std::move(r));
        return;
    }
    if (msg->txn != 0 && (!pc.active || msg->txn != pc.opSeq)) {
        // Response for a transaction we already resolved (e.g. a
        // delayed duplicate racing a cache re-response). Only ever
        // non-zero under fault injection.
        statsOf(core).counter("resil.staleResponses").inc();
        return;
    }
    if (isReplyOp(msg->op) && msg->op != MsaOp::UnlockDone &&
        msg->op != MsaOp::SuspendAck) {
        // Remember which flow delivered the (potential) completion.
        pc.respFlowId = msg->flowId;
    }
    switch (msg->op) {
      case MsaOp::UnlockDone:
      case MsaOp::RespSuccess:
        if (msg->handoff) {
            // An unlock of ours handed the lock to a waiter: the
            // silent privilege is gone (the grant's invalidation may
            // still be in flight; dropping the record now closes the
            // re-acquire window, and at worst costs an optimization).
            pc.silentAddrOfBlock.erase(blockAlign(msg->addr));
            ms.l1(cfg.tileOf(core)).clearHwSync(msg->addr);
        }
        if (msg->op == MsaOp::RespSuccess) {
            if (msg->epoch != 0) {
                // Grant epoch: echoed on the matching release so the
                // home can fence it if a revocation intervenes.
                pc.heldEpoch[msg->addr] = msg->epoch;
            }
            complete(core, cpu::SyncResult::Success, msg->noSilent);
        }
        break;
      case MsaOp::RespFail:
        complete(core, cpu::SyncResult::Fail);
        break;
      case MsaOp::RespAbort:
        complete(core, cpu::SyncResult::Abort);
        break;
      case MsaOp::RespBusy:
        complete(core, cpu::SyncResult::Busy);
        break;

      case MsaOp::SuspendAck:
        // Lock-waiter dequeue acknowledged: the squashed LOCK
        // re-executes once the thread is scheduled back (paper
        // §4.1.2). Ignore if the grant crossed in flight and already
        // completed the instruction.
        if (pc.active && pc.interrupted &&
            (pc.op.instr == cpu::SyncInstr::Lock ||
             pc.op.instr == cpu::SyncInstr::RdLock ||
             pc.op.instr == cpu::SyncInstr::WrLock)) {
            pc.interrupted = false;
            pc.resendPending = true;
            eqOf(core).scheduleL(laneOf(core), cfg.core.suspendResumeDelay,
                                 [this, core, seq = pc.opSeq] {
                PerCore &p = cores[core];
                p.resendPending = false;
                // Only re-send if the suspended LOCK is still the
                // outstanding operation (not a later one).
                if (p.active && p.opSeq == seq &&
                    (p.op.instr == cpu::SyncInstr::Lock ||
                     p.op.instr == cpu::SyncInstr::RdLock ||
                     p.op.instr == cpu::SyncInstr::WrLock))
                    sendRequest(core, p.op);
            });
        }
        break;

      default:
        panic("client %u: unexpected MSA message op %d", core,
              static_cast<int>(msg->op));
    }
}

MsaClientHub::OpSnapshot
MsaClientHub::snapshot(CoreId core) const
{
    const PerCore &pc = cores[core];
    OpSnapshot s;
    s.active = pc.active;
    s.interrupted = pc.interrupted || pc.resendPending;
    s.retries = pc.retries;
    s.issuedAt = pc.issuedAt;
    if (pc.active) {
        s.instr = pc.op.instr;
        s.addr = pc.op.addr;
        s.addr2 = pc.op.addr2;
    }
    return s;
}

bool
MsaClientHub::holdsHw(CoreId core, Addr a) const
{
    const PerCore &pc = cores[core];
    return pc.hwHeld.count(a) != 0 || pc.silentHeld.count(a) != 0;
}

Tick
MsaClientHub::releaseSentAt(CoreId core, Addr a) const
{
    const auto &rs = cores[core].releaseSent;
    auto it = rs.find(a);
    return it == rs.end() ? 0 : it->second;
}

void
MsaClientHub::killCore(CoreId core)
{
    PerCore &pc = cores[core];
    if (pc.dead)
        return;
    pc.dead = true;
    stats.counter("resil.clientKills").inc();
    // The outstanding op's callback targets a corpse: drop it. Stale
    // timeouts see active == false and die quietly.
    pc.active = false;
    pc.cb = nullptr;
    pc.interrupted = false;
    pc.resendPending = false;
    // Release silent holds at the L1: a silently-held lock block
    // defers snoops until release, and the corpse never releases.
    // Flushing re-enables invalidations, so the pending grant or
    // software atomic serializes after the abandoned hold — silent
    // locks recover through coherence alone, no lease involved.
    for (Addr a : pc.silentHeld)
        ms.l1(cfg.tileOf(core)).flushDeferred(a);
    pc.silentHeld.clear();
    pc.silentAddrOfBlock.clear();
    // pc.hwHeld is kept: it mirrors grants the slices still record
    // for the corpse, which the invariant checker cross-checks until
    // the lease machinery revokes them.
}

} // namespace msa
} // namespace misar
