/**
 * @file
 * MSA-0: the trivial implementation of the synchronization ISA.
 *
 * Every instruction returns FAIL locally, with no message to the
 * home node (paper §6: "trivially implements our instructions by
 * always returning FAIL"). A processor without MSA/OMU hardware can
 * ship this and stay compatible with hardware-capable libraries.
 */

#ifndef MISAR_MSA_NULL_SYNC_HH
#define MISAR_MSA_NULL_SYNC_HH

#include "cpu/core.hh"
#include "sim/stats.hh"
#include "sim/tile_runtime.hh"

namespace misar {
namespace msa {

/** Always-FAIL SyncUnit (MSA-0). */
class NullSyncUnit : public cpu::SyncUnit
{
  public:
    /** @p rt (optional) routes counts to the calling tile's shard;
     *  @p smtWays maps hardware thread ids onto tiles. */
    explicit NullSyncUnit(StatRegistry &stats,
                          const TileRuntime *rt = nullptr,
                          unsigned smtWays = 1)
        : stats(stats), rt(rt), smtWays(smtWays ? smtWays : 1)
    {}

    void
    execute(CoreId core, const cpu::Op &op, Cb cb) override
    {
        if (op.instr != cpu::SyncInstr::Finish) {
            StatRegistry &st =
                rt ? rt->statsFor(core / smtWays, stats) : stats;
            st.counter("sync.swOps").inc();
        }
        cb(cpu::SyncResult::Fail);
    }

  private:
    StatRegistry &stats;
    const TileRuntime *rt;
    const unsigned smtWays;
};

} // namespace msa
} // namespace misar

#endif // MISAR_MSA_NULL_SYNC_HH
