/**
 * @file
 * MSA-0: the trivial implementation of the synchronization ISA.
 *
 * Every instruction returns FAIL locally, with no message to the
 * home node (paper §6: "trivially implements our instructions by
 * always returning FAIL"). A processor without MSA/OMU hardware can
 * ship this and stay compatible with hardware-capable libraries.
 */

#ifndef MISAR_MSA_NULL_SYNC_HH
#define MISAR_MSA_NULL_SYNC_HH

#include "cpu/core.hh"
#include "sim/stats.hh"

namespace misar {
namespace msa {

/** Always-FAIL SyncUnit (MSA-0). */
class NullSyncUnit : public cpu::SyncUnit
{
  public:
    explicit NullSyncUnit(StatRegistry &stats) : stats(stats) {}

    void
    execute(CoreId, const cpu::Op &op, Cb cb) override
    {
        if (op.instr != cpu::SyncInstr::Finish)
            stats.counter("sync.swOps").inc();
        cb(cpu::SyncResult::Fail);
    }

  private:
    StatRegistry &stats;
};

} // namespace msa
} // namespace misar

#endif // MISAR_MSA_NULL_SYNC_HH
