/**
 * @file
 * Client side of the MSA: executes the synchronization ISA for every
 * core, talking to the MSA slices over the NoC.
 *
 * Implements the HWSync-bit fast path (paper §5): a LOCK whose block
 * is still writable in the local L1 with the HWSync bit set returns
 * SUCCESS immediately and only notifies the home with LOCK_SILENT.
 */

#ifndef MISAR_MSA_MSA_CLIENT_HH
#define MISAR_MSA_MSA_CLIENT_HH

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "cpu/core.hh"
#include "mem/mem_system.hh"
#include "msa/msa_msg.hh"
#include "obs/sync_profiler.hh"
#include "obs/tracer.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/tile_runtime.hh"

namespace misar {
namespace msa {

/** True for MSA messages consumed by the client hub (not a slice). */
inline bool
isClientBound(MsaOp op)
{
    switch (op) {
      case MsaOp::RespSuccess:
      case MsaOp::RespFail:
      case MsaOp::RespAbort:
      case MsaOp::RespBusy:
      case MsaOp::SuspendAck:
      case MsaOp::UnlockDone:
      case MsaOp::LeaseProbe:
        return true;
      default:
        return false;
    }
}

/** SyncUnit implementation for MSA/OMU and MSA-inf configurations. */
class MsaClientHub : public cpu::SyncUnit
{
  public:
    /**
     * @p rt (optional, must outlive the hub) routes each client
     * core's timers, lane, and stat counts to its tile — required
     * whenever per-tile lanes are on, so that a core's timeout and
     * resume events replay identically under any partitioning.
     */
    MsaClientHub(EventQueue &eq, const SystemConfig &cfg,
                 mem::MemSystem &ms, StatRegistry &stats,
                 const TileRuntime *rt = nullptr);

    void execute(CoreId core, const cpu::Op &op, Cb cb) override;
    void interrupt(CoreId core) override;

    /** Incoming client-bound MSA message (addressed to @p core). */
    void handleMessage(CoreId core, const std::shared_ptr<MsaMsg> &msg);

    /**
     * Read-only view of a core's outstanding operation, for the
     * liveness watchdog and invariant checker.
     */
    struct OpSnapshot
    {
        bool active = false;
        bool interrupted = false;
        unsigned retries = 0;
        Tick issuedAt = 0;
        cpu::SyncInstr instr = cpu::SyncInstr::Lock;
        Addr addr = invalidAddr;
        Addr addr2 = invalidAddr;
    };

    OpSnapshot snapshot(CoreId core) const;

    /** True while @p core holds @p a in hardware (grant or silent). */
    bool holdsHw(CoreId core, Addr a) const;

    /**
     * Tick @p core last sent a (fire-and-forget) hardware release for
     * @p a, or 0 if never. A released lock stays attributed to the
     * old owner at the home until the Unlock message lands; the
     * invariant checker uses this to excuse that bounded in-flight
     * window instead of flagging a live protocol state.
     */
    Tick releaseSentAt(CoreId core, Addr a) const;

    /**
     * Core fault injection: @p core died. Drop its outstanding op
     * (the completion callback targets a corpse), stop answering
     * lease probes for it, and release its silent holds at the L1 so
     * deferred snoops proceed — a silently-held lock is recovered by
     * coherence alone, no lease needed. Its hardware-granted holds
     * stay recorded: they mirror what the slices still believe until
     * the lease machinery revokes those grants.
     */
    void killCore(CoreId core);

    /** True when @p core was killed by fault injection. */
    bool isDead(CoreId core) const { return cores[core].dead; }

    /**
     * Mark @p home's tile as permanently unreachable (mesh
     * partition): new ops homed there fast-fail to the software path
     * instead of burning the whole timeout/retry ladder. The home's
     * slice has been taken offline by the same partition event, so
     * routing its ops to software is exactly the offline contract.
     */
    void markHomeUnreachable(CoreId home);

    /**
     * Ops whose retries are bounded: their FAIL contract is safe to
     * apply locally after giving up (the home reconciles accounting
     * via FailNotice). Blocking acquires retry indefinitely — see
     * docs/PROTOCOL.md "Failure semantics".
     */
    static bool boundedRetry(cpu::SyncInstr k);

    /**
     * Attach the observability layer (either pointer may be null).
     * With a tracer, every issued sync op starts a flow on its core's
     * trace row and requests are stamped with the flow id; with a
     * profiler, per-variable contention statistics are collected.
     */
    void attachObservers(obs::Tracer *tracer, obs::SyncProfiler *profiler);

  private:
    struct PerCore
    {
        bool active = false;
        cpu::Op op;
        Cb cb;
        /** An OS interrupt arrived while this op was outstanding. */
        bool interrupted = false;
        /** A suspended LOCK is waiting out the resume delay before
         *  re-executing; further interrupts are no-ops meanwhile. */
        bool resendPending = false;
        /** Generation counter: stale resume callbacks for an earlier
         *  operation must not re-send the current one. Doubles as the
         *  transaction id stamped on the op's request messages. */
        std::uint64_t opSeq = 0;
        /** Timeout retransmissions of the current op. */
        unsigned retries = 0;
        /** Tick the current op was issued (watchdog reporting). */
        Tick issuedAt = 0;
        /** Trace flow id of the outstanding op (0 = untraced). */
        std::uint64_t flowId = 0;
        /** Flow id carried by the message completing the op (held
         *  grants arrive on the releaser's flow — handoff chains). */
        std::uint64_t respFlowId = 0;

        /** Locks held via a silent acquire, not yet unlocked. */
        std::set<Addr> silentHeld;
        /**
         * Locks this core acquired through the MSA (normal grants).
         * Their UNLOCK is guaranteed to hit the entry, so it can
         * complete immediately and release the home asynchronously.
         */
        std::set<Addr> hwHeld;
        /**
         * Which sync address each cached block's HWSync bit vouches
         * for. The L1 bit is per line; two locks in one block must
         * not share the privilege (only the recorded one was granted
         * by the MSA).
         */
        std::map<Addr, Addr> silentAddrOfBlock;
        /**
         * Locks observed as the mutex of a COND_WAIT. A silent hold
         * has no MSA entry, which would force the cond var to
         * software (cond-in-HW requires lock-in-HW), so these locks
         * stop using the silent fast path.
         */
        std::set<Addr> condAssociated;

        /** Killed by core fault injection (see killCore()). */
        bool dead = false;
        /**
         * Wire epoch each hardware grant arrived with, echoed on the
         * matching Unlock/RwUnlock so the home can fence releases
         * from before a revocation (see MsaMsg::epoch).
         */
        std::map<Addr, std::uint32_t> heldEpoch;
        /** Send tick of the latest fire-and-forget release per lock
         *  (Unlock/RwUnlock/UnlockSilent) — see releaseSentAt(). */
        std::map<Addr, Tick> releaseSent;
    };

    /** Send @p op's request message to its home MSA slice. */
    void sendRequest(CoreId core, const cpu::Op &op);

    /** Arm the (backed-off) retransmission timeout for @p core. */
    void armTimeout(CoreId core);

    /** Timeout fired for op generation @p seq of @p core. */
    void onTimeout(CoreId core, std::uint64_t seq);

    /** Complete the pending op of @p core with @p result. */
    void complete(CoreId core, cpu::SyncResult result,
                  bool no_silent = false);

    /** Count one finished operation for coverage statistics. */
    void countOp(CoreId core, const cpu::Op &op, bool hw);

    CoreId homeOf(Addr a) const;

    /** @name Per-client routing (identity when rt is null). @{ */
    EventQueue &
    eqOf(CoreId core)
    {
        return rt ? rt->eqFor(cfg.tileOf(core), eq) : eq;
    }

    StatRegistry &
    statsOf(CoreId core)
    {
        return rt ? rt->statsFor(cfg.tileOf(core), stats) : stats;
    }

    LaneId
    laneOf(CoreId core) const
    {
        return rt ? rt->laneOf(cfg.tileOf(core)) : 0;
    }
    /** @} */

    EventQueue &eq;
    const SystemConfig &cfg;
    mem::MemSystem &ms;
    StatRegistry &stats;
    const TileRuntime *rt;
    std::vector<PerCore> cores;

    /** Homes cut off by a mesh partition (fast-fail new ops). */
    std::vector<bool> homeUnreachable;
    bool anyUnreachable = false;

    obs::Tracer *tracer = nullptr;
    obs::SyncProfiler *profiler = nullptr;
    /** One pid-0 tracer row per hardware thread (flow endpoints). */
    std::vector<obs::TrackId> coreTrack;
};

} // namespace msa
} // namespace misar

#endif // MISAR_MSA_MSA_CLIENT_HH
