/**
 * @file
 * Minimalistic Synchronization Accelerator slice (paper §3-5).
 *
 * One slice lives in each tile and holds the MSA entries for the
 * synchronization addresses homed there, the per-tile OMU, and the
 * per-slice NBTC fairness register.
 *
 * Entry life cycle notes (design decisions beyond the paper text):
 *
 * - Entry-less HWSync privilege (§5). The silent re-acquire fast
 *   path does not require a live MSA entry: when a lock's HWQueue
 *   empties the entry is evicted normally, and the last owner's
 *   privilege lives entirely in its L1 (HWSync bit + client record).
 *   LOCK_SILENT / UNLOCK_SILENT are fire-and-forget notifications.
 *   Mutual exclusion against a concurrent hardware grant or software
 *   test-and-set is enforced at the holder's L1, which defers
 *   incoming invalidations of a silently-held lock block until the
 *   lock is released (the grant's or the atomic's completion is
 *   thereby serialized after the silent critical section).
 *
 * - Owner tracking. The paper's HWQueue does not record which bit is
 *   the owner; we track it (a log2(N)-bit cost) because it is needed
 *   to distinguish a suspended waiter from a just-granted owner when
 *   a SUSPEND crosses a grant in flight, and to handle the
 *   migrated-UNLOCK of a *pinned* lock precisely (the paper's
 *   abort-all-and-free would strand its condition variables).
 *   Unpinned locks keep the paper's abort-all behaviour.
 */

#ifndef MISAR_MSA_MSA_SLICE_HH
#define MISAR_MSA_MSA_SLICE_HH

#include <bitset>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "mem/home_slice.hh"
#include "msa/msa_msg.hh"
#include "msa/omu.hh"
#include "obs/heatmap.hh"
#include "obs/sync_profiler.hh"
#include "obs/tracer.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"

namespace misar {
namespace msa {

/** What a valid MSA entry is currently used for (2-bit Type field). */
enum class SyncType : std::uint8_t { Lock, Barrier, Cond, RwLock };

/** One MSA entry (paper Figure 1). */
struct MsaEntry
{
    bool valid = false;
    SyncType type = SyncType::Lock;
    Addr addr = invalidAddr;
    /** One bit per core: waiters, plus the owner for locks. */
    std::bitset<mem::maxCores> hwQueue;

    // Lock state
    /** Core that currently owns the lock (see file comment). */
    CoreId owner = invalidCore;
    /** AuxInfo for locks: condition variables pinning this entry. */
    std::uint32_t pinCount = 0;
    /**
     * Core that last received the lock block with the HWSync bit (a
     * push). A later grant to a different core must revoke that copy
     * (gated on its invalidation ack) before completing, or a stale
     * silent privilege could race the new owner.
     */
    CoreId pushedTo = invalidCore;

    /** Multi-step operation in progress (revoke or cond reserve). */
    bool busy = false;

    /**
     * OMU-disabled mode only: the entry is a permanent marker that
     * this address is handled in software; every request FAILs.
     */
    bool tombstone = false;

    // Reader-writer lock state (AuxInfo; owner doubles as the
    // current writer, invalidCore when reader-held or free)
    std::bitset<mem::maxCores> readersHeld;
    std::bitset<mem::maxCores> waitIsWriter;

    // Barrier state (AuxInfo)
    std::uint32_t goal = 0;

    // Condition-variable state (AuxInfo)
    Addr lockAddr = invalidAddr;

    /**
     * Lease generation stamp of the current grant (0 = no lease
     * armed). A monotonically increasing slice-global sequence, not a
     * per-entry counter, so a stale lease-check event can never
     * confuse a re-used entry for the grant it was armed against.
     */
    std::uint64_t leaseStamp = 0;

    void
    reset()
    {
        *this = MsaEntry{};
    }
};

/** The MSA slice + OMU of one tile. */
class MsaSlice
{
  public:
    using SendFn = std::function<void(std::shared_ptr<MsaMsg>)>;

    MsaSlice(EventQueue &eq, const SystemConfig &cfg, CoreId tile,
             mem::HomeSlice &home, SendFn send, StatRegistry &stats);

    /** Incoming MSA message from the NoC. */
    void handleMessage(std::shared_ptr<MsaMsg> msg);

    /**
     * Pin this slice's events to its tile's lane. Offline shedding
     * and dead-core sweeps are driven from the global lane, so the
     * pin (not lane inheritance) keeps slice events on the tile lane.
     */
    void setLane(LaneId l) { _lane = l; }

    /** Tests/debug: number of valid entries. */
    unsigned validEntries() const;

    /** Allocatable entry slots currently free (heatmap gauge). */
    unsigned freeEntries() const;

    /** Tests/debug: entry for @p addr, or nullptr. */
    const MsaEntry *findEntry(Addr addr) const;

    /** Tests only: mutable entry access (invariant-checker tests
     *  corrupt state through this hook). */
    MsaEntry *mutableEntry(Addr addr) { return find(addr); }

    /** Visit every valid entry (invariant checker / watchdog). */
    void forEachEntry(const std::function<void(const MsaEntry &)> &fn) const;

    /**
     * Take the slice offline (graceful decommission): stop
     * allocating entries, shed barrier/cond entries immediately
     * (ABORT waiters to software with OMU accounting), and shed each
     * lock/RW entry at its next full release. Front-end accounting
     * (OMU, dedup cache) stays alive so in-flight software episodes
     * settle correctly. See docs/PROTOCOL.md "Failure semantics".
     */
    void goOffline();

    bool isOffline() const { return offline; }

    /**
     * Decommission with failover instead of shedding: snapshot every
     * live entry, OMU slot, dedup record and variable epoch into one
     * SliceHandoff message for @p buddy, then go offline forwarding
     * all subsequent traffic there. Deferred requests are forwarded
     * with their dedup marks rewound so the buddy accepts them.
     */
    void failoverTo(CoreId buddy);

    /**
     * Buddy side of a failover: queue every incoming message until
     * the SliceHandoff from @p from arrives and its state is merged,
     * preserving arrival order across the handoff.
     */
    void expectHandoff(CoreId from);

    /**
     * The failure detector declared @p core dead: revoke its lock
     * ownership (epoch-fenced), drop it from every wait queue and
     * barrier membership, and release barriers it can no longer
     * reach. See docs/PROTOCOL.md "Participant failure semantics".
     */
    void coreDeclaredDead(CoreId core);

    /** Current revocation epoch of @p addr (tests/invariants). */
    std::uint32_t epochOf(Addr addr) const;

    /**
     * Home-slice lookup by address, for pushes/revokes of variables
     * re-homed here by failover (their cache home stays remote).
     * Defaults to this tile's own home slice when unset.
     */
    void setHomeLookup(std::function<mem::HomeSlice &(Addr)> fn)
    {
        homeLookup = std::move(fn);
    }

    Omu &omu() { return _omu; }

    /**
     * Attach the observability layer (either pointer may be null).
     * With a tracer the slice gets its own trace row (pid 1) showing
     * dispatched requests, overflow/shed/abort instants, and flow
     * steps linking requests to their responses; with a profiler,
     * grant handoffs and barrier episodes are recorded.
     */
    void attachObservers(obs::Tracer *tracer, obs::SyncProfiler *profiler);

    /**
     * Attach the resource-pressure monitor (may be null). Feeds it
     * OMU activity transitions (episode spans + high-water marks) and
     * entry-overflow events; gauges (occupancy, free depth, counter
     * values) are sampled from the outside via the accessors.
     */
    void attachMonitor(obs::ResourceMonitor *monitor);

  private:
    /**
     * Per-client transaction state: retransmission dedup plus a
     * one-deep completed-response cache (at-most-once execution).
     */
    struct ClientTxn
    {
        /** Highest txn received from this core. */
        std::uint64_t seen = 0;
        /** Txn of the cached final response. */
        std::uint64_t done = 0;
        /** Txn of the request currently being dispatched (0 outside
         *  a request's dispatch window). */
        std::uint64_t cur = 0;
        MsaOp doneOp = MsaOp::RespFail;
        bool doneHandoff = false;
    };

    /** Process @p msg after the MSA pipeline latency. */
    void process(const std::shared_ptr<MsaMsg> &msg);

    /** Dedup-gated by process(); deferred messages re-enter here. */
    void dispatch(const std::shared_ptr<MsaMsg> &msg);

    void doLock(const std::shared_ptr<MsaMsg> &msg);
    void doTryLock(const std::shared_ptr<MsaMsg> &msg);
    void doRwLock(const std::shared_ptr<MsaMsg> &msg, bool writer);
    void doRwUnlock(const std::shared_ptr<MsaMsg> &msg);
    /** Grant queued RW waiters after a release (batch readers). */
    void rwDrain(MsaEntry &e);
    void doUnlock(const std::shared_ptr<MsaMsg> &msg);
    void doBarrier(const std::shared_ptr<MsaMsg> &msg);
    void doCondWait(const std::shared_ptr<MsaMsg> &msg);
    void doCondSignal(const std::shared_ptr<MsaMsg> &msg, bool broadcast);
    void doFinish(const std::shared_ptr<MsaMsg> &msg);
    void doSuspend(const std::shared_ptr<MsaMsg> &msg);
    void doUnlockPin(const std::shared_ptr<MsaMsg> &msg);
    void doLockOnBehalf(const std::shared_ptr<MsaMsg> &msg, bool unpin);
    void doUnlockOnBehalf(const std::shared_ptr<MsaMsg> &msg);
    void doUnpin(const std::shared_ptr<MsaMsg> &msg);
    void doUnlockPinResp(const std::shared_ptr<MsaMsg> &msg, bool ok);
    void doFailNotice(const std::shared_ptr<MsaMsg> &msg);
    void doLeaseRenew(const std::shared_ptr<MsaMsg> &msg);
    void doHandoff(const std::shared_ptr<MsaMsg> &msg);

    /** @name Lease-based lock recovery (resil.leaseTicks > 0). @{ */
    bool leasesEnabled() const;
    /** Arm/re-arm the lease on a freshly (re-)granted lock entry. */
    void scheduleLease(MsaEntry &e);
    /** Lease expiry: probe the recorded owner's client hub. */
    void onLeaseCheck(Addr addr, std::uint64_t stamp);
    /** Probe verdict: no renewal arrived — revoke the orphan. */
    void onLeaseVerdict(Addr addr, std::uint64_t stamp);
    /**
     * Revoke @p e's dead owner: bump the variable epoch (fencing any
     * stale release still in flight), clear ownership, and hand the
     * lock to the next waiter (or free the entry).
     */
    void revokeOwner(MsaEntry &e);
    /** @} */

    /** Wire epoch of @p addr (what grants/fences compare against). */
    std::uint32_t wireEpoch(Addr addr) const;
    /** Bump @p addr's epoch after an exclusive-owner revocation. */
    void bumpEpoch(Addr addr);

    /** Barrier @p e reached its (possibly reconfigured) quorum. */
    void releaseBarrier(MsaEntry &e);
    /** Live arrivals + dead members reach the goal? */
    bool barrierQuorumMet(const MsaEntry &e) const;

    /** Drop dead @p core from every entry's queues/membership. */
    void reconfigureEntriesFor(CoreId core);

    /** RW grant response carrying the wire epoch. */
    void respondRwGrant(CoreId core, Addr addr);

    /** Post-failover: forward @p msg to the buddy slice verbatim. */
    void forwardToBuddy(const std::shared_ptr<MsaMsg> &msg);

    /** Adopt a re-homed entry from a handoff (may grow capacity). */
    MsaEntry *adoptEntry(Addr addr);

    MsaEntry *find(Addr addr);

    /** Allocate an entry for @p addr; nullptr if none is free. */
    MsaEntry *allocate(Addr addr);

    /**
     * Free a valid entry: drop it from the address index, then
     * reset. Every site that invalidates an entry must go through
     * here (or retireEntry) so the index stays authoritative.
     */
    void freeEntry(MsaEntry &e);

    /** A lock's HWQueue emptied: free the entry unless pinned. */
    void release(MsaEntry &e);

    /** Grant the lock of @p e to @p core (block push + SUCCESS). */
    void grantLock(MsaEntry &e, CoreId core);

    /** Pick the next waiter via the NBTC register; clears its bit. */
    CoreId pickNext(MsaEntry &e);

    /** Perform an unlock by @p core on @p e; true on success. */
    bool unlockCommon(MsaEntry &e, CoreId core);

    /**
     * Build a client-bound response. Final instruction responses
     * (Success/Fail/Abort/Busy) are stamped with the transaction id
     * they answer and recorded in the per-client completion cache so
     * retransmissions can be re-answered without re-execution.
     */
    std::shared_ptr<MsaMsg> makeClientResp(CoreId core, MsaOp op,
                                           Addr addr);

    void respond(CoreId core, MsaOp op, Addr addr);

    /** respond() with handoff/noSilent flags (also cached). */
    void respondFinal(CoreId core, MsaOp op, Addr addr,
                      bool handoff = false, bool no_silent = false);

    /** ABORT every queued (non-owner) waiter of @p e to software,
     *  with OMU accounting; returns the number aborted. */
    std::uint32_t abortWaiters(MsaEntry &e, const char *stat_name);

    /** Shed barrier/cond entries when going offline. */
    void shedEntries();

    /** Fire-and-forget Unpin to @p lock's home slice. */
    void sendUnpin(Addr lock);

    /** Tracer instant on this slice's row (no-op when untraced). */
    void traceInstant(const char *name, Addr a, std::uint64_t value = 0,
                      bool has_value = false);

    /** Queue @p msg until a busy entry settles. */
    void defer(const std::shared_ptr<MsaMsg> &msg);

    /** Re-inject deferred messages (after a busy entry settled). */
    void drainDeferred();

    bool typeSupported(SyncType t) const;

    /** @name OMU accessors that no-op when the OMU is disabled. @{ */
    void omuInc(Addr a, std::uint32_t n = 1);
    void omuDec(Addr a, std::uint32_t n = 1);
    bool omuActive(Addr a) const;
    /** @} */

    /**
     * Entry is done with its current use: free it (OMU enabled) or
     * keep it parked forever (OMU disabled, Fig 7 "Without OMU").
     */
    void retireEntry(MsaEntry &e);

    EventQueue &eq;
    const SystemConfig &cfg;
    CoreId tile;
    LaneId _lane = 0;
    mem::HomeSlice &home;
    SendFn send;
    StatRegistry &stats;
    std::string statPrefix;

    std::vector<MsaEntry> entries;
    /**
     * Flat index: sync address -> slot in `entries`, maintained by
     * allocate()/freeEntry(). Lookups on the request dispatch path
     * are O(1) instead of a linear entry scan, which matters for the
     * unbounded MSA-inf configuration.
     */
    FlatMap<Addr, std::uint32_t> entryIndex;
    bool infinite;
    Omu _omu;
    /** Next-bit-to-check fairness register (one per slice). */
    CoreId nbtc = 0;
    std::deque<std::shared_ptr<MsaMsg>> deferred;
    /** Per-client transaction dedup state (indexed by thread id). */
    std::vector<ClientTxn> txns;
    /** Offline (decommissioned) — see goOffline(). */
    bool offline = false;

    /**
     * Per-variable revocation epoch (ordered map: the failover
     * snapshot enumerates it deterministically). Grants carry
     * epoch + 1 on the wire; see MsaMsg::epoch.
     */
    std::map<Addr, std::uint32_t> varEpoch;
    /** Slice-global lease generation sequence (see leaseStamp). */
    std::uint64_t leaseSeq = 0;
    /** Cores declared dead by the failure detector. */
    std::bitset<mem::maxCores> deadThreads;
    /** Failed over: all traffic forwards to this slice (invalidCore
     *  when not failed over). */
    CoreId buddy = invalidCore;
    /** Buddy side: a SliceHandoff is expected but not yet applied. */
    bool awaitingHandoff = false;
    /** Messages held back while awaiting the handoff. */
    std::deque<std::shared_ptr<MsaMsg>> awaitingQueue;
    /** Home-slice lookup for re-homed variables (see setHomeLookup). */
    std::function<mem::HomeSlice &(Addr)> homeLookup;

    obs::Tracer *tracer = nullptr;
    obs::SyncProfiler *profiler = nullptr;
    obs::ResourceMonitor *monitor = nullptr;
    /** This slice's trace row (pid 1), valid when tracer != null. */
    obs::TrackId track = 0;
    /**
     * Flow id of the request currently being dispatched (0 outside a
     * dispatch window). Stamped onto every client-bound response so
     * the requester's trace row can close the flow; grantLock's
     * asynchronous push/revoke callbacks capture and restore it.
     */
    std::uint64_t curFlowId = 0;
};

} // namespace msa
} // namespace misar

#endif // MISAR_MSA_MSA_SLICE_HH
