#include "msa/ideal_sync.hh"

#include "sim/logging.hh"

namespace misar {
namespace msa {

void
IdealSyncUnit::lockAcquire(Addr a, Waiter w)
{
    LockState &l = locks[a];
    if (!l.held) {
        l.held = true;
        l.owner = w.core;
        w.cb(cpu::SyncResult::Success);
    } else {
        l.queue.push_back(std::move(w));
    }
}

void
IdealSyncUnit::lockRelease(Addr a, CoreId core)
{
    LockState &l = locks[a];
    if (!l.held || l.owner != core)
        panic("ideal: core %u releasing a lock it does not hold", core);
    if (l.queue.empty()) {
        l.held = false;
        l.owner = invalidCore;
        return;
    }
    Waiter next = std::move(l.queue.front());
    l.queue.pop_front();
    l.owner = next.core;
    next.cb(cpu::SyncResult::Success);
}

void
IdealSyncUnit::execute(CoreId core, const cpu::Op &op, Cb cb)
{
    stats.counter("sync.hwOps").inc();
    switch (op.instr) {
      case cpu::SyncInstr::Lock:
        lockAcquire(op.addr, Waiter{core, std::move(cb)});
        break;

      case cpu::SyncInstr::TryLock: {
        LockState &l = locks[op.addr];
        if (!l.held) {
            l.held = true;
            l.owner = core;
            cb(cpu::SyncResult::Success);
        } else {
            cb(cpu::SyncResult::Busy);
        }
        break;
      }

      case cpu::SyncInstr::Unlock:
        lockRelease(op.addr, core);
        cb(cpu::SyncResult::Success);
        break;

      case cpu::SyncInstr::RdLock:
      case cpu::SyncInstr::WrLock: {
        RwState &rw = rwlocks[op.addr];
        const bool writer = op.instr == cpu::SyncInstr::WrLock;
        bool writer_waiting = false;
        for (auto &[w, isw] : rw.queue)
            writer_waiting |= isw;
        if (writer ? (rw.writer == invalidCore && rw.readers == 0 &&
                      rw.queue.empty())
                   : (rw.writer == invalidCore && !writer_waiting)) {
            if (writer)
                rw.writer = core;
            else
                ++rw.readers;
            cb(cpu::SyncResult::Success);
        } else {
            rw.queue.emplace_back(Waiter{core, std::move(cb)}, writer);
        }
        break;
      }

      case cpu::SyncInstr::RwUnlock: {
        RwState &rw = rwlocks[op.addr];
        if (rw.writer == core)
            rw.writer = invalidCore;
        else if (rw.readers > 0)
            --rw.readers;
        else
            panic("ideal: RW_UNLOCK by non-holder");
        while (!rw.queue.empty() && rw.writer == invalidCore) {
            auto &[w, isw] = rw.queue.front();
            if (isw) {
                if (rw.readers > 0)
                    break;
                rw.writer = w.core;
                Waiter next = std::move(w);
                rw.queue.pop_front();
                next.cb(cpu::SyncResult::Success);
                break;
            }
            ++rw.readers;
            Waiter next = std::move(w);
            rw.queue.pop_front();
            next.cb(cpu::SyncResult::Success);
        }
        cb(cpu::SyncResult::Success);
        break;
      }

      case cpu::SyncInstr::Barrier: {
        BarrierState &b = barriers[op.addr];
        b.arrived.push_back(Waiter{core, std::move(cb)});
        if (b.arrived.size() >= op.goal) {
            std::vector<Waiter> rel = std::move(b.arrived);
            barriers.erase(op.addr);
            for (auto &w : rel)
                w.cb(cpu::SyncResult::Success);
        }
        break;
      }

      case cpu::SyncInstr::CondWait: {
        CondState &c = conds[op.addr];
        c.lockAddr = op.addr2;
        lockRelease(op.addr2, core);
        c.waiters.push_back(Waiter{core, std::move(cb)});
        break;
      }

      case cpu::SyncInstr::CondSignal:
      case cpu::SyncInstr::CondBcast: {
        auto it = conds.find(op.addr);
        if (it != conds.end() && !it->second.waiters.empty()) {
            const bool bcast = (op.instr == cpu::SyncInstr::CondBcast);
            CondState &c = it->second;
            std::size_t n = bcast ? c.waiters.size() : 1;
            for (std::size_t i = 0; i < n; ++i) {
                Waiter w = std::move(c.waiters.front());
                c.waiters.pop_front();
                // The waiter re-acquires the associated lock before
                // its COND_WAIT completes.
                lockAcquire(c.lockAddr, std::move(w));
            }
            if (c.waiters.empty())
                conds.erase(it);
        }
        cb(cpu::SyncResult::Success);
        break;
      }

      case cpu::SyncInstr::Finish:
        cb(cpu::SyncResult::Success);
        break;
    }
}

} // namespace msa
} // namespace misar
