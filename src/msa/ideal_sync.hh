/**
 * @file
 * Ideal (zero-latency) synchronization oracle — the paper's upper
 * bound. All semantics are maintained instantly in a global table;
 * only the *necessary* waiting time remains.
 */

#ifndef MISAR_MSA_IDEAL_SYNC_HH
#define MISAR_MSA_IDEAL_SYNC_HH

#include <deque>
#include <map>
#include <vector>

#include "cpu/core.hh"
#include "sim/stats.hh"

namespace misar {
namespace msa {

/** Zero-latency global SyncUnit. */
class IdealSyncUnit : public cpu::SyncUnit
{
  public:
    explicit IdealSyncUnit(StatRegistry &stats) : stats(stats) {}

    void execute(CoreId core, const cpu::Op &op, Cb cb) override;

  private:
    struct Waiter
    {
        CoreId core;
        Cb cb;
    };

    struct LockState
    {
        bool held = false;
        CoreId owner = invalidCore;
        std::deque<Waiter> queue;
    };

    struct BarrierState
    {
        std::vector<Waiter> arrived;
    };

    struct CondState
    {
        std::deque<Waiter> waiters;
        Addr lockAddr = invalidAddr;
    };

    struct RwState
    {
        CoreId writer = invalidCore;
        unsigned readers = 0;
        std::deque<std::pair<Waiter, bool>> queue; // (waiter, isWriter)
    };

    void lockAcquire(Addr a, Waiter w);
    void lockRelease(Addr a, CoreId core);

    std::map<Addr, LockState> locks;
    std::map<Addr, BarrierState> barriers;
    std::map<Addr, CondState> conds;
    std::map<Addr, RwState> rwlocks;
    StatRegistry &stats;
};

} // namespace msa
} // namespace misar

#endif // MISAR_MSA_IDEAL_SYNC_HH
