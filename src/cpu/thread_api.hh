/**
 * @file
 * ThreadApi: the programming interface of a simulated thread.
 *
 * Workload code and the synchronization runtime are coroutines that
 * co_await these operations, e.g.:
 * @code
 *   ThreadTask worker(ThreadApi t) {
 *       co_await t.compute(100);
 *       std::uint64_t v = co_await t.read(0x1000);
 *       co_await t.write(0x1000, v + 1);
 *   }
 * @endcode
 */

#ifndef MISAR_CPU_THREAD_API_HH
#define MISAR_CPU_THREAD_API_HH

#include "cpu/core.hh"
#include "cpu/op.hh"
#include "cpu/subtask.hh"

namespace misar {
namespace cpu {

/** Thin per-thread handle used by simulated code to issue ops. */
class ThreadApi
{
  public:
    explicit ThreadApi(Core &core) : core(&core) {}

    CoreId id() const { return core->id(); }
    Tick now() const { return core->eventQueue().now(); }
    StatRegistry &stats() const { return core->statRegistry(); }

    /** Busy-execute @p cycles of non-memory work. */
    OpAwaiter
    compute(Tick cycles) const
    {
        Op op;
        op.type = OpType::Compute;
        op.cycles = cycles;
        return {*core, op};
    }

    /** Load the word at @p a (awaits the value). */
    OpAwaiter
    read(Addr a) const
    {
        Op op;
        op.type = OpType::Read;
        op.addr = a;
        return {*core, op};
    }

    /** Store @p v at @p a (awaits the old value). */
    OpAwaiter
    write(Addr a, std::uint64_t v) const
    {
        Op op;
        op.type = OpType::Write;
        op.addr = a;
        op.value = v;
        return {*core, op};
    }

    /** Atomic test-and-set; awaits the old value. */
    OpAwaiter
    testAndSet(Addr a) const
    {
        return atomicOp(a, mem::AtomicOp::TestAndSet, 0, 0);
    }

    /** Atomic exchange; awaits the old value. */
    OpAwaiter
    swap(Addr a, std::uint64_t v) const
    {
        return atomicOp(a, mem::AtomicOp::Swap, v, 0);
    }

    /** Atomic fetch-and-add; awaits the old value. */
    OpAwaiter
    fetchAdd(Addr a, std::uint64_t v) const
    {
        return atomicOp(a, mem::AtomicOp::FetchAdd, v, 0);
    }

    /** Atomic compare-and-swap; awaits the old value. */
    OpAwaiter
    compareSwap(Addr a, std::uint64_t expect, std::uint64_t desired) const
    {
        return atomicOp(a, mem::AtomicOp::CompareSwap, expect, desired);
    }

    /** @name MiSAR synchronization ISA (awaits a SyncResult). @{ */

    OpAwaiter
    lockInstr(Addr lock) const
    {
        return syncOp(SyncInstr::Lock, lock);
    }

    OpAwaiter
    tryLockInstr(Addr lock) const
    {
        return syncOp(SyncInstr::TryLock, lock);
    }

    OpAwaiter
    unlockInstr(Addr lock) const
    {
        return syncOp(SyncInstr::Unlock, lock);
    }

    OpAwaiter
    rdLockInstr(Addr lock) const
    {
        return syncOp(SyncInstr::RdLock, lock);
    }

    OpAwaiter
    wrLockInstr(Addr lock) const
    {
        return syncOp(SyncInstr::WrLock, lock);
    }

    OpAwaiter
    rwUnlockInstr(Addr lock) const
    {
        return syncOp(SyncInstr::RwUnlock, lock);
    }

    OpAwaiter
    barrierInstr(Addr barrier, std::uint32_t goal) const
    {
        Op op = makeSync(SyncInstr::Barrier, barrier);
        op.goal = goal;
        return {*core, op};
    }

    OpAwaiter
    condWaitInstr(Addr cond, Addr lock) const
    {
        Op op = makeSync(SyncInstr::CondWait, cond);
        op.addr2 = lock;
        return {*core, op};
    }

    OpAwaiter
    condSignalInstr(Addr cond) const
    {
        return syncOp(SyncInstr::CondSignal, cond);
    }

    OpAwaiter
    condBcastInstr(Addr cond) const
    {
        return syncOp(SyncInstr::CondBcast, cond);
    }

    OpAwaiter
    finishInstr(Addr sync_addr) const
    {
        return syncOp(SyncInstr::Finish, sync_addr);
    }

    /** @} */

  private:
    static Op
    makeSync(SyncInstr i, Addr a)
    {
        Op op;
        op.type = OpType::Sync;
        op.instr = i;
        op.addr = a;
        return op;
    }

    OpAwaiter
    syncOp(SyncInstr i, Addr a) const
    {
        return {*core, makeSync(i, a)};
    }

    OpAwaiter
    atomicOp(Addr a, mem::AtomicOp aop, std::uint64_t v,
             std::uint64_t v2) const
    {
        Op op;
        op.type = OpType::Atomic;
        op.addr = a;
        op.aop = aop;
        op.value = v;
        op.value2 = v2;
        return {*core, op};
    }

    Core *core;
};

/** Convert an awaited sync-instruction result back to the enum. */
inline SyncResult
toSyncResult(std::uint64_t raw)
{
    return static_cast<SyncResult>(raw);
}

} // namespace cpu
} // namespace misar

#endif // MISAR_CPU_THREAD_API_HH
