/**
 * @file
 * SubTask: an awaitable coroutine used for simulated-thread
 * subroutines (synchronization library calls, workload helpers).
 *
 * A SubTask starts lazily when awaited and resumes its awaiter via
 * symmetric transfer when it finishes, so arbitrarily deep call
 * chains of simulated code cost no host stack.
 */

#ifndef MISAR_CPU_SUBTASK_HH
#define MISAR_CPU_SUBTASK_HH

#include <coroutine>
#include <utility>

#include "sim/logging.hh"

namespace misar {
namespace cpu {

namespace detail {

/** Shared promise behaviour: continuation plumbing. */
template <typename Promise>
struct SubTaskPromiseBase
{
    std::coroutine_handle<> continuation;

    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() noexcept {}
    };

    FinalAwaiter final_suspend() noexcept { return {}; }

    void
    unhandled_exception()
    {
        panic("exception escaped a simulated-thread coroutine");
    }
};

} // namespace detail

/**
 * Awaitable subroutine coroutine returning T (or void).
 *
 * Usage inside another coroutine:
 * @code
 *   SubTask<bool> tryLock(ThreadApi &t, Addr a);
 *   ...
 *   bool ok = co_await tryLock(t, a);
 * @endcode
 */
template <typename T = void>
class [[nodiscard]] SubTask
{
  public:
    struct promise_type : detail::SubTaskPromiseBase<promise_type>
    {
        T value{};

        SubTask
        get_return_object()
        {
            return SubTask{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        void return_value(T v) { value = std::move(v); }
    };

    SubTask(SubTask &&other) noexcept
        : handle(std::exchange(other.handle, nullptr))
    {}
    SubTask(const SubTask &) = delete;
    SubTask &operator=(const SubTask &) = delete;
    SubTask &operator=(SubTask &&) = delete;

    ~SubTask()
    {
        if (handle)
            handle.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle.promise().continuation = cont;
        return handle; // start the subtask now
    }

    T await_resume() { return std::move(handle.promise().value); }

  private:
    explicit SubTask(std::coroutine_handle<promise_type> h) : handle(h) {}

    std::coroutine_handle<promise_type> handle;
};

/** void specialization. */
template <>
class [[nodiscard]] SubTask<void>
{
  public:
    struct promise_type : detail::SubTaskPromiseBase<promise_type>
    {
        SubTask
        get_return_object()
        {
            return SubTask{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        void return_void() {}
    };

    SubTask(SubTask &&other) noexcept
        : handle(std::exchange(other.handle, nullptr))
    {}
    SubTask(const SubTask &) = delete;
    SubTask &operator=(const SubTask &) = delete;
    SubTask &operator=(SubTask &&) = delete;

    ~SubTask()
    {
        if (handle)
            handle.destroy();
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle.promise().continuation = cont;
        return handle;
    }

    void await_resume() {}

  private:
    explicit SubTask(std::coroutine_handle<promise_type> h) : handle(h) {}

    std::coroutine_handle<promise_type> handle;
};

} // namespace cpu
} // namespace misar

#endif // MISAR_CPU_SUBTASK_HH
