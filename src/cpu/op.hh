/**
 * @file
 * Operations a simulated thread can issue, including the MiSAR
 * synchronization ISA (paper §3).
 */

#ifndef MISAR_CPU_OP_HH
#define MISAR_CPU_OP_HH

#include <cstdint>

#include "mem/functional_mem.hh"
#include "sim/types.hh"

namespace misar {
namespace cpu {

/** The six MiSAR synchronization instructions plus FINISH. */
enum class SyncInstr : std::uint8_t
{
    Lock,
    /** Non-blocking acquire (ISA extension; cf. SSB's trylock). */
    TryLock,
    Unlock,
    /** @name Reader-writer lock extension (cf. LCU [23]). @{ */
    RdLock,
    WrLock,
    RwUnlock,
    /** @} */
    Barrier,
    CondWait,
    CondSignal,
    CondBcast,
    /** OMU exit notification for software barriers / cond waits. */
    Finish,
};

/** Return value of a synchronization instruction (paper §3). */
enum class SyncResult : std::uint8_t
{
    Success, ///< operation performed in hardware
    Fail,    ///< no hardware resources; fall back to software
    Abort,   ///< terminated by the MSA due to OS thread scheduling
    /** TRYLOCK only: performed in hardware, lock already held. */
    Busy,
};

/** Kinds of operation a thread program can await. */
enum class OpType : std::uint8_t
{
    Compute, ///< busy for N cycles
    Read,
    Write,
    Atomic,
    Sync,    ///< one of the SyncInstr instructions
};

/** One awaited operation (a tagged union kept simple and flat). */
struct Op
{
    OpType type = OpType::Compute;

    // Compute
    Tick cycles = 0;

    // Memory
    Addr addr = invalidAddr;
    std::uint64_t value = 0;
    mem::AtomicOp aop = mem::AtomicOp::TestAndSet;
    std::uint64_t value2 = 0;

    // Sync
    SyncInstr instr = SyncInstr::Lock;
    Addr addr2 = invalidAddr;    ///< associated lock for COND_WAIT
    std::uint32_t goal = 0;      ///< barrier goal count
};

/** Printable names, for stats and debug output. */
const char *syncInstrName(SyncInstr i);
const char *syncResultName(SyncResult r);

} // namespace cpu
} // namespace misar

#endif // MISAR_CPU_OP_HH
