#include "cpu/core.hh"

#include "sim/logging.hh"

namespace misar {
namespace cpu {

SyncUnit::~SyncUnit() = default;

void
SyncUnit::interrupt(CoreId)
{
    // Default: the unit has nothing blocked to suspend.
}

void
OpAwaiter::await_suspend(std::coroutine_handle<> h)
{
    core.issue(op, this, h);
}

void
ThreadTask::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept
{
    if (h.promise().core)
        h.promise().core->threadFinished();
}

void
ThreadTask::promise_type::unhandled_exception()
{
    panic("exception escaped a thread body");
}

ThreadTask &
ThreadTask::operator=(ThreadTask &&other) noexcept
{
    if (this != &other) {
        if (handle)
            handle.destroy();
        handle = std::exchange(other.handle, nullptr);
    }
    return *this;
}

ThreadTask::~ThreadTask()
{
    if (handle)
        handle.destroy();
}

Core::Core(EventQueue &eq, const CoreConfig &cfg, CoreId id,
           mem::L1Cache &l1, StatRegistry &stats)
    : eq(eq), cfg(cfg), _id(id), _l1(l1), stats(stats),
      statPrefix("core" + std::to_string(id) + ".")
{}

void
Core::start(ThreadTask b)
{
    if (!b.handle)
        panic("core %u: started with an empty thread body", _id);
    body = std::move(b);
    body.handle.promise().core = this;
    _started = true;
    _finished = false;
    eq.scheduleL(_lane, 0, [this] {
        if (!_killed)
            body.handle.resume();
    });
}

void
Core::threadFinished()
{
    _finished = true;
    _finishTick = eq.now();
    if (progressCell)
        ++*progressCell;
    stats.counter(statPrefix + "threadsFinished").inc();
}

void
Core::kill()
{
    if (_killed || finished())
        return;
    _killed = true;
    _finishTick = eq.now();
    stats.counter(statPrefix + "killed").inc();
}

void
Core::interrupt()
{
    if (syncOutstanding && syncUnit)
        syncUnit->interrupt(_id);
}

void
Core::issue(const Op &op, OpAwaiter *aw, std::coroutine_handle<> h)
{
    const Tick t0 = eq.now();
    switch (op.type) {
      case OpType::Compute:
        stats.counter(statPrefix + "computeCycles").inc(op.cycles);
        eq.scheduleL(_lane, op.cycles, [this, t0, h] {
            if (_killed)
                return; // the corpse never resumes
            _trace.record(t0, eq.now(), "compute");
            h.resume();
        });
        break;

      case OpType::Read:
        stats.counter(statPrefix + "loads").inc();
        _l1.read(op.addr, [this, t0, a = op.addr, aw,
                           h](std::uint64_t v) {
            if (_killed)
                return;
            _trace.record(t0, eq.now(), "read", a);
            aw->result = v;
            h.resume();
        });
        break;

      case OpType::Write:
        stats.counter(statPrefix + "stores").inc();
        _l1.write(op.addr, op.value, [this, t0, a = op.addr, aw,
                                      h](std::uint64_t old) {
            if (_killed)
                return;
            _trace.record(t0, eq.now(), "write", a);
            aw->result = old;
            h.resume();
        });
        break;

      case OpType::Atomic:
        stats.counter(statPrefix + "atomics").inc();
        _l1.atomic(op.addr, op.aop, op.value, op.value2,
                   [this, t0, a = op.addr, aw, h](std::uint64_t old) {
            if (_killed)
                return;
            _trace.record(t0, eq.now(), "atomic", a);
            aw->result = old;
            h.resume();
        });
        break;

      case OpType::Sync: {
        if (!syncUnit)
            panic("core %u: sync instruction with no sync unit", _id);
        stats.counter(statPrefix + "syncInstrs").inc();
        // The instruction acts as a memory fence and its actual
        // synchronization activity begins only when the instruction
        // is the next to commit (paper §3): charge the pipeline-drain
        // cost up front.
        syncOutstanding = true;
        // The awaiter owns the Op and outlives the resumption, so the
        // callbacks reach the core and the op through @p aw instead of
        // capturing them — keeping both lambdas inside the event
        // queue's inline callback buffer.
        eq.scheduleL(_lane, cfg.syncFenceLatency, [t0, aw, h] {
            Core &c = aw->core;
            if (c._killed)
                return; // died in the fence: the op is never issued
            c.syncUnit->execute(c._id, aw->op,
                                [t0, aw, h](SyncResult r) {
                Core &core = aw->core;
                if (core._killed)
                    return; // a reply addressed to a corpse
                core.syncOutstanding = false;
                if (core.progressCell)
                    ++*core.progressCell;
                core._trace.record(t0, core.eq.now(),
                                   syncInstrName(aw->op.instr),
                                   aw->op.addr);
                aw->result = static_cast<std::uint64_t>(r);
                h.resume();
            });
        });
        break;
      }
    }
}

} // namespace cpu
} // namespace misar
