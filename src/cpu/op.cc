#include "cpu/op.hh"

namespace misar {
namespace cpu {

const char *
syncInstrName(SyncInstr i)
{
    switch (i) {
      case SyncInstr::Lock:
        return "LOCK";
      case SyncInstr::TryLock:
        return "TRYLOCK";
      case SyncInstr::Unlock:
        return "UNLOCK";
      case SyncInstr::RdLock:
        return "RW_RDLOCK";
      case SyncInstr::WrLock:
        return "RW_WRLOCK";
      case SyncInstr::RwUnlock:
        return "RW_UNLOCK";
      case SyncInstr::Barrier:
        return "BARRIER";
      case SyncInstr::CondWait:
        return "COND_WAIT";
      case SyncInstr::CondSignal:
        return "COND_SIGNAL";
      case SyncInstr::CondBcast:
        return "COND_BCAST";
      case SyncInstr::Finish:
        return "FINISH";
    }
    return "?";
}

const char *
syncResultName(SyncResult r)
{
    switch (r) {
      case SyncResult::Success:
        return "SUCCESS";
      case SyncResult::Fail:
        return "FAIL";
      case SyncResult::Abort:
        return "ABORT";
      case SyncResult::Busy:
        return "BUSY";
    }
    return "?";
}

} // namespace cpu
} // namespace misar
