/**
 * @file
 * Timing core model: drives one simulated thread (a coroutine) and
 * executes its compute, memory, and synchronization operations.
 */

#ifndef MISAR_CPU_CORE_HH
#define MISAR_CPU_CORE_HH

#include <coroutine>
#include <functional>
#include <memory>
#include <utility>

#include "cpu/op.hh"
#include "mem/l1_cache.hh"
#include "sim/trace.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace misar {
namespace cpu {

class Core;

/**
 * Interface the core uses to execute synchronization instructions.
 * Implemented by the MSA client (hardware), the always-FAIL unit
 * (MSA-0), and the zero-latency oracle (Ideal).
 */
class SyncUnit
{
  public:
    using Cb = std::function<void(SyncResult)>;

    virtual ~SyncUnit();

    /** Execute sync instruction @p op for @p core; reply via @p cb. */
    virtual void execute(CoreId core, const Op &op, Cb cb) = 0;

    /**
     * OS interrupt delivered to @p core while it is blocked in a
     * sync instruction (thread suspension, paper §4.x.2).
     */
    virtual void interrupt(CoreId core);
};

/** Leaf awaitable: one operation executed by the core. */
struct OpAwaiter
{
    Core &core;
    Op op;
    std::uint64_t result = 0;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    std::uint64_t await_resume() const noexcept { return result; }
};

/** Root coroutine type for a simulated thread body. */
class ThreadTask
{
  public:
    struct promise_type
    {
        Core *core = nullptr;

        ThreadTask
        get_return_object()
        {
            return ThreadTask{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }

        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }
            void await_suspend(
                std::coroutine_handle<promise_type> h) noexcept;
            void await_resume() noexcept {}
        };

        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception();
    };

    ThreadTask() = default;
    ThreadTask(ThreadTask &&other) noexcept
        : handle(std::exchange(other.handle, nullptr))
    {}
    ThreadTask &operator=(ThreadTask &&other) noexcept;
    ThreadTask(const ThreadTask &) = delete;
    ThreadTask &operator=(const ThreadTask &) = delete;
    ~ThreadTask();

  private:
    friend class Core;
    explicit ThreadTask(std::coroutine_handle<promise_type> h) : handle(h) {}
    std::coroutine_handle<promise_type> handle;
};

/**
 * One core of the tiled CMP. Runs a single thread (as in the paper;
 * the HWQueue is one bit per core).
 */
class Core
{
  public:
    Core(EventQueue &eq, const CoreConfig &cfg, CoreId id, mem::L1Cache &l1,
         StatRegistry &stats);

    /** Attach the synchronization unit (not owned). */
    void setSyncUnit(SyncUnit *unit) { syncUnit = unit; }

    /**
     * Pin this core's events to its tile's lane. start() and
     * interrupt-driven resumes are invoked from the global lane, so
     * the pin (not lane inheritance) is what keeps core events on the
     * tile lane.
     */
    void setLane(LaneId l) { _lane = l; }
    LaneId lane() const { return _lane; }

    /**
     * Attach a shared forward-progress counter (not owned; may be
     * null). The core bumps it whenever a sync instruction retires or
     * the thread finishes; the liveness watchdog samples it to detect
     * system-wide stalls.
     */
    void setProgressCell(std::uint64_t *cell) { progressCell = cell; }

    /** Begin executing @p body at the current tick. */
    void start(ThreadTask body);

    /**
     * Halt the core dead, mid-whatever it was doing (fault
     * injection). The thread body is never resumed again: callbacks
     * for its in-flight operation fire into a corpse and are
     * discarded. The dead thread counts as finished so a recovered
     * run can still quiesce, and its own finish/progress signals stop
     * (a corpse must not feed the watchdog).
     */
    void kill();

    /** True when the core was halted by fault injection. */
    bool killed() const { return _killed; }

    /** True once the thread body has returned (or none started). */
    bool finished() const { return !_started || _finished || _killed; }

    /** Tick at which the thread body returned. */
    Tick finishTick() const { return _finishTick; }

    /**
     * Deliver an OS interrupt: if the core is blocked in a sync
     * instruction, the sync unit is told to SUSPEND it (paper
     * §4.1.2/4.2.2/4.3.2).
     */
    void interrupt();

    CoreId id() const { return _id; }
    EventQueue &eventQueue() { return eq; }
    TraceBuffer &trace() { return _trace; }
    const TraceBuffer &trace() const { return _trace; }
    mem::L1Cache &l1() { return _l1; }
    StatRegistry &statRegistry() { return stats; }

  private:
    friend struct OpAwaiter;
    friend struct ThreadTask::promise_type;

    /** Execute @p op, then set @p aw->result and resume @p h. */
    void issue(const Op &op, OpAwaiter *aw, std::coroutine_handle<> h);

    void threadFinished();

    EventQueue &eq;
    const CoreConfig &cfg;
    CoreId _id;
    LaneId _lane = 0;
    mem::L1Cache &_l1;
    StatRegistry &stats;
    std::string statPrefix;
    SyncUnit *syncUnit = nullptr;

    TraceBuffer _trace;
    ThreadTask body;
    bool _started = false;
    bool _finished = false;
    bool _killed = false;
    Tick _finishTick = 0;
    bool syncOutstanding = false;
    std::uint64_t *progressCell = nullptr;
};

} // namespace cpu
} // namespace misar

#endif // MISAR_CPU_CORE_HH
