/**
 * @file
 * Raw synchronization latency microbenchmarks (paper §6.1, Fig 5).
 */

#ifndef MISAR_WORKLOAD_MICROBENCH_HH
#define MISAR_WORKLOAD_MICROBENCH_HH

#include "sync/sync_lib.hh"
#include "system/presets.hh"

namespace misar {
namespace workload {

/** Mean raw latencies, in cycles, per Figure 5's five groups. */
struct RawLatencies
{
    double lockAcquire = 0;    ///< no contention, enter-to-exit lock()
    double lockHandoff = 0;    ///< high contention, unlock() to next
                               ///< lock() exit
    double barrierHandoff = 0; ///< last arrival enters to all exited
    double condSignal = 0;     ///< cond_signal() to released wait exit
    double condBroadcast = 0;  ///< cond_broadcast() to last wait exit
};

/** Run all five microbenchmarks on @p cores under @p pc. */
RawLatencies measureRawLatency(unsigned cores, sys::PaperConfig pc);

/** Same, with an explicit library flavor and accelerator mode. */
RawLatencies measureRawLatencyFlavor(unsigned cores,
                                     sync::SyncLib::Flavor flavor,
                                     AccelMode mode,
                                     unsigned msa_entries = 2);

} // namespace workload
} // namespace misar

#endif // MISAR_WORKLOAD_MICROBENCH_HH
