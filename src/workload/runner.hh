/**
 * @file
 * Experiment runner: executes one application on one configuration
 * and reports makespan, hardware coverage, and key statistics.
 */

#ifndef MISAR_WORKLOAD_RUNNER_HH
#define MISAR_WORKLOAD_RUNNER_HH

#include <map>
#include <string>
#include <vector>

#include "obs/histogram.hh"
#include "system/presets.hh"
#include "system/system.hh"
#include "workload/synthetic_app.hh"

namespace misar {
namespace workload {

/** Result of one application run. */
struct RunResult
{
    Tick makespan = 0;       ///< finish tick of the slowest thread
    double hwCoverage = 0.0; ///< fraction of sync ops handled by MSA
    std::uint64_t hwOps = 0;
    std::uint64_t swOps = 0;
    std::uint64_t silentLocks = 0;
    bool finished = false;
    /** Why the run stopped (deadlock vs tick-budget exhaustion). */
    sys::RunOutcome outcome = sys::RunOutcome::LimitReached;

    /** @name Resilience summary (non-zero only on faulted runs). @{ */
    std::uint64_t timeouts = 0;
    std::uint64_t retries = 0;
    std::uint64_t abortedOps = 0;
    /** Waiters shed to software by an offline (decommissioned) slice. */
    std::uint64_t offlineSheds = 0;
    /** L1 snoops that crossed a silently-held lock block. */
    std::uint64_t crossedSnoops = 0;
    /** NI end-to-end retransmissions (lost/corrupted packets). */
    std::uint64_t nocRetransmits = 0;
    /** Duplicate packets absorbed by the NI receive sequencer. */
    std::uint64_t nocDedups = 0;
    /** Extra hops taken by packets routed around dead links. */
    std::uint64_t detourHops = 0;
    /** Mesh links killed by the NoC fault injector. */
    std::uint64_t deadLinks = 0;
    /** MSA slices shed because their tile became unreachable. */
    std::uint64_t partitionSheds = 0;
    /** Cores halted dead by the participant fault injector. */
    std::uint64_t coreKills = 0;
    /** Hardware grants revoked from dead holders (lease expiry or
     *  dead-core declaration). */
    std::uint64_t lockRevocations = 0;
    /** Per-slice barrier membership reconfigurations after a dead
     *  declaration. */
    std::uint64_t barrierReconfigs = 0;
    /** Stale releases fenced by the variable-epoch check. */
    std::uint64_t fencedReleases = 0;
    /** Variables re-homed to a buddy slice by the failover handoff. */
    std::uint64_t rehomedVars = 0;
    /** @} */

    /** Counters requested via RunOptions::captureCounters. */
    std::map<std::string, std::uint64_t> captured;

    /**
     * Run-level sync-wait distribution (every acquire-class op, all
     * variables). Empty unless cfg.obs.profileSync was enabled.
     */
    obs::LogHistogram syncWait;

    /** @name Resource-pressure summary (cfg.obs.heatmapEnabled). @{ */
    bool hasPressure = false;
    std::uint64_t overflowEvents = 0;
    std::uint64_t omuEpisodes = 0;
    std::uint64_t omuEpisodeTicks = 0;
    std::uint64_t omuHighWater = 0;
    double maxSliceOccupancy = 0.0;
    double maxNiQueueDepth = 0.0;
    /** @} */

    /** @name Server-run accounting (spec.server.enabled only). @{ */
    bool hasServer = false;
    srv::ServerStats server;
    /** @} */
};

/** Per-run execution knobs (campaign engine / ablation harnesses). */
struct RunOptions
{
    /** Simulated-tick budget handed to System::runDetailed. */
    Tick tickLimit = 2000000000ULL;
    /** StatRegistry counters copied into RunResult::captured. */
    const std::vector<std::string> *captureCounters = nullptr;
};

/** Run @p spec on @p cores cores under configuration @p pc. */
RunResult runApp(const AppSpec &spec, unsigned cores, sys::PaperConfig pc,
                 std::uint64_t seed = 1);

/**
 * Same, but with an explicit SystemConfig (for ablations). When
 * cfg.obs names output files (traceOutPath / statsJsonPath /
 * sampleCsvPath) they are written after the run; @p preset labels
 * the run report's metadata block.
 */
RunResult runAppWithConfig(const AppSpec &spec, const SystemConfig &cfg,
                           sync::SyncLib::Flavor flavor,
                           std::uint64_t seed = 1,
                           const std::string &preset = "");

/** Same, with explicit execution options. */
RunResult runAppWithConfig(const AppSpec &spec, const SystemConfig &cfg,
                           sync::SyncLib::Flavor flavor,
                           std::uint64_t seed, const std::string &preset,
                           const RunOptions &opts);

} // namespace workload
} // namespace misar

#endif // MISAR_WORKLOAD_RUNNER_HH
