#include "workload/synthetic_app.hh"

#include <algorithm>

#include "sim/rng.hh"

namespace misar {
namespace workload {

using cpu::SubTask;
using cpu::ThreadApi;
using cpu::ThreadTask;
using sync::SyncLib;

namespace {

/** Mailbox layout of one producer/consumer pair. */
struct Mailbox
{
    Addr mutex, condProd, condCons, slot;

    Mailbox(const AppLayout &lay, unsigned pair)
    {
        const Addr base = lay.pipeBase + static_cast<Addr>(pair) * 4 * 64;
        mutex = base;
        condProd = base + 64;
        condCons = base + 128;
        slot = base + 192;
    }
};

SubTask<>
produceOne(ThreadApi t, SyncLib *lib, Mailbox mb, std::uint64_t item)
{
    co_await lib->mutexLock(t, mb.mutex);
    for (;;) {
        std::uint64_t v = co_await t.read(mb.slot);
        if (v == 0)
            break;
        co_await lib->condWait(t, mb.condProd, mb.mutex);
    }
    co_await t.write(mb.slot, item);
    co_await lib->condSignal(t, mb.condCons);
    co_await lib->mutexUnlock(t, mb.mutex);
}

SubTask<std::uint64_t>
consumeOne(ThreadApi t, SyncLib *lib, Mailbox mb)
{
    co_await lib->mutexLock(t, mb.mutex);
    std::uint64_t v;
    for (;;) {
        v = co_await t.read(mb.slot);
        if (v != 0)
            break;
        co_await lib->condWait(t, mb.condCons, mb.mutex);
    }
    co_await t.write(mb.slot, 0);
    co_await lib->condSignal(t, mb.condProd);
    co_await lib->mutexUnlock(t, mb.mutex);
    co_return v;
}

} // namespace

ThreadTask
appThread(ThreadApi t, const AppSpec &spec_in, const AppLayout &lay_in,
          SyncLib *lib, unsigned num_threads, std::uint64_t seed)
{
    // Copy parameters into the coroutine frame: callers' spec/layout
    // may not outlive the whole run.
    const AppSpec spec = spec_in;
    const AppLayout lay = lay_in;

    if (spec.pipeline) {
        Rng rng(seed ^ (0x1234567ULL + t.id()));
        const unsigned pairs = num_threads / 2;
        const unsigned id = t.id() - lay.firstCore;
        if (id >= pairs * 2) {
            for (unsigned i = 0; i < spec.pipelineItems; ++i)
                co_await t.compute(spec.computePerIter);
            co_return;
        }
        const Mailbox mb(lay, id % pairs);
        const bool is_producer = id < pairs;
        for (unsigned i = 1; i <= spec.pipelineItems; ++i) {
            if (is_producer) {
                co_await t.compute(spec.computePerIter / 2 +
                                   rng.range(spec.computePerIter + 1));
                co_await produceOne(t, lib, mb, i);
            } else {
                co_await consumeOne(t, lib, mb);
                co_await t.compute(spec.computePerIter / 2 +
                                   rng.range(spec.computePerIter + 1));
            }
        }
        co_return;
    }

    Rng rng(seed * 0x9e3779b97f4a7c15ULL + t.id() * 0x7f4a7c15ULL + 1);
    const unsigned id = t.id() - lay.firstCore;

    // Partition the lock pool for affinity-based selection.
    const unsigned pool = std::max(1u, spec.lockPoolSize);
    const unsigned per_thread = std::max(1u, pool / num_threads);
    const unsigned part_start = (id * per_thread) % pool;

    const Addr hot_lock = lay.lockBase - 0x1000;
    const Addr data_base = lay.lockBase + static_cast<Addr>(pool) * 64;

    // Startup: the main thread briefly locks a set of one-shot
    // initialization locks (setting up shared structures) before the
    // workers start — the usual init-then-spawn pattern. Randomly
    // placed, so their home tiles follow a Poisson-like distribution:
    // without the OMU they permanently capture most (not all) MSA
    // entries, which is exactly the Figure 7 effect.
    if (spec.initLocksPerThread) {
        if (id == 0) {
            const Addr init_base = lay.lockBase + 0x400000;
            const unsigned n = spec.initLocksPerThread * num_threads;
            for (unsigned k = 0; k < n; ++k) {
                Addr l = init_base + rng.range(16 * n) * blockBytes;
                co_await lib->mutexLock(t, l);
                co_await t.compute(20);
                co_await lib->mutexUnlock(t, l);
            }
        }
        co_await lib->barrierWait(t, lay.barrierAddr, num_threads);
    }

    for (unsigned it = 0; it < spec.iters; ++it) {
        // Local compute with jitter.
        co_await t.compute(spec.computePerIter / 2 +
                           rng.range(spec.computePerIter + 1));

        // Background shared-memory traffic.
        for (unsigned m = 0; m < spec.sharedMemOps; ++m) {
            Addr a = lay.sharedBase +
                     rng.range(lay.sharedBlocks) * blockBytes;
            if (rng.range(2))
                co_await t.read(a);
            else
                co_await t.write(a, it);
        }

        // Lock activity.
        if (spec.lockPoolSize) {
            for (unsigned j = 0; j < spec.lockOpsPerIter; ++j) {
                unsigned idx;
                if (rng.uniform() < spec.lockAffinity)
                    idx = (part_start + rng.range(per_thread)) % pool;
                else
                    idx = static_cast<unsigned>(rng.range(pool));
                const Addr lock = lay.lockBase + static_cast<Addr>(idx) * 64;
                co_await lib->mutexLock(t, lock);
                co_await t.compute(spec.csLen);
                co_await t.write(data_base + static_cast<Addr>(idx) * 64,
                                 it);
                co_await lib->mutexUnlock(t, lock);
            }
        }

        // Hot-lock contention (work-queue counter pattern).
        if (spec.hotLockEvery && (it % spec.hotLockEvery) == 0) {
            co_await lib->mutexLock(t, hot_lock);
            co_await t.compute(spec.csLen);
            co_await t.write(hot_lock + 8, it);
            co_await lib->mutexUnlock(t, hot_lock);
        }

        // Barrier phases.
        if (spec.barrierEvery && ((it + 1) % spec.barrierEvery) == 0)
            co_await lib->barrierWait(t, lay.barrierAddr, num_threads);
    }
}

} // namespace workload
} // namespace misar
