/**
 * @file
 * Catalog of the 26 Splash-2 + PARSEC synchronization-signature
 * workloads evaluated in the paper (§6.2).
 */

#ifndef MISAR_WORKLOAD_APP_CATALOG_HH
#define MISAR_WORKLOAD_APP_CATALOG_HH

#include <vector>

#include "workload/synthetic_app.hh"

namespace misar {
namespace workload {

/** All 26 benchmark signatures (Splash-2 first, then PARSEC). */
const std::vector<AppSpec> &appCatalog();

/** Lookup by name; fatal() if unknown. */
const AppSpec &appByName(const std::string &name);

/** Lookup by name; nullptr if unknown (spec validation). */
const AppSpec *findApp(const std::string &name);

/** The applications individually plotted in Figure 6 (>=4% ideal
 *  benefit): radiosity, raytrace, water-sp, ocean, ocean-nc,
 *  cholesky, fluidanimate, streamcluster. */
const std::vector<std::string> &headlineApps();

} // namespace workload
} // namespace misar

#endif // MISAR_WORKLOAD_APP_CATALOG_HH
