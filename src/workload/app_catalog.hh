/**
 * @file
 * Catalog of the 26 Splash-2 + PARSEC synchronization-signature
 * workloads evaluated in the paper (§6.2).
 */

#ifndef MISAR_WORKLOAD_APP_CATALOG_HH
#define MISAR_WORKLOAD_APP_CATALOG_HH

#include <vector>

#include "workload/synthetic_app.hh"

namespace misar {
namespace workload {

/** All 26 benchmark signatures (Splash-2 first, then PARSEC). */
const std::vector<AppSpec> &appCatalog();

/**
 * The task-server workloads (src/srv): open-loop `server-*` apps plus
 * the closed-loop `taskqueue` work-stealing app. Kept out of
 * appCatalog() so the "all" campaign shorthand (and every grid hash
 * derived from it) still means the paper's 26 benchmarks.
 */
const std::vector<AppSpec> &serverCatalog();

/** Lookup by name in both catalogs; fatal() if unknown. */
const AppSpec &appByName(const std::string &name);

/** Lookup by name in both catalogs; nullptr if unknown. */
const AppSpec *findApp(const std::string &name);

/** The applications individually plotted in Figure 6 (>=4% ideal
 *  benefit): radiosity, raytrace, water-sp, ocean, ocean-nc,
 *  cholesky, fluidanimate, streamcluster. */
const std::vector<std::string> &headlineApps();

} // namespace workload
} // namespace misar

#endif // MISAR_WORKLOAD_APP_CATALOG_HH
