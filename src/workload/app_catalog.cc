#include "workload/app_catalog.hh"

#include "sim/logging.hh"

namespace misar {
namespace workload {

namespace {

/**
 * Build the catalog. Parameters encode each benchmark's published
 * synchronization signature (see DESIGN.md §3): lock counts and
 * affinity from the Splash-2/PARSEC characterization literature and
 * the paper's own discussion (radiosity: frequent low-contention
 * locks spread over threads; fluidanimate: many locks re-acquired by
 * the same thread; streamcluster: barrier-dominated; raytrace: one
 * hot lock; ocean: barrier phases; etc.). Sync-light benchmarks get
 * mostly-compute signatures so the suite GeoMean stays honest.
 */
std::vector<AppSpec>
buildCatalog()
{
    std::vector<AppSpec> v;
    auto add = [&](AppSpec s) { v.push_back(std::move(s)); };

    // ---------------- Splash-2 ----------------
    {
        AppSpec s;
        s.name = "barnes";
        s.iters = 40;
        s.computePerIter = 900;
        s.lockPoolSize = 128;
        s.lockOpsPerIter = 3;
        s.lockAffinity = 0.3;
        s.csLen = 30;
        s.barrierEvery = 10;
        add(s);
    }
    {
        AppSpec s;
        s.name = "fmm";
        s.iters = 40;
        s.computePerIter = 1000;
        s.lockPoolSize = 64;
        s.lockOpsPerIter = 2;
        s.lockAffinity = 0.4;
        s.barrierEvery = 8;
        add(s);
    }
    {
        AppSpec s;
        s.name = "ocean";
        s.iters = 60;
        s.computePerIter = 900;
        s.barrierEvery = 1; // barrier phase per step
        s.sharedMemOps = 4;
        add(s);
    }
    {
        AppSpec s;
        s.name = "ocean-nc";
        s.iters = 90;
        s.computePerIter = 500;
        s.barrierEvery = 1; // finer phases than contiguous ocean
        s.sharedMemOps = 4;
        add(s);
    }
    {
        AppSpec s;
        s.name = "radiosity";
        s.iters = 60;
        s.computePerIter = 300;
        s.lockPoolSize = 512; // task queues + patch locks
        s.lockOpsPerIter = 4;
        s.lockAffinity = 0.2; // locks migrate between threads
        s.csLen = 25;
        s.barrierEvery = 30;
        add(s);
    }
    {
        AppSpec s;
        s.name = "raytrace";
        s.iters = 80;
        s.computePerIter = 350;
        s.lockPoolSize = 32;
        s.lockOpsPerIter = 1;
        s.lockAffinity = 0.1;
        s.csLen = 20;
        s.hotLockEvery = 1; // global ray-id / memory counter
        add(s);
    }
    {
        AppSpec s;
        s.name = "volrend";
        s.iters = 50;
        s.computePerIter = 800;
        s.lockPoolSize = 8;
        s.lockOpsPerIter = 1;
        s.hotLockEvery = 8;
        s.barrierEvery = 16;
        add(s);
    }
    {
        AppSpec s;
        s.name = "water-ns";
        s.iters = 50;
        s.computePerIter = 700;
        s.lockPoolSize = 64;
        s.lockOpsPerIter = 2;
        s.lockAffinity = 0.5;
        s.barrierEvery = 6;
        add(s);
    }
    {
        AppSpec s;
        s.name = "water-sp";
        s.iters = 60;
        s.computePerIter = 500;
        s.lockPoolSize = 64;
        s.lockOpsPerIter = 2;
        s.lockAffinity = 0.5;
        s.csLen = 25;
        s.barrierEvery = 4;
        add(s);
    }
    {
        AppSpec s;
        s.name = "cholesky";
        s.iters = 60;
        s.computePerIter = 400;
        s.lockPoolSize = 16; // task-queue locks
        s.lockOpsPerIter = 2;
        s.lockAffinity = 0.15;
        s.csLen = 35;
        s.hotLockEvery = 4;
        add(s);
    }
    {
        AppSpec s;
        s.name = "fft";
        s.iters = 30;
        s.computePerIter = 2500;
        s.barrierEvery = 10;
        add(s);
    }
    {
        AppSpec s;
        s.name = "lu";
        s.iters = 40;
        s.computePerIter = 1800;
        s.barrierEvery = 8;
        add(s);
    }
    {
        AppSpec s;
        s.name = "lu-nc";
        s.iters = 40;
        s.computePerIter = 1500;
        s.barrierEvery = 6;
        add(s);
    }
    {
        AppSpec s;
        s.name = "radix";
        s.iters = 30;
        s.computePerIter = 2000;
        s.barrierEvery = 6;
        add(s);
    }

    // ---------------- PARSEC ----------------
    {
        AppSpec s;
        s.name = "blackscholes";
        s.iters = 30;
        s.computePerIter = 3000;
        s.barrierEvery = 30; // one barrier per run unit
        add(s);
    }
    {
        AppSpec s;
        s.name = "bodytrack";
        s.iters = 40;
        s.computePerIter = 1200;
        s.lockPoolSize = 16;
        s.lockOpsPerIter = 1;
        s.hotLockEvery = 4;
        s.barrierEvery = 8;
        add(s);
    }
    {
        AppSpec s;
        s.name = "canneal";
        s.iters = 50;
        s.computePerIter = 1000;
        s.lockPoolSize = 256;
        s.lockOpsPerIter = 2;
        s.lockAffinity = 0.05;
        s.csLen = 15;
        add(s);
    }
    {
        AppSpec s;
        s.name = "dedup";
        s.pipeline = true;
        s.pipelineItems = 40;
        s.computePerIter = 600;
        add(s);
    }
    {
        AppSpec s;
        s.name = "facesim";
        s.iters = 40;
        s.computePerIter = 1500;
        s.barrierEvery = 4;
        add(s);
    }
    {
        AppSpec s;
        s.name = "ferret";
        s.pipeline = true;
        s.pipelineItems = 50;
        s.computePerIter = 400;
        add(s);
    }
    {
        AppSpec s;
        s.name = "fluidanimate";
        s.iters = 50;
        s.computePerIter = 700;
        s.lockPoolSize = 1024; // per-cell locks
        s.lockOpsPerIter = 8;
        s.lockAffinity = 0.95; // same thread re-acquires its cells
        s.csLen = 12;
        s.barrierEvery = 10;
        add(s);
    }
    {
        AppSpec s;
        s.name = "freqmine";
        s.iters = 30;
        s.computePerIter = 2500;
        add(s);
    }
    {
        AppSpec s;
        s.name = "streamcluster";
        s.iters = 120;
        s.computePerIter = 300;
        s.barrierEvery = 1; // barrier after every tiny phase
        s.sharedMemOps = 1;
        add(s);
    }
    {
        AppSpec s;
        s.name = "swaptions";
        s.iters = 25;
        s.computePerIter = 4000;
        add(s);
    }
    {
        AppSpec s;
        s.name = "vips";
        s.iters = 40;
        s.computePerIter = 1500;
        s.lockPoolSize = 8;
        s.lockOpsPerIter = 1;
        s.lockAffinity = 0.3;
        add(s);
    }
    {
        AppSpec s;
        s.name = "x264";
        s.pipeline = true;
        s.pipelineItems = 35;
        s.computePerIter = 800;
        add(s);
    }

    return v;
}

/**
 * Server workloads: the same srv::ServerHarness under four
 * synchronization-pressure profiles. Service means are chosen so a
 * 16-core system saturates inside the bench's arrival-rate sweep.
 */
std::vector<AppSpec>
buildServerCatalog()
{
    std::vector<AppSpec> v;
    {
        AppSpec s;
        s.name = "server-poisson";
        s.server.enabled = true;
        s.server.mode = srv::ArrivalMode::Poisson;
        s.server.serviceDist = srv::ServiceDist::Exp;
        v.push_back(s);
    }
    {
        AppSpec s;
        s.name = "server-burst";
        s.server.enabled = true;
        s.server.mode = srv::ArrivalMode::Burst;
        s.server.serviceDist = srv::ServiceDist::Exp;
        v.push_back(s);
    }
    {
        // Heavy-tailed service times: the occasional 50x request
        // parks on a worker and everything behind it must be stolen.
        AppSpec s;
        s.name = "server-heavy";
        s.server.enabled = true;
        s.server.mode = srv::ArrivalMode::Poisson;
        s.server.serviceDist = srv::ServiceDist::Pareto;
        v.push_back(s);
    }
    {
        AppSpec s;
        s.name = "taskqueue";
        s.server.enabled = true;
        s.server.mode = srv::ArrivalMode::Closed;
        s.server.serviceDist = srv::ServiceDist::Exp;
        v.push_back(s);
    }
    return v;
}

} // namespace

const std::vector<AppSpec> &
appCatalog()
{
    static const std::vector<AppSpec> catalog = buildCatalog();
    return catalog;
}

const std::vector<AppSpec> &
serverCatalog()
{
    static const std::vector<AppSpec> catalog = buildServerCatalog();
    return catalog;
}

const AppSpec *
findApp(const std::string &name)
{
    for (const AppSpec &s : appCatalog())
        if (s.name == name)
            return &s;
    for (const AppSpec &s : serverCatalog())
        if (s.name == name)
            return &s;
    return nullptr;
}

const AppSpec &
appByName(const std::string &name)
{
    if (const AppSpec *s = findApp(name))
        return *s;
    fatal("unknown application '%s'", name.c_str());
}

const std::vector<std::string> &
headlineApps()
{
    static const std::vector<std::string> apps = {
        "radiosity", "raytrace",     "water-sp",     "ocean",
        "ocean-nc",  "cholesky",     "fluidanimate", "streamcluster",
    };
    return apps;
}

} // namespace workload
} // namespace misar
