/**
 * @file
 * Synthetic application workloads.
 *
 * Each Splash-2 / PARSEC benchmark is modeled by its synchronization
 * signature: how many locks it uses, how they map to threads, how
 * contended they are, how often barriers fire, whether it runs a
 * condition-variable pipeline, and how much compute sits between
 * synchronization operations. See DESIGN.md §3 for the substitution
 * rationale.
 */

#ifndef MISAR_WORKLOAD_SYNTHETIC_APP_HH
#define MISAR_WORKLOAD_SYNTHETIC_APP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/thread_api.hh"
#include "srv/server_app.hh"
#include "sync/sync_lib.hh"

namespace misar {
namespace workload {

/** Synchronization-signature parameters of one application. */
struct AppSpec
{
    std::string name;

    /** Per-thread outer iterations ("time steps" / "work units"). */
    unsigned iters = 50;

    /** Compute cycles per iteration outside critical sections. */
    Tick computePerIter = 400;

    /** Random shared-array accesses per iteration (cache traffic). */
    unsigned sharedMemOps = 2;

    // --- Locks ---
    /** Distinct lock addresses (0 disables lock activity). */
    unsigned lockPoolSize = 0;
    /** Lock acquire/release pairs per iteration. */
    unsigned lockOpsPerIter = 0;
    /**
     * Probability [0,1] that a thread picks a lock from its own
     * partition of the pool (same-thread reacquisition, the
     * fluidanimate pattern) instead of a random one (the radiosity
     * pattern).
     */
    double lockAffinity = 0.0;
    /** Cycles spent inside each critical section. */
    Tick csLen = 40;
    /** Additionally contend one global hot lock every k iterations
     *  (0 = never; the raytrace work-counter pattern). */
    unsigned hotLockEvery = 0;

    // --- Barriers ---
    /** Hit the all-thread barrier every k iterations (0 = never). */
    unsigned barrierEvery = 0;

    /**
     * One-shot initialization locks acquired per thread before the
     * main loop (distinct addresses, never reused). Real programs
     * initialize and briefly lock many structures at startup; without
     * the OMU those addresses permanently occupy MSA entries
     * (the Figure 7 effect).
     */
    unsigned initLocksPerThread = 2;

    // --- Condition-variable pipeline ---
    /** Run producer/consumer pairs over a condvar mailbox. */
    bool pipeline = false;

    /** Items each producer pushes when pipeline is enabled. */
    unsigned pipelineItems = 30;

    // --- Task server ---
    /**
     * When server.enabled, the app is a task server (open- or
     * closed-loop) and runs through srv::ServerHarness instead of
     * appThread — harness call sites branch on this.
     */
    srv::ServerSpec server;
};

/** Address-space layout of one application instance. */
struct AppLayout
{
    Addr lockBase = 0x10000000;
    Addr barrierAddr = 0x20000000;
    Addr sharedBase = 0x30000000;
    unsigned sharedBlocks = 4096;
    Addr pipeBase = 0x50000000;
    /**
     * First core of this app instance. Thread ranks are core id
     * minus this, so several applications can co-run on disjoint
     * core ranges (shift the address bases per instance too).
     */
    CoreId firstCore = 0;

    /** Shift every base by @p app_index address-space slots. */
    void
    relocate(unsigned app_index)
    {
        const Addr shift = static_cast<Addr>(app_index) * 0x100000000ULL;
        lockBase += shift;
        barrierAddr += shift;
        sharedBase += shift;
        pipeBase += shift;
    }
};

/**
 * Build the thread body for @p core of an app instance.
 * All threads of the app must use the same @p lib and @p layout.
 */
cpu::ThreadTask appThread(cpu::ThreadApi t, const AppSpec &spec,
                          const AppLayout &layout, sync::SyncLib *lib,
                          unsigned num_threads, std::uint64_t seed);

} // namespace workload
} // namespace misar

#endif // MISAR_WORKLOAD_SYNTHETIC_APP_HH
