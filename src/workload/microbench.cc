#include "workload/microbench.hh"

#include <vector>

#include "sim/rng.hh"
#include "sync/sync_lib.hh"
#include "system/system.hh"

namespace misar {
namespace workload {

using cpu::ThreadApi;
using cpu::ThreadTask;
using sync::SyncLib;

namespace {

constexpr int warmup = 3;
constexpr int measured = 20;
constexpr Addr lockBase = 0x10000000;
constexpr Addr theLock = 0x11000000;
constexpr Addr theBarrier = 0x12000000;
constexpr Addr theMutex = 0x13000000;
constexpr Addr theCond = 0x13000040;
constexpr Addr theFlag = 0x13000080;

struct Accum
{
    double sum = 0;
    std::uint64_t n = 0;

    void
    sample(double v)
    {
        sum += v;
        ++n;
    }

    double mean() const { return n ? sum / n : 0; }
};

/** 1. Uncontended acquire: every core has a private lock. */
ThreadTask
noContentionBody(ThreadApi t, SyncLib *lib, Accum *acc, unsigned cores)
{
    // Stride by (cores+1) blocks so the private locks spread across
    // home tiles instead of aliasing onto one MSA slice.
    const Addr lock =
        lockBase + static_cast<Addr>(t.id()) * (cores + 1) * blockBytes;
    for (int i = 0; i < warmup + measured; ++i) {
        Tick t0 = t.now();
        co_await lib->mutexLock(t, lock);
        if (i >= warmup)
            acc->sample(static_cast<double>(t.now() - t0));
        co_await t.compute(50);
        co_await lib->mutexUnlock(t, lock);
        co_await t.compute(50);
    }
}

/** 2. High contention: all cores hammer one lock. */
struct HandoffState
{
    Tick lastUnlockEnter = maxTick;
    Accum acc;
};

ThreadTask
handoffBody(ThreadApi t, SyncLib *lib, HandoffState *st, int iters)
{
    for (int i = 0; i < iters; ++i) {
        co_await lib->mutexLock(t, theLock);
        if (st->lastUnlockEnter != maxTick)
            st->acc.sample(static_cast<double>(t.now() -
                                               st->lastUnlockEnter));
        co_await t.compute(50);
        st->lastUnlockEnter = t.now();
        co_await lib->mutexUnlock(t, theLock);
        co_await t.compute(20);
    }
}

/** 3. Barrier: last-arrival entry to last exit per episode. */
struct BarrierState
{
    std::vector<Tick> lastArrive, lastExit;
    std::vector<unsigned> exited;
    Accum acc;
};

ThreadTask
barrierBody(ThreadApi t, SyncLib *lib, BarrierState *st, unsigned goal,
            int episodes, std::uint64_t seed)
{
    Rng rng(seed + t.id());
    for (int e = 0; e < episodes; ++e) {
        co_await t.compute(100 + rng.range(400));
        Tick arrive = t.now();
        st->lastArrive[e] = std::max(st->lastArrive[e], arrive);
        co_await lib->barrierWait(t, theBarrier, goal);
        st->lastExit[e] = std::max(st->lastExit[e], t.now());
        if (++st->exited[e] == goal && e >= warmup)
            st->acc.sample(static_cast<double>(st->lastExit[e] -
                                               st->lastArrive[e]));
    }
}

/** 4./5. Condition variables. */
struct CondState
{
    Tick signalEnter = 0;
    unsigned woken = 0;
    Accum acc;
};

ThreadTask
condWaiterBody(ThreadApi t, SyncLib *lib, CondState *st, unsigned waiters,
               unsigned goal, int episodes, bool broadcast)
{
    for (int e = 1; e <= episodes; ++e) {
        co_await lib->mutexLock(t, theMutex);
        for (;;) {
            std::uint64_t v = co_await t.read(theFlag);
            if (static_cast<int>(v) >= e)
                break;
            co_await lib->condWait(t, theCond, theMutex);
        }
        // Count this waiter as released for episode e.
        if (++st->woken == waiters) {
            if (e > warmup)
                st->acc.sample(static_cast<double>(t.now() -
                                                   st->signalEnter));
            st->woken = 0;
        } else if (!broadcast && e > warmup) {
            // Signal wakes exactly one; sample per wake.
            st->acc.sample(static_cast<double>(t.now() - st->signalEnter));
            st->woken = 0;
        }
        co_await lib->mutexUnlock(t, theMutex);
        // Re-align before the next episode.
        co_await lib->barrierWait(t, theBarrier, goal);
    }
}

ThreadTask
condSignalerBody(ThreadApi t, SyncLib *lib, CondState *st, unsigned goal,
                 int episodes, bool broadcast)
{
    for (int e = 1; e <= episodes; ++e) {
        co_await t.compute(800); // let waiters settle onto the cond var
        co_await lib->mutexLock(t, theMutex);
        co_await t.write(theFlag, e);
        co_await lib->mutexUnlock(t, theMutex);
        st->signalEnter = t.now();
        if (broadcast)
            co_await lib->condBroadcast(t, theCond);
        else
            co_await lib->condSignal(t, theCond);
        co_await lib->barrierWait(t, theBarrier, goal);
    }
}

} // namespace

RawLatencies
measureRawLatency(unsigned cores, sys::PaperConfig pc)
{
    return measureRawLatencyFlavor(cores, sys::flavorFor(pc),
                                   sys::configFor(pc, cores).msa.mode,
                                   sys::configFor(pc, cores).msa.msaEntries);
}

RawLatencies
measureRawLatencyFlavor(unsigned cores, SyncLib::Flavor flavor,
                        AccelMode mode, unsigned msa_entries)
{
    RawLatencies out;
    auto make_cfg = [&] { return makeConfig(cores, mode, msa_entries); };

    // 1. Uncontended lock acquire.
    {
        sys::System s(make_cfg());
        SyncLib lib(flavor, cores);
        Accum acc;
        for (CoreId c = 0; c < cores; ++c)
            s.start(c, noContentionBody(s.api(c), &lib, &acc, cores));
        s.run(200000000ULL);
        out.lockAcquire = acc.mean();
    }

    // 2. Contended lock handoff.
    {
        sys::System s(make_cfg());
        SyncLib lib(flavor, cores);
        HandoffState st;
        for (CoreId c = 0; c < cores; ++c)
            s.start(c, handoffBody(s.api(c), &lib, &st, 8));
        s.run(200000000ULL);
        out.lockHandoff = st.acc.mean();
    }

    // 3. Barrier handoff.
    {
        sys::System s(make_cfg());
        SyncLib lib(flavor, cores);
        BarrierState st;
        const int episodes = warmup + measured;
        st.lastArrive.assign(episodes, 0);
        st.lastExit.assign(episodes, 0);
        st.exited.assign(episodes, 0);
        for (CoreId c = 0; c < cores; ++c)
            s.start(c, barrierBody(s.api(c), &lib, &st, cores, episodes,
                                   7));
        s.run(200000000ULL);
        out.barrierHandoff = st.acc.mean();
    }

    // 4. Cond signal: one waiter, one signaler.
    {
        sys::System s(make_cfg());
        SyncLib lib(flavor, cores);
        CondState st;
        const int episodes = warmup + measured;
        s.start(0, condWaiterBody(s.api(0), &lib, &st, 1, 2, episodes,
                                  false));
        s.start(1, condSignalerBody(s.api(1), &lib, &st, 2, episodes,
                                    false));
        s.run(200000000ULL);
        out.condSignal = st.acc.mean();
    }

    // 5. Cond broadcast: all-but-one waiters.
    {
        sys::System s(make_cfg());
        SyncLib lib(flavor, cores);
        CondState st;
        const int episodes = warmup + measured;
        const unsigned waiters = cores - 1;
        for (CoreId c = 0; c < waiters; ++c)
            s.start(c, condWaiterBody(s.api(c), &lib, &st, waiters, cores,
                                      episodes, true));
        s.start(waiters, condSignalerBody(s.api(waiters), &lib, &st, cores,
                                          episodes, true));
        s.run(500000000ULL);
        out.condBroadcast = st.acc.mean();
    }

    return out;
}

} // namespace workload
} // namespace misar
