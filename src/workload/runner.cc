#include "workload/runner.hh"

#include "sim/logging.hh"
#include "system/system.hh"
#include "workload/app_catalog.hh"

namespace misar {
namespace workload {

RunResult
runAppWithConfig(const AppSpec &spec, const SystemConfig &cfg,
                 sync::SyncLib::Flavor flavor, std::uint64_t seed)
{
    sys::System s(cfg);
    sync::SyncLib lib(flavor, cfg.numCores);
    AppLayout layout;

    for (CoreId c = 0; c < cfg.numCores; ++c)
        s.start(c, appThread(s.api(c), spec, layout, &lib, cfg.numCores,
                             seed));

    RunResult r;
    r.outcome = s.runDetailed(2000000000ULL);
    r.finished = r.outcome == sys::RunOutcome::Finished;
    if (r.outcome == sys::RunOutcome::Deadlock)
        warn("app %s DEADLOCKED on %s (see stall report above)",
             spec.name.c_str(), cfg.accelName().c_str());
    else if (r.outcome == sys::RunOutcome::LimitReached)
        warn("app %s hit the tick budget on %s (livelock or slow run)",
             spec.name.c_str(), cfg.accelName().c_str());
    r.makespan = s.makespan();
    r.hwCoverage = s.hwCoverage();
    r.hwOps = s.stats().counter("sync.hwOps").value();
    r.swOps = s.stats().counter("sync.swOps").value();
    r.silentLocks = s.stats().counter("sync.silentLocks").value();
    return r;
}

RunResult
runApp(const AppSpec &spec, unsigned cores, sys::PaperConfig pc,
       std::uint64_t seed)
{
    return runAppWithConfig(spec, sys::configFor(pc, cores),
                            sys::flavorFor(pc), seed);
}

} // namespace workload
} // namespace misar
