#include "workload/runner.hh"

#include <fstream>
#include <memory>

#include "obs/run_report.hh"
#include "sim/logging.hh"
#include "system/system.hh"
#include "workload/app_catalog.hh"

namespace misar {
namespace workload {

namespace {

/** Pre-run metadata for the report (normal and crash paths). */
obs::RunMeta
buildMeta(const AppSpec &spec, const SystemConfig &cfg,
          const std::string &preset, sync::SyncLib::Flavor flavor,
          std::uint64_t seed)
{
    obs::RunMeta meta;
    meta.app = spec.name;
    meta.preset = preset;
    meta.accel = cfg.accelName();
    meta.flavor = sync::SyncLib::flavorName(flavor);
    meta.cores = cfg.numCores;
    meta.smtWays = cfg.smtWays;
    meta.msaEntries = cfg.msa.msaEntries;
    meta.omuCounters = cfg.msa.omuCounters;
    meta.omuEnabled = cfg.msa.omuEnabled;
    meta.hwSyncBitOpt = cfg.msa.hwSyncBitOpt;
    meta.seed = seed;
    return meta;
}

/** Sum of the per-slice offline-shed abort counters. */
std::uint64_t
offlineShedCount(const StatRegistry &st)
{
    return st.sumCountersSuffix(".msa.offlineLockAborts") +
           st.sumCountersSuffix(".msa.offlineRwAborts") +
           st.sumCountersSuffix(".msa.offlineBarrierAborts") +
           st.sumCountersSuffix(".msa.offlineCondAborts");
}

/** Write any cfg.obs-requested output files for a finished run. */
void
writeObsOutputs(sys::System &s, const AppSpec &spec,
                const std::string &preset, sync::SyncLib::Flavor flavor,
                std::uint64_t seed, const RunResult &r,
                const srv::ServerStats *server)
{
    const ObsConfig &o = s.config().obs;
    if (s.sampler())
        s.sampler()->sampleNow(); // close the time series at quiesce
    if (s.monitor())
        s.monitor()->finalize(s.eventQueue().now());

    if (!o.traceOutPath.empty()) {
        std::ofstream f(o.traceOutPath);
        if (!f) {
            warn("cannot open trace file %s", o.traceOutPath.c_str());
        } else {
            s.writeTrace(f);
        }
    }
    if (!o.sampleCsvPath.empty() && s.sampler()) {
        std::ofstream f(o.sampleCsvPath);
        if (!f) {
            warn("cannot open sample file %s", o.sampleCsvPath.c_str());
        } else {
            s.sampler()->writeCsv(f);
        }
    }
    if (!o.heatmapJsonPath.empty() && s.monitor()) {
        std::ofstream f(o.heatmapJsonPath);
        if (!f) {
            warn("cannot open heatmap file %s", o.heatmapJsonPath.c_str());
        } else {
            s.monitor()->writeJson(f);
        }
    }
    if (!o.statsJsonPath.empty()) {
        obs::RunMeta meta = buildMeta(spec, s.config(), preset, flavor,
                                      seed);
        meta.outcome = sys::runOutcomeName(r.outcome);
        meta.makespan = r.makespan;
        meta.hwCoverage = r.hwCoverage;
        // Durable (fsync'd) so a panic in a later run of the same
        // process — or the orchestrator killing us right after the
        // run — cannot lose the completed job's report.
        obs::writeRunReportDurable(o.statsJsonPath, meta, s.stats(),
                                   s.syncProfiler(), o.profileTopN,
                                   s.sampler(), &s.eventQueue(),
                                   s.monitor(), server);
    }
}

} // namespace

RunResult
runAppWithConfig(const AppSpec &spec, const SystemConfig &cfg,
                 sync::SyncLib::Flavor flavor, std::uint64_t seed,
                 const std::string &preset, const RunOptions &opts)
{
    sys::System s(cfg);
    sync::SyncLib lib(flavor, cfg.numCores);
    if (cfg.resil.coreFaultsEnabled())
        lib.setDeadQuery(
            [&s](CoreId c) { return s.isDeclaredDead(c); });
    AppLayout layout;

    // Server workloads run through the srv harness (which owns the
    // request schedule and per-core recording); everything else is a
    // synthetic-signature appThread.
    std::unique_ptr<srv::ServerHarness> harness;
    if (spec.server.enabled)
        harness = std::make_unique<srv::ServerHarness>(
            spec.server, cfg.numCores, seed);
    for (CoreId c = 0; c < cfg.numCores; ++c)
        s.start(c, harness
                       ? harness->thread(s.api(c), &lib)
                       : appThread(s.api(c), spec, layout, &lib,
                                   cfg.numCores, seed));

    // If the run dies in panic()/fatal() mid-flight, still flush a
    // report whose outcome says so (campaign jobs must always leave
    // an ingestible artifact).
    std::unique_ptr<obs::CrashReportGuard> guard;
    if (!cfg.obs.statsJsonPath.empty())
        guard = std::make_unique<obs::CrashReportGuard>(
            cfg.obs.statsJsonPath, s,
            buildMeta(spec, cfg, preset, flavor, seed),
            cfg.obs.profileTopN);

    RunResult r;
    r.outcome = s.runDetailed(opts.tickLimit);
    r.finished = r.outcome == sys::RunOutcome::Finished;
    if (r.outcome == sys::RunOutcome::Deadlock)
        warn("app %s DEADLOCKED on %s (see stall report above)",
             spec.name.c_str(), cfg.accelName().c_str());
    else if (r.outcome == sys::RunOutcome::LimitReached)
        warn("app %s hit the tick budget on %s (livelock or slow run)",
             spec.name.c_str(), cfg.accelName().c_str());
    r.makespan = s.makespan();
    r.hwCoverage = s.hwCoverage();
    r.hwOps = s.stats().counter("sync.hwOps").value();
    r.swOps = s.stats().counter("sync.swOps").value();
    r.silentLocks = s.stats().counter("sync.silentLocks").value();
    r.timeouts = s.stats().counterValue("resil.timeouts");
    r.retries = s.stats().counterValue("resil.retries");
    r.abortedOps = s.stats().counterValue("sync.abortedOps");
    r.offlineSheds = offlineShedCount(s.stats());
    r.crossedSnoops = s.stats().sumCountersSuffix(".l1.crossedSnoops");
    r.nocRetransmits = s.stats().counterValue("noc.rel.retransmits");
    r.nocDedups = s.stats().counterValue("noc.rel.dedups");
    r.detourHops = s.stats().counterValue("noc.detourHops");
    r.deadLinks = s.stats().counterValue("noc.deadLinks");
    r.partitionSheds = s.stats().counterValue("resil.partitionSheds");
    r.coreKills = s.stats().counterValue("resil.coreKills");
    r.lockRevocations =
        s.stats().sumCountersSuffix(".msa.lockRevocations");
    r.barrierReconfigs =
        s.stats().sumCountersSuffix(".msa.barrierReconfigs");
    r.fencedReleases =
        s.stats().sumCountersSuffix(".msa.fencedReleases");
    r.rehomedVars = s.stats().sumCountersSuffix(".msa.rehomedVars");
    if (opts.captureCounters)
        for (const std::string &name : *opts.captureCounters)
            r.captured[name] = s.stats().counterValue(name);
    if (s.syncProfiler())
        r.syncWait = s.syncProfiler()->overallWait();
    if (harness) {
        r.hasServer = true;
        r.server = harness->finalize(r.makespan);
    }

    writeObsOutputs(s, spec, preset, flavor, seed, r,
                    r.hasServer ? &r.server : nullptr);
    if (const obs::ResourceMonitor *m = s.monitor()) {
        // After writeObsOutputs: finalize() has closed open episodes.
        r.hasPressure = true;
        r.overflowEvents = m->overflowEvents();
        r.omuEpisodes = m->omuEpisodes().size();
        r.omuEpisodeTicks = m->omuEpisodeTicks();
        r.omuHighWater = m->omuHighWater();
        r.maxSliceOccupancy = m->maxOfKind("msaOccupancy");
        r.maxNiQueueDepth = m->maxOfKind("niQueue");
    }
    if (guard)
        guard->disarm();
    return r;
}

RunResult
runAppWithConfig(const AppSpec &spec, const SystemConfig &cfg,
                 sync::SyncLib::Flavor flavor, std::uint64_t seed,
                 const std::string &preset)
{
    return runAppWithConfig(spec, cfg, flavor, seed, preset,
                            RunOptions{});
}

RunResult
runApp(const AppSpec &spec, unsigned cores, sys::PaperConfig pc,
       std::uint64_t seed)
{
    return runAppWithConfig(spec, sys::configFor(pc, cores),
                            sys::flavorFor(pc), seed,
                            sys::paperConfigName(pc));
}

} // namespace workload
} // namespace misar
