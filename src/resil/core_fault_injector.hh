/**
 * @file
 * Seeded core (participant) fault injector.
 *
 * Scheduled from ResilConfig's coreKills, it halts each victim core
 * dead at its configured tick — mid-critical-section, mid-barrier,
 * wherever the thread happens to be. The kill itself is silent: the
 * corpse stops executing, answers no probe, and never reaches its
 * join. coreDetectDelay ticks later the injector models the failure
 * detector's verdict and invokes the declaration callback, which the
 * system fans out to every MSA slice (lock revocation under epoch
 * fencing, barrier membership reconfiguration) and to the software
 * sync library's dead-participant registry.
 *
 * Recovery of the corpse's *held* locks does not wait for the
 * declaration: the MSA lease machinery (resil.leaseTicks) notices the
 * missed renewal on its own. The declaration handles what leases
 * cannot see — barrier arrivals that will never come.
 */

#ifndef MISAR_RESIL_CORE_FAULT_INJECTOR_HH
#define MISAR_RESIL_CORE_FAULT_INJECTOR_HH

#include <functional>

#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace misar {
namespace resil {

/** Halts cores on schedule and drives the dead-core declarations. */
class CoreFaultInjector
{
  public:
    /** Called at the kill tick: halt the core and its client hub
     *  state immediately (the silent part of the failure). */
    using KillFn = std::function<void(unsigned core)>;
    /** Called coreDetectDelay later: the failure detector declares
     *  the core dead; sync state reconfigures around the corpse. */
    using DeclareFn = std::function<void(unsigned core)>;

    CoreFaultInjector(EventQueue &eq, const ResilConfig &cfg,
                      StatRegistry &stats);

    void setKillFn(KillFn fn) { killFn = std::move(fn); }
    void setDeclareFn(DeclareFn fn) { declareFn = std::move(fn); }

    /** Schedule the configured kills and their declarations. */
    void start();

  private:
    EventQueue &eq;
    const ResilConfig cfg;
    StatRegistry &stats;
    KillFn killFn;
    DeclareFn declareFn;
};

} // namespace resil
} // namespace misar

#endif // MISAR_RESIL_CORE_FAULT_INJECTOR_HH
