#include "resil/watchdog.hh"

#include "sim/logging.hh"

namespace misar {
namespace resil {

Watchdog::Watchdog(EventQueue &eq, Tick interval, StatRegistry &stats,
                   unsigned numCores)
    : eq(eq), interval(interval), stats(stats),
      cells(numCores ? numCores : 1)
{
    onStall = [](const std::string &rep) {
        warn("%s", rep.c_str());
        fatal("liveness watchdog: no thread made forward progress for "
              "a full window; see the waits-for report above");
    };
}

void
Watchdog::start()
{
    if (scheduled || interval == 0)
        return;
    scheduled = true;
    eq.schedule(interval, [this] { check(); });
}

void
Watchdog::check()
{
    scheduled = false;
    if (allDone && allDone())
        return;
    const std::uint64_t progress = progressSum();
    if (progress == lastSeen && !firedStall) {
        // No thread progressed — but traffic still moving through a
        // degraded mesh (detours, retransmissions) means the system
        // is slow, not dead. Grace the window; the fault recovery
        // paths are all bounded, so a truly dead system quiets down
        // and the next window fires.
        if (auxProgress) {
            const std::uint64_t aux = auxProgress();
            if (aux != lastAux) {
                lastAux = aux;
                stats.counter("resil.watchdogNocGrace").inc();
                scheduled = true;
                eq.schedule(interval, [this] { check(); });
                return;
            }
        }
        firedStall = true;
        stats.counter("resil.watchdogStalls").inc();
        onStall(report ? report() : std::string("(no report available)"));
        // If the handler returned (tests), stop rescheduling — one
        // report per stall is enough.
        return;
    }
    lastSeen = progress;
    if (auxProgress)
        lastAux = auxProgress();
    scheduled = true;
    eq.schedule(interval, [this] { check(); });
}

} // namespace resil
} // namespace misar
