#include "resil/noc_fault_injector.hh"

#include <algorithm>

#include "noc/routing.hh"
#include "sim/logging.hh"

namespace misar {
namespace resil {

NocFaultInjector::NocFaultInjector(EventQueue &eq, const ResilConfig &cfg,
                                   noc::Mesh &mesh, StatRegistry &stats)
    : eq(eq), cfg(cfg), mesh(mesh), stats(stats),
      stranded(mesh.numTiles(), false)
{
    // Private streams decorrelated from the MSA message injector
    // (which seeds its RNG with faultSeed directly), one per router.
    routerRngs.reserve(mesh.numTiles());
    for (unsigned r = 0; r < mesh.numTiles(); ++r)
        routerRngs.emplace_back(cfg.faultSeed ^ 0x9e3779b97f4a7c15ULL ^
                                (static_cast<std::uint64_t>(r + 1) <<
                                 32));
}

void
NocFaultInjector::start()
{
    mesh.armFaults();

    if (cfg.flitCorruptProb > 0.0) {
        const double p = cfg.flitCorruptProb;
        mesh.setCorruptFn([this, p](unsigned router) {
            return routerRngs[router].uniform() < p;
        });
    }

    const Tick now = eq.now();
    auto delay_until = [now](Tick at) { return at > now ? at - now : 0; };

    for (const LinkKill &lk : cfg.linkKills) {
        eq.schedule(delay_until(lk.atTick), [this, lk] {
            warn("NoC fault: link %u-%u dead at tick %llu", lk.a, lk.b,
                 static_cast<unsigned long long>(eq.now()));
            mesh.markLinkDead(lk.a, lk.b);
            eq.schedule(cfg.nocDetectDelay, [this] { reconfigure(); });
        });
    }
    for (const RouterKill &rk : cfg.routerKills) {
        eq.schedule(delay_until(rk.atTick), [this, rk] {
            warn("NoC fault: router %u dead at tick %llu", rk.router,
                 static_cast<unsigned long long>(eq.now()));
            mesh.markRouterDead(rk.router);
            eq.schedule(cfg.nocDetectDelay, [this] { reconfigure(); });
        });
    }
}

void
NocFaultInjector::reconfigure()
{
    const noc::Topology topo = mesh.liveTopology();
    mesh.installTables(noc::computeUpDownTables(topo));

    // The main component is the largest (lowest component id on a
    // tie, since components are identified by their lowest member).
    const std::vector<int> comp = noc::components(topo);
    std::vector<unsigned> count(mesh.numTiles(), 0);
    for (int c : comp) {
        if (c >= 0)
            ++count[static_cast<unsigned>(c)];
    }
    const unsigned main_comp = static_cast<unsigned>(
        std::max_element(count.begin(), count.end()) - count.begin());

    for (unsigned t = 0; t < mesh.numTiles(); ++t) {
        const bool cut =
            comp[t] != static_cast<int>(main_comp);
        if (!cut || stranded[t])
            continue;
        stranded[t] = true;
        stats.counter("resil.strandedTiles").inc();
        warn("NoC fault: tile %u unreachable from the main partition",
             t);
        if (partitionFn)
            partitionFn(t);
    }
}

} // namespace resil
} // namespace misar
