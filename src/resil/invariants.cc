#include "resil/invariants.hh"

#include <sstream>

#include "sim/logging.hh"
#include "system/system.hh"

namespace misar {
namespace resil {

namespace {

std::string
hex(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

bool
hasMsa(const SystemConfig &cfg)
{
    return cfg.msa.mode == AccelMode::MsaOmu ||
           cfg.msa.mode == AccelMode::MsaInfinite;
}

} // namespace

InvariantChecker::InvariantChecker(sys::System &system, Tick interval,
                                   StatRegistry &stats)
    : sys(system), interval(interval), stats(stats)
{
    onViolation = [](const std::vector<std::string> &v) {
        for (const auto &s : v)
            warn("invariant violation: %s", s.c_str());
        fatal("%zu invariant violation(s)", v.size());
    };
}

void
InvariantChecker::start()
{
    if (scheduled || interval == 0)
        return;
    scheduled = true;
    sys.eventQueue().schedule(interval, [this] { sweep(); });
}

void
InvariantChecker::report(const std::vector<std::string> &v)
{
    if (v.empty())
        return;
    stats.counter("resil.invariantViolations").inc(v.size());
    onViolation(v);
}

void
InvariantChecker::sweep()
{
    scheduled = false;
    if (sys.allFinished())
        return; // the quiesce pass takes over from here

    std::vector<std::string> v;
    structural(v);

    // Cross-component findings race benignly against in-flight
    // messages (e.g. a grant whose response is still on the NoC), so
    // only report one seen in two consecutive sweeps.
    std::vector<std::string> c;
    cross(c);
    std::set<std::string> now(c.begin(), c.end());
    for (const auto &s : now)
        if (lastCross.count(s))
            v.push_back(s);
    lastCross = std::move(now);

    if (!v.empty()) {
        report(v);
        return; // a (non-fatal) handler saw it; stop sweeping
    }
    scheduled = true;
    sys.eventQueue().schedule(interval, [this] { sweep(); });
}

std::vector<std::string>
InvariantChecker::checkNow(bool at_quiesce)
{
    std::vector<std::string> v;
    structural(v);
    cross(v);
    if (at_quiesce)
        quiesce(v);
    return v;
}

void
InvariantChecker::atQuiesce()
{
    report(checkNow(true));
}

void
InvariantChecker::structural(std::vector<std::string> &out) const
{
    const SystemConfig &cfg = sys.config();
    if (!hasMsa(cfg))
        return;
    const unsigned threads = cfg.numThreads();

    for (CoreId t = 0; t < cfg.numCores; ++t) {
        msa::MsaSlice &slice = sys.msaSlice(t);
        std::string where = "slice " + std::to_string(t) + ": ";
        slice.forEachEntry([&](const msa::MsaEntry &e) {
            std::string id = where + hex(e.addr) + ": ";
            if (e.addr == invalidAddr)
                out.push_back(where + "valid entry with invalid addr");
            if (e.tombstone) {
                if (cfg.msa.omuEnabled)
                    out.push_back(id + "tombstone with OMU enabled");
                return; // parked forever; no further state to check
            }
            switch (e.type) {
              case msa::SyncType::Lock:
                if (e.owner != invalidCore && !e.hwQueue.test(e.owner))
                    out.push_back(id + "lock owner " +
                                  std::to_string(e.owner) +
                                  " missing from HWQueue");
                if (e.owner == invalidCore && e.hwQueue.any())
                    out.push_back(id + "ownerless lock with waiters");
                break;
              case msa::SyncType::Barrier:
                if (e.goal == 0 || e.goal > threads)
                    out.push_back(id + "barrier goal " +
                                  std::to_string(e.goal) +
                                  " out of range");
                else if (e.hwQueue.count() >= e.goal)
                    out.push_back(id + "barrier arrivals not below "
                                  "goal (missed release)");
                if (e.owner != invalidCore)
                    out.push_back(id + "barrier with an owner");
                if (e.pinCount)
                    out.push_back(id + "pinned barrier");
                break;
              case msa::SyncType::RwLock:
                if (e.owner != invalidCore && e.readersHeld.any())
                    out.push_back(id + "RW writer and readers "
                                  "co-resident");
                if (e.owner != invalidCore && e.hwQueue.test(e.owner))
                    out.push_back(id + "RW writer still queued");
                if ((e.waitIsWriter & ~e.hwQueue).any())
                    out.push_back(id + "writer-waiter bit without a "
                                  "queued waiter");
                if ((e.readersHeld & e.hwQueue).any())
                    out.push_back(id + "RW holder also queued");
                if (e.pinCount)
                    out.push_back(id + "pinned RW lock");
                break;
              case msa::SyncType::Cond:
                if (e.lockAddr == invalidAddr)
                    out.push_back(id + "cond without an associated "
                                  "lock");
                if (e.owner != invalidCore)
                    out.push_back(id + "cond with an owner");
                if (e.pinCount)
                    out.push_back(id + "pinned cond");
                break;
            }
        });

        // OMU smoke bound: any counter beyond what the thread
        // population can plausibly account for (and not the sticky
        // saturation sentinel) indicates a leak.
        if (cfg.msa.omuEnabled) {
            msa::Omu &omu = slice.omu();
            const std::uint32_t bound = 8 * threads + 16;
            for (unsigned i = 0; i < omu.numCounters(); ++i) {
                std::uint32_t c = omu.countAt(i);
                if (c > bound && c != msa::Omu::saturatedValue)
                    out.push_back(where + "OMU counter " +
                                  std::to_string(i) +
                                  " implausibly large (" +
                                  std::to_string(c) + ")");
            }
        }
    }
}

void
InvariantChecker::cross(std::vector<std::string> &out) const
{
    const SystemConfig &cfg = sys.config();
    const msa::MsaClientHub *hub = sys.clientHub();
    if (!hasMsa(cfg) || !hub)
        return;

    // A killed core is excused from liveness cross-checks: its client
    // state was dropped by design, and the window between the kill
    // and the lease/declaration recovery legitimately shows slices
    // believing in a corpse. (Its *held* grants stay mirrored in
    // hwHeld, so holder checks still pass until revocation.)
    auto dead = [&](CoreId c) {
        return cfg.resil.coreFaultsEnabled() && hub->isDead(c);
    };
    // A hardware-held UNLOCK completes client-side immediately (the
    // hold is dropped, a fire-and-forget release message is still in
    // flight), so the home keeps recording the old owner for a few
    // NoC transit ticks. Excuse that window, bounded so a genuinely
    // lost release still trips the check.
    constexpr Tick releaseGrace = 20000;
    const Tick now = sys.eventQueue().now();
    auto release_in_flight = [&](CoreId c, Addr a) {
        const Tick sent = hub->releaseSentAt(c, a);
        return sent != 0 && now - sent < releaseGrace;
    };
    auto holder_live = [&](CoreId c, Addr a) {
        return dead(c) || hub->snapshot(c).active ||
               hub->holdsHw(c, a) || release_in_flight(c, a);
    };
    auto waiter_live = [&](CoreId c) {
        return dead(c) || hub->snapshot(c).active;
    };

    for (CoreId t = 0; t < cfg.numCores; ++t) {
        msa::MsaSlice &slice = sys.msaSlice(t);
        std::string where = "slice " + std::to_string(t) + ": ";
        slice.forEachEntry([&](const msa::MsaEntry &e) {
            if (e.tombstone || e.busy)
                return; // parked / mid-transaction
            std::string id = where + hex(e.addr) + ": ";
            if ((e.type == msa::SyncType::Lock ||
                 e.type == msa::SyncType::RwLock) &&
                e.owner != invalidCore &&
                !holder_live(e.owner, e.addr))
                out.push_back(id + "owner " + std::to_string(e.owner) +
                              " has no client-side hold or pending op");
            if (e.type == msa::SyncType::RwLock) {
                for (unsigned c = 0; c < cfg.numThreads(); ++c)
                    if (e.readersHeld.test(c) &&
                        !holder_live(c, e.addr))
                        out.push_back(id + "reader " +
                                      std::to_string(c) +
                                      " has no client-side hold or "
                                      "pending op");
            }
            for (unsigned c = 0; c < cfg.numThreads(); ++c) {
                if (!e.hwQueue.test(c) || c == e.owner)
                    continue;
                if (!waiter_live(c))
                    out.push_back(id + "queued waiter " +
                                  std::to_string(c) +
                                  " has no outstanding operation");
            }
        });
    }
}

void
InvariantChecker::quiesce(std::vector<std::string> &out) const
{
    const SystemConfig &cfg = sys.config();

    if (const msa::MsaClientHub *hub = sys.clientHub()) {
        for (CoreId c = 0; c < cfg.numThreads(); ++c)
            if (hub->snapshot(c).active)
                out.push_back("thread " + std::to_string(c) +
                              " still has an outstanding sync op at "
                              "quiesce");
    }

    if (hasMsa(cfg)) {
        const msa::MsaClientHub *hub = sys.clientHub();
        auto dead = [&](CoreId c) {
            return cfg.resil.coreFaultsEnabled() && hub &&
                   hub->isDead(c);
        };
        for (CoreId t = 0; t < cfg.numCores; ++t) {
            msa::MsaSlice &slice = sys.msaSlice(t);
            std::string where = "slice " + std::to_string(t) + ": ";
            slice.forEachEntry([&](const msa::MsaEntry &e) {
                if (e.tombstone)
                    return;
                std::string id = where + hex(e.addr) + ": ";
                if (e.busy)
                    out.push_back(id + "busy entry at quiesce");
                // Held locks may outlive the threads (a workload may
                // legitimately end while holding), but nobody *live*
                // can be left waiting. A dead core parked in a queue
                // (killed mid-wait on an entry that stayed busy
                // through its declaration) strands only itself.
                unsigned waiters = 0;
                for (CoreId c = 0; c < cfg.numThreads(); ++c)
                    if (e.hwQueue.test(c) && c != e.owner && !dead(c))
                        ++waiters;
                if (waiters)
                    out.push_back(id + std::to_string(waiters) +
                                  " stranded waiter(s) at quiesce");
                // Lock recovery contract: once the failure detector
                // has spoken, no grant may stay with the corpse past
                // quiesce — the lease/declaration path must have
                // revoked it and fenced its stale release.
                if ((e.type == msa::SyncType::Lock ||
                     e.type == msa::SyncType::RwLock) &&
                    e.owner != invalidCore && !e.busy &&
                    sys.isDeclaredDead(e.owner))
                    out.push_back(id + "owned by declared-dead "
                                  "thread " + std::to_string(e.owner) +
                                  " at quiesce (revocation missed)");
            });
            if (cfg.msa.omuEnabled && !cfg.resil.coreFaultsEnabled()) {
                // Skipped under core faults: a thread killed inside a
                // software episode never decrements its OMU slot, so
                // residue there is a fault consequence, not a leak.
                msa::Omu &omu = slice.omu();
                for (unsigned i = 0; i < omu.numCounters(); ++i) {
                    std::uint32_t c = omu.countAt(i);
                    if (c != 0 && c != msa::Omu::saturatedValue)
                        out.push_back(where + "OMU counter " +
                                      std::to_string(i) +
                                      " not drained at quiesce (" +
                                      std::to_string(c) + ")");
                }
            }
        }
    }

    // L1 <-> directory agreement (valid in any mode once quiesced).
    mem::MemSystem &ms = sys.mem();
    for (CoreId t = 0; t < cfg.numCores; ++t) {
        std::string where = "L1 " + std::to_string(t) + ": ";
        ms.l1(t).forEachLine([&](const mem::L1Cache::LineView &l) {
            std::string id = where + hex(l.block) + ": ";
            mem::HomeSlice &home = ms.homeOf(l.block);
            switch (l.state) {
              case mem::L1State::Exclusive:
              case mem::L1State::Modified:
                if (!home.isOwner(l.block, t)) {
                    std::string dir = "no directory entry";
                    home.forEachEntry(
                        [&](const mem::HomeSlice::DirView &d) {
                        if (d.block != l.block)
                            return;
                        dir = std::string("dir ") +
                              (d.exclusive ? "E" : d.shared ? "S"
                                                            : "I") +
                              " owner=" + std::to_string(d.owner) +
                              (d.busy ? " busy" : "");
                    });
                    out.push_back(id + "E/M line not exclusive in "
                                  "the directory (" + dir + ")");
                }
                break;
              case mem::L1State::Shared:
                if (!home.isSharer(l.block, t))
                    out.push_back(id + "Shared line missing from the "
                                  "sharer vector");
                break;
              case mem::L1State::Invalid:
                break;
            }
            if (l.hwSync && l.state != mem::L1State::Exclusive &&
                l.state != mem::L1State::Modified)
                out.push_back(id + "HWSync bit on a non-writable "
                              "line");
        });
    }
}

} // namespace resil
} // namespace misar
