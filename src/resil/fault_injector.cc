#include "resil/fault_injector.hh"

#include "msa/msa_msg.hh"

namespace misar {
namespace resil {

namespace {

/**
 * Faultable = transaction-tracked MSA traffic. The txn field is only
 * ever stamped by the client on transactional requests and echoed by
 * the slice on the matching final response; everything else (silent
 * ops, fire-and-forget unlocks, suspend handshakes, on-behalf
 * slice-to-slice traffic, FailNotice) carries txn == 0 and must be
 * delivered faithfully.
 */
bool
faultable(const std::shared_ptr<noc::Packet> &pkt)
{
    auto mm = std::dynamic_pointer_cast<msa::MsaMsg>(pkt);
    if (!mm)
        return false;
    return mm->txn != 0 && mm->op != msa::MsaOp::FailNotice;
}

} // namespace

FaultInjector::FaultInjector(EventQueue &eq, const ResilConfig &cfg,
                             unsigned numTiles, StatRegistry &stats,
                             ForwardFn forward, const TileRuntime *rt)
    : eq(eq), cfg(cfg), stats(stats), forward(std::move(forward)), rt(rt)
{
    rngs.reserve(numTiles);
    for (unsigned t = 0; t < numTiles; ++t)
        rngs.emplace_back(cfg.faultSeed ^
                          (0xda942042e4dd58b5ULL * (t + 1)));
}

bool
FaultInjector::intercept(const std::shared_ptr<noc::Packet> &pkt)
{
    const CoreId src = pkt->src();
    EventQueue &q = rt ? rt->eqFor(src, eq) : eq;
    if (q.now() < cfg.faultsFromTick || !faultable(pkt))
        return false;
    StatRegistry &st = rt ? rt->statsFor(src, stats) : stats;
    const double roll = rngs[src].uniform();
    if (roll < cfg.dropProb) {
        st.counter("resil.injectedDrops").inc();
        return true;
    }
    if (roll < cfg.dropProb + cfg.dupProb) {
        st.counter("resil.injectedDups").inc();
        forward(pkt);
        auto copy = std::make_shared<msa::MsaMsg>(
            *std::static_pointer_cast<msa::MsaMsg>(pkt));
        // Re-injection happens at the source tile, on its lane.
        q.schedule(cfg.delayTicks,
                   [f = forward, copy] { f(copy); });
        return true;
    }
    if (roll < cfg.dropProb + cfg.dupProb + cfg.delayProb) {
        st.counter("resil.injectedDelays").inc();
        q.schedule(cfg.delayTicks, [f = forward, pkt] { f(pkt); });
        return true;
    }
    return false;
}

} // namespace resil
} // namespace misar
