#include "resil/fault_injector.hh"

#include "msa/msa_msg.hh"

namespace misar {
namespace resil {

namespace {

/**
 * Faultable = transaction-tracked MSA traffic. The txn field is only
 * ever stamped by the client on transactional requests and echoed by
 * the slice on the matching final response; everything else (silent
 * ops, fire-and-forget unlocks, suspend handshakes, on-behalf
 * slice-to-slice traffic, FailNotice) carries txn == 0 and must be
 * delivered faithfully.
 */
bool
faultable(const std::shared_ptr<noc::Packet> &pkt)
{
    auto mm = std::dynamic_pointer_cast<msa::MsaMsg>(pkt);
    if (!mm)
        return false;
    return mm->txn != 0 && mm->op != msa::MsaOp::FailNotice;
}

} // namespace

FaultInjector::FaultInjector(EventQueue &eq, const ResilConfig &cfg,
                             StatRegistry &stats, ForwardFn forward)
    : eq(eq), cfg(cfg), stats(stats), forward(std::move(forward)),
      rng(cfg.faultSeed)
{}

bool
FaultInjector::intercept(const std::shared_ptr<noc::Packet> &pkt)
{
    if (eq.now() < cfg.faultsFromTick || !faultable(pkt))
        return false;
    const double roll = rng.uniform();
    if (roll < cfg.dropProb) {
        stats.counter("resil.injectedDrops").inc();
        return true;
    }
    if (roll < cfg.dropProb + cfg.dupProb) {
        stats.counter("resil.injectedDups").inc();
        forward(pkt);
        auto copy = std::make_shared<msa::MsaMsg>(
            *std::static_pointer_cast<msa::MsaMsg>(pkt));
        eq.schedule(cfg.delayTicks,
                    [f = forward, copy] { f(copy); });
        return true;
    }
    if (roll < cfg.dropProb + cfg.dupProb + cfg.delayProb) {
        stats.counter("resil.injectedDelays").inc();
        eq.schedule(cfg.delayTicks, [f = forward, pkt] { f(pkt); });
        return true;
    }
    return false;
}

} // namespace resil
} // namespace misar
