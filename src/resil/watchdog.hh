/**
 * @file
 * Liveness watchdog: detects no-forward-progress windows.
 *
 * Each core bumps its own progress cell every time a thread retires
 * a synchronization instruction or finishes (cells are per-core and
 * cache-line padded so tile lanes on different host threads never
 * write the same line). The watchdog sums the cells every `interval`
 * ticks; if a whole window passes with no progress while threads are
 * still running, it asks the system for a waits-for report (blocked
 * ops, entry ownership, cycles) and hands it to the stall handler —
 * by default warn + fatal(), overridable for tests and for the
 * deadlock path in System::runDetailed().
 */

#ifndef MISAR_RESIL_WATCHDOG_HH
#define MISAR_RESIL_WATCHDOG_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace misar {
namespace resil {

/** Periodic no-forward-progress detector. */
class Watchdog
{
  public:
    /** Builds the human-readable stall report. */
    using ReportFn = std::function<std::string()>;
    /** Invoked with the report when a stall is detected. */
    using StallFn = std::function<void(const std::string &)>;
    /** True once every thread has finished (stops the watchdog). */
    using DoneFn = std::function<bool()>;
    /**
     * Secondary progress signal (monotone counter). A window with no
     * thread progress but aux movement — NoC packets delivered,
     * retransmissions in flight — is granted grace instead of being
     * reported: detoured or retransmitted traffic is slow, not dead.
     */
    using AuxProgressFn = std::function<std::uint64_t()>;

    Watchdog(EventQueue &eq, Tick interval, StatRegistry &stats,
             unsigned numCores = 1);

    void setReportFn(ReportFn f) { report = std::move(f); }
    void setStallHandler(StallFn f) { onStall = std::move(f); }
    void setDoneFn(DoneFn f) { allDone = std::move(f); }
    void setAuxProgressFn(AuxProgressFn f) { auxProgress = std::move(f); }

    /** Arm the first window. */
    void start();

    /** Cell core @p c increments on every retired sync op / exit. */
    std::uint64_t *progressCell(CoreId c = 0) { return &cells[c].v; }

    /** Number of still-pending maintenance events (0 or 1); lets the
     *  system exclude watchdog ticks from deadlock detection. */
    unsigned pendingMaintenance() const { return scheduled ? 1u : 0u; }

    /** True once a stall has been reported. */
    bool stalled() const { return firedStall; }

  private:
    /** One per-core counter, padded to avoid false sharing. */
    struct alignas(64) Cell
    {
        std::uint64_t v = 0;
    };

    void check();

    /** Sum of every core's cell (read from the global lane only). */
    std::uint64_t
    progressSum() const
    {
        std::uint64_t s = 0;
        for (const Cell &c : cells)
            s += c.v;
        return s;
    }

    EventQueue &eq;
    Tick interval;
    StatRegistry &stats;
    ReportFn report;
    StallFn onStall;
    DoneFn allDone;
    AuxProgressFn auxProgress;

    std::vector<Cell> cells;
    std::uint64_t lastSeen = 0;
    std::uint64_t lastAux = 0;
    bool scheduled = false;
    bool firedStall = false;
};

} // namespace resil
} // namespace misar

#endif // MISAR_RESIL_WATCHDOG_HH
