/**
 * @file
 * Seeded NoC fault injector: topology kills and transient corruption.
 *
 * Scheduled from ResilConfig, it kills links and routers at their
 * configured ticks and, nocDetectDelay later, models the completion
 * of the reconfiguration broadcast: new up-down routing tables are
 * computed over the live topology and installed mesh-wide atomically
 * (see noc/routing.hh). Packets caught on the dead hardware in the
 * detection window are lost and recovered by the NI reliable-delivery
 * layer; tiles cut off from the main connected component are reported
 * up so the system can decommission their MSA slices.
 *
 * Transient faults are modelled as per-link packet corruption: an
 * independent seeded RNG stream rolls once per packet per link
 * traversal, and a corrupted packet is discarded whole (the
 * downstream CRC check fails), again recovered end-to-end.
 */

#ifndef MISAR_RESIL_NOC_FAULT_INJECTOR_HH
#define MISAR_RESIL_NOC_FAULT_INJECTOR_HH

#include <functional>
#include <vector>

#include "noc/mesh.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace misar {
namespace resil {

/** Kills NoC links/routers on schedule and drives reconfiguration. */
class NocFaultInjector
{
  public:
    /** Called once per tile newly cut off from the main component. */
    using PartitionFn = std::function<void(unsigned tile)>;

    NocFaultInjector(EventQueue &eq, const ResilConfig &cfg,
                     noc::Mesh &mesh, StatRegistry &stats);

    void setPartitionFn(PartitionFn fn) { partitionFn = std::move(fn); }

    /** Arm the mesh fault paths and schedule the configured kills. */
    void start();

  private:
    /** Reconfiguration broadcast completed: recompute and install
     *  routing tables, then report newly-stranded tiles. */
    void reconfigure();

    EventQueue &eq;
    const ResilConfig cfg;
    noc::Mesh &mesh;
    StatRegistry &stats;
    /**
     * One corruption stream per router. A single shared stream would
     * interleave rolls from every tile, making each roll's value
     * depend on the global packet order — which the parallel kernel
     * does not preserve across partitions. Per-router streams depend
     * only on that router's own traversal count, which the lane
     * contract does fix.
     */
    std::vector<Rng> routerRngs;
    PartitionFn partitionFn;
    /** Tiles already reported as stranded (report each once). */
    std::vector<bool> stranded;
};

} // namespace resil
} // namespace misar

#endif // MISAR_RESIL_NOC_FAULT_INJECTOR_HH
