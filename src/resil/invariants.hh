/**
 * @file
 * Debug-mode invariant checker.
 *
 * Periodically (and once more at quiesce) sweeps the whole system and
 * cross-checks the components' views of each other:
 *
 *  - structural MSA-entry sanity (owner recorded in the HWQueue,
 *    barrier arrivals below the goal, no reader/writer co-ownership,
 *    no orphaned writer-waiter bits, OMU smoke bounds);
 *  - cross-component agreement (an entry's owner/reader must have a
 *    matching client-side hold or an outstanding operation) — these
 *    race benignly against in-flight messages, so a finding is only
 *    reported when it persists across two consecutive sweeps;
 *  - quiesce-only strictness (no outstanding client ops, no stranded
 *    waiters, OMU fully drained, and every L1 line's MESI state
 *    backed by the directory).
 *
 * Violations go to a handler (default: warn each line + fatal) so
 * tests can capture them instead of dying.
 */

#ifndef MISAR_RESIL_INVARIANTS_HH
#define MISAR_RESIL_INVARIANTS_HH

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace misar {
namespace sys {
class System;
} // namespace sys

namespace resil {

/** Periodic + quiesce-time consistency checker. */
class InvariantChecker
{
  public:
    using ViolationHandler =
        std::function<void(const std::vector<std::string> &)>;

    InvariantChecker(sys::System &system, Tick interval,
                     StatRegistry &stats);

    /** Arm the periodic sweep. */
    void start();

    /**
     * Run every applicable check now and return the violations.
     * @p at_quiesce additionally runs the strict end-state checks
     * (only meaningful once the event queue has drained).
     */
    std::vector<std::string> checkNow(bool at_quiesce);

    /** Run the strict end-state checks and report violations through
     *  the handler. Call only after the event queue has drained. */
    void atQuiesce();

    void setViolationHandler(ViolationHandler h) { onViolation = std::move(h); }

    /** Pending maintenance events (0 or 1), excluded from the
     *  system's deadlock detection. */
    unsigned pendingMaintenance() const { return scheduled ? 1u : 0u; }

  private:
    void sweep();

    /** Count @p v in stats and hand it to the violation handler. */
    void report(const std::vector<std::string> &v);

    /** Race-free entry/OMU sanity (always-true invariants). */
    void structural(std::vector<std::string> &out) const;

    /** Cross-component agreement (tolerates in-flight messages). */
    void cross(std::vector<std::string> &out) const;

    /** Strict end-state checks (valid only after a full drain). */
    void quiesce(std::vector<std::string> &out) const;

    sys::System &sys;
    Tick interval;
    StatRegistry &stats;
    ViolationHandler onViolation;
    bool scheduled = false;
    /** Cross-check findings of the previous sweep (for two-round
     *  confirmation). */
    std::set<std::string> lastCross;
};

} // namespace resil
} // namespace misar

#endif // MISAR_RESIL_INVARIANTS_HH
