#include "resil/core_fault_injector.hh"

#include "sim/logging.hh"

namespace misar {
namespace resil {

CoreFaultInjector::CoreFaultInjector(EventQueue &eq,
                                     const ResilConfig &cfg,
                                     StatRegistry &stats)
    : eq(eq), cfg(cfg), stats(stats)
{}

void
CoreFaultInjector::start()
{
    const Tick now = eq.now();
    auto delay_until = [now](Tick at) { return at > now ? at - now : 0; };

    for (const CoreKill &ck : cfg.coreKills) {
        eq.schedule(delay_until(ck.atTick), [this, ck] {
            warn("core fault: core %u halted at tick %llu", ck.core,
                 static_cast<unsigned long long>(eq.now()));
            stats.counter("resil.coreKills").inc();
            if (killFn)
                killFn(ck.core);
            eq.schedule(cfg.coreDetectDelay, [this, ck] {
                warn("core fault: core %u declared dead at tick %llu",
                     ck.core,
                     static_cast<unsigned long long>(eq.now()));
                stats.counter("resil.deadDeclarations").inc();
                if (declareFn)
                    declareFn(ck.core);
            });
        });
    }
}

} // namespace resil
} // namespace misar
