/**
 * @file
 * Seeded fault injector for the MSA message path.
 *
 * Installed as the MemSystem send interceptor, it rolls one uniform
 * per faultable message and either drops it, duplicates it (forward
 * now + deliver a copy after delayTicks), or delays it. Only
 * transaction-tracked MSA traffic is faultable: the txn/dedup layer
 * in msa_client/msa_slice makes retransmission of exactly that
 * traffic safe, while fire-and-forget notices, silent-privilege
 * messages, suspend handshakes and slice-to-slice condition-variable
 * plumbing are delivered faithfully (faulting those would require a
 * much heavier recovery protocol than the paper's hardware carries).
 *
 * The injector owns one private RNG stream per source tile, so a
 * given (seed, fault config, workload) triple replays with identical
 * cycle counts — and so each stream's rolls depend only on that
 * tile's own send order, which the event-queue lane contract fixes
 * independently of how tiles are partitioned onto host threads.
 */

#ifndef MISAR_RESIL_FAULT_INJECTOR_HH
#define MISAR_RESIL_FAULT_INJECTOR_HH

#include <functional>
#include <memory>
#include <vector>

#include "noc/packet.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/tile_runtime.hh"

namespace misar {
namespace resil {

/** Drops/delays/duplicates faultable MSA messages. */
class FaultInjector
{
  public:
    using ForwardFn = std::function<void(std::shared_ptr<noc::Packet>)>;

    /**
     * @p rt (when non-null) routes each intercepted packet's RNG
     * roll, stat counts, and re-injection schedule to its source
     * tile's shard and queue; it must outlive the injector.
     */
    FaultInjector(EventQueue &eq, const ResilConfig &cfg,
                  unsigned numTiles, StatRegistry &stats,
                  ForwardFn forward, const TileRuntime *rt = nullptr);

    /**
     * Interceptor entry point: returns true when the packet was
     * consumed (dropped, or re-scheduled for later delivery).
     * Executes on the sending tile's lane.
     */
    bool intercept(const std::shared_ptr<noc::Packet> &pkt);

  private:
    EventQueue &eq;
    const ResilConfig cfg;
    StatRegistry &stats;
    ForwardFn forward;
    const TileRuntime *rt;
    /** One stream per source tile (see file comment). */
    std::vector<Rng> rngs;
};

} // namespace resil
} // namespace misar

#endif // MISAR_RESIL_FAULT_INJECTOR_HH
