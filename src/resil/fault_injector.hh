/**
 * @file
 * Seeded fault injector for the MSA message path.
 *
 * Installed as the MemSystem send interceptor, it rolls one uniform
 * per faultable message and either drops it, duplicates it (forward
 * now + deliver a copy after delayTicks), or delays it. Only
 * transaction-tracked MSA traffic is faultable: the txn/dedup layer
 * in msa_client/msa_slice makes retransmission of exactly that
 * traffic safe, while fire-and-forget notices, silent-privilege
 * messages, suspend handshakes and slice-to-slice condition-variable
 * plumbing are delivered faithfully (faulting those would require a
 * much heavier recovery protocol than the paper's hardware carries).
 *
 * The injector owns a private RNG stream, so a given (seed, fault
 * config, workload) triple replays with identical cycle counts.
 */

#ifndef MISAR_RESIL_FAULT_INJECTOR_HH
#define MISAR_RESIL_FAULT_INJECTOR_HH

#include <functional>
#include <memory>

#include "noc/packet.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

namespace misar {
namespace resil {

/** Drops/delays/duplicates faultable MSA messages. */
class FaultInjector
{
  public:
    using ForwardFn = std::function<void(std::shared_ptr<noc::Packet>)>;

    FaultInjector(EventQueue &eq, const ResilConfig &cfg,
                  StatRegistry &stats, ForwardFn forward);

    /**
     * Interceptor entry point: returns true when the packet was
     * consumed (dropped, or re-scheduled for later delivery).
     */
    bool intercept(const std::shared_ptr<noc::Packet> &pkt);

  private:
    EventQueue &eq;
    const ResilConfig cfg;
    StatRegistry &stats;
    ForwardFn forward;
    Rng rng;
};

} // namespace resil
} // namespace misar

#endif // MISAR_RESIL_FAULT_INJECTOR_HH
