#include "sim/config.hh"

#include <cmath>

#include "sim/logging.hh"

namespace misar {

unsigned
SystemConfig::meshDim() const
{
    unsigned d = static_cast<unsigned>(std::lround(std::sqrt(numCores)));
    return d;
}

void
SystemConfig::validate() const
{
    unsigned d = meshDim();
    if (d * d != numCores)
        fatal("numCores (%u) must be a perfect square for a 2D mesh",
              numCores);
    if (numCores == 0 || numCores > 1024)
        fatal("numCores (%u) out of supported range [1, 1024]", numCores);
    if (smtWays == 0 || smtWays > 4)
        fatal("smtWays (%u) out of supported range [1, 4]", smtWays);
    if (numThreads() > 1024)
        fatal("numCores*smtWays (%u) exceeds the 1024 HWQueue bits",
              numThreads());
    if (simThreads == 0 || simThreads > 64)
        fatal("simThreads (%u) out of supported range [1, 64]", simThreads);
    if (simThreads > 1 && !tileLanes())
        fatal("--threads > 1 requires a per-tile-lane mode; the Ideal "
              "oracle wakes cores across tiles in the same tick and "
              "only runs serially");
    if (simThreads > 1 && resil.failoverBuddy >= 0)
        fatal("--threads > 1 is incompatible with slice failover: the "
              "buddy handoff reaches across tiles with no NoC latency, "
              "which breaks the PDES lookahead contract");
    if (simThreads > numCores)
        fatal("simThreads (%u) exceeds numCores (%u): every worker "
              "needs at least one tile", simThreads, numCores);
    if (simThreads > 1 && (obs.traceEnabled || obs.profileSync))
        fatal("--threads > 1 is incompatible with --trace/--profile-sync: "
              "those instruments mutate shared timelines from every "
              "tile; run them at --threads 1");
    if (msa.mode == AccelMode::MsaOmu && msa.omuCounters == 0)
        fatal("MSA/OMU mode requires at least one OMU counter");
    if ((mem.l1Sets & (mem.l1Sets - 1)) != 0)
        fatal("l1Sets must be a power of two");
    if ((mem.llcSliceSets & (mem.llcSliceSets - 1)) != 0)
        fatal("llcSliceSets must be a power of two");
    auto prob_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
    if (!prob_ok(resil.dropProb) || !prob_ok(resil.dupProb) ||
        !prob_ok(resil.delayProb))
        fatal("fault probabilities must lie in [0, 1]");
    if (resil.dropProb + resil.dupProb + resil.delayProb > 1.0)
        fatal("fault probabilities must sum to at most 1");
    if (resil.dropProb > 0.0 && resil.timeoutTicks == 0)
        fatal("dropProb > 0 requires timeoutTicks > 0, or dropped "
              "requests would hang their issuing thread forever");
    if (resil.offlineTile >= static_cast<int>(numCores))
        fatal("offlineTile (%d) out of range for %u cores",
              resil.offlineTile, numCores);
    if (resil.offlineTile >= 0 && msa.mode != AccelMode::MsaOmu &&
        msa.mode != AccelMode::MsaInfinite)
        fatal("offlineTile requires an MSA mode (there is no slice to "
              "take offline under %s)", accelName().c_str());
    if (resil.offlineTile >= 0 && !msa.omuEnabled)
        fatal("offlineTile requires the OMU: graceful shedding moves "
              "waiters to software, which needs activity accounting");
    for (const LinkKill &lk : resil.linkKills)
        if (lk.a >= numCores || lk.b >= numCores)
            fatal("linkKill %u-%u out of range for %u tiles", lk.a, lk.b,
                  numCores);
    for (const RouterKill &rk : resil.routerKills)
        if (rk.router >= numCores)
            fatal("routerKill %u out of range for %u tiles", rk.router,
                  numCores);
    for (const CoreKill &ck : resil.coreKills)
        if (ck.core >= numCores)
            fatal("coreKill %u out of range for %u cores", ck.core,
                  numCores);
    if (resil.coreFaultsEnabled() && resil.leaseTicks == 0 &&
        msa.mode != AccelMode::None)
        fatal("coreKills under an MSA mode require leaseTicks > 0, or "
              "a lock held by the corpse is orphaned forever");
    if (resil.failoverBuddy >= static_cast<int>(numCores))
        fatal("failoverBuddy (%d) out of range for %u cores",
              resil.failoverBuddy, numCores);
    if (resil.failoverBuddy >= 0 && resil.failoverBuddy == resil.offlineTile)
        fatal("failoverBuddy must differ from the tile going offline");
}

std::string
SystemConfig::accelName() const
{
    switch (msa.mode) {
      case AccelMode::None:
        return "MSA-0";
      case AccelMode::MsaOmu:
        return "MSA/OMU-" + std::to_string(msa.msaEntries);
      case AccelMode::MsaInfinite:
        return "MSA-inf";
      case AccelMode::Ideal:
        return "Ideal";
    }
    return "?";
}

SystemConfig
makeConfig(unsigned cores, AccelMode mode, unsigned msa_entries)
{
    SystemConfig cfg;
    cfg.numCores = cores;
    cfg.msa.mode = mode;
    cfg.msa.msaEntries = msa_entries;
    cfg.validate();
    return cfg;
}

} // namespace misar
