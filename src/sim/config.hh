/**
 * @file
 * System configuration: every tunable knob of the simulated chip.
 */

#ifndef MISAR_SIM_CONFIG_HH
#define MISAR_SIM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace misar {

/** Which synchronization-acceleration hardware a run models. */
enum class AccelMode
{
    /**
     * No hardware: all sync instructions return FAIL locally with no
     * message (the paper's MSA-0 compatibility configuration).
     */
    None,
    /** MSA with msaEntries entries per tile, managed by the OMU. */
    MsaOmu,
    /** MSA with unbounded entries; the OMU is never consulted. */
    MsaInfinite,
    /** Zero-latency oracle synchronization (paper's "Ideal"). */
    Ideal,
};

/** Which primitive types the MSA accepts (Fig 9 breakdown study). */
struct MsaTypeSupport
{
    bool locks = true;
    bool barriers = true;
    bool condVars = true;
};

/** NoC parameters. */
struct NocConfig
{
    /** Cycles a flit spends in a router (pipeline depth). */
    unsigned routerLatency = 2;
    /** Cycles per inter-router link traversal. */
    unsigned linkLatency = 1;
    /** Input buffer depth per port, in flits. */
    unsigned bufferDepth = 8;
    /** Flit payload width in bytes. */
    unsigned flitBytes = 16;
    /**
     * End-to-end reliable delivery in the network interfaces:
     * per-(destination, vnet) sequence numbers, cumulative acks on
     * the control vnet, timeout-driven retransmission, and in-order
     * at-most-once delivery at the receiver. Off by default: the
     * fault-free presets pay nothing. See docs/PROTOCOL.md "NoC
     * failure semantics".
     */
    bool reliable = false;
    /** Base retransmission timeout (doubles per retry, capped). */
    Tick retransmitTimeout = 600;
    /** Upper bound on the backed-off retransmission timeout. */
    Tick retransmitCap = 1u << 15;
    /** Resends before a pending packet is abandoned (the layers
     *  above — MSA retry/abandon, watchdog — take over). */
    unsigned retransmitLimit = 32;
    /**
     * Ack coalescing window: in-order deliveries schedule one
     * cumulative ack this many ticks out instead of acking every
     * packet, halving control traffic under bursts. Must stay well
     * under retransmitTimeout. Dups and gaps still ack immediately
     * (the sender is actively retransmitting there).
     */
    Tick ackDelay = 16;
};

/** Cache hierarchy parameters. */
struct MemConfig
{
    unsigned l1Sets = 128;        ///< 32KB: 128 sets x 4 ways x 64B
    unsigned l1Ways = 4;
    Tick l1HitLatency = 2;
    unsigned llcSliceSets = 1024; ///< 512KB/slice: 1024 x 8 x 64B
    unsigned llcWays = 8;
    Tick llcHitLatency = 10;
    Tick memLatency = 120;        ///< DRAM access behind the LLC
};

/** MSA/OMU parameters. */
struct MsaConfig
{
    AccelMode mode = AccelMode::MsaOmu;
    /** MSA entries per tile (paper evaluates 1 and 2). */
    unsigned msaEntries = 2;
    /** OMU counters per tile (paper uses four). */
    unsigned omuCounters = 4;
    /**
     * Disable the OMU (Figure 7's "Without OMU" bars): entries are
     * allocated on first use and never deallocated, because without
     * software-activity tracking deallocation would be unsafe. An
     * address is then handled forever in hardware (if it won an
     * entry) or forever in software.
     */
    bool omuEnabled = true;
    /** Enable the HWSync-bit LOCK_SILENT optimization (paper §5). */
    bool hwSyncBitOpt = true;
    /**
     * Paper §4.2.2 discusses (and rejects, for hardware complexity)
     * a barrier-suspension scheme that counts inactive-but-arrived
     * threads and tracks release notification, instead of forcing
     * the whole barrier to software. This implements that scheme:
     * a suspended barrier waiter's arrival stays counted and the
     * release notification is delivered when the thread resumes.
     * Default off = the paper's chosen force-to-software behaviour.
     */
    bool barrierSuspendOpt = false;
    /** Which primitive types the accelerator handles (Fig 9). */
    MsaTypeSupport support;
    /** Cycles the MSA pipeline takes to process one request. */
    Tick msaLatency = 1;
};

/** One scheduled NoC link kill: the bidirectional link between two
 *  adjacent routers goes dead at a tick. */
struct LinkKill
{
    unsigned a = 0;
    unsigned b = 0;
    Tick atTick = 0;
};

/** One scheduled NoC router kill: the router (and with it the whole
 *  tile's network attachment) goes dead at a tick. */
struct RouterKill
{
    unsigned router = 0;
    Tick atTick = 0;
};

/** One scheduled core kill: the core halts at a tick, mid-whatever
 *  it was doing — possibly inside a critical section or a barrier. */
struct CoreKill
{
    unsigned core = 0;
    Tick atTick = 0;
};

/**
 * Resilience / fault-injection parameters. All defaults are "off":
 * a default ResilConfig adds no events, no messages and no stat
 * activity, so zero-fault runs are bit-identical to a build without
 * the subsystem.
 */
struct ResilConfig
{
    /** Probability a faultable MSA message is silently dropped. */
    double dropProb = 0.0;
    /** Probability a faultable MSA message is duplicated. */
    double dupProb = 0.0;
    /** Probability a faultable MSA message is delayed. */
    double delayProb = 0.0;
    /** Extra ticks a delayed (or duplicated) message waits. */
    Tick delayTicks = 200;
    /** Tick at which message faults start firing (0 = immediately). */
    Tick faultsFromTick = 0;
    /** Seed for the injector's private RNG stream. */
    std::uint64_t faultSeed = 0x5eedULL;
    /** Tile whose MSA slice goes offline (-1 = never). */
    int offlineTile = -1;
    /** Tick at which the slice goes offline. */
    Tick offlineAtTick = 0;
    /**
     * Client-side timeout for an outstanding transactional sync op
     * (0 = timeouts disabled). Retries back off exponentially from
     * this base, capped at timeoutCap.
     */
    Tick timeoutTicks = 0;
    /** Retries before a bounded-retry op gives up and FAILs. */
    unsigned maxRetries = 8;
    /** Upper bound on the backed-off retry timeout. */
    Tick timeoutCap = 1u << 17;
    /**
     * Liveness watchdog window (0 = disabled): if no thread retires
     * a sync op or finishes within this many ticks, dump a waits-for
     * report and abort.
     */
    Tick watchdogInterval = 0;
    /** Enable periodic + quiesce-time invariant checking. */
    bool invariantChecks = false;
    /** Ticks between periodic invariant sweeps. */
    Tick invariantInterval = 50000;

    /** @name NoC fault campaign (see docs/PROTOCOL.md). @{ */
    /** Links to kill (bidirectional, between adjacent routers). */
    std::vector<LinkKill> linkKills;
    /** Routers to kill (drops the whole tile off the mesh). */
    std::vector<RouterKill> routerKills;
    /**
     * Probability a packet is corrupted on a link traversal and
     * discarded whole by the receiver's CRC check (transient fault;
     * recovered transparently by the NI reliable-delivery layer).
     * Rolled once per packet per link, on the head flit.
     */
    double flitCorruptProb = 0.0;
    /**
     * Ticks between a topology fault and the reconfiguration
     * broadcast taking effect mesh-wide (models fault detection plus
     * the lightweight status-network broadcast). Packets caught on
     * the dead hardware in this window are lost and recovered
     * end-to-end.
     */
    Tick nocDetectDelay = 64;
    /** @} */

    /** @name Participant (core) fault campaign. @{ */
    /** Cores to halt mid-run (the thread stops dead, replies to
     *  nothing, and never reaches its join/finish). */
    std::vector<CoreKill> coreKills;
    /**
     * Lease duration for MSA hardware lock grants, in ticks
     * (0 = leases disabled, grants are forever). While armed, a
     * slice probes a holder whose lease expired; a live holder's
     * hardware renews instantly, a dead one is revoked: the variable
     * epoch is bumped (fencing any stale release still in flight)
     * and the next waiter is granted. Off by default so fault-free
     * runs schedule no lease events at all.
     */
    Tick leaseTicks = 0;
    /** Ticks the slice waits for a lease-probe answer before it
     *  declares the holder dead and revokes. */
    Tick leaseProbeTimeout = 2000;
    /**
     * Ticks between a core kill and the watchdog-style declaration
     * that propagates to every MSA slice (barrier membership drops
     * the corpse, its locks are revoked, sw-fallback barriers stop
     * waiting for it). Models detection latency.
     */
    Tick coreDetectDelay = 5000;
    /**
     * Re-home a decommissioned slice's live variables to this tile's
     * slice instead of shedding them to software (-1 = shed, the
     * PR 1 behaviour). The dying slice serializes each entry into a
     * state-handoff message; clients chase forwarded traffic under
     * epoch fencing.
     */
    int failoverBuddy = -1;
    /** @} */

    /** True when any message fault or the offline event is armed. */
    bool
    messageFaultsEnabled() const
    {
        return dropProb > 0.0 || dupProb > 0.0 || delayProb > 0.0;
    }

    /** True when any NoC topology or transport fault is armed. */
    bool
    nocFaultsEnabled() const
    {
        return !linkKills.empty() || !routerKills.empty() ||
               flitCorruptProb > 0.0;
    }

    /** True when any participant kill is scheduled. */
    bool
    coreFaultsEnabled() const
    {
        return !coreKills.empty();
    }
};

/**
 * Observability parameters. All defaults are "off": a default
 * ObsConfig adds no events, allocates no buffers, and leaves every
 * simulated schedule bit-identical to a build without the subsystem.
 * Stat counters are always live (they never affect timing).
 */
struct ObsConfig
{
    /**
     * Enable the multi-component tracer: per-core op timelines, MSA
     * slice activity, NoC packet rows, and cross-component sync-op
     * flow events, exported as Chrome trace-event JSON.
     */
    bool traceEnabled = false;
    /** Record NoC packet events (can dominate trace size). */
    bool traceNoc = true;
    /** Per-track event cap; excess events are counted as dropped. */
    std::size_t traceMaxEvents = 1u << 20;
    /** Enable the per-sync-variable contention profiler. */
    bool profileSync = false;
    /** Entries shown in the "hottest sync variables" report. */
    unsigned profileTopN = 16;
    /** Ticks between stat snapshots (0 = sampler off). */
    Tick sampleInterval = 0;
    /**
     * Enable the resource-pressure monitor (occupancy/queue-depth
     * timelines, OMU episodes, heatmap.json). Timelines are sampled
     * on the stat sampler's schedule, so a zero sampleInterval leaves
     * only the event-driven episode tracking.
     */
    bool heatmapEnabled = false;

    /**
     * Output paths consumed by the workload runner after a run
     * (empty = do not write). The System itself never touches the
     * filesystem.
     */
    std::string traceOutPath;
    std::string statsJsonPath;
    std::string sampleCsvPath;
    std::string heatmapJsonPath;

    /** True when any observability instrument is armed. */
    bool
    anyEnabled() const
    {
        return traceEnabled || profileSync || sampleInterval > 0 ||
               heatmapEnabled;
    }
};

/** Core timing parameters. */
struct CoreConfig
{
    /**
     * Extra commit-fence cycles charged by each synchronization
     * instruction (models the "acts as a memory fence, begins at
     * commit" pipeline stall; the paper reports it is negligible).
     */
    Tick syncFenceLatency = 2;

    /**
     * Cycles a thread is descheduled after an OS interrupt before a
     * squashed LOCK instruction re-executes (paper §4.1.2).
     */
    Tick suspendResumeDelay = 500;
};

/** Top-level configuration for one simulated system. */
struct SystemConfig
{
    unsigned numCores = 16;   ///< must be a perfect square (mesh)
    /**
     * Host worker threads for the simulation kernel. 1 = the serial
     * calendar-queue kernel; N > 1 partitions the mesh into N
     * contiguous tile groups, each with its own event queue, run
     * under the conservative PDES scheme (sim/parallel.hh). Any N
     * produces the same trajectory and statistics as N = 1; N > 1
     * requires a per-tile-lane mode (not Ideal) and no slice
     * failover (failoverBuddy routes requests across tiles with no
     * NoC latency, which breaks the lookahead contract).
     */
    unsigned simThreads = 1;
    /**
     * Hardware threads per core (paper §3: "to support hardware
     * multithreading, the HWQueue would be augmented to have 1-bit
     * per hardware thread"). SMT threads share their tile's L1 and
     * network interface; each runs its own thread program.
     */
    unsigned smtWays = 1;
    std::uint64_t seed = 1;
    NocConfig noc;
    MemConfig mem;
    MsaConfig msa;
    CoreConfig core;
    ResilConfig resil;
    ObsConfig obs;

    /** Mesh edge length (sqrt of numCores). */
    unsigned meshDim() const;

    /** Total hardware threads on the chip. */
    unsigned numThreads() const { return numCores * smtWays; }

    /** Tile (core) a hardware thread lives on. */
    CoreId tileOf(CoreId thread) const { return thread / smtWays; }

    /**
     * Whether components get per-tile event-queue lanes. The Ideal
     * oracle performs same-tick cross-core wakeups through a global
     * table, so it keeps everything on lane 0 (and cannot run
     * threaded); every real mode isolates tiles behind NoC latency.
     */
    bool tileLanes() const { return msa.mode != AccelMode::Ideal; }

    /** Event-queue lane of tile @p tile (0 when lanes are off). */
    LaneId laneOf(CoreId tile) const { return tileLanes() ? 1 + tile : 0; }

    /** Total lanes: the global lane plus one per tile. */
    LaneId laneCount() const { return tileLanes() ? numCores + 1 : 1; }

    /** Validate invariants; fatal() on user error. */
    void validate() const;

    /** Human-readable name of the accel configuration. */
    std::string accelName() const;
};

/** Convenience builders for the paper's configurations. */
SystemConfig makeConfig(unsigned cores, AccelMode mode,
                        unsigned msa_entries = 2);

} // namespace misar

#endif // MISAR_SIM_CONFIG_HH
