/**
 * @file
 * Per-tile runtime routing for the parallel (PDES) kernel.
 *
 * Under `--threads N` the mesh is split into N contiguous tile
 * groups, each owning a private EventQueue (with one lane per tile
 * plus the shared global lane 0) and a private StatRegistry shard per
 * tile. Components constructed for tile t must schedule on t's queue,
 * pin their self-schedules to t's lane, and count into t's shard.
 *
 * TileRuntime is the plumbing handle for that: System fills it in and
 * passes it down through MemSystem / Mesh construction. A
 * default-constructed (empty) runtime routes every tile to the single
 * shared queue / registry on lane 0, which is exactly the legacy
 * serial behavior — tests that build a Mesh or MemSystem directly
 * keep working unchanged.
 */

#ifndef MISAR_SIM_TILE_RUNTIME_HH
#define MISAR_SIM_TILE_RUNTIME_HH

#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace misar {

/** Routes a tile id to its event queue, stat shard, and lane. */
struct TileRuntime
{
    /** Queue per tile (partition queues repeat). Empty = shared. */
    std::vector<EventQueue *> queues;
    /** Stat shard per tile. Empty = shared global registry. */
    std::vector<StatRegistry *> shards;
    /** True when events carry per-tile lanes (lane 1+t = tile t). */
    bool tileLanes = false;

    bool empty() const { return queues.empty() && shards.empty(); }

    /** Lane events of tile @p t run on (0 when lanes are off). */
    LaneId
    laneOf(CoreId t) const
    {
        return tileLanes ? 1 + t : 0;
    }

    /** Queue tile @p t schedules on; @p shared when not partitioned. */
    EventQueue &
    eqFor(CoreId t, EventQueue &shared) const
    {
        return queues.empty() ? shared : *queues[t];
    }

    /** Registry tile @p t counts into; @p shared when not sharded. */
    StatRegistry &
    statsFor(CoreId t, StatRegistry &shared) const
    {
        return shards.empty() ? shared : *shards[t];
    }
};

} // namespace misar

#endif // MISAR_SIM_TILE_RUNTIME_HH
