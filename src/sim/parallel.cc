#include "sim/parallel.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace misar {

ParallelEngine::ParallelEngine(EventQueue &global,
                               std::vector<EventQueue *> parts_in,
                               std::vector<unsigned> laneToPart_in)
    : global(global), parts(std::move(parts_in)),
      laneToPart(std::move(laneToPart_in)),
      numParts(static_cast<unsigned>(parts.size())),
      barRelease(numParts), barDone(numParts)
{
    if (numParts < 2)
        panic("parallel engine needs >= 2 partitions");
    handles.resize(numParts);
    mailboxes.resize(static_cast<std::size_t>(numParts) * (numParts + 1));

    // Each partition queue owns a contiguous lane range; derive it
    // from the lane map so the hook can insert in-partition sends
    // inline and only mail genuinely foreign ones.
    for (unsigned p = 0; p < numParts; ++p) {
        handles[p] = Handle{this, p};
        LaneId lo = 0, hi = 0;
        bool seen = false;
        for (LaneId l = 1; l < laneToPart.size(); ++l) {
            if (laneToPart[l] != p)
                continue;
            if (!seen) {
                lo = l;
                seen = true;
            } else if (l != hi) {
                panic("partition %u owns non-contiguous lanes", p);
            }
            hi = l + 1;
        }
        if (!seen)
            panic("partition %u owns no lanes", p);
        parts[p]->setCrossHook(&handles[p], &ParallelEngine::hook, lo, hi);
    }

    threads.reserve(numParts - 1);
    for (unsigned p = 1; p < numParts; ++p)
        threads.emplace_back([this, p] { workerLoop(p); });
}

ParallelEngine::~ParallelEngine()
{
    shutdown();
}

void
ParallelEngine::shutdown()
{
    if (joined)
        return;
    joined = true;
    ctlStop = true;
    barRelease.arriveAndWait();
    for (auto &t : threads)
        t.join();
    for (unsigned p = 0; p < numParts; ++p)
        parts[p]->setCrossHook(nullptr, nullptr, 0, 0);
}

void
ParallelEngine::hook(void *ctx, LaneId dstLane, Tick when, Tick sendTick,
                     LaneId senderLane, EventQueue::Callback fn)
{
    Handle *h = static_cast<Handle *>(ctx);
    ParallelEngine *e = h->engine;
    if (dstLane >= e->laneToPart.size())
        panic("cross event to unmapped lane %u", dstLane);
    const unsigned dst = e->laneToPart[dstLane];
    auto &items = e->box(h->src, dst).gen[e->ctlGen];
    items.push_back(MailItem{when, sendTick, dstLane, senderLane,
                             std::move(fn)});
    ++h->sent;
}

std::uint64_t
ParallelEngine::crossEvents() const
{
    std::uint64_t n = 0;
    for (const Handle &h : handles)
        n += h.sent;
    return n;
}

std::size_t
ParallelEngine::pending() const
{
    std::size_t n = global.pending();
    for (const EventQueue *q : parts)
        n += q->pending();
    for (const Mailbox &m : mailboxes)
        n += m.gen[0].size() + m.gen[1].size();
    return n;
}

Tick
ParallelEngine::minNextTick() const
{
    Tick t = global.nextEventTick();
    for (const EventQueue *q : parts)
        t = std::min(t, q->nextEventTick());
    for (const Mailbox &m : mailboxes)
        for (const auto &g : m.gen)
            for (const MailItem &it : g)
                t = std::min(t, it.when);
    return t;
}

void
ParallelEngine::drainGlobalInbox()
{
    // Both generations are quiescent here (workers parked); drain in
    // (generation, source) order. Cross-generation items differ in
    // sendTick — one round per tick — so the receiving queue's sender
    // key keeps the merge deterministic regardless.
    for (unsigned g = 0; g < 2; ++g)
        for (unsigned src = 0; src < numParts; ++src) {
            auto &items = box(src, numParts).gen[g];
            for (MailItem &it : items)
                global.insertForeign(it.dstLane, it.when, it.sendTick,
                                     it.senderLane, std::move(it.fn));
            items.clear();
        }
}

void
ParallelEngine::workerBody(unsigned p)
{
    EventQueue *q = parts[p];
    const unsigned readGen = ctlGen ^ 1;
    for (unsigned src = 0; src < numParts; ++src) {
        auto &items = box(src, p).gen[readGen];
        for (MailItem &it : items)
            q->insertForeign(it.dstLane, it.when, it.sendTick,
                             it.senderLane, std::move(it.fn));
        items.clear();
    }
    if (q->nextEventTick() == ctlTick)
        q->runTick(ctlTick);
}

void
ParallelEngine::workerLoop(unsigned p)
{
    for (;;) {
        barRelease.arriveAndWait();
        if (ctlStop)
            return;
        workerBody(p);
        barDone.arriveAndWait();
    }
}

void
ParallelEngine::round(Tick t)
{
    for (EventQueue *q : parts)
        q->advanceTo(t);
    global.advanceTo(t);
    // Lane 0 runs first within a tick. Global events may call into
    // any tile (workers are parked) and schedule same-tick follow-ups
    // onto tile lanes; the clocks are already aligned so those land
    // at the right tick.
    if (global.nextEventTick() == t)
        global.runTick(t);
    ctlTick = t;
    ctlGen ^= 1;
    ++roundCount;
    barRelease.arriveAndWait();
    workerBody(0);
    barDone.arriveAndWait();
}

bool
ParallelEngine::step(Tick until)
{
    drainGlobalInbox();
    Tick gNext = global.nextEventTick();
    Tick pNext = maxTick;
    for (const EventQueue *q : parts)
        pNext = std::min(pNext, q->nextEventTick());
    Tick mNext = maxTick;
    for (const Mailbox &m : mailboxes)
        for (const auto &g : m.gen)
            for (const MailItem &it : g)
                mNext = std::min(mNext, it.when);
    const Tick t = std::min({gNext, pNext, mNext});
    if (t > until || t == maxTick)
        return false;
    if (gNext == t && pNext > t && mNext > t) {
        // Global-only tick (watchdog, sampler, injector, checker):
        // run it master-side without waking the workers. Align the
        // partition clocks first so same-tick master->tile schedules
        // land at the right tick.
        for (EventQueue *q : parts)
            q->advanceTo(t);
        global.advanceTo(t);
        global.runTick(t);
        return true;
    }
    round(t);
    return true;
}

void
ParallelEngine::runUntil(Tick until)
{
    while (step(until)) {
    }
    for (EventQueue *q : parts)
        if (q->now() < until)
            q->advanceTo(until);
    if (global.now() < until)
        global.advanceTo(until);
}

void
ParallelEngine::drainAll()
{
    while (step(maxTick)) {
    }
}

} // namespace misar
