/**
 * @file
 * gem5-style logging and error-exit helpers.
 *
 * panic() is for internal invariant violations (simulator bugs),
 * fatal() is for user/configuration errors. Both terminate; panic
 * aborts (core dump friendly) while fatal exits cleanly with code 1.
 */

#ifndef MISAR_SIM_LOGGING_HH
#define MISAR_SIM_LOGGING_HH

#include <cstdarg>
#include <string>

namespace misar {

/** Abort with a formatted message; use for simulator bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

} // namespace misar

#endif // MISAR_SIM_LOGGING_HH
