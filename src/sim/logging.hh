/**
 * @file
 * gem5-style logging and error-exit helpers.
 *
 * panic() is for internal invariant violations (simulator bugs),
 * fatal() is for user/configuration errors. Both terminate; panic
 * aborts (core dump friendly) while fatal exits cleanly with code 1.
 */

#ifndef MISAR_SIM_LOGGING_HH
#define MISAR_SIM_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <string>

namespace misar {

/** Abort with a formatted message; use for simulator bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Informational message to stdout. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/**
 * Last-gasp hook run once, after the message is printed but before
 * panic()/fatal() terminate the process; @p kind is "panic" or
 * "fatal". Used to flush the JSON run report so a crashed job still
 * leaves an ingestible artifact for the campaign aggregator. The
 * hook is cleared before it runs (a hook that itself panics cannot
 * recurse) and must not assume it can prevent termination.
 */
void setTerminationHook(std::function<void(const char *kind)> hook);

/** Remove the termination hook (normal-completion path). */
void clearTerminationHook();

} // namespace misar

#endif // MISAR_SIM_LOGGING_HH
