/**
 * @file
 * Deterministic pseudo-random number generator (xorshift64*).
 *
 * std::mt19937 is avoided so that RNG state is tiny and behaviour is
 * identical across standard-library implementations.
 */

#ifndef MISAR_SIM_RNG_HH
#define MISAR_SIM_RNG_HH

#include <cstdint>

namespace misar {

/** Small, fast, deterministic RNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545F4914F6CDD1DULL;
    }

    /** Uniform value in [0, bound). @pre bound > 0 */
    std::uint64_t range(std::uint64_t bound) { return next() % bound; }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t state;
};

} // namespace misar

#endif // MISAR_SIM_RNG_HH
