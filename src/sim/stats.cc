#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>

namespace misar {

void
StatHistogram::sample(std::uint64_t v)
{
    unsigned b = 0;
    while (v > 1 && b + 1 < buckets.size()) {
        v >>= 1;
        ++b;
    }
    ++buckets[b];
    ++_total;
}

void
StatHistogram::merge(const StatHistogram &o)
{
    if (o.buckets.size() > buckets.size())
        buckets.resize(o.buckets.size(), 0);
    for (std::size_t i = 0; i < o.buckets.size(); ++i)
        buckets[i] += o.buckets[i];
    _total += o._total;
}

std::uint64_t
StatRegistry::counterValue(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second.value();
}

std::uint64_t
StatRegistry::sumCounters(const std::string &prefix) const
{
    std::uint64_t sum = 0;
    for (auto it = counters.lower_bound(prefix); it != counters.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        sum += it->second.value();
    }
    return sum;
}

std::uint64_t
StatRegistry::sumCountersSuffix(const std::string &suffix) const
{
    std::uint64_t sum = 0;
    for (const auto &[name, c] : counters) {
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            sum += c.value();
    }
    return sum;
}

double
StatRegistry::pooledMean(const std::string &prefix) const
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (auto it = averages.lower_bound(prefix); it != averages.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        sum += it->second.sum();
        n += it->second.count();
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

void
StatRegistry::forEachCounter(
    const std::function<void(const std::string &, const StatCounter &)> &fn)
    const
{
    for (const auto &[name, c] : counters)
        fn(name, c);
}

void
StatRegistry::forEachAverage(
    const std::function<void(const std::string &, const StatAverage &)> &fn)
    const
{
    for (const auto &[name, a] : averages)
        fn(name, a);
}

void
StatRegistry::forEachHistogram(
    const std::function<void(const std::string &, const StatHistogram &)>
        &fn) const
{
    for (const auto &[name, h] : histograms)
        fn(name, h);
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, a] : averages) {
        os << name << " mean=" << std::fixed << std::setprecision(2)
           << a.mean() << " count=" << a.count() << " min=" << a.min()
           << " max=" << a.max() << "\n";
    }
    for (const auto &[name, h] : histograms) {
        os << name << " total=" << h.total() << " buckets=[";
        const auto &b = h.data();
        for (std::size_t i = 0; i < b.size(); ++i)
            os << (i ? "," : "") << b[i];
        os << "]\n";
    }
}

void
StatRegistry::mergeFrom(const StatRegistry &o)
{
    for (const auto &[name, c] : o.counters)
        counters[name].inc(c.value());
    for (const auto &[name, a] : o.averages)
        averages[name].merge(a);
    for (const auto &[name, h] : o.histograms)
        histograms[name].merge(h);
}

void
StatRegistry::reset()
{
    for (auto &[name, c] : counters)
        c.reset();
    for (auto &[name, a] : averages)
        a.reset();
    for (auto &[name, h] : histograms)
        h.reset();
}

} // namespace misar
