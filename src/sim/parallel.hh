/**
 * @file
 * Conservative parallel discrete-event engine (PDES) for the tile
 * mesh.
 *
 * The mesh is split into `--threads N` contiguous tile groups; each
 * group owns a private EventQueue holding the lanes of its tiles.
 * Lane 0 (the global lane: watchdog, samplers, fault injectors,
 * run-control lambdas) stays on the System's shared queue and is
 * executed only by the master thread, with every worker parked — so
 * master-lane code may freely touch any tile's state, exactly like
 * the serial kernel.
 *
 * Synchronization is bucket-synchronous with a lookahead of one tick,
 * the minimum cross-partition NoC latency (a credit return crosses a
 * partition boundary in one tick; flit hops take routerLatency +
 * linkLatency >= 2). Each round executes exactly one simulated tick:
 *
 *   master: drain global inbox, pick T = min next tick over every
 *           queue and mailbox, align all clocks to T, run global
 *           lane-0 events at T (workers parked), then release;
 *   workers (master doubles as partition 0's worker): drain inbound
 *           mailboxes in deterministic (source partition, send order)
 *           order, run the local lanes of tick T, appending
 *           cross-partition sends to outbound mailboxes; barrier.
 *
 * Mailboxes are double-buffered by round parity: round k appends to
 * generation k&1 while draining generation (k&1)^1, so no buffer is
 * ever written and read concurrently. All cross-thread visibility is
 * by the two sense-reversing barriers per round — no locks, no
 * atomics on the data path — which also makes the engine clean under
 * ThreadSanitizer.
 *
 * Determinism: every event executes at the same (tick, lane,
 * sendTick, senderLane, per-sender FIFO) position regardless of N,
 * because the receiving queue files mailbox deliveries under the
 * sender's key (EventQueue::insertForeign) and the per-tick scatter
 * re-sorts any cell that received one. `--threads 1` does not
 * instantiate this engine at all.
 */

#ifndef MISAR_SIM_PARALLEL_HH
#define MISAR_SIM_PARALLEL_HH

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace misar {

/** Sense-reversing spin barrier (TSan-clean, no syscalls when hot). */
class SpinBarrier
{
  public:
    explicit SpinBarrier(unsigned parties) : parties(parties) {}

    void
    arriveAndWait()
    {
        const unsigned s = sense.load(std::memory_order_relaxed);
        if (count.fetch_add(1, std::memory_order_acq_rel) + 1 == parties) {
            count.store(0, std::memory_order_relaxed);
            sense.store(s ^ 1, std::memory_order_release);
        } else {
            unsigned spins = 0;
            while (sense.load(std::memory_order_acquire) == s)
                if (++spins > 4096) {
                    std::this_thread::yield();
                    spins = 0;
                }
        }
    }

  private:
    const unsigned parties;
    std::atomic<unsigned> count{0};
    std::atomic<unsigned> sense{0};
};

/**
 * The parallel tick engine. Constructed by System::runDetailed for
 * `--threads N >= 2` runs; the constructing thread is the master and
 * doubles as partition 0's worker. Destroying the engine parks and
 * joins the worker threads.
 */
class ParallelEngine
{
  public:
    /**
     * @p global   lane-0 queue (master-only).
     * @p parts    one queue per partition, each owning the lanes
     *             [1 + tileBase, 1 + tileEnd) of its tile group.
     * @p laneToPart partition index per lane; lane 0 maps to
     *             parts.size() (the global inbox).
     *
     * Installs the cross-partition hook on every partition queue.
     */
    ParallelEngine(EventQueue &global, std::vector<EventQueue *> parts,
                   std::vector<unsigned> laneToPart);
    ~ParallelEngine();
    ParallelEngine(const ParallelEngine &) = delete;
    ParallelEngine &operator=(const ParallelEngine &) = delete;

    /** Execute every event with tick <= @p until; clocks end at
     *  max(now, until). Master thread only. */
    void runUntil(Tick until);

    /** Execute until every queue and mailbox is empty (quiesce). */
    void drainAll();

    /** Pending events over all queues plus undelivered mail. */
    std::size_t pending() const;

    /** Earliest pending tick anywhere, or maxTick. */
    Tick minNextTick() const;

    /** Park and join the workers (idempotent; dtor calls it). */
    void shutdown();

    /** Rounds executed (one simulated tick each) — test visibility. */
    std::uint64_t rounds() const { return roundCount; }

    /** Cross-partition deliveries routed — test visibility. */
    std::uint64_t crossEvents() const;

  private:
    struct MailItem
    {
        Tick when;
        Tick sendTick;
        LaneId dstLane;
        LaneId senderLane;
        EventQueue::Callback fn;
    };

    /** One direction of one src->dst pair, double-buffered. */
    struct alignas(64) Mailbox
    {
        std::vector<MailItem> gen[2];
    };

    /** crossHook context: identifies the sending partition. Also
     *  carries that partition's private send counter (summed by the
     *  master for crossEvents(), so workers never share a cell). */
    struct alignas(64) Handle
    {
        ParallelEngine *engine;
        unsigned src;
        std::uint64_t sent = 0;
    };

    static void hook(void *ctx, LaneId dstLane, Tick when, Tick sendTick,
                     LaneId senderLane, EventQueue::Callback fn);

    Mailbox &
    box(unsigned src, unsigned dst)
    {
        return mailboxes[src * (numParts + 1) + dst];
    }

    const Mailbox &
    box(unsigned src, unsigned dst) const
    {
        return mailboxes[src * (numParts + 1) + dst];
    }

    /** Execute one simulated tick @p t across all partitions. */
    void round(Tick t);

    /** Advance by one tick if one is pending at <= @p until. */
    bool step(Tick until);

    /** Partition-local work of one round (drain inbox, run tick). */
    void workerBody(unsigned p);

    /** Spawned-thread loop for partitions 1..P-1. */
    void workerLoop(unsigned p);

    /** Deliver queued global-lane mail into the global queue. */
    void drainGlobalInbox();

    EventQueue &global;
    std::vector<EventQueue *> parts;
    std::vector<unsigned> laneToPart;
    const unsigned numParts;

    std::vector<Handle> handles;
    std::vector<Mailbox> mailboxes;

    SpinBarrier barRelease;
    SpinBarrier barDone;

    /** Round control, written by the master before barRelease. */
    Tick ctlTick = 0;
    unsigned ctlGen = 0;
    bool ctlStop = false;

    std::vector<std::thread> threads;
    bool joined = false;

    std::uint64_t roundCount = 0;
};

} // namespace misar

#endif // MISAR_SIM_PARALLEL_HH
