#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace misar {

namespace {

bool verboseEnabled = true;
std::function<void(const char *)> terminationHook;

/**
 * Move the hook out before invoking it so a hook that panics or
 * fatals cannot recurse into itself. Termination must proceed no
 * matter what the hook does, so swallow anything it throws.
 */
void
runTerminationHook(const char *kind)
{
    if (!terminationHook)
        return;
    auto hook = std::move(terminationHook);
    terminationHook = nullptr;
    try {
        hook(kind);
    } catch (...) {
    }
}

} // namespace

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

void
setTerminationHook(std::function<void(const char *)> hook)
{
    terminationHook = std::move(hook);
}

void
clearTerminationHook()
{
    terminationHook = nullptr;
}

void
panic(const char *fmt, ...)
{
    std::fputs("panic: ", stderr);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    runTerminationHook("panic");
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::fputs("fatal: ", stderr);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    runTerminationHook("fatal");
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::fputs("warn: ", stderr);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled)
        return;
    std::fputs("info: ", stdout);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stdout, fmt, ap);
    va_end(ap);
    std::fputc('\n', stdout);
}

} // namespace misar
