#include "sim/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace misar {

namespace {
bool verboseEnabled = true;
} // namespace

void
setVerbose(bool verbose)
{
    verboseEnabled = verbose;
}

void
panic(const char *fmt, ...)
{
    std::fputs("panic: ", stderr);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::fputs("fatal: ", stderr);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    std::fputs("warn: ", stderr);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fputc('\n', stderr);
}

void
inform(const char *fmt, ...)
{
    if (!verboseEnabled)
        return;
    std::fputs("info: ", stdout);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stdout, fmt, ap);
    va_end(ap);
    std::fputc('\n', stdout);
}

} // namespace misar
