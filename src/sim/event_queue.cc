#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace misar {

void
EventQueue::scheduleAt(Tick when, Callback cb)
{
    if (when < _now)
        panic("event scheduled in the past (%llu < %llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    events.push(Event{when, nextSeq++, std::move(cb)});
}

EventQueue::DrainResult
EventQueue::drain(Tick limit)
{
    const Tick deadline = (limit == maxTick) ? maxTick : _now + limit;
    while (!events.empty()) {
        const Event &top = events.top();
        if (top.when > deadline)
            return DrainResult::LimitHit;
        _now = top.when;
        Callback cb = std::move(const_cast<Event &>(top).cb);
        events.pop();
        ++executed;
        cb();
    }
    return DrainResult::Drained;
}

void
EventQueue::runUntil(Tick until)
{
    while (!events.empty() && events.top().when <= until) {
        const Event &top = events.top();
        _now = top.when;
        Callback cb = std::move(const_cast<Event &>(top).cb);
        events.pop();
        ++executed;
        cb();
    }
    if (_now < until)
        _now = until;
}

} // namespace misar
