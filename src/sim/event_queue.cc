#include "sim/event_queue.hh"

#include <algorithm>

namespace misar {

EventQueue::EventQueue() = default;

EventQueue::~EventQueue()
{
    // Destroy (without running) every callable still pending, ring
    // and overflow alike; the chunks vector frees the records.
    for (Bucket &b : buckets) {
        for (EventRecord *r = b.head; r;) {
            EventRecord *next = r->next;
            r->op(r, false);
            r = next;
        }
    }
    for (EventRecord *r : overflow)
        r->op(r, false);
}

EventQueue::EventRecord *
EventQueue::allocRecord()
{
    if (!freeHead)
        growPool();
    EventRecord *r = freeHead;
    freeHead = r->next;
    return r;
}

void
EventQueue::growPool()
{
    auto chunk = std::make_unique<EventRecord[]>(chunkSize);
    for (std::size_t i = chunkSize; i-- > 0;) {
        chunk[i].next = freeHead;
        freeHead = &chunk[i];
    }
    chunks.push_back(std::move(chunk));
    ++pstats.chunkAllocs;
    pstats.recordCapacity += chunkSize;
}

void
EventQueue::appendBucket(EventRecord *r)
{
    Bucket &b = buckets[static_cast<std::size_t>(r->when) & bucketMask];
    r->next = nullptr;
    if (b.tail) {
        b.tail->next = r;
    } else {
        b.head = r;
        const std::size_t idx =
            static_cast<std::size_t>(r->when) & bucketMask;
        occ[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    }
    b.tail = r;
    ++ringCount;
}

void
EventQueue::insert(EventRecord *r)
{
    if (r->when - _now < window) {
        appendBucket(r);
    } else {
        overflow.push_back(r);
        std::push_heap(overflow.begin(), overflow.end(), later);
    }
    ++numPending;
    ++pstats.scheduled;
    if (numPending > pstats.maxPending)
        pstats.maxPending = numPending;
}

void
EventQueue::promote()
{
    // maxTick-adjacent clocks cannot overflow the boundary in any
    // real run, but saturate anyway so the comparison stays sound.
    const Tick boundary = (_now > maxTick - window) ? maxTick
                                                    : _now + window;
    while (!overflow.empty() && overflow.front()->when < boundary) {
        std::pop_heap(overflow.begin(), overflow.end(), later);
        EventRecord *r = overflow.back();
        overflow.pop_back();
        // Heap pops ascend in (when, seq), and everything already in
        // the target bucket was inserted while this event was still
        // beyond the boundary (hence with a smaller seq), so a plain
        // append preserves sequence order.
        appendBucket(r);
    }
}

Tick
EventQueue::nextRingTick() const
{
    const std::size_t s = static_cast<std::size_t>(_now) & bucketMask;
    std::size_t w = s >> 6;
    const unsigned b = static_cast<unsigned>(s & 63);
    // Circular scan starting at bucket s: high bits of word w first,
    // then the following words, then the low bits of word w.
    std::uint64_t word = occ[w] & (~std::uint64_t{0} << b);
    for (std::size_t n = 0; n < numWords; ++n) {
        if (word) {
            const std::size_t idx =
                (w << 6) | static_cast<std::size_t>(std::countr_zero(word));
            return _now + ((idx - s) & bucketMask);
        }
        w = (w + 1) & (numWords - 1);
        word = occ[w];
    }
    if (b) {
        word = occ[s >> 6] & (~std::uint64_t{0} >> (64 - b));
        if (word) {
            const std::size_t idx =
                ((s >> 6) << 6) |
                static_cast<std::size_t>(std::countr_zero(word));
            return _now + ((idx - s) & bucketMask);
        }
    }
    panic("event ring count %zu but no occupied bucket", ringCount);
}

void
EventQueue::runBucket(Tick t)
{
    Bucket &b = buckets[static_cast<std::size_t>(t) & bucketMask];
    // Callbacks may append same-tick events to this bucket while it
    // drains; re-reading head picks them up in sequence order.
    while (EventRecord *r = b.head) {
        b.head = r->next;
        if (!b.head) {
            b.tail = nullptr;
            const std::size_t idx =
                static_cast<std::size_t>(t) & bucketMask;
            occ[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
        }
        --ringCount;
        --numPending;
        ++executed;
        r->op(r, true);
        freeRecord(r);
    }
}

EventQueue::DrainResult
EventQueue::drain(Tick limit)
{
    const Tick deadline = (limit == maxTick) ? maxTick : _now + limit;
    while (numPending) {
        const Tick t = ringCount ? nextRingTick() : overflow.front()->when;
        if (t > deadline)
            return DrainResult::LimitHit;
        _now = t;
        promote();
        runBucket(t);
    }
    return DrainResult::Drained;
}

void
EventQueue::runUntil(Tick until)
{
    while (numPending) {
        const Tick t = ringCount ? nextRingTick() : overflow.front()->when;
        if (t > until)
            break;
        _now = t;
        promote();
        runBucket(t);
    }
    if (_now < until) {
        _now = until;
        promote();
    }
}

} // namespace misar
