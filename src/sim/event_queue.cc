#include "sim/event_queue.hh"

#include <algorithm>

namespace misar {

EventQueue::EventQueue() = default;

EventQueue::~EventQueue()
{
    // Destroy (without running) every callable still pending — ring,
    // lane chains, and overflow alike; the chunks vector frees the
    // records.
    for (Bucket &b : buckets) {
        for (EventRecord *r = b.head; r;) {
            EventRecord *next = r->next;
            r->op(r, false);
            r = next;
        }
    }
    for (Lane &l : lanes) {
        for (EventRecord *r = l.head; r;) {
            EventRecord *next = r->next;
            r->op(r, false);
            r = next;
        }
    }
    for (EventRecord *r : overflow)
        r->op(r, false);
}

void
EventQueue::setNumLanes(LaneId n)
{
    if (n <= numLanes)
        return;
    numLanes = n;
    lanes.resize(n);
    laneOcc.assign((static_cast<std::size_t>(n) + 63) / 64, 0);
}

EventQueue::EventRecord *
EventQueue::allocRecord()
{
    if (!freeHead)
        growPool();
    EventRecord *r = freeHead;
    freeHead = r->next;
    return r;
}

void
EventQueue::growPool()
{
    auto chunk = std::make_unique<EventRecord[]>(chunkSize);
    for (std::size_t i = chunkSize; i-- > 0;) {
        chunk[i].next = freeHead;
        freeHead = &chunk[i];
    }
    chunks.push_back(std::move(chunk));
    ++pstats.chunkAllocs;
    pstats.recordCapacity += chunkSize;
}

void
EventQueue::appendBucket(EventRecord *r)
{
    Bucket &b = buckets[static_cast<std::size_t>(r->when) & bucketMask];
    r->next = nullptr;
    if (b.tail) {
        b.tail->next = r;
    } else {
        b.head = r;
        const std::size_t idx =
            static_cast<std::size_t>(r->when) & bucketMask;
        occ[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    }
    b.tail = r;
    ++ringCount;
}

void
EventQueue::appendLane(EventRecord *r)
{
    // Same-tick insert while this tick drains. The executing lane can
    // feed itself (FIFO append, picked up by the drain loop) or any
    // later lane; a lane that already ran is gone for this tick.
    if (r->lane < curLane)
        panic("same-tick event into lane %u from lane %u (already ran)",
              r->lane, curLane);
    Lane &l = lanes[r->lane];
    r->next = nullptr;
    if (l.tail) {
        // Appends mid-drain carry key (now, curLane), which is >= the
        // chain tail's key by construction; keep the check anyway so
        // a contract violation surfaces as a sort, not misordering.
        if (senderBefore(r, l.tail))
            l.dirty = true;
        l.tail->next = r;
    } else {
        l.head = r;
        laneOcc[r->lane >> 6] |= std::uint64_t{1} << (r->lane & 63);
    }
    l.tail = r;
}

void
EventQueue::insert(EventRecord *r)
{
    if (draining && r->when == _now) {
        appendLane(r);
    } else if (r->when - _now < window) {
        appendBucket(r);
    } else {
        overflow.push_back(r);
        std::push_heap(overflow.begin(), overflow.end(), later);
    }
    ++numPending;
    ++pstats.scheduled;
    if (numPending > pstats.maxPending)
        pstats.maxPending = numPending;
}

void
EventQueue::insertForeign(LaneId lane, Tick when, Tick sendTick,
                          LaneId senderLane, Callback fn)
{
    // when == _now is legal: the engine drains mailboxes after
    // aligning the clock to the window tick but before running it,
    // so a delivery dated exactly this tick still executes in order.
    if (when < _now)
        panic("foreign event at tick %llu but now is %llu "
              "(cross-partition events need >= 1 tick of lookahead)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(_now));
    if (lane >= numLanes)
        panic("foreign event on lane %u but only %u lanes configured",
              lane, numLanes);
    EventRecord *r = allocRecord();
    r->when = when;
    r->sendTick = sendTick;
    r->seq = nextSeq++;
    r->lane = lane;
    r->senderLane = senderLane;
    storeCallable(r, std::move(fn));
    insert(r);
}

void
EventQueue::promote()
{
    // maxTick-adjacent clocks cannot overflow the boundary in any
    // real run, but saturate anyway so the comparison stays sound.
    const Tick boundary = (_now > maxTick - window) ? maxTick
                                                    : _now + window;
    while (!overflow.empty() && overflow.front()->when < boundary) {
        std::pop_heap(overflow.begin(), overflow.end(), later);
        EventRecord *r = overflow.back();
        overflow.pop_back();
        // Heap pops ascend in (when, seq); per-sender FIFO holds
        // because one sender's records carry ascending seqs. Any
        // cross-sender misordering against records already in the
        // bucket is repaired by the scatter-time sort check.
        appendBucket(r);
    }
}

Tick
EventQueue::nextRingTick() const
{
    const std::size_t s = static_cast<std::size_t>(_now) & bucketMask;
    std::size_t w = s >> 6;
    const unsigned b = static_cast<unsigned>(s & 63);
    // Circular scan starting at bucket s: high bits of word w first,
    // then the following words, then the low bits of word w.
    std::uint64_t word = occ[w] & (~std::uint64_t{0} << b);
    for (std::size_t n = 0; n < numWords; ++n) {
        if (word) {
            const std::size_t idx =
                (w << 6) | static_cast<std::size_t>(std::countr_zero(word));
            return _now + ((idx - s) & bucketMask);
        }
        w = (w + 1) & (numWords - 1);
        word = occ[w];
    }
    if (b) {
        word = occ[s >> 6] & (~std::uint64_t{0} >> (64 - b));
        if (word) {
            const std::size_t idx =
                ((s >> 6) << 6) |
                static_cast<std::size_t>(std::countr_zero(word));
            return _now + ((idx - s) & bucketMask);
        }
    }
    panic("event ring count %zu but no occupied bucket", ringCount);
}

void
EventQueue::sortLane(LaneId l)
{
    Lane &lane = lanes[l];
    sortScratch.clear();
    for (EventRecord *r = lane.head; r; r = r->next)
        sortScratch.push_back(r);
    std::stable_sort(sortScratch.begin(), sortScratch.end(),
                     [](const EventRecord *a, const EventRecord *b) {
                         return senderBefore(a, b);
                     });
    EventRecord *head = nullptr, *tail = nullptr;
    for (EventRecord *r : sortScratch) {
        r->next = nullptr;
        (tail ? tail->next : head) = r;
        tail = r;
    }
    lane.head = head;
    lane.tail = tail;
    lane.dirty = false;
    ++pstats.laneSorts;
}

void
EventQueue::runTick(Tick t)
{
    if (t != _now)
        panic("runTick(%llu) but now is %llu",
              static_cast<unsigned long long>(t),
              static_cast<unsigned long long>(_now));
    const std::size_t idx = static_cast<std::size_t>(t) & bucketMask;
    Bucket &b = buckets[idx];

    // Scatter the tick's FIFO bucket into per-lane chains, watching
    // for out-of-key-order appends (only cross-partition mailbox
    // deliveries can produce them; serial runs scatter pre-sorted).
    for (EventRecord *r = b.head; r;) {
        EventRecord *next = r->next;
        Lane &l = lanes[r->lane];
        r->next = nullptr;
        if (l.tail) {
            if (senderBefore(r, l.tail))
                l.dirty = true;
            l.tail->next = r;
        } else {
            l.head = r;
            laneOcc[r->lane >> 6] |= std::uint64_t{1} << (r->lane & 63);
        }
        l.tail = r;
        --ringCount;
        r = next;
    }
    if (b.head) {
        b.head = b.tail = nullptr;
        occ[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }

    // Execute lanes in ascending order. Callbacks may append
    // same-tick events to the current or any later lane; the
    // occupancy rescan picks up lanes that only just became occupied.
    draining = true;
    for (LaneId l = nextOccupiedLane(0); l < numLanes;
         l = nextOccupiedLane(l)) {
        Lane &lane = lanes[l];
        if (lane.dirty)
            sortLane(l);
        curLane = l;
        while (EventRecord *r = lane.head) {
            lane.head = r->next;
            if (!lane.head)
                lane.tail = nullptr;
            --numPending;
            ++executed;
            r->op(r, true);
            freeRecord(r);
        }
        laneOcc[l >> 6] &= ~(std::uint64_t{1} << (l & 63));
    }
    draining = false;
    curLane = 0;
}

EventQueue::DrainResult
EventQueue::drain(Tick limit)
{
    const Tick deadline = (limit == maxTick) ? maxTick : _now + limit;
    while (numPending) {
        const Tick t = ringCount ? nextRingTick() : overflow.front()->when;
        if (t > deadline)
            return DrainResult::LimitHit;
        _now = t;
        promote();
        runTick(t);
    }
    return DrainResult::Drained;
}

void
EventQueue::runUntil(Tick until)
{
    while (numPending) {
        const Tick t = ringCount ? nextRingTick() : overflow.front()->when;
        if (t > until)
            break;
        _now = t;
        promote();
        runTick(t);
    }
    if (_now < until) {
        _now = until;
        promote();
    }
}

} // namespace misar
