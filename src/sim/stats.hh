/**
 * @file
 * Lightweight statistics package.
 *
 * Components register named scalar counters, averages, and histograms
 * in a StatRegistry; harnesses query and dump them after simulation.
 */

#ifndef MISAR_SIM_STATS_HH
#define MISAR_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace misar {

/** A monotonically increasing scalar statistic. */
class StatCounter
{
  public:
    void inc(std::uint64_t n = 1) { _value += n; }
    void dec(std::uint64_t n = 1) { _value -= n; }
    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

  private:
    std::uint64_t _value = 0;
};

/** Running sample mean / min / max. */
class StatAverage
{
  public:
    void
    sample(double v)
    {
        _sum += v;
        ++_count;
        if (v < _min || _count == 1)
            _min = v;
        if (v > _max || _count == 1)
            _max = v;
    }

    double mean() const { return _count ? _sum / _count : 0.0; }
    double sum() const { return _sum; }
    std::uint64_t count() const { return _count; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }

    /** Fold another average's samples in (exact for sum/count/min/max). */
    void
    merge(const StatAverage &o)
    {
        if (!o._count)
            return;
        if (!_count) {
            _min = o._min;
            _max = o._max;
        } else {
            if (o._min < _min)
                _min = o._min;
            if (o._max > _max)
                _max = o._max;
        }
        _sum += o._sum;
        _count += o._count;
    }

    void
    reset()
    {
        _sum = 0.0;
        _count = 0;
        _min = 0.0;
        _max = 0.0;
    }

  private:
    double _sum = 0.0;
    std::uint64_t _count = 0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Fixed-bucket histogram (power-of-two buckets by default). */
class StatHistogram
{
  public:
    explicit StatHistogram(unsigned num_buckets = 20)
        : buckets(num_buckets, 0)
    {}

    /** Record @p v into its log2 bucket. */
    void sample(std::uint64_t v);

    const std::vector<std::uint64_t> &data() const { return buckets; }
    std::uint64_t total() const { return _total; }

    /** Bucket-wise accumulate (grows to the wider bucket count). */
    void merge(const StatHistogram &o);

    /** Smallest value that lands in bucket @p b (0, 2, 4, 8, ...). */
    static std::uint64_t
    bucketLow(unsigned b)
    {
        return b == 0 ? 0 : (std::uint64_t{1} << b);
    }

    void
    reset()
    {
        std::fill(buckets.begin(), buckets.end(), 0);
        _total = 0;
    }

  private:
    std::vector<std::uint64_t> buckets;
    std::uint64_t _total = 0;
};

/**
 * Registry of named statistics.
 *
 * Names are hierarchical by convention ("tile3.l1.misses"). Accessors
 * create-on-first-use so components need no registration phase.
 */
class StatRegistry
{
  public:
    StatCounter &counter(const std::string &name) { return counters[name]; }
    StatAverage &average(const std::string &name) { return averages[name]; }
    StatHistogram &histogram(const std::string &name)
    {
        return histograms[name];
    }

    /** Value of counter @p name, or 0 if it was never touched. */
    std::uint64_t counterValue(const std::string &name) const;

    /** Sum of all counters whose name matches "prefix*". */
    std::uint64_t sumCounters(const std::string &prefix) const;

    /**
     * Sum of all counters whose name ends in @p suffix (e.g.
     * ".msa.allocations" pools one stat across every tile).
     */
    std::uint64_t sumCountersSuffix(const std::string &suffix) const;

    /** Mean over all averages whose name matches "prefix*" (by sample). */
    double pooledMean(const std::string &prefix) const;

    /** @name Read-only visitors (sorted by name), for exporters. @{ */
    void forEachCounter(
        const std::function<void(const std::string &,
                                 const StatCounter &)> &fn) const;
    void forEachAverage(
        const std::function<void(const std::string &,
                                 const StatAverage &)> &fn) const;
    void forEachHistogram(
        const std::function<void(const std::string &,
                                 const StatHistogram &)> &fn) const;
    /** @} */

    /** Dump everything, sorted by name. */
    void dump(std::ostream &os) const;

    /**
     * Accumulate every stat from @p o into this registry (counters
     * add, averages fold sample moments, histograms add bucket-wise).
     * Used to collapse per-tile shards into the global registry after
     * a threaded run; the result is independent of merge order.
     */
    void mergeFrom(const StatRegistry &o);

    void reset();

  private:
    std::map<std::string, StatCounter> counters;
    std::map<std::string, StatAverage> averages;
    std::map<std::string, StatHistogram> histograms;
};

} // namespace misar

#endif // MISAR_SIM_STATS_HH
