/**
 * @file
 * Fundamental simulation types shared by every module.
 */

#ifndef MISAR_SIM_TYPES_HH
#define MISAR_SIM_TYPES_HH

#include <cstdint>

namespace misar {

/** Simulated time, in core clock cycles. */
using Tick = std::uint64_t;

/** Physical (simulated) byte address. */
using Addr = std::uint64_t;

/** Core / tile identifier. Tiles and cores are 1:1 in this model. */
using CoreId = std::uint32_t;

/**
 * Event-queue lane identifier. Lane 0 is the global lane (watchdog,
 * samplers, fault injectors, run-control); lane 1+t is tile t. See
 * sim/event_queue.hh for the ordering contract.
 */
using LaneId = std::uint32_t;

/** Sentinel for "no core". */
constexpr CoreId invalidCore = static_cast<CoreId>(-1);

/** Sentinel for "no address". */
constexpr Addr invalidAddr = static_cast<Addr>(-1);

/** Maximum tick, used as "never". */
constexpr Tick maxTick = static_cast<Tick>(-1);

/** Cache block size used throughout the memory system. */
constexpr unsigned blockBytes = 64;

/** Mask an address down to its cache block base. */
constexpr Addr
blockAlign(Addr a)
{
    return a & ~static_cast<Addr>(blockBytes - 1);
}

/** Byte offset of an address within its cache block. */
constexpr unsigned
blockOffset(Addr a)
{
    return static_cast<unsigned>(a & (blockBytes - 1));
}

} // namespace misar

#endif // MISAR_SIM_TYPES_HH
