/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A calendar queue of lane-ordered callbacks. Every event belongs to
 * a *lane*: lane 0 is the global lane (watchdog, samplers, fault
 * injectors, run-control lambdas) and lane 1+t is tile t (its core,
 * L1, router, NI, and MSA slice). Within one tick, lanes execute in
 * ascending order; within one (tick, lane) cell, events execute in
 * ascending (sendTick, senderLane) order, FIFO per sender. This
 * contract is what makes parallel tile-partitioned execution
 * (sim/parallel.hh) produce the same trajectory as serial execution:
 * the key is a property of the *sender*, not of host-side insertion
 * order, so it is invariant under any partitioning of lanes onto
 * threads.
 *
 * Implementation: a two-level calendar queue tuned for the host-side
 * hot path. Near-future events (within `window` ticks of now) live in
 * a ring of per-tick FIFO buckets indexed by tick modulo the window;
 * an occupancy bitmap makes "next non-empty bucket" a few word scans.
 * Far-future events (watchdog sweeps, invariant checks, samplers)
 * wait in a min-heap and are promoted into the ring as the clock
 * advances. At each occupied tick the bucket is scattered into
 * per-lane chains (lane occupancy is itself a bitmap); a chain is
 * stable-sorted by (sendTick, senderLane) only when the scatter finds
 * it out of order, which never happens in serial runs — serial
 * execution appends in exactly that order — and only happens in
 * threaded runs for cells that received cross-partition mailbox
 * deliveries. Event records come from a free-list pool and store
 * their callback inline in a small buffer, so the steady-state event
 * loop performs no heap allocation at all (see poolStats()).
 *
 * Determinism contract: execution order is exactly ascending
 * (tick, lane, sendTick, senderLane, per-sender FIFO). A single-lane
 * queue (the default: numLanes == 1) degenerates to plain
 * (tick, insertion sequence) order, bit-identical to the pre-lane
 * kernel.
 */

#ifndef MISAR_SIM_EVENT_QUEUE_HH
#define MISAR_SIM_EVENT_QUEUE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace misar {

/**
 * The simulation event queue and clock.
 *
 * All simulated components of one partition share one EventQueue
 * (serial runs have a single partition spanning every lane).
 * Components schedule callbacks at absolute or relative ticks;
 * run() drains the queue in (tick, lane, sender-order) order.
 */
class EventQueue
{
  public:
    /** Legacy callback alias; schedule() takes any callable. */
    using Callback = std::function<void()>;

    /** Why drain() returned. */
    enum class DrainResult
    {
        Drained,  ///< queue empty: the simulation quiesced cleanly
        LimitHit, ///< tick limit reached with events still pending
    };

    /** Allocation counters of the event machinery (run reports). */
    struct PoolStats
    {
        /** Event records carved out of pool chunks so far. */
        std::uint64_t recordCapacity = 0;
        /** Pool chunk heap allocations (stable once warmed up). */
        std::uint64_t chunkAllocs = 0;
        /** Callbacks too large for the inline buffer (heap boxed). */
        std::uint64_t heapCallbacks = 0;
        /** Total events ever scheduled. */
        std::uint64_t scheduled = 0;
        /** High-water mark of simultaneously pending events. */
        std::uint64_t maxPending = 0;
        /** Lane chains re-sorted at drain (cross-partition merges). */
        std::uint64_t laneSorts = 0;
    };

    /**
     * Hook routing cross-partition events to their owning queue
     * (sim/parallel.cc installs one per worker). Receives the
     * destination lane, absolute tick, and the sender's identity so
     * the receiving queue can file the event under the same
     * deterministic key it would have had if inserted inline.
     */
    using CrossHook = void (*)(void *ctx, LaneId dstLane, Tick when,
                               Tick sendTick, LaneId senderLane,
                               Callback fn);

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /**
     * Declare the lane id space [0, n). Grows only; lane arrays are
     * reused across ticks. Single-lane queues (never calling this)
     * behave exactly like the pre-lane kernel.
     */
    void setNumLanes(LaneId n);

    /** Number of configured lanes. */
    LaneId laneCount() const { return numLanes; }

    /** Lane of the event currently executing (0 outside a drain). */
    LaneId currentLane() const { return curLane; }

    /** Schedule @p f on the *current* lane @p delay ticks from now. */
    template <typename F>
    void
    schedule(Tick delay, F &&f)
    {
        scheduleAtL(curLane, _now + delay, std::forward<F>(f));
    }

    /** Schedule @p f on the current lane at absolute tick @p when. */
    template <typename F>
    void
    scheduleAt(Tick when, F &&f)
    {
        scheduleAtL(curLane, when, std::forward<F>(f));
    }

    /** Schedule @p f on lane @p lane, @p delay ticks from now. */
    template <typename F>
    void
    scheduleL(LaneId lane, Tick delay, F &&f)
    {
        scheduleAtL(lane, _now + delay, std::forward<F>(f));
    }

    /**
     * Schedule @p f on lane @p lane at absolute tick @p when.
     * @pre when >= now() — enforced with a panic.
     * @pre when > now() or lane >= currentLane() — an event cannot be
     *      scheduled into a same-tick lane that already ran.
     */
    template <typename F>
    void
    scheduleAtL(LaneId lane, Tick when, F &&f)
    {
        EventRecord *r = prepareRecord(lane, when);
        storeCallable(r, std::forward<F>(f));
        insert(r);
    }

    /**
     * Schedule onto a lane that may be owned by another partition's
     * queue. Serial runs (no hook installed) and in-partition lanes
     * insert inline; foreign lanes are handed to the cross hook,
     * which mails them to the owning queue. Cross-partition events
     * must carry at least one tick of latency (the PDES lookahead
     * window) — a zero-delay foreign send panics.
     */
    template <typename F>
    void
    scheduleCross(LaneId dstLane, Tick delay, F &&f)
    {
        if (!crossHook || (dstLane >= ownLaneBegin && dstLane < ownLaneEnd)) {
            scheduleAtL(dstLane, _now + delay, std::forward<F>(f));
            return;
        }
        if (delay == 0)
            panic("zero-delay cross-partition event to lane %u", dstLane);
        crossHook(crossCtx, dstLane, _now + delay, _now, curLane,
                  Callback(std::forward<F>(f)));
    }

    /**
     * Install the cross-partition routing hook. Lanes in
     * [ownBegin, ownEnd) are owned by this queue and keep inserting
     * inline; everything else is routed through @p hook.
     */
    void
    setCrossHook(void *ctx, CrossHook hook, LaneId ownBegin, LaneId ownEnd)
    {
        crossCtx = ctx;
        crossHook = hook;
        ownLaneBegin = ownBegin;
        ownLaneEnd = ownEnd;
    }

    /**
     * Insert an event delivered from another partition's mailbox,
     * preserving the sender's deterministic ordering key. Only the
     * parallel kernel calls this, between tick barriers.
     */
    void insertForeign(LaneId lane, Tick when, Tick sendTick,
                       LaneId senderLane, Callback fn);

    /** True when no events remain. */
    bool empty() const { return numPending == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return numPending; }

    /**
     * Run until the queue drains or @p limit ticks elapse. Returns
     * why it stopped, so callers can tell clean termination from a
     * livelock/deadlock (events still pending at the limit).
     */
    DrainResult drain(Tick limit = maxTick);

    /** Compatibility wrapper: true iff the queue drained. */
    bool
    run(Tick limit = maxTick)
    {
        return drain(limit) == DrainResult::Drained;
    }

    /** Run until now() would exceed @p until (events at @p until run). */
    void runUntil(Tick until);

    /** Earliest pending tick, or maxTick when empty. */
    Tick
    nextEventTick() const
    {
        if (!numPending)
            return maxTick;
        return ringCount ? nextRingTick() : overflow.front()->when;
    }

    /**
     * Advance the clock to @p t without executing anything (the
     * parallel kernel aligns partition clocks at each barrier).
     * @pre no pending event earlier than @p t.
     */
    void
    advanceTo(Tick t)
    {
        if (t <= _now)
            return;
        if (numPending && nextEventTick() < t)
            panic("advanceTo(%llu) would skip a pending event at %llu",
                  static_cast<unsigned long long>(t),
                  static_cast<unsigned long long>(nextEventTick()));
        _now = t;
        promote();
    }

    /** Execute every event at tick @p t. @pre t == now(). */
    void runTick(Tick t);

    /** Total number of events executed so far. */
    std::uint64_t executedEvents() const { return executed; }

    /** Allocation counters (zero steady-state allocation evidence). */
    const PoolStats &poolStats() const { return pstats; }

  private:
    /** log2 of the near-future window (ring size in ticks). */
    static constexpr unsigned bucketBits = 12;
    /** Near-future window: one bucket per tick in [now, now+window). */
    static constexpr Tick window = Tick{1} << bucketBits;
    static constexpr std::size_t numBuckets = std::size_t{1} << bucketBits;
    static constexpr std::size_t bucketMask = numBuckets - 1;
    static constexpr std::size_t numWords = numBuckets / 64;
    /** Inline callback buffer: sized for the fattest hot-path lambda
     *  (L1 atomic: this + addr + op + 2 operands + block + bound
     *  std::function callback) with headroom. */
    static constexpr std::size_t inlineBytes = 96;
    /** Event records per pool chunk. */
    static constexpr std::size_t chunkSize = 512;

    struct EventRecord
    {
        Tick when;
        Tick sendTick;
        std::uint64_t seq;
        LaneId lane;
        LaneId senderLane;
        EventRecord *next;
        /** Run (and destroy) or just destroy the stored callable. */
        void (*op)(EventRecord *, bool run);
        alignas(std::max_align_t) unsigned char storage[inlineBytes];
    };

    struct Bucket
    {
        EventRecord *head = nullptr;
        EventRecord *tail = nullptr;
    };

    /** Per-lane FIFO chain, rebuilt from the tick bucket each drain. */
    struct Lane
    {
        EventRecord *head = nullptr;
        EventRecord *tail = nullptr;
        /** Scatter saw an out-of-key-order append (needs a sort). */
        bool dirty = false;
    };

    template <typename Fn>
    static void
    opInline(EventRecord *r, bool run)
    {
        Fn *f = std::launder(reinterpret_cast<Fn *>(r->storage));
        if (run)
            (*f)();
        f->~Fn();
    }

    template <typename Fn>
    static void
    opBoxed(EventRecord *r, bool run)
    {
        Fn **p = std::launder(reinterpret_cast<Fn **>(r->storage));
        if (run)
            (**p)();
        delete *p;
    }

    /** Min-heap order for the far-future overflow heap. */
    static bool
    later(const EventRecord *a, const EventRecord *b)
    {
        if (a->when != b->when)
            return a->when > b->when;
        return a->seq > b->seq;
    }

    /** Sender key: drains execute each (tick, lane) cell in this
     *  order, FIFO per equal key (stable sort). */
    static bool
    senderBefore(const EventRecord *a, const EventRecord *b)
    {
        if (a->sendTick != b->sendTick)
            return a->sendTick < b->sendTick;
        return a->senderLane < b->senderLane;
    }

    /** Allocate and key a record (shared by every schedule path). */
    EventRecord *
    prepareRecord(LaneId lane, Tick when)
    {
        if (when < _now)
            panic("event scheduled in the past (%llu < %llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(_now));
        if (lane >= numLanes)
            panic("event on lane %u but only %u lanes configured",
                  lane, numLanes);
        EventRecord *r = allocRecord();
        r->when = when;
        r->sendTick = _now;
        r->seq = nextSeq++;
        r->lane = lane;
        r->senderLane = curLane;
        return r;
    }

    template <typename F>
    void
    storeCallable(EventRecord *r, F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= inlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(r->storage))
                Fn(std::forward<F>(f));
            r->op = &opInline<Fn>;
        } else {
            ::new (static_cast<void *>(r->storage))
                (Fn *)(new Fn(std::forward<F>(f)));
            r->op = &opBoxed<Fn>;
            ++pstats.heapCallbacks;
        }
    }

    EventRecord *allocRecord();
    void growPool();

    void
    freeRecord(EventRecord *r)
    {
        r->next = freeHead;
        freeHead = r;
    }

    /** File @p r into its ring bucket, lane chain, or overflow heap. */
    void insert(EventRecord *r);

    /** Append to the FIFO bucket for r->when (must be in-window). */
    void appendBucket(EventRecord *r);

    /** Append @p r to its lane chain (same-tick insert mid-drain). */
    void appendLane(EventRecord *r);

    /** Stable-sort lane @p l by sender key (cross-partition merge). */
    void sortLane(LaneId l);

    /** Promote far-future events now inside [now, now+window). */
    void promote();

    /** Earliest ring tick; ring must be non-empty. */
    Tick nextRingTick() const;

    /** Lowest occupied lane >= @p from, or numLanes when none. */
    LaneId
    nextOccupiedLane(LaneId from) const
    {
        std::size_t w = from >> 6;
        const std::size_t words = laneOcc.size();
        if (w >= words)
            return numLanes;
        std::uint64_t word = laneOcc[w] & (~std::uint64_t{0} << (from & 63));
        while (true) {
            if (word)
                return static_cast<LaneId>(
                    (w << 6) | static_cast<std::size_t>(
                                   std::countr_zero(word)));
            if (++w >= words)
                return numLanes;
            word = laneOcc[w];
        }
    }

    std::vector<Bucket> buckets{numBuckets};
    /** One occupancy bit per bucket. */
    std::vector<std::uint64_t> occ = std::vector<std::uint64_t>(numWords, 0);
    /** Far-future events as a (when, seq) min-heap. */
    std::vector<EventRecord *> overflow;
    std::size_t ringCount = 0;
    std::size_t numPending = 0;

    /** Per-lane drain chains + occupancy bitmap (reused each tick). */
    LaneId numLanes = 1;
    std::vector<Lane> lanes = std::vector<Lane>(1);
    std::vector<std::uint64_t> laneOcc = std::vector<std::uint64_t>(1, 0);
    /** Scratch buffer for sortLane. */
    std::vector<EventRecord *> sortScratch;

    /** True while runTick executes (same-tick inserts go to chains). */
    bool draining = false;

    /** Cross-partition routing (null in serial runs). */
    void *crossCtx = nullptr;
    CrossHook crossHook = nullptr;
    LaneId ownLaneBegin = 0;
    LaneId ownLaneEnd = 0;

    /** Free-list over pool chunk records. */
    EventRecord *freeHead = nullptr;
    std::vector<std::unique_ptr<EventRecord[]>> chunks;
    PoolStats pstats;

    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    LaneId curLane = 0;
};

} // namespace misar

#endif // MISAR_SIM_EVENT_QUEUE_HH
