/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered queue of (tick, sequence) keyed callbacks.
 * Events scheduled for the same tick execute in scheduling order,
 * which keeps the whole simulation deterministic.
 */

#ifndef MISAR_SIM_EVENT_QUEUE_HH
#define MISAR_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace misar {

/**
 * The simulation event queue and clock.
 *
 * All simulated components share one EventQueue. Components schedule
 * callbacks at absolute or relative ticks; run() drains the queue in
 * (tick, insertion-order) order.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Why drain() returned. */
    enum class DrainResult
    {
        Drained,  ///< queue empty: the simulation quiesced cleanly
        LimitHit, ///< tick limit reached with events still pending
    };

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p cb to run @p delay ticks from now. */
    void
    schedule(Tick delay, Callback cb)
    {
        scheduleAt(_now + delay, std::move(cb));
    }

    /**
     * Schedule @p cb at absolute tick @p when.
     * @pre when >= now()
     */
    void scheduleAt(Tick when, Callback cb);

    /** True when no events remain. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events.size(); }

    /**
     * Run until the queue drains or @p limit ticks elapse. Returns
     * why it stopped, so callers can tell clean termination from a
     * livelock/deadlock (events still pending at the limit).
     */
    DrainResult drain(Tick limit = maxTick);

    /** Compatibility wrapper: true iff the queue drained. */
    bool
    run(Tick limit = maxTick)
    {
        return drain(limit) == DrainResult::Drained;
    }

    /** Run until now() would exceed @p until (events at @p until run). */
    void runUntil(Tick until);

    /** Total number of events executed so far. */
    std::uint64_t executedEvents() const { return executed; }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events;
    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

} // namespace misar

#endif // MISAR_SIM_EVENT_QUEUE_HH
