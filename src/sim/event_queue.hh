/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single global-ordered queue of (tick, sequence) keyed callbacks.
 * Events scheduled for the same tick execute in scheduling order,
 * which keeps the whole simulation deterministic.
 *
 * Implementation: a two-level calendar queue tuned for the host-side
 * hot path. Near-future events (within `window` ticks of now) live in
 * a ring of per-tick FIFO buckets indexed by tick modulo the window;
 * an occupancy bitmap makes "next non-empty bucket" a few word scans.
 * Far-future events (watchdog sweeps, invariant checks, samplers)
 * wait in a min-heap and are promoted into the ring as the clock
 * advances. Event records come from a free-list pool and store their
 * callback inline in a small buffer, so the steady-state event loop
 * performs no heap allocation at all (see poolStats()).
 *
 * Determinism contract: execution order is exactly ascending
 * (tick, insertion sequence) — bit-identical to draining a single
 * binary heap keyed the same way. The promotion boundary only ever
 * moves when now() advances, and promotion drains the far heap in
 * (tick, seq) order before any newer same-tick insertion can enter a
 * bucket, so bucket FIFO order always equals sequence order.
 */

#ifndef MISAR_SIM_EVENT_QUEUE_HH
#define MISAR_SIM_EVENT_QUEUE_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace misar {

/**
 * The simulation event queue and clock.
 *
 * All simulated components share one EventQueue. Components schedule
 * callbacks at absolute or relative ticks; run() drains the queue in
 * (tick, insertion-order) order.
 */
class EventQueue
{
  public:
    /** Legacy callback alias; schedule() takes any callable. */
    using Callback = std::function<void()>;

    /** Why drain() returned. */
    enum class DrainResult
    {
        Drained,  ///< queue empty: the simulation quiesced cleanly
        LimitHit, ///< tick limit reached with events still pending
    };

    /** Allocation counters of the event machinery (run reports). */
    struct PoolStats
    {
        /** Event records carved out of pool chunks so far. */
        std::uint64_t recordCapacity = 0;
        /** Pool chunk heap allocations (stable once warmed up). */
        std::uint64_t chunkAllocs = 0;
        /** Callbacks too large for the inline buffer (heap boxed). */
        std::uint64_t heapCallbacks = 0;
        /** Total events ever scheduled. */
        std::uint64_t scheduled = 0;
        /** High-water mark of simultaneously pending events. */
        std::uint64_t maxPending = 0;
    };

    EventQueue();
    ~EventQueue();
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return _now; }

    /** Schedule @p f to run @p delay ticks from now. */
    template <typename F>
    void
    schedule(Tick delay, F &&f)
    {
        scheduleAt(_now + delay, std::forward<F>(f));
    }

    /**
     * Schedule @p f at absolute tick @p when.
     * @pre when >= now() — enforced with a panic.
     */
    template <typename F>
    void
    scheduleAt(Tick when, F &&f)
    {
        using Fn = std::decay_t<F>;
        if (when < _now)
            panic("event scheduled in the past (%llu < %llu)",
                  static_cast<unsigned long long>(when),
                  static_cast<unsigned long long>(_now));
        EventRecord *r = allocRecord();
        r->when = when;
        r->seq = nextSeq++;
        if constexpr (sizeof(Fn) <= inlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(r->storage))
                Fn(std::forward<F>(f));
            r->op = &opInline<Fn>;
        } else {
            ::new (static_cast<void *>(r->storage))
                (Fn *)(new Fn(std::forward<F>(f)));
            r->op = &opBoxed<Fn>;
            ++pstats.heapCallbacks;
        }
        insert(r);
    }

    /** True when no events remain. */
    bool empty() const { return numPending == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return numPending; }

    /**
     * Run until the queue drains or @p limit ticks elapse. Returns
     * why it stopped, so callers can tell clean termination from a
     * livelock/deadlock (events still pending at the limit).
     */
    DrainResult drain(Tick limit = maxTick);

    /** Compatibility wrapper: true iff the queue drained. */
    bool
    run(Tick limit = maxTick)
    {
        return drain(limit) == DrainResult::Drained;
    }

    /** Run until now() would exceed @p until (events at @p until run). */
    void runUntil(Tick until);

    /** Total number of events executed so far. */
    std::uint64_t executedEvents() const { return executed; }

    /** Allocation counters (zero steady-state allocation evidence). */
    const PoolStats &poolStats() const { return pstats; }

  private:
    /** log2 of the near-future window (ring size in ticks). */
    static constexpr unsigned bucketBits = 12;
    /** Near-future window: one bucket per tick in [now, now+window). */
    static constexpr Tick window = Tick{1} << bucketBits;
    static constexpr std::size_t numBuckets = std::size_t{1} << bucketBits;
    static constexpr std::size_t bucketMask = numBuckets - 1;
    static constexpr std::size_t numWords = numBuckets / 64;
    /** Inline callback buffer: sized for the fattest hot-path lambda
     *  (L1 atomic: this + addr + op + 2 operands + block + bound
     *  std::function callback) with headroom. */
    static constexpr std::size_t inlineBytes = 96;
    /** Event records per pool chunk. */
    static constexpr std::size_t chunkSize = 512;

    struct EventRecord
    {
        Tick when;
        std::uint64_t seq;
        EventRecord *next;
        /** Run (and destroy) or just destroy the stored callable. */
        void (*op)(EventRecord *, bool run);
        alignas(std::max_align_t) unsigned char storage[inlineBytes];
    };

    struct Bucket
    {
        EventRecord *head = nullptr;
        EventRecord *tail = nullptr;
    };

    template <typename Fn>
    static void
    opInline(EventRecord *r, bool run)
    {
        Fn *f = std::launder(reinterpret_cast<Fn *>(r->storage));
        if (run)
            (*f)();
        f->~Fn();
    }

    template <typename Fn>
    static void
    opBoxed(EventRecord *r, bool run)
    {
        Fn **p = std::launder(reinterpret_cast<Fn **>(r->storage));
        if (run)
            (**p)();
        delete *p;
    }

    /** Min-heap order for the far-future overflow heap. */
    static bool
    later(const EventRecord *a, const EventRecord *b)
    {
        if (a->when != b->when)
            return a->when > b->when;
        return a->seq > b->seq;
    }

    EventRecord *allocRecord();
    void growPool();

    void
    freeRecord(EventRecord *r)
    {
        r->next = freeHead;
        freeHead = r;
    }

    /** File @p r into its ring bucket or the overflow heap. */
    void insert(EventRecord *r);

    /** Append to the FIFO bucket for r->when (must be in-window). */
    void appendBucket(EventRecord *r);

    /** Promote far-future events now inside [now, now+window). */
    void promote();

    /** Earliest ring tick; ring must be non-empty. */
    Tick nextRingTick() const;

    /** Execute every event at tick @p t (bucket emptied). */
    void runBucket(Tick t);

    std::vector<Bucket> buckets{numBuckets};
    /** One occupancy bit per bucket. */
    std::vector<std::uint64_t> occ = std::vector<std::uint64_t>(numWords, 0);
    /** Far-future events as a (when, seq) min-heap. */
    std::vector<EventRecord *> overflow;
    std::size_t ringCount = 0;
    std::size_t numPending = 0;

    /** Free-list over pool chunk records. */
    EventRecord *freeHead = nullptr;
    std::vector<std::unique_ptr<EventRecord[]>> chunks;
    PoolStats pstats;

    Tick _now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

} // namespace misar

#endif // MISAR_SIM_EVENT_QUEUE_HH
