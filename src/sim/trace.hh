/**
 * @file
 * Per-core operation timeline tracing.
 *
 * When enabled, every operation a core executes (compute, memory,
 * sync instruction) is recorded with its start/end ticks. The
 * timeline can be exported in Chrome trace-event JSON ("catapult"
 * format) and opened in chrome://tracing or https://ui.perfetto.dev
 * to see exactly where threads wait.
 *
 * Multi-component tracing (MSA slices, NoC, cross-component sync
 * flows) lives in obs/tracer.hh and shares this buffer type.
 */

#ifndef MISAR_SIM_TRACE_HH
#define MISAR_SIM_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace misar {

/** One completed operation on a core's timeline. */
struct TraceEvent
{
    Tick start;
    Tick end;
    /** Short label, e.g. "LOCK", "read", "compute". */
    const char *name;
    /** Extra detail (sync address etc.), 0 if unused. */
    Addr addr;
};

/**
 * Per-core timeline container.
 *
 * Growth is bounded: once @ref setCap 's limit is reached, further
 * events are counted in @ref dropped instead of stored, so leaving
 * tracing on for a long fuzz run cannot exhaust memory.
 */
class TraceBuffer
{
  public:
    /** Default per-buffer event cap (see setCap). */
    static constexpr std::size_t defaultCap = 1u << 20;

    void
    record(Tick start, Tick end, const char *name, Addr addr = 0)
    {
        if (!_enabled)
            return;
        if (events.size() >= _cap) {
            ++_dropped;
            return;
        }
        events.push_back(TraceEvent{start, end, name, addr});
    }

    void setEnabled(bool on) { _enabled = on; }
    bool enabled() const { return _enabled; }

    /** Bound the buffer to @p cap events (0 means "drop everything"). */
    void setCap(std::size_t cap) { _cap = cap; }
    std::size_t cap() const { return _cap; }

    /** Events discarded because the cap was hit. */
    std::uint64_t dropped() const { return _dropped; }

    const std::vector<TraceEvent> &data() const { return events; }

  private:
    bool _enabled = false;
    std::size_t _cap = defaultCap;
    std::uint64_t _dropped = 0;
    std::vector<TraceEvent> events;
};

/** Escape @p s for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Write Chrome trace-event JSON for a set of per-core timelines.
 * Ticks are reported as microseconds so the viewers render nicely
 * (1 cycle == 1 "us" in the viewer). Emits thread-name metadata so
 * each row is labeled, and escapes all labels.
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<const TraceBuffer *> &cores);

} // namespace misar

#endif // MISAR_SIM_TRACE_HH
