/**
 * @file
 * Per-core operation timeline tracing.
 *
 * When enabled, every operation a core executes (compute, memory,
 * sync instruction) is recorded with its start/end ticks. The
 * timeline can be exported in Chrome trace-event JSON ("catapult"
 * format) and opened in chrome://tracing or https://ui.perfetto.dev
 * to see exactly where threads wait.
 */

#ifndef MISAR_SIM_TRACE_HH
#define MISAR_SIM_TRACE_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace misar {

/** One completed operation on a core's timeline. */
struct TraceEvent
{
    Tick start;
    Tick end;
    /** Short label, e.g. "LOCK", "read", "compute". */
    const char *name;
    /** Extra detail (sync address etc.), 0 if unused. */
    Addr addr;
};

/** Per-core timeline container. */
class TraceBuffer
{
  public:
    void
    record(Tick start, Tick end, const char *name, Addr addr = 0)
    {
        if (_enabled)
            events.push_back(TraceEvent{start, end, name, addr});
    }

    void setEnabled(bool on) { _enabled = on; }
    bool enabled() const { return _enabled; }
    const std::vector<TraceEvent> &data() const { return events; }

  private:
    bool _enabled = false;
    std::vector<TraceEvent> events;
};

/**
 * Write Chrome trace-event JSON for a set of per-core timelines.
 * Ticks are reported as microseconds so the viewers render nicely
 * (1 cycle == 1 "us" in the viewer).
 */
void writeChromeTrace(std::ostream &os,
                      const std::vector<const TraceBuffer *> &cores);

} // namespace misar

#endif // MISAR_SIM_TRACE_HH
