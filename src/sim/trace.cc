#include "sim/trace.hh"

namespace misar {

void
writeChromeTrace(std::ostream &os,
                 const std::vector<const TraceBuffer *> &cores)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    for (std::size_t tid = 0; tid < cores.size(); ++tid) {
        if (!cores[tid])
            continue;
        for (const TraceEvent &e : cores[tid]->data()) {
            if (!first)
                os << ",";
            first = false;
            os << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid
               << ",\"ts\":" << e.start
               << ",\"dur\":" << (e.end - e.start) << ",\"name\":\""
               << e.name << "\"";
            if (e.addr) {
                os << ",\"args\":{\"addr\":\"0x" << std::hex << e.addr
                   << std::dec << "\"}";
            }
            os << "}";
        }
    }
    os << "],\"displayTimeUnit\":\"ns\"}\n";
}

} // namespace misar
