#include "sim/trace.hh"

namespace misar {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                static const char *hex = "0123456789abcdef";
                out += "\\u00";
                out += hex[(c >> 4) & 0xf];
                out += hex[c & 0xf];
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
writeChromeTrace(std::ostream &os,
                 const std::vector<const TraceBuffer *> &cores)
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
    };
    // Metadata first: label the process and each core's row so the
    // viewers show "core N" instead of a bare thread id.
    sep();
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"cores\"}}";
    for (std::size_t tid = 0; tid < cores.size(); ++tid) {
        if (!cores[tid])
            continue;
        sep();
        os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\"core "
           << tid << "\"}}";
    }
    for (std::size_t tid = 0; tid < cores.size(); ++tid) {
        if (!cores[tid])
            continue;
        for (const TraceEvent &e : cores[tid]->data()) {
            sep();
            os << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid
               << ",\"ts\":" << e.start
               << ",\"dur\":" << (e.end - e.start) << ",\"name\":\""
               << jsonEscape(e.name ? e.name : "") << "\"";
            if (e.addr) {
                os << ",\"args\":{\"addr\":\"0x" << std::hex << e.addr
                   << std::dec << "\"}";
            }
            os << "}";
        }
    }
    os << "],\"displayTimeUnit\":\"ns\"}\n";
}

} // namespace misar
