/**
 * @file
 * Open-addressed flat hash map for hot simulation paths.
 *
 * A minimal replacement for the std::map instances that sat on the
 * simulator's innermost loops (L1 deferred-snoop table, NI packet
 * reassembly, MSA entry index). Power-of-two capacity, linear
 * probing, and deletion by backward shifting (no tombstones), so
 * lookups stay a handful of contiguous probes even after heavy
 * insert/erase churn. Keys are 64-bit integers; values are movable.
 *
 * Not a general-purpose container: no iterators (the hot paths only
 * ever probe by key), no allocator hooks, and growth doubles in
 * place. Iteration order would be hash order anyway, which no
 * deterministic simulation code should depend on.
 */

#ifndef MISAR_SIM_FLAT_MAP_HH
#define MISAR_SIM_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace misar {

/** Open-addressed hash map with 64-bit integer keys. */
template <typename K, typename V>
class FlatMap
{
    static_assert(sizeof(K) <= 8, "FlatMap keys must be integral, <=64bit");

  public:
    explicit FlatMap(std::size_t initial_capacity = 16)
    {
        std::size_t cap = 8;
        while (cap < initial_capacity)
            cap <<= 1;
        slots.resize(cap);
    }

    std::size_t size() const { return used; }
    bool empty() const { return used == 0; }

    /** True when @p key is present. */
    bool contains(const K &key) const { return findSlot(key) != npos; }

    /** Pointer to the mapped value, or nullptr when absent. */
    V *
    find(const K &key)
    {
        std::size_t i = findSlot(key);
        return i == npos ? nullptr : &slots[i].value;
    }

    const V *
    find(const K &key) const
    {
        std::size_t i = findSlot(key);
        return i == npos ? nullptr : &slots[i].value;
    }

    /**
     * Reference to the value for @p key, default-constructing it on
     * first use (std::map::operator[] semantics).
     */
    V &
    operator[](const K &key)
    {
        std::size_t i = findSlot(key);
        if (i != npos)
            return slots[i].value;
        maybeGrow();
        i = insertionSlot(key);
        slots[i].occupied = true;
        slots[i].key = key;
        slots[i].value = V{};
        ++used;
        return slots[i].value;
    }

    /** Insert or overwrite. */
    void
    insert(const K &key, V value)
    {
        (*this)[key] = std::move(value);
    }

    /**
     * Remove @p key and return its value (default-constructed V when
     * the key was absent). Erasing the only deferred message / last
     * reassembly row is the common case, so take-and-erase is fused.
     */
    V
    take(const K &key)
    {
        std::size_t i = findSlot(key);
        if (i == npos)
            return V{};
        V out = std::move(slots[i].value);
        eraseSlot(i);
        return out;
    }

    /** Remove @p key; true if it was present. */
    bool
    erase(const K &key)
    {
        std::size_t i = findSlot(key);
        if (i == npos)
            return false;
        eraseSlot(i);
        return true;
    }

    void
    clear()
    {
        for (Slot &s : slots) {
            s.occupied = false;
            s.value = V{};
        }
        used = 0;
    }

  private:
    struct Slot
    {
        K key{};
        V value{};
        bool occupied = false;
    };

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    std::size_t mask() const { return slots.size() - 1; }

    /** splitmix64 finalizer: block addresses share low zero bits. */
    static std::size_t
    hash(K key)
    {
        std::uint64_t x = static_cast<std::uint64_t>(key);
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }

    std::size_t
    findSlot(const K &key) const
    {
        std::size_t i = hash(key) & mask();
        while (slots[i].occupied) {
            if (slots[i].key == key)
                return i;
            i = (i + 1) & mask();
        }
        return npos;
    }

    /** First free slot of @p key's probe chain (key must be absent). */
    std::size_t
    insertionSlot(const K &key) const
    {
        std::size_t i = hash(key) & mask();
        while (slots[i].occupied)
            i = (i + 1) & mask();
        return i;
    }

    void
    maybeGrow()
    {
        if ((used + 1) * 4 < slots.size() * 3) // load factor 0.75
            return;
        std::vector<Slot> old = std::move(slots);
        slots.clear();
        slots.resize(old.size() * 2);
        for (Slot &s : old) {
            if (!s.occupied)
                continue;
            std::size_t i = insertionSlot(s.key);
            slots[i].occupied = true;
            slots[i].key = s.key;
            slots[i].value = std::move(s.value);
        }
    }

    /**
     * Backward-shift deletion (Knuth 6.4 R): walk the probe chain
     * after the hole and move back any entry whose home slot means it
     * is only reachable through the hole.
     */
    void
    eraseSlot(std::size_t i)
    {
        slots[i].occupied = false;
        slots[i].value = V{};
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask();
            if (!slots[j].occupied)
                break;
            const std::size_t home = hash(slots[j].key) & mask();
            // Move j back to i unless home lies cyclically in (i, j].
            const bool home_between = (j >= i) ? (home > i && home <= j)
                                               : (home > i || home <= j);
            if (home_between)
                continue;
            slots[i].occupied = true;
            slots[i].key = slots[j].key;
            slots[i].value = std::move(slots[j].value);
            slots[j].occupied = false;
            slots[j].value = V{};
            i = j;
        }
        --used;
    }

    std::vector<Slot> slots;
    std::size_t used = 0;
};

} // namespace misar

#endif // MISAR_SIM_FLAT_MAP_HH
