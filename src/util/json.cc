#include "util/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/trace.hh" // jsonEscape

namespace misar {
namespace util {

const Json &
Json::at(const std::string &key) const
{
    static const Json none;
    if (kind != Obj)
        return none;
    auto it = obj.find(key);
    return it == obj.end() ? none : it->second;
}

bool
Json::has(const std::string &key) const
{
    return kind == Obj && obj.count(key) > 0;
}

namespace {

class Parser
{
  public:
    explicit Parser(const std::string &text) : s(text) {}

    Json
    parse(std::string *err)
    {
        Json v = value();
        skipWs();
        if (!failed && pos != s.size())
            fail("trailing characters after document");
        if (failed) {
            if (err) {
                std::ostringstream os;
                os << "JSON parse error at offset " << errPos << ": "
                   << errMsg;
                *err = os.str();
            }
            return Json{};
        }
        return v;
    }

  private:
    void
    fail(const std::string &msg)
    {
        if (!failed) {
            failed = true;
            errMsg = msg;
            errPos = pos;
        }
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *lit)
    {
        std::size_t n = std::char_traits<char>::length(lit);
        if (s.compare(pos, n, lit) != 0) {
            fail(std::string("expected '") + lit + "'");
            return false;
        }
        pos += n;
        return true;
    }

    Json
    value()
    {
        skipWs();
        if (failed || pos >= s.size()) {
            fail("unexpected end of input");
            return Json{};
        }
        switch (s[pos]) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return string();
          case 't': {
            Json v;
            v.kind = Json::Bool;
            v.boolean = true;
            literal("true");
            return failed ? Json{} : v;
          }
          case 'f': {
            Json v;
            v.kind = Json::Bool;
            v.boolean = false;
            literal("false");
            return failed ? Json{} : v;
          }
          case 'n':
            literal("null");
            return Json{};
          default:
            return number();
        }
    }

    Json
    number()
    {
        const char *begin = s.c_str() + pos;
        char *end = nullptr;
        double d = std::strtod(begin, &end);
        if (end == begin) {
            fail("expected a value");
            return Json{};
        }
        pos += static_cast<std::size_t>(end - begin);
        Json v;
        v.kind = Json::Num;
        v.num = d;
        return v;
    }

    Json
    string()
    {
        Json v;
        v.kind = Json::Str;
        ++pos; // opening quote
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c != '\\') {
                v.str.push_back(c);
                continue;
            }
            if (pos >= s.size())
                break;
            char e = s[pos++];
            switch (e) {
              case '"': v.str.push_back('"'); break;
              case '\\': v.str.push_back('\\'); break;
              case '/': v.str.push_back('/'); break;
              case 'b': v.str.push_back('\b'); break;
              case 'f': v.str.push_back('\f'); break;
              case 'n': v.str.push_back('\n'); break;
              case 'r': v.str.push_back('\r'); break;
              case 't': v.str.push_back('\t'); break;
              case 'u': {
                if (pos + 4 > s.size()) {
                    fail("truncated \\u escape");
                    return Json{};
                }
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad \\u escape");
                        return Json{};
                    }
                }
                // UTF-8 encode the code point (no surrogate pairing;
                // our own emitter only escapes control characters).
                if (cp < 0x80) {
                    v.str.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    v.str.push_back(static_cast<char>(0xC0 | (cp >> 6)));
                    v.str.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                } else {
                    v.str.push_back(static_cast<char>(0xE0 | (cp >> 12)));
                    v.str.push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                    v.str.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
                }
                break;
              }
              default:
                fail("bad escape character");
                return Json{};
            }
        }
        if (pos >= s.size()) {
            fail("unterminated string");
            return Json{};
        }
        ++pos; // closing quote
        return v;
    }

    Json
    array()
    {
        Json v;
        v.kind = Json::Arr;
        ++pos; // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return v;
        }
        while (!failed) {
            v.arr.push_back(value());
            skipWs();
            if (pos >= s.size()) {
                fail("unterminated array");
                return Json{};
            }
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                return v;
            }
            fail("expected ',' or ']'");
        }
        return Json{};
    }

    Json
    object()
    {
        Json v;
        v.kind = Json::Obj;
        ++pos; // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return v;
        }
        while (!failed) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"') {
                fail("expected a member name");
                return Json{};
            }
            Json key = string();
            skipWs();
            if (failed || pos >= s.size() || s[pos] != ':') {
                fail("expected ':'");
                return Json{};
            }
            ++pos;
            v.obj[key.str] = value();
            skipWs();
            if (pos >= s.size()) {
                fail("unterminated object");
                return Json{};
            }
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return v;
            }
            fail("expected ',' or '}'");
        }
        return Json{};
    }

    const std::string &s;
    std::size_t pos = 0;
    bool failed = false;
    std::string errMsg;
    std::size_t errPos = 0;
};

} // namespace

Json
parseJson(const std::string &text, std::string *err)
{
    Parser p(text);
    return p.parse(err);
}

Json
parseJsonFile(const std::string &path, std::string *err)
{
    std::ifstream f(path);
    if (!f) {
        if (err)
            *err = "cannot open " + path;
        return Json{};
    }
    std::ostringstream os;
    os << f.rdbuf();
    return parseJson(os.str(), err);
}

// ---------------------------------------------------------- JsonWriter

void
JsonWriter::prefix()
{
    if (afterKey) {
        afterKey = false;
        return;
    }
    if (!hasPrior.empty()) {
        if (hasPrior.back())
            os << ',';
        hasPrior.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    prefix();
    os << '{';
    hasPrior.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    hasPrior.pop_back();
    os << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prefix();
    os << '[';
    hasPrior.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    hasPrior.pop_back();
    os << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    if (!hasPrior.empty()) {
        if (hasPrior.back())
            os << ',';
        hasPrior.back() = true;
    }
    os << '"' << jsonEscape(k) << "\":";
    afterKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    prefix();
    os << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v ? v : ""));
}

JsonWriter &
JsonWriter::value(bool v)
{
    prefix();
    os << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prefix();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prefix();
    os << v;
    return *this;
}

JsonWriter &
JsonWriter::value(double v, int decimals)
{
    prefix();
    if (!(v == v) || v > 1e300 || v < -1e300)
        v = 0.0; // NaN/inf have no JSON spelling
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    os << buf;
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    prefix();
    os << "null";
    return *this;
}

JsonWriter &
JsonWriter::rawValue(const std::string &json)
{
    prefix();
    os << json;
    return *this;
}

JsonWriter &
JsonWriter::newline()
{
    os << '\n';
    return *this;
}

} // namespace util
} // namespace misar
