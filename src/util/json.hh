/**
 * @file
 * Minimal JSON document model, recursive-descent parser, and a
 * deterministic streaming writer.
 *
 * Everything in the repo that reads JSON (campaign specs, per-job run
 * reports, manifest lines) parses through Json/parseJson; everything
 * that writes machine-readable JSON (run reports, profiler dumps,
 * campaign reports, heatmaps, status files) emits through JsonWriter,
 * so escaping and number formatting cannot drift between emitters.
 * JsonWriter formats doubles with an explicit fixed decimal count
 * (never %g, never locale-dependent) because several consumers
 * byte-compare reports across worker counts and resume boundaries.
 * The parser accepts exactly the JSON we emit plus ordinary
 * hand-written specs: objects, arrays, strings with the standard
 * escapes, finite numbers, booleans and null.
 */

#ifndef MISAR_UTIL_JSON_HH
#define MISAR_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace misar {
namespace util {

/** One parsed JSON value (a tagged union over the JSON kinds). */
struct Json
{
    enum Kind { Null, Bool, Num, Str, Arr, Obj };

    Kind kind = Null;
    bool boolean = false;
    double num = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    bool isNull() const { return kind == Null; }
    bool isObj() const { return kind == Obj; }
    bool isArr() const { return kind == Arr; }
    bool isStr() const { return kind == Str; }
    bool isNum() const { return kind == Num; }

    /** Object member lookup; a shared Null value when absent. */
    const Json &at(const std::string &key) const;

    /** Member present (objects only)? */
    bool has(const std::string &key) const;

    /** This value as a number, or @p def when not a number. */
    double numberOr(double def) const { return isNum() ? num : def; }

    /** This value as a non-negative integer, or @p def. */
    std::uint64_t
    uintOr(std::uint64_t def) const
    {
        if (!isNum() || num < 0)
            return def;
        return static_cast<std::uint64_t>(num);
    }

    /** This value as a string, or @p def when not a string. */
    std::string
    stringOr(const std::string &def) const
    {
        return isStr() ? str : def;
    }

    /** This value as a bool, or @p def when not a bool. */
    bool boolOr(bool def) const { return kind == Bool ? boolean : def; }
};

/**
 * Parse @p text. On failure returns a Null value and, when @p err is
 * non-null, stores a one-line message with the byte offset.
 */
Json parseJson(const std::string &text, std::string *err = nullptr);

/** parseJson over a file's entire contents ("" read errors too). */
Json parseJsonFile(const std::string &path, std::string *err = nullptr);

/**
 * Streaming JSON emitter with deterministic byte output.
 *
 * The writer tracks container nesting and inserts commas, so call
 * sites read as a flat sequence of key()/value()/begin*()/end*()
 * calls. It emits no whitespace of its own; newline() exists for the
 * few reports that keep one-line-per-record layouts. Doubles must be
 * written with an explicit decimal count — snprintf("%.*f") with
 * non-finite values clamped to 0 — which reproduces the byte format
 * the hand-rolled emitters used (std::fixed << setprecision(n)).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os(os) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit an (escaped) member key; the next value attaches to it. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(bool v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(unsigned v) { return value(std::uint64_t(v)); }
    JsonWriter &value(int v) { return value(std::int64_t(v)); }
    /** Fixed-decimal double; non-finite values are written as 0. */
    JsonWriter &value(double v, int decimals);
    JsonWriter &null();

    /** Pre-rendered JSON (already valid, already escaped). */
    JsonWriter &rawValue(const std::string &json);

    /** @name key+value in one call. @{ */
    template <typename T>
    JsonWriter &
    kv(const std::string &k, const T &v)
    {
        return key(k).value(v);
    }
    JsonWriter &
    kv(const std::string &k, double v, int decimals)
    {
        return key(k).value(v, decimals);
    }
    /** @} */

    /** Cosmetic newline (between one-line records). */
    JsonWriter &newline();

  private:
    /** Comma/continuation bookkeeping before any value or key. */
    void prefix();

    std::ostream &os;
    std::vector<bool> hasPrior; ///< per open container
    bool afterKey = false;
};

} // namespace util
} // namespace misar

#endif // MISAR_UTIL_JSON_HH
