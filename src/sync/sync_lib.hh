/**
 * @file
 * The synchronization runtime library.
 *
 * One SyncLib instance per simulated system provides mutexes,
 * barriers, and condition variables to workload code, in one of
 * several flavors:
 *
 * - PthreadSw: glibc-like software implementations (TTAS mutex with
 *   futex-style backoff, generation barrier, ticket condition
 *   variable). The paper's baseline.
 * - SpinSw:    raw test-and-set spinlock (locks only; barrier/cond
 *   fall back to the pthread algorithms).
 * - McsTourSw: MCS queue locks + tournament barrier (the paper's
 *   "advanced software" MCS-Tour configuration).
 * - TicketDissemSw: ticket locks + dissemination barrier (a second
 *   classic scalable-software point for the algorithm ablation).
 * - Hw:        the paper's hybrid Algorithms 1-3 — try the MiSAR
 *   instruction first, fall back to the pthread software path (and
 *   issue FINISH where required). Used for MSA-0 / MSA/OMU-N /
 *   MSA-inf / Ideal runs; with MSA-0 every instruction FAILs and
 *   this measures pure fallback overhead.
 *
 * Auxiliary state for software algorithms (MCS queue nodes,
 * tournament flags, condvar tickets) lives at an address that is a
 * pure function of the object (see the aux-addressing notes below),
 * each field in its own cache block.
 */

#ifndef MISAR_SYNC_SYNC_LIB_HH
#define MISAR_SYNC_SYNC_LIB_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cpu/subtask.hh"
#include "cpu/thread_api.hh"

namespace misar {
namespace sync {

using cpu::SubTask;
using cpu::ThreadApi;

/**
 * @name Auxiliary-region addressing
 *
 * Software algorithms need per-object scratch memory (MCS queue
 * nodes, tournament flags, condvar tickets). The region address must
 * be a pure function of the object — a first-use bump allocator
 * would hand out addresses in discovery order, which differs between
 * thread interleavings and would shift home tiles and cache behavior
 * between `--threads` counts (besides racing on the map itself).
 *
 * Layout: bit 62 tags the aux space (workloads never allocate
 * there); each object owns a 2^auxSlabShift-byte slab at
 * tag | (obj << auxSlabShift). Slabs of distinct objects are
 * disjoint by construction; the slab is sized for the largest user
 * (tournament barrier: (rounds + 1) * goal blocks) at the 1024-core
 * x SMT ceiling, and aux() panics on anything bigger. Memory is
 * sparse (FunctionalMem maps touched words only), so the wide
 * spacing costs nothing.
 * @{
 */
constexpr unsigned auxSlabShift = 23;
constexpr Addr auxSlabBytes = Addr{1} << auxSlabShift;
constexpr Addr auxSpaceTag = Addr{1} << 62;
/** @} */

/** Synchronization runtime facade. */
class SyncLib
{
  public:
    enum class Flavor
    {
        PthreadSw,
        SpinSw,
        McsTourSw,
        TicketDissemSw,
        Hw,
    };

    SyncLib(Flavor flavor, unsigned num_cores);

    /** @name Public API used by workloads (Algorithms 1-3 for Hw). @{ */
    SubTask<> mutexLock(ThreadApi t, Addr m);
    SubTask<> mutexUnlock(ThreadApi t, Addr m);
    /** Non-blocking acquire; true if the lock was taken. */
    SubTask<bool> mutexTryLock(ThreadApi t, Addr m);
    SubTask<> barrierWait(ThreadApi t, Addr b, std::uint32_t goal);
    /** @name Reader-writer lock extension (hybrid like Alg. 1). @{ */
    SubTask<> rwRdLock(ThreadApi t, Addr l);
    SubTask<> rwWrLock(ThreadApi t, Addr l);
    SubTask<> rwUnlock(ThreadApi t, Addr l);
    /** @} */

    SubTask<> condWait(ThreadApi t, Addr c, Addr m);
    SubTask<> condSignal(ThreadApi t, Addr c);
    SubTask<> condBroadcast(ThreadApi t, Addr c);
    /** @} */

    Flavor flavor() const { return _flavor; }

    static const char *flavorName(Flavor f);

    /**
     * Dead-participant query for the core fault campaign: true once
     * the failure detector has declared @p core dead. When set, the
     * software barriers stop waiting for corpses — the centralized
     * barrier counts declared-dead participants toward its quorum
     * (approximate: it cannot tell whether a corpse arrived before
     * dying, so a core that dies *after* arriving can cause one
     * early release; the hardware path tracks arrival masks and is
     * exact), and the tournament/dissemination barriers skip a dead
     * peer's flags. Unset (the default), every path is bit-identical
     * to a build without the feature. Software *locks* stay
     * unrecoverable: a corpse holding a plain-memory mutex wedges
     * its waiters (see docs/PROTOCOL.md).
     */
    using DeadQuery = std::function<bool(CoreId)>;
    void setDeadQuery(DeadQuery q) { isDeadFn = std::move(q); }

  private:
    /** @name Software mutexes @{ */
    SubTask<> pthreadLock(ThreadApi t, Addr m);
    SubTask<> pthreadUnlock(ThreadApi t, Addr m);
    SubTask<bool> swTryLock(ThreadApi t, Addr m);
    SubTask<> spinLock(ThreadApi t, Addr m);
    SubTask<> spinUnlock(ThreadApi t, Addr m);
    SubTask<> mcsLock(ThreadApi t, Addr m);
    SubTask<> mcsUnlock(ThreadApi t, Addr m);
    SubTask<> ticketLock(ThreadApi t, Addr m);
    SubTask<> ticketUnlock(ThreadApi t, Addr m);
    SubTask<> swRdLock(ThreadApi t, Addr l);
    SubTask<> swWrLock(ThreadApi t, Addr l);
    SubTask<> swRwUnlockReader(ThreadApi t, Addr l);
    SubTask<> swRwUnlockWriter(ThreadApi t, Addr l);
    /** @} */

    /** @name Software barriers @{ */
    SubTask<> centralBarrier(ThreadApi t, Addr b, std::uint32_t goal);
    SubTask<> tournamentBarrier(ThreadApi t, Addr b, std::uint32_t goal);
    SubTask<> disseminationBarrier(ThreadApi t, Addr b,
                                   std::uint32_t goal);
    /** @} */

    /** @name Software condition variables (ticket-based) @{ */
    SubTask<> swCondWait(ThreadApi t, Addr c, Addr m);
    SubTask<> swCondSignal(ThreadApi t, Addr c);
    SubTask<> swCondBroadcast(ThreadApi t, Addr c);
    /** @} */

    /** Dispatch to the flavor's software lock. */
    SubTask<> swLock(ThreadApi t, Addr m);
    SubTask<> swUnlock(ThreadApi t, Addr m);
    SubTask<> swBarrier(ThreadApi t, Addr b, std::uint32_t goal);

    /** Per-object auxiliary memory region (pure address function). */
    Addr aux(Addr obj, unsigned bytes);

    /** MCS queue node of @p core for lock @p m. */
    Addr mcsNode(Addr m, CoreId core);

    /** How each (core, rwlock) pair currently holds it. */
    enum class RwHold : std::uint8_t { None, Hw, SwReader, SwWriter };

    RwHold &rwHold(CoreId core, Addr l);

    /** True if @p core is declared dead (false with no query set). */
    bool
    deadParticipant(CoreId core) const
    {
        return isDeadFn && isDeadFn(core);
    }

    /** Declared-dead participants with id below @p goal. */
    unsigned deadBelow(std::uint32_t goal) const;

    Flavor _flavor;
    unsigned numCores;
    /** Indexed [core][lock]: with parallel simulation each core's
     *  map is touched only from its own partition. */
    std::vector<std::unordered_map<Addr, RwHold>> rwHoldsByCore;
    DeadQuery isDeadFn;
};

} // namespace sync
} // namespace misar

#endif // MISAR_SYNC_SYNC_LIB_HH
