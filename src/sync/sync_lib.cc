#include "sync/sync_lib.hh"

#include "cpu/op.hh"
#include "sim/logging.hh"
#include "sync/spin.hh"

namespace misar {
namespace sync {

using cpu::SyncResult;
using cpu::toSyncResult;

SyncLib::SyncLib(Flavor flavor, unsigned num_cores)
    : _flavor(flavor), numCores(num_cores), rwHoldsByCore(num_cores)
{}

const char *
SyncLib::flavorName(Flavor f)
{
    switch (f) {
      case Flavor::PthreadSw:
        return "pthread";
      case Flavor::SpinSw:
        return "spinlock";
      case Flavor::McsTourSw:
        return "MCS-Tour";
      case Flavor::TicketDissemSw:
        return "Ticket-Dissem";
      case Flavor::Hw:
        return "hw-hybrid";
    }
    return "?";
}

unsigned
SyncLib::deadBelow(std::uint32_t goal) const
{
    if (!isDeadFn)
        return 0;
    unsigned n = 0;
    for (CoreId c = 0; c < goal; ++c)
        if (isDeadFn(c))
            ++n;
    return n;
}

Addr
SyncLib::aux(Addr obj, unsigned bytes)
{
    // Pure function of the object: no allocator state, so the region
    // address (and thus its home tile and cache behavior) is the same
    // no matter which thread interleaving discovers the object first.
    if (bytes > auxSlabBytes)
        panic("sync aux region for %llx needs %u bytes > %llu slab",
              (unsigned long long)obj, bytes,
              (unsigned long long)auxSlabBytes);
    if (obj >> (62 - auxSlabShift))
        panic("sync object address %llx too large for aux addressing",
              (unsigned long long)obj);
    return auxSpaceTag | (obj << auxSlabShift);
}

Addr
SyncLib::mcsNode(Addr m, CoreId core)
{
    // One queue node per (lock, core), each in its own block.
    return aux(m, numCores * blockBytes) + core * blockBytes;
}

// --- Public API (Algorithms 1-3 in the Hw flavor) -------------------------

SubTask<>
SyncLib::mutexLock(ThreadApi t, Addr m)
{
    if (_flavor == Flavor::Hw) {
        SyncResult r = toSyncResult(co_await t.lockInstr(m));
        if (r == SyncResult::Success)
            co_return;
        // FAIL or ABORT: fall back to the software lock (Alg. 1).
        co_await pthreadLock(t, m);
        co_return;
    }
    co_await swLock(t, m);
}

SubTask<>
SyncLib::mutexUnlock(ThreadApi t, Addr m)
{
    if (_flavor == Flavor::Hw) {
        SyncResult r = toSyncResult(co_await t.unlockInstr(m));
        if (r == SyncResult::Success)
            co_return;
        co_await pthreadUnlock(t, m);
        co_return;
    }
    co_await swUnlock(t, m);
}

SubTask<bool>
SyncLib::mutexTryLock(ThreadApi t, Addr m)
{
    if (_flavor == Flavor::Hw) {
        SyncResult r = toSyncResult(co_await t.tryLockInstr(m));
        if (r == SyncResult::Success)
            co_return true;
        if (r == SyncResult::Busy)
            co_return false;
        // FAIL: the home pre-counted us as software-active; try the
        // word, and cancel the OMU increment if we lose.
        bool got = co_await swTryLock(t, m);
        if (!got)
            co_await t.finishInstr(m); // no-op value, decrements OMU
        co_return got;
    }
    co_return co_await swTryLock(t, m);
}

SubTask<bool>
SyncLib::swTryLock(ThreadApi t, Addr m)
{
    co_await t.compute(12);
    std::uint64_t old = co_await t.compareSwap(m, 0, 1);
    co_return old == 0;
}

SubTask<>
SyncLib::barrierWait(ThreadApi t, Addr b, std::uint32_t goal)
{
    if (_flavor == Flavor::Hw) {
        SyncResult r = toSyncResult(co_await t.barrierInstr(b, goal));
        if (r == SyncResult::Success)
            co_return;
        // FAIL or ABORT: software barrier, then tell the OMU the
        // software operation is over (Alg. 2).
        co_await centralBarrier(t, b, goal);
        co_await t.finishInstr(b);
        co_return;
    }
    co_await swBarrier(t, b, goal);
}

SyncLib::RwHold &
SyncLib::rwHold(CoreId core, Addr l)
{
    // Per-core maps: cores on different simulation partitions touch
    // only their own map, and core ids of any width fit (the old
    // (l << 8 | core) key silently aliased cores 256 apart).
    return rwHoldsByCore[core][l];
}

SubTask<>
SyncLib::rwRdLock(ThreadApi t, Addr l)
{
    if (_flavor == Flavor::Hw) {
        SyncResult r = toSyncResult(co_await t.rdLockInstr(l));
        if (r == SyncResult::Success) {
            rwHold(t.id(), l) = RwHold::Hw;
            co_return;
        }
    }
    co_await swRdLock(t, l);
    rwHold(t.id(), l) = RwHold::SwReader;
}

SubTask<>
SyncLib::rwWrLock(ThreadApi t, Addr l)
{
    if (_flavor == Flavor::Hw) {
        SyncResult r = toSyncResult(co_await t.wrLockInstr(l));
        if (r == SyncResult::Success) {
            rwHold(t.id(), l) = RwHold::Hw;
            co_return;
        }
    }
    co_await swWrLock(t, l);
    rwHold(t.id(), l) = RwHold::SwWriter;
}

SubTask<>
SyncLib::rwUnlock(ThreadApi t, Addr l)
{
    RwHold &h = rwHold(t.id(), l);
    const RwHold mode = h;
    h = RwHold::None;
    switch (mode) {
      case RwHold::Hw:
        co_await t.rwUnlockInstr(l); // guaranteed hardware hit
        break;
      case RwHold::SwReader:
        if (_flavor == Flavor::Hw)
            co_await t.rwUnlockInstr(l); // FAIL path decrements OMU
        co_await swRwUnlockReader(t, l);
        break;
      case RwHold::SwWriter:
        if (_flavor == Flavor::Hw)
            co_await t.rwUnlockInstr(l);
        co_await swRwUnlockWriter(t, l);
        break;
      case RwHold::None:
        panic("rwUnlock of a lock core %u does not hold", t.id());
    }
}

// Software reader-writer lock. Word layout at the lock address:
// bit 0 = writer held, bits 1.. = reader count (x2 increments).

SubTask<>
SyncLib::swRdLock(ThreadApi t, Addr l)
{
    co_await t.compute(15);
    for (;;) {
        std::uint64_t v = co_await t.read(l);
        if (!(v & 1)) {
            std::uint64_t got = co_await t.compareSwap(l, v, v + 2);
            if (got == v)
                co_return;
            continue; // lost a race to another reader: retry now
        }
        co_await futexWait(t, l,
                           [](std::uint64_t w) { return !(w & 1); });
    }
}

SubTask<>
SyncLib::swWrLock(ThreadApi t, Addr l)
{
    co_await t.compute(15);
    for (;;) {
        std::uint64_t got = co_await t.compareSwap(l, 0, 1);
        if (got == 0)
            co_return;
        co_await futexWait(t, l,
                           [](std::uint64_t w) { return w == 0; });
    }
}

SubTask<>
SyncLib::swRwUnlockReader(ThreadApi t, Addr l)
{
    co_await t.fetchAdd(l, static_cast<std::uint64_t>(-2));
}

SubTask<>
SyncLib::swRwUnlockWriter(ThreadApi t, Addr l)
{
    co_await t.write(l, 0);
}

SubTask<>
SyncLib::condWait(ThreadApi t, Addr c, Addr m)
{
    if (_flavor == Flavor::Hw) {
        SyncResult r = toSyncResult(co_await t.condWaitInstr(c, m));
        if (r == SyncResult::Success)
            co_return; // woken and lock re-acquired in hardware
        if (r == SyncResult::Fail) {
            co_await swCondWait(t, c, m);
            co_await t.finishInstr(c);
        } else { // Abort: re-acquire the lock, possibly spuriously
            co_await mutexLock(t, m);
            co_await t.finishInstr(c);
        }
        co_return;
    }
    co_await swCondWait(t, c, m);
}

SubTask<>
SyncLib::condSignal(ThreadApi t, Addr c)
{
    if (_flavor == Flavor::Hw) {
        SyncResult r = toSyncResult(co_await t.condSignalInstr(c));
        if (r != SyncResult::Success)
            co_await swCondSignal(t, c);
        co_return;
    }
    co_await swCondSignal(t, c);
}

SubTask<>
SyncLib::condBroadcast(ThreadApi t, Addr c)
{
    if (_flavor == Flavor::Hw) {
        SyncResult r = toSyncResult(co_await t.condBcastInstr(c));
        if (r != SyncResult::Success)
            co_await swCondBroadcast(t, c);
        co_return;
    }
    co_await swCondBroadcast(t, c);
}

// --- Flavor dispatch -------------------------------------------------------

SubTask<>
SyncLib::swLock(ThreadApi t, Addr m)
{
    switch (_flavor) {
      case Flavor::SpinSw:
        co_await spinLock(t, m);
        break;
      case Flavor::McsTourSw:
        co_await mcsLock(t, m);
        break;
      case Flavor::TicketDissemSw:
        co_await ticketLock(t, m);
        break;
      default:
        co_await pthreadLock(t, m);
        break;
    }
}

SubTask<>
SyncLib::swUnlock(ThreadApi t, Addr m)
{
    switch (_flavor) {
      case Flavor::SpinSw:
        co_await spinUnlock(t, m);
        break;
      case Flavor::McsTourSw:
        co_await mcsUnlock(t, m);
        break;
      case Flavor::TicketDissemSw:
        co_await ticketUnlock(t, m);
        break;
      default:
        co_await pthreadUnlock(t, m);
        break;
    }
}

SubTask<>
SyncLib::swBarrier(ThreadApi t, Addr b, std::uint32_t goal)
{
    if (_flavor == Flavor::McsTourSw)
        co_await tournamentBarrier(t, b, goal);
    else if (_flavor == Flavor::TicketDissemSw)
        co_await disseminationBarrier(t, b, goal);
    else
        co_await centralBarrier(t, b, goal);
}

// --- pthread-like mutex (TTAS + futex-style backoff) -----------------------

SubTask<>
SyncLib::pthreadLock(ThreadApi t, Addr m)
{
    // Library-call overhead (glibc entry, checks, barriers).
    co_await t.compute(20);
    // Fast path: uncontended CAS 0 -> 1.
    std::uint64_t old = co_await t.compareSwap(m, 0, 1);
    if (old == 0)
        co_return;
    // Slow path: mark contended (2) and wait. The growing poll
    // interval models the latency of a futex sleep/wake round trip.
    for (;;) {
        old = co_await t.swap(m, 2);
        if (old == 0)
            co_return;
        co_await futexWait(t, m,
                          [](std::uint64_t v) { return v == 0; });
    }
}

SubTask<>
SyncLib::pthreadUnlock(ThreadApi t, Addr m)
{
    co_await t.compute(12);
    co_await t.swap(m, 0);
}

// --- Test-and-set spinlock --------------------------------------------------

SubTask<>
SyncLib::spinLock(ThreadApi t, Addr m)
{
    co_await t.compute(2);
    for (;;) {
        std::uint64_t old = co_await t.testAndSet(m);
        if (old == 0)
            co_return;
        co_await spinUntil(t, m, [](std::uint64_t v) { return v == 0; }, 8);
    }
}

SubTask<>
SyncLib::spinUnlock(ThreadApi t, Addr m)
{
    co_await t.write(m, 0);
}

// --- MCS queue lock ---------------------------------------------------------

SubTask<>
SyncLib::mcsLock(ThreadApi t, Addr m)
{
    co_await t.compute(8); // call overhead + node address setup
    const Addr node = mcsNode(m, t.id());
    co_await t.write(node + 0, 0); // next = null
    co_await t.write(node + 8, 1); // locked = true
    std::uint64_t pred = co_await t.swap(m, node);
    if (pred != 0) {
        co_await t.write(pred + 0, node); // pred->next = node
        // Local spin on our own flag.
        co_await spinUntil(t, node + 8,
                           [](std::uint64_t v) { return v == 0; }, 8);
    }
}

SubTask<>
SyncLib::mcsUnlock(ThreadApi t, Addr m)
{
    co_await t.compute(6);
    const Addr node = mcsNode(m, t.id());
    std::uint64_t next = co_await t.read(node + 0);
    if (next == 0) {
        std::uint64_t old = co_await t.compareSwap(m, node, 0);
        if (old == node)
            co_return; // no successor
        // A successor is enqueueing; wait for it to link itself.
        next = co_await spinUntil(t, node + 0,
                                  [](std::uint64_t v) { return v != 0; },
                                  8);
    }
    co_await t.write(next + 8, 0); // successor->locked = false
}

namespace {

unsigned
ceilLog2(std::uint32_t n)
{
    unsigned k = 0;
    while ((1u << k) < n)
        ++k;
    return k;
}

} // namespace

// --- Ticket lock ------------------------------------------------------------

SubTask<>
SyncLib::ticketLock(ThreadApi t, Addr m)
{
    // Aux layout: next-ticket at m (user word), now-serving in aux.
    const Addr serving = aux(m, blockBytes);
    co_await t.compute(6);
    std::uint64_t ticket = co_await t.fetchAdd(m, 1);
    for (;;) {
        std::uint64_t s = co_await t.read(serving);
        if (s == ticket)
            co_return;
        // Proportional backoff: wait roughly our queue distance.
        Tick gap = static_cast<Tick>(ticket - s);
        co_await t.compute(16 * std::max<Tick>(1, gap));
    }
}

SubTask<>
SyncLib::ticketUnlock(ThreadApi t, Addr m)
{
    const Addr serving = aux(m, blockBytes);
    std::uint64_t s = co_await t.read(serving);
    co_await t.write(serving, s + 1);
}

// --- Dissemination barrier ----------------------------------------------------

SubTask<>
SyncLib::disseminationBarrier(ThreadApi t, Addr b, std::uint32_t goal)
{
    // Round-stamped flags: flag[round][core] holds the episode number,
    // so no reset phase is needed across episodes.
    co_await t.compute(8);
    const unsigned rounds = ceilLog2(goal);
    const unsigned id = t.id();
    if (id >= goal)
        panic("dissemination barrier: core %u outside range", id);
    // Layout: episode word per core, then flags[round][core].
    const Addr base = aux(b, (rounds + 1) * goal * blockBytes);
    const Addr my_episode = base + id * blockBytes;
    std::uint64_t episode = (co_await t.read(my_episode)) + 1;
    co_await t.write(my_episode, episode);
    for (unsigned k = 0; k < rounds; ++k) {
        const unsigned peer = (id + (1u << k)) % goal;
        // The round-k notification we *receive* comes from the core
        // (id - 2^k) mod goal; if it died, its episode stamp will
        // never advance — waive the wait (approximate, like the
        // centralized barrier: information from behind the corpse is
        // lost for this episode).
        const unsigned in_peer = (id + goal - (1u << k) % goal) % goal;
        const Addr out =
            base + ((k + 1) * goal + peer) * blockBytes;
        const Addr in = base + ((k + 1) * goal + id) * blockBytes;
        co_await t.write(out, episode);
        co_await spinUntil(t, in,
                           [this, episode, in_peer](std::uint64_t v) {
                               return v >= episode ||
                                      deadParticipant(in_peer);
                           },
                           8);
    }
}

// --- Centralized (pthread-like) barrier -------------------------------------

SubTask<>
SyncLib::centralBarrier(ThreadApi t, Addr b, std::uint32_t goal)
{
    // One packed word: generation in the high 32 bits, arrival count
    // in the low 32. Single-word atomicity avoids epoch races.
    co_await t.compute(10); // library-call overhead
    std::uint64_t v = co_await t.fetchAdd(b, 1);
    std::uint64_t gen = v >> 32;
    std::uint32_t cnt = static_cast<std::uint32_t>(v) + 1;
    if (cnt + deadBelow(goal) >= goal) {
        // Quorum (all live participants): advance the generation,
        // reset the count. Without dead participants this is exactly
        // the classic last-arrival (cnt == goal) release.
        co_await t.write(b, (gen + 1) << 32);
        co_return;
    }
    if (!isDeadFn) {
        // Futex-style wait models the sleep/wake round-trip cost.
        co_await futexWait(
            t, b, [gen](std::uint64_t w) { return (w >> 32) != gen; });
        co_return;
    }
    // Dead-aware wait: also wake when deaths declared *after* our
    // arrival bring the quorum within reach — the release write the
    // last arrival would have done must then come from a waiter. CAS
    // (not a blind store) so a racing release or a new arrival for
    // the next episode is never clobbered.
    for (;;) {
        std::uint64_t w = co_await futexWait(
            t, b, [this, gen, goal](std::uint64_t w) {
                return (w >> 32) != gen ||
                       static_cast<std::uint32_t>(w) + deadBelow(goal) >=
                           goal;
            });
        if ((w >> 32) != gen)
            co_return; // released normally
        std::uint64_t old = co_await t.compareSwap(b, w, (gen + 1) << 32);
        if (old == w || (old >> 32) != gen)
            co_return; // we released, or a racing waiter did
        // Lost the race to a concurrent arrival; re-evaluate.
    }
}

// --- Tournament barrier (MCS-style) ------------------------------------------

SubTask<>
SyncLib::tournamentBarrier(ThreadApi t, Addr b, std::uint32_t goal)
{
    co_await t.compute(8); // call overhead
    const unsigned rounds = ceilLog2(goal);
    if (rounds == 0)
        co_return; // single participant
    const unsigned i = t.id();
    if (i >= goal)
        panic("tournament barrier: core %u outside participant range", i);
    // Layout: arrival flags [round][core], then wakeup flags [core].
    const Addr base =
        aux(b, (rounds + 1) * goal * blockBytes);
    auto arrive_flag = [&](unsigned k, unsigned who) {
        return base + ((k - 1) * goal + who) * blockBytes;
    };
    auto wake_flag = [&](unsigned who) {
        return base + (rounds * goal + who) * blockBytes;
    };

    // Arrival tournament: losers notify winners and drop out. A
    // declared-dead loser's arrival is waived (it will never signal);
    // a flag it set *before* dying is consumed normally.
    unsigned lost_round = rounds + 1;
    for (unsigned k = 1; k <= rounds; ++k) {
        const unsigned step = 1u << k;
        const unsigned half = 1u << (k - 1);
        if (i % step == half) {
            co_await t.write(arrive_flag(k, i - half), 1);
            lost_round = k;
            break;
        }
        if (i % step == 0 && i + half < goal) {
            // Winner: wait for the partner, then reset the flag.
            const unsigned peer = i + half;
            std::uint64_t v = co_await spinUntil(
                t, arrive_flag(k, i),
                [this, peer](std::uint64_t v) {
                    return v != 0 || deadParticipant(peer);
                },
                8);
            if (v != 0)
                co_await t.write(arrive_flag(k, i), 0);
        }
        // else: bye — advance without a partner.
    }

    // Wakeup tree: the champion starts the release wave. A loser
    // whose round-winner died self-wakes (nobody will signal it) and
    // then runs its own wake wave below, so the release still
    // propagates through the corpse's subtree.
    if (i != 0) {
        const unsigned waker =
            lost_round <= rounds ? i - (1u << (lost_round - 1)) : 0;
        std::uint64_t v = co_await spinUntil(
            t, wake_flag(i),
            [this, waker](std::uint64_t v) {
                return v != 0 || deadParticipant(waker);
            },
            8);
        if (v != 0)
            co_await t.write(wake_flag(i), 0);
    }
    for (unsigned k = lost_round - 1; k >= 1; --k) {
        const unsigned half = 1u << (k - 1);
        if (i % (1u << k) == 0 && i + half < goal)
            co_await t.write(wake_flag(i + half), 1);
    }
}

// --- Ticket-based condition variable -----------------------------------------

SubTask<>
SyncLib::swCondWait(ThreadApi t, Addr c, Addr m)
{
    const Addr a = aux(c, 3 * blockBytes);
    const Addr ilock = a, enq = a + blockBytes, served = a + 2 * blockBytes;

    co_await spinLock(t, ilock);
    std::uint64_t ticket = co_await t.read(enq);
    co_await t.write(enq, ticket + 1);
    co_await spinUnlock(t, ilock);

    // Release the user mutex while waiting (through the public API:
    // in the Hw flavor this uses the hybrid unlock, as the paper's
    // sw_cond_wait requires).
    co_await mutexUnlock(t, m);
    co_await futexWait(
        t, served, [ticket](std::uint64_t v) { return v > ticket; });
    co_await mutexLock(t, m);
}

SubTask<>
SyncLib::swCondSignal(ThreadApi t, Addr c)
{
    const Addr a = aux(c, 3 * blockBytes);
    const Addr ilock = a, enq = a + blockBytes, served = a + 2 * blockBytes;
    co_await spinLock(t, ilock);
    std::uint64_t e = co_await t.read(enq);
    std::uint64_t s = co_await t.read(served);
    if (s < e)
        co_await t.write(served, s + 1);
    co_await spinUnlock(t, ilock);
}

SubTask<>
SyncLib::swCondBroadcast(ThreadApi t, Addr c)
{
    const Addr a = aux(c, 3 * blockBytes);
    const Addr ilock = a, enq = a + blockBytes, served = a + 2 * blockBytes;
    co_await spinLock(t, ilock);
    std::uint64_t e = co_await t.read(enq);
    co_await t.write(served, e);
    co_await spinUnlock(t, ilock);
}

} // namespace sync
} // namespace misar
