/**
 * @file
 * Spin-wait helpers for software synchronization algorithms.
 */

#ifndef MISAR_SYNC_SPIN_HH
#define MISAR_SYNC_SPIN_HH

#include <functional>

#include "cpu/subtask.hh"
#include "cpu/thread_api.hh"
#include "sim/rng.hh"

namespace misar {
namespace sync {

/**
 * Spin-read @p addr until @p done(value) is true, waiting @p interval
 * cycles between polls. Returns the satisfying value. A fixed short
 * interval models local spinning (MCS-style); the caller can model
 * futex-like sleep/wake latency with a larger interval.
 */
inline cpu::SubTask<std::uint64_t>
spinUntil(cpu::ThreadApi t, Addr addr,
          std::function<bool(std::uint64_t)> done, Tick interval = 8)
{
    for (;;) {
        std::uint64_t v = co_await t.read(addr);
        if (done(v))
            co_return v;
        co_await t.compute(interval);
    }
}

/**
 * Futex-style wait: poll @p addr every ~@p wake cycles (uniformly
 * jittered 50%-150%) until @p done(value). The interval models the
 * sleep/wake round trip of a futex (syscall + scheduler); the jitter
 * breaks phase-locking between waiters and release waves.
 */
inline cpu::SubTask<std::uint64_t>
futexWait(cpu::ThreadApi t, Addr addr,
          std::function<bool(std::uint64_t)> done, Tick wake = 1200)
{
    Rng rng(0x5bd1e995ULL * (addr + 1) + t.id() * 0x9e3779b9ULL + 1);
    // A short optimistic spin before "sleeping" (glibc adaptive).
    for (int i = 0; i < 2; ++i) {
        std::uint64_t v = co_await t.read(addr);
        if (done(v))
            co_return v;
        co_await t.compute(20);
    }
    for (;;) {
        co_await t.compute(wake / 2 + rng.range(wake));
        std::uint64_t v = co_await t.read(addr);
        if (done(v))
            co_return v;
    }
}

/**
 * Spin with exponential backoff between polls (test-and-test-and-set
 * style), from @p start cycles doubling to @p cap.
 */
inline cpu::SubTask<std::uint64_t>
backoffSpinUntil(cpu::ThreadApi t, Addr addr,
                 std::function<bool(std::uint64_t)> done, Tick start = 16,
                 Tick cap = 1024)
{
    Tick d = start;
    for (;;) {
        std::uint64_t v = co_await t.read(addr);
        if (done(v))
            co_return v;
        co_await t.compute(d);
        d = std::min<Tick>(d * 2, cap);
    }
}

} // namespace sync
} // namespace misar

#endif // MISAR_SYNC_SPIN_HH
