#include "noc/mesh.hh"

#include <cstdlib>

#include "sim/logging.hh"

namespace misar {
namespace noc {

Mesh::Mesh(EventQueue &eq, const NocConfig &cfg, unsigned dim,
           StatRegistry &stats)
    : _dim(dim)
{
    routers.reserve(dim * dim);
    nis.reserve(dim * dim);
    for (unsigned y = 0; y < dim; ++y) {
        for (unsigned x = 0; x < dim; ++x) {
            unsigned id = y * dim + x;
            routers.push_back(
                std::make_unique<Router>(eq, cfg, id, x, y, dim));
        }
    }
    for (unsigned y = 0; y < dim; ++y) {
        for (unsigned x = 0; x < dim; ++x) {
            Router *r = routers[y * dim + x].get();
            if (x + 1 < dim)
                r->connect(portEast, routers[y * dim + x + 1].get(),
                           portWest);
            if (x > 0)
                r->connect(portWest, routers[y * dim + x - 1].get(),
                           portEast);
            if (y + 1 < dim)
                r->connect(portSouth, routers[(y + 1) * dim + x].get(),
                           portNorth);
            if (y > 0)
                r->connect(portNorth, routers[(y - 1) * dim + x].get(),
                           portSouth);
        }
    }
    for (unsigned t = 0; t < dim * dim; ++t) {
        nis.push_back(std::make_unique<NetworkInterface>(
            eq, cfg, *routers[t], t, stats));
    }
}

void
Mesh::send(std::shared_ptr<Packet> pkt)
{
    CoreId s = pkt->src();
    if (s >= nis.size())
        panic("packet source tile %u out of range", s);
    if (pkt->dst() >= nis.size())
        panic("packet destination tile %u out of range", pkt->dst());
    nis[s]->send(std::move(pkt));
}

void
Mesh::setSink(CoreId t, NetworkInterface::Sink sink)
{
    if (t >= nis.size())
        panic("sink tile %u out of range", t);
    nis[t]->setSink(std::move(sink));
}

unsigned
Mesh::hopDistance(CoreId a, CoreId b) const
{
    int ax = static_cast<int>(a % _dim), ay = static_cast<int>(a / _dim);
    int bx = static_cast<int>(b % _dim), by = static_cast<int>(b / _dim);
    return static_cast<unsigned>(std::abs(ax - bx) + std::abs(ay - by));
}

} // namespace noc
} // namespace misar
