#include "noc/mesh.hh"

#include <cstdlib>
#include <ostream>

#include "sim/logging.hh"

namespace misar {
namespace noc {

Mesh::Mesh(EventQueue &eq, const NocConfig &cfg, unsigned dim,
           StatRegistry &stats, const TileRuntime &rt)
    : eq(eq), stats(stats), _dim(dim)
{
    routers.reserve(dim * dim);
    nis.reserve(dim * dim);
    tileStats.reserve(dim * dim);
    for (unsigned y = 0; y < dim; ++y) {
        for (unsigned x = 0; x < dim; ++x) {
            unsigned id = y * dim + x;
            tileStats.push_back(&rt.statsFor(id, stats));
            routers.push_back(std::make_unique<Router>(
                rt.eqFor(id, eq), cfg, id, x, y, dim));
            routers.back()->setLane(rt.laneOf(id));
        }
    }
    for (unsigned y = 0; y < dim; ++y) {
        for (unsigned x = 0; x < dim; ++x) {
            Router *r = routers[y * dim + x].get();
            if (x + 1 < dim)
                r->connect(portEast, routers[y * dim + x + 1].get(),
                           portWest);
            if (x > 0)
                r->connect(portWest, routers[y * dim + x - 1].get(),
                           portEast);
            if (y + 1 < dim)
                r->connect(portSouth, routers[(y + 1) * dim + x].get(),
                           portNorth);
            if (y > 0)
                r->connect(portNorth, routers[(y - 1) * dim + x].get(),
                           portSouth);
        }
    }
    for (unsigned t = 0; t < dim * dim; ++t) {
        nis.push_back(std::make_unique<NetworkInterface>(
            rt.eqFor(t, eq), cfg, *routers[t], t, *tileStats[t]));
        nis.back()->setLane(rt.laneOf(t));
    }
}

void
Mesh::send(std::shared_ptr<Packet> pkt)
{
    CoreId s = pkt->src();
    if (s >= nis.size())
        panic("packet source tile %u out of range", s);
    if (pkt->dst() >= nis.size())
        panic("packet destination tile %u out of range", pkt->dst());
    nis[s]->send(std::move(pkt));
}

void
Mesh::setSink(CoreId t, NetworkInterface::Sink sink)
{
    if (t >= nis.size())
        panic("sink tile %u out of range", t);
    nis[t]->setSink(std::move(sink));
}

unsigned
Mesh::hopDistance(CoreId a, CoreId b) const
{
    int ax = static_cast<int>(a % _dim), ay = static_cast<int>(a / _dim);
    int bx = static_cast<int>(b % _dim), by = static_cast<int>(b / _dim);
    return static_cast<unsigned>(std::abs(ax - bx) + std::abs(ay - by));
}

void
Mesh::armFaults()
{
    for (unsigned r = 0; r < routers.size(); ++r)
        routers[r]->armFaults(tileStats[r]);
    for (auto &n : nis)
        n->armFaults();
}

void
Mesh::setCorruptFn(const std::function<bool(unsigned)> &fn)
{
    for (auto &r : routers) {
        const unsigned id = r->id();
        r->setCorruptFn([fn, id] { return fn(id); });
    }
}

Port
Mesh::portToward(unsigned a, unsigned b) const
{
    const int dx = static_cast<int>(b % _dim) - static_cast<int>(a % _dim);
    const int dy = static_cast<int>(b / _dim) - static_cast<int>(a / _dim);
    if (dx == 1 && dy == 0)
        return portEast;
    if (dx == -1 && dy == 0)
        return portWest;
    if (dx == 0 && dy == 1)
        return portSouth;
    if (dx == 0 && dy == -1)
        return portNorth;
    panic("routers %u and %u are not mesh neighbours", a, b);
}

void
Mesh::markLinkDead(unsigned a, unsigned b)
{
    if (a >= numTiles() || b >= numTiles())
        panic("link kill %u-%u out of range", a, b);
    routers[a]->killOutputLink(portToward(a, b));
    routers[b]->killOutputLink(portToward(b, a));
    stats.counter("noc.deadLinks").inc();
}

void
Mesh::markRouterDead(unsigned r)
{
    if (r >= numTiles())
        panic("router kill %u out of range", r);
    routers[r]->kill();
    nis[r]->kill();
    for (unsigned p = 1; p < numPorts; ++p) {
        const unsigned x = r % _dim, y = r / _dim;
        int n = -1;
        switch (static_cast<Port>(p)) {
          case portNorth:
            n = y > 0 ? static_cast<int>(r - _dim) : -1;
            break;
          case portSouth:
            n = y + 1 < _dim ? static_cast<int>(r + _dim) : -1;
            break;
          case portEast:
            n = x + 1 < _dim ? static_cast<int>(r + 1) : -1;
            break;
          case portWest:
            n = x > 0 ? static_cast<int>(r - 1) : -1;
            break;
          default:
            break;
        }
        if (n >= 0)
            routers[n]->killOutputLink(
                portToward(static_cast<unsigned>(n), r));
    }
    stats.counter("noc.deadRouters").inc();
}

Topology
Mesh::liveTopology() const
{
    Topology t(_dim);
    for (unsigned r = 0; r < numTiles(); ++r) {
        t.deadRouter[r] = routers[r]->dead();
        for (unsigned p = 1; p < numPorts; ++p)
            t.deadOut[r][p] = routers[r]->outputDead(static_cast<Port>(p));
    }
    return t;
}

void
Mesh::installTables(RouteTables t)
{
    tables = std::move(t);
    stats.counter("noc.reconfigs").inc();
    for (unsigned r = 0; r < numTiles(); ++r) {
        if (routers[r]->dead())
            continue;
        routers[r]->setRouteTable(tables.routerSlab(r), numTiles());
    }
    // With the new tables in place, terminate wormholes severed by
    // the dead hardware (in-flight stragglers have landed by now:
    // nocDetectDelay far exceeds one hop's latency).
    for (unsigned r = 0; r < numTiles(); ++r) {
        if (!routers[r]->dead())
            routers[r]->flushSeveredOwnership();
    }
}

void
Mesh::buildReport(std::ostream &os) const
{
    os << "  NoC in-flight census:\n";
    const Tick now = eq.now();
    for (unsigned r = 0; r < numTiles(); ++r) {
        if (routers[r]->dead()) {
            os << "    router " << r << " DEAD\n";
            continue;
        }
        routers[r]->forEachBufferedFlit(
            [&](Port in, unsigned vnet, const Flit &f) {
                os << "    router " << r << " in " << in << " vnet "
                   << vnet;
                if (f.pkt) {
                    os << " pkt " << f.pkt->src() << "->"
                       << f.pkt->dst() << " age "
                       << (now - f.pkt->injectTick);
                } else {
                    os << " poison-tail";
                }
                os << (f.head ? " head" : (f.tail ? " tail" : " body"))
                   << "\n";
            });
    }
    for (unsigned t = 0; t < numTiles(); ++t) {
        if (!nis[t]->dead())
            nis[t]->reportInFlight(os);
    }
}

} // namespace noc
} // namespace misar
