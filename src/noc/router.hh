/**
 * @file
 * Cycle-level input-queued wormhole mesh router.
 *
 * Five ports (Local, N, E, S, W), XY dimension-order routing,
 * credit-based flow control, and per-port virtual channels used as
 * virtual networks (request vs. reply) to avoid protocol deadlock.
 * Routers are event-driven: they tick only while flits are buffered.
 */

#ifndef MISAR_NOC_ROUTER_HH
#define MISAR_NOC_ROUTER_HH

#include <array>
#include <functional>
#include <vector>

#include "noc/packet.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

namespace misar {
namespace noc {

/**
 * Fixed-capacity FIFO of flits with recycled slots. Input buffers
 * are credit-bounded to the router's bufferDepth, so the ring never
 * grows and the hot enqueue/dequeue path never allocates (popped
 * slots release their packet shared_ptr but keep the storage).
 */
class FlitRing
{
  public:
    /** Size the ring once at construction (cfg.bufferDepth). */
    void init(unsigned capacity) { slots.resize(capacity); }

    bool empty() const { return count == 0; }
    unsigned size() const { return static_cast<unsigned>(count); }
    bool full() const { return count == slots.size(); }

    Flit &front() { return slots[head]; }

    void
    push_back(Flit f)
    {
        slots[(head + count) % slots.size()] = std::move(f);
        ++count;
    }

    void
    pop_front()
    {
        slots[head] = Flit{}; // drop the packet reference, keep the slot
        head = (head + 1) % slots.size();
        --count;
    }

  private:
    std::vector<Flit> slots;
    std::size_t head = 0;
    std::size_t count = 0;
};

/** Router port indices. */
enum Port : unsigned
{
    portLocal = 0,
    portNorth = 1,
    portEast = 2,
    portSouth = 3,
    portWest = 4,
    numPorts = 5,
};

/** Number of virtual networks (0 = requests, 1 = replies/data). */
constexpr unsigned numVnets = 2;

/**
 * One mesh router.
 *
 * Each (input port, vnet) has a FIFO flit buffer. Each cycle, every
 * output port forwards at most one flit, selected round-robin over
 * (vnet, input) pairs; wormhole allocation holds an output/vnet for
 * a packet from head to tail flit.
 */
class Router
{
  public:
    Router(EventQueue &eq, const NocConfig &cfg, unsigned id, unsigned x,
           unsigned y, unsigned dim);

    /** Connect output port @p out to neighbour @p next (its @p in). */
    void connect(Port out, Router *next, Port in);

    /** Install the ejection callback for the Local output. */
    void setEjectFn(std::function<void(Flit)> fn) { ejectFn = std::move(fn); }

    /**
     * Install the credit-return callback for the Local input (wakes
     * the network interface when an injection buffer slot frees).
     */
    void
    setLocalCreditFn(std::function<void(unsigned)> fn)
    {
        localCreditFn = std::move(fn);
    }

    /** Accept a flit into input @p in on virtual network @p vnet. */
    void acceptFlit(Port in, unsigned vnet, Flit flit);

    /** Free buffer space available on input @p in, vnet @p vnet. */
    unsigned
    freeSlots(Port in, unsigned vnet) const
    {
        return cfg.bufferDepth
            - static_cast<unsigned>(inBuf[in][vnet].size());
    }

    /** Credit returned by the downstream hop of output @p out. */
    void returnCredit(Port out, unsigned vnet);

    unsigned id() const { return _id; }

  private:
    /** XY route: output port towards @p dst. */
    Port route(CoreId dst) const;

    /** Run one cycle of switch allocation and traversal. */
    void tick();

    /** Schedule a tick next cycle unless one is already pending. */
    void scheduleTick();

    /** True if any input buffer holds a flit. */
    bool hasWork() const;

    EventQueue &eq;
    const NocConfig &cfg;
    unsigned _id;
    unsigned x, y, dim;

    /** inBuf[port][vnet] */
    std::array<std::array<FlitRing, numVnets>, numPorts> inBuf;
    /** Input (port) currently owning each (output, vnet); -1 = free. */
    std::array<std::array<int, numVnets>, numPorts> outOwner;
    /** Credits available towards downstream (output, vnet). */
    std::array<std::array<unsigned, numVnets>, numPorts> credits;
    /** Round-robin pointer per output over (vnet*numPorts+input). */
    std::array<unsigned, numPorts> rrPtr;

    struct Link
    {
        Router *next = nullptr;
        Port nextIn = portLocal;
    };
    std::array<Link, numPorts> links;

    /** Who feeds each of our input ports (for credit return). */
    struct Upstream
    {
        Router *router = nullptr;
        Port out = portLocal;
    };
    std::array<Upstream, numPorts> upstream;

    std::function<void(Flit)> ejectFn;
    std::function<void(unsigned)> localCreditFn;
    bool tickPending = false;
};

} // namespace noc
} // namespace misar

#endif // MISAR_NOC_ROUTER_HH
