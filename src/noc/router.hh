/**
 * @file
 * Cycle-level input-queued wormhole mesh router.
 *
 * Five ports (Local, N, E, S, W), XY dimension-order routing,
 * credit-based flow control, and per-port virtual channels used as
 * virtual networks (request vs. reply vs. control) to avoid protocol
 * deadlock. Routers are event-driven: they tick only while flits are
 * buffered.
 *
 * Fault support (all of it gated behind armFaults(), so fault-free
 * runs execute the original hot path): output links and whole routers
 * can be marked dead, a per-(router, input-port, destination) routing
 * table can replace XY after reconfiguration, and flits that cannot
 * make progress (dead output, no legal route, orphaned wormhole body)
 * are dropped with credit bookkeeping intact — recovery is end-to-end
 * in the network interfaces.
 */

#ifndef MISAR_NOC_ROUTER_HH
#define MISAR_NOC_ROUTER_HH

#include <array>
#include <functional>
#include <vector>

#include "noc/packet.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"

namespace misar {

class StatRegistry;

namespace noc {

/**
 * Fixed-capacity FIFO of flits with recycled slots. Input buffers
 * are credit-bounded to the router's bufferDepth, so the ring never
 * grows and the hot enqueue/dequeue path never allocates (popped
 * slots release their packet shared_ptr but keep the storage).
 */
class FlitRing
{
  public:
    /** Size the ring once at construction (cfg.bufferDepth). */
    void init(unsigned capacity) { slots.resize(capacity); }

    bool empty() const { return count == 0; }
    unsigned size() const { return static_cast<unsigned>(count); }
    bool full() const { return count == slots.size(); }

    Flit &front() { return slots[head]; }
    const Flit &front() const { return slots[head]; }

    /** Random read access (0 = front); for reporting only. */
    const Flit &
    at(unsigned i) const
    {
        return slots[(head + i) % slots.size()];
    }

    void
    push_back(Flit f)
    {
        slots[(head + count) % slots.size()] = std::move(f);
        ++count;
    }

    void
    pop_front()
    {
        slots[head] = Flit{}; // drop the packet reference, keep the slot
        head = (head + 1) % slots.size();
        --count;
    }

    void
    clear()
    {
        while (count)
            pop_front();
    }

  private:
    std::vector<Flit> slots;
    std::size_t head = 0;
    std::size_t count = 0;
};

/** Router port indices. */
enum Port : unsigned
{
    portLocal = 0,
    portNorth = 1,
    portEast = 2,
    portSouth = 3,
    portWest = 4,
    numPorts = 5,
};

/**
 * Number of virtual networks (0 = requests, 1 = replies/data,
 * 2 = NoC-internal control; see Packet::vnet).
 */
constexpr unsigned numVnets = 3;

/**
 * One mesh router.
 *
 * Each (input port, vnet) has a FIFO flit buffer. Each cycle, every
 * output port forwards at most one flit, selected round-robin over
 * (vnet, input) pairs; wormhole allocation holds an output/vnet for
 * a packet from head to tail flit.
 */
class Router
{
  public:
    Router(EventQueue &eq, const NocConfig &cfg, unsigned id, unsigned x,
           unsigned y, unsigned dim);

    /** Connect output port @p out to neighbour @p next (its @p in). */
    void connect(Port out, Router *next, Port in);

    /** Install the ejection callback for the Local output. */
    void setEjectFn(std::function<void(Flit)> fn) { ejectFn = std::move(fn); }

    /**
     * Install the credit-return callback for the Local input (wakes
     * the network interface when an injection buffer slot frees).
     */
    void
    setLocalCreditFn(std::function<void(unsigned)> fn)
    {
        localCreditFn = std::move(fn);
    }

    /** Accept a flit into input @p in on virtual network @p vnet. */
    void acceptFlit(Port in, unsigned vnet, Flit flit);

    /** Free buffer space available on input @p in, vnet @p vnet. */
    unsigned
    freeSlots(Port in, unsigned vnet) const
    {
        return cfg.bufferDepth
            - static_cast<unsigned>(inBuf[in][vnet].size());
    }

    /** Credit returned by the downstream hop of output @p out. */
    void returnCredit(Port out, unsigned vnet);

    unsigned id() const { return _id; }

    /** Mesh edge length (for Manhattan-distance accounting). */
    unsigned meshDim() const { return dim; }

    /**
     * Pin this router's events to a lane. Self-schedules (ticks,
     * severed-ownership retries) stay on the lane even when invoked
     * from the global lane (reconfiguration, fault injection); flit
     * and credit handoffs target the neighbour's lane so partition
     * boundaries route through the cross hook.
     */
    void setLane(LaneId l) { _lane = l; }
    LaneId lane() const { return _lane; }

    /** @name Fault support (Mesh-level API). @{ */

    /** Enable the fault-handling paths (stats must be set first). */
    void armFaults(StatRegistry *s) { stats = s; faultsArmed = true; }

    /**
     * Replace XY routing with a reconfigured table. @p slab is this
     * router's [inPort][dst] slab inside a RouteTables whose storage
     * outlives the router's use of it; nullptr reverts to XY.
     */
    void
    setRouteTable(const std::uint8_t *slab, unsigned num_tiles)
    {
        table = slab;
        tableTiles = num_tiles;
    }

    /** Mark the outgoing link via @p p dead (flits to it drop). */
    void killOutputLink(Port p) { linkDead[p] = true; }

    /** Kill the whole router: buffers are discarded, future flits
     *  are dropped on arrival, tick() becomes a no-op. */
    void kill();

    bool dead() const { return isDead; }
    bool outputDead(Port p) const { return linkDead[p]; }

    /**
     * Reconfiguration fence: release wormhole output ownership held
     * by inputs with empty buffers (their remaining flits were lost
     * on dead hardware and will never arrive). Stragglers that do
     * arrive later are dropped as orphans.
     */
    void flushSeveredOwnership();

    /**
     * Install the transient-corruption hook, rolled once per head
     * flit per link traversal; true = discard the whole packet (the
     * downstream CRC check fails).
     */
    void setCorruptFn(std::function<bool()> fn) { corruptFn = std::move(fn); }

    /** Visit every buffered flit (stall-report census). */
    void forEachBufferedFlit(
        const std::function<void(Port in, unsigned vnet,
                                 const Flit &)> &fn) const;

    /** @} */

    /**
     * Cumulative flits forwarded out of @p p to the neighbouring
     * router (locally-ejected flits excluded). A plain member counter
     * — not a StatRegistry stat — so per-link heat is observable
     * without changing registry dumps; the resource monitor samples
     * it into the heatmap timeline.
     */
    std::uint64_t forwardedFlits(Port p) const { return fwdFlits[p]; }

  private:
    /** XY route: output port towards @p dst. */
    Port route(CoreId dst) const;

    /**
     * Routing decision for a head flit that arrived on @p in: table
     * lookup when a reconfigured table is installed, XY otherwise.
     * Returns numPorts when the table has no legal route.
     */
    Port
    routeFor(Port in, CoreId dst) const
    {
        if (!table)
            return route(dst);
        const std::uint8_t e = table[in * tableTiles + dst];
        return e >= numPorts ? numPorts : static_cast<Port>(e);
    }

    /**
     * Fault pre-pass: drop front flits that can never be forwarded
     * (dead output, unroutable destination, severed wormhole body).
     * Returns true when anything was dropped; dropped inputs count
     * as served for this cycle.
     */
    bool faultDrops(bool served_input[numPorts]);

    /** Drop the front flit of (in, vnet): credit bookkeeping as if
     *  forwarded, dropUntilTail tracking, flit-drop stat. */
    void dropFront(Port in, unsigned vnet);

    /** Return one buffer credit upstream for input @p in. */
    void creditUpstream(Port in, unsigned vnet);

    /** True when some output's wormhole channel is owned by @p in. */
    bool ownedByAny(Port in, unsigned vnet) const;

    /** Run one cycle of switch allocation and traversal. */
    void tick();

    /** Schedule a tick next cycle unless one is already pending. */
    void scheduleTick();

    /** True if any input buffer holds a flit. */
    bool hasWork() const;

    EventQueue &eq;
    const NocConfig &cfg;
    unsigned _id;
    unsigned x, y, dim;
    LaneId _lane = 0;

    /** inBuf[port][vnet] */
    std::array<std::array<FlitRing, numVnets>, numPorts> inBuf;
    /** Input (port) currently owning each (output, vnet); -1 = free. */
    std::array<std::array<int, numVnets>, numPorts> outOwner;
    /** Credits available towards downstream (output, vnet). */
    std::array<std::array<unsigned, numVnets>, numPorts> credits;
    /** Round-robin pointer per output over (vnet*numPorts+input). */
    std::array<unsigned, numPorts> rrPtr;

    struct Link
    {
        Router *next = nullptr;
        Port nextIn = portLocal;
    };
    std::array<Link, numPorts> links;

    /** Who feeds each of our input ports (for credit return). */
    struct Upstream
    {
        Router *router = nullptr;
        Port out = portLocal;
    };
    std::array<Upstream, numPorts> upstream;

    std::function<void(Flit)> ejectFn;
    std::function<void(unsigned)> localCreditFn;
    bool tickPending = false;

    /** Flits forwarded per output port (see forwardedFlits()). */
    std::array<std::uint64_t, numPorts> fwdFlits{};

    /** @name Fault state (inert until armFaults()). @{ */
    bool faultsArmed = false;
    bool isDead = false;
    StatRegistry *stats = nullptr;
    const std::uint8_t *table = nullptr; ///< [inPort][dst] slab or null
    unsigned tableTiles = 0;
    /** Outgoing link via port p is dead. */
    std::array<bool, numPorts> linkDead{};
    /** Head of the packet on (in, vnet) was dropped: drop the rest. */
    std::array<std::array<bool, numVnets>, numPorts> dropUntilTail{};
    /** Owner (out, vnet) decided to discard its packet (corruption):
     *  drop granted flits instead of forwarding, until the tail. */
    std::array<std::array<bool, numVnets>, numPorts> dropOwned{};
    /** packetSeq of the worm owning (out, vnet) — lets a poison tail
     *  name the worm it terminates. Tracked only while armed. */
    std::array<std::array<std::uint64_t, numVnets>, numPorts> ownerSeq{};
    std::function<bool()> corruptFn;
    /** @} */
};

} // namespace noc
} // namespace misar

#endif // MISAR_NOC_ROUTER_HH
