#include "noc/routing.hh"

#include <deque>

namespace misar {
namespace noc {

int
Topology::neighbor(unsigned r, Port p) const
{
    const unsigned x = r % dim, y = r / dim;
    switch (p) {
      case portNorth:
        return y > 0 ? static_cast<int>(r - dim) : -1;
      case portSouth:
        return y + 1 < dim ? static_cast<int>(r + dim) : -1;
      case portEast:
        return x + 1 < dim ? static_cast<int>(r + 1) : -1;
      case portWest:
        return x > 0 ? static_cast<int>(r - 1) : -1;
      default:
        return -1;
    }
}

bool
Topology::linkUsable(unsigned r, Port p) const
{
    const int n = neighbor(r, p);
    if (n < 0 || deadRouter[r] || deadRouter[n])
        return false;
    return !deadOut[r][p];
}

Port
oppositePort(Port out)
{
    switch (out) {
      case portNorth:
        return portSouth;
      case portSouth:
        return portNorth;
      case portEast:
        return portWest;
      case portWest:
        return portEast;
      default:
        return portLocal;
    }
}

std::vector<int>
components(const Topology &topo)
{
    const unsigned n = topo.numTiles();
    std::vector<int> comp(n, -1);
    for (unsigned s = 0; s < n; ++s) {
        if (topo.deadRouter[s] || comp[s] != -1)
            continue;
        // BFS from s; s is the lowest unvisited id, hence the
        // component's lowest member, hence its id.
        std::deque<unsigned> q{s};
        comp[s] = static_cast<int>(s);
        while (!q.empty()) {
            unsigned r = q.front();
            q.pop_front();
            for (unsigned p = 1; p < numPorts; ++p) {
                if (!topo.linkUsable(r, static_cast<Port>(p)))
                    continue;
                int m = topo.neighbor(r, static_cast<Port>(p));
                if (comp[m] == -1) {
                    comp[m] = static_cast<int>(s);
                    q.push_back(static_cast<unsigned>(m));
                }
            }
        }
    }
    return comp;
}

namespace {

/** Up-down legality phases: before vs. after the first down hop. */
enum Phase : unsigned
{
    phaseUp = 0,   ///< only up hops taken so far (may still go up)
    phaseDown = 1, ///< a down hop was taken (down hops only from here)
    numPhases = 2,
};

constexpr unsigned distInf = 0xffffffffu;

} // namespace

RouteTables
computeUpDownTables(const Topology &topo)
{
    const unsigned n = topo.numTiles();
    RouteTables t;
    t.dim = topo.dim;
    t.flat.assign(static_cast<std::size_t>(n) * numPorts * n,
                  routeInvalid);

    // Spanning-tree levels: BFS from each component's root (its
    // lowest member id). Links are then statically oriented: u -> v
    // is an "up" hop when v is closer to the root, with the id as
    // the tie-break on equal levels (the classic up-down total
    // order, which leaves no cycle of down hops).
    const std::vector<int> comp = components(topo);
    std::vector<unsigned> level(n, distInf);
    for (unsigned s = 0; s < n; ++s) {
        if (topo.deadRouter[s] || comp[s] != static_cast<int>(s))
            continue; // not a component root
        level[s] = 0;
        std::deque<unsigned> q{s};
        while (!q.empty()) {
            unsigned r = q.front();
            q.pop_front();
            for (unsigned p = 1; p < numPorts; ++p) {
                if (!topo.linkUsable(r, static_cast<Port>(p)))
                    continue;
                unsigned m = static_cast<unsigned>(
                    topo.neighbor(r, static_cast<Port>(p)));
                if (level[m] == distInf) {
                    level[m] = level[r] + 1;
                    q.push_back(m);
                }
            }
        }
    }

    auto up_hop = [&](unsigned r, unsigned m) {
        return level[m] < level[r] ||
               (level[m] == level[r] && m < r);
    };

    // Per destination: backward BFS over (router, phase) states.
    // Forward moves: up hop keeps phaseUp (and needs phaseUp); down
    // hop is legal from either phase and lands in phaseDown.
    std::vector<unsigned> dist(n * numPhases);
    std::deque<unsigned> q;
    for (unsigned dst = 0; dst < n; ++dst) {
        if (topo.deadRouter[dst])
            continue;
        dist.assign(n * numPhases, distInf);
        q.clear();
        dist[dst * numPhases + phaseUp] = 0;
        dist[dst * numPhases + phaseDown] = 0;
        q.push_back(dst * numPhases + phaseUp);
        q.push_back(dst * numPhases + phaseDown);
        while (!q.empty()) {
            const unsigned state = q.front();
            q.pop_front();
            const unsigned m = state / numPhases;
            const Phase ph = static_cast<Phase>(state % numPhases);
            const unsigned d = dist[state];
            // Predecessors r with a legal forward move r -> m that
            // lands in phase ph.
            for (unsigned p = 1; p < numPorts; ++p) {
                // Port p at m leads to r; the forward move used the
                // opposite port at r.
                if (!topo.linkUsable(m, static_cast<Port>(p)))
                    continue;
                const unsigned r = static_cast<unsigned>(
                    topo.neighbor(m, static_cast<Port>(p)));
                const bool fwd_up = up_hop(r, m);
                if (fwd_up && ph != phaseUp)
                    continue; // up hops only ever land in phaseUp
                if (!fwd_up && ph != phaseDown)
                    continue; // down hops always land in phaseDown
                // Legal source phases for this move.
                const unsigned src_phases[2] = {phaseUp, phaseDown};
                for (unsigned sp : src_phases) {
                    if (fwd_up && sp != phaseUp)
                        continue; // can't go up after a down hop
                    unsigned &ds = dist[r * numPhases + sp];
                    if (ds == distInf) {
                        ds = d + 1;
                        q.push_back(r * numPhases + sp);
                    }
                }
            }
        }

        // Derive table entries for this destination.
        for (unsigned r = 0; r < n; ++r) {
            if (topo.deadRouter[r])
                continue;
            for (unsigned in = 0; in < numPorts; ++in) {
                std::uint8_t &entry =
                    t.flat[r * t.slabSize() + in * n + dst];
                if (r == dst) {
                    entry = portLocal;
                    continue;
                }
                // Phase on arrival via `in`: local injection and up
                // arrivals may still go up; a down arrival may not.
                // Flits can arrive on a dead input link (they were
                // in flight when it died), so the input link's
                // liveness is deliberately not checked here.
                Phase ph = phaseUp;
                if (in != portLocal) {
                    const int from =
                        topo.neighbor(r, static_cast<Port>(in));
                    if (from < 0)
                        continue; // off-edge input: no such flit
                    if (!up_hop(static_cast<unsigned>(from), r))
                        ph = phaseDown;
                }
                unsigned best = distInf;
                std::uint8_t best_out = routeInvalid;
                // 180-degree turns are allowed on purpose: after an
                // epoch change a packet can find itself past its
                // only legal branch, and going back is both legal
                // (up then down) and loop-free (dist decreases).
                for (unsigned out = 1; out < numPorts; ++out) {
                    if (!topo.linkUsable(r, static_cast<Port>(out)))
                        continue;
                    const unsigned m = static_cast<unsigned>(
                        topo.neighbor(r, static_cast<Port>(out)));
                    const bool mv_up = up_hop(r, m);
                    if (mv_up && ph != phaseUp)
                        continue;
                    const unsigned next =
                        dist[m * numPhases +
                             (mv_up ? phaseUp : phaseDown)];
                    if (next == distInf)
                        continue;
                    if (next + 1 < best) {
                        best = next + 1;
                        best_out = static_cast<std::uint8_t>(out);
                    }
                }
                entry = best_out;
            }
        }
    }
    return t;
}

} // namespace noc
} // namespace misar
