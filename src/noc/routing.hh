/**
 * @file
 * Fault-aware routing-table computation for the 2D mesh.
 *
 * Healthy meshes route XY. Once a link or router dies, the
 * reconfiguration logic (resil::NocFaultInjector) computes a full set
 * of per-router tables over the *live* topology using up-down
 * routing: a BFS spanning tree is rooted at the lowest-id live router
 * of each connected component, every live link is statically oriented
 * "up" (towards the root) or "down", and a legal path takes zero or
 * more up hops followed by zero or more down hops. The no-down-to-up
 * rule makes any cyclic channel dependency impossible, so the tables
 * are deadlock-free on *any* connected topology — unlike turn models
 * such as odd-even, which cannot route around edge-column link
 * faults (e.g. a dead vertical link in column 0 leaves its endpoints
 * OE-unroutable although physically connected).
 *
 * Tables are indexed by (router, input port, destination): the input
 * port tells the router whether the previous hop was a down hop,
 * which is all the state the up-down legality rule needs, so
 * packets need no extra header bits.
 */

#ifndef MISAR_NOC_ROUTING_HH
#define MISAR_NOC_ROUTING_HH

#include <array>
#include <cstdint>
#include <vector>

#include "noc/router.hh"

namespace misar {
namespace noc {

/** Table entry meaning "no legal route" (packet is dropped and
 *  recovered end-to-end, or the destination is partitioned off). */
constexpr std::uint8_t routeInvalid = 0xff;

/** Live-topology description the table computation works from. */
struct Topology
{
    explicit Topology(unsigned dim_)
        : dim(dim_), deadOut(dim_ * dim_), deadRouter(dim_ * dim_, false)
    {}

    unsigned dim;
    /** deadOut[r][p]: the outgoing link of router r via port p is
     *  dead (ports without a neighbour are simply off-edge). */
    std::vector<std::array<bool, numPorts>> deadOut;
    std::vector<bool> deadRouter;

    unsigned numTiles() const { return dim * dim; }

    /** Neighbour of @p r via @p p, or -1 off the mesh edge. */
    int neighbor(unsigned r, Port p) const;

    /** True when r -> neighbor(r, p) is traversable (both routers
     *  alive, link not dead). */
    bool linkUsable(unsigned r, Port p) const;
};

/** Input port a flit sent out of @p out arrives on downstream. */
Port oppositePort(Port out);

/**
 * One flat routing table set: entry (router, in-port, dst) -> output
 * port (or routeInvalid). Slabs are laid out per router so a router
 * can hold a raw pointer into the stable flat storage.
 */
struct RouteTables
{
    unsigned dim = 0;
    std::vector<std::uint8_t> flat; ///< [router][inPort][dst]

    unsigned numTiles() const { return dim * dim; }

    std::size_t
    slabSize() const
    {
        return static_cast<std::size_t>(numPorts) * numTiles();
    }

    const std::uint8_t *
    routerSlab(unsigned r) const
    {
        return flat.data() + r * slabSize();
    }

    std::uint8_t
    lookup(unsigned r, unsigned in, unsigned dst) const
    {
        return flat[r * slabSize() + in * numTiles() + dst];
    }
};

/** Compute up-down tables for @p topo (see file comment). */
RouteTables computeUpDownTables(const Topology &topo);

/**
 * Connected-component id per router over the live topology: the
 * lowest router id in the component; -1 for dead routers.
 */
std::vector<int> components(const Topology &topo);

} // namespace noc
} // namespace misar

#endif // MISAR_NOC_ROUTING_HH
