#include "noc/router.hh"

#include "sim/logging.hh"

namespace misar {
namespace noc {

Router::Router(EventQueue &eq, const NocConfig &cfg, unsigned id, unsigned x,
               unsigned y, unsigned dim)
    : eq(eq), cfg(cfg), _id(id), x(x), y(y), dim(dim)
{
    for (unsigned o = 0; o < numPorts; ++o) {
        rrPtr[o] = 0;
        for (unsigned v = 0; v < numVnets; ++v) {
            outOwner[o][v] = -1;
            credits[o][v] = cfg.bufferDepth;
            inBuf[o][v].init(cfg.bufferDepth);
        }
    }
}

void
Router::connect(Port out, Router *next, Port in)
{
    links[out].next = next;
    links[out].nextIn = in;
    // Record the reverse mapping so 'next' can return credits for the
    // buffer slots of its input port 'in' to our output port 'out'.
    next->upstream[in] = {this, out};
}

Port
Router::route(CoreId dst) const
{
    unsigned dx = dst % dim;
    unsigned dy = dst / dim;
    if (dx > x)
        return portEast;
    if (dx < x)
        return portWest;
    if (dy > y)
        return portSouth;
    if (dy < y)
        return portNorth;
    return portLocal;
}

void
Router::acceptFlit(Port in, unsigned vnet, Flit flit)
{
    if (inBuf[in][vnet].full())
        panic("router %u input %u vnet %u buffer overflow", _id, in, vnet);
    inBuf[in][vnet].push_back(std::move(flit));
    scheduleTick();
}

void
Router::returnCredit(Port out, unsigned vnet)
{
    if (credits[out][vnet] >= cfg.bufferDepth)
        panic("router %u output %u vnet %u credit overflow", _id, out, vnet);
    ++credits[out][vnet];
    scheduleTick();
}

bool
Router::hasWork() const
{
    for (unsigned p = 0; p < numPorts; ++p)
        for (unsigned v = 0; v < numVnets; ++v)
            if (!inBuf[p][v].empty())
                return true;
    return false;
}

void
Router::scheduleTick()
{
    if (tickPending)
        return;
    tickPending = true;
    eq.schedule(1, [this] { tick(); });
}

void
Router::tick()
{
    tickPending = false;
    bool progress = false;
    bool served_input[numPorts] = {};

    for (unsigned out = 0; out < numPorts; ++out) {
        const unsigned slots = numVnets * numPorts;
        for (unsigned k = 0; k < slots; ++k) {
            unsigned idx = (rrPtr[out] + k) % slots;
            unsigned vnet = idx / numPorts;
            unsigned in = idx % numPorts;
            if (served_input[in])
                continue;
            auto &buf = inBuf[in][vnet];
            if (buf.empty())
                continue;
            Flit &front = buf.front();
            if (route(front.pkt->dst()) != static_cast<Port>(out))
                continue;

            // Wormhole allocation: head flits need a free channel,
            // body/tail flits may only follow their own head.
            if (front.head) {
                if (outOwner[out][vnet] != -1)
                    continue;
            } else {
                if (outOwner[out][vnet] != static_cast<int>(in))
                    continue;
            }

            const bool is_local = (out == portLocal);
            if (!is_local && credits[out][vnet] == 0)
                continue;

            // Grant: forward this flit.
            Flit flit = std::move(front);
            buf.pop_front();
            served_input[in] = true;
            progress = true;
            rrPtr[out] = (idx + 1) % slots;

            if (flit.head && !flit.tail)
                outOwner[out][vnet] = static_cast<int>(in);
            if (flit.tail)
                outOwner[out][vnet] = -1;

            // Return the freed buffer slot upstream (one cycle).
            if (in == portLocal) {
                if (localCreditFn) {
                    auto fn = localCreditFn;
                    eq.schedule(1, [fn, vnet] { fn(vnet); });
                }
            } else if (upstream[in].router) {
                Router *up = upstream[in].router;
                Port up_out = upstream[in].out;
                eq.schedule(1, [up, up_out, vnet] {
                    up->returnCredit(up_out, vnet);
                });
            }

            if (is_local) {
                ejectFn(std::move(flit));
            } else {
                --credits[out][vnet];
                Router *next = links[out].next;
                Port next_in = links[out].nextIn;
                if (!next)
                    panic("router %u: flit routed off mesh edge", _id);
                Tick lat = cfg.routerLatency + cfg.linkLatency;
                // Move the flit into the lambda; shared_ptr keeps the
                // packet alive across hops.
                eq.schedule(lat,
                            [next, next_in, vnet, f = std::move(flit)]()
                                mutable {
                    next->acceptFlit(next_in, vnet, std::move(f));
                });
            }
            break; // one flit per output per cycle
        }
    }

    if (hasWork() && progress)
        scheduleTick();
}

} // namespace noc
} // namespace misar
