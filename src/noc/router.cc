#include "noc/router.hh"

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace misar {
namespace noc {

Router::Router(EventQueue &eq, const NocConfig &cfg, unsigned id, unsigned x,
               unsigned y, unsigned dim)
    : eq(eq), cfg(cfg), _id(id), x(x), y(y), dim(dim)
{
    for (unsigned o = 0; o < numPorts; ++o) {
        rrPtr[o] = 0;
        for (unsigned v = 0; v < numVnets; ++v) {
            outOwner[o][v] = -1;
            credits[o][v] = cfg.bufferDepth;
            inBuf[o][v].init(cfg.bufferDepth);
        }
    }
}

void
Router::connect(Port out, Router *next, Port in)
{
    links[out].next = next;
    links[out].nextIn = in;
    // Record the reverse mapping so 'next' can return credits for the
    // buffer slots of its input port 'in' to our output port 'out'.
    next->upstream[in] = {this, out};
}

Port
Router::route(CoreId dst) const
{
    unsigned dx = dst % dim;
    unsigned dy = dst / dim;
    if (dx > x)
        return portEast;
    if (dx < x)
        return portWest;
    if (dy > y)
        return portSouth;
    if (dy < y)
        return portNorth;
    return portLocal;
}

void
Router::acceptFlit(Port in, unsigned vnet, Flit flit)
{
    if (isDead) {
        // Flits in flight towards a just-killed router are lost; the
        // sender's NI recovers them end-to-end. No credit is returned:
        // the upstream output link is dead too.
        if (stats)
            stats->counter("noc.flitsDropped").inc();
        return;
    }
    if (inBuf[in][vnet].full())
        panic("router %u input %u vnet %u buffer overflow", _id, in, vnet);
    if (faultsArmed && flit.head)
        ++flit.pkt->hops; // detour accounting (vs. Manhattan distance)
    inBuf[in][vnet].push_back(std::move(flit));
    scheduleTick();
}

void
Router::returnCredit(Port out, unsigned vnet)
{
    if (credits[out][vnet] >= cfg.bufferDepth)
        panic("router %u output %u vnet %u credit overflow", _id, out, vnet);
    ++credits[out][vnet];
    scheduleTick();
}

bool
Router::hasWork() const
{
    for (unsigned p = 0; p < numPorts; ++p)
        for (unsigned v = 0; v < numVnets; ++v)
            if (!inBuf[p][v].empty())
                return true;
    return false;
}

void
Router::scheduleTick()
{
    if (tickPending || isDead)
        return;
    tickPending = true;
    eq.scheduleL(_lane, 1, [this] { tick(); });
}

void
Router::creditUpstream(Port in, unsigned vnet)
{
    if (in == portLocal) {
        // The NI lives on this tile's lane.
        if (localCreditFn) {
            auto fn = localCreditFn;
            eq.scheduleL(_lane, 1, [fn, vnet] { fn(vnet); });
        }
    } else if (upstream[in].router) {
        Router *up = upstream[in].router;
        Port up_out = upstream[in].out;
        eq.scheduleCross(up->lane(), 1, [up, up_out, vnet] {
            up->returnCredit(up_out, vnet);
        });
    }
}

bool
Router::ownedByAny(Port in, unsigned vnet) const
{
    for (unsigned o = 0; o < numPorts; ++o)
        if (outOwner[o][vnet] == static_cast<int>(in))
            return true;
    return false;
}

void
Router::dropFront(Port in, unsigned vnet)
{
    Flit &f = inBuf[in][vnet].front();
    if (f.head && !f.tail)
        dropUntilTail[in][vnet] = true;
    if (f.tail)
        dropUntilTail[in][vnet] = false;
    const bool poison = f.poison;
    inBuf[in][vnet].pop_front();
    // Poison tails were injected locally and never consumed an
    // upstream credit, so none is returned for them.
    if (!poison)
        creditUpstream(in, vnet);
    if (stats)
        stats->counter("noc.flitsDropped").inc();
}

bool
Router::faultDrops(bool served_input[numPorts])
{
    bool any = false;
    for (unsigned in = 0; in < numPorts; ++in) {
        if (served_input[in])
            continue;
        for (unsigned v = 0; v < numVnets; ++v) {
            auto &buf = inBuf[in][v];
            if (buf.empty())
                continue;
            const Flit &f = buf.front();
            bool drop = false;
            if (!f.head) {
                // Remainder of a worm whose head was dropped here, or
                // an orphan whose ownership was flushed (its worm was
                // severed by dead hardware).
                drop = dropUntilTail[in][v] ||
                       !ownedByAny(static_cast<Port>(in), v);
            } else {
                // A fresh head ends any partial-drop window (possible
                // only across a fault; live links never lose flits).
                dropUntilTail[in][v] = false;
                const Port out =
                    routeFor(static_cast<Port>(in), f.pkt->dst());
                if (out >= numPorts) {
                    // No legal route (destination partitioned off or
                    // tables mid-reconfiguration): drop the packet,
                    // the source NI retransmits or abandons.
                    drop = true;
                    stats->counter("noc.pktsUnroutable").inc();
                }
            }
            if (drop) {
                dropFront(static_cast<Port>(in), v);
                served_input[in] = true;
                any = true;
                break;
            }
        }
    }
    return any;
}

void
Router::kill()
{
    isDead = true;
    for (unsigned p = 0; p < numPorts; ++p) {
        for (unsigned v = 0; v < numVnets; ++v) {
            inBuf[p][v].clear();
            outOwner[p][v] = -1;
            dropUntilTail[p][v] = false;
            dropOwned[p][v] = false;
        }
    }
}

void
Router::flushSeveredOwnership()
{
    if (isDead)
        return;
    bool retry = false;
    for (unsigned out = 0; out < numPorts; ++out) {
        for (unsigned v = 0; v < numVnets; ++v) {
            const int own = outOwner[out][v];
            // Local injections die only with the whole router.
            if (own <= static_cast<int>(portLocal))
                continue;
            const Upstream &up = upstream[own];
            if (!up.router ||
                !(up.router->isDead || up.router->linkDead[up.out]))
                continue; // owner input still live: worm will finish
            auto &buf = inBuf[own][v];
            bool has_tail = false;
            for (unsigned i = 0; i < buf.size(); ++i) {
                if (buf.at(i).tail) {
                    has_tail = true;
                    break;
                }
            }
            if (has_tail)
                continue; // the real tail made it across in time
            if (buf.full()) {
                // Transiently full; the chain below drains into an
                // NI, so space frees within a few cycles.
                retry = true;
                continue;
            }
            // The worm's tail is lost on the dead hardware: inject a
            // poison tail behind any surviving flits. It flows the
            // owned channel, releasing ownership hop by hop, and the
            // destination NI discards the partial reassembly.
            Flit poison;
            poison.tail = true;
            poison.poison = true;
            poison.packetSeq = ownerSeq[out][v];
            buf.push_back(std::move(poison));
            if (stats)
                stats->counter("noc.poisonTails").inc();
            scheduleTick();
        }
    }
    if (retry)
        eq.scheduleL(_lane, 4, [this] { flushSeveredOwnership(); });
}

void
Router::forEachBufferedFlit(
    const std::function<void(Port, unsigned, const Flit &)> &fn) const
{
    for (unsigned p = 0; p < numPorts; ++p)
        for (unsigned v = 0; v < numVnets; ++v)
            for (unsigned i = 0; i < inBuf[p][v].size(); ++i)
                fn(static_cast<Port>(p), v, inBuf[p][v].at(i));
}

void
Router::tick()
{
    tickPending = false;
    if (isDead)
        return;
    bool progress = false;
    bool served_input[numPorts] = {};

    if (faultsArmed)
        progress |= faultDrops(served_input);

    for (unsigned out = 0; out < numPorts; ++out) {
        const unsigned slots = numVnets * numPorts;
        for (unsigned k = 0; k < slots; ++k) {
            unsigned idx = (rrPtr[out] + k) % slots;
            unsigned vnet = idx / numPorts;
            unsigned in = idx % numPorts;
            if (served_input[in])
                continue;
            auto &buf = inBuf[in][vnet];
            if (buf.empty())
                continue;
            Flit &front = buf.front();

            // Wormhole allocation: head flits need a free channel on
            // their routed output; body/tail flits may only follow
            // their own head (which fixed the route, so no per-flit
            // route check is needed — or possible: poison tails carry
            // no packet).
            if (front.head) {
                if (routeFor(static_cast<Port>(in), front.pkt->dst())
                        != static_cast<Port>(out))
                    continue;
                if (outOwner[out][vnet] != -1)
                    continue;
            } else {
                if (outOwner[out][vnet] != static_cast<int>(in))
                    continue;
            }

            const bool is_local = (out == portLocal);

            // Flits headed for dead hardware, or following a head the
            // corruption roll discarded, are dropped at grant time:
            // they consume no downstream credit but free their buffer
            // slot and release the wormhole channel normally.
            bool discard = false;
            if (faultsArmed && !is_local) {
                if (linkDead[out])
                    discard = true;
                else if (!front.head && dropOwned[out][vnet])
                    discard = true;
            }

            if (!discard && !is_local && credits[out][vnet] == 0)
                continue;

            // Grant: forward this flit.
            Flit flit = std::move(front);
            buf.pop_front();
            served_input[in] = true;
            progress = true;
            rrPtr[out] = (idx + 1) % slots;

            // Transient link fault: rolled once per packet per link
            // traversal, on the head; the downstream CRC discards
            // the whole packet, modelled as a sender-side discard.
            bool corrupted = false;
            if (!discard && faultsArmed && !is_local && flit.head &&
                corruptFn && corruptFn()) {
                corrupted = true;
                discard = true;
                stats->counter("noc.pktsCorrupted").inc();
            }

            if (flit.head && !flit.tail) {
                outOwner[out][vnet] = static_cast<int>(in);
                if (faultsArmed) {
                    ownerSeq[out][vnet] = flit.packetSeq;
                    dropOwned[out][vnet] = corrupted;
                }
            }
            if (flit.tail) {
                outOwner[out][vnet] = -1;
                if (faultsArmed)
                    dropOwned[out][vnet] = false;
            }

            // Return the freed buffer slot upstream (one cycle);
            // locally-injected poison tails never consumed one.
            if (!flit.poison)
                creditUpstream(static_cast<Port>(in), vnet);

            if (discard) {
                stats->counter("noc.flitsDropped").inc();
            } else if (is_local) {
                ejectFn(std::move(flit));
            } else {
                --credits[out][vnet];
                ++fwdFlits[out];
                Router *next = links[out].next;
                Port next_in = links[out].nextIn;
                if (!next)
                    panic("router %u: flit routed off mesh edge", _id);
                Tick lat = cfg.routerLatency + cfg.linkLatency;
                // Move the flit into the lambda; shared_ptr keeps the
                // packet alive across hops. The hop targets the
                // neighbour's lane: a partition boundary routes via
                // the cross hook with lat >= 1 tick of lookahead.
                eq.scheduleCross(next->lane(), lat,
                                 [next, next_in, vnet, f = std::move(flit)]()
                                     mutable {
                    next->acceptFlit(next_in, vnet, std::move(f));
                });
            }
            break; // one flit per output per cycle
        }
    }

    if (hasWork() && progress)
        scheduleTick();
}

} // namespace noc
} // namespace misar
