/**
 * @file
 * Per-tile network interface: packet segmentation/injection on one
 * side, flit reassembly/ejection on the other.
 */

#ifndef MISAR_NOC_NETWORK_INTERFACE_HH
#define MISAR_NOC_NETWORK_INTERFACE_HH

#include <deque>
#include <functional>
#include <memory>

#include "noc/packet.hh"
#include "noc/router.hh"
#include "obs/tracer.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"

namespace misar {
namespace noc {

/**
 * Tile endpoint of the NoC.
 *
 * Outbound packets queue (unbounded) in the NI and trickle into the
 * local router input as credits allow, one flit per cycle. Inbound
 * flits are reassembled by packet sequence number; complete packets
 * are handed to the tile's sink callback.
 */
class NetworkInterface
{
  public:
    using Sink = std::function<void(std::shared_ptr<Packet>)>;

    NetworkInterface(EventQueue &eq, const NocConfig &cfg, Router &router,
                     CoreId tile, StatRegistry &stats);

    /** Queue @p pkt for injection (or local loopback if dst==tile). */
    void send(std::shared_ptr<Packet> pkt);

    /** Install the delivery callback. */
    void setSink(Sink sink) { this->sink = std::move(sink); }

    CoreId tile() const { return _tile; }

    /**
     * Attach the tracer (null = untraced). Every packet ejected at
     * this NI becomes a complete event on @p track spanning its
     * injection-to-delivery interval.
     */
    void
    attachTracer(obs::Tracer *t, obs::TrackId track)
    {
        tracer = t;
        this->track = track;
    }

  private:
    /** Router freed an injection-buffer slot on @p vnet. */
    void creditReturn(unsigned vnet);

    /** Router ejected @p flit towards us. */
    void eject(Flit flit);

    /** Try to inject one flit this cycle. */
    void tick();

    void scheduleTick();

    EventQueue &eq;
    const NocConfig &cfg;
    Router &router;
    CoreId _tile;
    StatRegistry &stats;
    Sink sink;

    struct OutPacket
    {
        std::shared_ptr<Packet> pkt;
        unsigned flitsLeft;
        unsigned flitsTotal;
        std::uint64_t seq;
    };
    /** Per-vnet injection queues. */
    std::array<std::deque<OutPacket>, numVnets> outQ;
    /** Credits towards the local router input, per vnet. */
    std::array<unsigned, numVnets> credits;
    /** Reassembly: flits received per in-flight packet seq. */
    FlatMap<std::uint64_t, unsigned> reassembly;

    unsigned rrVnet = 0;
    bool tickPending = false;
    std::uint64_t nextSeq;

    obs::Tracer *tracer = nullptr;
    obs::TrackId track = 0;
};

} // namespace noc
} // namespace misar

#endif // MISAR_NOC_NETWORK_INTERFACE_HH
