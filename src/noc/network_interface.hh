/**
 * @file
 * Per-tile network interface: packet segmentation/injection on one
 * side, flit reassembly/ejection on the other.
 *
 * When NocConfig::reliable is set the NI also runs an end-to-end
 * reliable-delivery layer (TCP-like, but per (peer, vnet) stream):
 * sequenced packets are buffered until a cumulative ack arrives on
 * the control vnet, retransmitted on timeout with exponential
 * backoff, and delivered in order exactly once at the receiver. The
 * layer is invisible to everything above the NI — MSA, directory and
 * L1 traffic is protected with zero protocol changes.
 */

#ifndef MISAR_NOC_NETWORK_INTERFACE_HH
#define MISAR_NOC_NETWORK_INTERFACE_HH

#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>

#include "noc/packet.hh"
#include "noc/router.hh"
#include "obs/tracer.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/flat_map.hh"
#include "sim/stats.hh"

namespace misar {
namespace noc {

/**
 * Tile endpoint of the NoC.
 *
 * Outbound packets queue (unbounded) in the NI and trickle into the
 * local router input as credits allow, one flit per cycle. Inbound
 * flits are reassembled by packet sequence number; complete packets
 * are handed to the tile's sink callback.
 */
class NetworkInterface
{
  public:
    using Sink = std::function<void(std::shared_ptr<Packet>)>;

    NetworkInterface(EventQueue &eq, const NocConfig &cfg, Router &router,
                     CoreId tile, StatRegistry &stats);

    /** Queue @p pkt for injection (or local loopback if dst==tile). */
    void send(std::shared_ptr<Packet> pkt);

    /** Install the delivery callback. */
    void setSink(Sink sink) { this->sink = std::move(sink); }

    CoreId tile() const { return _tile; }

    /** Pin this NI's events to its tile's lane (see Router::setLane). */
    void setLane(LaneId l) { _lane = l; }
    LaneId lane() const { return _lane; }

    /**
     * Attach the tracer (null = untraced). Every packet ejected at
     * this NI becomes a complete event on @p track spanning its
     * injection-to-delivery interval.
     */
    void
    attachTracer(obs::Tracer *t, obs::TrackId track)
    {
        tracer = t;
        this->track = track;
    }

    /** @name Fault support. @{ */

    /** Enable fault tolerances: partial-reassembly discard instead
     *  of panic, and detour-hop accounting on delivery. */
    void armFaults() { faultsArmed = true; }

    /** The tile dropped off the mesh (its router was killed): all
     *  queued and future traffic is discarded. */
    void kill();

    bool dead() const { return isDead; }

    /** Unacked sequenced packets held for retransmission. */
    unsigned
    pendingRetx() const
    {
        return static_cast<unsigned>(pending.size());
    }

    /** One line per in-flight packet (stall-report census). */
    void reportInFlight(std::ostream &os) const;

    /** @} */

    /** Packets queued for injection across all vnets (heatmap gauge). */
    unsigned
    injectQueueDepth() const
    {
        unsigned n = 0;
        for (const auto &q : outQ)
            n += static_cast<unsigned>(q.size());
        return n;
    }

  private:
    /** Retransmission state of one unacked sequenced packet. */
    struct PendingTx
    {
        std::shared_ptr<Packet> pkt;
        Tick deadline = 0;
        unsigned tries = 0;
    };

    /** Receive state of one (source, vnet) sequenced stream. */
    struct RxStream
    {
        std::uint64_t delivered = 0; ///< highest in-order seq sunk
        /** A coalesced cumulative ack is already scheduled. */
        bool ackPending = false;
        /** Out-of-order arrivals parked until the gap fills. */
        std::map<std::uint64_t, std::shared_ptr<Packet>> reorder;
    };

    /** Key of one (peer, vnet) stream. */
    static std::uint32_t
    streamKey(CoreId peer, unsigned vnet)
    {
        return (static_cast<std::uint32_t>(peer) << 2) | vnet;
    }

    /** Ordered key of one pending packet: (peer, vnet, seq). */
    static std::uint64_t
    pendingKey(CoreId peer, unsigned vnet, std::uint64_t seq)
    {
        return (static_cast<std::uint64_t>(peer) << 44) |
               (static_cast<std::uint64_t>(vnet) << 40) | seq;
    }

    /** Router freed an injection-buffer slot on @p vnet. */
    void creditReturn(unsigned vnet);

    /** Router ejected @p flit towards us. */
    void eject(Flit flit);

    /** Hand a reassembled packet up: ack handling, dedup/reorder,
     *  then the tile sink. */
    void deliver(std::shared_ptr<Packet> pkt);

    /** In-order at-most-once delivery of a sequenced packet. */
    void deliverSequenced(std::shared_ptr<Packet> pkt);

    /** Cumulative ack from @p ack's source: release pending. */
    void handleAck(const AckPacket &ack);

    /** Send a cumulative ack for stream (peer, vnet) up to cum. */
    void sendAck(CoreId peer, unsigned vnet, std::uint64_t cum);

    /** Coalesce: schedule one cumulative ack cfg.ackDelay out. */
    void scheduleAck(CoreId peer, unsigned vnet);

    /** Queue a (re)transmission as a fresh wire packet. */
    void enqueue(std::shared_ptr<Packet> pkt);

    /** Arm (or pull in) the retransmission timer. */
    void armRetxTimer(Tick deadline);
    void retxFire();
    /** Scan pending for expired entries; resend or abandon. */
    void retxCheck();

    /** Try to inject one flit this cycle. */
    void tick();

    void scheduleTick();

    EventQueue &eq;
    const NocConfig &cfg;
    Router &router;
    CoreId _tile;
    LaneId _lane = 0;
    StatRegistry &stats;
    Sink sink;

    struct OutPacket
    {
        std::shared_ptr<Packet> pkt;
        unsigned flitsLeft;
        unsigned flitsTotal;
        std::uint64_t seq;
    };
    /** Per-vnet injection queues. */
    std::array<std::deque<OutPacket>, numVnets> outQ;
    /** Credits towards the local router input, per vnet. */
    std::array<unsigned, numVnets> credits;
    /** Reassembly: flits received per in-flight packet seq. */
    FlatMap<std::uint64_t, unsigned> reassembly;

    unsigned rrVnet = 0;
    bool tickPending = false;
    std::uint64_t nextSeq;

    /** @name Reliable-delivery state (empty unless cfg.reliable). @{ */
    /** Next relSeq per outgoing (peer, vnet) stream. */
    FlatMap<std::uint32_t, std::uint64_t> txSeq;
    /** Unacked sequenced packets, ordered by (peer, vnet, seq) so
     *  the timeout scan and cumulative-ack release are ranges. */
    std::map<std::uint64_t, PendingTx> pending;
    /** Receive streams, keyed by (source, vnet). */
    std::map<std::uint32_t, RxStream> rx;
    bool retxArmed = false;
    Tick retxArmedAt = 0;
    /** @} */

    bool faultsArmed = false;
    bool isDead = false;

    obs::Tracer *tracer = nullptr;
    obs::TrackId track = 0;
};

} // namespace noc
} // namespace misar

#endif // MISAR_NOC_NETWORK_INTERFACE_HH
