#include "noc/network_interface.hh"

#include <algorithm>
#include <ostream>

#include "sim/logging.hh"

namespace misar {
namespace noc {

NetworkInterface::NetworkInterface(EventQueue &eq, const NocConfig &cfg,
                                   Router &router, CoreId tile,
                                   StatRegistry &stats)
    : eq(eq), cfg(cfg), router(router), _tile(tile), stats(stats),
      nextSeq(static_cast<std::uint64_t>(tile) << 40)
{
    for (unsigned v = 0; v < numVnets; ++v)
        credits[v] = cfg.bufferDepth;
    router.setEjectFn([this](Flit f) { eject(std::move(f)); });
    router.setLocalCreditFn([this](unsigned v) { creditReturn(v); });
}

void
NetworkInterface::send(std::shared_ptr<Packet> pkt)
{
    if (isDead) {
        // The tile is partitioned off; nothing it sends can leave.
        stats.counter("noc.deadNiDrops").inc();
        return;
    }
    pkt->injectTick = eq.now();
    stats.counter("noc.packetsSent").inc();

    if (pkt->dst() == _tile) {
        // Local loopback: bypass the mesh with a short fixed latency.
        Sink &s = sink;
        stats.counter("noc.localLoopbacks").inc();
        eq.scheduleL(_lane, cfg.routerLatency, [&s, pkt] { s(pkt); });
        return;
    }

    if (pkt->vnet >= numVnets)
        panic("packet with invalid vnet %u", pkt->vnet);

    // Reliable delivery: sequence the packet (acks stay unsequenced
    // — a lost ack is repaired by the next) and hold a reference for
    // retransmission until the peer's cumulative ack releases it.
    if (cfg.reliable && pkt->vnet != vnetCtrl && pkt->relSeq == 0) {
        pkt->relSeq = ++txSeq[streamKey(pkt->dst(), pkt->vnet)];
        const Tick deadline = eq.now() + cfg.retransmitTimeout;
        pending.emplace(pendingKey(pkt->dst(), pkt->vnet, pkt->relSeq),
                        PendingTx{pkt, deadline, 0});
        armRetxTimer(deadline);
    }

    enqueue(std::move(pkt));
}

void
NetworkInterface::enqueue(std::shared_ptr<Packet> pkt)
{
    // Each (re)transmission is a fresh wire packet with its own flit
    // sequence; hops restarts with it (the stat-only detour counter
    // can be smudged by a late-arriving earlier copy, never wrong by
    // more than that copy's hops).
    pkt->hops = 0;
    const unsigned flits = flitCount(pkt->sizeBytes(), cfg.flitBytes);
    const unsigned vnet = pkt->vnet;
    outQ[vnet].push_back(OutPacket{std::move(pkt), flits, flits, nextSeq++});
    scheduleTick();
}

void
NetworkInterface::creditReturn(unsigned vnet)
{
    ++credits[vnet];
    scheduleTick();
}

void
NetworkInterface::scheduleTick()
{
    if (tickPending || isDead)
        return;
    bool work = false;
    for (unsigned v = 0; v < numVnets; ++v)
        work |= (!outQ[v].empty() && credits[v] > 0);
    if (!work)
        return;
    tickPending = true;
    eq.scheduleL(_lane, 1, [this] { tick(); });
}

void
NetworkInterface::tick()
{
    tickPending = false;
    if (isDead)
        return;
    // Inject at most one flit per cycle, round-robin across vnets.
    for (unsigned k = 0; k < numVnets; ++k) {
        unsigned v = (rrVnet + k) % numVnets;
        if (outQ[v].empty() || credits[v] == 0)
            continue;
        OutPacket &op = outQ[v].front();
        Flit flit;
        flit.pkt = op.pkt;
        flit.head = (op.flitsLeft == op.flitsTotal);
        flit.tail = (op.flitsLeft == 1);
        flit.packetSeq = op.seq;
        --op.flitsLeft;
        --credits[v];
        router.acceptFlit(portLocal, v, std::move(flit));
        if (op.flitsLeft == 0)
            outQ[v].pop_front();
        rrVnet = (v + 1) % numVnets;
        break;
    }
    scheduleTick();
}

void
NetworkInterface::eject(Flit flit)
{
    if (isDead)
        return;
    if (flit.poison) {
        // Synthesized tail of a worm severed by dead hardware: the
        // packet can never complete; drop the partial reassembly.
        reassembly.erase(flit.packetSeq);
        stats.counter("noc.partialPkts").inc();
        return;
    }
    unsigned &got = reassembly[flit.packetSeq];
    ++got;
    if (!flit.tail)
        return;
    // Tail flit: the whole packet has arrived.
    unsigned expect = flitCount(flit.pkt->sizeBytes(), cfg.flitBytes);
    if (got != expect) {
        if (faultsArmed) {
            reassembly.erase(flit.packetSeq);
            stats.counter("noc.partialPkts").inc();
            return;
        }
        panic("NI %u: packet %llu reassembled %u of %u flits", _tile,
              static_cast<unsigned long long>(flit.packetSeq), got, expect);
    }
    reassembly.erase(flit.packetSeq);
    stats.counter("noc.packetsRecv").inc();
    stats.average("noc.packetLatency")
        .sample(static_cast<double>(eq.now() - flit.pkt->injectTick));
    if (faultsArmed) {
        // Detour accounting: hops counts routers visited; an XY path
        // visits Manhattan distance + 1 of them.
        const Packet &p = *flit.pkt;
        const unsigned dim = router.meshDim();
        const unsigned sx = p.src() % dim, sy = p.src() / dim;
        const unsigned dx = p.dst() % dim, dy = p.dst() / dim;
        const unsigned manhattan = (sx > dx ? sx - dx : dx - sx) +
                                   (sy > dy ? sy - dy : dy - sy);
        if (p.hops > manhattan + 1)
            stats.counter("noc.detourHops").inc(p.hops - manhattan - 1);
    }
    if (tracer)
        tracer->complete(track, flit.pkt->injectTick, eq.now(),
                         flit.pkt->vnet == 0
                             ? "pkt.req"
                             : (flit.pkt->vnet == 1 ? "pkt.resp"
                                                    : "pkt.ctrl"));
    deliver(std::move(flit.pkt));
}

void
NetworkInterface::deliver(std::shared_ptr<Packet> pkt)
{
    if (pkt->vnet == vnetCtrl) {
        auto *ack = dynamic_cast<AckPacket *>(pkt.get());
        if (!ack)
            panic("NI %u: non-ack packet on the control vnet", _tile);
        handleAck(*ack);
        return;
    }
    if (pkt->relSeq != 0) {
        deliverSequenced(std::move(pkt));
        return;
    }
    if (!sink)
        panic("NI %u has no sink installed", _tile);
    sink(std::move(pkt));
}

void
NetworkInterface::deliverSequenced(std::shared_ptr<Packet> pkt)
{
    const CoreId peer = pkt->src();
    const unsigned vnet = pkt->vnet;
    const std::uint64_t seq = pkt->relSeq;
    RxStream &s = rx[streamKey(peer, vnet)];

    if (seq <= s.delivered) {
        // Already delivered (retransmission raced the ack): drop and
        // re-ack so the sender releases its copy.
        stats.counter("noc.rel.dedups").inc();
        sendAck(peer, vnet, s.delivered);
        return;
    }
    if (seq == s.delivered + 1) {
        s.delivered = seq;
        if (!sink)
            panic("NI %u has no sink installed", _tile);
        sink(std::move(pkt));
        // Drain any parked successors the gap was hiding.
        while (!s.reorder.empty() &&
               s.reorder.begin()->first == s.delivered + 1) {
            auto parked = std::move(s.reorder.begin()->second);
            s.reorder.erase(s.reorder.begin());
            ++s.delivered;
            sink(std::move(parked));
        }
        scheduleAck(peer, vnet);
        return;
    }
    // Gap: park until the missing packet is retransmitted. The ack
    // is cumulative, so it implicitly nacks the gap.
    if (s.reorder.emplace(seq, std::move(pkt)).second)
        stats.counter("noc.rel.reorders").inc();
    else
        stats.counter("noc.rel.dedups").inc();
    sendAck(peer, vnet, s.delivered);
}

void
NetworkInterface::handleAck(const AckPacket &ack)
{
    stats.counter("noc.rel.acksRecv").inc();
    const std::uint64_t lo = pendingKey(ack.src(), ack.vnetAcked, 0);
    const std::uint64_t hi =
        pendingKey(ack.src(), ack.vnetAcked, ack.cumSeq);
    pending.erase(pending.lower_bound(lo), pending.upper_bound(hi));
}

void
NetworkInterface::sendAck(CoreId peer, unsigned vnet, std::uint64_t cum)
{
    stats.counter("noc.rel.acksSent").inc();
    send(std::make_shared<AckPacket>(_tile, peer, vnet, cum));
}

void
NetworkInterface::scheduleAck(CoreId peer, unsigned vnet)
{
    RxStream &s = rx[streamKey(peer, vnet)];
    if (s.ackPending)
        return; // the scheduled ack is cumulative; it covers us
    s.ackPending = true;
    eq.scheduleL(_lane, cfg.ackDelay, [this, peer, vnet] {
        if (isDead)
            return;
        RxStream &cur = rx[streamKey(peer, vnet)];
        cur.ackPending = false;
        sendAck(peer, vnet, cur.delivered);
    });
}

void
NetworkInterface::armRetxTimer(Tick deadline)
{
    if (retxArmed && retxArmedAt <= deadline)
        return;
    retxArmed = true;
    retxArmedAt = deadline;
    eq.scheduleL(_lane, deadline - eq.now(), [this] { retxFire(); });
}

void
NetworkInterface::retxFire()
{
    // Superseded timer events (an earlier deadline was armed after
    // this one was scheduled) fire at the wrong tick: ignore them.
    if (isDead || !retxArmed || eq.now() != retxArmedAt)
        return;
    retxArmed = false;
    retxCheck();
}

void
NetworkInterface::retxCheck()
{
    const Tick now = eq.now();
    Tick earliest = 0;
    bool have = false;
    for (auto it = pending.begin(); it != pending.end();) {
        PendingTx &p = it->second;
        if (p.deadline <= now) {
            ++p.tries;
            if (p.tries > cfg.retransmitLimit) {
                // Give up: the destination is gone or the mesh is
                // partitioned. The layers above (MSA client retry /
                // abandon, the liveness watchdog) take over.
                stats.counter("noc.rel.abandoned").inc();
                it = pending.erase(it);
                continue;
            }
            stats.counter("noc.rel.retransmits").inc();
            enqueue(p.pkt);
            Tick backoff = cfg.retransmitTimeout
                           << std::min(p.tries, 16u);
            p.deadline = now + std::min(backoff, cfg.retransmitCap);
        }
        if (!have || p.deadline < earliest) {
            earliest = p.deadline;
            have = true;
        }
        ++it;
    }
    if (have)
        armRetxTimer(earliest);
}

void
NetworkInterface::kill()
{
    isDead = true;
    for (unsigned v = 0; v < numVnets; ++v)
        outQ[v].clear();
    pending.clear();
    rx.clear();
    reassembly.clear();
    retxArmed = false;
}

void
NetworkInterface::reportInFlight(std::ostream &os) const
{
    for (const auto &kv : pending) {
        const PendingTx &p = kv.second;
        os << "    NI " << _tile << " -> " << p.pkt->dst() << " vnet "
           << p.pkt->vnet << " seq " << p.pkt->relSeq << " tries "
           << p.tries << " age "
           << (eq.now() - p.pkt->injectTick) << "\n";
    }
    for (unsigned v = 0; v < numVnets; ++v) {
        if (!outQ[v].empty())
            os << "    NI " << _tile << " vnet " << v << " injectQ "
               << outQ[v].size() << " pkts\n";
    }
    for (const auto &kv : rx) {
        if (!kv.second.reorder.empty())
            os << "    NI " << _tile << " stream " << kv.first
               << " holds " << kv.second.reorder.size()
               << " out-of-order pkts\n";
    }
}

} // namespace noc
} // namespace misar
