#include "noc/network_interface.hh"

#include "sim/logging.hh"

namespace misar {
namespace noc {

NetworkInterface::NetworkInterface(EventQueue &eq, const NocConfig &cfg,
                                   Router &router, CoreId tile,
                                   StatRegistry &stats)
    : eq(eq), cfg(cfg), router(router), _tile(tile), stats(stats),
      nextSeq(static_cast<std::uint64_t>(tile) << 40)
{
    for (unsigned v = 0; v < numVnets; ++v)
        credits[v] = cfg.bufferDepth;
    router.setEjectFn([this](Flit f) { eject(std::move(f)); });
    router.setLocalCreditFn([this](unsigned v) { creditReturn(v); });
}

void
NetworkInterface::send(std::shared_ptr<Packet> pkt)
{
    pkt->injectTick = eq.now();
    stats.counter("noc.packetsSent").inc();

    if (pkt->dst() == _tile) {
        // Local loopback: bypass the mesh with a short fixed latency.
        Sink &s = sink;
        stats.counter("noc.localLoopbacks").inc();
        eq.schedule(cfg.routerLatency, [&s, pkt] { s(pkt); });
        return;
    }

    if (pkt->vnet >= numVnets)
        panic("packet with invalid vnet %u", pkt->vnet);

    unsigned flits = flitCount(pkt->sizeBytes(), cfg.flitBytes);
    outQ[pkt->vnet].push_back(
        OutPacket{std::move(pkt), flits, flits, nextSeq++});
    scheduleTick();
}

void
NetworkInterface::creditReturn(unsigned vnet)
{
    ++credits[vnet];
    scheduleTick();
}

void
NetworkInterface::scheduleTick()
{
    if (tickPending)
        return;
    bool work = false;
    for (unsigned v = 0; v < numVnets; ++v)
        work |= (!outQ[v].empty() && credits[v] > 0);
    if (!work)
        return;
    tickPending = true;
    eq.schedule(1, [this] { tick(); });
}

void
NetworkInterface::tick()
{
    tickPending = false;
    // Inject at most one flit per cycle, round-robin across vnets.
    for (unsigned k = 0; k < numVnets; ++k) {
        unsigned v = (rrVnet + k) % numVnets;
        if (outQ[v].empty() || credits[v] == 0)
            continue;
        OutPacket &op = outQ[v].front();
        Flit flit;
        flit.pkt = op.pkt;
        flit.head = (op.flitsLeft == op.flitsTotal);
        flit.tail = (op.flitsLeft == 1);
        flit.packetSeq = op.seq;
        --op.flitsLeft;
        --credits[v];
        router.acceptFlit(portLocal, v, std::move(flit));
        if (op.flitsLeft == 0)
            outQ[v].pop_front();
        rrVnet = (v + 1) % numVnets;
        break;
    }
    scheduleTick();
}

void
NetworkInterface::eject(Flit flit)
{
    unsigned &got = reassembly[flit.packetSeq];
    ++got;
    if (!flit.tail)
        return;
    // Tail flit: the whole packet has arrived.
    unsigned expect = flitCount(flit.pkt->sizeBytes(), cfg.flitBytes);
    if (got != expect)
        panic("NI %u: packet %llu reassembled %u of %u flits", _tile,
              static_cast<unsigned long long>(flit.packetSeq), got, expect);
    reassembly.erase(flit.packetSeq);
    stats.counter("noc.packetsRecv").inc();
    stats.average("noc.packetLatency")
        .sample(static_cast<double>(eq.now() - flit.pkt->injectTick));
    if (tracer)
        tracer->complete(track, flit.pkt->injectTick, eq.now(),
                         flit.pkt->vnet == 0 ? "pkt.req" : "pkt.resp");
    if (!sink)
        panic("NI %u has no sink installed", _tile);
    sink(std::move(flit.pkt));
}

} // namespace noc
} // namespace misar
