/**
 * @file
 * 2D-mesh network assembly: routers, links, and per-tile interfaces.
 */

#ifndef MISAR_NOC_MESH_HH
#define MISAR_NOC_MESH_HH

#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "noc/network_interface.hh"
#include "noc/router.hh"
#include "noc/routing.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/tile_runtime.hh"

namespace misar {
namespace noc {

/**
 * The on-chip network: dim x dim routers wired as a 2D mesh, one
 * NetworkInterface per tile. Tiles are numbered row-major; tile i
 * sits at (i % dim, i / dim).
 */
class Mesh
{
  public:
    Mesh(EventQueue &eq, const NocConfig &cfg, unsigned dim,
         StatRegistry &stats, const TileRuntime &rt = {});

    /** Inject @p pkt at its source tile. */
    void send(std::shared_ptr<Packet> pkt);

    /** Install tile @p t's delivery callback. */
    void setSink(CoreId t, NetworkInterface::Sink sink);

    unsigned dim() const { return _dim; }
    unsigned numTiles() const { return _dim * _dim; }

    /** Manhattan hop distance between two tiles. */
    unsigned hopDistance(CoreId a, CoreId b) const;

    /** Tile @p t's network interface (observability wiring). */
    NetworkInterface &ni(CoreId t) { return *nis[t]; }

    /** @name Fault support (driven by resil::NocFaultInjector). @{ */

    /** Enable the fault-handling paths in every router and NI. */
    void armFaults();

    /**
     * Install the transient-corruption roll in every router. The
     * hook receives the rolling router's id so the injector can keep
     * one RNG stream per router (partition-order independent).
     */
    void setCorruptFn(const std::function<bool(unsigned router)> &fn);

    /** Kill the bidirectional link between adjacent routers a, b. */
    void markLinkDead(unsigned a, unsigned b);

    /** Kill router @p r: its tile (NI included) drops off the mesh
     *  and every neighbouring link towards it goes dead. */
    void markRouterDead(unsigned r);

    bool routerDead(unsigned r) const { return routers[r]->dead(); }

    Router &router(unsigned r) { return *routers[r]; }

    /** Current dead-link/dead-router map for table computation. */
    Topology liveTopology() const;

    /**
     * Atomically replace every router's routing table (the modelled
     * reconfiguration-broadcast completion) and flush wormhole
     * ownerships severed by dead hardware.
     */
    void installTables(RouteTables t);

    /** In-flight census (buffered flits, unacked packets) appended
     *  to the liveness watchdog's stall report. */
    void buildReport(std::ostream &os) const;

    /** @} */

  private:
    EventQueue &eq;
    StatRegistry &stats;
    unsigned _dim;
    /** Per-tile stat shard (== &stats when not partitioned). */
    std::vector<StatRegistry *> tileStats;
    std::vector<std::unique_ptr<Router>> routers;
    std::vector<std::unique_ptr<NetworkInterface>> nis;
    /** Master storage for installed route tables; routers hold raw
     *  slab pointers into it. */
    RouteTables tables;

    /** Output port of @p a towards adjacent router @p b. */
    Port portToward(unsigned a, unsigned b) const;
};

} // namespace noc
} // namespace misar

#endif // MISAR_NOC_MESH_HH
