/**
 * @file
 * 2D-mesh network assembly: routers, links, and per-tile interfaces.
 */

#ifndef MISAR_NOC_MESH_HH
#define MISAR_NOC_MESH_HH

#include <memory>
#include <vector>

#include "noc/network_interface.hh"
#include "noc/router.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace misar {
namespace noc {

/**
 * The on-chip network: dim x dim routers wired as a 2D mesh, one
 * NetworkInterface per tile. Tiles are numbered row-major; tile i
 * sits at (i % dim, i / dim).
 */
class Mesh
{
  public:
    Mesh(EventQueue &eq, const NocConfig &cfg, unsigned dim,
         StatRegistry &stats);

    /** Inject @p pkt at its source tile. */
    void send(std::shared_ptr<Packet> pkt);

    /** Install tile @p t's delivery callback. */
    void setSink(CoreId t, NetworkInterface::Sink sink);

    unsigned dim() const { return _dim; }
    unsigned numTiles() const { return _dim * _dim; }

    /** Manhattan hop distance between two tiles. */
    unsigned hopDistance(CoreId a, CoreId b) const;

    /** Tile @p t's network interface (observability wiring). */
    NetworkInterface &ni(CoreId t) { return *nis[t]; }

  private:
    unsigned _dim;
    std::vector<std::unique_ptr<Router>> routers;
    std::vector<std::unique_ptr<NetworkInterface>> nis;
};

} // namespace noc
} // namespace misar

#endif // MISAR_NOC_MESH_HH
