/**
 * @file
 * Network packet base class and flit representation.
 *
 * Higher layers (coherence, MSA) subclass Packet; the NoC only looks
 * at source, destination and size. Packets are segmented into flits
 * at injection and reassembled at ejection.
 */

#ifndef MISAR_NOC_PACKET_HH
#define MISAR_NOC_PACKET_HH

#include <cstdint>
#include <memory>

#include "sim/types.hh"

namespace misar {
namespace noc {

/** Base class for everything that travels over the NoC. */
class Packet
{
  public:
    Packet(CoreId src, CoreId dst, unsigned size_bytes)
        : _src(src), _dst(dst), _sizeBytes(size_bytes)
    {}

    virtual ~Packet();

    CoreId src() const { return _src; }
    CoreId dst() const { return _dst; }
    unsigned sizeBytes() const { return _sizeBytes; }

    /** Tick at which the packet entered the injection queue. */
    Tick injectTick = 0;

    /**
     * Virtual network: 0 for requests, 1 for replies/data, 2 for
     * NoC-internal control (end-to-end acks). Keeping request and
     * reply classes on separate virtual channels removes
     * request-reply protocol deadlock; control traffic is always
     * consumed on arrival by the network interface itself.
     */
    unsigned vnet = 0;

    /**
     * End-to-end sequence number assigned by the source NI's
     * reliable-delivery layer (0 = unsequenced). Scoped per
     * (source, destination, vnet) stream.
     */
    std::uint64_t relSeq = 0;

    /** Router hops actually traversed (detour accounting). */
    unsigned hops = 0;

  private:
    CoreId _src;
    CoreId _dst;
    unsigned _sizeBytes;
};

/** Size of a control (header-only) message in bytes. */
constexpr unsigned ctrlBytes = 8;

/** The NoC-internal control virtual network (end-to-end acks). */
constexpr unsigned vnetCtrl = 2;

/**
 * End-to-end cumulative acknowledgement, sent NI-to-NI on the
 * control vnet by the reliable-delivery layer. Acknowledges every
 * sequenced packet of one (src=dst-of-ack, vnet) stream up to and
 * including @p cumSeq. Acks are themselves unsequenced and never
 * acknowledged; a lost ack is repaired by the next one (or by the
 * dedup re-ack a retransmission provokes).
 */
class AckPacket : public Packet
{
  public:
    AckPacket(CoreId src, CoreId dst, unsigned vnet_acked,
              std::uint64_t cum_seq)
        : Packet(src, dst, ctrlBytes), vnetAcked(vnet_acked),
          cumSeq(cum_seq)
    {
        vnet = vnetCtrl;
    }

    unsigned vnetAcked;
    std::uint64_t cumSeq;
};

/** Size of a data message (header + one cache block) in bytes. */
constexpr unsigned dataBytes = 8 + blockBytes;

/**
 * One flow-control unit. The head flit carries ownership of the
 * packet; body/tail flits only carry routing state.
 */
struct Flit
{
    std::shared_ptr<Packet> pkt; ///< set on every flit for dst lookup
    bool head = false;
    bool tail = false;
    /**
     * Synthesized tail injected by a router to terminate a wormhole
     * whose real tail was lost on dead hardware. Poison flits carry
     * no packet, consume no upstream credit at their injection
     * router, and make the destination NI discard the partial
     * reassembly.
     */
    bool poison = false;
    std::uint64_t packetSeq = 0; ///< global packet sequence number
};

/** Number of flits a packet of @p size_bytes occupies. */
unsigned flitCount(unsigned size_bytes, unsigned flit_bytes);

} // namespace noc
} // namespace misar

#endif // MISAR_NOC_PACKET_HH
